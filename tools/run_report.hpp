// Shared --metrics-out support for the CLI tools: a JSONL "run report" that
// makes one run self-describing — a meta line (build provenance + kernel
// backend + tracer totals) followed by whatever the tool appends (trace
// points, cluster events, the metric snapshot).  bench/perf_smoke embeds the
// same metadata in its BENCH_*.json "meta" object.
#pragma once

#include <atomic>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "linalg/kernels.hpp"
#include "obs/build_info.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace tpa::tools {

/// The {"type":"meta",...} first line of every run report.
inline std::string run_meta_json(const std::string& tool) {
  const auto info = obs::build_info();
  return obs::JsonObject()
      .field_str("type", "meta")
      .field_str("tool", tool)
      .field_str("git_sha", info.git_sha)
      .field_str("compiler", info.compiler)
      .field_str("build_type", info.build_type)
      .field_str("kernel_backend",
                 linalg::kernel_backend_name(linalg::kernel_backend()))
      .field_bool("kernel_native", linalg::kernel_native_build())
      .field_bool("trace_enabled", obs::trace_enabled())
      .field_uint("trace_events_recorded", obs::trace_events_recorded())
      .field_uint("trace_events_dropped", obs::trace_events_dropped())
      .str();
}

/// Loudly surfaces ring-buffer overflow: a truncated trace silently hides
/// the *oldest* spans, which is exactly where a root cause tends to live.
/// Safe to call repeatedly — long-running tools (tpascd_serve's replay loop)
/// can wrap the ring many times over, so the warning is rate-limited: it
/// fires when the cumulative dropped count first becomes nonzero and then
/// only each time it doubles past the last warning, instead of once per
/// wrap.  Returns the cumulative dropped count so callers can surface it in
/// their stats lines.
inline std::uint64_t warn_if_trace_dropped(const std::string& tool) {
  static std::atomic<std::uint64_t> next_warn_at{1};
  const auto dropped = obs::trace_events_dropped();
  auto threshold = next_warn_at.load(std::memory_order_relaxed);
  if (dropped < threshold) return dropped;
  // One printer per threshold crossing, even if called concurrently.
  if (!next_warn_at.compare_exchange_strong(threshold, dropped * 2,
                                            std::memory_order_relaxed)) {
    return dropped;
  }
  std::fprintf(stderr,
               "%s: warning: trace ring overflowed — %llu oldest spans were "
               "overwritten; the Chrome trace and attribution are incomplete "
               "(trace fewer rounds or raise the per-thread ring capacity)\n",
               tool.c_str(), static_cast<unsigned long long>(dropped));
  return dropped;
}

inline std::ofstream open_report(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  return out;
}

}  // namespace tpa::tools
