# Integration test: train two models, serve the first under a 10k-request
# replay, hot-reload the second mid-stream, and check the stats snapshot.
execute_process(
  COMMAND ${TRAIN_BIN} --generate webspam --examples 512 --features 1024
          --epochs 10 --save ${WORK_DIR}/serve_v1.tpam
  RESULT_VARIABLE train1_result)
if(NOT train1_result EQUAL 0)
  message(FATAL_ERROR "training v1 failed: ${train1_result}")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} --generate webspam --examples 512 --features 1024
          --epochs 10 --lambda 0.1 --save ${WORK_DIR}/serve_v2.tpam
  RESULT_VARIABLE train2_result)
if(NOT train2_result EQUAL 0)
  message(FATAL_ERROR "training v2 failed: ${train2_result}")
endif()

execute_process(
  COMMAND ${SERVE_BIN} --model ${WORK_DIR}/serve_v1.tpam
          --reload ${WORK_DIR}/serve_v2.tpam
          --generate webspam --examples 512 --features 1024
          --requests 10000 --batch 32 --wait-us 100 --threads 4
  RESULT_VARIABLE serve_result
  OUTPUT_VARIABLE serve_output
  ERROR_VARIABLE serve_stderr)
if(NOT serve_result EQUAL 0)
  message(FATAL_ERROR "serve run failed: ${serve_result}\n${serve_stderr}")
endif()
foreach(needle "serving model v1" "hot-reloaded model v2" "stats: served"
        "req/s")
  string(FIND "${serve_output}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "serve output missing \"${needle}\":\n${serve_output}")
  endif()
endforeach()

# Unknown --log values must still serve, after one warning naming the value.
execute_process(
  COMMAND ${SERVE_BIN} --model ${WORK_DIR}/serve_v1.tpam
          --generate webspam --examples 512 --features 1024
          --requests 100 --log bogus
  RESULT_VARIABLE log_result
  OUTPUT_VARIABLE log_output
  ERROR_VARIABLE log_stderr)
if(NOT log_result EQUAL 0)
  message(FATAL_ERROR "serve with bad --log failed: ${log_result}")
endif()
string(FIND "${log_stderr}" "unknown log level \"bogus\"" warn_found)
if(warn_found EQUAL -1)
  message(FATAL_ERROR "missing unknown-log-level warning:\n${log_stderr}")
endif()
