// tpascd_traceview — offline "where did the round go?" analyzer.
//
// Reads the Chrome trace (--trace-out *.json) and/or the JSONL run report
// (--metrics-out) a training run wrote and answers the attribution
// questions without opening Perfetto:
//
//   * per-round attribution table (compute / host / pcie / network /
//     straggler wait / stale overhead) with the residual against the round
//     envelope — the sum-to-wall-time invariant, checked offline;
//   * per-worker track utilization across the trace window;
//   * the top-N critical-path component slices;
//   * causal flow summary (delta/model/pull/push arrows, unmatched halves);
//   * --diff runA.jsonl runB.jsonl: metric-by-metric comparison of two run
//     reports (round.attr.*, placement.drift.*, cluster.event.*, ...).
//
// With --check it exits non-zero when the worst round residual exceeds
// --max-residual (default 1%) or, given --max-drift > 0 and a run report,
// when placement.drift.max_rel_error exceeds it — the CI attribution gate.
//
// Examples:
//   tpascd_traceview --trace drill_trace.json --metrics drill_metrics.jsonl
//   tpascd_traceview --trace drill_trace.json --check --max-residual 0.01
//   tpascd_traceview --diff baseline_metrics.jsonl candidate_metrics.jsonl
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/json_parse.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace tpa;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Everything we pull back out of one exported Chrome trace.
struct LoadedTrace {
  std::vector<obs::TraceRecord> records;  // 'X' and 'i' events
  std::map<std::int32_t, std::string> track_names;
  std::uint64_t dropped_events = 0;
  std::uint64_t flow_begins = 0;
  std::uint64_t flow_ends = 0;
  std::uint64_t unmatched_flows = 0;  // begin/end halves with no partner
};

/// Re-parses an exported Chrome trace back into TraceRecords — the inverse
/// of chrome_trace_json(), so analyze_attribution() runs on files exactly as
/// it runs in-process.
LoadedTrace load_trace(const std::string& path) {
  const auto root = obs::parse_json(read_file(path));
  const auto* events = root.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    throw std::runtime_error(path + ": no traceEvents array — not a Chrome "
                             "trace (--trace wants the *.json trace-out)");
  }
  LoadedTrace trace;
  if (const auto* other = root.find("otherData")) {
    trace.dropped_events =
        static_cast<std::uint64_t>(other->num_or("dropped_events", 0.0));
  }
  // Flow halves are matched by (name, id); a surviving begin with no end (or
  // vice versa) means the partner span was dropped or the worker crashed.
  std::map<std::pair<std::string, std::uint64_t>, int> flow_balance;
  for (const auto& event : events->array) {
    const auto phase = event.str_or("ph", "");
    const auto name = event.str_or("name", "");
    if (phase == "M") {
      if (name == "thread_name") {
        const auto* args = event.find("args");
        if (args != nullptr) {
          trace.track_names[static_cast<std::int32_t>(
              event.num_or("tid", 0.0))] = args->str_or("name", "");
        }
      }
      continue;
    }
    if (phase == "s" || phase == "f") {
      const auto id = static_cast<std::uint64_t>(event.num_or("id", 0.0));
      flow_balance[{name, id}] += phase == "s" ? 1 : -1;
      (phase == "s" ? trace.flow_begins : trace.flow_ends) += 1;
      continue;
    }
    if (phase != "X" && phase != "i") continue;
    obs::TraceRecord record;
    record.name = name;
    record.phase = phase[0];
    record.ts_us = event.num_or("ts", 0.0);
    record.dur_us = event.num_or("dur", 0.0);
    record.track = static_cast<std::int32_t>(event.num_or("tid", 0.0));
    if (const auto* args = event.find("args")) {
      record.arg = static_cast<std::int64_t>(
          args->num_or("v", static_cast<double>(obs::kNoArg)));
    }
    trace.records.push_back(std::move(record));
  }
  for (const auto& [key, balance] : flow_balance) {
    trace.unmatched_flows +=
        static_cast<std::uint64_t>(balance < 0 ? -balance : balance);
  }
  return trace;
}

std::string track_label(const std::map<std::int32_t, std::string>& names,
                        std::int32_t track) {
  const auto it = names.find(track);
  return it != names.end() ? it->second : "track " + std::to_string(track);
}

void print_attribution_tables(const LoadedTrace& trace,
                              const obs::AttributionReport& report,
                              int top_n) {
  std::printf("%zu spans on %zu tracks, %llu dropped at record time\n",
              trace.records.size(), trace.track_names.size(),
              static_cast<unsigned long long>(trace.dropped_events));
  std::printf(
      "flows: %llu begins, %llu ends, %llu unmatched halves%s\n",
      static_cast<unsigned long long>(trace.flow_begins),
      static_cast<unsigned long long>(trace.flow_ends),
      static_cast<unsigned long long>(trace.unmatched_flows),
      trace.unmatched_flows > 0
          ? " (crashed workers / dropped deltas leave dangling arrows)"
          : "");

  if (report.rounds.empty()) {
    std::printf("no attr/round spans — was the run traced with a cluster "
                "solver?\n");
    return;
  }

  std::printf("\nper-round attribution (simulated ms; residual = "
              "|sum - round| / round)\n");
  util::Table rounds({"track", "round", "total", "compute", "host", "pcie",
                      "network", "straggler", "stale", "residual"});
  const auto add_row = [&](const obs::AttributionRow& row,
                           const std::string& round_label) {
    rounds.begin_row();
    rounds.add_cell(track_label(trace.track_names, row.track));
    rounds.add_cell(round_label);
    rounds.add_number(row.total_us * 1e-3);
    for (int i = 0; i < obs::kAttributionComponents; ++i) {
      rounds.add_number(row.components_us[i] * 1e-3);
    }
    rounds.add_cell(util::Table::format_number(row.residual_fraction()));
  };
  for (const auto& row : report.rounds) {
    add_row(row, std::to_string(row.round));
  }
  for (const auto& row : report.track_totals) {
    add_row(row, "all");
  }
  rounds.print(std::cout);
  std::printf("max round residual: %.5f\n", report.max_residual_fraction);

  if (!report.utilization.empty()) {
    std::printf("\nper-worker utilization (wall-clock trace window)\n");
    util::Table util_table({"track", "spans", "busy ms", "window ms",
                            "utilization"});
    for (const auto& u : report.utilization) {
      util_table.begin_row();
      util_table.add_cell(u.name.empty()
                              ? track_label(trace.track_names, u.track)
                              : u.name);
      util_table.add_integer(static_cast<std::int64_t>(u.spans));
      util_table.add_number(u.busy_us * 1e-3);
      util_table.add_number(u.window_us * 1e-3);
      util_table.add_number(u.utilization());
    }
    util_table.print(std::cout);
  }

  if (!report.critical.empty()) {
    std::printf("\ntop %d critical-path slices\n", top_n);
    util::Table critical({"rank", "component", "round", "track", "ms"});
    for (std::size_t i = 0; i < report.critical.size(); ++i) {
      const auto& span = report.critical[i];
      critical.begin_row();
      critical.add_integer(static_cast<std::int64_t>(i + 1));
      critical.add_cell(span.component);
      critical.add_integer(span.round);
      critical.add_cell(track_label(trace.track_names, span.track));
      critical.add_number(span.dur_us * 1e-3);
    }
    critical.print(std::cout);
  }
}

/// Scalar metrics from a JSONL run report: counters and gauges by name
/// (histograms are summarised by their p99).
std::map<std::string, double> load_metrics(const std::string& path) {
  std::map<std::string, double> values;
  std::istringstream in(read_file(path));
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    obs::JsonValue value;
    try {
      value = obs::parse_json(line);
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(line_no) + ": " +
                               e.what());
    }
    const auto type = value.str_or("type", "");
    const auto name = value.str_or("name", "");
    if (name.empty()) continue;
    if (type == "counter" || type == "gauge") {
      values[name] = value.num_or("value", 0.0);
    } else if (type == "histogram") {
      values[name + ".p99"] = value.num_or("p99", 0.0);
    }
  }
  if (values.empty()) {
    throw std::runtime_error(path + ": no counter/gauge lines — not a "
                             "--metrics-out run report?");
  }
  return values;
}

int run_diff(const std::string& path_a, const std::string& path_b) {
  const auto a = load_metrics(path_a);
  const auto b = load_metrics(path_b);
  std::printf("diff: A = %s (%zu metrics), B = %s (%zu metrics)\n",
              path_a.c_str(), a.size(), path_b.c_str(), b.size());

  std::set<std::string> names;
  for (const auto& [name, value] : a) names.insert(name);
  for (const auto& [name, value] : b) names.insert(name);

  util::Table table({"metric", "A", "B", "delta"});
  std::size_t changed = 0;
  for (const auto& name : names) {
    const auto in_a = a.find(name);
    const auto in_b = b.find(name);
    table.begin_row();
    table.add_cell(name);
    if (in_a == a.end()) {
      table.add_cell("-");
      table.add_number(in_b->second);
      table.add_cell("only in B");
      ++changed;
      continue;
    }
    if (in_b == b.end()) {
      table.add_number(in_a->second);
      table.add_cell("-");
      table.add_cell("only in A");
      ++changed;
      continue;
    }
    table.add_number(in_a->second);
    table.add_number(in_b->second);
    table.add_number(in_b->second - in_a->second);
    if (in_a->second != in_b->second) ++changed;
  }
  table.print(std::cout);
  std::printf("%zu of %zu metrics differ\n", changed, names.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("tpascd_traceview",
                         "attribution / critical-path analyzer for tpascd "
                         "Chrome traces and run reports");
  parser.add_option("trace", "Chrome trace written by --trace-out *.json");
  parser.add_option("metrics", "JSONL run report written by --metrics-out");
  parser.add_option("top", "critical-path slices to show", "10");
  parser.add_flag("check", "exit non-zero when a gate below fails");
  parser.add_option("max-residual",
                    "--check fails when a round's |sum - total| / total "
                    "exceeds this",
                    "0.01");
  parser.add_option("max-drift",
                    "--check fails when placement.drift.max_rel_error in "
                    "--metrics exceeds this (0 = don't check)",
                    "0");
  parser.add_flag("diff",
                  "compare two run reports given as positional arguments");
  if (!parser.parse(argc, argv)) return 1;

  try {
    if (parser.get_bool("diff")) {
      const auto& paths = parser.positional();
      if (paths.size() != 2) {
        std::fprintf(stderr,
                     "error: --diff wants exactly two run reports\n%s",
                     parser.usage().c_str());
        return 1;
      }
      return run_diff(paths[0], paths[1]);
    }

    if (!parser.has("trace")) {
      std::fprintf(stderr, "error: --trace (or --diff A B) is required\n%s",
                   parser.usage().c_str());
      return 1;
    }
    const int top_n =
        std::max(1, static_cast<int>(parser.get_int("top", 10)));
    const auto trace = load_trace(parser.get_string("trace", ""));
    const auto report =
        obs::analyze_attribution(trace.records, trace.track_names, top_n);
    print_attribution_tables(trace, report, top_n);

    std::map<std::string, double> metric_values;
    if (parser.has("metrics")) {
      metric_values = load_metrics(parser.get_string("metrics", ""));
      const auto print_if = [&](const char* name) {
        const auto it = metric_values.find(name);
        if (it != metric_values.end()) {
          std::printf("  %s = %.6g\n", name, it->second);
        }
      };
      std::printf("\nrun report gauges:\n");
      print_if("round.attr.total_seconds");
      print_if("round.attr.rounds");
      print_if("placement.drift.max_rel_error");
      print_if("placement.drift.rounds");
    }

    if (parser.get_bool("check")) {
      const double max_residual = parser.get_double("max-residual", 0.01);
      const double max_drift = parser.get_double("max-drift", 0.0);
      bool ok = true;
      if (report.rounds.empty()) {
        std::printf("CHECK FAILED: no attribution rounds in the trace\n");
        ok = false;
      }
      if (report.max_residual_fraction > max_residual) {
        std::printf(
            "CHECK FAILED: attribution residual %.5f > %.5f — components "
            "no longer sum to the round wall-time\n",
            report.max_residual_fraction, max_residual);
        ok = false;
      }
      if (max_drift > 0.0) {
        const auto it = metric_values.find("placement.drift.max_rel_error");
        if (it == metric_values.end()) {
          std::printf("CHECK FAILED: --max-drift set but --metrics has no "
                      "placement.drift.max_rel_error gauge\n");
          ok = false;
        } else if (it->second > max_drift) {
          std::printf("CHECK FAILED: cost-model drift %.4f > %.4f\n",
                      it->second, max_drift);
          ok = false;
        }
      }
      if (!ok) return 2;
      std::printf("traceview checks passed (residual %.5f <= %.5f)\n",
                  report.max_residual_fraction, max_residual);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
