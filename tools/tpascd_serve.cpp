// tpascd_serve — serve a trained model under a synthetic request stream.
//
// Loads a .tpam model (see tpascd_train --save) into the serving subsystem,
// replays the rows of a dataset as single-row scoring requests through the
// batching front end, and reports a serving-stats snapshot: throughput,
// batch coalescing, and p50/p95/p99 latency.  --reload publishes a second
// model mid-stream to exercise atomic hot-reload under load.
//
// Examples:
//   tpascd_train --generate webspam --save model.tpam
//   tpascd_serve --model model.tpam --generate webspam --requests 20000
//   tpascd_serve --model v1.tpam --reload v2.tpam --data traffic.svm
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "serve/scorer.hpp"
#include "serve/server.hpp"
#include "sparse/load.hpp"
#include "run_report.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace {

using namespace tpa;

data::Dataset load_traffic(const util::ArgParser& parser) {
  const auto path = parser.get_string("data", "");
  if (!path.empty()) {
    const auto features =
        static_cast<data::Index>(parser.get_int("num-features", 0));
    sparse::LabeledMatrix loaded = sparse::load_labeled_file(path, features);
    return data::Dataset(path, std::move(loaded.matrix),
                         std::move(loaded.labels));
  }
  const auto examples =
      static_cast<data::Index>(parser.get_int("examples", 4096));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed", 42));
  if (parser.get_string("generate", "webspam") == "criteo") {
    data::CriteoLikeConfig config;
    config.num_examples = examples;
    config.seed = seed;
    return data::make_criteo_like(config);
  }
  data::WebspamLikeConfig config;
  config.num_examples = examples;
  config.num_features =
      static_cast<data::Index>(parser.get_int("features", 2 * examples));
  config.seed = seed;
  return data::make_webspam_like(config);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("tpascd_serve",
                         "replay dataset rows as a request stream against a "
                         "served model and report latency/throughput");
  parser.add_option("model", "trained .tpam model to serve (required)");
  parser.add_option("reload", "second .tpam published mid-stream (hot reload)");
  parser.add_option("data", "svmlight/.bin dataset to replay (omit to generate)");
  parser.add_option("num-features", "force feature count for svmlight", "0");
  parser.add_option("generate", "webspam | criteo (when --data absent)",
                    "webspam");
  parser.add_option("examples", "generated example count", "4096");
  parser.add_option("features", "generated feature count", "2x examples");
  parser.add_option("seed", "RNG seed", "42");
  parser.add_option("requests", "requests to replay", "10000");
  parser.add_option("threads", "scoring worker threads", "4");
  parser.add_option("batch", "max batch size", "64");
  parser.add_option("wait-us", "max batching wait (microseconds)", "200");
  parser.add_option("queue", "admission queue capacity", "1024");
  parser.add_option("log-every", "log stats every N batches (0 = off)", "0");
  parser.add_option("trace-out",
                    "write a Chrome trace of serve/batch + serve/reload "
                    "spans here (Perfetto-loadable JSON)");
  parser.add_option("metrics-out",
                    "write a JSONL run report here (build meta, serving "
                    "stats, metric snapshot)");
  parser.add_option("log", "log level: debug|info|warn|error", "info");
  if (!parser.parse(argc, argv)) return 1;
  util::set_log_level(util::parse_log_level(parser.get_string("log", "info")));

  const auto trace_out = parser.get_string("trace-out", "");
  if (!trace_out.empty()) obs::set_trace_enabled(true);

  if (!parser.has("model")) {
    std::fprintf(stderr, "error: --model is required\n%s",
                 parser.usage().c_str());
    return 1;
  }

  try {
    const auto dataset = load_traffic(parser);
    const auto& matrix = dataset.by_row();

    serve::ServerConfig config;
    config.threads = static_cast<std::size_t>(parser.get_int("threads", 4));
    config.batcher.max_batch_size =
        static_cast<std::size_t>(parser.get_int("batch", 64));
    config.batcher.max_wait =
        std::chrono::microseconds(parser.get_int("wait-us", 200));
    config.batcher.queue_capacity =
        static_cast<std::size_t>(parser.get_int("queue", 1024));
    config.log_every_batches =
        static_cast<std::uint64_t>(parser.get_int("log-every", 0));
    serve::Server server(config);

    const auto version = server.reload(parser.get_string("model", ""));
    const auto model = server.registry().current();
    std::printf("serving model v%llu: %zu features (%s-trained, lambda %.3g)\n",
                static_cast<unsigned long long>(version),
                model->num_features(),
                formulation_name(model->trained_as), model->lambda);

    // Offline sanity pass: bulk-score the whole matrix through the chunked
    // parallel scorer and report raw engine throughput without batching.
    util::WallTimer bulk_timer;
    const auto bulk = serve::score_matrix(server.pool(), matrix, *model);
    std::printf("bulk scoring: %u rows in %.3f ms (%.0f rows/s)\n",
                matrix.rows(), 1e3 * bulk_timer.seconds(),
                static_cast<double>(matrix.rows()) / bulk_timer.seconds());

    const auto total =
        static_cast<std::size_t>(parser.get_int("requests", 10000));
    const std::size_t reload_at =
        parser.has("reload") ? total / 2 : total + 1;
    std::vector<std::future<float>> predictions;
    predictions.reserve(total);
    std::uint64_t shed = 0;

    util::WallTimer replay_timer;
    for (std::size_t i = 0; i < total; ++i) {
      // Long replays can wrap the trace ring many times over; the warning is
      // rate-limited (doubling threshold), so polling per chunk is cheap and
      // surfaces the overflow while the run is still going.
      if (i % 4096 == 0 && i > 0) {
        tools::warn_if_trace_dropped("tpascd_serve");
      }
      if (i == reload_at) {
        const auto v2 = server.reload(parser.get_string("reload", ""));
        std::printf("hot-reloaded model v%llu at request %zu\n",
                    static_cast<unsigned long long>(v2), i);
      }
      const auto row =
          matrix.row(static_cast<sparse::Index>(i % matrix.rows()));
      for (;;) {
        auto result = server.submit(row);
        if (result.accepted()) {
          predictions.push_back(std::move(result.prediction));
          break;
        }
        // Queue full: admission control shed the request.  A real client
        // would back off; the replay yields and retries so every request
        // is eventually scored.
        ++shed;
        std::this_thread::yield();
      }
    }
    server.drain();
    const double replay_seconds = replay_timer.seconds();

    double sum = 0.0;
    for (auto& prediction : predictions) sum += prediction.get();
    const auto stats = server.stats();
    std::printf("replayed %zu requests in %.3f s (%.0f req/s end-to-end, "
                "%llu shed-and-retried)\n",
                total, replay_seconds,
                static_cast<double>(total) / replay_seconds,
                static_cast<unsigned long long>(shed));
    const auto trace_dropped = tools::warn_if_trace_dropped("tpascd_serve");
    if (trace_dropped > 0) {
      std::printf("stats: %s, trace dropped %llu spans (cumulative)\n",
                  stats.summary().c_str(),
                  static_cast<unsigned long long>(trace_dropped));
    } else {
      std::printf("stats: %s\n", stats.summary().c_str());
    }
    std::printf("mean prediction %.6f\n",
                sum / static_cast<double>(predictions.size()));
    if (stats.throughput_rps <= 0.0 || stats.p99_us <= 0.0) {
      std::fprintf(stderr, "error: empty stats snapshot\n");
      return 1;
    }
    if (!trace_out.empty()) {
      // The scoring pool has been drained, so the export sees quiesced
      // rings (the tracer's contract).
      obs::write_chrome_trace(trace_out);
      std::printf("Chrome trace (%llu spans) written to %s\n",
                  static_cast<unsigned long long>(
                      obs::trace_events_recorded()),
                  trace_out.c_str());
    }
    if (parser.has("metrics-out")) {
      const auto path = parser.get_string("metrics-out", "");
      auto out = tools::open_report(path);
      out << tools::run_meta_json("tpascd_serve") << '\n';
      out << obs::JsonObject()
                 .field_str("type", "serve_stats")
                 .field_uint("accepted", stats.accepted)
                 .field_uint("rejected", stats.rejected)
                 .field_uint("completed", stats.completed)
                 .field_uint("batches", stats.batches)
                 .field_uint("reloads", stats.reloads)
                 .field_num("wall_seconds", stats.wall_seconds)
                 .field_num("throughput_rps", stats.throughput_rps)
                 .field_num("mean_batch_size", stats.mean_batch_size)
                 .field_num("p50_us", stats.p50_us)
                 .field_num("p95_us", stats.p95_us)
                 .field_num("p99_us", stats.p99_us)
                 .field_uint("trace_events_dropped", trace_dropped)
                 .str()
          << '\n';
      obs::metrics().write_jsonl(out);
      std::printf("run report written to %s\n", path.c_str());
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
