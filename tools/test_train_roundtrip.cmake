# Integration test: train, save, reload, predict — all through the CLI.
execute_process(
  COMMAND ${TRAIN_BIN} --generate webspam --examples 512 --features 1024
          --epochs 10 --workers 2 --adaptive --save ${WORK_DIR}/model.tpam
  RESULT_VARIABLE train_result)
if(NOT train_result EQUAL 0)
  message(FATAL_ERROR "training run failed: ${train_result}")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} --generate webspam --examples 512 --features 1024
          --load ${WORK_DIR}/model.tpam
  RESULT_VARIABLE predict_result)
if(NOT predict_result EQUAL 0)
  message(FATAL_ERROR "predict run failed: ${predict_result}")
endif()
