// tpascd_train — end-to-end command-line trainer.
//
// Loads a dataset (LIBSVM/svmlight text, our binary cache format, or a
// generated stand-in), trains ridge regression with any solver in the
// library — optionally distributed across simulated GPU workers with
// adaptive aggregation — reports duality-gap convergence and prediction
// metrics, and can save/load models.
//
// Examples:
//   tpascd_train --data train.svm --solver tpa-titanx --form dual
//                --lambda 1e-3 --target-gap 1e-6 --save model.tpam
//   tpascd_train --generate webspam --workers 4 --adaptive
//   tpascd_train --data test.svm --load model.tpam        # predict only
//   tpascd_train --workers 4 --checkpoint-every 5 --checkpoint run.ckpt
//   tpascd_train --workers 4 --resume run.ckpt            # continue run
//   tpascd_train --workers 4 --crash-worker 1 --crash-epoch 3
//                --stall-worker 2 --stall-factor 4        # fault drill
//   tpascd_train --workers 4 --async --staleness-window 6 --elastic
//                --leave-worker 2 --leave-round 3
//                --join-worker 2 --join-round 6           # elastic drill
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/async_solver.hpp"
#include "cluster/dist_solver.hpp"
#include "cluster/placement/drift.hpp"
#include "core/convergence.hpp"
#include "core/metrics.hpp"
#include "core/model_io.hpp"
#include "core/solver_factory.hpp"
#include "data/generators.hpp"
#include "linalg/half.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sparse/load.hpp"
#include "sparse/matrix_stats.hpp"
#include "run_report.hpp"
#include "store/checkpoint.hpp"
#include "store/run.hpp"
#include "store/shard_reader.hpp"
#include "store/streaming_dataset.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

using namespace tpa;

data::Dataset load_dataset(const util::ArgParser& parser) {
  const auto path = parser.get_string("data", "");
  if (!path.empty()) {
    const auto features =
        static_cast<data::Index>(parser.get_int("num-features", 0));
    sparse::LabeledMatrix loaded = sparse::load_labeled_file(path, features);
    return data::Dataset(path, std::move(loaded.matrix),
                         std::move(loaded.labels));
  }
  const auto kind = parser.get_string("generate", "webspam");
  const auto examples =
      static_cast<data::Index>(parser.get_int("examples", 8192));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed", 42));
  if (kind == "criteo") {
    data::CriteoLikeConfig config;
    config.num_examples = examples;
    config.seed = seed;
    return data::make_criteo_like(config);
  }
  data::WebspamLikeConfig config;
  config.num_examples = examples;
  config.num_features =
      static_cast<data::Index>(parser.get_int("features", 2 * examples));
  config.seed = seed;
  return data::make_webspam_like(config);
}

void report_metrics(const data::Dataset& dataset,
                    std::span<const float> beta) {
  const auto predictions = core::predict(dataset, beta);
  std::printf("metrics: RMSE %.5f, R^2 %.4f, sign accuracy %.2f%%\n",
              core::rmse(predictions, dataset.labels()),
              core::r_squared(predictions, dataset.labels()),
              100.0 * core::sign_accuracy(predictions, dataset.labels()));
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

cluster::NetworkModel parse_network_preset(const std::string& name) {
  if (name == "10gbe") return cluster::NetworkModel::ethernet_10g();
  if (name == "100gbe") return cluster::NetworkModel::ethernet_100g();
  if (name == "pcie") return cluster::NetworkModel::pcie_peer();
  throw std::invalid_argument("unknown network preset '" + name +
                              "' (10gbe | 100gbe | pcie)");
}

/// {"type":"placement",...} line for the --metrics-out report: the chosen
/// sizes, the uniform baseline, predicted round times and the SA totals.
std::string placement_report_json(
    const cluster::placement::PlacementResult& plan,
    double simulated_round_seconds) {
  const auto sizes_json = [](const std::vector<data::Index>& sizes) {
    std::string out = "[";
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(sizes[i]);
    }
    return out + "]";
  };
  return obs::JsonObject()
      .field_str("type", "placement")
      .field_str("mode", cluster::placement::placement_mode_name(plan.mode))
      .field_uint("placement_seed", plan.seed)
      .field_bool("optimized", plan.optimized)
      .field_raw("sizes", sizes_json(plan.sizes))
      .field_raw("uniform_sizes", sizes_json(plan.uniform_sizes))
      .field_num("predicted_round_seconds", plan.predicted.total())
      .field_num("uniform_round_seconds", plan.uniform_predicted.total())
      .field_num("predicted_speedup", plan.predicted_speedup())
      .field_num("simulated_round_seconds", simulated_round_seconds)
      .field_int("sa_iterations", plan.sa_iterations)
      .field_int("sa_accepted", plan.sa_accepted)
      .str();
}

/// {"type":"drift",...} line for the --metrics-out report: the cost-model
/// audit verdict, one term per entry (tpascd_traceview --diff reads these).
std::string drift_report_json(const cluster::placement::DriftReport& drift) {
  std::string terms = "[";
  for (std::size_t i = 0; i < drift.terms.size(); ++i) {
    const auto& term = drift.terms[i];
    if (i > 0) terms += ",";
    terms += obs::JsonObject()
                 .field_str("term", term.name)
                 .field_num("predicted_seconds", term.predicted_seconds)
                 .field_num("measured_seconds", term.measured_seconds)
                 .field_num("rel_error", term.rel_error)
                 .str();
  }
  terms += "]";
  return obs::JsonObject()
      .field_str("type", "drift")
      .field_uint("rounds", drift.rounds)
      .field_num("max_rel_error", drift.max_rel_error)
      .field_raw("terms", terms)
      .str();
}

void write_trace_outputs(const util::ArgParser& parser,
                         const core::ConvergenceTrace& trace,
                         const std::string& trace_out, bool chrome_trace,
                         const std::string& placement_json = {},
                         const std::string& drift_json = {}) {
  tools::warn_if_trace_dropped("tpascd_train");
  if (!trace_out.empty()) {
    if (chrome_trace) {
      obs::write_chrome_trace(trace_out);
      std::printf("Chrome trace (%llu spans) written to %s\n",
                  static_cast<unsigned long long>(
                      obs::trace_events_recorded()),
                  trace_out.c_str());
    } else if (ends_with(trace_out, ".csv")) {
      trace.write_csv_file(trace_out);
      std::printf("convergence trace written to %s\n", trace_out.c_str());
    } else {
      trace.write_jsonl_file(trace_out);
      std::printf("convergence trace written to %s\n", trace_out.c_str());
    }
  }
  if (parser.has("metrics-out")) {
    const auto path = parser.get_string("metrics-out", "");
    auto out = tools::open_report(path);
    out << tools::run_meta_json("tpascd_train") << '\n';
    if (!placement_json.empty()) out << placement_json << '\n';
    if (!drift_json.empty()) out << drift_json << '\n';
    trace.write_jsonl(out);
    obs::metrics().write_jsonl(out);
    std::printf("run report written to %s\n", path.c_str());
  }
}

// The out-of-core path: shards stream through a fixed resident window
// instead of a fully materialised Dataset.  `--store <manifest>` trains
// off disk; `--stream-shards K` shards an in-memory matrix with the same
// split rule — the bit-exact comparison arm (identical solver code,
// different byte source).
int run_streaming_mode(const util::ArgParser& parser,
                       const std::string& trace_out, bool chrome_trace) {
  const auto manifest_path = parser.get_string("store", "");

  store::StreamingConfig config;
  config.lambda = parser.get_double("lambda", 1e-3);
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed", 42));
  config.threads = static_cast<int>(parser.get_int("stream-threads", 1));
  config.resident_shards =
      static_cast<std::size_t>(parser.get_int("resident-shards", 2));
  config.async_prefetch = !parser.get_bool("sync-prefetch");
  config.merge_every = static_cast<int>(parser.get_int("merge-every", 0));

  // A resumed run takes the run identity (lambda, seed, threads) from the
  // checkpoint; the solver rejects shape mismatches below.
  const bool resuming = parser.has("resume");
  store::StreamingCheckpoint restored;
  if (resuming) {
    restored = store::read_checkpoint_file(parser.get_string("resume", ""));
    config.lambda = restored.lambda;
    config.seed = restored.seed;
    config.threads = static_cast<int>(restored.threads);
    std::printf(
        "resuming streamed run from epoch %llu + %llu shards (lambda %.3g)\n",
        static_cast<unsigned long long>(restored.epoch),
        static_cast<unsigned long long>(restored.shards_done),
        restored.lambda);
  }

  sparse::LabeledMatrix memory_data;  // owns the --stream-shards arm's bytes
  std::unique_ptr<store::StreamingDataset> source;
  if (!manifest_path.empty()) {
    source = std::make_unique<store::StoreStreamingDataset>(
        store::ShardReader::open(
            manifest_path,
            store::parse_read_mode(
                parser.get_string("store-mode", "buffered"))));
  } else {
    data::Dataset dataset = load_dataset(parser);
    memory_data.matrix = dataset.by_row();
    memory_data.labels.assign(dataset.labels().begin(),
                              dataset.labels().end());
    source = std::make_unique<store::MemoryShardedDataset>(
        dataset.name(), memory_data,
        static_cast<std::uint64_t>(parser.get_int("stream-shards", 4)));
  }
  std::printf("store: %s — %llu rows x %llu cols, %llu nnz, %zu shards\n",
              source->name().c_str(),
              static_cast<unsigned long long>(source->rows()),
              static_cast<unsigned long long>(source->cols()),
              static_cast<unsigned long long>(source->nnz()),
              source->num_shards());

  store::StreamingScdSolver solver(*source, config);
  if (resuming) {
    if (restored.rows != source->rows() || restored.cols != source->cols() ||
        restored.shards != source->num_shards()) {
      throw std::runtime_error(
          "checkpoint shape does not match this store — bit-exact resume "
          "is impossible");
    }
    solver.resume(static_cast<int>(restored.epoch), restored.shards_done,
                  std::move(restored.alpha), std::move(restored.shared));
  }

  core::RunOptions run_options;
  run_options.max_epochs = static_cast<int>(parser.get_int("epochs", 100));
  run_options.target_gap = parser.get_double("target-gap", 1e-6);
  run_options.record_interval = 1;
  run_options.gap_every = static_cast<int>(parser.get_int("gap-every", 1));

  store::CheckpointOptions checkpoint;
  checkpoint.every_shards = static_cast<std::size_t>(
      parser.get_int("checkpoint-every-shards", 0));
  if (checkpoint.every_shards > 0 || parser.has("checkpoint")) {
    checkpoint.path = parser.get_string("checkpoint", "tpascd.ckpt");
  }

  const auto trace = store::run_streaming(solver, run_options, checkpoint);
  std::printf("trained %d epochs with %s: gap %.3e\n",
              trace.points().back().epoch, solver.name().c_str(),
              trace.final_gap());
  const auto& stats = solver.prefetch_stats();
  std::printf(
      "prefetch: %llu loads, %llu stalls, %.3f s loading, %.3f s waiting, "
      "overlap %.1f%%\n",
      static_cast<unsigned long long>(stats.loads),
      static_cast<unsigned long long>(stats.stalls), stats.load_seconds,
      stats.wait_seconds, 100.0 * stats.overlap_fraction());

  if (parser.has("save")) {
    core::SavedModel model;
    model.formulation = core::Formulation::kDual;
    model.lambda = config.lambda;
    model.epoch = static_cast<std::uint32_t>(solver.epochs_completed());
    model.weights.assign(solver.alpha().begin(), solver.alpha().end());
    model.shared.assign(solver.shared().begin(), solver.shared().end());
    const auto path = parser.get_string("save", "");
    core::write_model_file(path, model);
    std::printf("model saved to %s\n", path.c_str());
  }

  write_trace_outputs(parser, trace, trace_out, chrome_trace);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("tpascd_train",
                         "train ridge regression with (simulated-)GPU "
                         "stochastic coordinate descent");
  parser.add_option("data", "svmlight/.bin dataset path (omit to generate)");
  parser.add_option("num-features", "force feature count for svmlight", "0");
  parser.add_option("generate", "webspam | criteo (when --data absent)",
                    "webspam");
  parser.add_option("examples", "generated example count", "8192");
  parser.add_option("features", "generated feature count", "2x examples");
  parser.add_option("seed", "RNG seed", "42");
  parser.add_option("solver",
                    "seq | ascd | wild | rep | ascd-threads | wild-threads | "
                    "rep-threads | tpa-m4000 | tpa-titanx",
                    "tpa-titanx");
  parser.add_option("form", "primal | dual", "dual");
  parser.add_option("lambda", "regularisation strength", "1e-3");
  parser.add_option("epochs", "maximum epochs", "100");
  parser.add_option("target-gap", "stop at this duality gap", "1e-6");
  parser.add_option("threads", "threads for CPU async solvers", "16");
  parser.add_option("gap-every",
                    "evaluate the duality gap every N epochs (amortises the "
                    "per-check matrix pass)",
                    "1");
  parser.add_option("gap-threads",
                    "threads for each duality-gap evaluation (1 = serial)",
                    "1");
  parser.add_option("merge-every",
                    "replicated solvers: updates per worker between replica "
                    "merges (0 = automatic)",
                    "0");
  parser.add_option("precision",
                    "shared-vector storage precision: fp32 | fp16 (fp16 "
                    "halves replica/shared bandwidth; weights, merges and "
                    "the duality gap stay full precision — DESIGN.md §16)",
                    "fp32");
  parser.add_flag("compress-deltas",
                  "cluster drivers: ship worker deltas quantized (fp16 "
                  "payload + per-block fp32 scales, FNV-checksummed in "
                  "encoded form)");
  parser.add_option("delta-threshold",
                    "compressed deltas: drop entries below this fraction of "
                    "the delta's max magnitude (0 = dense-quantized layout)",
                    "0");
  parser.add_option("workers", "distribute across this many workers", "1");
  parser.add_option("fleet",
                    "heterogeneous worker fleet: comma-separated "
                    "<count>x<device> with device cpu[:threads] | m4000 | "
                    "titanx, e.g. 4xtitanx,4xcpu:4 (sets --workers; see "
                    "DESIGN.md §14)");
  parser.add_option("placement",
                    "fleet partitioning: uniform (equal split) | optimize "
                    "(seeded annealer over partition sizes)",
                    "optimize");
  parser.add_option("placement-seed",
                    "seed of the placement annealer's proposal stream", "7");
  parser.add_flag("no-overlap",
                  "disable comm/compute overlap of the delta reduce "
                  "(overlap is on by default for --fleet runs)");
  parser.add_option("network",
                    "cluster interconnect preset: 10gbe | 100gbe | pcie",
                    "10gbe");
  parser.add_flag("adaptive", "use adaptive aggregation (Algorithm 4)");
  parser.add_flag("async",
                  "no-barrier bounded-staleness driver instead of the "
                  "synchronous rounds (DESIGN.md §13)");
  parser.add_option("staleness-window",
                    "async: max versions a delta may lag before the "
                    "staleness policy kicks in (0 = 2(K-1) adaptive)",
                    "0");
  parser.add_option("staleness-policy",
                    "async: damp (θ = τ/s under-relaxation) | reject",
                    "damp");
  parser.add_flag("elastic",
                  "async: enable the scripted join/leave schedule below");
  parser.add_option("leave-worker",
                    "elastic: detach this worker (-1 = off)", "-1");
  parser.add_option("leave-round", "round of the scripted leave", "3");
  parser.add_option("join-worker",
                    "elastic: revive this detached/evicted slot (-1 = off)",
                    "-1");
  parser.add_option("join-round", "round of the scripted join", "6");
  parser.add_option("store",
                    "train out-of-core from this shard-store manifest "
                    "(see tpascd_shard)");
  parser.add_option("store-mode", "shard read mode: buffered | mmap",
                    "buffered");
  parser.add_option("resident-shards",
                    "decoded shards resident at once (2 = double buffer)",
                    "2");
  parser.add_option("stream-shards",
                    "shard an in-memory dataset and run the streaming "
                    "solver over it (bit-exact comparison arm for --store)",
                    "0");
  parser.add_flag("sync-prefetch",
                  "load shards inline instead of prefetching (overlap "
                  "control arm)");
  parser.add_option("stream-threads",
                    "threads per shard sweep in streaming mode", "1");
  parser.add_option("checkpoint-every-shards",
                    "streaming mode: checkpoint every N shards (0 = off)",
                    "0");
  parser.add_option("save", "write the trained model here");
  parser.add_option("load", "load a model instead of training");
  parser.add_option("checkpoint", "checkpoint file for distributed runs",
                    "tpascd.ckpt");
  parser.add_option("checkpoint-every",
                    "write a checkpoint every N epochs (0 = off)", "0");
  parser.add_option("resume",
                    "resume a distributed run from this checkpoint");
  parser.add_option("crash-worker",
                    "inject a crash on this worker (-1 = off)", "-1");
  parser.add_option("crash-epoch", "epoch of the injected crash", "3");
  parser.add_option("stall-worker",
                    "permanently stall this worker (-1 = off)", "-1");
  parser.add_option("stall-factor", "slow-down factor of the stall", "4");
  parser.add_option("straggler-grace",
                    "deadline multiplier before degraded aggregation",
                    "1.5");
  parser.add_option("max-restarts", "crashes before a worker is evicted",
                    "3");
  parser.add_option("trace-out",
                    "write a trace here: .json = Chrome trace of spans "
                    "(Perfetto-loadable), .csv/.jsonl = gap-vs-time "
                    "convergence trace");
  parser.add_option("metrics-out",
                    "write a JSONL run report here (build meta, trace "
                    "points, cluster events, metric snapshot)");
  parser.add_option("log", "log level: debug|info|warn|error", "warn");
  if (!parser.parse(argc, argv)) return 1;
  util::set_log_level(util::parse_log_level(parser.get_string("log", "warn")));

  // Span recording must be live before any solver runs.  TPA_TRACE=1 in the
  // environment enables it too (see obs/trace.hpp).
  const auto trace_out = parser.get_string("trace-out", "");
  const bool chrome_trace = ends_with(trace_out, ".json");
  if (chrome_trace) obs::set_trace_enabled(true);

  try {
    if (parser.has("store") || parser.get_int("stream-shards", 0) > 0) {
      return run_streaming_mode(parser, trace_out, chrome_trace);
    }
    const auto dataset = load_dataset(parser);
    std::printf("dataset: %s\n",
                sparse::compute_stats(dataset.by_row()).summary().c_str());
    // A resumed run takes formulation and lambda from the checkpoint so the
    // objective is guaranteed to match the interrupted run.
    const bool resuming = parser.has("resume");
    core::SavedModel resume_model;
    if (resuming) {
      resume_model = core::read_model_file(parser.get_string("resume", ""));
      std::printf("resuming %s run from epoch %u (lambda %.3g)\n",
                  formulation_name(resume_model.formulation),
                  resume_model.epoch, resume_model.lambda);
    }
    const double lambda =
        resuming ? resume_model.lambda : parser.get_double("lambda", 1e-3);
    const core::RidgeProblem problem(dataset, lambda);

    // Predict-only path.
    if (parser.has("load")) {
      const auto model =
          core::read_model_file(parser.get_string("load", ""));
      std::printf("loaded %s model (lambda %.3g)\n",
                  formulation_name(model.formulation), model.lambda);
      const auto beta = model.formulation == core::Formulation::kPrimal
                            ? model.weights
                            : problem.primal_from_dual_shared(model.shared);
      report_metrics(dataset, beta);
      return 0;
    }

    const auto formulation =
        resuming ? resume_model.formulation
        : parser.get_string("form", "dual") == "primal"
            ? core::Formulation::kPrimal
            : core::Formulation::kDual;
    core::SolverConfig solver_config;
    solver_config.kind =
        core::parse_solver_kind(parser.get_string("solver", "tpa-titanx"));
    solver_config.formulation = formulation;
    solver_config.threads =
        static_cast<int>(parser.get_int("threads", 16));
    solver_config.seed = static_cast<std::uint64_t>(parser.get_int("seed", 42));

    core::RunOptions run_options;
    run_options.max_epochs = static_cast<int>(parser.get_int("epochs", 100));
    run_options.target_gap = parser.get_double("target-gap", 1e-6);
    run_options.record_interval = 1;
    run_options.gap_every = static_cast<int>(parser.get_int("gap-every", 1));
    run_options.gap_threads =
        static_cast<int>(parser.get_int("gap-threads", 1));
    run_options.merge_every =
        static_cast<int>(parser.get_int("merge-every", 0));
    solver_config.merge_every = run_options.merge_every;

    const auto precision_name = parser.get_string("precision", "fp32");
    if (precision_name == "fp16" || precision_name == "half") {
      linalg::set_shared_precision(linalg::SharedPrecision::kFp16);
    } else if (precision_name != "fp32") {
      throw std::invalid_argument("unknown --precision '" + precision_name +
                                  "' (fp32 | fp16)");
    }

    cluster::placement::FleetSpec fleet;
    if (parser.has("fleet")) {
      fleet = cluster::placement::parse_fleet_spec(
          parser.get_string("fleet", ""));
      std::printf("fleet: %s\n",
                  cluster::placement::fleet_summary(fleet).c_str());
    }
    const auto placement_mode = cluster::placement::parse_placement_mode(
        parser.get_string("placement", "optimize"));
    const auto placement_seed =
        static_cast<std::uint64_t>(parser.get_int("placement-seed", 7));
    const auto network =
        parse_network_preset(parser.get_string("network", "10gbe"));
    // --fleet names one device per worker slot, so it pins the worker count.
    const int workers =
        fleet.empty() ? static_cast<int>(parser.get_int("workers", 1))
                      : static_cast<int>(fleet.size());
    core::SavedModel model;
    model.formulation = formulation;
    model.lambda = lambda;
    core::ConvergenceTrace trace;

    if (resuming && workers <= 1) {
      throw std::invalid_argument(
          "--resume needs a distributed run (--workers > 1)");
    }
    if (!fleet.empty() && workers < 2) {
      throw std::invalid_argument(
          "--fleet needs at least two devices (one per worker slot)");
    }

    std::string placement_json;
    std::string drift_json;
    // "Where did the round go?" — the per-round mean of the attribution the
    // solver records as round.attr.* (components sum to the round wall-time).
    const auto print_attribution = [](const obs::RoundAttribution& totals,
                                      std::uint64_t rounds) {
      if (rounds == 0) return;
      const double inv = 1.0 / static_cast<double>(rounds);
      std::printf(
          "attribution (per-round mean over %llu rounds): compute %.3f ms, "
          "host %.3f ms, pcie %.3f ms, network %.3f ms, straggler wait "
          "%.3f ms, stale overhead %.3f ms\n",
          static_cast<unsigned long long>(rounds),
          1e3 * totals.compute_seconds * inv, 1e3 * totals.host_seconds * inv,
          1e3 * totals.pcie_seconds * inv, 1e3 * totals.network_seconds * inv,
          1e3 * totals.straggler_wait_seconds * inv,
          1e3 * totals.stale_overhead_seconds * inv);
    };
    const auto report_placement =
        [&](const cluster::placement::PlacementResult* plan,
            double simulated_round_seconds) {
          if (plan == nullptr) return;
          cluster::placement::record_placement_obs(*plan);
          std::printf(
              "placement: %s (seed %llu, %s) — predicted round %.3f ms vs "
              "uniform %.3f ms (%.2fx), simulated round %.3f ms\n",
              cluster::placement::placement_mode_name(plan->mode),
              static_cast<unsigned long long>(plan->seed),
              plan->optimized ? "non-uniform sizes" : "uniform sizes",
              1e3 * plan->predicted.total(),
              1e3 * plan->uniform_predicted.total(),
              plan->predicted_speedup(), 1e3 * simulated_round_seconds);
          placement_json =
              placement_report_json(*plan, simulated_round_seconds);
        };

    const auto build_faults = [&](cluster::FaultConfig& faults) {
      const int crash_worker =
          static_cast<int>(parser.get_int("crash-worker", -1));
      if (crash_worker >= 0) {
        cluster::FaultEvent crash;
        crash.kind = cluster::FaultKind::kCrash;
        crash.worker = crash_worker;
        crash.epoch = static_cast<int>(parser.get_int("crash-epoch", 3));
        faults.scripted.push_back(crash);
      }
      const int stall_worker =
          static_cast<int>(parser.get_int("stall-worker", -1));
      if (stall_worker >= 0) {
        cluster::FaultEvent stall;
        stall.kind = cluster::FaultKind::kStall;
        stall.worker = stall_worker;
        stall.epoch = 1;
        stall.stall_factor = parser.get_double("stall-factor", 4.0);
        stall.permanent = true;
        faults.scripted.push_back(stall);
      }
    };
    cluster::CheckpointConfig ckpt;
    ckpt.every_epochs =
        static_cast<int>(parser.get_int("checkpoint-every", 0));
    ckpt.path = parser.get_string("checkpoint", "tpascd.ckpt");

    if (workers > 1 && parser.get_bool("async")) {
      cluster::AsyncConfig async;
      async.formulation = formulation;
      async.num_workers = workers;
      async.aggregation = parser.get_bool("adaptive")
                              ? cluster::AggregationMode::kAdaptive
                              : cluster::AggregationMode::kAveraging;
      async.local_solver = solver_config;
      async.lambda = lambda;
      async.max_restarts = static_cast<int>(parser.get_int("max-restarts", 3));
      async.staleness_window =
          static_cast<int>(parser.get_int("staleness-window", 0));
      async.staleness_policy = cluster::parse_staleness_policy(
          parser.get_string("staleness-policy", "damp"));
      async.network = network;
      async.fleet = fleet;
      async.placement = placement_mode;
      async.placement_seed = placement_seed;
      async.compress_deltas = parser.get_bool("compress-deltas");
      async.delta_threshold = parser.get_double("delta-threshold", 0.0);
      build_faults(async.faults);
      if (parser.get_bool("elastic")) {
        const int leave_worker =
            static_cast<int>(parser.get_int("leave-worker", -1));
        if (leave_worker >= 0) {
          async.membership.push_back(
              {static_cast<int>(parser.get_int("leave-round", 3)),
               leave_worker, cluster::MembershipEvent::Kind::kLeave});
        }
        const int join_worker =
            static_cast<int>(parser.get_int("join-worker", -1));
        if (join_worker >= 0) {
          async.membership.push_back(
              {static_cast<int>(parser.get_int("join-round", 6)),
               join_worker, cluster::MembershipEvent::Kind::kJoin});
        }
      }

      cluster::AsyncSolver solver(dataset, async);
      if (resuming) solver.restore_files(parser.get_string("resume", ""));
      trace = cluster::run_async(solver, run_options, ckpt);
      std::printf(
          "trained %d async rounds across %d workers (%s, window %d, %s): "
          "gap %.3e, %llu applied versions, simulated %.3f s\n",
          trace.points().back().epoch, workers,
          aggregation_name(async.aggregation),
          solver.effective_staleness_window(),
          staleness_policy_name(async.staleness_policy), trace.final_gap(),
          static_cast<unsigned long long>(solver.version()),
          trace.points().back().sim_seconds);
      if (!trace.events().empty()) {
        std::printf(
            "async log: %zu crashes, %zu restarts, %zu evictions, "
            "%zu joins, %zu leaves, %zu damped, %zu rejected, %zu dropped, "
            "%zu corrupted, %zu checkpoints\n",
            trace.count_events(core::ClusterEventKind::kCrash),
            trace.count_events(core::ClusterEventKind::kRestart),
            trace.count_events(core::ClusterEventKind::kEvict),
            trace.count_events(core::ClusterEventKind::kJoin),
            trace.count_events(core::ClusterEventKind::kLeave),
            trace.count_events(core::ClusterEventKind::kStaleDamped),
            trace.count_events(core::ClusterEventKind::kStaleRejected),
            trace.count_events(core::ClusterEventKind::kDeltaDropped),
            trace.count_events(core::ClusterEventKind::kDeltaCorrupted),
            trace.count_events(core::ClusterEventKind::kCheckpoint));
      }
      if (async.compress_deltas && solver.delta_bytes_dense() > 0) {
        std::printf(
            "delta exchange: %.2f MB on wire vs %.2f MB dense (%.2fx)\n",
            static_cast<double>(solver.delta_bytes_on_wire()) / 1e6,
            static_cast<double>(solver.delta_bytes_dense()) / 1e6,
            static_cast<double>(solver.delta_bytes_dense()) /
                static_cast<double>(solver.delta_bytes_on_wire()));
      }
      const auto rounds = std::max(1, solver.current_epoch());
      report_placement(solver.placement_result(),
                       trace.points().back().sim_seconds / rounds);
      print_attribution(solver.attribution_totals(),
                        solver.attribution_rounds());
      model.epoch = static_cast<std::uint32_t>(solver.current_epoch());
      model.weights = solver.global_weights();
      model.shared = solver.global_shared();
    } else if (workers > 1) {
      cluster::DistConfig dist;
      dist.formulation = formulation;
      dist.num_workers = workers;
      dist.aggregation = parser.get_bool("adaptive")
                             ? cluster::AggregationMode::kAdaptive
                             : cluster::AggregationMode::kAveraging;
      dist.local_solver = solver_config;
      dist.lambda = lambda;
      dist.straggler_grace = parser.get_double("straggler-grace", 1.5);
      dist.max_restarts = static_cast<int>(parser.get_int("max-restarts", 3));
      dist.network = network;
      dist.fleet = fleet;
      dist.placement = placement_mode;
      dist.placement_seed = placement_seed;
      dist.comm_overlap = !fleet.empty() && !parser.get_bool("no-overlap");
      dist.compress_deltas = parser.get_bool("compress-deltas");
      dist.delta_threshold = parser.get_double("delta-threshold", 0.0);
      build_faults(dist.faults);

      cluster::DistributedSolver solver(dataset, dist);
      if (resuming) solver.restore(resume_model);
      trace = cluster::run_distributed(solver, run_options, ckpt);
      std::printf("trained %d epochs across %d workers (%s): gap %.3e, "
                  "simulated %.3f s\n",
                  trace.points().back().epoch, workers,
                  aggregation_name(dist.aggregation), trace.final_gap(),
                  trace.points().back().sim_seconds);
      if (!trace.events().empty()) {
        std::printf(
            "fault log: %zu crashes, %zu restarts, %zu evictions, "
            "%zu deadline misses, %zu late deltas, %zu checkpoints\n",
            trace.count_events(core::ClusterEventKind::kCrash),
            trace.count_events(core::ClusterEventKind::kRestart),
            trace.count_events(core::ClusterEventKind::kEvict),
            trace.count_events(core::ClusterEventKind::kDeadlineMiss),
            trace.count_events(core::ClusterEventKind::kLateDelta),
            trace.count_events(core::ClusterEventKind::kCheckpoint));
      }
      if (dist.compress_deltas && solver.delta_bytes_dense() > 0) {
        std::printf(
            "delta exchange: %.2f MB on wire vs %.2f MB dense (%.2fx)\n",
            static_cast<double>(solver.delta_bytes_on_wire()) / 1e6,
            static_cast<double>(solver.delta_bytes_dense()) / 1e6,
            static_cast<double>(solver.delta_bytes_dense()) /
                static_cast<double>(solver.delta_bytes_on_wire()));
      }
      report_placement(solver.placement_result(),
                       solver.last_breakdown().total());
      print_attribution(solver.attribution_totals(),
                        solver.attribution_rounds());
      if (const auto* plan = solver.placement_result()) {
        const auto drift = cluster::placement::audit_placement_drift(
            plan->predicted, solver.attribution_totals(),
            solver.attribution_rounds());
        cluster::placement::record_drift_obs(drift);
        cluster::placement::print_drift_report(std::cout, drift);
        drift_json = drift_report_json(drift);
      }
      model.epoch = static_cast<std::uint32_t>(solver.current_epoch());
      model.weights = solver.global_weights();
      model.shared = solver.global_shared();
    } else {
      const auto solver = core::make_solver(problem, solver_config);
      trace = core::run_solver(*solver, problem, run_options);
      std::printf("trained %d epochs with %s: gap %.3e, simulated %.3f s\n",
                  trace.points().back().epoch, solver->name().c_str(),
                  trace.final_gap(), trace.points().back().sim_seconds);
      model.weights = solver->state().weights;
      model.shared = solver->state().shared;
    }

    const auto beta = formulation == core::Formulation::kPrimal
                          ? model.weights
                          : problem.primal_from_dual_shared(model.shared);
    report_metrics(dataset, beta);

    if (parser.has("save")) {
      const auto path = parser.get_string("save", "");
      core::write_model_file(path, model);
      std::printf("model saved to %s\n", path.c_str());
    }

    write_trace_outputs(parser, trace, trace_out, chrome_trace,
                        placement_json, drift_json);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
