// tpascd_shard — build and validate out-of-core shard stores.
//
// Converts a dataset (svmlight text, our .bin cache, or a generated
// stand-in) into the TPASTORE manifest + TPA1 shard-slice layout that
// tpascd_train --store trains from, or verifies an existing store
// shard-by-shard (sizes, header shapes, checksums).
//
// Examples:
//   tpascd_shard --data train.svm --out store --name criteo --shards 8
//   tpascd_shard --data huge.svm --stream --rows-per-shard 1000000
//                --num-features 75000000 --out store --name criteo1day
//   tpascd_shard --generate criteo --examples 65536 --shards 8 --out store
//   tpascd_shard --verify store/criteo.manifest --store-mode mmap
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/generators.hpp"
#include "sparse/load.hpp"
#include "store/format.hpp"
#include "store/shard_reader.hpp"
#include "store/svmlight_stream.hpp"
#include "util/cli.hpp"

namespace {

using namespace tpa;

// Mirrors tpascd_train's generator wiring exactly, so a store built here
// and an in-memory run over `--generate` with the same seed see the same
// bytes — the precondition for the bit-exact streamed-vs-resident check.
sparse::LabeledMatrix generate_matrix(const util::ArgParser& parser) {
  const auto kind = parser.get_string("generate", "webspam");
  const auto examples =
      static_cast<data::Index>(parser.get_int("examples", 8192));
  const auto seed = static_cast<std::uint64_t>(parser.get_int("seed", 42));
  data::Dataset dataset = [&] {
    if (kind == "criteo") {
      data::CriteoLikeConfig config;
      config.num_examples = examples;
      config.seed = seed;
      return data::make_criteo_like(config);
    }
    data::WebspamLikeConfig config;
    config.num_examples = examples;
    config.num_features =
        static_cast<data::Index>(parser.get_int("features", 2 * examples));
    config.seed = seed;
    return data::make_webspam_like(config);
  }();
  return sparse::LabeledMatrix{
      dataset.by_row(),
      std::vector<float>(dataset.labels().begin(), dataset.labels().end())};
}

int verify_store(const std::string& manifest_path, store::ReadMode mode) {
  const auto reader = store::ShardReader::open(manifest_path, mode);
  const auto& manifest = reader.manifest();
  std::printf("store %s: %llu rows x %llu cols, %llu nnz, %zu shards (%s)\n",
              manifest.name.c_str(),
              static_cast<unsigned long long>(manifest.rows),
              static_cast<unsigned long long>(manifest.cols),
              static_cast<unsigned long long>(manifest.nnz),
              manifest.shards.size(), store::read_mode_name(mode));
  for (std::size_t i = 0; i < reader.num_shards(); ++i) {
    const auto slice = reader.read_shard(i);  // validates size+shape+checksum
    std::printf("  shard %zu: rows [%llu, %llu), nnz %llu — ok\n", i,
                static_cast<unsigned long long>(
                    manifest.shards[i].row_begin),
                static_cast<unsigned long long>(manifest.shards[i].row_begin +
                                                manifest.shards[i].rows),
                static_cast<unsigned long long>(slice.matrix.nnz()));
  }
  std::printf("all %zu shards verified\n", reader.num_shards());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("tpascd_shard",
                         "convert datasets to the out-of-core shard store "
                         "(and verify existing stores)");
  parser.add_option("data", "svmlight/.bin dataset path (omit to generate)");
  parser.add_option("num-features", "force feature count for svmlight", "0");
  parser.add_option("generate", "webspam | criteo (when --data absent)",
                    "webspam");
  parser.add_option("examples", "generated example count", "8192");
  parser.add_option("features", "generated feature count", "2x examples");
  parser.add_option("seed", "RNG seed", "42");
  parser.add_option("out", "store output directory", "store");
  parser.add_option("name", "store name (manifest/shard file prefix)",
                    "dataset");
  parser.add_option("shards", "shard count (even ceil split)", "4");
  parser.add_option("rows-per-shard",
                    "rows per shard (overrides --shards when > 0)", "0");
  parser.add_flag("stream",
                  "stream svmlight text row-by-row (one shard of peak "
                  "memory; needs --rows-per-shard)");
  parser.add_option("verify",
                    "validate every shard of this manifest instead of "
                    "converting");
  parser.add_option("store-mode", "verify read mode: buffered | mmap",
                    "buffered");
  if (!parser.parse(argc, argv)) return 1;

  try {
    if (parser.has("verify")) {
      return verify_store(
          parser.get_string("verify", ""),
          store::parse_read_mode(parser.get_string("store-mode", "buffered")));
    }

    const auto out = parser.get_string("out", "store");
    const auto name = parser.get_string("name", "dataset");
    const auto shards =
        static_cast<std::uint64_t>(parser.get_int("shards", 4));
    const auto rows_per_shard =
        static_cast<std::uint64_t>(parser.get_int("rows-per-shard", 0));

    store::Manifest manifest;
    if (parser.get_bool("stream")) {
      if (!parser.has("data") || rows_per_shard == 0) {
        throw std::invalid_argument(
            "--stream needs --data <svmlight> and --rows-per-shard");
      }
      manifest = store::convert_svmlight_file_to_store(
          parser.get_string("data", ""), out, name, rows_per_shard,
          static_cast<sparse::Index>(parser.get_int("num-features", 0)));
    } else {
      const sparse::LabeledMatrix data =
          parser.has("data")
              ? sparse::load_labeled_file(
                    parser.get_string("data", ""),
                    static_cast<sparse::Index>(
                        parser.get_int("num-features", 0)))
              : generate_matrix(parser);
      const std::uint64_t rps =
          rows_per_shard > 0
              ? rows_per_shard
              : store::rows_per_shard(data.matrix.rows(), shards);
      store::ShardWriter writer(out, name,
                                data.matrix.cols(), rps);
      for (sparse::Index r = 0; r < data.matrix.rows(); ++r) {
        const auto row = data.matrix.row(r);
        writer.append(row.indices, row.values, data.labels[r]);
      }
      manifest = writer.finish();
    }
    std::printf(
        "wrote %s: %llu rows x %llu cols, %llu nnz across %zu shards\n",
        (out + "/" + name + ".manifest").c_str(),
        static_cast<unsigned long long>(manifest.rows),
        static_cast<unsigned long long>(manifest.cols),
        static_cast<unsigned long long>(manifest.nnz),
        manifest.shards.size());
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return 0;
}
