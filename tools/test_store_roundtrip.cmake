# Integration test for the out-of-core store: a run streamed from disk
# must be bit-identical to the same run over in-memory shards, and a
# killed-and-resumed streamed run must reproduce the uninterrupted one.
# Five CLI steps on the same generated dataset (criteo-like, 6 shards):
#   1. tpascd_shard --generate               -> store on disk
#   2. tpascd_shard --verify                 -> every shard checksums clean
#   3. train --store (disk, mmap)            -> store.tpam
#   4. train --stream-shards (memory, sync)  -> memory.tpam  == store.tpam
#   5. train --store with mid-epoch checkpoints, then --resume
#                                            -> resumed.tpam == store.tpam
set(common --generate criteo --examples 1536 --seed 7)
set(train_common ${common} --lambda 1e-3 --epochs 6 --target-gap 0)
execute_process(
  COMMAND ${SHARD_BIN} ${common} --shards 6
          --out ${WORK_DIR}/store_rt --name criteo
  RESULT_VARIABLE shard_result)
if(NOT shard_result EQUAL 0)
  message(FATAL_ERROR "store conversion failed: ${shard_result}")
endif()
execute_process(
  COMMAND ${SHARD_BIN} --verify ${WORK_DIR}/store_rt/criteo.manifest
          --store-mode mmap
  RESULT_VARIABLE verify_result)
if(NOT verify_result EQUAL 0)
  message(FATAL_ERROR "store verification failed: ${verify_result}")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} ${train_common}
          --store ${WORK_DIR}/store_rt/criteo.manifest --store-mode mmap
          --save ${WORK_DIR}/store.tpam
  RESULT_VARIABLE store_result)
if(NOT store_result EQUAL 0)
  message(FATAL_ERROR "streamed (disk) run failed: ${store_result}")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} ${train_common} --stream-shards 6 --sync-prefetch
          --save ${WORK_DIR}/memory.tpam
  RESULT_VARIABLE memory_result)
if(NOT memory_result EQUAL 0)
  message(FATAL_ERROR "in-memory comparison run failed: ${memory_result}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/store.tpam ${WORK_DIR}/memory.tpam
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
          "streamed model differs from the in-memory shards model")
endif()
# Interrupted run: stop after 3 epochs + a bit (checkpoint every 4 shards
# lands mid-epoch), then resume to epoch 6 and compare.
execute_process(
  COMMAND ${TRAIN_BIN} ${common} --lambda 1e-3 --epochs 3 --target-gap 0
          --store ${WORK_DIR}/store_rt/criteo.manifest
          --checkpoint-every-shards 4 --checkpoint ${WORK_DIR}/stream.tpsc
  RESULT_VARIABLE half_result)
if(NOT half_result EQUAL 0)
  message(FATAL_ERROR "checkpointing streamed run failed: ${half_result}")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} ${train_common}
          --store ${WORK_DIR}/store_rt/criteo.manifest
          --resume ${WORK_DIR}/stream.tpsc --save ${WORK_DIR}/resumed.tpam
  RESULT_VARIABLE resume_result)
if(NOT resume_result EQUAL 0)
  message(FATAL_ERROR "resumed streamed run failed: ${resume_result}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/store.tpam ${WORK_DIR}/resumed.tpam
  RESULT_VARIABLE resume_diff)
if(NOT resume_diff EQUAL 0)
  message(FATAL_ERROR
          "resumed streamed model differs from the uninterrupted run")
endif()
