# Integration test: a killed-and-resumed distributed run must reproduce the
# uninterrupted run exactly.  Three CLI runs on the same generated dataset:
#   1. straight 8-epoch run                          -> full.tpam
#   2. 4-epoch run writing checkpoints every 2       -> resume.ckpt
#   3. --resume continuation to epoch 8              -> resumed.tpam
# Bit-exact resume means the two saved models are byte-identical.
set(common --generate webspam --examples 512 --features 1024 --workers 2
    --adaptive --target-gap 0)
execute_process(
  COMMAND ${TRAIN_BIN} ${common} --epochs 8 --save ${WORK_DIR}/full.tpam
  RESULT_VARIABLE full_result)
if(NOT full_result EQUAL 0)
  message(FATAL_ERROR "uninterrupted run failed: ${full_result}")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} ${common} --epochs 4 --checkpoint-every 2
          --checkpoint ${WORK_DIR}/resume.ckpt
  RESULT_VARIABLE half_result)
if(NOT half_result EQUAL 0)
  message(FATAL_ERROR "checkpointing run failed: ${half_result}")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} ${common} --epochs 8
          --resume ${WORK_DIR}/resume.ckpt --save ${WORK_DIR}/resumed.tpam
  RESULT_VARIABLE resume_result)
if(NOT resume_result EQUAL 0)
  message(FATAL_ERROR "resumed run failed: ${resume_result}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/full.tpam ${WORK_DIR}/resumed.tpam
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
          "resumed model differs from the uninterrupted run's model")
endif()
