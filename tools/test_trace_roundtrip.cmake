# Observability roundtrip: a distributed fault drill with --trace-out and
# --metrics-out must produce a Chrome trace carrying per-worker
# solve/reduce/broadcast spans, crash/restart instants, causal flow arrows
# and the attribution track, and a run report whose cluster.event.* counters
# agree with the fault log; a .csv trace-out must produce the gap-vs-time
# table.  The stalled worker guarantees a non-zero straggler_wait component.
execute_process(
  COMMAND ${TRAIN_BIN} --generate webspam --examples 256 --features 512
          --epochs 8 --target-gap 0 --workers 3
          --crash-worker 1 --crash-epoch 3
          --stall-worker 2 --stall-factor 4
          --trace-out ${WORK_DIR}/drill_trace.json
          --metrics-out ${WORK_DIR}/drill_metrics.jsonl
  RESULT_VARIABLE drill_result
  OUTPUT_VARIABLE drill_output
  ERROR_VARIABLE drill_stderr)
if(NOT drill_result EQUAL 0)
  message(FATAL_ERROR "fault drill failed: ${drill_result}\n${drill_stderr}")
endif()
foreach(needle "fault log: 1 crashes, 1 restarts"
        "Chrome trace" "written to" "run report written to")
  string(FIND "${drill_output}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "drill output missing \"${needle}\":\n${drill_output}")
  endif()
endforeach()

file(READ ${WORK_DIR}/drill_trace.json trace_json)
foreach(needle "\"traceEvents\"" "dist/local_solve" "dist/reduce"
        "dist/broadcast" "dist/straggler_wait" "dist/epoch"
        "\"crash\"" "\"restart\"" "dist/worker 1" "dist/master"
        "\"ph\": \"X\"" "\"ph\": \"i\""
        "\"ph\": \"s\"" "\"ph\": \"f\"" "\"bp\": \"e\""
        "flow/delta" "flow/model"
        "dist/attribution (sim)" "attr/round" "attr/compute"
        "attr/straggler_wait")
  string(FIND "${trace_json}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "Chrome trace missing ${needle}")
  endif()
endforeach()

file(READ ${WORK_DIR}/drill_metrics.jsonl metrics_jsonl)
foreach(needle "\"type\": \"meta\"" "\"tool\": \"tpascd_train\""
        "\"git_sha\"" "\"kernel_backend\"" "\"type\": \"point\""
        "\"kind\": \"crash\"" "\"kind\": \"restart\""
        "cluster.event.crash" "cluster.event.restart" "cluster.epochs"
        "train.gap_evals" "trace_events_dropped"
        "round.attr.total_seconds" "round.attr.compute_seconds"
        "round.attr.straggler_wait_seconds" "round.attr.rounds")
  string(FIND "${metrics_jsonl}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "run report missing ${needle}:\n${metrics_jsonl}")
  endif()
endforeach()

# The offline analyzer must reconstruct the attribution from the exported
# files and confirm the components sum to the round wall-time within 1%.
execute_process(
  COMMAND ${TRACEVIEW_BIN} --trace ${WORK_DIR}/drill_trace.json
          --metrics ${WORK_DIR}/drill_metrics.jsonl
          --check --max-residual 0.01
  RESULT_VARIABLE view_result
  OUTPUT_VARIABLE view_output
  ERROR_VARIABLE view_stderr)
if(NOT view_result EQUAL 0)
  message(FATAL_ERROR
          "traceview check failed: ${view_result}\n${view_output}\n${view_stderr}")
endif()
foreach(needle "per-round attribution" "per-worker utilization"
        "critical-path slices" "traceview checks passed")
  string(FIND "${view_output}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "traceview output missing \"${needle}\":\n${view_output}")
  endif()
endforeach()

# Diffing a report against itself is the degenerate base case: it must parse
# both sides and find zero changed metrics.
execute_process(
  COMMAND ${TRACEVIEW_BIN} --diff ${WORK_DIR}/drill_metrics.jsonl
          ${WORK_DIR}/drill_metrics.jsonl
  RESULT_VARIABLE diff_result
  OUTPUT_VARIABLE diff_output
  ERROR_VARIABLE diff_stderr)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR "traceview diff failed: ${diff_result}\n${diff_stderr}")
endif()
string(FIND "${diff_output}" "0 of " self_diff_found)
if(self_diff_found EQUAL -1)
  message(FATAL_ERROR "self-diff should change nothing:\n${diff_output}")
endif()
# The drill injects exactly one crash and sees exactly one restart; the
# counters must agree with the ConvergenceTrace event counts printed above.
foreach(needle "\"name\": \"cluster.event.crash\", \"value\": 1"
        "\"name\": \"cluster.event.restart\", \"value\": 1")
  string(FIND "${metrics_jsonl}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "counter mismatch, expected ${needle}:\n${metrics_jsonl}")
  endif()
endforeach()

# CSV convergence trace from a single-worker run.
execute_process(
  COMMAND ${TRAIN_BIN} --generate webspam --examples 256 --features 512
          --epochs 5 --target-gap 0 --solver seq
          --trace-out ${WORK_DIR}/gap_trace.csv
  RESULT_VARIABLE csv_result
  OUTPUT_VARIABLE csv_output
  ERROR_VARIABLE csv_stderr)
if(NOT csv_result EQUAL 0)
  message(FATAL_ERROR "csv trace run failed: ${csv_result}\n${csv_stderr}")
endif()
file(READ ${WORK_DIR}/gap_trace.csv gap_csv)
string(FIND "${gap_csv}" "epoch,gap,sim_seconds,wall_seconds,gamma,contributors"
       header_found)
if(header_found EQUAL -1)
  message(FATAL_ERROR "csv trace missing header:\n${gap_csv}")
endif()
string(REGEX MATCHALL "\n5," final_row "${gap_csv}")
if(final_row STREQUAL "")
  message(FATAL_ERROR "csv trace missing epoch-5 row:\n${gap_csv}")
endif()

# Traced serve replay: batch/reload spans and the serving stats report.
execute_process(
  COMMAND ${TRAIN_BIN} --generate webspam --examples 256 --features 512
          --epochs 5 --save ${WORK_DIR}/trace_model.tpam
  RESULT_VARIABLE model_result)
if(NOT model_result EQUAL 0)
  message(FATAL_ERROR "model training failed: ${model_result}")
endif()
execute_process(
  COMMAND ${SERVE_BIN} --model ${WORK_DIR}/trace_model.tpam
          --generate webspam --examples 256 --features 512
          --requests 2000 --batch 32 --threads 2
          --trace-out ${WORK_DIR}/serve_trace.json
          --metrics-out ${WORK_DIR}/serve_metrics.jsonl
  RESULT_VARIABLE serve_result
  OUTPUT_VARIABLE serve_output
  ERROR_VARIABLE serve_stderr)
if(NOT serve_result EQUAL 0)
  message(FATAL_ERROR "traced serve failed: ${serve_result}\n${serve_stderr}")
endif()
file(READ ${WORK_DIR}/serve_trace.json serve_json)
foreach(needle "serve/batch" "serve/reload")
  string(FIND "${serve_json}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "serve trace missing ${needle}")
  endif()
endforeach()
file(READ ${WORK_DIR}/serve_metrics.jsonl serve_report)
foreach(needle "\"tool\": \"tpascd_serve\"" "\"type\": \"serve_stats\""
        "\"completed\": 2000" "\"p99_us\"")
  string(FIND "${serve_report}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "serve report missing ${needle}:\n${serve_report}")
  endif()
endforeach()
