# Integration test: a killed-and-resumed *asynchronous* run must reproduce
# the uninterrupted run exactly, faults and membership changes included.
# The async resume contract is stricter than the sync one: a checkpoint is a
# rendezvous (in-flight cycles are discarded and the clock rebased), so the
# straight run must checkpoint on the same cadence as the interrupted one
# for the two trajectories to coincide.  Three CLI runs, same dataset:
#   1. straight 8-round run, checkpoints every 2     -> afull.tpam
#   2. 4-round run writing checkpoints every 2       -> aresume.ckpt
#   3. --resume continuation to round 8              -> aresumed.tpam
# Bit-exact replay means the two saved models are byte-identical.
set(common --generate webspam --examples 512 --features 1024 --workers 4
    --async --adaptive --target-gap 0 --checkpoint-every 2
    --crash-worker 1 --crash-epoch 3
    --elastic --leave-worker 2 --leave-round 5 --join-worker 2 --join-round 7)
execute_process(
  COMMAND ${TRAIN_BIN} ${common} --epochs 8
          --checkpoint ${WORK_DIR}/afull.ckpt --save ${WORK_DIR}/afull.tpam
  RESULT_VARIABLE full_result)
if(NOT full_result EQUAL 0)
  message(FATAL_ERROR "uninterrupted async run failed: ${full_result}")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} ${common} --epochs 4
          --checkpoint ${WORK_DIR}/aresume.ckpt
  RESULT_VARIABLE half_result)
if(NOT half_result EQUAL 0)
  message(FATAL_ERROR "checkpointing async run failed: ${half_result}")
endif()
if(NOT EXISTS ${WORK_DIR}/aresume.ckpt.async)
  message(FATAL_ERROR "async checkpoint sidecar (.async) was not written")
endif()
execute_process(
  COMMAND ${TRAIN_BIN} ${common} --epochs 8
          --checkpoint ${WORK_DIR}/aresume.ckpt
          --resume ${WORK_DIR}/aresume.ckpt --save ${WORK_DIR}/aresumed.tpam
  RESULT_VARIABLE resume_result)
if(NOT resume_result EQUAL 0)
  message(FATAL_ERROR "resumed async run failed: ${resume_result}")
endif()
execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          ${WORK_DIR}/afull.tpam ${WORK_DIR}/aresumed.tpam
  RESULT_VARIABLE diff_result)
if(NOT diff_result EQUAL 0)
  message(FATAL_ERROR
          "resumed async model differs from the uninterrupted run's model")
endif()
