// Model serialization round trips, corruption detection, and the
// cross-formulation prediction path the CLI tool relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>

#include "core/metrics.hpp"
#include "core/model_io.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"

namespace tpa::core {
namespace {

SavedModel sample_model() {
  SavedModel model;
  model.formulation = Formulation::kDual;
  model.lambda = 0.025;
  model.weights = {0.5F, -1.0F, 2.0F};
  model.shared = {1.0F, 0.0F};
  return model;
}

TEST(ModelIo, StreamRoundTrip) {
  const auto model = sample_model();
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, model);
  const auto loaded = read_model(stream);
  EXPECT_EQ(loaded.formulation, model.formulation);
  EXPECT_DOUBLE_EQ(loaded.lambda, model.lambda);
  EXPECT_EQ(loaded.weights, model.weights);
  EXPECT_EQ(loaded.shared, model.shared);
}

TEST(ModelIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tpa_model_io_test.tpam")
          .string();
  const auto model = sample_model();
  write_model_file(path, model);
  const auto loaded = read_model_file(path);
  EXPECT_EQ(loaded.weights, model.weights);
  std::remove(path.c_str());
}

TEST(ModelIo, EpochCounterRoundTrips) {
  auto model = sample_model();
  model.epoch = 42;
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, model);
  EXPECT_EQ(read_model(stream).epoch, 42u);
}

TEST(ModelIo, DefaultEpochIsZeroForPlainModels) {
  // Pre-fault-layer files carried a zeroed reserved word where the epoch
  // now lives, so a model saved without one must read back as epoch 0.
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, sample_model());
  EXPECT_EQ(read_model(stream).epoch, 0u);
}

TEST(ModelIo, FileWriteIsAtomic) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "tpa_model_atomic.tpam").string();
  // Seed the destination with an older model, then overwrite.
  auto old_model = sample_model();
  write_model_file(path, old_model);
  auto new_model = sample_model();
  new_model.weights = {7.0F};
  new_model.epoch = 9;
  write_model_file(path, new_model);
  // The save went through <path>.tmp + rename: the temp file must be gone
  // and the destination must hold the complete new model.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const auto loaded = read_model_file(path);
  EXPECT_EQ(loaded.weights, new_model.weights);
  EXPECT_EQ(loaded.epoch, 9u);
  std::remove(path.c_str());
}

TEST(ModelIo, FailedWriteLeavesNoTempFileBehind) {
  // An unwritable destination directory throws — and must clean up the
  // partially written temp file instead of littering.
  const std::string path = "/no/such/dir/model.tpam";
  EXPECT_THROW(write_model_file(path, sample_model()), std::runtime_error);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(ModelIo, DetectsBadMagic) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream << "not a model at all";
  EXPECT_THROW(read_model(stream), std::runtime_error);
}

TEST(ModelIo, DetectsCorruption) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, sample_model());
  auto bytes = stream.str();
  bytes[bytes.size() - 12] ^= 0x40;
  std::stringstream corrupted(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_model(corrupted), std::runtime_error);
}

TEST(ModelIo, DetectsTruncation) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, sample_model());
  const auto full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() - 6),
                              std::ios::in | std::ios::binary);
  EXPECT_THROW(read_model(truncated), std::runtime_error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(read_model_file("/no/such/model.tpam"), std::runtime_error);
}

// File-level failure paths: the serving registry reloads models from disk,
// so a half-written or bit-flipped .tpam on the filesystem must be rejected
// exactly like the stream-level cases above.

class ModelIoFileCorruption : public ::testing::Test {
 protected:
  void SetUp() override {
    // One file per test: ctest -j runs the fixture's tests as concurrent
    // processes, so a shared path would race.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = (std::filesystem::temp_directory_path() /
             ("tpa_model_corrupt_" + std::string(info->name()) + ".tpam"))
                .string();
    write_model_file(path_, sample_model());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void rewrite(const std::string& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::string path_;
  std::string bytes_;
};

TEST_F(ModelIoFileCorruption, TruncatedFileThrows) {
  // Every prefix shorter than the full file must fail, including cutting
  // into the trailing checksum itself.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{2}, std::size_t{10}, bytes_.size() - 20,
        bytes_.size() - 1}) {
    rewrite(bytes_.substr(0, keep));
    EXPECT_THROW(read_model_file(path_), std::runtime_error) << keep;
  }
}

TEST_F(ModelIoFileCorruption, CorruptedChecksumThrows) {
  auto corrupted = bytes_;
  corrupted.back() ^= 0x01;  // stored checksum no longer matches
  rewrite(corrupted);
  EXPECT_THROW(read_model_file(path_), std::runtime_error);
}

TEST_F(ModelIoFileCorruption, CorruptedPayloadThrows) {
  auto corrupted = bytes_;
  corrupted[corrupted.size() / 2] ^= 0x80;  // flip a weight bit
  rewrite(corrupted);
  EXPECT_THROW(read_model_file(path_), std::runtime_error);
}

TEST_F(ModelIoFileCorruption, WrongMagicThrows) {
  auto corrupted = bytes_;
  corrupted[0] = 'X';  // "XPAM"
  rewrite(corrupted);
  EXPECT_THROW(read_model_file(path_), std::runtime_error);
}

TEST_F(ModelIoFileCorruption, ForeignFormatMagicThrows) {
  // A dataset cache file ("TPA1") is not a model ("TPAM").
  rewrite("TPA1some-other-payload");
  EXPECT_THROW(read_model_file(path_), std::runtime_error);
}

TEST(ModelIo, TrainedDualModelPredictsAfterReload) {
  data::WebspamLikeConfig config;
  config.num_examples = 512;
  config.num_features = 256;
  const auto dataset = data::make_webspam_like(config);
  const RidgeProblem problem(dataset, 1e-3);
  SeqScdSolver solver(problem, Formulation::kDual, 7);
  for (int epoch = 0; epoch < 15; ++epoch) solver.run_epoch();

  SavedModel model;
  model.formulation = Formulation::kDual;
  model.lambda = problem.lambda();
  model.weights = solver.state().weights;
  model.shared = solver.state().shared;
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, model);
  const auto loaded = read_model(stream);

  // Predictions from the reloaded dual model (via eq. 5) must match those
  // of the live solver exactly.
  const auto beta_live = problem.primal_from_dual_shared(solver.state().shared);
  const auto beta_loaded = problem.primal_from_dual_shared(loaded.shared);
  const auto live = predict(dataset, beta_live);
  const auto reloaded = predict(dataset, beta_loaded);
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i], reloaded[i]);
  }
}

}  // namespace
}  // namespace tpa::core
