// Model serialization round trips, corruption detection, and the
// cross-formulation prediction path the CLI tool relies on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/metrics.hpp"
#include "core/model_io.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"

namespace tpa::core {
namespace {

SavedModel sample_model() {
  SavedModel model;
  model.formulation = Formulation::kDual;
  model.lambda = 0.025;
  model.weights = {0.5F, -1.0F, 2.0F};
  model.shared = {1.0F, 0.0F};
  return model;
}

TEST(ModelIo, StreamRoundTrip) {
  const auto model = sample_model();
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, model);
  const auto loaded = read_model(stream);
  EXPECT_EQ(loaded.formulation, model.formulation);
  EXPECT_DOUBLE_EQ(loaded.lambda, model.lambda);
  EXPECT_EQ(loaded.weights, model.weights);
  EXPECT_EQ(loaded.shared, model.shared);
}

TEST(ModelIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tpa_model_io_test.tpam")
          .string();
  const auto model = sample_model();
  write_model_file(path, model);
  const auto loaded = read_model_file(path);
  EXPECT_EQ(loaded.weights, model.weights);
  std::remove(path.c_str());
}

TEST(ModelIo, DetectsBadMagic) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream << "not a model at all";
  EXPECT_THROW(read_model(stream), std::runtime_error);
}

TEST(ModelIo, DetectsCorruption) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, sample_model());
  auto bytes = stream.str();
  bytes[bytes.size() - 12] ^= 0x40;
  std::stringstream corrupted(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_model(corrupted), std::runtime_error);
}

TEST(ModelIo, DetectsTruncation) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, sample_model());
  const auto full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() - 6),
                              std::ios::in | std::ios::binary);
  EXPECT_THROW(read_model(truncated), std::runtime_error);
}

TEST(ModelIo, MissingFileThrows) {
  EXPECT_THROW(read_model_file("/no/such/model.tpam"), std::runtime_error);
}

TEST(ModelIo, TrainedDualModelPredictsAfterReload) {
  data::WebspamLikeConfig config;
  config.num_examples = 512;
  config.num_features = 256;
  const auto dataset = data::make_webspam_like(config);
  const RidgeProblem problem(dataset, 1e-3);
  SeqScdSolver solver(problem, Formulation::kDual, 7);
  for (int epoch = 0; epoch < 15; ++epoch) solver.run_epoch();

  SavedModel model;
  model.formulation = Formulation::kDual;
  model.lambda = problem.lambda();
  model.weights = solver.state().weights;
  model.shared = solver.state().shared;
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_model(stream, model);
  const auto loaded = read_model(stream);

  // Predictions from the reloaded dual model (via eq. 5) must match those
  // of the live solver exactly.
  const auto beta_live = problem.primal_from_dual_shared(solver.state().shared);
  const auto beta_loaded = problem.primal_from_dual_shared(loaded.shared);
  const auto live = predict(dataset, beta_live);
  const auto reloaded = predict(dataset, beta_loaded);
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i], reloaded[i]);
  }
}

}  // namespace
}  // namespace tpa::core
