// The deterministic asynchrony model: window semantics, atomic vs
// last-writer-wins commits, staleness, and loss accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "core/round_engine.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "util/permutation.hpp"

namespace tpa::core {
namespace {

using sparse::Index;
using sparse::SparseVectorView;

/// A fixture problem where every "coordinate" j writes +1 to a chosen set of
/// shared entries, so commit accounting is exact.
struct ScatterFixture {
  std::vector<std::vector<Index>> patterns;
  std::vector<std::vector<float>> ones;

  explicit ScatterFixture(std::vector<std::vector<Index>> p)
      : patterns(std::move(p)) {
    for (const auto& pattern : patterns) {
      ones.emplace_back(pattern.size(), 1.0F);
    }
  }

  SparseVectorView view(Index j) const {
    return SparseVectorView{patterns[j], ones[j]};
  }
};

TEST(AsyncEngine, RejectsZeroWindow) {
  EXPECT_THROW(AsyncEngine(0, CommitPolicy::kAtomicAdd),
               std::invalid_argument);
}

TEST(AsyncEngine, WindowOneIsExactlySequential) {
  data::WebspamLikeConfig config;
  config.num_examples = 128;
  config.num_features = 64;
  const auto dataset = data::make_webspam_like(config);
  const RidgeProblem problem(dataset, 0.01);
  const auto f = Formulation::kDual;

  // Engine path with window 1.
  AsyncEngine engine(1, CommitPolicy::kAtomicAdd);
  std::vector<float> weights(problem.num_coordinates(f), 0.0F);
  std::vector<float> shared(problem.shared_dim(f), 0.0F);
  util::Rng rng(9);
  const auto order = util::random_permutation(problem.num_coordinates(f),
                                              rng);
  engine.run_epoch(
      order,
      [&](Index j, std::span<const float> s) {
        return problem.coordinate_delta(f, j, s, weights[j]);
      },
      [&](Index j) { return problem.coordinate_vector(f, j); },
      [&](Index j, double delta) {
        weights[j] = static_cast<float>(weights[j] + delta);
      },
      shared);

  // Hand-rolled sequential pass over the same order.
  std::vector<float> ref_weights(problem.num_coordinates(f), 0.0F);
  std::vector<float> ref_shared(problem.shared_dim(f), 0.0F);
  for (const auto j : order) {
    const double delta =
        problem.coordinate_delta(f, j, ref_shared, ref_weights[j]);
    ref_weights[j] = static_cast<float>(ref_weights[j] + delta);
    linalg::sparse_axpy(delta, problem.coordinate_vector(f, j), ref_shared);
  }
  for (std::size_t i = 0; i < shared.size(); ++i) {
    EXPECT_EQ(shared[i], ref_shared[i]) << "entry " << i;
  }
  for (std::size_t j = 0; j < weights.size(); ++j) {
    EXPECT_EQ(weights[j], ref_weights[j]) << "weight " << j;
  }
}

TEST(AsyncEngine, AtomicCommitPreservesEveryContribution) {
  // Three coordinates all write entry 0; under atomic commits the final
  // value must be the sum of all deltas regardless of the window.
  const ScatterFixture fixture({{0}, {0}, {0}});
  for (const std::size_t window : {1u, 2u, 3u, 8u}) {
    AsyncEngine engine(window, CommitPolicy::kAtomicAdd);
    std::vector<float> shared{0.0F};
    const std::vector<std::uint32_t> order{0, 1, 2};
    const auto stats = engine.run_epoch(
        order, [](Index, std::span<const float>) { return 1.0; },
        [&](Index j) { return fixture.view(j); },
        [](Index, double) {}, shared);
    EXPECT_FLOAT_EQ(shared[0], 3.0F) << "window " << window;
    EXPECT_EQ(stats.updates, 3u);
    EXPECT_EQ(stats.committed_entries, 3u);
    EXPECT_EQ(stats.lost_entries, 0u);
  }
}

TEST(AsyncEngine, WildCommitLosesRacingUpdates) {
  // Same three colliding coordinates: with a window wider than one, the
  // non-atomic read-modify-write store erases racing contributions.
  const ScatterFixture fixture({{0}, {0}, {0}});
  AsyncEngine engine(3, CommitPolicy::kLastWriterWins);
  std::vector<float> shared{0.0F};
  const std::vector<std::uint32_t> order{0, 1, 2};
  const auto stats = engine.run_epoch(
      order, [](Index, std::span<const float>) { return 1.0; },
      [&](Index j) { return fixture.view(j); },
      [](Index, double) {}, shared);
  // All three read 0 before any commit landed; the last store wins.
  EXPECT_FLOAT_EQ(shared[0], 1.0F);
  EXPECT_EQ(stats.lost_entries, 2u);
  EXPECT_EQ(stats.committed_entries, 1u);
}

TEST(AsyncEngine, WildCommitIsLosslessOnDisjointPatterns) {
  const ScatterFixture fixture({{0}, {1}, {2}});
  AsyncEngine engine(3, CommitPolicy::kLastWriterWins);
  std::vector<float> shared{0.0F, 0.0F, 0.0F};
  const std::vector<std::uint32_t> order{0, 1, 2};
  const auto stats = engine.run_epoch(
      order, [](Index, std::span<const float>) { return 2.0; },
      [&](Index j) { return fixture.view(j); },
      [](Index, double) {}, shared);
  EXPECT_EQ(stats.lost_entries, 0u);
  for (const auto v : shared) EXPECT_FLOAT_EQ(v, 2.0F);
}

TEST(AsyncEngine, StalenessHidesInFlightUpdates) {
  // Two coordinates write the same entry; delta = 1 - shared[0] at read
  // time.  Window 2: both read 0 -> both compute 1 -> final = 2 (atomic).
  // Window 1: the second sees the first's commit -> computes 0 -> final 1.
  const ScatterFixture fixture({{0}, {0}});
  const std::vector<std::uint32_t> order{0, 1};
  auto compute = [](Index, std::span<const float> s) {
    return 1.0 - static_cast<double>(s[0]);
  };
  {
    AsyncEngine stale(2, CommitPolicy::kAtomicAdd);
    std::vector<float> shared{0.0F};
    stale.run_epoch(order, compute,
                    [&](Index j) { return fixture.view(j); },
                    [](Index, double) {}, shared);
    EXPECT_FLOAT_EQ(shared[0], 2.0F);
  }
  {
    AsyncEngine fresh(1, CommitPolicy::kAtomicAdd);
    std::vector<float> shared{0.0F};
    fresh.run_epoch(order, compute,
                    [&](Index j) { return fixture.view(j); },
                    [](Index, double) {}, shared);
    EXPECT_FLOAT_EQ(shared[0], 1.0F);
  }
}

TEST(AsyncEngine, DrainsWhenWindowExceedsEpoch) {
  const ScatterFixture fixture({{0}, {1}});
  AsyncEngine engine(64, CommitPolicy::kAtomicAdd);
  std::vector<float> shared{0.0F, 0.0F};
  const std::vector<std::uint32_t> order{0, 1};
  const auto stats = engine.run_epoch(
      order, [](Index, std::span<const float>) { return 5.0; },
      [&](Index j) { return fixture.view(j); },
      [](Index, double) {}, shared);
  EXPECT_EQ(stats.updates, 2u);
  EXPECT_FLOAT_EQ(shared[0], 5.0F);
  EXPECT_FLOAT_EQ(shared[1], 5.0F);
}

TEST(AsyncEngine, EmptyOrderIsANoOp) {
  AsyncEngine engine(4, CommitPolicy::kAtomicAdd);
  std::vector<float> shared{1.0F};
  const auto stats = engine.run_epoch(
      {}, [](Index, std::span<const float>) { return 1.0; },
      [](Index) { return SparseVectorView{}; }, [](Index, double) {},
      shared);
  EXPECT_EQ(stats.updates, 0u);
  EXPECT_FLOAT_EQ(shared[0], 1.0F);
}

TEST(AsyncEngine, WeightUpdatesAreNeverLost) {
  // Even under wild commits, the private weight update applies for every
  // coordinate (PASSCoDe loses shared-vector adds, not weights).
  const ScatterFixture fixture({{0}, {0}, {0}, {0}});
  AsyncEngine engine(4, CommitPolicy::kLastWriterWins);
  std::vector<float> shared{0.0F};
  std::vector<double> weight_deltas(4, 0.0);
  const std::vector<std::uint32_t> order{0, 1, 2, 3};
  engine.run_epoch(
      order, [](Index, std::span<const float>) { return 1.0; },
      [&](Index j) { return fixture.view(j); },
      [&](Index j, double delta) { weight_deltas[j] += delta; }, shared);
  for (const auto d : weight_deltas) EXPECT_EQ(d, 1.0);
}

}  // namespace
}  // namespace tpa::core
