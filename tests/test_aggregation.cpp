// Adaptive aggregation: the closed-form gamma* must beat any grid-searched
// gamma along the aggregated update direction — the defining property of
// Algorithm 4 (verified for both formulations, against the objective as
// defined in eqs. (1)/(3), which also pins down the paper's two printed
// typos; see aggregation.hpp).
#include <gtest/gtest.h>

#include <vector>

#include "cluster/aggregation.hpp"
#include "core/ridge_problem.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "util/rng.hpp"

namespace tpa::cluster {
namespace {

using core::Formulation;
using core::RidgeProblem;

data::Dataset dataset() {
  data::DenseGaussianConfig config;
  config.num_examples = 30;
  config.num_features = 12;
  return data::make_dense_gaussian(config);
}

TEST(Aggregation, NamesModes) {
  EXPECT_STREQ(aggregation_name(AggregationMode::kAveraging), "averaging");
  EXPECT_STREQ(aggregation_name(AggregationMode::kAdaptive), "adaptive");
}

TEST(Aggregation, ZeroDirectionFallsBack) {
  EXPECT_EQ(optimal_gamma_primal({}, 100.0, 0.1, 0.25), 0.25);
  EXPECT_EQ(optimal_gamma_dual({}, 100.0, 0.1, 0.125), 0.125);
}

class GammaOptimality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GammaOptimality, PrimalGammaMinimisesObjectiveAlongDirection) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.05);
  util::Rng rng(GetParam());

  // A random current point and a random update direction.
  std::vector<float> beta(problem.num_features());
  std::vector<float> dbeta(problem.num_features());
  for (auto& b : beta) b = static_cast<float>(rng.normal());
  for (auto& d : dbeta) d = static_cast<float>(rng.normal());
  const auto w = linalg::csr_matvec(data.by_row(), beta);
  const auto dw = linalg::csr_matvec(data.by_row(), dbeta);

  PrimalGammaTerms terms;
  const auto labels = data.labels();
  for (std::size_t i = 0; i < w.size(); ++i) {
    terms.y_minus_w_dot_dw +=
        (static_cast<double>(labels[i]) - w[i]) * dw[i];
    terms.dw_sq += static_cast<double>(dw[i]) * dw[i];
  }
  for (std::size_t j = 0; j < beta.size(); ++j) {
    terms.beta_dot_dbeta += static_cast<double>(beta[j]) * dbeta[j];
    terms.dbeta_sq += static_cast<double>(dbeta[j]) * dbeta[j];
  }
  const double n = problem.num_examples();
  const double gamma_star =
      optimal_gamma_primal(terms, n, problem.lambda(), 1.0);

  auto objective_at = [&](double gamma) {
    std::vector<float> beta_g(beta.size());
    std::vector<float> w_g(w.size());
    for (std::size_t j = 0; j < beta.size(); ++j) {
      beta_g[j] = static_cast<float>(beta[j] + gamma * dbeta[j]);
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
      w_g[i] = static_cast<float>(w[i] + gamma * dw[i]);
    }
    return problem.primal_objective(beta_g, w_g);
  };

  const double best = objective_at(gamma_star);
  for (double gamma = -2.0; gamma <= 2.0; gamma += 0.05) {
    EXPECT_LE(best, objective_at(gamma) + 1e-5)
        << "grid gamma " << gamma << " beats gamma* " << gamma_star;
  }
}

TEST_P(GammaOptimality, DualGammaMaximisesObjectiveAlongDirection) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.05);
  util::Rng rng(GetParam() + 500);

  std::vector<float> alpha(problem.num_examples());
  std::vector<float> dalpha(problem.num_examples());
  for (auto& a : alpha) a = static_cast<float>(rng.normal(0.0, 0.2));
  for (auto& d : dalpha) d = static_cast<float>(rng.normal(0.0, 0.2));
  const auto wbar = linalg::csr_matvec_transposed(data.by_row(), alpha);
  const auto dwbar = linalg::csr_matvec_transposed(data.by_row(), dalpha);

  DualGammaTerms terms;
  const auto labels = data.labels();
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    terms.dalpha_dot_y += static_cast<double>(dalpha[i]) * labels[i];
    terms.dalpha_dot_alpha += static_cast<double>(dalpha[i]) * alpha[i];
    terms.dalpha_sq += static_cast<double>(dalpha[i]) * dalpha[i];
  }
  for (std::size_t m = 0; m < wbar.size(); ++m) {
    terms.wbar_dot_dwbar += static_cast<double>(wbar[m]) * dwbar[m];
    terms.dwbar_sq += static_cast<double>(dwbar[m]) * dwbar[m];
  }
  const double n = problem.num_examples();
  const double gamma_star =
      optimal_gamma_dual(terms, n, problem.lambda(), 1.0);

  auto objective_at = [&](double gamma) {
    std::vector<float> alpha_g(alpha.size());
    std::vector<float> wbar_g(wbar.size());
    for (std::size_t i = 0; i < alpha.size(); ++i) {
      alpha_g[i] = static_cast<float>(alpha[i] + gamma * dalpha[i]);
    }
    for (std::size_t m = 0; m < wbar.size(); ++m) {
      wbar_g[m] = static_cast<float>(wbar[m] + gamma * dwbar[m]);
    }
    return problem.dual_objective(alpha_g, wbar_g);
  };

  const double best = objective_at(gamma_star);
  for (double gamma = -2.0; gamma <= 2.0; gamma += 0.05) {
    EXPECT_GE(best, objective_at(gamma) - 1e-5)
        << "grid gamma " << gamma << " beats gamma* " << gamma_star;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GammaOptimality,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL));

TEST(Aggregation, PaperTypoRegressionPrimal) {
  // Eq. (7) as printed omits <y, dw>.  On a problem where y != 0 and the
  // direction correlates with y, the printed formula yields a gamma whose
  // objective is strictly worse than ours.
  const auto data = dataset();
  const RidgeProblem problem(data, 0.05);
  std::vector<float> beta(problem.num_features(), 0.1F);
  std::vector<float> dbeta(problem.num_features(), 0.05F);
  const auto w = linalg::csr_matvec(data.by_row(), beta);
  const auto dw = linalg::csr_matvec(data.by_row(), dbeta);

  PrimalGammaTerms terms;
  double w_dot_dw = 0.0;
  const auto labels = data.labels();
  for (std::size_t i = 0; i < w.size(); ++i) {
    terms.y_minus_w_dot_dw +=
        (static_cast<double>(labels[i]) - w[i]) * dw[i];
    terms.dw_sq += static_cast<double>(dw[i]) * dw[i];
    w_dot_dw += static_cast<double>(w[i]) * dw[i];
  }
  for (std::size_t j = 0; j < beta.size(); ++j) {
    terms.beta_dot_dbeta += static_cast<double>(beta[j]) * dbeta[j];
    terms.dbeta_sq += static_cast<double>(dbeta[j]) * dbeta[j];
  }
  const double n = problem.num_examples();
  const double lambda = problem.lambda();
  const double ours = optimal_gamma_primal(terms, n, lambda, 1.0);
  const double printed =
      -(w_dot_dw + n * lambda * terms.beta_dot_dbeta) /
      (terms.dw_sq + n * lambda * terms.dbeta_sq);

  auto objective_at = [&](double gamma) {
    std::vector<float> beta_g(beta.size());
    std::vector<float> w_g(w.size());
    for (std::size_t j = 0; j < beta.size(); ++j) {
      beta_g[j] = static_cast<float>(beta[j] + gamma * dbeta[j]);
    }
    for (std::size_t i = 0; i < w.size(); ++i) {
      w_g[i] = static_cast<float>(w[i] + gamma * dw[i]);
    }
    return problem.primal_objective(beta_g, w_g);
  };
  EXPECT_LT(objective_at(ours), objective_at(printed) - 1e-6);
}

}  // namespace
}  // namespace tpa::cluster
