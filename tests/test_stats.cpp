#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace tpa::util {
namespace {

TEST(RunningStats, EmptyAccumulatorIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(5.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_EQ(stats.mean(), 5.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 5.0);
  EXPECT_EQ(stats.max(), 5.0);
  EXPECT_EQ(stats.sum(), 5.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, -3.0, 0.5};
  RunningStats stats;
  double sum = 0.0;
  for (const double v : values) {
    stats.add(v);
    sum += v;
  }
  const double mean = sum / values.size();
  double m2 = 0.0;
  for (const double v : values) m2 += (v - mean) * (v - mean);
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), m2 / values.size(), 1e-12);
  EXPECT_EQ(stats.min(), -3.0);
  EXPECT_EQ(stats.max(), 8.0);
  EXPECT_NEAR(stats.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 1.5, 1e-12);

  RunningStats c;
  c.merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_NEAR(c.mean(), 1.5, 1e-12);
}

class StatsMergeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(StatsMergeSweep, MergeEqualsSinglePass) {
  const auto [left_count, right_count, seed] = GetParam();
  Rng rng(seed);
  RunningStats combined;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < left_count; ++i) {
    const double v = rng.normal(3.0, 2.0);
    combined.add(v);
    left.add(v);
  }
  for (int i = 0; i < right_count; ++i) {
    const double v = rng.normal(-1.0, 0.5);
    combined.add(v);
    right.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_EQ(left.min(), combined.min());
  EXPECT_EQ(left.max(), combined.max());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StatsMergeSweep,
    ::testing::Values(std::make_tuple(1, 1, 1ULL),
                      std::make_tuple(10, 1000, 2ULL),
                      std::make_tuple(1000, 10, 3ULL),
                      std::make_tuple(500, 500, 4ULL)));

TEST(Quantile, EmptyReturnsZero) {
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(Quantile, ExactOrderStatistics) {
  const std::vector<double> values{4.0, 1.0, 3.0, 2.0};
  EXPECT_EQ(quantile(values, 0.0), 1.0);
  EXPECT_EQ(quantile(values, 1.0), 4.0);
  EXPECT_NEAR(quantile(values, 0.5), 2.5, 1e-12);
}

TEST(Quantile, ClampsOutOfRangeQ) {
  const std::vector<double> values{1.0, 2.0};
  EXPECT_EQ(quantile(values, -1.0), 1.0);
  EXPECT_EQ(quantile(values, 2.0), 2.0);
}

TEST(Median, OddAndEven) {
  EXPECT_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_NEAR(median(std::vector<double>{1.0, 2.0, 3.0, 10.0}), 2.5, 1e-12);
}

TEST(Histogram, CountsSumToInputSize) {
  const std::vector<double> values{0.0, 0.1, 0.5, 0.9, 1.0, 0.45};
  const auto counts = histogram(values, 4);
  std::size_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, values.size());
}

TEST(Histogram, MaxValueLandsInLastBucket) {
  const std::vector<double> values{0.0, 1.0};
  const auto counts = histogram(values, 10);
  EXPECT_EQ(counts.front(), 1u);
  EXPECT_EQ(counts.back(), 1u);
}

TEST(Histogram, DegenerateInputs) {
  EXPECT_TRUE(histogram({}, 0).empty());
  const auto all_zero = histogram({}, 3);
  EXPECT_EQ(all_zero.size(), 3u);
  for (const auto c : all_zero) EXPECT_EQ(c, 0u);
  // All-equal values go to the first bucket.
  const std::vector<double> same{2.0, 2.0, 2.0};
  const auto counts = histogram(same, 4);
  EXPECT_EQ(counts[0], 3u);
}

}  // namespace
}  // namespace tpa::util
