// Shared-vector replication (DESIGN.md §11): ReplicaSet layout and merge
// semantics, bit-exactness of the merge_every=1 single-worker path against
// the sequential solver, tolerance-bounded convergence equivalence of the
// multi-worker paths, schedule independence under forced pool dispatch, and
// the factory/engine plumbing for the replicated solver kinds.
#include "core/replica_set.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/async_scd.hpp"
#include "core/cost_model.hpp"
#include "core/round_engine.hpp"
#include "core/seq_scd.hpp"
#include "core/solver_factory.hpp"
#include "core/threaded_scd.hpp"
#include "core/tpa_scd.hpp"
#include "data/generators.hpp"
#include "util/aligned.hpp"
#include "util/permutation.hpp"

namespace tpa::core {
namespace {

const data::Dataset& webspam_small() {
  static const data::Dataset dataset = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 2048;
    config.num_features = 4096;
    return data::make_webspam_like(config);
  }();
  return dataset;
}

/// Restores the process-wide dispatch model on scope exit so a test that
/// forces pooled or serial execution cannot leak into its neighbours.
struct DispatchGuard {
  PoolDispatchModel saved = pool_dispatch();
  ~DispatchGuard() { set_pool_dispatch(saved); }
};

TEST(ReplicaSet, SlotsAreCacheLineAlignedAndDisjoint) {
  ReplicaSet replicas;
  // 100 floats is deliberately not a multiple of a cache line.
  replicas.configure(100, 3);
  EXPECT_EQ(replicas.dim(), 100u);
  EXPECT_EQ(replicas.count(), 3);
  // Stride rounds the slot up to whole 64-byte lines.
  EXPECT_GE(replicas.stride(), replicas.dim());
  EXPECT_EQ(replicas.stride() % (util::kCacheLineBytes / sizeof(float)), 0u);
  const auto base = replicas.base();
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(base.data()) %
                util::kCacheLineBytes,
            0u);
  for (int r = 0; r < replicas.count(); ++r) {
    const auto rep = replicas.replica(r);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(rep.data()) %
                  util::kCacheLineBytes,
              0u);
    // No slot overlaps the previous one, even through a shared tail line.
    const auto* prev_end =
        (r == 0 ? base.data() : replicas.replica(r - 1).data()) +
        replicas.dim();
    EXPECT_GE(rep.data(), prev_end);
  }
}

TEST(ReplicaSet, ConfigureIsIdempotentForUnchangedShape) {
  ReplicaSet replicas;
  replicas.configure(64, 2);
  std::vector<float> global(64, 1.0F);
  replicas.reset_from(global);
  replicas.replica(0)[5] = 7.0F;
  replicas.configure(64, 2);  // must not wipe the replicas
  EXPECT_EQ(replicas.replica(0)[5], 7.0F);
  replicas.configure(64, 3);  // shape change reallocates
  EXPECT_EQ(replicas.count(), 3);
}

TEST(ReplicaSet, SingleReplicaMergeIsAVerbatimCopy) {
  ReplicaSet replicas;
  replicas.configure(33, 1);
  std::vector<float> global(33, 0.25F);
  replicas.reset_from(global);
  auto rep = replicas.replica(0);
  for (std::size_t i = 0; i < rep.size(); ++i) {
    rep[i] = 0.1F * static_cast<float>(i) + 1e-7F;
  }
  const std::vector<float> expected(rep.begin(), rep.end());
  replicas.merge_into(global);
  // Bit-exact: the single-replica path must bypass the float diff-add,
  // whose w + (r - w) round trip is not the identity.
  EXPECT_EQ(0, std::memcmp(global.data(), expected.data(),
                           expected.size() * sizeof(float)));
}

TEST(ReplicaSet, MergeFoldsDisjointDeltasAndReseeds) {
  ReplicaSet replicas;
  replicas.configure(8, 2);
  std::vector<float> global = {1, 2, 3, 4, 5, 6, 7, 8};
  replicas.reset_from(global);
  // Each replica touches its own half — the contract the solvers maintain
  // between merges.
  replicas.replica(0)[0] += 10.0F;
  replicas.replica(0)[3] += 20.0F;
  replicas.replica(1)[4] += 1.0F;
  replicas.replica(1)[7] -= 2.0F;
  replicas.merge_into(global);
  const std::vector<float> expected = {11, 2, 3, 24, 6, 6, 7, 6};
  EXPECT_EQ(global, expected);
  // Base and replicas are reseeded from the merged vector.
  for (int r = 0; r < 2; ++r) {
    for (std::size_t i = 0; i < global.size(); ++i) {
      EXPECT_EQ(replicas.replica(r)[i], global[i]);
    }
  }
  EXPECT_EQ(replicas.base()[0], 11.0F);
}

TEST(AsyncEngine, RunEpochRejectsReplicatedPolicy) {
  AsyncEngine engine(4, CommitPolicy::kReplicated);
  std::vector<sparse::Index> order = {0};
  std::vector<float> shared(4, 0.0F);
  EXPECT_THROW(
      engine.run_epoch(
          order, [](sparse::Index, std::span<const float>) { return 0.0; },
          [&](sparse::Index) {
            return sparse::SparseVectorView{};
          },
          [](sparse::Index, double) {}, shared),
      std::logic_error);
}

TEST(AsyncEngine, RunEpochReplicatedRejectsNonPositiveMergeEvery) {
  AsyncEngine engine(2, CommitPolicy::kReplicated);
  std::vector<sparse::Index> order = {0};
  std::vector<float> shared(4, 0.0F);
  ReplicaSet replicas;
  EXPECT_THROW(
      engine.run_epoch_replicated(
          order, [](sparse::Index, std::span<const float>) { return 0.0; },
          [&](sparse::Index) {
            return sparse::SparseVectorView{};
          },
          [](sparse::Index, double) {}, shared, replicas, 0),
      std::invalid_argument);
}

// merge_every=1 with a single worker reproduces the sequential solver
// *bit-exactly*: one replica, verbatim-copy merges, and the identical
// kernel calls in between (the ISSUE's equivalence gate).
TEST(ReplicatedScd, SingleThreadMergeEveryOneIsBitExactVsSequential) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  SeqScdSolver seq(problem, Formulation::kDual, 7);
  ThreadedScdSolver threaded(problem, Formulation::kDual, 1,
                             CommitPolicy::kReplicated, 7);
  threaded.set_merge_every(1);
  ReplicatedScdSolver async(problem, Formulation::kDual, 1, 7);
  async.set_merge_every(1);
  for (int epoch = 0; epoch < 3; ++epoch) {
    seq.run_epoch();
    threaded.run_epoch();
    async.run_epoch();
  }
  EXPECT_EQ(seq.state().weights, threaded.state().weights);
  EXPECT_EQ(seq.state().shared, threaded.state().shared);
  EXPECT_EQ(seq.state().weights, async.state().weights);
  EXPECT_EQ(seq.state().shared, async.state().shared);
}

// The automatic merge interval (merge_every=0) changes staleness, not
// correctness: a single worker still owns every coordinate, so the
// trajectory stays bit-exact sequential regardless of the interval.
TEST(ReplicatedScd, SingleThreadAutoIntervalStaysBitExact) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  SeqScdSolver seq(problem, Formulation::kDual, 7);
  ThreadedScdSolver threaded(problem, Formulation::kDual, 1,
                             CommitPolicy::kReplicated, 7);
  for (int epoch = 0; epoch < 2; ++epoch) {
    seq.run_epoch();
    threaded.run_epoch();
  }
  EXPECT_EQ(seq.state().weights, threaded.state().weights);
  EXPECT_EQ(seq.state().shared, threaded.state().shared);
}

// Multi-worker replicated training reads stale replicas between merges, so
// it cannot be bit-exact — but it must stay convergence-equivalent to the
// atomic path: same order of magnitude gap at every evaluated epoch, and
// well-converged at the end (tolerance documented in DESIGN.md §11).
TEST(ReplicatedScd, MultiThreadGapTraceMatchesAtomicWithinTolerance) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  ThreadedScdSolver atomic(problem, Formulation::kDual, 4,
                           CommitPolicy::kAtomicAdd, 7);
  ThreadedScdSolver replicated(problem, Formulation::kDual, 4,
                               CommitPolicy::kReplicated, 7);
  for (int epoch = 0; epoch < 8; ++epoch) {
    atomic.run_epoch();
    replicated.run_epoch();
    const double atomic_gap = atomic.duality_gap(problem);
    const double replicated_gap = replicated.duality_gap(problem);
    EXPECT_LT(replicated_gap, atomic_gap * 10.0) << "epoch " << epoch;
    EXPECT_GT(replicated_gap, atomic_gap / 10.0) << "epoch " << epoch;
  }
  EXPECT_LT(replicated.duality_gap(problem), 1e-4);
}

TEST(ReplicatedScd, AsyncLaneVariantConverges) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  ReplicatedScdSolver solver(problem, Formulation::kDual, 16, 7);
  for (int epoch = 0; epoch < 10; ++epoch) solver.run_epoch();
  EXPECT_LT(solver.duality_gap(problem), 1e-4);
  EXPECT_EQ(solver.total_lost_updates(), 0u);  // merges never lose updates
}

// Replicated execution is schedule-independent: coordinates are partitioned
// disjointly and reads see only merge-boundary state, so running the rounds
// on the pool or inline on the caller must give identical bits.  This is
// what lets the cost model pick the execution mode freely.
TEST(ReplicatedScd, PooledAndInlineExecutionAreBitIdentical) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  const DispatchGuard guard;

  PoolDispatchModel serial_model;
  serial_model.hardware_threads = 1;  // pool can never win: inline rounds
  set_pool_dispatch(serial_model);
  ThreadedScdSolver inline_solver(problem, Formulation::kDual, 4,
                                  CommitPolicy::kReplicated, 7);
  for (int epoch = 0; epoch < 3; ++epoch) inline_solver.run_epoch();

  PoolDispatchModel pooled_model;
  pooled_model.hardware_threads = 8;  // pool always wins: pooled rounds
  pooled_model.dispatch_seconds = 0.0;
  pooled_model.per_chunk_seconds = 0.0;
  set_pool_dispatch(pooled_model);
  ThreadedScdSolver pooled_solver(problem, Formulation::kDual, 4,
                                  CommitPolicy::kReplicated, 7);
  for (int epoch = 0; epoch < 3; ++epoch) pooled_solver.run_epoch();

  EXPECT_EQ(inline_solver.state().weights, pooled_solver.state().weights);
  EXPECT_EQ(inline_solver.state().shared, pooled_solver.state().shared);
}

TEST(ReplicatedScd, DeterministicAcrossIdenticalRuns) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  ThreadedScdSolver a(problem, Formulation::kDual, 4,
                      CommitPolicy::kReplicated, 42);
  ThreadedScdSolver b(problem, Formulation::kDual, 4,
                      CommitPolicy::kReplicated, 42);
  for (int epoch = 0; epoch < 3; ++epoch) {
    a.run_epoch();
    b.run_epoch();
  }
  EXPECT_EQ(a.state().weights, b.state().weights);
}

// The TPA-SCD gpusim path batches its block write-backs through the same
// delta-merge primitive when merge_every > 0.  With a small lane window and
// merge_every=1 the concurrent staleness stays within the budget (damping
// θ = 1), so convergence must stay in the same regime as the per-update
// atomic write-back at the same window.
TEST(TpaScd, BatchedWriteBackMatchesAtomicConvergence) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdOptions atomic_options;
  atomic_options.device = gpusim::DeviceSpec::quadro_m4000();
  atomic_options.async_window_override = 4;
  TpaScdSolver atomic(problem, Formulation::kDual, 7, atomic_options);
  TpaScdOptions batched_options = atomic_options;
  batched_options.merge_every = 1;
  TpaScdSolver batched(problem, Formulation::kDual, 7, batched_options);
  for (int epoch = 0; epoch < 6; ++epoch) {
    atomic.run_epoch();
    batched.run_epoch();
  }
  const double atomic_gap = atomic.duality_gap(problem);
  const double batched_gap = batched.duality_gap(problem);
  EXPECT_LT(batched_gap, atomic_gap * 10.0);
  EXPECT_GT(batched_gap, atomic_gap / 10.0);
}

// At the M4000's native window (2×13 lanes) with a coarse merge interval the
// concurrent staleness blows past the budget; replica_damping must keep the
// batched path stable (bounded, still making progress) instead of diverging.
TEST(TpaScd, BatchedWriteBackStaysStableAtNativeWindow) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdOptions options;
  options.device = gpusim::DeviceSpec::quadro_m4000();
  options.merge_every = 64;
  TpaScdSolver batched(problem, Formulation::kDual, 7, options);
  const double initial_gap = batched.duality_gap(problem);
  for (int epoch = 0; epoch < 6; ++epoch) batched.run_epoch();
  const double final_gap = batched.duality_gap(problem);
  EXPECT_TRUE(std::isfinite(final_gap));
  EXPECT_LT(final_gap, initial_gap);
}

TEST(SolverFactory, BuildsReplicatedKindsWithMergeEvery) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  for (const auto kind :
       {SolverKind::kAsyncReplicated, SolverKind::kThreadedReplicated}) {
    SolverConfig config;
    config.kind = kind;
    config.threads = 4;
    config.merge_every = 16;
    const auto solver = make_solver(problem, config);
    ASSERT_NE(solver, nullptr);
    EXPECT_NE(solver->name().find("Replicated"), std::string::npos);
    solver->run_epoch();  // must run with the configured interval
  }
  EXPECT_EQ(parse_solver_kind("rep"), SolverKind::kAsyncReplicated);
  EXPECT_EQ(parse_solver_kind("rep-threads"),
            SolverKind::kThreadedReplicated);
}

}  // namespace
}  // namespace tpa::core
