// The distributed fault layer: degraded aggregation when deltas are lost,
// crash/backoff/restart/eviction state machines, straggler deadlines with
// late-delta incorporation, checkpoint/restore, and the headline acceptance
// scenario — a faulted run must still converge within 2x the fault-free
// epoch budget.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <tuple>

#include "cluster/dist_solver.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace tpa::cluster {
namespace {

using core::ClusterEventKind;
using core::Formulation;

const data::Dataset& corpus() {
  static const data::Dataset dataset = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 512;
    config.num_features = 1024;
    return data::make_webspam_like(config);
  }();
  return dataset;
}

DistConfig base_config(Formulation f, int workers) {
  DistConfig config;
  config.formulation = f;
  config.num_workers = workers;
  config.local_solver.kind = core::SolverKind::kSequential;
  config.lambda = 1e-3;
  return config;
}

FaultEvent crash_at(int epoch, int worker) {
  FaultEvent event;
  event.epoch = epoch;
  event.worker = worker;
  event.kind = FaultKind::kCrash;
  return event;
}

FaultEvent permanent_stall(int worker, double factor) {
  FaultEvent event;
  event.epoch = 1;
  event.worker = worker;
  event.kind = FaultKind::kStall;
  event.stall_factor = factor;
  event.permanent = true;
  return event;
}

std::size_t count(const std::vector<core::ClusterEvent>& events,
                  ClusterEventKind kind) {
  std::size_t n = 0;
  for (const auto& event : events) n += event.kind == kind;
  return n;
}

/// max |shared - A x assembled| — the Algorithms 3/4 consistency invariant
/// the fault layer must preserve through every degraded epoch.
double invariant_error(const DistributedSolver& solver, Formulation f) {
  const auto weights = solver.global_weights();
  const auto& by_row = corpus().by_row();
  const auto expected = f == Formulation::kPrimal
                            ? linalg::csr_matvec(by_row, weights)
                            : linalg::csr_matvec_transposed(by_row, weights);
  return linalg::max_abs_diff(solver.global_shared(), expected);
}

// --- Degraded aggregation ---------------------------------------------------

TEST(DistFaults, CrashEpochRescalesGammaToSurvivors) {
  auto config = base_config(Formulation::kDual, 4);
  config.faults.scripted.push_back(crash_at(3, 1));
  DistributedSolver solver(corpus(), config);

  solver.run_epoch();
  solver.run_epoch();
  EXPECT_EQ(solver.last_contributors(), 4);
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 0.25);

  // Crash epoch: three deltas land, and averaging rescales to 1/3.
  solver.run_epoch();
  EXPECT_EQ(solver.last_contributors(), 3);
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 1.0 / 3.0);
  EXPECT_EQ(solver.worker_status(1), WorkerStatus::kBackoff);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kCrash), 1u);

  // Backoff epoch: the worker restarts (seeded from master state) but sits
  // this round out.
  solver.run_epoch();
  EXPECT_EQ(solver.last_contributors(), 3);
  EXPECT_EQ(solver.worker_status(1), WorkerStatus::kActive);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kRestart), 1u);

  // Fully recovered.
  solver.run_epoch();
  EXPECT_EQ(solver.last_contributors(), 4);
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 0.25);
}

class DegradedInvariantSweep
    : public ::testing::TestWithParam<
          std::tuple<Formulation, AggregationMode>> {};

TEST_P(DegradedInvariantSweep, InvariantSurvivesCrashEpoch) {
  const auto [f, mode] = GetParam();
  auto config = base_config(f, 4);
  config.aggregation = mode;
  config.faults.scripted.push_back(crash_at(3, 1));
  DistributedSolver solver(corpus(), config);
  double first_gap = 0.0;
  for (int epoch = 1; epoch <= 8; ++epoch) {
    solver.run_epoch();
    if (epoch == 1) first_gap = solver.duality_gap();
    // shared == A x weights must hold at *every* epoch boundary, most
    // importantly right after the degraded 3-of-4 aggregation.
    EXPECT_LT(invariant_error(solver, f), 2e-3) << "epoch " << epoch;
  }
  // Losing 1 of 4 workers for one round must not diverge the run.
  EXPECT_LT(solver.duality_gap(), first_gap);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DegradedInvariantSweep,
    ::testing::Combine(::testing::Values(Formulation::kPrimal,
                                         Formulation::kDual),
                       ::testing::Values(AggregationMode::kAveraging,
                                         AggregationMode::kAdaptive)),
    [](const auto& info) {
      return std::string(formulation_name(std::get<0>(info.param))) + "_" +
             aggregation_name(std::get<1>(info.param));
    });

TEST(DistFaults, DroppedAndCorruptedDeltasAreExcludedNotAggregated) {
  auto config = base_config(Formulation::kDual, 4);
  FaultEvent drop;
  drop.epoch = 2;
  drop.worker = 0;
  drop.kind = FaultKind::kDropDelta;
  config.faults.scripted.push_back(drop);
  FaultEvent corrupt;
  corrupt.epoch = 3;
  corrupt.worker = 2;
  corrupt.kind = FaultKind::kCorruptDelta;
  config.faults.scripted.push_back(corrupt);
  DistributedSolver solver(corpus(), config);

  solver.run_epoch();
  solver.run_epoch();  // worker 0's delta lost in transit
  EXPECT_EQ(solver.last_contributors(), 3);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kDeltaDropped), 1u);
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3);

  solver.run_epoch();  // worker 2's delta bit-flipped; checksum rejects it
  EXPECT_EQ(solver.last_contributors(), 3);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kDeltaCorrupted), 1u);
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3);

  // Transit faults are transient: both workers stay active and the next
  // round is whole again.
  EXPECT_EQ(solver.worker_status(0), WorkerStatus::kActive);
  EXPECT_EQ(solver.worker_status(2), WorkerStatus::kActive);
  solver.run_epoch();
  EXPECT_EQ(solver.last_contributors(), 4);
}

TEST(DistFaults, CorruptCompressedDeltaIsCaughtByTheEncodedChecksum) {
  // With compression on, the bit flip lands in the quantized payload; the
  // checksum over the encoded image must still reject the delta and the
  // epoch must degrade to the survivors, exactly like the raw-fp64 path.
  auto config = base_config(Formulation::kDual, 4);
  config.compress_deltas = true;
  FaultEvent corrupt;
  corrupt.epoch = 2;
  corrupt.worker = 1;
  corrupt.kind = FaultKind::kCorruptDelta;
  config.faults.scripted.push_back(corrupt);
  DistributedSolver solver(corpus(), config);

  solver.run_epoch();
  solver.run_epoch();
  EXPECT_EQ(solver.last_contributors(), 3);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kDeltaCorrupted), 1u);
  EXPECT_EQ(solver.worker_status(1), WorkerStatus::kActive);

  // Quantization bounds the invariant drift per applied delta; a corrupted
  // round must not loosen it further.
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 5e-3);
  solver.run_epoch();
  EXPECT_EQ(solver.last_contributors(), 4);
}

TEST(DistFaults, EpochWithNoSurvivorsLeavesTheModelUntouched) {
  auto config = base_config(Formulation::kDual, 2);
  config.faults.scripted.push_back(crash_at(3, 0));
  config.faults.scripted.push_back(crash_at(3, 1));
  DistributedSolver solver(corpus(), config);
  solver.run_epoch();
  solver.run_epoch();
  const auto shared_before = solver.global_shared();
  const auto weights_before = solver.global_weights();

  solver.run_epoch();  // everyone crashed: gamma = 0, nothing applied
  EXPECT_EQ(solver.last_contributors(), 0);
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 0.0);
  EXPECT_EQ(solver.global_shared(), shared_before);
  EXPECT_EQ(solver.global_weights(), weights_before);
}

// --- Crash / restart / eviction state machine -------------------------------

TEST(DistFaults, SecondCrashDoublesTheBackoff) {
  auto config = base_config(Formulation::kDual, 4);
  config.faults.scripted.push_back(crash_at(3, 1));
  config.faults.scripted.push_back(crash_at(5, 1));
  DistributedSolver solver(corpus(), config);
  for (int epoch = 1; epoch <= 5; ++epoch) solver.run_epoch();
  // Second crash: backoff doubles to two epochs (1 << (2 - 1)).
  EXPECT_EQ(solver.worker_status(1), WorkerStatus::kBackoff);
  solver.run_epoch();  // epoch 6: still backing off
  EXPECT_EQ(solver.worker_status(1), WorkerStatus::kBackoff);
  solver.run_epoch();  // epoch 7: restart fires
  EXPECT_EQ(solver.worker_status(1), WorkerStatus::kActive);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kRestart), 2u);
  solver.run_epoch();  // epoch 8: back in the reduce
  EXPECT_EQ(solver.last_contributors(), 4);
}

TEST(DistFaults, ExceedingMaxRestartsEvicts) {
  auto config = base_config(Formulation::kDual, 4);
  config.max_restarts = 1;
  config.faults.scripted.push_back(crash_at(2, 1));
  config.faults.scripted.push_back(crash_at(4, 1));
  DistributedSolver solver(corpus(), config);
  for (int epoch = 1; epoch <= 4; ++epoch) solver.run_epoch();
  // First crash was survivable; the second exceeds max_restarts = 1.
  EXPECT_EQ(solver.worker_status(1), WorkerStatus::kEvicted);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kEvict), 1u);
  // Eviction is permanent: no restart ever follows the second crash.
  for (int epoch = 5; epoch <= 10; ++epoch) solver.run_epoch();
  EXPECT_EQ(solver.worker_status(1), WorkerStatus::kEvicted);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kRestart), 1u);
  EXPECT_EQ(solver.last_contributors(), 3);
}

TEST(DistFaults, EvictionFreezesTheWorkersCoordinates) {
  auto config = base_config(Formulation::kDual, 4);
  config.max_restarts = 0;  // first crash is fatal
  config.faults.scripted.push_back(crash_at(2, 0));
  DistributedSolver solver(corpus(), config);
  solver.run_epoch();
  solver.run_epoch();
  ASSERT_EQ(solver.worker_status(0), WorkerStatus::kEvicted);
  const auto frozen = solver.global_weights();
  const double gap_at_eviction = solver.duality_gap();

  for (int epoch = 3; epoch <= 8; ++epoch) solver.run_epoch();
  const auto later = solver.global_weights();
  ASSERT_EQ(later.size(), frozen.size());
  std::size_t unchanged = 0;
  for (std::size_t j = 0; j < later.size(); ++j) {
    unchanged += later[j] == frozen[j];
  }
  // The evicted worker owns ~1/4 of the coordinates; exactly those stay
  // bit-identical while the surviving workers keep moving theirs.
  EXPECT_GE(unchanged, later.size() / 4);
  EXPECT_LE(unchanged, 3 * later.size() / 4);
  // The survivors still make progress on their subproblem...
  EXPECT_LT(solver.duality_gap(), gap_at_eviction);
  // ...without ever breaking consistency.
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3);
}

// --- Stragglers and late deltas ---------------------------------------------

TEST(DistFaults, StragglerMissesDeadlineAndLandsLate) {
  auto config = base_config(Formulation::kDual, 4);
  config.faults.scripted.push_back(permanent_stall(2, 4.0));
  DistributedSolver solver(corpus(), config);

  solver.run_epoch();
  // A 4x slowdown against a 1.5x grace deadline cannot make the cut.
  EXPECT_EQ(solver.last_contributors(), 3);
  EXPECT_EQ(solver.worker_status(2), WorkerStatus::kInFlight);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kDeadlineMiss), 1u);
  EXPECT_GT(solver.last_deadline_seconds(), 0.0);
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3);

  double first_gap = solver.duality_gap();
  for (int epoch = 2; epoch <= 12; ++epoch) {
    solver.run_epoch();
    EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3)
        << "epoch " << epoch;
  }
  // The stale deltas do land (the PASSCoDe observation): the straggler
  // contributes every few rounds rather than never.
  EXPECT_GE(count(solver.events(), ClusterEventKind::kLateDelta), 2u);
  EXPECT_GE(count(solver.events(), ClusterEventKind::kDeadlineMiss), 2u);
  // And a permanently slow worker must not diverge the run.
  EXPECT_LT(solver.duality_gap(), first_gap);
}

TEST(DistFaults, DeadlineMissExtendsTheEpochToTheGraceWindow) {
  auto stalled_config = base_config(Formulation::kDual, 4);
  stalled_config.faults.scripted.push_back(permanent_stall(1, 4.0));
  DistributedSolver stalled(corpus(), stalled_config);
  DistributedSolver healthy(corpus(), base_config(Formulation::kDual, 4));
  const double stalled_seconds = stalled.run_epoch().sim_seconds;
  const double healthy_seconds = healthy.run_epoch().sim_seconds;
  // The master waits out the full grace window before giving up on the
  // straggler — slower than a clean epoch, but far better than the 4x
  // stall a deadline-free synchronous reduce would eat.
  EXPECT_GT(stalled_seconds, healthy_seconds);
  EXPECT_LT(stalled.last_breakdown().compute_solver,
            4.0 * healthy.last_breakdown().compute_solver);
}

// --- Checkpoint / restore ---------------------------------------------------

TEST(DistFaults, CheckpointRestoreReproducesTheUninterruptedRun) {
  const auto config = base_config(Formulation::kDual, 4);

  DistributedSolver straight(corpus(), config);
  for (int epoch = 1; epoch <= 10; ++epoch) straight.run_epoch();

  DistributedSolver interrupted(corpus(), config);
  for (int epoch = 1; epoch <= 5; ++epoch) interrupted.run_epoch();
  const auto saved = interrupted.checkpoint();
  EXPECT_EQ(saved.epoch, 5u);

  DistributedSolver resumed(corpus(), config);
  resumed.restore(saved);
  EXPECT_EQ(resumed.current_epoch(), 5);
  for (int epoch = 6; epoch <= 10; ++epoch) resumed.run_epoch();

  // The permutation streams realign exactly, so the resumed run is the
  // uninterrupted run bit for bit — comfortably within the 1e-6 budget.
  EXPECT_EQ(resumed.global_weights(), straight.global_weights());
  EXPECT_EQ(resumed.global_shared(), straight.global_shared());
  EXPECT_NEAR(resumed.duality_gap(), straight.duality_gap(), 1e-6);
}

TEST(DistFaults, ResumeReplaysTheFaultScheduleDeterministically) {
  // Faults are pure functions of (seed, epoch, worker), so a resumed run
  // sees the same schedule; a cold cluster restart clears crash history,
  // but a *scripted* post-checkpoint fault must replay identically.
  auto config = base_config(Formulation::kDual, 4);
  config.faults.scripted.push_back(crash_at(7, 3));

  DistributedSolver straight(corpus(), config);
  for (int epoch = 1; epoch <= 10; ++epoch) straight.run_epoch();

  DistributedSolver interrupted(corpus(), config);
  for (int epoch = 1; epoch <= 5; ++epoch) interrupted.run_epoch();
  DistributedSolver resumed(corpus(), config);
  resumed.restore(interrupted.checkpoint());
  for (int epoch = 6; epoch <= 10; ++epoch) resumed.run_epoch();

  EXPECT_EQ(count(resumed.events(), ClusterEventKind::kCrash), 1u);
  EXPECT_EQ(resumed.global_weights(), straight.global_weights());
  EXPECT_EQ(resumed.global_shared(), straight.global_shared());
}

TEST(DistFaults, RestoreValidatesTheCheckpoint) {
  const auto config = base_config(Formulation::kDual, 4);
  DistributedSolver solver(corpus(), config);
  auto good = solver.checkpoint();

  auto wrong_form = good;
  wrong_form.formulation = Formulation::kPrimal;
  wrong_form.weights.resize(1024);  // primal dim, to isolate the form check
  EXPECT_THROW(DistributedSolver(corpus(), config).restore(wrong_form),
               std::invalid_argument);

  auto wrong_dim = good;
  wrong_dim.weights.resize(good.weights.size() - 1);
  EXPECT_THROW(DistributedSolver(corpus(), config).restore(wrong_dim),
               std::invalid_argument);

  auto wrong_lambda = good;
  wrong_lambda.lambda = 2e-3;
  EXPECT_THROW(DistributedSolver(corpus(), config).restore(wrong_lambda),
               std::invalid_argument);

  // Restoring into a solver that already ran is a logic error: permutation
  // streams would desync and the "resume" would silently diverge.
  solver.run_epoch();
  EXPECT_THROW(solver.restore(good), std::logic_error);
}

TEST(DistFaults, RunDistributedWritesAtomicPeriodicCheckpoints) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tpa_dist_faults.ckpt")
          .string();
  auto config = base_config(Formulation::kDual, 2);
  DistributedSolver solver(corpus(), config);
  core::RunOptions options;
  options.max_epochs = 5;
  options.target_gap = 0.0;
  CheckpointConfig ckpt;
  ckpt.path = path;
  ckpt.every_epochs = 2;
  const auto trace = run_distributed(solver, options, ckpt);

  // Checkpoints at epochs 2 and 4, plus the final one at 5.
  EXPECT_EQ(trace.count_events(core::ClusterEventKind::kCheckpoint), 3u);
  const auto saved = core::read_model_file(path);
  EXPECT_EQ(saved.epoch, 5u);
  EXPECT_EQ(saved.weights, solver.global_weights());
  // The atomic write leaves no temp file behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // Every trace point carries the contributor count for the fault log.
  for (const auto& point : trace.points()) {
    EXPECT_EQ(point.contributors, 2);
  }
  std::remove(path.c_str());
}

// --- The acceptance scenario ------------------------------------------------

TEST(DistFaults, FaultedRunConvergesWithinTwiceTheFaultFreeBudget) {
  // ISSUE acceptance criterion: seeded injector, 4 workers, a crash at
  // epoch 3 plus one permanent straggler; the run must reach gap <= 1e-3
  // within 2x the epochs the fault-free run needs.
  auto config = base_config(Formulation::kDual, 4);
  config.aggregation = AggregationMode::kAdaptive;
  core::RunOptions options;
  options.max_epochs = 300;
  options.target_gap = 1e-3;

  DistributedSolver clean(corpus(), config);
  const auto clean_trace = run_distributed(clean, options);
  ASSERT_LE(clean_trace.final_gap(), 1e-3)
      << "fault-free baseline never converged";
  const int clean_epochs = clean_trace.points().back().epoch;

  auto faulted_config = config;
  faulted_config.faults.seed = 0x5eed;
  faulted_config.faults.scripted.push_back(crash_at(3, 1));
  faulted_config.faults.scripted.push_back(permanent_stall(2, 4.0));
  DistributedSolver faulted(corpus(), faulted_config);
  core::RunOptions faulted_options = options;
  faulted_options.max_epochs = 2 * clean_epochs;
  const auto faulted_trace = run_distributed(faulted, faulted_options);

  EXPECT_LE(faulted_trace.final_gap(), 1e-3)
      << "faulted run needed more than 2x the fault-free budget ("
      << clean_epochs << " epochs)";
  // The scenario actually exercised the fault machinery.
  EXPECT_EQ(faulted_trace.count_events(core::ClusterEventKind::kCrash), 1u);
  EXPECT_GE(faulted_trace.count_events(core::ClusterEventKind::kDeadlineMiss),
            1u);
  EXPECT_GE(faulted_trace.count_events(core::ClusterEventKind::kLateDelta),
            1u);
}

}  // namespace
}  // namespace tpa::cluster
