#include "data/split.hpp"

#include <gtest/gtest.h>

#include "data/generators.hpp"

namespace tpa::data {
namespace {

Dataset corpus() {
  WebspamLikeConfig config;
  config.num_examples = 400;
  config.num_features = 100;
  config.avg_nnz_per_row = 8.0;
  return make_webspam_like(config);
}

TEST(Split, TrainTestPartitionsAllExamples) {
  const auto dataset = corpus();
  util::Rng rng(1);
  const auto split = train_test_split(dataset, 0.75, rng);
  EXPECT_EQ(split.train.num_examples() + split.test.num_examples(),
            dataset.num_examples());
  EXPECT_EQ(split.train.nnz() + split.test.nnz(), dataset.nnz());
  EXPECT_EQ(split.train.num_features(), dataset.num_features());
  EXPECT_EQ(split.test.num_features(), dataset.num_features());
}

TEST(Split, FractionIsRespectedApproximately) {
  const auto dataset = corpus();
  util::Rng rng(2);
  const auto split = train_test_split(dataset, 0.75, rng);
  EXPECT_NEAR(static_cast<double>(split.train.num_examples()) /
                  dataset.num_examples(),
              0.75, 0.08);
}

TEST(Split, ExtremeFractions) {
  const auto dataset = corpus();
  util::Rng rng(3);
  const auto all_train = train_test_split(dataset, 1.0, rng);
  EXPECT_EQ(all_train.train.num_examples(), dataset.num_examples());
  EXPECT_EQ(all_train.test.num_examples(), 0u);
  const auto all_test = train_test_split(dataset, 0.0, rng);
  EXPECT_EQ(all_test.train.num_examples(), 0u);
}

TEST(Split, TakeRowsPreservesContentAndOrder) {
  const auto dataset = corpus();
  const std::vector<Index> rows{5, 17, 99};
  const auto subset = take_rows(dataset, rows, "_subset");
  ASSERT_EQ(subset.num_examples(), 3u);
  EXPECT_EQ(subset.name(), dataset.name() + "_subset");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(subset.labels()[i], dataset.labels()[rows[i]]);
    const auto expected = dataset.by_row().row(rows[i]);
    const auto actual = subset.by_row().row(static_cast<Index>(i));
    ASSERT_EQ(actual.nnz(), expected.nnz());
    for (std::size_t k = 0; k < expected.nnz(); ++k) {
      EXPECT_EQ(actual.indices[k], expected.indices[k]);
      EXPECT_EQ(actual.values[k], expected.values[k]);
    }
  }
}

TEST(Split, TakeRowsKeepsPaperScale) {
  const auto dataset = corpus();
  const std::vector<Index> rows{0, 1};
  const auto subset = take_rows(dataset, rows, "_s");
  EXPECT_EQ(subset.paper_scale().has_value(),
            dataset.paper_scale().has_value());
}

TEST(Split, SampleRowsClampsAndSizes) {
  const auto dataset = corpus();
  util::Rng rng(4);
  const auto sampled = sample_rows(dataset, 50, rng);
  EXPECT_EQ(sampled.num_examples(), 50u);
  const auto everything = sample_rows(dataset, 100000, rng);
  EXPECT_EQ(everything.num_examples(), dataset.num_examples());
}

TEST(Split, SampleRowsDrawsWithoutReplacement) {
  const auto dataset = corpus();
  util::Rng rng(5);
  const auto sampled = sample_rows(dataset, dataset.num_examples(), rng);
  // Sampling all rows without replacement must reproduce the full nnz.
  EXPECT_EQ(sampled.nnz(), dataset.nnz());
}

}  // namespace
}  // namespace tpa::data
