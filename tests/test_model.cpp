#include "core/model.hpp"

#include <gtest/gtest.h>

#include "core/seq_scd.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace tpa::core {
namespace {

data::Dataset dataset() {
  data::DenseGaussianConfig config;
  config.num_examples = 20;
  config.num_features = 12;
  return data::make_dense_gaussian(config);
}

TEST(ModelState, ZerosHaveRightShapes) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.1);
  const auto primal = ModelState::zeros(problem, Formulation::kPrimal);
  EXPECT_EQ(primal.weights.size(), 12u);
  EXPECT_EQ(primal.shared.size(), 20u);
  const auto dual = ModelState::zeros(problem, Formulation::kDual);
  EXPECT_EQ(dual.weights.size(), 20u);
  EXPECT_EQ(dual.shared.size(), 12u);
  for (const auto v : primal.weights) EXPECT_EQ(v, 0.0F);
  for (const auto v : dual.shared) EXPECT_EQ(v, 0.0F);
}

TEST(ModelState, RecomputeSharedMatchesMatvec) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.1);
  auto state = ModelState::zeros(problem, Formulation::kPrimal);
  for (std::size_t j = 0; j < state.weights.size(); ++j) {
    state.weights[j] = static_cast<float>(j) * 0.1F;
  }
  state.recompute_shared(problem);
  const auto expected = linalg::csr_matvec(data.by_row(), state.weights);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_FLOAT_EQ(state.shared[i], expected[i]);
  }
}

TEST(ModelState, InconsistencyIsZeroWhenFresh) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.1);
  auto state = ModelState::zeros(problem, Formulation::kDual);
  state.weights[3] = 1.0F;
  state.recompute_shared(problem);
  EXPECT_EQ(state.shared_inconsistency(problem), 0.0);
}

TEST(ModelState, InconsistencyDetectsDrift) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.1);
  auto state = ModelState::zeros(problem, Formulation::kPrimal);
  state.weights[0] = 1.0F;
  state.recompute_shared(problem);
  state.shared[5] += 0.25F;  // inject asynchronous-style drift
  EXPECT_NEAR(state.shared_inconsistency(problem), 0.25, 1e-6);
}

TEST(ModelState, SequentialSolverKeepsSharedConsistent) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.05);
  SeqScdSolver solver(problem, Formulation::kPrimal, 5);
  for (int epoch = 0; epoch < 5; ++epoch) solver.run_epoch();
  // Incremental float updates drift only at rounding level.
  EXPECT_LT(solver.state().shared_inconsistency(problem), 1e-4);
}

}  // namespace
}  // namespace tpa::core
