#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace tpa::util {
namespace {

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, TasksCanSubmitResultsInOrderIndependentWay) {
  ThreadPool pool(4);
  std::vector<int> values(64, 0);
  pool.parallel_for(values.size(), [&values](std::size_t i) {
    values[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexForAnyGrain) {
  ThreadPool pool(4);
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(233);
    pool.parallel_for(
        hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); }, grain);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPool, ParallelForChunksPartitionsExactly) {
  ThreadPool pool(3);
  std::mutex mutex;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_for_chunks(
      100,
      [&](std::size_t begin, std::size_t end) {
        const std::lock_guard<std::mutex> lock(mutex);
        chunks.emplace_back(begin, end);
      },
      32);
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 4u);  // ceil(100 / 32)
  std::size_t expected_begin = 0;
  for (const auto& [begin, end] : chunks) {
    EXPECT_EQ(begin, expected_begin);
    EXPECT_GT(end, begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 100u);
}

TEST(ThreadPool, ParallelForChunksZeroCountAndSingleChunk) {
  ThreadPool pool(2);
  pool.parallel_for_chunks(0, [](std::size_t, std::size_t) { FAIL(); });
  int calls = 0;
  // grain >= count runs as one inline chunk.
  pool.parallel_for_chunks(
      5,
      [&calls](std::size_t begin, std::size_t end) {
        ++calls;
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 5u);
      },
      8);
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SurvivesManyWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DefaultSpinBudgetMatchesHost) {
  // Zero on a single-core host (a spinner would preempt the one worker),
  // a bounded nonzero budget everywhere else.
  const std::size_t budget = ThreadPool::default_spin_iterations();
  if (std::thread::hardware_concurrency() > 1) {
    EXPECT_GT(budget, 0u);
    EXPECT_LE(budget, 1u << 20);
  } else {
    EXPECT_EQ(budget, 0u);
  }
  ThreadPool pool(2);
  EXPECT_EQ(pool.spin_iterations(), budget);
}

// The spin budget is a latency knob, never a correctness knob: every task
// still runs exactly once and wait_idle still observes all side effects,
// whether workers park immediately (0) or spin long past the default.
TEST(ThreadPool, CorrectForAnySpinBudget) {
  for (const std::size_t spin : {std::size_t{0}, std::size_t{64},
                                 std::size_t{100'000}}) {
    ThreadPool pool(3, spin);
    EXPECT_EQ(pool.spin_iterations(), spin);
    std::atomic<int> counter{0};
    for (int wave = 0; wave < 10; ++wave) {
      std::vector<std::atomic<int>> hits(97);
      pool.parallel_for(hits.size(),
                        [&hits](std::size_t i) { hits[i].fetch_add(1); });
      for (const auto& h : hits) {
        ASSERT_EQ(h.load(), 1) << "spin " << spin;
      }
      pool.submit([&counter] { counter.fetch_add(1); });
      pool.wait_idle();
    }
    EXPECT_EQ(counter.load(), 10) << "spin " << spin;
  }
}

// Spinners park when no work arrives: a pool left idle must not prevent a
// timely destructor join even with a huge spin budget (the shutdown flag is
// part of the spin predicate).
TEST(ThreadPool, ShutsDownPromptlyWithLargeSpinBudget) {
  ThreadPool pool(4, 1u << 22);
  pool.parallel_for(64, [](std::size_t) {});
  // Destructor joins here; a hang fails via the test timeout.
}

}  // namespace
}  // namespace tpa::util
