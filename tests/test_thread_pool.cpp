#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace tpa::util {
namespace {

TEST(ThreadPool, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroCount) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

TEST(ThreadPool, TasksCanSubmitResultsInOrderIndependentWay) {
  ThreadPool pool(4);
  std::vector<int> values(64, 0);
  pool.parallel_for(values.size(), [&values](std::size_t i) {
    values[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, SurvivesManyWaves) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace tpa::util
