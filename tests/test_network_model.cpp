#include "cluster/network_model.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace tpa::cluster {
namespace {

TEST(NetworkModel, SingleWorkerHasNoCollectiveCost) {
  const auto net = NetworkModel::ethernet_10g();
  EXPECT_EQ(net.reduce_seconds(1 << 20, 1), 0.0);
  EXPECT_EQ(net.broadcast_seconds(1 << 20, 1), 0.0);
  EXPECT_EQ(net.allreduce_seconds(1 << 20, 0), 0.0);
}

TEST(NetworkModel, CostGrowsWithBytes) {
  const auto net = NetworkModel::ethernet_10g();
  EXPECT_LT(net.reduce_seconds(1 << 10, 4), net.reduce_seconds(1 << 20, 4));
  EXPECT_LT(net.point_to_point_seconds(100),
            net.point_to_point_seconds(1 << 20));
}

TEST(NetworkModel, LatencyGrowsLogarithmicallyWithWorkers) {
  const auto net = NetworkModel::ethernet_10g();
  // Pipelined tree: K=2 -> 1 level, K=8 -> 3 levels; bandwidth term fixed.
  const double t2 = net.reduce_seconds(0, 2);
  const double t8 = net.reduce_seconds(0, 8);
  EXPECT_NEAR(t8, 3.0 * t2, 1e-12);
  // Non-power-of-two rounds up.
  EXPECT_NEAR(net.reduce_seconds(0, 5), 3.0 * t2, 1e-12);
}

TEST(NetworkModel, BandwidthTermPaidOncePerCollective) {
  const auto net = NetworkModel::ethernet_10g();
  const std::size_t bytes = 1 << 20;
  const double transfer = static_cast<double>(bytes) /
                          (net.bandwidth_gbps * 1e9);
  EXPECT_NEAR(net.reduce_seconds(bytes, 8) - net.reduce_seconds(0, 8),
              transfer, 1e-12);
}

TEST(NetworkModel, AllreduceIsReducePlusBroadcast) {
  const auto net = NetworkModel::pcie_peer();
  const std::size_t bytes = 123456;
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(bytes, 6),
                   net.reduce_seconds(bytes, 6) +
                       net.broadcast_seconds(bytes, 6));
}

TEST(NetworkModel, ValidateRejectsNonPhysicalParameters) {
  auto net = NetworkModel::ethernet_10g();
  EXPECT_NO_THROW(net.validate());
  net.bandwidth_gbps = 0.0;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net.bandwidth_gbps = -1.0;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net.bandwidth_gbps = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net = NetworkModel::ethernet_10g();
  net.latency_s = -1e-6;
  EXPECT_THROW(net.validate(), std::invalid_argument);
  net.latency_s = 0.0;  // zero latency is physical (loopback limit)
  EXPECT_NO_THROW(net.validate());
}

TEST(NetworkModel, CollectivesDegenerateGracefully) {
  const auto net = NetworkModel::ethernet_10g();
  // K <= 1: no peers, no cost — including the K = 0 edge.
  for (const std::size_t bytes : {std::size_t{0}, std::size_t{1} << 24}) {
    for (const int workers : {-1, 0, 1}) {
      EXPECT_EQ(net.reduce_seconds(bytes, workers), 0.0);
      EXPECT_EQ(net.broadcast_seconds(bytes, workers), 0.0);
      EXPECT_EQ(net.allreduce_seconds(bytes, workers), 0.0);
    }
  }
  // Zero bytes still pays the per-level latency.
  EXPECT_GT(net.reduce_seconds(0, 2), 0.0);
}

TEST(NetworkModel, NonPowerOfTwoRoundsUpToTheNextLevel) {
  const auto net = NetworkModel::pcie_peer();
  const double level = net.reduce_seconds(0, 2);
  // ceil(log2): 3 workers price like 4, 5..8 like 8, 9 like 16.
  EXPECT_NEAR(net.reduce_seconds(0, 3), net.reduce_seconds(0, 4), 1e-15);
  EXPECT_NEAR(net.reduce_seconds(0, 5), net.reduce_seconds(0, 8), 1e-15);
  EXPECT_NEAR(net.broadcast_seconds(0, 6), 3.0 * level, 1e-15);
  EXPECT_NEAR(net.reduce_seconds(0, 9), 4.0 * level, 1e-15);
}

TEST(NetworkModel, PresetOrdering) {
  const auto eth10 = NetworkModel::ethernet_10g();
  const auto eth100 = NetworkModel::ethernet_100g();
  const auto pcie = NetworkModel::pcie_peer();
  // 100GbE and PCIe both out-run 10GbE for a 1 MB shared vector.
  const std::size_t bytes = 1 << 20;
  EXPECT_LT(eth100.reduce_seconds(bytes, 8), eth10.reduce_seconds(bytes, 8));
  EXPECT_LT(pcie.reduce_seconds(bytes, 8), eth10.reduce_seconds(bytes, 8));
  // PCIe has the lowest latency.
  EXPECT_LT(pcie.latency_s, eth10.latency_s);
}

}  // namespace
}  // namespace tpa::cluster
