#include "cluster/network_model.hpp"

#include <gtest/gtest.h>

namespace tpa::cluster {
namespace {

TEST(NetworkModel, SingleWorkerHasNoCollectiveCost) {
  const auto net = NetworkModel::ethernet_10g();
  EXPECT_EQ(net.reduce_seconds(1 << 20, 1), 0.0);
  EXPECT_EQ(net.broadcast_seconds(1 << 20, 1), 0.0);
  EXPECT_EQ(net.allreduce_seconds(1 << 20, 0), 0.0);
}

TEST(NetworkModel, CostGrowsWithBytes) {
  const auto net = NetworkModel::ethernet_10g();
  EXPECT_LT(net.reduce_seconds(1 << 10, 4), net.reduce_seconds(1 << 20, 4));
  EXPECT_LT(net.point_to_point_seconds(100),
            net.point_to_point_seconds(1 << 20));
}

TEST(NetworkModel, LatencyGrowsLogarithmicallyWithWorkers) {
  const auto net = NetworkModel::ethernet_10g();
  // Pipelined tree: K=2 -> 1 level, K=8 -> 3 levels; bandwidth term fixed.
  const double t2 = net.reduce_seconds(0, 2);
  const double t8 = net.reduce_seconds(0, 8);
  EXPECT_NEAR(t8, 3.0 * t2, 1e-12);
  // Non-power-of-two rounds up.
  EXPECT_NEAR(net.reduce_seconds(0, 5), 3.0 * t2, 1e-12);
}

TEST(NetworkModel, BandwidthTermPaidOncePerCollective) {
  const auto net = NetworkModel::ethernet_10g();
  const std::size_t bytes = 1 << 20;
  const double transfer = static_cast<double>(bytes) /
                          (net.bandwidth_gbps * 1e9);
  EXPECT_NEAR(net.reduce_seconds(bytes, 8) - net.reduce_seconds(0, 8),
              transfer, 1e-12);
}

TEST(NetworkModel, AllreduceIsReducePlusBroadcast) {
  const auto net = NetworkModel::pcie_peer();
  const std::size_t bytes = 123456;
  EXPECT_DOUBLE_EQ(net.allreduce_seconds(bytes, 6),
                   net.reduce_seconds(bytes, 6) +
                       net.broadcast_seconds(bytes, 6));
}

TEST(NetworkModel, PresetOrdering) {
  const auto eth10 = NetworkModel::ethernet_10g();
  const auto eth100 = NetworkModel::ethernet_100g();
  const auto pcie = NetworkModel::pcie_peer();
  // 100GbE and PCIe both out-run 10GbE for a 1 MB shared vector.
  const std::size_t bytes = 1 << 20;
  EXPECT_LT(eth100.reduce_seconds(bytes, 8), eth10.reduce_seconds(bytes, 8));
  EXPECT_LT(pcie.reduce_seconds(bytes, 8), eth10.reduce_seconds(bytes, 8));
  // PCIe has the lowest latency.
  EXPECT_LT(pcie.latency_s, eth10.latency_s);
}

}  // namespace
}  // namespace tpa::cluster
