// RidgeProblem math: objectives, partial derivatives (checked numerically),
// closed-form coordinate updates (checked against the first-order optimality
// condition), duality-gap behaviour and the primal<->dual maps.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/ridge_problem.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace tpa::core {
namespace {

data::Dataset tiny_dataset() {
  data::DenseGaussianConfig config;
  config.num_examples = 24;
  config.num_features = 10;
  config.noise_sigma = 0.1;
  return data::make_dense_gaussian(config);
}

TEST(RidgeProblem, RejectsBadInputs) {
  const auto dataset = tiny_dataset();
  EXPECT_THROW(RidgeProblem(dataset, 0.0), std::invalid_argument);
  EXPECT_THROW(RidgeProblem(dataset, -1.0), std::invalid_argument);
}

TEST(RidgeProblem, DimensionsPerFormulation) {
  const auto dataset = tiny_dataset();
  const RidgeProblem problem(dataset, 0.1);
  EXPECT_EQ(problem.num_coordinates(Formulation::kPrimal), 10u);
  EXPECT_EQ(problem.num_coordinates(Formulation::kDual), 24u);
  EXPECT_EQ(problem.shared_dim(Formulation::kPrimal), 24u);
  EXPECT_EQ(problem.shared_dim(Formulation::kDual), 10u);
}

TEST(RidgeProblem, HandComputedObjectivesOnOneByOne) {
  // A = [2], y = [3], lambda = 0.5, N = 1.
  sparse::CsrMatrix matrix(1, 1, {0, 1}, {0}, {2.0F});
  const data::Dataset dataset("unit", std::move(matrix), {3.0F});
  const RidgeProblem problem(dataset, 0.5);

  // P(beta) = 1/2 (2 beta - 3)^2 + 0.25 beta^2 at beta = 1: 0.5 + 0.25.
  const std::vector<float> beta{1.0F};
  const std::vector<float> w{2.0F};
  EXPECT_NEAR(problem.primal_objective(beta, w), 0.75, 1e-9);

  // D(alpha) = -1/2 a^2 - (1/1)(2a)^2/1... with lambda=0.5:
  // D = -0.5 a^2 - (1/(2*0.5)) (2a)^2 + 3a = -0.5 a^2 - 4 a^2 + 3 a.
  const std::vector<float> alpha{0.5F};
  const std::vector<float> wbar{1.0F};  // A^T alpha = 2*0.5
  EXPECT_NEAR(problem.dual_objective(alpha, wbar),
              -0.5 * 0.25 - 1.0 + 1.5, 1e-9);
}

TEST(RidgeProblem, OptimalObjectivesCoincideOnOneByOne) {
  // Same problem; the analytic optimum: beta* = a y / (a^2 + lambda N).
  sparse::CsrMatrix matrix(1, 1, {0, 1}, {0}, {2.0F});
  const data::Dataset dataset("unit", std::move(matrix), {3.0F});
  const double lambda = 0.5;
  const RidgeProblem problem(dataset, lambda);
  const double beta_star = 2.0 * 3.0 / (4.0 + 0.5);
  const std::vector<float> beta{static_cast<float>(beta_star)};
  const std::vector<float> w{static_cast<float>(2.0 * beta_star)};

  const double alpha_star = lambda * 3.0 / (lambda + 4.0);
  const std::vector<float> alpha{static_cast<float>(alpha_star)};
  const std::vector<float> wbar{static_cast<float>(2.0 * alpha_star)};

  EXPECT_NEAR(problem.primal_objective(beta, w),
              problem.dual_objective(alpha, wbar), 1e-9);
  EXPECT_NEAR(problem.primal_duality_gap(beta, w), 0.0, 1e-9);
  EXPECT_NEAR(problem.dual_duality_gap(alpha, wbar), 0.0, 1e-9);
}

class GradientCheck : public ::testing::TestWithParam<double> {};

TEST_P(GradientCheck, PrimalPartialMatchesFiniteDifference) {
  const auto dataset = tiny_dataset();
  const RidgeProblem problem(dataset, GetParam());
  util::Rng rng(11);
  std::vector<float> beta(problem.num_features());
  for (auto& b : beta) b = static_cast<float>(rng.normal());
  auto w = linalg::csr_matvec(dataset.by_row(), beta);

  const double h = 1e-3;
  for (Index m = 0; m < problem.num_features(); m += 3) {
    auto beta_plus = beta;
    beta_plus[m] += static_cast<float>(h);
    auto w_plus = linalg::csr_matvec(dataset.by_row(), beta_plus);
    auto beta_minus = beta;
    beta_minus[m] -= static_cast<float>(h);
    auto w_minus = linalg::csr_matvec(dataset.by_row(), beta_minus);
    const double numeric = (problem.primal_objective(beta_plus, w_plus) -
                            problem.primal_objective(beta_minus, w_minus)) /
                           (2.0 * h);
    EXPECT_NEAR(problem.primal_partial(m, beta, w), numeric, 5e-3)
        << "coordinate " << m << ", lambda " << GetParam();
  }
}

TEST_P(GradientCheck, DualPartialMatchesFiniteDifference) {
  const auto dataset = tiny_dataset();
  const RidgeProblem problem(dataset, GetParam());
  util::Rng rng(12);
  std::vector<float> alpha(problem.num_examples());
  for (auto& a : alpha) a = static_cast<float>(rng.normal(0.0, 0.1));
  auto wbar = linalg::csr_matvec_transposed(dataset.by_row(), alpha);

  const double h = 1e-3;
  for (Index n = 0; n < problem.num_examples(); n += 5) {
    auto alpha_plus = alpha;
    alpha_plus[n] += static_cast<float>(h);
    auto wbar_plus = linalg::csr_matvec_transposed(dataset.by_row(),
                                                   alpha_plus);
    auto alpha_minus = alpha;
    alpha_minus[n] -= static_cast<float>(h);
    auto wbar_minus = linalg::csr_matvec_transposed(dataset.by_row(),
                                                    alpha_minus);
    const double numeric =
        (problem.dual_objective(alpha_plus, wbar_plus) -
         problem.dual_objective(alpha_minus, wbar_minus)) /
        (2.0 * h);
    EXPECT_NEAR(problem.dual_partial(n, alpha, wbar), numeric, 5e-2)
        << "coordinate " << n << ", lambda " << GetParam();
  }
}

TEST_P(GradientCheck, CoordinateDeltaZeroesThePartial) {
  const auto dataset = tiny_dataset();
  const RidgeProblem problem(dataset, GetParam());
  util::Rng rng(13);

  // Primal: after the closed-form update of coordinate m, dP/dbeta_m == 0.
  std::vector<float> beta(problem.num_features());
  for (auto& b : beta) b = static_cast<float>(rng.normal(0.0, 0.3));
  auto w = linalg::csr_matvec(dataset.by_row(), beta);
  for (Index m = 0; m < problem.num_features(); m += 2) {
    const double delta =
        problem.coordinate_delta(Formulation::kPrimal, m, w, beta[m]);
    auto beta2 = beta;
    beta2[m] = static_cast<float>(beta[m] + delta);
    const auto w2 = linalg::csr_matvec(dataset.by_row(), beta2);
    EXPECT_NEAR(problem.primal_partial(m, beta2, w2), 0.0, 1e-5);
  }

  // Dual: after the closed-form update of coordinate n, dD/dalpha_n == 0.
  std::vector<float> alpha(problem.num_examples());
  for (auto& a : alpha) a = static_cast<float>(rng.normal(0.0, 0.05));
  auto wbar = linalg::csr_matvec_transposed(dataset.by_row(), alpha);
  for (Index n = 0; n < problem.num_examples(); n += 4) {
    const double delta =
        problem.coordinate_delta(Formulation::kDual, n, wbar, alpha[n]);
    auto alpha2 = alpha;
    alpha2[n] = static_cast<float>(alpha[n] + delta);
    const auto wbar2 =
        linalg::csr_matvec_transposed(dataset.by_row(), alpha2);
    EXPECT_NEAR(problem.dual_partial(n, alpha2, wbar2), 0.0, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Lambdas, GradientCheck,
                         ::testing::Values(1e-3, 1e-2, 0.1, 1.0));

TEST(RidgeProblem, CoordinateUpdateNeverIncreasesPrimalObjective) {
  const auto dataset = tiny_dataset();
  const RidgeProblem problem(dataset, 0.05);
  std::vector<float> beta(problem.num_features(), 0.0F);
  auto w = linalg::csr_matvec(dataset.by_row(), beta);
  double objective = problem.primal_objective(beta, w);
  for (Index m = 0; m < problem.num_features(); ++m) {
    const double delta =
        problem.coordinate_delta(Formulation::kPrimal, m, w, beta[m]);
    beta[m] = static_cast<float>(beta[m] + delta);
    linalg::sparse_axpy(delta,
                        problem.coordinate_vector(Formulation::kPrimal, m),
                        w);
    const double next = problem.primal_objective(beta, w);
    EXPECT_LE(next, objective + 1e-7);
    objective = next;
  }
}

TEST(RidgeProblem, DualityGapIsNonNegativeAndShrinks) {
  const auto dataset = tiny_dataset();
  const RidgeProblem problem(dataset, 0.01);
  SeqScdSolver solver(problem, Formulation::kPrimal, 3);
  double previous = problem.duality_gap(Formulation::kPrimal,
                                        solver.state().weights,
                                        solver.state().shared);
  EXPECT_GE(previous, 0.0);
  for (int epoch = 0; epoch < 20; ++epoch) solver.run_epoch();
  const double after = solver.duality_gap(problem);
  EXPECT_GE(after, 0.0);
  EXPECT_LT(after, previous * 1e-2);
}

TEST(RidgeProblem, PrimalDualMapsInvertAtOptimum) {
  const auto dataset = tiny_dataset();
  const RidgeProblem problem(dataset, 0.05);
  // Solve the dual accurately, then verify eq. (5)/(6) self-consistency.
  SeqScdSolver solver(problem, Formulation::kDual, 4);
  for (int epoch = 0; epoch < 200; ++epoch) solver.run_epoch();
  const auto beta = problem.primal_from_dual_shared(solver.state().shared);
  const auto w = linalg::csr_matvec(dataset.by_row(), beta);
  const auto alpha_back = problem.dual_from_primal_shared(w);
  for (Index n = 0; n < problem.num_examples(); ++n) {
    EXPECT_NEAR(alpha_back[n], solver.state().weights[n], 1e-4);
  }
}

TEST(RidgeProblem, EffectiveExamplesOverridesN) {
  const auto dataset = tiny_dataset();
  const RidgeProblem local(dataset, 0.1, /*global_examples=*/240);
  EXPECT_EQ(local.num_examples(), 24u);
  EXPECT_EQ(local.effective_examples(), 240u);
  const RidgeProblem plain(dataset, 0.1);
  EXPECT_EQ(plain.effective_examples(), 24u);
  // The dual update damping term uses the override, so deltas differ.
  std::vector<float> wbar(local.shared_dim(Formulation::kDual), 0.0F);
  const double d_local =
      local.coordinate_delta(Formulation::kDual, 0, wbar, 0.0);
  const double d_plain =
      plain.coordinate_delta(Formulation::kDual, 0, wbar, 0.0);
  EXPECT_NE(d_local, d_plain);
  EXPECT_LT(std::abs(d_local), std::abs(d_plain));
}

// Pool-parallel objectives and gaps: the pooled evaluation chunks the same
// sums (and, for the primal gap, walks the column orientation), so values
// agree with the serial evaluation to reduction tolerance — and the chunked
// combine order is fixed, so results are thread-count independent.
TEST(RidgeProblemPooled, ObjectivesAndGapsMatchSerial) {
  data::WebspamLikeConfig config;
  config.num_examples = 1024;
  config.num_features = 2048;
  const auto dataset = data::make_webspam_like(config);
  const RidgeProblem problem(dataset, 1e-3);

  // A non-trivial iterate: a few SCD epochs away from the optimum.
  SeqScdSolver dual_solver(problem, Formulation::kDual, 11);
  for (int epoch = 0; epoch < 3; ++epoch) dual_solver.run_epoch();
  const auto& alpha = dual_solver.state().weights;
  const auto& wbar = dual_solver.state().shared;
  const auto beta = problem.primal_from_dual_shared(wbar);
  const auto w = linalg::csr_matvec(dataset.by_row(), beta);

  util::ThreadPool pool2(2);
  util::ThreadPool pool4(4);
  const auto tol = [](double x) { return 1e-9 * (1.0 + std::abs(x)); };

  const double primal = problem.primal_objective(beta, w);
  const double dual = problem.dual_objective(alpha, wbar);
  const double gp = problem.primal_duality_gap(beta, w);
  const double gd = problem.dual_duality_gap(alpha, wbar);
  // A gap is a cancelling difference of two objectives, so its absolute
  // error scales with the objectives' magnitude, not its own.
  const double gap_tol = 1e-7 * (1.0 + std::abs(primal) + std::abs(dual));

  for (util::ThreadPool* pool : {&pool2, &pool4}) {
    EXPECT_NEAR(problem.primal_objective(beta, w, pool), primal, tol(primal));
    EXPECT_NEAR(problem.dual_objective(alpha, wbar, pool), dual, tol(dual));
    EXPECT_NEAR(problem.primal_duality_gap(beta, w, pool), gp, gap_tol);
    EXPECT_NEAR(problem.dual_duality_gap(alpha, wbar, pool), gd, gap_tol);
  }

  // Thread-count independence: 2- and 4-worker pools chunk identically, so
  // the pooled values are bit-identical to each other.
  EXPECT_EQ(problem.primal_duality_gap(beta, w, &pool2),
            problem.primal_duality_gap(beta, w, &pool4));
  EXPECT_EQ(problem.dual_duality_gap(alpha, wbar, &pool2),
            problem.dual_duality_gap(alpha, wbar, &pool4));

  // The formulation dispatcher forwards the pool.
  EXPECT_EQ(problem.duality_gap(Formulation::kDual, alpha, wbar, &pool4),
            problem.dual_duality_gap(alpha, wbar, &pool4));
}

// Padded and unpadded coordinate views describe the same coordinate: the
// padding tail repeats the last index with value zero.
TEST(RidgeProblem, CoordinateVectorPaddedVsUnpadded) {
  const auto dataset = tiny_dataset();
  const RidgeProblem problem(dataset, 0.1);
  for (const auto f : {Formulation::kPrimal, Formulation::kDual}) {
    for (Index j = 0; j < problem.num_coordinates(f); ++j) {
      const auto padded = problem.coordinate_vector(f, j);
      const auto exact = problem.coordinate_vector_unpadded(f, j);
      ASSERT_GE(padded.nnz(), exact.nnz());
      if (exact.nnz() > 0) EXPECT_EQ(padded.nnz() % 8, 0u);
      for (std::size_t k = 0; k < padded.nnz(); ++k) {
        if (k < exact.nnz()) {
          EXPECT_EQ(padded.indices[k], exact.indices[k]);
          EXPECT_EQ(padded.values[k], exact.values[k]);
        } else {
          EXPECT_EQ(padded.indices[k], exact.indices[exact.nnz() - 1]);
          EXPECT_EQ(padded.values[k], 0.0F);
        }
      }
    }
  }
}

}  // namespace
}  // namespace tpa::core
