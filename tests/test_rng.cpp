#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace tpa::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t state = 0;
  const auto a = splitmix64_next(state);
  const auto b = splitmix64_next(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64_next(state2), a);
  EXPECT_EQ(splitmix64_next(state2), b);
  EXPECT_NE(a, b);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexStaysBelowBound) {
  Rng rng(10);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.uniform_index(bound), bound);
    }
  }
}

TEST(Rng, UniformIndexIsRoughlyUniform) {
  Rng rng(11);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(bound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, n / 10.0 * 0.15);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(12);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, BernoulliEdgesAreExact) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng(18);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.zipf(100, 1.1), 100u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.zipf(1, 1.1), 0u);
  }
}

TEST(Rng, ZipfFavoursSmallIndices) {
  Rng rng(19);
  std::vector<int> counts(64, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.zipf(64, 1.2)];
  EXPECT_GT(counts[0], counts[8]);
  EXPECT_GT(counts[0], counts[32]);
  // Head mass: index 0 should hold a substantial share under s=1.2.
  EXPECT_GT(counts[0], 100000 / 10);
}

TEST(Rng, ZipfHandlesUnitExponent) {
  // s == 1 hits the logarithmic branch of rejection-inversion.
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.zipf(1000, 1.0), 1000u);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), std::numeric_limits<std::uint64_t>::max());
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformIndexUnbiasedAcrossSeeds) {
  Rng rng(GetParam());
  const std::uint64_t bound = 7;
  std::vector<int> counts(bound, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(bound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 7.0, n / 7.0 * 0.1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL,
                                           0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace tpa::util
