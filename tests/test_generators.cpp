// Synthetic dataset generators: structure, determinism, and the properties
// the paper's phenomenology depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.hpp"

namespace tpa::data {
namespace {

WebspamLikeConfig small_webspam_config() {
  WebspamLikeConfig config;
  config.num_examples = 256;
  config.num_features = 512;
  config.avg_nnz_per_row = 16.0;
  return config;
}

TEST(WebspamLike, DimensionsMatchConfig) {
  const auto dataset = make_webspam_like(small_webspam_config());
  EXPECT_EQ(dataset.num_examples(), 256u);
  EXPECT_EQ(dataset.num_features(), 512u);
  EXPECT_EQ(dataset.name(), "webspam_like");
}

TEST(WebspamLike, EveryRowIsNonEmptyAndUnitNorm) {
  const auto dataset = make_webspam_like(small_webspam_config());
  for (Index r = 0; r < dataset.num_examples(); ++r) {
    ASSERT_GT(dataset.by_row().row_nnz(r), 0u);
    EXPECT_NEAR(dataset.row_squared_norms()[r], 1.0, 1e-3)
        << "row " << r << " should be L2-normalised";
  }
}

TEST(WebspamLike, NormalizationCanBeDisabled) {
  auto config = small_webspam_config();
  config.normalize_rows = false;
  const auto dataset = make_webspam_like(config);
  bool any_non_unit = false;
  for (Index r = 0; r < dataset.num_examples(); ++r) {
    if (std::abs(dataset.row_squared_norms()[r] - 1.0) > 0.05) {
      any_non_unit = true;
    }
  }
  EXPECT_TRUE(any_non_unit);
}

TEST(WebspamLike, MeanRowLengthTracksConfig) {
  const auto dataset = make_webspam_like(small_webspam_config());
  const double mean_nnz = static_cast<double>(dataset.nnz()) /
                          dataset.num_examples();
  EXPECT_GT(mean_nnz, 8.0);
  EXPECT_LT(mean_nnz, 40.0);
}

TEST(WebspamLike, PopularFeaturesFollowZipfHead) {
  const auto dataset = make_webspam_like(small_webspam_config());
  // Feature 0 (most popular under the Zipf law) should appear in far more
  // rows than a mid-tail feature.
  EXPECT_GT(dataset.by_col().col_nnz(0),
            4 * std::max<std::size_t>(1, dataset.by_col().col_nnz(200)));
}

TEST(WebspamLike, DeterministicForSameSeedDifferentOtherwise) {
  const auto a = make_webspam_like(small_webspam_config());
  const auto b = make_webspam_like(small_webspam_config());
  ASSERT_EQ(a.nnz(), b.nnz());
  EXPECT_EQ(a.labels()[0], b.labels()[0]);
  EXPECT_EQ(a.by_row().col_indices()[0], b.by_row().col_indices()[0]);

  auto other_config = small_webspam_config();
  other_config.seed = 999;
  const auto c = make_webspam_like(other_config);
  EXPECT_NE(a.labels()[0], c.labels()[0]);
}

TEST(WebspamLike, CarriesWebspamPaperScale) {
  const auto dataset = make_webspam_like(small_webspam_config());
  ASSERT_TRUE(dataset.paper_scale().has_value());
  EXPECT_EQ(dataset.paper_scale()->name, "webspam");
  EXPECT_EQ(dataset.paper_scale()->examples, 262'938u);
  EXPECT_EQ(dataset.paper_scale()->features, 680'715u);
}

CriteoLikeConfig small_criteo_config() {
  CriteoLikeConfig config;
  config.num_examples = 512;
  config.num_fields = 8;
  config.buckets_per_field = 32;
  return config;
}

TEST(CriteoLike, OneHotStructure) {
  const auto dataset = make_criteo_like(small_criteo_config());
  EXPECT_EQ(dataset.num_features(), 8u * 32u);
  for (Index r = 0; r < dataset.num_examples(); ++r) {
    // Exactly one active bucket per field.
    ASSERT_EQ(dataset.by_row().row_nnz(r), 8u);
    const auto view = dataset.by_row().row(r);
    for (std::size_t k = 0; k < view.nnz(); ++k) {
      EXPECT_EQ(view.values[k], 1.0F) << "criteo values are always 1.0";
      EXPECT_EQ(view.indices[k] / 32, k) << "one feature per field range";
    }
  }
}

TEST(CriteoLike, LabelsAreSigns) {
  const auto dataset = make_criteo_like(small_criteo_config());
  int positives = 0;
  for (const auto y : dataset.labels()) {
    EXPECT_TRUE(y == 1.0F || y == -1.0F);
    positives += y > 0 ? 1 : 0;
  }
  // The planted model should produce a non-degenerate class split.
  EXPECT_GT(positives, 32);
  EXPECT_LT(positives, 480);
}

TEST(CriteoLike, CarriesCriteoPaperScale) {
  const auto dataset = make_criteo_like(small_criteo_config());
  ASSERT_TRUE(dataset.paper_scale().has_value());
  EXPECT_EQ(dataset.paper_scale()->examples, 200'000'000u);
  EXPECT_EQ(dataset.paper_scale()->features, 75'000'000u);
}

TEST(DenseGaussian, FullDensityWhenRequested) {
  DenseGaussianConfig config;
  config.num_examples = 16;
  config.num_features = 8;
  config.density = 1.0;
  const auto dataset = make_dense_gaussian(config);
  EXPECT_EQ(dataset.nnz(), 16u * 8u);
}

TEST(DenseGaussian, DensityControlsFill) {
  DenseGaussianConfig config;
  config.num_examples = 64;
  config.num_features = 64;
  config.density = 0.25;
  const auto dataset = make_dense_gaussian(config);
  const double fill = static_cast<double>(dataset.nnz()) / (64.0 * 64.0);
  EXPECT_NEAR(fill, 0.25, 0.05);
}

TEST(PlantedLabels, NoiseFreeLabelsAreDeterministicLinearModel) {
  DenseGaussianConfig config;
  config.num_examples = 32;
  config.num_features = 8;
  config.noise_sigma = 0.0;
  const auto dataset = make_dense_gaussian(config);
  // With zero noise the labels must be exactly A·beta (up to the unit-
  // variance normalisation), so a ridge fit can drive the residual to ~0;
  // here we just check labels are finite, non-constant and reproducible.
  float min_y = dataset.labels()[0];
  float max_y = dataset.labels()[0];
  for (const auto y : dataset.labels()) {
    ASSERT_TRUE(std::isfinite(y));
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  EXPECT_LT(min_y, max_y);
}

}  // namespace
}  // namespace tpa::data
