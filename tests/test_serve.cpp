// Serving subsystem: model normalisation, the sparse scoring kernels, the
// hot-reload registry, serving metrics, and the batcher's concurrency edges
// (coalescing, queue-full shedding, reload during an in-flight batch).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "serve/model_registry.hpp"
#include "serve/request_batcher.hpp"
#include "serve/scorer.hpp"
#include "serve/server.hpp"

namespace tpa::serve {
namespace {

using sparse::CsrMatrix;
using sparse::Index;

core::SavedModel primal_model(std::vector<float> beta, double lambda = 1e-3) {
  core::SavedModel model;
  model.formulation = core::Formulation::kPrimal;
  model.lambda = lambda;
  model.weights = std::move(beta);
  return model;
}

CsrMatrix two_row_matrix() {
  // Row 0 is scattered (gather path), row 1 is contiguous (dense fast path).
  return CsrMatrix(2, 8, {0, 3, 7}, {0, 3, 6, 2, 3, 4, 5},
                   {1.0F, 2.0F, -1.0F, 0.5F, 1.5F, -2.0F, 4.0F});
}

TEST(ServableModel, PrimalWeightsPassThrough) {
  const auto model =
      ServableModel::from_saved(primal_model({1.0F, -2.0F, 3.0F}, 0.5), 7);
  EXPECT_EQ(model.version, 7u);
  EXPECT_EQ(model.trained_as, core::Formulation::kPrimal);
  EXPECT_EQ(model.beta, (std::vector<float>{1.0F, -2.0F, 3.0F}));
}

TEST(ServableModel, DualMapsSharedThroughEq5) {
  core::SavedModel saved;
  saved.formulation = core::Formulation::kDual;
  saved.lambda = 0.5;
  saved.weights = {9.0F, 9.0F};       // dual alphas: not used for scoring
  saved.shared = {1.0F, -0.5F, 2.0F};  // w̄ = Aᵀα
  const auto model = ServableModel::from_saved(saved, 1);
  EXPECT_EQ(model.beta, (std::vector<float>{2.0F, -1.0F, 4.0F}));
}

TEST(ServableModel, RejectsDualWithoutLambda) {
  core::SavedModel saved;
  saved.formulation = core::Formulation::kDual;
  saved.lambda = 0.0;
  saved.shared = {1.0F};
  EXPECT_THROW(ServableModel::from_saved(saved, 1), std::invalid_argument);
}

TEST(ServableModel, RejectsEmptyWeights) {
  EXPECT_THROW(ServableModel::from_saved(primal_model({}), 1),
               std::invalid_argument);
}

TEST(Scorer, MatchesSparseDotOnBothKernelPaths) {
  const auto matrix = two_row_matrix();
  const std::vector<float> beta = {0.5F, 1.0F, -1.0F, 2.0F,
                                   0.25F, -0.5F, 3.0F, 1.0F};
  for (Index r = 0; r < matrix.rows(); ++r) {
    EXPECT_DOUBLE_EQ(score_row(matrix.row(r), beta),
                     linalg::sparse_dot(matrix.row(r), beta));
  }
}

TEST(Scorer, EmptyRowAndEmptyModelScoreZero) {
  const CsrMatrix matrix(1, 4, {0, 0}, {}, {});
  const std::vector<float> beta = {1.0F, 1.0F, 1.0F, 1.0F};
  EXPECT_EQ(score_row(matrix.row(0), beta), 0.0);
  EXPECT_EQ(score_row(two_row_matrix().row(0), {}), 0.0);
}

TEST(Scorer, ClipsRowsWiderThanModel) {
  const auto matrix = two_row_matrix();
  // Model covers only columns [0, 4): row 0 keeps indices 0 and 3, dropping
  // column 6; row 1 keeps columns 2 and 3.
  const std::vector<float> beta = {1.0F, 1.0F, 1.0F, 1.0F};
  EXPECT_DOUBLE_EQ(score_row(matrix.row(0), beta), 1.0 + 2.0);
  EXPECT_DOUBLE_EQ(score_row(matrix.row(1), beta), 0.5 + 1.5);
}

TEST(Scorer, ScoreRowsValidatesRangeAndOutput) {
  const auto matrix = two_row_matrix();
  const std::vector<float> beta(8, 1.0F);
  std::vector<float> out(1);
  EXPECT_THROW(score_rows(matrix, 0, 3, beta, out), std::out_of_range);
  EXPECT_THROW(score_rows(matrix, 0, 2, beta, out), std::invalid_argument);
}

TEST(Scorer, ScoreMatrixMatchesPredict) {
  data::WebspamLikeConfig config;
  config.num_examples = 300;
  config.num_features = 128;
  const auto dataset = data::make_webspam_like(config);
  std::vector<float> beta(static_cast<std::size_t>(dataset.num_features()));
  for (std::size_t m = 0; m < beta.size(); ++m) {
    beta[m] = 0.01F * static_cast<float>(m % 13) - 0.05F;
  }
  const auto model = ServableModel::from_saved(primal_model(beta), 1);
  util::ThreadPool pool(4);
  const auto scored = score_matrix(pool, dataset.by_row(), model);
  const auto expected = core::predict(dataset, beta);
  ASSERT_EQ(scored.size(), expected.size());
  for (std::size_t i = 0; i < scored.size(); ++i) {
    EXPECT_NEAR(scored[i], expected[i], 1e-4) << "row " << i;
  }
}

// The in-place overload is the allocation-free hot path the batcher reuses a
// buffer with; it must reproduce the allocating version exactly and reject
// missized output buffers.
TEST(Scorer, ScoreMatrixInPlaceMatchesAllocating) {
  data::WebspamLikeConfig config;
  config.num_examples = 300;
  config.num_features = 128;
  const auto dataset = data::make_webspam_like(config);
  std::vector<float> beta(static_cast<std::size_t>(dataset.num_features()),
                          0.125F);
  const auto model = ServableModel::from_saved(primal_model(beta), 1);
  util::ThreadPool pool(4);
  const auto allocated = score_matrix(pool, dataset.by_row(), model);
  std::vector<float> out(static_cast<std::size_t>(dataset.num_examples()),
                         -1.0F);
  score_matrix(pool, dataset.by_row(), model, out);
  EXPECT_EQ(out, allocated);

  std::vector<float> wrong_size(allocated.size() + 1);
  EXPECT_THROW(score_matrix(pool, dataset.by_row(), model, wrong_size),
               std::invalid_argument);
}

TEST(LatencyHistogramTest, QuantilesAreMonotoneBucketEdges) {
  LatencyHistogram histogram;
  for (int i = 0; i < 90; ++i) histogram.record(10e-6);   // [8, 16) µs bucket
  for (int i = 0; i < 10; ++i) histogram.record(1000e-6);  // [512, 1024) µs
  EXPECT_EQ(histogram.total_count(), 100u);
  EXPECT_DOUBLE_EQ(histogram.quantile_us(0.5), 16.0);
  EXPECT_DOUBLE_EQ(histogram.quantile_us(0.9), 16.0);
  EXPECT_DOUBLE_EQ(histogram.quantile_us(0.99), 1024.0);
  EXPECT_LE(histogram.quantile_us(0.5), histogram.quantile_us(0.99));
}

TEST(LatencyHistogramTest, EmptyAndExtremeValues) {
  LatencyHistogram histogram;
  EXPECT_EQ(histogram.quantile_us(0.5), 0.0);
  histogram.record(0.0);      // underflow → first bucket
  histogram.record(1e9);      // overflow → last bucket
  EXPECT_EQ(histogram.total_count(), 2u);
  EXPECT_GT(histogram.quantile_us(1.0), 0.0);
}

TEST(LatencyHistogramTest, SingleSampleIsEveryQuantile) {
  LatencyHistogram histogram;
  histogram.record(100e-6);  // 100 µs → [64, 128) bucket, upper edge 128
  EXPECT_EQ(histogram.total_count(), 1u);
  EXPECT_DOUBLE_EQ(histogram.quantile_us(0.0), 128.0);
  EXPECT_DOUBLE_EQ(histogram.quantile_us(0.5), 128.0);
  EXPECT_DOUBLE_EQ(histogram.quantile_us(1.0), 128.0);
}

TEST(LatencyHistogramTest, OverflowSaturatesAtTopBucketEdge) {
  LatencyHistogram histogram;
  histogram.record(1e9);  // 10^15 µs, far beyond the 2^31 µs top bucket start
  EXPECT_DOUBLE_EQ(histogram.quantile_us(1.0), 4294967296.0);  // 2^32 µs
}

TEST(LatencyHistogramTest, ResetClearsSamples) {
  LatencyHistogram histogram;
  histogram.record(100e-6);
  histogram.reset();
  EXPECT_EQ(histogram.total_count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.quantile_us(0.5), 0.0);
}

TEST(ServingMetricsTest, SnapshotAggregatesCounters) {
  ServingMetrics metrics;
  metrics.record_accept();
  metrics.record_accept();
  metrics.record_reject();
  metrics.record_batch(2);
  metrics.record_latency(50e-6);
  metrics.record_latency(100e-6);
  metrics.record_reload();
  const auto stats = metrics.snapshot();
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_batch_size, 2.0);
  EXPECT_GT(stats.throughput_rps, 0.0);
  EXPECT_GT(stats.p99_us, 0.0);
  EXPECT_NE(stats.summary().find("served 2 req"), std::string::npos);
}

TEST(ServingMetricsTest, ResetStartsAFreshWindow) {
  ServingMetrics metrics;
  metrics.record_accept();
  metrics.record_reject();
  metrics.record_batch(4);
  metrics.record_latency(50e-6);
  metrics.record_reload();
  metrics.reset();

  const auto zeroed = metrics.snapshot();
  EXPECT_EQ(zeroed.accepted, 0u);
  EXPECT_EQ(zeroed.rejected, 0u);
  EXPECT_EQ(zeroed.completed, 0u);
  EXPECT_EQ(zeroed.batches, 0u);
  EXPECT_EQ(zeroed.reloads, 0u);
  EXPECT_DOUBLE_EQ(zeroed.p99_us, 0.0);
  EXPECT_DOUBLE_EQ(zeroed.throughput_rps, 0.0);

  // Events after the reset land in the new window: counts, the latency
  // histogram and the wall clock all restart together.
  metrics.record_accept();
  metrics.record_batch(1);
  metrics.record_latency(50e-6);
  const auto fresh = metrics.snapshot();
  EXPECT_EQ(fresh.accepted, 1u);
  EXPECT_EQ(fresh.completed, 1u);
  EXPECT_EQ(fresh.batches, 1u);
  EXPECT_GT(fresh.p99_us, 0.0);
  EXPECT_GE(fresh.wall_seconds, 0.0);
}

TEST(ModelRegistryTest, StartsEmptyAndVersionsPublishes) {
  ModelRegistry registry;
  EXPECT_EQ(registry.current(), nullptr);
  EXPECT_EQ(registry.version(), 0u);
  EXPECT_EQ(registry.publish(primal_model({1.0F})), 1u);
  EXPECT_EQ(registry.publish(primal_model({2.0F})), 2u);
  EXPECT_EQ(registry.version(), 2u);
  EXPECT_EQ(registry.current()->beta[0], 2.0F);
}

TEST(ModelRegistryTest, OldSnapshotSurvivesPublish) {
  ModelRegistry registry;
  registry.publish(primal_model({1.0F}));
  const auto v1 = registry.current();
  registry.publish(primal_model({2.0F}));
  EXPECT_EQ(v1->beta[0], 1.0F);  // in-flight batch keeps scoring v1
  EXPECT_EQ(registry.current()->beta[0], 2.0F);
}

TEST(ModelRegistryTest, BadFileLeavesLiveModelUntouched) {
  ModelRegistry registry;
  registry.publish(primal_model({1.0F}));
  const auto path =
      (std::filesystem::temp_directory_path() / "tpa_serve_bad.tpam").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "TPAMgarbage-that-is-not-a-model";
  }
  EXPECT_THROW(registry.publish_file(path), std::runtime_error);
  EXPECT_EQ(registry.version(), 1u);
  EXPECT_EQ(registry.current()->beta[0], 1.0F);
  std::filesystem::remove(path);
}

TEST(ModelRegistryTest, PublishFileRoundTrips) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tpa_serve_ok.tpam").string();
  core::write_model_file(path, primal_model({3.0F, -1.0F}));
  ModelRegistry registry;
  EXPECT_EQ(registry.publish_file(path), 1u);
  EXPECT_EQ(registry.current()->beta,
            (std::vector<float>{3.0F, -1.0F}));
  std::filesystem::remove(path);
}

// --- Reload retry ----------------------------------------------------------

TEST(ServerTest, ReloadRetriesRideOutATornWrite) {
  // A trainer checkpointing with write-to-tmp + rename can race a reader:
  // the first open may see a truncated file.  reload() must retry after a
  // short backoff and pick up the completed model once the writer finishes.
  const auto path =
      (std::filesystem::temp_directory_path() / "tpa_serve_torn.tpam")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "TPAM-half-a-header";  // torn: magic but no valid payload
  }
  ServerConfig config;
  config.reload_retries = 5;
  config.reload_backoff_ms = 30;
  Server server(config);

  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    core::write_model_file(path, primal_model({4.0F, 2.0F}));
  });
  const auto version = server.reload(path);
  writer.join();

  EXPECT_EQ(version, 1u);
  ASSERT_NE(server.registry().current(), nullptr);
  EXPECT_EQ(server.registry().current()->beta,
            (std::vector<float>{4.0F, 2.0F}));
  std::filesystem::remove(path);
}

TEST(ServerTest, ReloadRethrowsAfterExhaustedRetriesAndKeepsOldModel) {
  const auto path =
      (std::filesystem::temp_directory_path() / "tpa_serve_dead.tpam")
          .string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "TPAMpermanently-broken";
  }
  ServerConfig config;
  config.reload_retries = 2;
  config.reload_backoff_ms = 1;
  Server server(config);
  server.publish(primal_model({1.0F}));

  // Every attempt fails: the last error surfaces, the v1 model stays live
  // and keeps serving.
  EXPECT_THROW(server.reload(path), std::runtime_error);
  EXPECT_EQ(server.registry().version(), 1u);
  EXPECT_EQ(server.registry().current()->beta[0], 1.0F);
  std::filesystem::remove(path);
}

TEST(ServerTest, ReloadWithZeroRetriesFailsFast) {
  ServerConfig config;
  config.reload_retries = 0;
  Server server(config);
  EXPECT_THROW(server.reload("/no/such/model.tpam"), std::runtime_error);
  EXPECT_EQ(server.registry().version(), 0u);
}

// --- Batcher edge cases ----------------------------------------------------

/// Executor that scores nothing: fulfils each promise with the batch's size
/// so tests can observe coalescing.
RequestBatcher::BatchFn count_executor(std::atomic<int>* batches) {
  return [batches](std::vector<Request>& batch) {
    if (batches != nullptr) batches->fetch_add(1);
    for (auto& request : batch) {
      request.result.set_value(static_cast<float>(batch.size()));
    }
  };
}

TEST(RequestBatcherTest, DrainWithNoRequestsReturnsImmediately) {
  util::ThreadPool pool(2);
  RequestBatcher batcher({}, pool, count_executor(nullptr));
  batcher.drain();  // must not hang; no batch may be formed
  EXPECT_EQ(batcher.queued(), 0u);
}

TEST(RequestBatcherTest, SingleRequestFlushesOnTimeout) {
  util::ThreadPool pool(2);
  BatcherConfig config;
  config.max_batch_size = 64;
  config.max_wait = std::chrono::microseconds(100);
  RequestBatcher batcher(config, pool, count_executor(nullptr));
  const auto matrix = two_row_matrix();
  auto result = batcher.submit(matrix.row(0));
  ASSERT_TRUE(result.accepted());
  // The batch must flush after max_wait even though it never fills.
  EXPECT_EQ(result.prediction.get(), 1.0F);
}

TEST(RequestBatcherTest, CoalescesBackloggedRequestsIntoBatches) {
  util::ThreadPool pool(2);
  BatcherConfig config;
  config.max_batch_size = 16;
  config.max_wait = std::chrono::milliseconds(5);
  std::atomic<int> batches{0};
  RequestBatcher batcher(config, pool, count_executor(&batches));
  const auto matrix = two_row_matrix();
  std::vector<std::future<float>> results;
  for (int i = 0; i < 256; ++i) {
    auto result = batcher.submit(matrix.row(i % 2));
    ASSERT_TRUE(result.accepted());
    results.push_back(std::move(result.prediction));
  }
  double mean_batch = 0.0;
  for (auto& r : results) mean_batch += r.get();
  mean_batch /= 256.0;
  // 256 requests submitted faster than the 5 ms window must coalesce: far
  // fewer batches than requests, batches no larger than the cap.
  EXPECT_LE(batches.load(), 64);
  EXPECT_GT(mean_batch, 1.0);
  EXPECT_LE(mean_batch, 16.0);
}

TEST(RequestBatcherTest, ShedsLoadWhenQueueFull) {
  util::ThreadPool pool(1);
  BatcherConfig config;
  config.max_batch_size = 1;
  config.queue_capacity = 2;
  config.max_inflight_batches = 1;
  config.max_wait = std::chrono::microseconds(1);

  std::atomic<bool> started{false};
  std::promise<void> gate;
  auto gate_opened = gate.get_future().share();
  RequestBatcher batcher(
      config, pool, [&](std::vector<Request>& batch) {
        started.store(true);
        gate_opened.wait();  // hold the only in-flight slot
        for (auto& request : batch) request.result.set_value(0.0F);
      });

  const auto matrix = two_row_matrix();
  auto first = batcher.submit(matrix.row(0));
  ASSERT_TRUE(first.accepted());
  while (!started.load()) std::this_thread::yield();

  // The in-flight batch blocks the dispatcher, so the queue backs up to
  // capacity and admission control starts shedding with a typed verdict.
  std::vector<std::future<float>> accepted;
  std::size_t rejected = 0;
  for (int i = 0; i < 16; ++i) {
    auto result = batcher.submit(matrix.row(0));
    if (result.accepted()) {
      accepted.push_back(std::move(result.prediction));
    } else {
      EXPECT_EQ(result.status, Admission::kQueueFull);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted.size(), 2u);
  EXPECT_EQ(rejected, 14u);

  gate.set_value();
  // Every accepted request must still resolve after the stall clears.
  EXPECT_NO_THROW(first.prediction.get());
  for (auto& result : accepted) EXPECT_NO_THROW(result.get());
}

TEST(RequestBatcherTest, DestructorDrainsAcceptedRequests) {
  util::ThreadPool pool(2);
  const auto matrix = two_row_matrix();
  std::vector<std::future<float>> results;
  {
    BatcherConfig config;
    config.max_batch_size = 8;
    config.max_wait = std::chrono::seconds(10);  // force the shutdown flush
    RequestBatcher batcher(config, pool, count_executor(nullptr));
    for (int i = 0; i < 5; ++i) {
      auto result = batcher.submit(matrix.row(0));
      ASSERT_TRUE(result.accepted());
      results.push_back(std::move(result.prediction));
    }
  }
  for (auto& result : results) EXPECT_NO_THROW(result.get());
}

TEST(RequestBatcherTest, AdmissionVerdictsHaveNames) {
  EXPECT_STREQ(admission_name(Admission::kShutdown), "shutdown");
  EXPECT_STREQ(admission_name(Admission::kQueueFull), "queue-full");
  EXPECT_STREQ(admission_name(Admission::kNoModel), "no-model");
  EXPECT_STREQ(admission_name(Admission::kAccepted), "accepted");
}

TEST(RequestBatcherTest, ReloadDuringInFlightBatchKeepsSnapshot) {
  // A batch that is already executing keeps the model it snapshotted even if
  // a publish lands mid-execution; nothing is dropped.
  ModelRegistry registry;
  registry.publish(primal_model({1.0F, 1.0F, 1.0F, 1.0F, 1.0F, 1.0F, 1.0F,
                                 1.0F}));
  util::ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::promise<void> gate;
  auto gate_opened = gate.get_future().share();
  BatcherConfig config;
  config.max_batch_size = 4;
  config.max_wait = std::chrono::microseconds(50);
  RequestBatcher batcher(config, pool, [&](std::vector<Request>& batch) {
    const auto model = registry.current();  // snapshot at execution start
    started.store(true);
    gate_opened.wait();  // reload happens here, mid-batch
    for (auto& request : batch) {
      request.result.set_value(
          static_cast<float>(score_row(request.row, model->beta)));
    }
  });

  const auto matrix = two_row_matrix();  // row 0 sums to 2 with all-ones beta
  auto in_flight = batcher.submit(matrix.row(0));
  ASSERT_TRUE(in_flight.accepted());
  while (!started.load()) std::this_thread::yield();

  registry.publish(primal_model(std::vector<float>(8, 10.0F)));
  gate.set_value();
  // The in-flight batch scored on v1 (all ones), not v2 (all tens).
  EXPECT_FLOAT_EQ(in_flight.prediction.get(), 2.0F);

  // A batch formed after the publish sees v2.
  auto after = batcher.submit(matrix.row(0));
  ASSERT_TRUE(after.accepted());
  EXPECT_FLOAT_EQ(after.prediction.get(), 20.0F);
}

// --- Server end-to-end -----------------------------------------------------

TEST(ServerTest, RejectsBeforeFirstPublish) {
  Server server;
  const auto matrix = two_row_matrix();
  const auto result = server.submit(matrix.row(0));
  EXPECT_EQ(result.status, Admission::kNoModel);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(ServerTest, ServesPredictionsMatchingDirectScoring) {
  data::WebspamLikeConfig config;
  config.num_examples = 200;
  config.num_features = 64;
  const auto dataset = data::make_webspam_like(config);
  std::vector<float> beta(64);
  for (std::size_t m = 0; m < beta.size(); ++m) {
    beta[m] = 0.1F * static_cast<float>(m % 7) - 0.2F;
  }

  ServerConfig server_config;
  server_config.threads = 2;
  server_config.batcher.max_batch_size = 16;
  server_config.batcher.max_wait = std::chrono::microseconds(100);
  Server server(server_config);
  EXPECT_EQ(server.publish(primal_model(beta)), 1u);

  const auto& matrix = dataset.by_row();
  std::vector<std::future<float>> predictions;
  for (Index r = 0; r < matrix.rows(); ++r) {
    auto result = server.submit(matrix.row(r));
    ASSERT_TRUE(result.accepted()) << admission_name(result.status);
    predictions.push_back(std::move(result.prediction));
  }
  server.drain();

  for (Index r = 0; r < matrix.rows(); ++r) {
    EXPECT_FLOAT_EQ(predictions[r].get(),
                    static_cast<float>(score_row(matrix.row(r), beta)));
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, 200u);
  EXPECT_EQ(stats.completed, 200u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.p50_us, 0.0);
}

TEST(ServerTest, HotReloadMidStreamSwapsPredictionsWithoutDrops) {
  const auto matrix = two_row_matrix();
  ServerConfig config;
  config.threads = 2;
  config.batcher.max_batch_size = 8;
  config.batcher.max_wait = std::chrono::microseconds(50);
  Server server(config);
  server.publish(primal_model(std::vector<float>(8, 0.0F)));  // v1: ŷ = 0

  const std::size_t half = 500;
  std::vector<std::future<float>> first_half;
  std::vector<std::future<float>> second_half;
  for (std::size_t i = 0; i < half; ++i) {
    auto result = server.submit(matrix.row(0));
    ASSERT_TRUE(result.accepted());
    first_half.push_back(std::move(result.prediction));
  }
  server.drain();  // every v1 request completes before the swap
  server.publish(primal_model(std::vector<float>(8, 1.0F)));  // v2: ŷ = 2
  for (std::size_t i = 0; i < half; ++i) {
    auto result = server.submit(matrix.row(0));
    ASSERT_TRUE(result.accepted());
    second_half.push_back(std::move(result.prediction));
  }
  server.drain();

  for (auto& prediction : first_half) {
    EXPECT_FLOAT_EQ(prediction.get(), 0.0F);
  }
  for (auto& prediction : second_half) {
    EXPECT_FLOAT_EQ(prediction.get(), 2.0F);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, 2 * half);
  EXPECT_EQ(stats.completed, 2 * half);  // nothing dropped across the reload
  EXPECT_EQ(stats.reloads, 2u);
}

}  // namespace
}  // namespace tpa::serve
