// TPA-SCD on the simulated GPU: convergence fidelity vs sequential SCD,
// device-memory enforcement, setup accounting, per-device timing.
#include <gtest/gtest.h>

#include "core/seq_scd.hpp"
#include "core/tpa_scd.hpp"
#include "data/generators.hpp"

namespace tpa::core {
namespace {

const data::Dataset& webspam_small() {
  static const data::Dataset dataset = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 4096;
    config.num_features = 8192;
    return data::make_webspam_like(config);
  }();
  return dataset;
}

TEST(TpaScd, NearSequentialConvergencePerEpoch) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  for (const auto f : {Formulation::kPrimal, Formulation::kDual}) {
    SeqScdSolver seq(problem, f, 3);
    TpaScdSolver tpa(problem, f, 3);
    for (int epoch = 0; epoch < 8; ++epoch) {
      seq.run_epoch();
      tpa.run_epoch();
    }
    const double seq_gap = seq.duality_gap(problem);
    const double tpa_gap = tpa.duality_gap(problem);
    EXPECT_LT(tpa_gap, seq_gap * 20.0) << formulation_name(f);
    EXPECT_GT(tpa_gap, 0.0);
  }
}

TEST(TpaScd, SharedVectorStaysConsistentWithWeights) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdSolver tpa(problem, Formulation::kDual, 3);
  for (int epoch = 0; epoch < 5; ++epoch) tpa.run_epoch();
  // Atomic adds mean no updates are lost: w̄ == Aᵀα up to float rounding.
  EXPECT_LT(tpa.state().shared_inconsistency(problem), 1e-3);
}

TEST(TpaScd, SetupChargesUploadTimeAndMemory) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdSolver tpa(problem, Formulation::kDual, 3);
  EXPECT_GT(tpa.setup_sim_seconds(), 0.0);
  EXPECT_GT(tpa.device_memory().allocated(), 0u);
  EXPECT_LE(tpa.device_memory().allocated(),
            tpa.device_memory().capacity());
}

TEST(TpaScd, RefusesDatasetLargerThanDeviceMemoryAtPaperScale) {
  data::CriteoLikeConfig config;
  config.num_examples = 256;
  config.num_fields = 4;
  config.buckets_per_field = 16;
  const auto criteo = data::make_criteo_like(config);  // 39 GB paper scale
  const RidgeProblem problem(criteo, 1e-3);
  TpaScdOptions options;
  options.device = gpusim::DeviceSpec::titan_x();  // 12 GB
  options.charge_paper_scale_memory = true;
  EXPECT_THROW(TpaScdSolver(problem, Formulation::kDual, 1, options),
               gpusim::OutOfDeviceMemory);
  // Without paper-scale charging, the scaled matrix fits comfortably.
  options.charge_paper_scale_memory = false;
  EXPECT_NO_THROW(TpaScdSolver(problem, Formulation::kDual, 1, options));
}

TEST(TpaScd, TitanXEpochIsFasterThanM4000) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdOptions m4000;
  m4000.device = gpusim::DeviceSpec::quadro_m4000();
  TpaScdSolver slow(problem, Formulation::kDual, 3, m4000);
  TpaScdSolver fast(problem, Formulation::kDual, 3);  // Titan X default
  const double t_m4000 = slow.run_epoch().sim_seconds;
  const double t_titan = fast.run_epoch().sim_seconds;
  EXPECT_LT(t_titan, t_m4000);
}

TEST(TpaScd, PaperScaleTimingIsUsedWhenAvailable) {
  // webspam_small carries PaperScale; its simulated epoch must reflect the
  // ~1e9-nnz full dataset, i.e. tens of milliseconds, not microseconds.
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdSolver tpa(problem, Formulation::kDual, 3);
  const double epoch_seconds = tpa.run_epoch().sim_seconds;
  EXPECT_GT(epoch_seconds, 0.01);
  EXPECT_LT(epoch_seconds, 1.0);
}

TEST(TpaScd, DeterministicForFixedSeed) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdSolver a(problem, Formulation::kPrimal, 11);
  TpaScdSolver b(problem, Formulation::kPrimal, 11);
  for (int epoch = 0; epoch < 3; ++epoch) {
    a.run_epoch();
    b.run_epoch();
  }
  EXPECT_EQ(a.state().weights, b.state().weights);
  EXPECT_EQ(a.state().shared, b.state().shared);
}

TEST(TpaScd, WindowOverrideControlsAsynchrony) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdOptions options;
  options.async_window_override = 1;  // fully sequential execution
  TpaScdSolver tpa(problem, Formulation::kDual, 3, options);
  SeqScdSolver seq(problem, Formulation::kDual, 3);
  for (int epoch = 0; epoch < 3; ++epoch) {
    tpa.run_epoch();
    seq.run_epoch();
  }
  // Same permutations and no staleness: only the intra-block float
  // reduction order differs from the scalar loop.
  EXPECT_NEAR(tpa.duality_gap(problem), seq.duality_gap(problem), 1e-5);
}

TEST(TpaScd, NameIdentifiesDevice) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  TpaScdOptions options;
  options.device = gpusim::DeviceSpec::quadro_m4000();
  TpaScdSolver solver(problem, Formulation::kDual, 1, options);
  EXPECT_NE(solver.name().find("M4000"), std::string::npos);
}

}  // namespace
}  // namespace tpa::core
