// Dataset invariants: CSR/CSC views agree, cached norms are exact, paper
// scale metadata flows through.
#include <gtest/gtest.h>

#include "data/dataset.hpp"
#include "sparse/convert.hpp"

namespace tpa::data {
namespace {

Dataset small_dataset() {
  sparse::CsrMatrix matrix(3, 3, {0, 2, 2, 4}, {0, 2, 1, 2},
                           {1.0F, 2.0F, 3.0F, 4.0F});
  return Dataset("tiny", std::move(matrix), {1.0F, 0.0F, -1.0F});
}

TEST(Dataset, DimensionsAndAccess) {
  const auto dataset = small_dataset();
  EXPECT_EQ(dataset.num_examples(), 3u);
  EXPECT_EQ(dataset.num_features(), 3u);
  EXPECT_EQ(dataset.nnz(), 4u);
  EXPECT_EQ(dataset.name(), "tiny");
  ASSERT_EQ(dataset.labels().size(), 3u);
  EXPECT_EQ(dataset.labels()[2], -1.0F);
}

TEST(Dataset, RowAndColumnViewsAgree) {
  const auto dataset = small_dataset();
  for (Index r = 0; r < dataset.num_examples(); ++r) {
    for (Index c = 0; c < dataset.num_features(); ++c) {
      EXPECT_EQ(dataset.by_row().at(r, c), dataset.by_col().at(r, c));
    }
  }
}

TEST(Dataset, CachedNormsMatchMatrices) {
  const auto dataset = small_dataset();
  const auto row_norms = dataset.by_row().row_squared_norms();
  const auto col_norms = dataset.by_col().col_squared_norms();
  for (Index r = 0; r < dataset.num_examples(); ++r) {
    EXPECT_DOUBLE_EQ(dataset.row_squared_norms()[r], row_norms[r]);
  }
  for (Index c = 0; c < dataset.num_features(); ++c) {
    EXPECT_DOUBLE_EQ(dataset.col_squared_norms()[c], col_norms[c]);
  }
}

TEST(Dataset, RejectsLabelCountMismatch) {
  sparse::CsrMatrix matrix(2, 2, {0, 0, 0}, {}, {});
  EXPECT_THROW(Dataset("bad", std::move(matrix), {1.0F}),
               std::invalid_argument);
}

TEST(Dataset, PaperScaleIsOptionalAndSettable) {
  auto dataset = small_dataset();
  EXPECT_FALSE(dataset.paper_scale().has_value());
  dataset.set_paper_scale(PaperScale{"webspam", 10, 20, 30});
  ASSERT_TRUE(dataset.paper_scale().has_value());
  EXPECT_EQ(dataset.paper_scale()->name, "webspam");
  EXPECT_EQ(dataset.paper_scale()->nnz, 30u);
}

TEST(Dataset, MemoryBytesIncludesLabels) {
  const auto dataset = small_dataset();
  EXPECT_EQ(dataset.memory_bytes(),
            dataset.by_row().memory_bytes() + 3 * sizeof(float));
}

}  // namespace
}  // namespace tpa::data
