// The distributed engine: consistency invariants, equivalence with the
// non-distributed solver at K=1, convergence across worker counts and
// aggregation modes, and the timing breakdown.
#include <gtest/gtest.h>

#include <tuple>

#include "cluster/dist_solver.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace tpa::cluster {
namespace {

using core::Formulation;

const data::Dataset& corpus() {
  static const data::Dataset dataset = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 512;
    config.num_features = 1024;
    return data::make_webspam_like(config);
  }();
  return dataset;
}

DistConfig base_config(Formulation f, int workers) {
  DistConfig config;
  config.formulation = f;
  config.num_workers = workers;
  config.local_solver.kind = core::SolverKind::kSequential;
  config.lambda = 1e-3;
  return config;
}

TEST(DistributedSolver, RejectsNonPositiveWorkers) {
  EXPECT_THROW(
      DistributedSolver(corpus(), base_config(Formulation::kDual, 0)),
      std::invalid_argument);
}

TEST(DistributedSolver, RejectsMoreWorkersThanCoordinates) {
  // Dual partitions examples (512 here), primal partitions features (1024):
  // a worker count above the partitionable dimension would leave workers
  // with no coordinates and must fail fast with a diagnostic.
  try {
    DistributedSolver(corpus(), base_config(Formulation::kDual, 513));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("examples"), std::string::npos);
  }
  // 513 workers over 1024 features is fine for the primal form...
  EXPECT_NO_THROW(
      DistributedSolver(corpus(), base_config(Formulation::kPrimal, 513)));
  // ...but 1025 is not.
  EXPECT_THROW(
      DistributedSolver(corpus(), base_config(Formulation::kPrimal, 1025)),
      std::invalid_argument);
}

TEST(DistributedSolver, RejectsNonPositiveLocalEpochs) {
  for (const int passes : {0, -3}) {
    auto config = base_config(Formulation::kDual, 2);
    config.local_epochs_per_round = passes;
    EXPECT_THROW(DistributedSolver(corpus(), config), std::invalid_argument)
        << passes;
  }
}

TEST(DistributedSolver, RejectsDegenerateFaultTuning) {
  // A grace multiplier <= 1 would declare every healthy worker a straggler.
  auto config = base_config(Formulation::kDual, 2);
  config.straggler_grace = 1.0;
  EXPECT_THROW(DistributedSolver(corpus(), config), std::invalid_argument);
  config.straggler_grace = 1.5;
  config.max_restarts = -1;
  EXPECT_THROW(DistributedSolver(corpus(), config), std::invalid_argument);
}

TEST(DistributedSolver, SingleWorkerMatchesSequentialConvergence) {
  for (const auto f : {Formulation::kPrimal, Formulation::kDual}) {
    DistributedSolver dist(corpus(), base_config(f, 1));
    const core::RidgeProblem problem(corpus(), 1e-3);
    core::SeqScdSolver seq(problem, f, 12345);
    for (int epoch = 0; epoch < 8; ++epoch) {
      dist.run_epoch();
      seq.run_epoch();
    }
    // Different permutations, same algorithm: gaps agree within an order
    // of magnitude along the whole trajectory end point.
    const double dist_gap = dist.duality_gap();
    const double seq_gap = seq.duality_gap(problem);
    EXPECT_LT(dist_gap, seq_gap * 10 + 1e-12) << formulation_name(f);
    EXPECT_GT(dist_gap * 10, seq_gap) << formulation_name(f);
  }
}

class DistInvariantSweep
    : public ::testing::TestWithParam<
          std::tuple<Formulation, int, AggregationMode>> {};

TEST_P(DistInvariantSweep, GlobalSharedEqualsMatrixTimesWeights) {
  const auto [f, workers, mode] = GetParam();
  auto config = base_config(f, workers);
  config.aggregation = mode;
  DistributedSolver solver(corpus(), config);
  for (int epoch = 0; epoch < 4; ++epoch) solver.run_epoch();

  // The defining invariant of Algorithms 3/4: after aggregation the
  // master's shared vector equals A x (assembled weights) exactly (up to
  // float rounding) — workers rescale local weights by the same gamma.
  const auto weights = solver.global_weights();
  const auto& by_row = corpus().by_row();
  const auto expected =
      f == Formulation::kPrimal
          ? linalg::csr_matvec(by_row, weights)
          : linalg::csr_matvec_transposed(by_row, weights);
  EXPECT_LT(linalg::max_abs_diff(solver.global_shared(), expected), 2e-3);
}

TEST_P(DistInvariantSweep, GapDecreasesOverEpochs) {
  const auto [f, workers, mode] = GetParam();
  auto config = base_config(f, workers);
  config.aggregation = mode;
  DistributedSolver solver(corpus(), config);
  solver.run_epoch();
  const double early = solver.duality_gap();
  for (int epoch = 0; epoch < 10; ++epoch) solver.run_epoch();
  EXPECT_LT(solver.duality_gap(), early);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DistInvariantSweep,
    ::testing::Combine(::testing::Values(Formulation::kPrimal,
                                         Formulation::kDual),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(AggregationMode::kAveraging,
                                         AggregationMode::kAdaptive)),
    [](const auto& info) {
      return std::string(formulation_name(std::get<0>(info.param))) + "_K" +
             std::to_string(std::get<1>(info.param)) + "_" +
             aggregation_name(std::get<2>(info.param));
    });

// --- Compressed delta exchange ----------------------------------------------

TEST(DistributedSolver, CompressedDeltasTrackDenseAndHalveWireBytes) {
  for (const auto f : {Formulation::kPrimal, Formulation::kDual}) {
    auto dense_config = base_config(f, 4);
    auto compressed_config = dense_config;
    compressed_config.compress_deltas = true;
    DistributedSolver dense(corpus(), dense_config);
    DistributedSolver compressed(corpus(), compressed_config);
    for (int epoch = 0; epoch < 8; ++epoch) {
      dense.run_epoch();
      compressed.run_epoch();
    }
    // fp16-quantized deltas perturb each aggregation by at most the block
    // scale · 2^-11, so the trajectories stay within a small factor.
    EXPECT_LT(compressed.duality_gap(), dense.duality_gap() * 4 + 1e-12)
        << formulation_name(f);
    EXPECT_GT(compressed.duality_gap() * 4, dense.duality_gap())
        << formulation_name(f);
    // The uncompressed exchange charges the raw fp64 image; the codec must
    // deliver at least the 2x reduction the precision ablation gates on.
    EXPECT_EQ(dense.delta_bytes_on_wire(), dense.delta_bytes_dense());
    EXPECT_GT(compressed.delta_bytes_on_wire(), 0u);
    EXPECT_GE(compressed.delta_bytes_dense(),
              2 * compressed.delta_bytes_on_wire());
  }
}

TEST(DistributedSolver, SparsifiedDeltasStillConverge) {
  auto config = base_config(Formulation::kDual, 4);
  config.compress_deltas = true;
  config.delta_threshold = 1e-3;  // drop the numerically dead tail
  DistributedSolver solver(corpus(), config);
  solver.run_epoch();
  const double early = solver.duality_gap();
  for (int epoch = 0; epoch < 10; ++epoch) solver.run_epoch();
  EXPECT_LT(solver.duality_gap(), early);
}

TEST(DistributedSolver, RejectsNegativeDeltaThreshold) {
  auto config = base_config(Formulation::kDual, 2);
  config.compress_deltas = true;
  config.delta_threshold = -0.5;
  EXPECT_THROW(DistributedSolver(corpus(), config), std::invalid_argument);
}

TEST(DistributedSolver, LocalEpochsPerRoundMultiplyWork) {
  auto config = base_config(Formulation::kDual, 2);
  config.local_epochs_per_round = 3;
  DistributedSolver solver(corpus(), config);
  const auto report = solver.run_epoch();
  // One communication round performs H local passes over every coordinate.
  EXPECT_EQ(report.coordinate_updates, corpus().num_examples());
  auto single = base_config(Formulation::kDual, 2);
  DistributedSolver baseline(corpus(), single);
  const auto base_report = baseline.run_epoch();
  EXPECT_NEAR(report.sim_seconds / base_report.sim_seconds, 3.0, 1.0)
      << "local compute should roughly triple per round";
  // And the round still leaves the global invariant intact.
  const auto weights = solver.global_weights();
  const auto expected =
      linalg::csr_matvec_transposed(corpus().by_row(), weights);
  EXPECT_LT(linalg::max_abs_diff(solver.global_shared(), expected), 2e-3);
}

TEST(DistributedSolver, FixedGammaIsHonoured) {
  auto config = base_config(Formulation::kDual, 4);
  config.aggregation = AggregationMode::kFixed;
  config.fixed_gamma = 0.125;
  DistributedSolver solver(corpus(), config);
  solver.run_epoch();
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 0.125);
}

TEST(DistributedSolver, AveragingUsesOneOverK) {
  auto config = base_config(Formulation::kDual, 4);
  DistributedSolver solver(corpus(), config);
  solver.run_epoch();
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 0.25);
}

TEST(DistributedSolver, AdaptiveGammaExceedsAveragingLate) {
  auto config = base_config(Formulation::kDual, 8);
  config.aggregation = AggregationMode::kAdaptive;
  DistributedSolver solver(corpus(), config);
  double late_gamma = 0.0;
  for (int epoch = 0; epoch < 12; ++epoch) {
    solver.run_epoch();
    late_gamma = solver.last_gamma();
  }
  EXPECT_GT(late_gamma, 1.0 / 8.0);  // paper Fig. 5's headline observation
}

TEST(DistributedSolver, AdaptiveBeatsAveragingInObjectivePerEpoch) {
  // Run both modes in lockstep; adaptive's exact line search can only
  // improve the objective over the fixed 1/K step for the same local work.
  const core::RidgeProblem problem(corpus(), 1e-3);
  auto avg_config = base_config(Formulation::kPrimal, 8);
  auto ada_config = avg_config;
  ada_config.aggregation = AggregationMode::kAdaptive;
  DistributedSolver averaging(corpus(), avg_config);
  DistributedSolver adaptive(corpus(), ada_config);
  for (int epoch = 0; epoch < 10; ++epoch) {
    averaging.run_epoch();
    adaptive.run_epoch();
  }
  EXPECT_LT(adaptive.duality_gap(), averaging.duality_gap() * 1.5);
}

TEST(DistributedSolver, BreakdownAccountsComponents) {
  auto config = base_config(Formulation::kDual, 4);
  config.local_solver.kind = core::SolverKind::kTpaM4000;
  DistributedSolver solver(corpus(), config);
  solver.run_epoch();
  const auto& breakdown = solver.last_breakdown();
  EXPECT_GT(breakdown.compute_solver, 0.0);
  EXPECT_GT(breakdown.compute_host, 0.0);
  EXPECT_GT(breakdown.pcie, 0.0);       // GPU local solver moves the vector
  EXPECT_GT(breakdown.network, 0.0);    // K > 1 communicates
  EXPECT_NEAR(breakdown.total(),
              breakdown.compute_solver + breakdown.compute_host +
                  breakdown.pcie + breakdown.network,
              1e-15);
}

TEST(DistributedSolver, NoNetworkOrPcieForLoneCpuWorker) {
  auto config = base_config(Formulation::kDual, 1);
  DistributedSolver solver(corpus(), config);
  solver.run_epoch();
  EXPECT_EQ(solver.last_breakdown().network, 0.0);
  EXPECT_EQ(solver.last_breakdown().pcie, 0.0);
}

TEST(DistributedSolver, GpuWorkersChargeSetupUpload) {
  auto cpu_config = base_config(Formulation::kDual, 2);
  DistributedSolver cpu(corpus(), cpu_config);
  EXPECT_EQ(cpu.setup_sim_seconds(), 0.0);
  auto gpu_config = cpu_config;
  gpu_config.local_solver.kind = core::SolverKind::kTpaTitanX;
  DistributedSolver gpu(corpus(), gpu_config);
  EXPECT_GT(gpu.setup_sim_seconds(), 0.0);
}

TEST(DistributedSolver, MoreWorkersMeansFasterEpochs) {
  // Per-epoch compute shrinks ~1/K (each worker holds 1/K of the data).
  auto config1 = base_config(Formulation::kDual, 1);
  auto config8 = base_config(Formulation::kDual, 8);
  DistributedSolver one(corpus(), config1);
  DistributedSolver eight(corpus(), config8);
  const double t1 = one.run_epoch().sim_seconds;
  const double t8 = eight.run_epoch().sim_seconds;
  EXPECT_LT(t8, t1 / 2.0);
}

TEST(RunDistributed, RecordsGammaAndStopsOnTarget) {
  auto config = base_config(Formulation::kDual, 2);
  config.aggregation = AggregationMode::kAdaptive;
  DistributedSolver solver(corpus(), config);
  core::RunOptions options;
  options.max_epochs = 100;
  options.target_gap = 1e-4;
  const auto trace = run_distributed(solver, options);
  EXPECT_LE(trace.final_gap(), 1e-4);
  EXPECT_LT(trace.points().back().epoch, 100);
  for (const auto& point : trace.points()) {
    EXPECT_NE(point.gamma, 0.0);
  }
}

}  // namespace
}  // namespace tpa::cluster
