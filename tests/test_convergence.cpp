#include "core/convergence.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <sstream>
#include <string>

#include "core/metrics.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"
#include "obs/json.hpp"

namespace tpa::core {
namespace {

ConvergenceTrace synthetic_trace() {
  ConvergenceTrace trace;
  trace.add({1, 1e-1, 1.0, 0.1, 0.5});
  trace.add({2, 1e-3, 2.0, 0.2, 0.6});
  trace.add({3, 1e-5, 3.0, 0.3, 0.7});
  return trace;
}

TEST(ConvergenceTrace, QueriesFindFirstCrossing) {
  const auto trace = synthetic_trace();
  EXPECT_EQ(trace.final_gap(), 1e-5);
  ASSERT_TRUE(trace.sim_time_to_gap(1e-2).has_value());
  EXPECT_EQ(*trace.sim_time_to_gap(1e-2), 2.0);
  EXPECT_EQ(*trace.sim_time_to_gap(1e-3), 2.0);
  EXPECT_EQ(*trace.epochs_to_gap(1e-5), 3);
  EXPECT_FALSE(trace.sim_time_to_gap(1e-9).has_value());
  EXPECT_FALSE(trace.epochs_to_gap(0.0).has_value());
}

TEST(ConvergenceTrace, EmptyTrace) {
  const ConvergenceTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.final_gap(), 0.0);
  EXPECT_FALSE(trace.sim_time_to_gap(1.0).has_value());
}

TEST(ConvergenceTrace, WriteCsvEmitsHeaderAndRows) {
  auto trace = synthetic_trace();
  trace.add_event({2, 1, ClusterEventKind::kCrash});  // CSV omits events
  std::ostringstream out;
  trace.write_csv(out);
  const auto csv = out.str();
  EXPECT_NE(csv.find("epoch,gap,sim_seconds,wall_seconds,gamma,contributors\n"),
            std::string::npos);
  const std::string row1 = "1," + obs::json_number(1e-1) + ",1," +
                           obs::json_number(0.1) + ",0.5,0\n";
  const std::string row3 = "3," + obs::json_number(1e-5) + ",3," +
                           obs::json_number(0.3) + "," + obs::json_number(0.7) +
                           ",0\n";
  EXPECT_NE(csv.find(row1), std::string::npos);
  EXPECT_NE(csv.find(row3), std::string::npos);
  EXPECT_EQ(csv.find("crash"), std::string::npos);
}

TEST(ConvergenceTrace, WriteJsonlEmitsPointsThenEvents) {
  auto trace = synthetic_trace();
  trace.add_event({2, 1, ClusterEventKind::kCrash});
  trace.add_event({4, -1, ClusterEventKind::kCheckpoint});
  std::ostringstream out;
  trace.write_jsonl(out);
  const auto jsonl = out.str();
  const std::string point1 =
      "{\"type\": \"point\", \"epoch\": 1, \"gap\": " + obs::json_number(1e-1) +
      ", \"sim_seconds\": 1, \"wall_seconds\": " + obs::json_number(0.1) +
      ", \"gamma\": 0.5, \"contributors\": 0}";
  EXPECT_NE(jsonl.find(point1), std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\": \"event\", \"epoch\": 2, \"worker\": 1, "
                       "\"kind\": \"crash\"}"),
            std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\": \"event\", \"epoch\": 4, \"worker\": -1, "
                       "\"kind\": \"checkpoint\"}"),
            std::string::npos);
  // Every point line precedes every event line.
  EXPECT_LT(jsonl.rfind("\"type\": \"point\""),
            jsonl.find("\"type\": \"event\""));
}

TEST(ClusterEvents, EveryKindHasAName) {
  for (std::size_t i = 0; i < kClusterEventKindCount; ++i) {
    const auto kind = static_cast<ClusterEventKind>(i);
    const char* name = cluster_event_name(kind);
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "") << "kind " << i;
    EXPECT_STRNE(name, "?") << "kind " << i;
  }
}

data::Dataset dataset() {
  data::DenseGaussianConfig config;
  config.num_examples = 40;
  config.num_features = 16;
  return data::make_dense_gaussian(config);
}

TEST(RunSolver, RecordsAtTheRequestedCadence) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.05);
  SeqScdSolver solver(problem, Formulation::kPrimal, 1);
  RunOptions options;
  options.max_epochs = 10;
  options.record_interval = 3;
  const auto trace = run_solver(solver, problem, options);
  // Records at epochs 3, 6, 9 and the forced final record at 10.
  ASSERT_EQ(trace.points().size(), 4u);
  EXPECT_EQ(trace.points()[0].epoch, 3);
  EXPECT_EQ(trace.points()[3].epoch, 10);
}

TEST(RunSolver, StopsEarlyOnTargetGap) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.05);
  SeqScdSolver solver(problem, Formulation::kPrimal, 1);
  RunOptions options;
  options.max_epochs = 500;
  options.target_gap = 1e-4;
  const auto trace = run_solver(solver, problem, options);
  EXPECT_LE(trace.final_gap(), 1e-4);
  EXPECT_LT(trace.points().back().epoch, 500);
}

TEST(RunSolver, CumulativeTimesAreMonotone) {
  const auto data = dataset();
  const RidgeProblem problem(data, 0.05);
  SeqScdSolver solver(problem, Formulation::kDual, 1);
  RunOptions options;
  options.max_epochs = 6;
  const auto trace = run_solver(solver, problem, options);
  for (std::size_t i = 1; i < trace.points().size(); ++i) {
    EXPECT_GT(trace.points()[i].sim_seconds,
              trace.points()[i - 1].sim_seconds);
    EXPECT_GE(trace.points()[i].wall_seconds,
              trace.points()[i - 1].wall_seconds);
  }
}

TEST(Metrics, RmseAndR2OnKnownValues) {
  const std::vector<float> predictions{1.0F, 2.0F, 3.0F};
  const std::vector<float> labels{1.0F, 2.0F, 5.0F};
  EXPECT_NEAR(rmse(predictions, labels), std::sqrt(4.0 / 3.0), 1e-9);
  // ss_res = 4; mean(y) = 8/3; ss_tot = (5/3)^2 + (2/3)^2 + (7/3)^2.
  const double ss_tot = (25.0 + 4.0 + 49.0) / 9.0;
  EXPECT_NEAR(r_squared(predictions, labels), 1.0 - 4.0 / ss_tot, 1e-9);
}

TEST(Metrics, PerfectPredictionScoresOne) {
  const std::vector<float> y{2.0F, -1.0F, 0.5F};
  EXPECT_EQ(rmse(y, y), 0.0);
  EXPECT_EQ(r_squared(y, y), 1.0);
  EXPECT_EQ(sign_accuracy(y, y), 1.0);
}

TEST(Metrics, SignAccuracyCountsMatches) {
  const std::vector<float> predictions{1.0F, -1.0F, 1.0F, -1.0F};
  const std::vector<float> labels{1.0F, 1.0F, 1.0F, -1.0F};
  EXPECT_DOUBLE_EQ(sign_accuracy(predictions, labels), 0.75);
}

TEST(Metrics, EmptyInputsAreZero) {
  EXPECT_EQ(rmse({}, {}), 0.0);
  EXPECT_EQ(r_squared({}, {}), 0.0);
  EXPECT_EQ(sign_accuracy({}, {}), 0.0);
}

TEST(Metrics, PredictUsesPrimalWeights) {
  const auto data = dataset();
  std::vector<float> beta(data.num_features(), 0.0F);
  beta[0] = 1.0F;
  const auto predictions = predict(data, beta);
  ASSERT_EQ(predictions.size(), data.num_examples());
  for (data::Index r = 0; r < data.num_examples(); ++r) {
    EXPECT_FLOAT_EQ(predictions[r], data.by_row().at(r, 0));
  }
}

}  // namespace
}  // namespace tpa::core
