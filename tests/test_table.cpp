#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace tpa::util {
namespace {

TEST(Table, PrintsHeaderSeparatorAndRows) {
  Table table({"a", "bb"});
  table.begin_row();
  table.add_integer(1);
  table.add_cell("x");
  std::ostringstream out;
  table.print(out);
  const auto text = out.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("bb"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
  EXPECT_NE(text.find("1"), std::string::npos);
  EXPECT_NE(text.find("x"), std::string::npos);
}

TEST(Table, ColumnsAreAligned) {
  Table table({"col", "v"});
  table.begin_row();
  table.add_cell("short");
  table.add_cell("1");
  table.begin_row();
  table.add_cell("much-longer-cell");
  table.add_cell("2");
  std::ostringstream out;
  table.print(out);
  std::istringstream lines(out.str());
  std::string header;
  std::string sep;
  std::string row1;
  std::string row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  // The second column starts at the same offset in both rows.
  EXPECT_EQ(row1.find(" 1"), row2.find(" 2"));
}

TEST(Table, CsvOutput) {
  Table table({"x", "y"});
  table.begin_row();
  table.add_integer(1);
  table.add_number(2.5);
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1,2.5\n");
}

TEST(Table, CsvPadsMissingCells) {
  Table table({"x", "y"});
  table.begin_row();
  table.add_integer(1);
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "x,y\n1,\n");
}

TEST(Table, FormatNumberChoosesNotation) {
  EXPECT_EQ(Table::format_number(0.0), "0");
  EXPECT_EQ(Table::format_number(1.0), "1");
  EXPECT_EQ(Table::format_number(1234.0), "1234");
  // Small magnitudes use scientific notation.
  EXPECT_NE(Table::format_number(1e-6).find("e"), std::string::npos);
  EXPECT_NE(Table::format_number(1e7).find("e"), std::string::npos);
  // Negative values keep their sign.
  EXPECT_EQ(Table::format_number(-2.5), "-2.5");
}

TEST(Table, CountsRowsAndColumns) {
  Table table({"a", "b", "c"});
  EXPECT_EQ(table.num_columns(), 3u);
  EXPECT_EQ(table.num_rows(), 0u);
  table.begin_row();
  EXPECT_EQ(table.num_rows(), 1u);
}

}  // namespace
}  // namespace tpa::util
