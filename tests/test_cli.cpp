#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace tpa::util {
namespace {

ArgParser make_parser() {
  ArgParser parser("tool", "test tool");
  parser.add_option("name", "a string option");
  parser.add_option("count", "an integer option", "3");
  parser.add_option("rate", "a float option");
  parser.add_flag("verbose", "a flag");
  return parser;
}

TEST(ArgParser, ParsesSpaceSeparatedValues) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--name", "alice", "--count", "7"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_string("name", ""), "alice");
  EXPECT_EQ(parser.get_int("count", 0), 7);
}

TEST(ArgParser, ParsesEqualsForm) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--name=bob", "--rate=2.5"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_string("name", ""), "bob");
  EXPECT_DOUBLE_EQ(parser.get_double("rate", 0.0), 2.5);
}

TEST(ArgParser, FlagsDefaultFalseAndSetTrue) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--verbose"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_bool("verbose"));

  auto parser2 = make_parser();
  const char* argv2[] = {"tool"};
  ASSERT_TRUE(parser2.parse(1, argv2));
  EXPECT_FALSE(parser2.get_bool("verbose"));
}

TEST(ArgParser, FallbacksApplyWhenAbsent) {
  auto parser = make_parser();
  const char* argv[] = {"tool"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_string("name", "default"), "default");
  EXPECT_EQ(parser.get_int("count", 42), 42);
  EXPECT_DOUBLE_EQ(parser.get_double("rate", 1.5), 1.5);
}

TEST(ArgParser, UnknownOptionFailsParse) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--bogus", "1"};
  EXPECT_FALSE(parser.parse(3, argv));
}

TEST(ArgParser, MissingValueFailsParse) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--name"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, HelpReturnsFalse) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--help"};
  EXPECT_FALSE(parser.parse(2, argv));
}

TEST(ArgParser, PositionalArgumentsCollected) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "input.txt", "--count", "2", "output.txt"};
  ASSERT_TRUE(parser.parse(5, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.txt");
  EXPECT_EQ(parser.positional()[1], "output.txt");
}

TEST(ArgParser, LastOccurrenceWins) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--count", "1", "--count", "9"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_int("count", 0), 9);
}

TEST(ArgParser, MalformedNumbersFallBack) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--count", "abc", "--rate", "xyz"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_int("count", 5), 5);
  EXPECT_DOUBLE_EQ(parser.get_double("rate", 0.25), 0.25);
}

TEST(ArgParser, HasReportsPresence) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--name", "x"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_TRUE(parser.has("name"));
  EXPECT_FALSE(parser.has("count"));
}

TEST(ArgParser, UsageMentionsOptionsAndDefaults) {
  const auto parser = make_parser();
  const auto text = parser.usage();
  EXPECT_NE(text.find("--name"), std::string::npos);
  EXPECT_NE(text.find("--verbose"), std::string::npos);
  EXPECT_NE(text.find("default: 3"), std::string::npos);
  EXPECT_NE(text.find("--help"), std::string::npos);
}

TEST(ArgParser, BoolParsingVariants) {
  auto parser = make_parser();
  const char* argv[] = {"tool", "--verbose=yes"};
  ASSERT_TRUE(parser.parse(2, argv));
  EXPECT_TRUE(parser.get_bool("verbose"));

  auto parser2 = make_parser();
  const char* argv2[] = {"tool", "--verbose=0"};
  ASSERT_TRUE(parser2.parse(2, argv2));
  EXPECT_FALSE(parser2.get_bool("verbose"));
}

}  // namespace
}  // namespace tpa::util
