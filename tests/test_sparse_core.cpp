// COO builder, CSR and CSC construction/validation/access.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sparse/bucketed.hpp"
#include "sparse/coo.hpp"
#include "sparse/convert.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace tpa::sparse {
namespace {

TEST(CooBuilder, TracksDimensionsAndEntries) {
  CooBuilder coo(3, 4);
  EXPECT_EQ(coo.rows(), 3u);
  EXPECT_EQ(coo.cols(), 4u);
  EXPECT_EQ(coo.nnz(), 0u);
  coo.add(0, 1, 2.0F);
  coo.add(2, 3, -1.0F);
  EXPECT_EQ(coo.nnz(), 2u);
}

TEST(CooBuilder, CoalesceSortsAndSumsDuplicates) {
  CooBuilder coo(2, 2);
  coo.add(1, 1, 1.0F);
  coo.add(0, 0, 2.0F);
  coo.add(1, 1, 3.0F);
  coo.coalesce();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 0, 2.0F}));
  EXPECT_EQ(coo.entries()[1], (Triplet{1, 1, 4.0F}));
}

TEST(CooBuilder, CoalesceDropsCancellations) {
  CooBuilder coo(1, 1);
  coo.add(0, 0, 1.0F);
  coo.add(0, 0, -1.0F);
  coo.coalesce();
  EXPECT_EQ(coo.nnz(), 0u);
}

TEST(CooBuilder, ClearKeepsDimensions) {
  CooBuilder coo(2, 3);
  coo.add(0, 0, 1.0F);
  coo.clear();
  EXPECT_EQ(coo.nnz(), 0u);
  EXPECT_EQ(coo.rows(), 2u);
}

CsrMatrix small_csr() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 0 3 4 ]
  return CsrMatrix(3, 3, {0, 2, 2, 4}, {0, 2, 1, 2},
                   {1.0F, 2.0F, 3.0F, 4.0F});
}

TEST(CsrMatrix, BasicAccessors) {
  const auto m = small_csr();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_EQ(m.row_nnz(1), 0u);
  EXPECT_EQ(m.row_nnz(2), 2u);
}

TEST(CsrMatrix, RowViews) {
  const auto m = small_csr();
  const auto row0 = m.row(0);
  ASSERT_EQ(row0.nnz(), 2u);
  EXPECT_EQ(row0.indices[0], 0u);
  EXPECT_EQ(row0.indices[1], 2u);
  EXPECT_EQ(row0.values[0], 1.0F);
  EXPECT_EQ(row0.values[1], 2.0F);
  EXPECT_EQ(m.row(1).nnz(), 0u);
}

TEST(CsrMatrix, PointLookup) {
  const auto m = small_csr();
  EXPECT_EQ(m.at(0, 0), 1.0F);
  EXPECT_EQ(m.at(0, 1), 0.0F);
  EXPECT_EQ(m.at(0, 2), 2.0F);
  EXPECT_EQ(m.at(1, 1), 0.0F);
  EXPECT_EQ(m.at(2, 2), 4.0F);
}

TEST(CsrMatrix, RowSquaredNorms) {
  const auto norms = small_csr().row_squared_norms();
  ASSERT_EQ(norms.size(), 3u);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 0.0);
  EXPECT_DOUBLE_EQ(norms[2], 25.0);
}

TEST(CsrMatrix, DefaultIsEmpty) {
  const CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(CsrMatrix, RejectsWrongOffsetCount) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0F}), std::invalid_argument);
}

TEST(CsrMatrix, RejectsIndexValueMismatch) {
  EXPECT_THROW(CsrMatrix(1, 2, {0, 2}, {0, 1}, {1.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsOffsetNnzMismatch) {
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {0, 1}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsDecreasingOffsets) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsColumnOutOfRange) {
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {2}, {1.0F}), std::invalid_argument);
}

TEST(CsrMatrix, RejectsUnsortedColumnsWithinRow) {
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {2, 0}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsDuplicateColumnsWithinRow) {
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {1, 1}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, MemoryBytesCountsAllArrays) {
  const auto m = small_csr();
  EXPECT_EQ(m.memory_bytes(),
            4 * sizeof(Offset) + 4 * sizeof(Index) + 4 * sizeof(Value));
}

CscMatrix small_csc() {
  // Same logical matrix as small_csr().
  return csr_to_csc(small_csr());
}

TEST(CscMatrix, BasicAccessors) {
  const auto m = small_csc();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.col_nnz(0), 1u);
  EXPECT_EQ(m.col_nnz(1), 1u);
  EXPECT_EQ(m.col_nnz(2), 2u);
}

TEST(CscMatrix, ColumnViewsAndLookup) {
  const auto m = small_csc();
  const auto col2 = m.col(2);
  ASSERT_EQ(col2.nnz(), 2u);
  EXPECT_EQ(col2.indices[0], 0u);
  EXPECT_EQ(col2.indices[1], 2u);
  EXPECT_EQ(col2.values[0], 2.0F);
  EXPECT_EQ(col2.values[1], 4.0F);
  EXPECT_EQ(m.at(2, 1), 3.0F);
  EXPECT_EQ(m.at(1, 1), 0.0F);
}

TEST(CscMatrix, ColSquaredNorms) {
  const auto norms = small_csc().col_squared_norms();
  ASSERT_EQ(norms.size(), 3u);
  EXPECT_DOUBLE_EQ(norms[0], 1.0);
  EXPECT_DOUBLE_EQ(norms[1], 9.0);
  EXPECT_DOUBLE_EQ(norms[2], 20.0);
}

TEST(CscMatrix, RejectsUnsortedRowsWithinColumn) {
  EXPECT_THROW(CscMatrix(3, 1, {0, 2}, {2, 0}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CscMatrix, RejectsRowOutOfRange) {
  EXPECT_THROW(CscMatrix(2, 1, {0, 1}, {5}, {1.0F}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Bucketed coordinate layout: padded/unpadded round trips against the source
// matrix, nnz-class invariants, and the 64-byte alignment of bucket starts.

CsrMatrix ragged_csr() {
  // Row nnz spans several classes: 0 (empty), 1..8 (class 8), 9..16
  // (class 16), and 17+ (class 32), so multiple buckets form.
  util::Rng rng(99);
  CooBuilder coo(40, 64);
  const std::size_t row_nnz[] = {0, 1, 3, 8, 9, 12, 16, 17, 25, 31};
  for (Index r = 0; r < 40; ++r) {
    const std::size_t nnz = row_nnz[r % 10];
    Index c = static_cast<Index>(r % 3);
    for (std::size_t k = 0; k < nnz; ++k) {
      coo.add(r, c, static_cast<float>(rng.normal()));
      c += 1 + static_cast<Index>(rng.uniform() * 2.0);
    }
  }
  return coo_to_csr(coo);
}

TEST(BucketedLayout, UnpaddedRoundTripsSourceRows) {
  const auto csr = ragged_csr();
  const auto layout = BucketedLayout::from_rows(csr);
  ASSERT_EQ(layout.count(), csr.rows());
  EXPECT_EQ(layout.dim(), csr.cols());
  for (Index r = 0; r < csr.rows(); ++r) {
    const auto source = csr.row(r);
    const auto view = layout.unpadded(r);
    ASSERT_EQ(view.nnz(), source.nnz()) << "row " << r;
    for (std::size_t k = 0; k < source.nnz(); ++k) {
      EXPECT_EQ(view.indices[k], source.indices[k]);
      EXPECT_EQ(view.values[k], source.values[k]);
    }
  }
}

TEST(BucketedLayout, PaddedViewsRepeatLastIndexWithZeroValue) {
  const auto csr = ragged_csr();
  const auto layout = BucketedLayout::from_rows(csr);
  std::size_t padded_total = 0;
  for (Index r = 0; r < csr.rows(); ++r) {
    const auto source = csr.row(r);
    const auto padded = layout.padded(r);
    EXPECT_EQ(layout.nnz_of(r), source.nnz());
    EXPECT_EQ(padded.nnz(), layout.width_of(r));
    padded_total += padded.nnz();
    if (source.nnz() == 0) {
      EXPECT_EQ(layout.width_of(r), 0u) << "empty rows stay empty";
      continue;
    }
    EXPECT_EQ(layout.width_of(r) % 8, 0u);
    EXPECT_GE(layout.width_of(r), source.nnz());
    EXPECT_LT(layout.width_of(r), source.nnz() + 8);
    for (std::size_t k = 0; k < padded.nnz(); ++k) {
      if (k < source.nnz()) {
        EXPECT_EQ(padded.indices[k], source.indices[k]);
        EXPECT_EQ(padded.values[k], source.values[k]);
      } else {
        EXPECT_EQ(padded.indices[k], source.indices[source.nnz() - 1]);
        EXPECT_EQ(padded.values[k], 0.0F);
      }
    }
  }
  EXPECT_EQ(layout.padded_nnz(), padded_total);
  EXPECT_GE(layout.padded_nnz(), csr.nnz());
}

TEST(BucketedLayout, BucketsPartitionCoordinatesByNnzClass) {
  const auto csr = ragged_csr();
  const auto layout = BucketedLayout::from_rows(csr);
  ASSERT_GE(layout.num_buckets(), 3);
  std::vector<bool> seen(static_cast<std::size_t>(layout.count()), false);
  std::size_t prev_class = 0;
  for (int b = 0; b < layout.num_buckets(); ++b) {
    const std::size_t cls = layout.bucket_class(b);
    EXPECT_GE(cls, 8u);
    EXPECT_EQ(cls & (cls - 1), 0u) << "classes are powers of two";
    EXPECT_GT(cls, prev_class) << "buckets ordered by ascending class";
    prev_class = cls;
    for (const Index j : layout.bucket_coords(b)) {
      EXPECT_FALSE(seen[j]) << "coordinate in two buckets";
      seen[j] = true;
      const std::size_t nnz = layout.nnz_of(j);
      EXPECT_LE(nnz, cls);
      EXPECT_TRUE(cls == 8 || nnz > cls / 2)
          << "row " << j << " nnz " << nnz << " in class " << cls;
    }
  }
  // Every coordinate lives in exactly one bucket (empty coordinates join
  // the minimum class with width 0, keeping the id space total).
  for (Index j = 0; j < layout.count(); ++j) {
    EXPECT_TRUE(seen[j]) << "row " << j;
  }
}

TEST(BucketedLayout, BucketStartsAre64ByteAligned) {
  const auto csr = ragged_csr();
  const auto layout = BucketedLayout::from_rows(csr);
  for (int b = 0; b < layout.num_buckets(); ++b) {
    const auto coords = layout.bucket_coords(b);
    ASSERT_FALSE(coords.empty());
    const auto first = layout.padded(coords.front());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(first.indices.data()) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(first.values.data()) % 64, 0u);
  }
}

TEST(BucketedLayout, FromColsMatchesCscColumns) {
  const auto csr = ragged_csr();
  const auto csc = csr_to_csc(csr);
  const auto layout = BucketedLayout::from_cols(csc);
  ASSERT_EQ(layout.count(), csc.cols());
  EXPECT_EQ(layout.dim(), csc.rows());
  for (Index c = 0; c < csc.cols(); ++c) {
    const auto source = csc.col(c);
    const auto view = layout.unpadded(c);
    ASSERT_EQ(view.nnz(), source.nnz()) << "col " << c;
    for (std::size_t k = 0; k < source.nnz(); ++k) {
      EXPECT_EQ(view.indices[k], source.indices[k]);
      EXPECT_EQ(view.values[k], source.values[k]);
    }
  }
}

}  // namespace
}  // namespace tpa::sparse
