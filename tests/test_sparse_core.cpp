// COO builder, CSR and CSC construction/validation/access.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sparse/coo.hpp"
#include "sparse/convert.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace tpa::sparse {
namespace {

TEST(CooBuilder, TracksDimensionsAndEntries) {
  CooBuilder coo(3, 4);
  EXPECT_EQ(coo.rows(), 3u);
  EXPECT_EQ(coo.cols(), 4u);
  EXPECT_EQ(coo.nnz(), 0u);
  coo.add(0, 1, 2.0F);
  coo.add(2, 3, -1.0F);
  EXPECT_EQ(coo.nnz(), 2u);
}

TEST(CooBuilder, CoalesceSortsAndSumsDuplicates) {
  CooBuilder coo(2, 2);
  coo.add(1, 1, 1.0F);
  coo.add(0, 0, 2.0F);
  coo.add(1, 1, 3.0F);
  coo.coalesce();
  ASSERT_EQ(coo.nnz(), 2u);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 0, 2.0F}));
  EXPECT_EQ(coo.entries()[1], (Triplet{1, 1, 4.0F}));
}

TEST(CooBuilder, CoalesceDropsCancellations) {
  CooBuilder coo(1, 1);
  coo.add(0, 0, 1.0F);
  coo.add(0, 0, -1.0F);
  coo.coalesce();
  EXPECT_EQ(coo.nnz(), 0u);
}

TEST(CooBuilder, ClearKeepsDimensions) {
  CooBuilder coo(2, 3);
  coo.add(0, 0, 1.0F);
  coo.clear();
  EXPECT_EQ(coo.nnz(), 0u);
  EXPECT_EQ(coo.rows(), 2u);
}

CsrMatrix small_csr() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 0 3 4 ]
  return CsrMatrix(3, 3, {0, 2, 2, 4}, {0, 2, 1, 2},
                   {1.0F, 2.0F, 3.0F, 4.0F});
}

TEST(CsrMatrix, BasicAccessors) {
  const auto m = small_csr();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.row_nnz(0), 2u);
  EXPECT_EQ(m.row_nnz(1), 0u);
  EXPECT_EQ(m.row_nnz(2), 2u);
}

TEST(CsrMatrix, RowViews) {
  const auto m = small_csr();
  const auto row0 = m.row(0);
  ASSERT_EQ(row0.nnz(), 2u);
  EXPECT_EQ(row0.indices[0], 0u);
  EXPECT_EQ(row0.indices[1], 2u);
  EXPECT_EQ(row0.values[0], 1.0F);
  EXPECT_EQ(row0.values[1], 2.0F);
  EXPECT_EQ(m.row(1).nnz(), 0u);
}

TEST(CsrMatrix, PointLookup) {
  const auto m = small_csr();
  EXPECT_EQ(m.at(0, 0), 1.0F);
  EXPECT_EQ(m.at(0, 1), 0.0F);
  EXPECT_EQ(m.at(0, 2), 2.0F);
  EXPECT_EQ(m.at(1, 1), 0.0F);
  EXPECT_EQ(m.at(2, 2), 4.0F);
}

TEST(CsrMatrix, RowSquaredNorms) {
  const auto norms = small_csr().row_squared_norms();
  ASSERT_EQ(norms.size(), 3u);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 0.0);
  EXPECT_DOUBLE_EQ(norms[2], 25.0);
}

TEST(CsrMatrix, DefaultIsEmpty) {
  const CsrMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(CsrMatrix, RejectsWrongOffsetCount) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0F}), std::invalid_argument);
}

TEST(CsrMatrix, RejectsIndexValueMismatch) {
  EXPECT_THROW(CsrMatrix(1, 2, {0, 2}, {0, 1}, {1.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsOffsetNnzMismatch) {
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {0, 1}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsDecreasingOffsets) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 2, 1}, {0, 1}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsColumnOutOfRange) {
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {2}, {1.0F}), std::invalid_argument);
}

TEST(CsrMatrix, RejectsUnsortedColumnsWithinRow) {
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {2, 0}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, RejectsDuplicateColumnsWithinRow) {
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {1, 1}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CsrMatrix, MemoryBytesCountsAllArrays) {
  const auto m = small_csr();
  EXPECT_EQ(m.memory_bytes(),
            4 * sizeof(Offset) + 4 * sizeof(Index) + 4 * sizeof(Value));
}

CscMatrix small_csc() {
  // Same logical matrix as small_csr().
  return csr_to_csc(small_csr());
}

TEST(CscMatrix, BasicAccessors) {
  const auto m = small_csc();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.nnz(), 4u);
  EXPECT_EQ(m.col_nnz(0), 1u);
  EXPECT_EQ(m.col_nnz(1), 1u);
  EXPECT_EQ(m.col_nnz(2), 2u);
}

TEST(CscMatrix, ColumnViewsAndLookup) {
  const auto m = small_csc();
  const auto col2 = m.col(2);
  ASSERT_EQ(col2.nnz(), 2u);
  EXPECT_EQ(col2.indices[0], 0u);
  EXPECT_EQ(col2.indices[1], 2u);
  EXPECT_EQ(col2.values[0], 2.0F);
  EXPECT_EQ(col2.values[1], 4.0F);
  EXPECT_EQ(m.at(2, 1), 3.0F);
  EXPECT_EQ(m.at(1, 1), 0.0F);
}

TEST(CscMatrix, ColSquaredNorms) {
  const auto norms = small_csc().col_squared_norms();
  ASSERT_EQ(norms.size(), 3u);
  EXPECT_DOUBLE_EQ(norms[0], 1.0);
  EXPECT_DOUBLE_EQ(norms[1], 9.0);
  EXPECT_DOUBLE_EQ(norms[2], 20.0);
}

TEST(CscMatrix, RejectsUnsortedRowsWithinColumn) {
  EXPECT_THROW(CscMatrix(3, 1, {0, 2}, {2, 0}, {1.0F, 2.0F}),
               std::invalid_argument);
}

TEST(CscMatrix, RejectsRowOutOfRange) {
  EXPECT_THROW(CscMatrix(2, 1, {0, 1}, {5}, {1.0F}), std::invalid_argument);
}

}  // namespace
}  // namespace tpa::sparse
