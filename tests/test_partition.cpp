// Data partitioning: coverage, balance, and shard construction for both
// distribution axes.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "cluster/partition.hpp"
#include "data/generators.hpp"

namespace tpa::cluster {
namespace {

data::Dataset corpus() {
  data::WebspamLikeConfig config;
  config.num_examples = 200;
  config.num_features = 80;
  config.avg_nnz_per_row = 10.0;
  return data::make_webspam_like(config);
}

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<data::Index, int>> {};

TEST_P(PartitionSweep, RandomPartitionCoversEveryCoordinateOnce) {
  const auto [n, workers] = GetParam();
  util::Rng rng(3);
  const auto partition = Partition::random(n, workers, rng);
  EXPECT_EQ(partition.num_workers(), workers);
  EXPECT_TRUE(partition.covers(n));
}

TEST_P(PartitionSweep, RandomPartitionIsBalanced) {
  const auto [n, workers] = GetParam();
  util::Rng rng(4);
  const auto partition = Partition::random(n, workers, rng);
  std::size_t min_size = n;
  std::size_t max_size = 0;
  for (const auto& owned : partition.owned) {
    min_size = std::min(min_size, owned.size());
    max_size = std::max(max_size, owned.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST_P(PartitionSweep, ContiguousPartitionCovers) {
  const auto [n, workers] = GetParam();
  const auto partition = Partition::contiguous(n, workers);
  EXPECT_TRUE(partition.covers(n));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Combine(::testing::Values<data::Index>(1u, 7u, 64u, 1000u),
                       ::testing::Values(1, 2, 3, 8)));

TEST(Partition, RejectsNonPositiveWorkers) {
  util::Rng rng(1);
  EXPECT_THROW(Partition::random(10, 0, rng), std::invalid_argument);
  EXPECT_THROW(Partition::contiguous(10, -1), std::invalid_argument);
}

TEST(Partition, CoversRejectsHolesAndDuplicates) {
  Partition holes;
  holes.owned = {{0, 1}, {3}};
  EXPECT_FALSE(holes.covers(4));
  Partition duplicates;
  duplicates.owned = {{0, 1}, {1, 2}};
  EXPECT_FALSE(duplicates.covers(3));
  Partition good;
  good.owned = {{0, 2}, {1}};
  EXPECT_TRUE(good.covers(3));
}

TEST(Partition, WeightedPartitionHonoursSizesAndCovers) {
  const std::vector<data::Index> sizes{5, 1, 10, 4};
  util::Rng rng(9);
  const auto partition = Partition::random_weighted(20, sizes, rng);
  ASSERT_EQ(partition.num_workers(), 4);
  EXPECT_EQ(partition.sizes(), sizes);   // round-trips the request
  EXPECT_TRUE(partition.covers(20));     // full coverage, no overlap
  // Owned lists are sorted like random()'s (shard builders rely on it).
  for (const auto& owned : partition.owned) {
    EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end()));
  }
}

TEST(Partition, WeightedPartitionWithUniformSizesMatchesRandom) {
  // The placement layer's bit-exactness guarantee: the weighted deal with
  // the uniform quota consumes the same single permutation draw and assigns
  // identically, so pre-placement runs reproduce bit-for-bit.
  for (const auto& [n, workers] :
       {std::pair<data::Index, int>{64, 8}, {7, 3}, {100, 7}, {9, 9}}) {
    std::vector<data::Index> uniform;
    for (int k = 0; k < workers; ++k) {
      uniform.push_back(n / workers + (k < static_cast<int>(n % workers)));
    }
    util::Rng rng_a(42);
    util::Rng rng_b(42);
    const auto legacy = Partition::random(n, workers, rng_a);
    const auto weighted = Partition::random_weighted(n, uniform, rng_b);
    EXPECT_EQ(legacy.owned, weighted.owned) << n << "/" << workers;
    // Both consumed the same amount of the stream.
    EXPECT_EQ(rng_a(), rng_b());
  }
}

TEST(Partition, WeightedPartitionRejectsBadSizes) {
  util::Rng rng(1);
  const std::vector<data::Index> empty;
  EXPECT_THROW(Partition::random_weighted(10, empty, rng),
               std::invalid_argument);
  const std::vector<data::Index> zero{5, 0, 5};
  EXPECT_THROW(Partition::random_weighted(10, zero, rng),
               std::invalid_argument);
  const std::vector<data::Index> short_sum{4, 4};
  EXPECT_THROW(Partition::random_weighted(10, short_sum, rng),
               std::invalid_argument);
  const std::vector<data::Index> long_sum{8, 8};
  EXPECT_THROW(Partition::random_weighted(10, long_sum, rng),
               std::invalid_argument);
  EXPECT_THROW(Partition::contiguous_sizes(10, zero), std::invalid_argument);
}

TEST(Partition, ContiguousSizesAreContiguousRanges) {
  const std::vector<data::Index> sizes{2, 7, 1};
  const auto partition = Partition::contiguous_sizes(10, sizes);
  EXPECT_TRUE(partition.covers(10));
  EXPECT_EQ(partition.sizes(), sizes);
  EXPECT_EQ(partition.owned[0], (std::vector<data::Index>{0, 1}));
  EXPECT_EQ(partition.owned[2], (std::vector<data::Index>{9}));
}

TEST(Shards, WeightedShardNnzSumsToGlobal) {
  const auto global = corpus();
  const std::vector<data::Index> sizes{150, 20, 30};
  util::Rng rng(8);
  const auto partition =
      Partition::random_weighted(global.num_examples(), sizes, rng);
  sparse::Offset total = 0;
  for (const auto& owned : partition.owned) {
    total += make_example_shard(global, owned).nnz();
  }
  EXPECT_EQ(total, global.nnz());
}

TEST(FeatureShard, KeepsAllRowsAndSelectedColumns) {
  const auto global = corpus();
  const std::vector<data::Index> cols{3, 10, 42};
  const auto shard = make_feature_shard(global, cols);
  EXPECT_EQ(shard.num_examples(), global.num_examples());
  EXPECT_EQ(shard.num_features(), 3u);
  // Local column j must equal global column cols[j].
  for (std::size_t j = 0; j < cols.size(); ++j) {
    const auto local = shard.by_col().col(static_cast<data::Index>(j));
    const auto original = global.by_col().col(cols[j]);
    ASSERT_EQ(local.nnz(), original.nnz());
    for (std::size_t k = 0; k < local.nnz(); ++k) {
      EXPECT_EQ(local.indices[k], original.indices[k]);
      EXPECT_EQ(local.values[k], original.values[k]);
    }
  }
  // Labels are replicated for the residual computation.
  ASSERT_EQ(shard.labels().size(), global.labels().size());
  EXPECT_EQ(shard.labels()[5], global.labels()[5]);
}

TEST(ExampleShard, KeepsSelectedRowsAndAllColumns) {
  const auto global = corpus();
  const std::vector<data::Index> rows{0, 99, 150};
  const auto shard = make_example_shard(global, rows);
  EXPECT_EQ(shard.num_examples(), 3u);
  EXPECT_EQ(shard.num_features(), global.num_features());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(shard.labels()[i], global.labels()[rows[i]]);
    const auto local = shard.by_row().row(static_cast<data::Index>(i));
    const auto original = global.by_row().row(rows[i]);
    ASSERT_EQ(local.nnz(), original.nnz());
    for (std::size_t k = 0; k < local.nnz(); ++k) {
      EXPECT_EQ(local.indices[k], original.indices[k]);
    }
  }
}

TEST(Shards, MakeShardDispatchesOnFormulation) {
  const auto global = corpus();
  const std::vector<data::Index> coords{1, 2};
  const auto primal = make_shard(global, core::Formulation::kPrimal, coords);
  EXPECT_EQ(primal.num_features(), 2u);
  EXPECT_EQ(primal.num_examples(), global.num_examples());
  const auto dual = make_shard(global, core::Formulation::kDual, coords);
  EXPECT_EQ(dual.num_examples(), 2u);
  EXPECT_EQ(dual.num_features(), global.num_features());
}

TEST(Shards, PaperScaleIsProportionallyInherited) {
  const auto global = corpus();  // carries webspam PaperScale
  util::Rng rng(5);
  const auto partition =
      Partition::random(global.num_examples(), 4, rng);
  const auto shard = make_example_shard(global, partition.owned[0]);
  ASSERT_TRUE(shard.paper_scale().has_value());
  const auto& global_scale = *global.paper_scale();
  const auto& shard_scale = *shard.paper_scale();
  // Examples scale by ~1/4; features stay global (shared vector dimension).
  EXPECT_NEAR(static_cast<double>(shard_scale.examples),
              global_scale.examples / 4.0, global_scale.examples * 0.02);
  EXPECT_EQ(shard_scale.features, global_scale.features);
  EXPECT_LT(shard_scale.nnz, global_scale.nnz / 3);
  EXPECT_GT(shard_scale.nnz, global_scale.nnz / 6);
}

TEST(Shards, ShardNnzSumsToGlobal) {
  const auto global = corpus();
  util::Rng rng(6);
  for (const auto f : {core::Formulation::kPrimal, core::Formulation::kDual}) {
    const auto n = f == core::Formulation::kPrimal ? global.num_features()
                                                   : global.num_examples();
    const auto partition = Partition::random(n, 3, rng);
    sparse::Offset total = 0;
    for (const auto& owned : partition.owned) {
      total += make_shard(global, f, owned).nnz();
    }
    EXPECT_EQ(total, global.nnz());
  }
}

}  // namespace
}  // namespace tpa::cluster
