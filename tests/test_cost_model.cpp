// CPU cost model and paper-scale timing workloads (DESIGN.md §5).
#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "data/generators.hpp"

namespace tpa::core {
namespace {

TEST(TimingWorkload, UsesActualDimensionsWithoutPaperScale) {
  data::DenseGaussianConfig config;
  config.num_examples = 32;
  config.num_features = 16;
  const auto dataset = data::make_dense_gaussian(config);
  const auto primal =
      TimingWorkload::for_dataset(dataset, Formulation::kPrimal);
  EXPECT_EQ(primal.nnz, dataset.nnz());
  EXPECT_EQ(primal.num_coordinates, 16u);
  EXPECT_EQ(primal.shared_dim, 32u);
  const auto dual = TimingWorkload::for_dataset(dataset, Formulation::kDual);
  EXPECT_EQ(dual.num_coordinates, 32u);
  EXPECT_EQ(dual.shared_dim, 16u);
}

TEST(TimingWorkload, UsesPaperScaleWhenPresent) {
  data::WebspamLikeConfig config;
  config.num_examples = 64;
  config.num_features = 32;
  const auto dataset = data::make_webspam_like(config);
  const auto w = TimingWorkload::for_dataset(dataset, Formulation::kDual);
  // The tiny generated matrix stands in for the full webspam corpus.
  EXPECT_EQ(w.num_coordinates, 262'938u);
  EXPECT_EQ(w.shared_dim, 680'715u);
  EXPECT_GT(w.nnz, 100'000'000u);
}

TEST(CpuCostModel, SequentialEpochIsLinearInNnz) {
  const CpuCostModel model;
  TimingWorkload small{1'000'000, 1000, 1000};
  TimingWorkload big{10'000'000, 1000, 1000};
  EXPECT_NEAR(model.epoch_seconds_sequential(big),
              10.0 * model.epoch_seconds_sequential(small), 1e-12);
}

TEST(CpuCostModel, LatencyWallWhenSharedVectorExceedsLlc) {
  const CpuCostModel model;
  TimingWorkload cached{1'000'000, 1000, 100'000};     // 400 KB: in LLC
  TimingWorkload uncached{1'000'000, 1000, 75'000'000};  // 300 MB: misses
  EXPECT_GT(model.epoch_seconds_sequential(uncached),
            4.0 * model.epoch_seconds_sequential(cached));
}

TEST(CpuCostModel, SpeedupInterpolation) {
  const CpuCostModel model;
  EXPECT_DOUBLE_EQ(model.atomic_speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(model.atomic_speedup(16), 2.0);
  EXPECT_DOUBLE_EQ(model.wild_speedup(16), 4.0);
  // Monotone in threads, flat beyond the Xeon's 16 hardware threads.
  EXPECT_GT(model.atomic_speedup(4), model.atomic_speedup(2));
  EXPECT_DOUBLE_EQ(model.atomic_speedup(64), model.atomic_speedup(16));
  // Wild is always at least as fast as atomic (no RMW serialisation).
  for (const int threads : {2, 4, 8, 16}) {
    EXPECT_GE(model.wild_speedup(threads), model.atomic_speedup(threads));
  }
}

}  // namespace
}  // namespace tpa::core
