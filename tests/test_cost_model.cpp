// CPU cost model and paper-scale timing workloads (DESIGN.md §5).
#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "data/generators.hpp"

namespace tpa::core {
namespace {

TEST(TimingWorkload, UsesActualDimensionsWithoutPaperScale) {
  data::DenseGaussianConfig config;
  config.num_examples = 32;
  config.num_features = 16;
  const auto dataset = data::make_dense_gaussian(config);
  const auto primal =
      TimingWorkload::for_dataset(dataset, Formulation::kPrimal);
  EXPECT_EQ(primal.nnz, dataset.nnz());
  EXPECT_EQ(primal.num_coordinates, 16u);
  EXPECT_EQ(primal.shared_dim, 32u);
  const auto dual = TimingWorkload::for_dataset(dataset, Formulation::kDual);
  EXPECT_EQ(dual.num_coordinates, 32u);
  EXPECT_EQ(dual.shared_dim, 16u);
}

TEST(TimingWorkload, UsesPaperScaleWhenPresent) {
  data::WebspamLikeConfig config;
  config.num_examples = 64;
  config.num_features = 32;
  const auto dataset = data::make_webspam_like(config);
  const auto w = TimingWorkload::for_dataset(dataset, Formulation::kDual);
  // The tiny generated matrix stands in for the full webspam corpus.
  EXPECT_EQ(w.num_coordinates, 262'938u);
  EXPECT_EQ(w.shared_dim, 680'715u);
  EXPECT_GT(w.nnz, 100'000'000u);
}

TEST(CpuCostModel, SequentialEpochIsLinearInNnz) {
  const CpuCostModel model;
  TimingWorkload small{1'000'000, 1000, 1000};
  TimingWorkload big{10'000'000, 1000, 1000};
  EXPECT_NEAR(model.epoch_seconds_sequential(big),
              10.0 * model.epoch_seconds_sequential(small), 1e-12);
}

TEST(CpuCostModel, LatencyWallWhenSharedVectorExceedsLlc) {
  const CpuCostModel model;
  TimingWorkload cached{1'000'000, 1000, 100'000};     // 400 KB: in LLC
  TimingWorkload uncached{1'000'000, 1000, 75'000'000};  // 300 MB: misses
  EXPECT_GT(model.epoch_seconds_sequential(uncached),
            4.0 * model.epoch_seconds_sequential(cached));
}

TEST(CpuCostModel, SpeedupInterpolation) {
  const CpuCostModel model;
  EXPECT_DOUBLE_EQ(model.atomic_speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(model.atomic_speedup(16), 2.0);
  EXPECT_DOUBLE_EQ(model.wild_speedup(16), 4.0);
  // Monotone in threads, flat beyond the Xeon's 16 hardware threads.
  EXPECT_GT(model.atomic_speedup(4), model.atomic_speedup(2));
  EXPECT_DOUBLE_EQ(model.atomic_speedup(64), model.atomic_speedup(16));
  // Wild is always at least as fast as atomic (no RMW serialisation).
  for (const int threads : {2, 4, 8, 16}) {
    EXPECT_GE(model.wild_speedup(threads), model.atomic_speedup(threads));
  }
}

TEST(CpuCostModel, ReplicatedSpeedupScalesNearLinearly) {
  const CpuCostModel model;
  EXPECT_DOUBLE_EQ(model.replicated_speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(model.replicated_speedup(16), 13.0);
  EXPECT_DOUBLE_EQ(model.replicated_speedup(64), model.replicated_speedup(16));
  // Plain stores into private replicas dominate both contended paths for
  // every nontrivial thread count.
  for (const int threads : {2, 4, 8, 16}) {
    EXPECT_GT(model.replicated_speedup(threads), model.wild_speedup(threads));
  }
  // Linear interpolation: halfway in threads is halfway in speed-up.
  const double mid = 1.0 + (13.0 - 1.0) * (8 - 1) / 15.0;
  EXPECT_DOUBLE_EQ(model.replicated_speedup(8), mid);
}

TEST(CpuCostModel, SpeedupInterpolationEdgeCases) {
  const CpuCostModel model;
  // One thread is exactly 1.0x on every ladder — no interpolation residue.
  EXPECT_DOUBLE_EQ(model.atomic_speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(model.wild_speedup(1), 1.0);
  EXPECT_DOUBLE_EQ(model.replicated_speedup(1), 1.0);
  // Non-positive thread counts read as a single thread, never a blow-up.
  EXPECT_DOUBLE_EQ(model.atomic_speedup(0), 1.0);
  EXPECT_DOUBLE_EQ(model.wild_speedup(-4), 1.0);
  EXPECT_DOUBLE_EQ(model.replicated_speedup(0), 1.0);
  // Beyond the measured 16 hardware threads the curve clamps — 17 prices
  // exactly like 16, never extrapolated past the calibration point.
  EXPECT_DOUBLE_EQ(model.atomic_speedup(17), model.atomic_speedup(16));
  EXPECT_DOUBLE_EQ(model.wild_speedup(17), model.wild_speedup(16));
  EXPECT_DOUBLE_EQ(model.replicated_speedup(17), model.replicated_speedup(16));
  EXPECT_DOUBLE_EQ(model.replicated_speedup(1 << 20),
                   model.replicated_speedup(16));
}

TEST(PoolDispatchModel, EffectiveThreadsIsCappedByHardware) {
  PoolDispatchModel model;
  model.hardware_threads = 4;
  EXPECT_EQ(model.effective_threads(1), 1);
  EXPECT_EQ(model.effective_threads(8), 4);
  EXPECT_EQ(model.effective_threads(0), 1);
}

TEST(PoolDispatchModel, SingleCoreHostNeverPools) {
  PoolDispatchModel model;
  model.hardware_threads = 1;
  // No entry count can justify a pool when the workers share one core.
  EXPECT_FALSE(model.use_pool(1u << 30, 8));
  EXPECT_EQ(model.dispatch_threads(1u << 30, 8), 1);
}

TEST(PoolDispatchModel, CrossoverGrowsFromDispatchOverhead) {
  PoolDispatchModel model;
  model.hardware_threads = 8;
  // Tiny pass: the wake/join round trip swamps any parallel win.
  EXPECT_FALSE(model.use_pool(100, 4));
  EXPECT_EQ(model.dispatch_threads(100, 4), 1);
  // Large pass: the saved serial time dwarfs the dispatch cost.
  EXPECT_TRUE(model.use_pool(100'000'000, 4));
  EXPECT_EQ(model.dispatch_threads(100'000'000, 4), 4);
  // One requested worker is always serial — nothing to parallelise.
  EXPECT_FALSE(model.use_pool(100'000'000, 1));
}

TEST(ReplicaMergeInterval, BalancesMergeCostAgainstUpdateTraffic) {
  // Dense-ish rows and a small shared vector: merges are cheap, the
  // interval stays small.
  const int tight = replica_merge_interval(1'000'000, 1'000, 256, 4);
  EXPECT_GE(tight, 1);
  // Same problem, vastly larger shared vector: each merge sweeps far more
  // entries, so the interval must stretch to amortise it.
  const int stretched = replica_merge_interval(1'000'000, 1'000, 1 << 20, 4);
  EXPECT_GT(stretched, tight);
  // The per-update atomic saving grows like (3t+2)/t of the plain-store
  // cost, so extra threads amortise each merge faster and the interval may
  // only shrink — never grow — with the thread count.
  EXPECT_LE(replica_merge_interval(1'000'000, 1'000, 1 << 20, 16),
            stretched);
  // Bounds hold even for degenerate inputs.
  EXPECT_GE(replica_merge_interval(0, 1, 1, 1), 1);
  EXPECT_LE(replica_merge_interval(1, 1'000'000, 1u << 31, 64), 1 << 20);
}

TEST(ReplicaSafeInterval, CapsConcurrentStalenessAtTheBudget) {
  // Budget is ~coords/64 invisible concurrent updates, split across the
  // t-1 other workers.
  EXPECT_EQ(replica_safe_interval(65'536, 2), 1024);
  EXPECT_EQ(replica_safe_interval(65'536, 5), 256);
  // More workers -> shorter safe interval, never below one update.
  EXPECT_GT(replica_safe_interval(65'536, 2), replica_safe_interval(65'536, 8));
  EXPECT_GE(replica_safe_interval(64, 64), 1);
  // A lone worker has no concurrent staleness: effectively unbounded.
  EXPECT_GE(replica_safe_interval(1'000, 1), 1 << 20);
}

TEST(ReplicaAutoInterval, TakesTheBindingConstraint) {
  // The auto interval is the tighter of the throughput-optimal and the
  // convergence-safe intervals, whichever binds.
  const std::uint64_t nnz = 1'000'000;
  for (const int t : {2, 4, 8, 16}) {
    const int cost = replica_merge_interval(nnz, 1'000, 1 << 20, t);
    const int safe = replica_safe_interval(1'000, t);
    EXPECT_EQ(replica_auto_interval(nnz, 1'000, 1 << 20, t),
              std::min(cost, safe));
  }
}

TEST(ReplicaDamping, UnityWithinBudgetThenScalesInversely) {
  // Inside the staleness budget the exact coordinate step is used verbatim.
  EXPECT_EQ(replica_damping(65'536, 4, 256), 1.0);
  // A single worker never sees concurrent staleness, at any interval.
  EXPECT_EQ(replica_damping(65'536, 1, 1 << 20), 1.0);
  // Past the budget, theta shrinks inversely with the concurrent staleness:
  // doubling the interval halves the step.
  const double theta = replica_damping(65'536, 4, 4096);
  EXPECT_LT(theta, 1.0);
  EXPECT_GT(theta, 0.0);
  EXPECT_NEAR(replica_damping(65'536, 4, 8192), theta / 2.0, 1e-12);
  // theta * concurrent_staleness == budget in the damped regime.
  EXPECT_NEAR(theta * 3.0 * 4096.0, 1024.0, 1e-9);
}

}  // namespace
}  // namespace tpa::core
