// binary16 conversion edge cases (subnormals, infinities, NaN payloads, RNE
// ties, overflow saturation) and the compressed delta codec: quantized
// round-trip accuracy, wire-size formulas, and the checksum catching bit
// flips injected into the encoded image in transit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "cluster/delta_codec.hpp"
#include "linalg/half.hpp"

namespace tpa::linalg {
namespace {

std::uint32_t float_bits(float x) {
  std::uint32_t bits = 0;
  static_assert(sizeof(bits) == sizeof(x));
  __builtin_memcpy(&bits, &x, sizeof(bits));
  return bits;
}

std::uint16_t narrow_bits(float x) { return float_to_half(x).bits; }

float widen_bits(std::uint16_t h) { return half_to_float(Half{h}); }

// --- Exact values -----------------------------------------------------------

TEST(Half, ExactValuesRoundTrip) {
  EXPECT_EQ(narrow_bits(0.0F), 0x0000U);
  EXPECT_EQ(narrow_bits(-0.0F), 0x8000U);  // sign of zero survives
  EXPECT_EQ(narrow_bits(1.0F), 0x3C00U);
  EXPECT_EQ(narrow_bits(-2.0F), 0xC000U);
  EXPECT_EQ(narrow_bits(0.5F), 0x3800U);
  EXPECT_EQ(narrow_bits(65504.0F), 0x7BFFU);     // largest finite half
  EXPECT_EQ(narrow_bits(0x1.0p-14F), 0x0400U);   // smallest normal half
  EXPECT_EQ(narrow_bits(0x1.0p-24F), 0x0001U);   // smallest subnormal half
  EXPECT_EQ(widen_bits(0x7BFFU), 65504.0F);
  EXPECT_EQ(widen_bits(0x0400U), 0x1.0p-14F);
  EXPECT_EQ(widen_bits(0x0001U), 0x1.0p-24F);
}

// --- Subnormals (gradual underflow) -----------------------------------------

TEST(Half, SubnormalsRoundCorrectly) {
  // Largest subnormal: 2^-14 − 2^-24 = 0x03FF.
  EXPECT_EQ(narrow_bits(0x1.0p-14F - 0x1.0p-24F), 0x03FFU);
  // 3 · 2^-24 is exactly three subnormal ulps.
  EXPECT_EQ(narrow_bits(3.0F * 0x1.0p-24F), 0x0003U);
  EXPECT_EQ(narrow_bits(-3.0F * 0x1.0p-24F), 0x8003U);
  // A float strictly between two subnormal halves rounds to the nearer one:
  // 1.75 · 2^-24 is closer to 2 ulps than 1.
  EXPECT_EQ(narrow_bits(1.75F * 0x1.0p-24F), 0x0002U);
  // Subnormal tie: 1.5 · 2^-24 is halfway between 1 and 2 ulps — RNE picks
  // the even mantissa (2 ulps).
  EXPECT_EQ(narrow_bits(1.5F * 0x1.0p-24F), 0x0002U);
  // 2.5 · 2^-24 ties between 2 and 3 ulps — even again (2 ulps).
  EXPECT_EQ(narrow_bits(2.5F * 0x1.0p-24F), 0x0002U);
}

TEST(Half, UnderflowToSignedZero) {
  // 2^-25 ties exactly between 0 and the smallest subnormal; even is 0.
  EXPECT_EQ(narrow_bits(0x1.0p-25F), 0x0000U);
  EXPECT_EQ(narrow_bits(-0x1.0p-25F), 0x8000U);
  EXPECT_EQ(narrow_bits(0x1.0p-26F), 0x0000U);
  // Anything strictly above the tie rounds up to one ulp.
  EXPECT_EQ(narrow_bits(std::nextafterf(0x1.0p-25F, 1.0F)), 0x0001U);
}

// --- Infinity and overflow saturation ---------------------------------------

TEST(Half, InfinityPropagates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(narrow_bits(inf), 0x7C00U);
  EXPECT_EQ(narrow_bits(-inf), 0xFC00U);
  EXPECT_TRUE(std::isinf(widen_bits(0x7C00U)));
  EXPECT_TRUE(std::isinf(widen_bits(0xFC00U)));
  EXPECT_LT(widen_bits(0xFC00U), 0.0F);
}

TEST(Half, OverflowSaturatesToInf) {
  // 65520 = (65504 + 65536) / 2 is the rounding boundary: everything at or
  // above it is nearer 2^16 than the largest finite half, so RNE carries
  // past 0x7BFF into the inf encoding.
  EXPECT_EQ(narrow_bits(65520.0F), 0x7C00U);
  EXPECT_EQ(narrow_bits(-65520.0F), 0xFC00U);
  EXPECT_EQ(narrow_bits(1e30F), 0x7C00U);
  // Just below the boundary still rounds down to the largest finite half.
  EXPECT_EQ(narrow_bits(std::nextafterf(65520.0F, 0.0F)), 0x7BFFU);
  EXPECT_EQ(narrow_bits(65519.0F), 0x7BFFU);
}

// --- NaN payloads -----------------------------------------------------------

TEST(Half, NaNIsQuietedAndKeepsTopPayloadBits) {
  // Signalling float NaN (quiet bit clear, payload in the top mantissa
  // bits): narrowing must force the quiet bit so the NaN cannot signal
  // later, while keeping the top ten payload bits (VCVTPS2PH semantics).
  const std::uint32_t snan_bits = 0x7F800000U | (0x155U << 13);
  float snan = 0.0F;
  __builtin_memcpy(&snan, &snan_bits, sizeof(snan));
  ASSERT_TRUE(std::isnan(snan));
  const std::uint16_t h = narrow_bits(snan);
  EXPECT_EQ(h & 0x7C00U, 0x7C00U);     // NaN exponent
  EXPECT_NE(h & 0x3FFU, 0U);           // still a NaN, not inf
  EXPECT_EQ(h & 0x200U, 0x200U);       // quiet bit forced
  EXPECT_EQ(h & 0x155U, 0x155U);       // payload bits preserved
  EXPECT_TRUE(std::isnan(widen_bits(h)));

  // Quiet NaNs survive the full round trip bit-for-bit.
  const std::uint16_t qnan = 0x7E2AU;
  EXPECT_EQ(float_bits_to_half_bits(float_bits(widen_bits(qnan))), qnan);
  EXPECT_TRUE(std::isnan(std::numeric_limits<float>::quiet_NaN()));
  EXPECT_TRUE(
      std::isnan(widen_bits(narrow_bits(-std::numeric_limits<float>::quiet_NaN()))));
}

// --- Round-to-nearest-even ties ---------------------------------------------

TEST(Half, RoundsTiesToEven) {
  // Half ulp at 1.0 is 2^-10, so 1 + 2^-11 ties between 0x3C00 and 0x3C01:
  // even mantissa wins (0x3C00), and the next tie up picks 0x3C02.
  EXPECT_EQ(narrow_bits(1.0F + 0x1.0p-11F), 0x3C00U);
  EXPECT_EQ(narrow_bits(1.0F + 3.0F * 0x1.0p-11F), 0x3C02U);
  // Same ties exercised with integer-exact values: ulp at 2048 is 2.
  EXPECT_EQ(narrow_bits(2049.0F), 0x6800U);  // tie 2048/2050 -> 2048 (even)
  EXPECT_EQ(narrow_bits(2051.0F), 0x6802U);  // tie 2050/2052 -> 2052 (even)
  // Non-ties round to nearest regardless of parity.
  EXPECT_EQ(narrow_bits(2049.5F), 0x6801U);
  EXPECT_EQ(narrow_bits(2050.9F), 0x6801U);
  // A mantissa carry at a binade boundary ripples into the exponent:
  // 2047.5 ties between 2047 (0x67FF, odd) and 2048 (0x6800) -> 2048.
  EXPECT_EQ(narrow_bits(2047.5F), 0x6800U);
}

// --- Exhaustive round trip --------------------------------------------------

TEST(Half, EveryHalfSurvivesWidenNarrow) {
  // Widening is exact, so half -> float -> half must be the identity for
  // every non-NaN pattern, and NaN-ness (plus the payload, once quieted)
  // must survive for the rest.  65536 cases is cheap; run them all.
  for (std::uint32_t bits = 0; bits <= 0xFFFFU; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const std::uint32_t f = half_bits_to_float_bits(h);
    const std::uint16_t back = float_bits_to_half_bits(f);
    const bool is_nan = (h & 0x7C00U) == 0x7C00U && (h & 0x3FFU) != 0;
    if (!is_nan) {
      ASSERT_EQ(back, h) << "half bits 0x" << std::hex << bits;
    } else {
      // Narrowing quiets signalling NaNs, so identity holds modulo the
      // quiet bit.
      ASSERT_EQ(back, h | 0x200U) << "half bits 0x" << std::hex << bits;
    }
  }
}

// --- Vectorized span conversions match the scalar reference ------------------

TEST(Half, SpanConversionsMatchScalarBitForBit) {
  // The dispatched widen/narrow may run on F16C hardware; IEEE says the
  // results must match the software RNE reference exactly, including edge
  // cases.  Mix edges with a deterministic pseudorandom fill and an odd
  // length to exercise the vector tail.
  std::vector<float> src = {0.0F,
                            -0.0F,
                            1.0F,
                            -1.0F,
                            65504.0F,
                            65520.0F,
                            -1e30F,
                            0x1.0p-14F,
                            0x1.0p-24F,
                            0x1.0p-25F,
                            1.0F + 0x1.0p-11F,
                            std::numeric_limits<float>::infinity(),
                            std::numeric_limits<float>::quiet_NaN()};
  std::uint32_t state = 0x243F6A88U;
  while (src.size() < 1013) {
    state = state * 1664525U + 1013904223U;
    src.push_back((static_cast<float>(state >> 8) / 16777216.0F - 0.5F) *
                  200000.0F);
  }
  std::vector<Half> narrowed(src.size());
  narrow(src, narrowed);
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(narrowed[i].bits, float_to_half(src[i]).bits) << "i=" << i;
  }
  std::vector<float> widened(narrowed.size());
  widen(narrowed, widened);
  for (std::size_t i = 0; i < narrowed.size(); ++i) {
    ASSERT_EQ(float_bits(widened[i]), float_bits(half_to_float(narrowed[i])))
        << "i=" << i;
  }
}

TEST(Half, SharedPrecisionModeRoundTrips) {
  const auto saved = shared_precision();
  set_shared_precision(SharedPrecision::kFp16);
  EXPECT_EQ(shared_precision(), SharedPrecision::kFp16);
  EXPECT_STREQ(shared_precision_name(SharedPrecision::kFp16), "fp16");
  EXPECT_EQ(shared_value_bytes(SharedPrecision::kFp16), 2U);
  set_shared_precision(SharedPrecision::kFp32);
  EXPECT_EQ(shared_value_bytes(SharedPrecision::kFp32), 4U);
  set_shared_precision(saved);
}

}  // namespace
}  // namespace tpa::linalg

namespace tpa::cluster {
namespace {

std::vector<double> ramp_delta(std::size_t dim) {
  std::vector<double> delta(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    const double sign = (i % 2 == 0) ? 1.0 : -1.0;
    delta[i] = sign * (0.25 + static_cast<double>(i % 97) * 1e-2);
  }
  return delta;
}

// --- Dense-quantized layout --------------------------------------------------

TEST(DeltaCodec, DenseRoundTripWithinQuantizationError) {
  const auto delta = ramp_delta(1000);
  const auto encoded = encode_delta(delta);
  EXPECT_TRUE(encoded.dense);
  EXPECT_TRUE(encoded.indices.empty());
  ASSERT_EQ(encoded.payload.size(), delta.size());
  ASSERT_EQ(encoded.scales.size(), (delta.size() + 255) / 256);
  EXPECT_EQ(encoded.wire_bytes(), quantized_delta_wire_bytes(delta.size()));

  const auto decoded = decode_delta(encoded);
  ASSERT_EQ(decoded.size(), delta.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    // Stored ratio sits in [-1, 1]: error is bounded by half an fp16 ulp of
    // the ratio times the block scale (2^-11 relative to the block max).
    const double bound =
        static_cast<double>(encoded.scales[i / 256]) * 0x1.0p-11;
    ASSERT_NEAR(decoded[i], delta[i], bound) << "i=" << i;
  }
}

TEST(DeltaCodec, PowerOfTwoRatiosRoundTripExactly) {
  // When every Δ_i / scale is a power of two the fp16 payload is exact, so
  // decode must reproduce the input bit-for-bit.
  std::vector<double> delta = {4.0, -2.0, 1.0, 0.5, -0.25, 0.125, 0.0, -4.0};
  const auto decoded = decode_delta(encode_delta(delta));
  ASSERT_EQ(decoded.size(), delta.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    ASSERT_EQ(decoded[i], delta[i]) << "i=" << i;
  }
}

TEST(DeltaCodec, ZeroVectorDecodesExactlyZero) {
  const std::vector<double> delta(300, 0.0);
  const auto encoded = encode_delta(delta);
  const auto decoded = decode_delta(encoded);
  for (const double v : decoded) EXPECT_EQ(v, 0.0);
  // Still dense and still the deterministic wire size.
  EXPECT_EQ(encoded.wire_bytes(), quantized_delta_wire_bytes(300));
}

// --- Sparse layout -----------------------------------------------------------

TEST(DeltaCodec, ThresholdDropsNearZeroEntries) {
  std::vector<double> delta(600, 1e-6);
  delta[3] = 10.0;
  delta[17] = -8.0;
  delta[599] = 6.0;
  DeltaCodecConfig config;
  config.threshold = 0.5;  // keep |Δ| > 5
  const auto encoded = encode_delta(delta, config);
  EXPECT_FALSE(encoded.dense);
  ASSERT_EQ(encoded.indices.size(), 3U);
  EXPECT_EQ(encoded.indices[0], 3U);
  EXPECT_EQ(encoded.indices[1], 17U);
  EXPECT_EQ(encoded.indices[2], 599U);
  EXPECT_LT(encoded.wire_bytes(), quantized_delta_wire_bytes(600));

  const auto decoded = decode_delta(encoded);
  EXPECT_EQ(decoded[0], 0.0);    // dropped entries decode as exact zeros
  EXPECT_EQ(decoded[598], 0.0);
  EXPECT_NEAR(decoded[3], 10.0, 10.0 * 0x1.0p-11);
  EXPECT_NEAR(decoded[17], -8.0, 10.0 * 0x1.0p-11);
  EXPECT_NEAR(decoded[599], 6.0, 10.0 * 0x1.0p-11);
}

// --- Wire-size formulas ------------------------------------------------------

TEST(DeltaCodec, WireSizeFormulasAndReductionFloor) {
  EXPECT_EQ(dense_delta_wire_bytes(1024), 1024 * 8 + 8);
  // header(12) + payload(2/coord) + scales(4/block) + checksum(8)
  EXPECT_EQ(quantized_delta_wire_bytes(1024), 12U + 2048U + 16U + 8U);
  EXPECT_EQ(quantized_delta_wire_bytes(1, 256), 12U + 2U + 4U + 8U);
  // The precision ablation gates on >= 2x reduction; the dense-quantized
  // layout delivers ~3.9x at realistic dimensions.
  const auto dim = std::size_t{8192};
  EXPECT_GE(dense_delta_wire_bytes(dim),
            2 * quantized_delta_wire_bytes(dim));
}

// --- Integrity under transit corruption --------------------------------------

TEST(DeltaCodec, ChecksumCatchesPayloadBitFlipInTransit) {
  auto encoded = encode_delta(ramp_delta(512));
  ASSERT_EQ(compressed_delta_checksum(encoded), encoded.checksum);
  const auto sent = encoded.checksum;
  corrupt_compressed_in_transit(encoded);  // flips one quantized payload bit
  EXPECT_NE(compressed_delta_checksum(encoded), sent);
}

TEST(DeltaCodec, ChecksumCoversEveryEncodedField) {
  const auto reference = encode_delta(ramp_delta(512), {0.5, 256});
  ASSERT_FALSE(reference.dense);
  const auto sent = reference.checksum;

  auto flipped_payload = reference;
  flipped_payload.payload.front().bits ^= 0x0400U;
  EXPECT_NE(compressed_delta_checksum(flipped_payload), sent);

  auto flipped_index = reference;
  flipped_index.indices.back() ^= 1U;
  EXPECT_NE(compressed_delta_checksum(flipped_index), sent);

  auto flipped_scale = reference;
  flipped_scale.scales.front() += 1.0F;
  EXPECT_NE(compressed_delta_checksum(flipped_scale), sent);

  auto flipped_layout = reference;
  flipped_layout.dense = true;
  EXPECT_NE(compressed_delta_checksum(flipped_layout), sent);
}

TEST(DeltaCodec, CorruptionFallsBackForEmptyPayload) {
  // An all-dropped sparse delta has no payload bits to flip; corruption must
  // still dirty the image so the checksum catches it.
  std::vector<double> delta(64, 0.0);
  DeltaCodecConfig config;
  config.threshold = 0.5;
  auto encoded = encode_delta(delta, config);
  ASSERT_TRUE(encoded.payload.empty());
  const auto sent = encoded.checksum;
  corrupt_compressed_in_transit(encoded);
  EXPECT_NE(compressed_delta_checksum(encoded), sent);
}

// --- Validation --------------------------------------------------------------

TEST(DeltaCodec, RejectsInvalidConfigAndStructure) {
  const auto delta = ramp_delta(32);
  EXPECT_THROW(encode_delta(delta, {0.0, 0}), std::invalid_argument);
  EXPECT_THROW(encode_delta(delta, {-0.1, 256}), std::invalid_argument);

  const auto encoded = encode_delta(delta);
  std::vector<double> wrong_size(encoded.dim + 1);
  EXPECT_THROW(decode_delta(encoded, wrong_size), std::invalid_argument);

  auto truncated = encoded;
  truncated.payload.pop_back();  // dense payload no longer covers dim
  std::vector<double> out(encoded.dim);
  EXPECT_THROW(decode_delta(truncated, out), std::invalid_argument);

  auto missing_scales = encoded;
  missing_scales.scales.clear();
  EXPECT_THROW(decode_delta(missing_scales, out), std::invalid_argument);
}

}  // namespace
}  // namespace tpa::cluster
