#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/attribution.hpp"
#include "obs/json_parse.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace tpa::obs {
namespace {

// ---- RoundAttribution arithmetic ------------------------------------------

TEST(RoundAttribution, TotalSumsCanonicalComponents) {
  RoundAttribution attr;
  attr.compute_seconds = 1.0;
  attr.host_seconds = 0.5;
  attr.pcie_seconds = 0.25;
  attr.network_seconds = 0.125;
  attr.straggler_wait_seconds = 0.0625;
  attr.stale_overhead_seconds = 0.03125;
  EXPECT_DOUBLE_EQ(attr.total(), 1.96875);

  double via_index = 0.0;
  for (int i = 0; i < kAttributionComponents; ++i) {
    via_index += attribution_component(attr, i);
  }
  EXPECT_DOUBLE_EQ(via_index, attr.total());

  RoundAttribution sum;
  sum += attr;
  sum += attr;
  EXPECT_DOUBLE_EQ(sum.total(), 2.0 * attr.total());
}

TEST(RoundAttribution, ComponentNamesMatchSpanNames) {
  for (int i = 0; i < kAttributionComponents; ++i) {
    const std::string span = attribution_span_name(i);
    EXPECT_EQ(span, std::string("attr/") + attribution_component_name(i));
  }
  EXPECT_EQ(std::string(attribution_component_name(0)), "compute");
  EXPECT_EQ(std::string(attribution_component_name(4)), "straggler_wait");
}

// ---- analyze_attribution on hand-built span sets --------------------------

TraceRecord make_span(const char* name, double ts_us, double dur_us,
                      std::int32_t track, std::int64_t arg = kNoArg) {
  TraceRecord record;
  record.name = name;
  record.phase = 'X';
  record.ts_us = ts_us;
  record.dur_us = dur_us;
  record.track = track;
  record.arg = arg;
  return record;
}

TEST(AnalyzeAttribution, RowsSumAndResidualIsZeroWhenExact) {
  constexpr std::int32_t kAttr = 1500;
  std::vector<TraceRecord> records;
  // Round 1: 100us = 60 compute + 30 network + 10 straggler_wait.
  records.push_back(make_span("attr/round", 0.0, 100.0, kAttr, 1));
  records.push_back(make_span("attr/compute", 0.0, 60.0, kAttr, 1));
  records.push_back(make_span("attr/network", 60.0, 30.0, kAttr, 1));
  records.push_back(make_span("attr/straggler_wait", 90.0, 10.0, kAttr, 1));
  // Round 2: 80us, all compute.
  records.push_back(make_span("attr/round", 100.0, 80.0, kAttr, 2));
  records.push_back(make_span("attr/compute", 100.0, 80.0, kAttr, 2));

  const auto report = analyze_attribution(records, {});
  ASSERT_EQ(report.rounds.size(), 2u);
  EXPECT_EQ(report.rounds[0].round, 1);
  EXPECT_DOUBLE_EQ(report.rounds[0].total_us, 100.0);
  EXPECT_DOUBLE_EQ(report.rounds[0].components_us[0], 60.0);
  EXPECT_DOUBLE_EQ(report.rounds[0].components_us[3], 30.0);
  EXPECT_DOUBLE_EQ(report.rounds[0].components_us[4], 10.0);
  EXPECT_DOUBLE_EQ(report.rounds[0].component_sum_us(), 100.0);
  EXPECT_DOUBLE_EQ(report.rounds[0].residual_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(report.max_residual_fraction, 0.0);

  // Per-track cumulative row aggregates both rounds.
  ASSERT_EQ(report.track_totals.size(), 1u);
  EXPECT_EQ(report.track_totals[0].round, -1);
  EXPECT_DOUBLE_EQ(report.track_totals[0].total_us, 180.0);
  EXPECT_DOUBLE_EQ(report.track_totals[0].components_us[0], 140.0);
}

TEST(AnalyzeAttribution, MissingComponentShowsAsResidual) {
  constexpr std::int32_t kAttr = 1500;
  std::vector<TraceRecord> records;
  records.push_back(make_span("attr/round", 0.0, 100.0, kAttr, 1));
  records.push_back(make_span("attr/compute", 0.0, 80.0, kAttr, 1));
  const auto report = analyze_attribution(records, {});
  ASSERT_EQ(report.rounds.size(), 1u);
  EXPECT_NEAR(report.max_residual_fraction, 0.2, 1e-12);
}

TEST(AnalyzeAttribution, UtilizationAndCriticalSpans) {
  std::map<std::int32_t, std::string> names;
  names[2] = "dist/worker 0";
  names[3] = "dist/worker 1";
  names[1000] = "dist/master";
  std::vector<TraceRecord> records;
  // Worker 0 is busy 80 of the 100us window; worker 1 only 20.
  records.push_back(make_span("dist/local_solve", 0.0, 80.0, 2));
  records.push_back(make_span("dist/local_solve", 0.0, 20.0, 3));
  records.push_back(make_span("dist/epoch", 0.0, 100.0, 1000));
  records.push_back(make_span("attr/round", 0.0, 100.0, 1500, 1));
  records.push_back(make_span("attr/compute", 0.0, 70.0, 1500, 1));
  records.push_back(make_span("attr/straggler_wait", 70.0, 30.0, 1500, 1));

  const auto report = analyze_attribution(records, names, /*top_n=*/1);
  ASSERT_EQ(report.utilization.size(), 2u);  // master is not a worker track
  EXPECT_EQ(report.utilization[0].name, "dist/worker 0");
  EXPECT_DOUBLE_EQ(report.utilization[0].busy_us, 80.0);
  EXPECT_DOUBLE_EQ(report.utilization[0].window_us, 100.0);
  EXPECT_DOUBLE_EQ(report.utilization[0].utilization(), 0.8);
  EXPECT_DOUBLE_EQ(report.utilization[1].utilization(), 0.2);

  // top_n caps the ranked component slices; the biggest one wins.
  ASSERT_EQ(report.critical.size(), 1u);
  EXPECT_EQ(report.critical[0].component, "compute");
  EXPECT_DOUBLE_EQ(report.critical[0].dur_us, 70.0);
}

TEST(AnalyzeAttribution, EmptyInputYieldsEmptyReport) {
  const auto report = analyze_attribution({}, {});
  EXPECT_TRUE(report.rounds.empty());
  EXPECT_TRUE(report.utilization.empty());
  EXPECT_TRUE(report.critical.empty());
  EXPECT_DOUBLE_EQ(report.max_residual_fraction, 0.0);
}

// ---- record_round_attribution round-trip through the tracer ---------------

class AttrTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(false);
    reset_trace();
  }
  void TearDown() override {
    set_trace_enabled(false);
    reset_trace();
  }
};

TEST_F(AttrTraceTest, RecorderEmitsAnalyzableSpans) {
  set_trace_enabled(true);
  RoundAttribution round;
  round.compute_seconds = 0.004;
  round.network_seconds = 0.001;
  RoundAttribution cumulative = round;
  record_round_attribution(round, cumulative, /*round_total_seconds=*/0.005,
                           /*start_seconds=*/0.0, /*round_index=*/1,
                           /*attr_track=*/1500);
  cumulative += round;
  record_round_attribution(round, cumulative, 0.005, 0.005, 2, 1500);
  set_trace_enabled(false);

  const auto report = analyze_attribution(trace_records(), {});
  ASSERT_EQ(report.rounds.size(), 2u);
  for (const auto& row : report.rounds) {
    EXPECT_NEAR(row.total_us, 5000.0, 1e-6);
    EXPECT_NEAR(row.components_us[0], 4000.0, 1e-6);
    EXPECT_NEAR(row.components_us[3], 1000.0, 1e-6);
    EXPECT_LT(row.residual_fraction(), 1e-9);
  }
  // The cumulative gauges reflect the last call.
  EXPECT_DOUBLE_EQ(metrics().gauge("round.attr.compute_seconds").value(),
                   0.008);
  EXPECT_DOUBLE_EQ(metrics().gauge("round.attr.total_seconds").value(),
                   cumulative.total());
}

TEST_F(AttrTraceTest, RingWrapDropsOldestButKeepsRowsConsistent) {
  set_trace_enabled(true);
  RoundAttribution round;
  round.compute_seconds = 0.001;
  round.host_seconds = 0.0005;
  RoundAttribution cumulative;
  // Each round emits 3 spans (envelope + 2 non-zero components); push enough
  // rounds through one thread's ring to wrap it.
  const int rounds = (1 << 15) / 3 + 64;
  double clock = 0.0;
  for (int r = 1; r <= rounds; ++r) {
    cumulative += round;
    record_round_attribution(round, cumulative, round.total(), clock, r, 1500);
    clock += round.total();
  }
  set_trace_enabled(false);
  EXPECT_GT(trace_events_dropped(), 0u);

  const auto report = analyze_attribution(trace_records(), {});
  // The oldest rounds fell off the ring; every *surviving complete* round
  // still sums to its envelope.  A boundary round can lose its envelope
  // (emitted first, dropped first) — those rows have total 0 and are
  // excluded from the residual gate by construction.
  EXPECT_LT(report.rounds.size(), static_cast<std::size_t>(rounds));
  EXPECT_GT(report.rounds.size(), 1000u);
  EXPECT_LT(report.max_residual_fraction, 1e-9);
}

// ---- JSON parser ----------------------------------------------------------

TEST(JsonParse, ScalarsAndNesting) {
  const auto v = parse_json(
      " {\"a\": 1.5, \"b\": [true, false, null, \"x\"], "
      "\"c\": {\"d\": -2e3}} ");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.num_or("a", 0.0), 1.5);
  const auto* b = v.find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_TRUE(b->is_array());
  ASSERT_EQ(b->array.size(), 4u);
  EXPECT_TRUE(b->array[0].boolean);
  EXPECT_TRUE(b->array[2].is_null());
  EXPECT_EQ(b->array[3].string, "x");
  const auto* c = v.find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->num_or("d", 0.0), -2000.0);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(v.str_or("missing", "fb"), "fb");
}

TEST(JsonParse, StringEscapesIncludingSurrogatePairs) {
  EXPECT_EQ(parse_json("\"a\\n\\t\\\"b\\\\\"").string, "a\n\t\"b\\");
  EXPECT_EQ(parse_json("\"\\u0041\"").string, "A");
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_json("\"\\uD83D\\uDE00\"").string, "\xF0\x9F\x98\x80");
  EXPECT_THROW(parse_json("\"\\uD83D\""), std::runtime_error);  // lone high
  EXPECT_THROW(parse_json("\"a\nb\""), std::runtime_error);  // raw control
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
  EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_THROW(parse_json(deep), std::runtime_error);
}

TEST_F(AttrTraceTest, ChromeTraceExportParsesBackLosslessly) {
  set_trace_enabled(true);
  set_track_name(7, "unit/worker 0");
  trace_complete("roundtrip/span", 1.0, 2.0, 7, 42);
  trace_flow_begin("roundtrip/flow", 99, 7);
  set_trace_enabled(false);

  const auto root = parse_json(chrome_trace_json());
  const auto* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  bool saw_span = false, saw_flow = false, saw_name = false;
  for (const auto& event : events->array) {
    const auto ph = event.str_or("ph", "");
    if (ph == "X") {
      saw_span = true;
      EXPECT_EQ(event.str_or("name", ""), "roundtrip/span");
      EXPECT_DOUBLE_EQ(event.num_or("ts", 0.0), 1.0);
      EXPECT_DOUBLE_EQ(event.num_or("dur", 0.0), 2.0);
      EXPECT_DOUBLE_EQ(event.num_or("tid", 0.0), 7.0);
    } else if (ph == "s") {
      saw_flow = true;
      EXPECT_EQ(event.str_or("cat", ""), "flow");
      EXPECT_DOUBLE_EQ(event.num_or("id", 0.0), 99.0);
    } else if (ph == "M") {
      saw_name = true;
    }
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_flow);
  EXPECT_TRUE(saw_name);
}

}  // namespace
}  // namespace tpa::obs
