#include "util/permutation.hpp"

#include <gtest/gtest.h>

#include <set>

namespace tpa::util {
namespace {

TEST(Permutation, IdentityIsSorted) {
  const auto order = identity_permutation(5);
  ASSERT_EQ(order.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

TEST(Permutation, EmptyIdentity) {
  EXPECT_TRUE(identity_permutation(0).empty());
}

TEST(Permutation, ShuffleKeepsPermutationProperty) {
  Rng rng(1);
  auto order = identity_permutation(257);
  shuffle(order, rng);
  EXPECT_TRUE(is_permutation(order));
}

TEST(Permutation, ShuffleChangesOrder) {
  Rng rng(2);
  auto order = identity_permutation(100);
  shuffle(order, rng);
  EXPECT_NE(order, identity_permutation(100));
}

TEST(Permutation, RandomPermutationIsValidAndSeeded) {
  Rng a(3);
  Rng b(3);
  const auto p1 = random_permutation(64, a);
  const auto p2 = random_permutation(64, b);
  EXPECT_TRUE(is_permutation(p1));
  EXPECT_EQ(p1, p2);
}

TEST(Permutation, IsPermutationRejectsDuplicates) {
  std::vector<std::uint32_t> values{0, 1, 1};
  EXPECT_FALSE(is_permutation(values));
}

TEST(Permutation, IsPermutationRejectsOutOfRange) {
  std::vector<std::uint32_t> values{0, 1, 3};
  EXPECT_FALSE(is_permutation(values));
}

TEST(Permutation, IsPermutationAcceptsEmpty) {
  EXPECT_TRUE(is_permutation(std::span<const std::uint32_t>{}));
}

TEST(EpochPermutation, EveryEpochIsAFreshValidPermutation) {
  EpochPermutation perm(50, Rng(4));
  const auto first = std::vector<std::uint32_t>(perm.next().begin(),
                                                perm.next().end());
  bool changed = false;
  for (int epoch = 0; epoch < 5; ++epoch) {
    const auto view = perm.next();
    EXPECT_TRUE(is_permutation(view));
    if (!std::equal(view.begin(), view.end(), first.begin())) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(EpochPermutation, SizeIsStable) {
  EpochPermutation perm(10, Rng(5));
  EXPECT_EQ(perm.size(), 10u);
  perm.next();
  EXPECT_EQ(perm.size(), 10u);
}

TEST(EpochPermutation, SingleElement) {
  EpochPermutation perm(1, Rng(6));
  const auto view = perm.next();
  ASSERT_EQ(view.size(), 1u);
  EXPECT_EQ(view[0], 0u);
}

TEST(EpochPermutation, SkipZeroIsANoOp) {
  EpochPermutation skipped(16, Rng(7));
  skipped.skip(0);
  EpochPermutation fresh(16, Rng(7));
  const auto a = skipped.next();
  const auto b = fresh.next();
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
}

TEST(EpochPermutation, SkipMatchesTheSameNumberOfNexts) {
  // The checkpoint-resume contract: skip(k) then next() must equal the
  // (k+1)-th next() of a fresh stream, including for large k (a long run
  // resumed near its end).
  constexpr int kEpochs = 50000;
  EpochPermutation stepped(16, Rng(8));
  for (int epoch = 0; epoch < kEpochs; ++epoch) stepped.next();
  EpochPermutation skipped(16, Rng(8));
  skipped.skip(kEpochs);
  const auto a = stepped.next();
  const auto b = skipped.next();
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
}

TEST(EpochPermutation, SkipIsAdditive) {
  EpochPermutation split(16, Rng(9));
  split.skip(3);
  split.skip(4);
  EpochPermutation whole(16, Rng(9));
  whole.skip(7);
  const auto a = split.next();
  const auto b = whole.next();
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
}

TEST(EpochPermutation, SkipOnDegenerateSizesIsHarmless) {
  // n <= 1 has only one possible order, but the skipped epochs must not
  // touch the RNG differently than stepping would (the stream is shared
  // with nothing, yet the invariant should hold uniformly).
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    EpochPermutation perm(n, Rng(10));
    perm.skip(1000);
    const auto view = perm.next();
    EXPECT_EQ(view.size(), n);
    if (n == 1) {
      EXPECT_EQ(view[0], 0u);
    }
  }
}

}  // namespace
}  // namespace tpa::util
