// Out-of-core shard store: binary format extensions, manifest, writer,
// reader modes, and corruption rejection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sparse/io_binary.hpp"
#include "store/format.hpp"
#include "store/shard_reader.hpp"
#include "store/streaming_dataset.hpp"
#include "store/svmlight_stream.hpp"

namespace tpa::store {
namespace {

// Deterministic matrix with ragged rows (including an empty one) so shard
// boundaries never line up with uniform nnz.
sparse::LabeledMatrix make_data(sparse::Index rows, sparse::Index cols) {
  std::vector<sparse::Offset> offsets{0};
  std::vector<sparse::Index> indices;
  std::vector<sparse::Value> values;
  std::vector<float> labels;
  for (sparse::Index r = 0; r < rows; ++r) {
    const int nnz = static_cast<int>((r * 7 + 3) % 5);  // 0..4 entries
    for (int k = 0; k < nnz; ++k) {
      indices.push_back((r + static_cast<sparse::Index>(k) * 11) % cols);
      values.push_back(0.5F * static_cast<float>(k + 1) -
                       static_cast<float>(r % 3));
    }
    std::sort(indices.end() - nnz, indices.end());
    offsets.push_back(indices.size());
    labels.push_back(r % 2 == 0 ? 1.0F : -1.0F);
  }
  return sparse::LabeledMatrix{
      sparse::CsrMatrix(rows, cols, std::move(offsets), std::move(indices),
                        std::move(values)),
      std::move(labels)};
}

template <class T>
std::vector<T> to_vec(std::span<const T> s) {
  return std::vector<T>(s.begin(), s.end());
}

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("tpa_store_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST(Fnv1a, ChainedUpdatesEqualOneShot) {
  const std::string bytes = "the quick brown fox jumps over the lazy dog";
  sparse::Fnv1a chained;
  chained.update(bytes.data(), 10);
  chained.update(bytes.data() + 10, 5);
  chained.update(bytes.data() + 15, bytes.size() - 15);
  EXPECT_EQ(chained.digest(), sparse::fnv1a(bytes.data(), bytes.size()));
  // Empty updates are identity.
  sparse::Fnv1a empty;
  empty.update(bytes.data(), 0);
  EXPECT_EQ(empty.digest(), sparse::Fnv1a::kOffsetBasis);
}

TEST(BinaryHeader, PeekMatchesWrittenShapeWithoutPayloadRead) {
  const auto data = make_data(9, 12);
  std::stringstream stream;
  sparse::write_binary(stream, data);
  const auto header = sparse::read_binary_header(stream);
  EXPECT_EQ(header.rows, 9u);
  EXPECT_EQ(header.cols, 12u);
  EXPECT_EQ(header.nnz, data.matrix.nnz());
  EXPECT_EQ(header.labels, 9u);
  EXPECT_EQ(header.file_bytes(), stream.str().size());
}

TEST(BinaryHeader, MemoryImageReadMatchesStreamRead) {
  const auto data = make_data(7, 10);
  std::stringstream stream;
  sparse::write_binary(stream, data);
  const auto image = stream.str();
  const auto from_memory = sparse::read_binary(image.data(), image.size());
  const auto from_stream = sparse::read_binary(stream);
  EXPECT_EQ(to_vec(from_memory.matrix.values()),
            to_vec(from_stream.matrix.values()));
  EXPECT_EQ(to_vec(from_memory.matrix.col_indices()),
            to_vec(from_stream.matrix.col_indices()));
  EXPECT_EQ(from_memory.labels, from_stream.labels);
  const auto header = sparse::read_binary_header(image.data(), image.size());
  EXPECT_EQ(header.rows, 7u);
}

TEST(RowsPerShard, CeilSplitRule) {
  EXPECT_EQ(rows_per_shard(10, 4), 3u);   // 3+3+3+1 -> 4 shards
  EXPECT_EQ(rows_per_shard(6, 4), 2u);    // 2+2+2 -> only 3 shards
  EXPECT_EQ(rows_per_shard(4, 1), 4u);
  EXPECT_EQ(rows_per_shard(0, 4), 1u);    // degenerate, never divides by 0
  EXPECT_EQ(rows_per_shard(5, 100), 1u);  // more shards than rows
}

TEST(Manifest, TextRoundTrip) {
  Manifest manifest;
  manifest.name = "unit";
  manifest.rows = 10;
  manifest.cols = 6;
  manifest.nnz = 21;
  manifest.shards = {{0, 5, 11, 400, "unit.shard00000.tpa1"},
                     {5, 5, 10, 390, "unit.shard00001.tpa1"}};
  std::stringstream stream;
  write_manifest(stream, manifest);
  const auto parsed = read_manifest(stream);
  EXPECT_EQ(parsed.name, manifest.name);
  EXPECT_EQ(parsed.rows, manifest.rows);
  EXPECT_EQ(parsed.cols, manifest.cols);
  EXPECT_EQ(parsed.nnz, manifest.nnz);
  ASSERT_EQ(parsed.shards.size(), 2u);
  EXPECT_EQ(parsed.shards[1].row_begin, 5u);
  EXPECT_EQ(parsed.shards[1].bytes, 390u);
  EXPECT_EQ(parsed.shards[1].file, manifest.shards[1].file);
}

TEST(Manifest, RejectsNonContiguousShards) {
  Manifest manifest;
  manifest.name = "bad";
  manifest.rows = 10;
  manifest.cols = 6;
  manifest.nnz = 21;
  manifest.shards = {{0, 5, 11, 400, "a"}, {6, 4, 10, 390, "b"}};  // gap
  std::stringstream stream;
  write_manifest(stream, manifest);
  EXPECT_THROW(read_manifest(stream), std::runtime_error);
}

TEST(Manifest, RejectsMismatchedTotals) {
  Manifest manifest;
  manifest.name = "bad";
  manifest.rows = 10;
  manifest.cols = 6;
  manifest.nnz = 99;  // shard nnz sums to 21
  manifest.shards = {{0, 5, 11, 400, "a"}, {5, 5, 10, 390, "b"}};
  std::stringstream stream;
  write_manifest(stream, manifest);
  EXPECT_THROW(read_manifest(stream), std::runtime_error);
}

TEST_F(StoreTest, WriteStoreRoundTripsThroughBothReadModes) {
  const auto data = make_data(10, 8);
  const auto manifest = write_store(dir_.string(), "rt", data, 4);
  EXPECT_EQ(manifest.rows, 10u);
  EXPECT_EQ(manifest.cols, 8u);
  EXPECT_EQ(manifest.nnz, data.matrix.nnz());
  ASSERT_EQ(manifest.shards.size(), 4u);  // 3+3+3+1
  EXPECT_EQ(manifest.shards[3].rows, 1u);

  for (const auto mode : {ReadMode::kBuffered, ReadMode::kMmap}) {
    const ShardReader reader(read_manifest_file(
                                 (dir_ / "rt.manifest").string()),
                             dir_.string(), mode);
    sparse::Index row = 0;
    for (std::size_t s = 0; s < reader.num_shards(); ++s) {
      const auto slice = reader.read_shard(s);
      EXPECT_EQ(slice.matrix.cols(), data.matrix.cols());
      for (sparse::Index r = 0; r < slice.matrix.rows(); ++r, ++row) {
        EXPECT_EQ(slice.labels[r], data.labels[row]);
        const auto got = slice.matrix.row(r);
        const auto want = data.matrix.row(row);
        ASSERT_EQ(got.nnz(), want.nnz());
        for (std::size_t k = 0; k < got.nnz(); ++k) {
          EXPECT_EQ(got.indices[k], want.indices[k]);
          EXPECT_EQ(got.values[k], want.values[k]);
        }
      }
    }
    EXPECT_EQ(row, data.matrix.rows());
  }
}

TEST_F(StoreTest, ShardWriterNeverBuffersMoreThanOneShard) {
  // Behavioural proxy for the streaming contract: shard files appear on
  // disk as soon as their row range is complete, not at finish().
  const auto data = make_data(9, 5);
  ShardWriter writer(dir_.string(), "inc", data.matrix.cols(), 3);
  for (sparse::Index r = 0; r < 6; ++r) {
    const auto row = data.matrix.row(r);
    writer.append(row.indices, row.values, data.labels[r]);
  }
  EXPECT_TRUE(std::filesystem::exists(dir_ / "inc.shard00000.tpa1"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "inc.shard00001.tpa1"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "inc.manifest"));
  for (sparse::Index r = 6; r < 9; ++r) {
    const auto row = data.matrix.row(r);
    writer.append(row.indices, row.values, data.labels[r]);
  }
  const auto manifest = writer.finish();
  EXPECT_TRUE(std::filesystem::exists(dir_ / "inc.manifest"));
  EXPECT_EQ(manifest.shards.size(), 3u);
  EXPECT_THROW(writer.append({}, {}, 0.0F), std::logic_error);
}

TEST_F(StoreTest, RejectsTruncatedShard) {
  const auto data = make_data(8, 6);
  write_store(dir_.string(), "trunc", data, 2);
  const auto shard_path = dir_ / "trunc.shard00001.tpa1";
  const auto size = std::filesystem::file_size(shard_path);
  std::filesystem::resize_file(shard_path, size - 8);
  const auto reader =
      ShardReader::open((dir_ / "trunc.manifest").string());
  EXPECT_NO_THROW(reader.read_shard(0));
  EXPECT_THROW(reader.read_shard(1), std::runtime_error);
}

TEST_F(StoreTest, RejectsCorruptedShardInBothModes) {
  const auto data = make_data(8, 6);
  write_store(dir_.string(), "corrupt", data, 2);
  const auto shard_path = dir_ / "corrupt.shard00000.tpa1";
  {
    // Flip one payload byte; the size still matches the manifest, so only
    // the checksum can catch it.
    std::fstream file(shard_path, std::ios::in | std::ios::out |
                                      std::ios::binary);
    file.seekp(48);
    char byte = 0;
    file.seekg(48);
    file.get(byte);
    file.seekp(48);
    file.put(static_cast<char>(byte ^ 0x40));
  }
  for (const auto mode : {ReadMode::kBuffered, ReadMode::kMmap}) {
    const auto reader =
        ShardReader::open((dir_ / "corrupt.manifest").string(), mode);
    // The error must point an operator at the damaged file and where the
    // digest-covered payload sits inside it, not just say "mismatch".
    try {
      reader.read_shard(0);
      FAIL() << "corrupted shard was accepted in mode "
             << read_mode_name(mode);
    } catch (const std::runtime_error& error) {
      const std::string what = error.what();
      EXPECT_NE(what.find("checksum mismatch"), std::string::npos) << what;
      EXPECT_NE(what.find(shard_path.string()), std::string::npos) << what;
      EXPECT_NE(what.find("stored digest at byte"), std::string::npos)
          << what;
    }
    EXPECT_NO_THROW(reader.read_shard(1));
  }
}

TEST_F(StoreTest, RejectsMissingShardFile) {
  const auto data = make_data(6, 4);
  write_store(dir_.string(), "gone", data, 3);
  std::filesystem::remove(dir_ / "gone.shard00002.tpa1");
  const auto reader = ShardReader::open((dir_ / "gone.manifest").string());
  EXPECT_THROW(reader.read_shard(2), std::runtime_error);
}

TEST_F(StoreTest, MemorySourceAgreesWithStoreOnBoundariesAndBytes) {
  const auto data = make_data(11, 7);
  const auto manifest = write_store(dir_.string(), "twin", data, 4);
  StoreStreamingDataset from_disk(
      ShardReader::open((dir_ / "twin.manifest").string()));
  MemoryShardedDataset from_memory("twin", data, 4);
  ASSERT_EQ(from_disk.num_shards(), from_memory.num_shards());
  ASSERT_EQ(manifest.shards.size(), from_memory.num_shards());
  for (std::size_t s = 0; s < from_disk.num_shards(); ++s) {
    EXPECT_EQ(from_disk.shard_row_begin(s), from_memory.shard_row_begin(s));
    EXPECT_EQ(from_disk.shard_rows(s), from_memory.shard_rows(s));
    const auto disk = from_disk.load_shard(s);
    const auto memory = from_memory.load_shard(s);
    EXPECT_EQ(to_vec(disk.matrix.row_offsets()),
              to_vec(memory.matrix.row_offsets()));
    EXPECT_EQ(to_vec(disk.matrix.col_indices()),
              to_vec(memory.matrix.col_indices()));
    EXPECT_EQ(to_vec(disk.matrix.values()), to_vec(memory.matrix.values()));
    EXPECT_EQ(disk.labels, memory.labels);
  }
}

TEST_F(StoreTest, SvmlightStreamingConversionMatchesStoreFromMemory) {
  const auto data = make_data(10, 9);
  std::stringstream svm;
  sparse::write_svmlight(svm, data.matrix, data.labels);
  const auto manifest = convert_svmlight_to_store(
      svm, dir_.string(), "svm", 4, data.matrix.cols());
  EXPECT_EQ(manifest.rows, 10u);
  EXPECT_EQ(manifest.nnz, data.matrix.nnz());
  StoreStreamingDataset source(
      ShardReader::open((dir_ / "svm.manifest").string()));
  sparse::Index row = 0;
  for (std::size_t s = 0; s < source.num_shards(); ++s) {
    const auto slice = source.load_shard(s);
    for (sparse::Index r = 0; r < slice.matrix.rows(); ++r, ++row) {
      EXPECT_EQ(slice.labels[r], data.labels[row]);
      ASSERT_EQ(slice.matrix.row_nnz(r), data.matrix.row_nnz(row));
    }
  }
  EXPECT_EQ(row, data.matrix.rows());
}

TEST(ReadModeParse, NamesRoundTripAndRejectsUnknown) {
  EXPECT_EQ(parse_read_mode("buffered"), ReadMode::kBuffered);
  EXPECT_EQ(parse_read_mode("mmap"), ReadMode::kMmap);
  EXPECT_THROW(parse_read_mode("directio"), std::invalid_argument);
  EXPECT_STREQ(read_mode_name(ReadMode::kBuffered), "buffered");
  EXPECT_STREQ(read_mode_name(ReadMode::kMmap), "mmap");
}

}  // namespace
}  // namespace tpa::store
