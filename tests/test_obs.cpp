#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/histogram.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace tpa::obs {
namespace {

// ---- Histogram ------------------------------------------------------------

TEST(Histogram, EmptyReportsZero) {
  const Histogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST(Histogram, SingleSampleIsEveryQuantile) {
  Histogram h;
  h.record(100.0);  // bucket 6 = [64, 128), upper edge 128
  EXPECT_EQ(h.total_count(), 1u);
  EXPECT_EQ(h.quantile(0.0), 128.0);
  EXPECT_EQ(h.quantile(0.5), 128.0);
  EXPECT_EQ(h.quantile(1.0), 128.0);
}

TEST(Histogram, QuantileIsBucketUpperEdge) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(3.0);  // bucket 1 = [2, 4)
  h.record(1000.0);                            // bucket 9 = [512, 1024)
  EXPECT_EQ(h.total_count(), 100u);
  EXPECT_EQ(h.quantile(0.50), 4.0);
  EXPECT_EQ(h.quantile(0.99), 4.0);
  EXPECT_EQ(h.quantile(1.0), 1024.0);
}

TEST(Histogram, TinyAndNegativeSamplesLandInBucketZero) {
  Histogram h;
  h.record(0.5);
  h.record(-17.0);
  EXPECT_EQ(h.total_count(), 2u);
  EXPECT_EQ(h.quantile(1.0), 2.0);  // bucket 0 upper edge
}

TEST(Histogram, OverflowLandsInTopBucket) {
  Histogram h;
  h.record(1e18);  // far beyond 2^31
  EXPECT_EQ(h.total_count(), 1u);
  // Top bucket b=31 has upper edge 2^32.
  EXPECT_EQ(h.quantile(1.0), 4294967296.0);
}

TEST(Histogram, ResetZeroesEverything) {
  Histogram h;
  h.record(10.0);
  h.record(1e18);
  h.reset();
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileIsMonotoneInQ) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  double prev = 0.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

// ---- JSON helpers ---------------------------------------------------------

TEST(Json, QuoteEscapes) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(json_quote("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(json_quote("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(json_quote(std::string("a\x01") + "b"), "\"a\\u0001b\"");
  EXPECT_EQ(json_quote(std::string(1, '\x1f')), "\"\\u001f\"");
  EXPECT_EQ(json_quote(std::string(1, '\0')), "\"\\u0000\"");
  // 0x20 is the first character that passes through unescaped.
  EXPECT_EQ(json_quote(" "), "\" \"");
}

TEST(Json, NumberRoundTripsAndMapsNonFiniteToNull) {
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(3.0), "3");
  // NaN/inf have no JSON encoding; null reads as a gap, never a forged zero.
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(Json, ObjectBuilder) {
  const auto s = JsonObject()
                     .field_str("a", "x")
                     .field_num("b", 1.5)
                     .field_int("c", -2)
                     .field_uint("d", 3)
                     .field_bool("e", true)
                     .field_raw("f", "[1, 2]")
                     .str();
  EXPECT_EQ(s,
            "{\"a\": \"x\", \"b\": 1.5, \"c\": -2, \"d\": 3, "
            "\"e\": true, \"f\": [1, 2]}");
  EXPECT_EQ(JsonObject().str(), "{}");
}

// ---- MetricsRegistry ------------------------------------------------------

TEST(MetricsRegistry, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.counter("t.count").add(3);
  registry.counter("t.count").add();
  registry.gauge("t.gamma").set(0.25);
  registry.histogram("t.lat").record(100.0);

  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].first, "t.count");
  EXPECT_EQ(snap.counters[0].second, 4u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, 0.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].p50, 128.0);
}

TEST(MetricsRegistry, ReferencesAreStableAcrossRegistrations) {
  MetricsRegistry registry;
  Counter& first = registry.counter("stable.a");
  // Force more registrations; node-based storage must not move `first`.
  for (int i = 0; i < 100; ++i) {
    registry.counter("stable.fill." + std::to_string(i));
  }
  EXPECT_EQ(&first, &registry.counter("stable.a"));
  first.add(7);
  EXPECT_EQ(registry.counter("stable.a").value(), 7u);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("z.last").add();
  registry.counter("a.first").add();
  registry.counter("m.middle").add();
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "m.middle");
  EXPECT_EQ(snap.counters[2].first, "z.last");
}

TEST(MetricsRegistry, ConcurrentCountingLosesNothing) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("race");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, TextAndJsonlExporters) {
  MetricsRegistry registry;
  registry.counter("c").add(2);
  registry.gauge("g").set(1.5);
  registry.histogram("h").record(3.0);

  const auto text = registry.to_text();
  EXPECT_NE(text.find("counter c 2"), std::string::npos);
  EXPECT_NE(text.find("gauge g 1.5"), std::string::npos);
  EXPECT_NE(text.find("histogram h count=1"), std::string::npos);

  std::ostringstream out;
  registry.write_jsonl(out);
  const auto jsonl = out.str();
  EXPECT_NE(
      jsonl.find(
          "{\"type\": \"counter\", \"name\": \"c\", \"value\": 2}"),
      std::string::npos);
  EXPECT_NE(jsonl.find("\"type\": \"gauge\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\": \"histogram\""), std::string::npos);
}

TEST(MetricsRegistry, JsonlExportIsSortedByNameRegardlessOfRegistration) {
  MetricsRegistry registry;
  registry.gauge("z.gauge").set(1.0);
  registry.gauge("a.gauge").set(2.0);
  registry.counter("z.count").add();
  registry.counter("a.count").add();
  std::ostringstream out;
  registry.write_jsonl(out);
  const auto jsonl = out.str();
  // Counters then gauges, each block sorted by name — byte-identical output
  // for identical runs, so run reports diff cleanly.
  EXPECT_LT(jsonl.find("\"a.count\""), jsonl.find("\"z.count\""));
  EXPECT_LT(jsonl.find("\"z.count\""), jsonl.find("\"a.gauge\""));
  EXPECT_LT(jsonl.find("\"a.gauge\""), jsonl.find("\"z.gauge\""));
}

TEST(MetricsRegistry, ResetZeroesButKeepsNames) {
  MetricsRegistry registry;
  registry.counter("c").add(5);
  registry.gauge("g").set(2.0);
  registry.histogram("h").record(10.0);
  registry.reset();
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].second, 0u);
  EXPECT_EQ(snap.gauges[0].second, 0.0);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

// ---- Tracer ---------------------------------------------------------------

// The tracer is process-global; every test starts from a clean, disabled
// state and leaves it that way.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(false);
    reset_trace();
  }
  void TearDown() override {
    set_trace_enabled(false);
    reset_trace();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  const auto before = trace_events_recorded();
  {
    TraceSpan span("noop/span");
    trace_instant("noop/instant");
    trace_complete("noop/complete", 0.0, 1.0);
  }
  EXPECT_EQ(trace_events_recorded(), before);
}

TEST_F(TraceTest, SpanDisarmedAtConstructionStaysDisarmed) {
  const auto before = trace_events_recorded();
  {
    TraceSpan span("late/enable");
    set_trace_enabled(true);  // too late for this span
  }
  EXPECT_EQ(trace_events_recorded(), before);
}

TEST_F(TraceTest, SpansAndInstantsExportAsChromeTrace) {
  set_trace_enabled(true);
  { TraceSpan span("unit/span", kCurrentThread, 42); }
  trace_instant("unit/instant", 7, 3);
  set_trace_enabled(false);

  EXPECT_EQ(trace_events_recorded(), 2u);
  EXPECT_EQ(trace_events_dropped(), 0u);
  const auto json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit/span\", \"ph\": \"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"v\": 42}"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"unit/instant\", \"ph\": \"i\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tid\": 7"), std::string::npos);
}

TEST_F(TraceTest, TrackNamesAndMetadataExport) {
  set_track_name(55, "unit/track");
  set_trace_metadata("unit_key", "unit_value");
  EXPECT_EQ(trace_metadata("unit_key"), "unit_value");
  EXPECT_EQ(trace_metadata("missing_key"), "");
  const auto json = chrome_trace_json();
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"name\": \"unit/track\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"unit_key\": \"unit_value\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_events\": 0"), std::string::npos);
}

TEST_F(TraceTest, RingWrapCountsDropped) {
  set_trace_enabled(true);
  constexpr std::uint64_t kOver = 100;
  const std::uint64_t total = (std::uint64_t{1} << 15) + kOver;
  for (std::uint64_t i = 0; i < total; ++i) trace_instant("wrap/event");
  set_trace_enabled(false);
  EXPECT_EQ(trace_events_recorded(), total);
  EXPECT_EQ(trace_events_dropped(), kOver);
  // The export still succeeds and reports the drop count.
  const auto json = chrome_trace_json();
  EXPECT_NE(json.find("\"dropped_events\": 100"), std::string::npos);
}

TEST_F(TraceTest, FlowEventsExportAsChromeFlowPairs) {
  set_trace_enabled(true);
  trace_complete("flow/producer", 0.0, 10.0, 3);
  trace_flow_begin("flow/test", 77, 3);
  trace_complete("flow/consumer", 20.0, 10.0, 4);
  trace_flow_end("flow/test", 77, 4);
  set_trace_enabled(false);

  EXPECT_EQ(trace_events_recorded(), 4u);
  const auto json = chrome_trace_json();
  // Begin half: ph "s", flow category, the shared id, no "bp".
  EXPECT_NE(json.find("\"name\": \"flow/test\", \"cat\": \"flow\", "
                      "\"ph\": \"s\""),
            std::string::npos);
  // End half binds to the enclosing slice ("bp": "e") with the same id.
  EXPECT_NE(json.find("\"ph\": \"f\", \"bp\": \"e\""), std::string::npos);
  EXPECT_NE(json.find("\"id\": 77"), std::string::npos);
}

TEST_F(TraceTest, FlowEventsRespectEnablement) {
  const auto before = trace_events_recorded();
  trace_flow_begin("flow/off", 1);
  trace_flow_end("flow/off", 1);
  EXPECT_EQ(trace_events_recorded(), before);
}

TEST_F(TraceTest, TraceRecordsMirrorsTheExport) {
  set_trace_enabled(true);
  set_track_name(9, "unit/worker 0");
  trace_complete("rec/span", 5.0, 2.5, 9, 4);
  trace_instant("rec/instant", 9);
  trace_flow_begin("rec/flow", 123, 9);
  set_trace_enabled(false);

  const auto records = trace_records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].name, "rec/span");
  EXPECT_EQ(records[0].phase, 'X');
  EXPECT_EQ(records[0].ts_us, 5.0);
  EXPECT_EQ(records[0].dur_us, 2.5);
  EXPECT_EQ(records[0].track, 9);
  EXPECT_EQ(records[0].arg, 4);
  EXPECT_EQ(records[1].phase, 'i');
  EXPECT_EQ(records[2].phase, 's');
  EXPECT_EQ(records[2].flow_id, 123u);
  const auto names = trace_track_names();
  ASSERT_EQ(names.count(9), 1u);
  EXPECT_EQ(names.at(9), "unit/worker 0");
}

TEST_F(TraceTest, SpanDurationIsNonNegativeAndOrdered) {
  set_trace_enabled(true);
  const double before = trace_now_us();
  { TraceSpan span("order/span"); }
  const double after = trace_now_us();
  set_trace_enabled(false);
  EXPECT_LE(before, after);
  EXPECT_EQ(trace_events_recorded(), 1u);
}

// ---- Build info -----------------------------------------------------------

TEST(BuildInfo, FieldsAreNonEmpty) {
  const auto info = build_info();
  EXPECT_NE(info.git_sha, nullptr);
  EXPECT_NE(info.compiler, nullptr);
  EXPECT_NE(info.build_type, nullptr);
  EXPECT_GT(std::string(info.git_sha).size(), 0u);
  EXPECT_GT(std::string(info.compiler).size(), 0u);
}

}  // namespace
}  // namespace tpa::obs
