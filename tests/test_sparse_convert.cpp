// Format conversions: COO -> CSR/CSC, CSR <-> CSC, transpose, densify —
// including randomized property sweeps.
#include <gtest/gtest.h>

#include <tuple>

#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace tpa::sparse {
namespace {

CooBuilder random_coo(Index rows, Index cols, double density,
                      util::Rng& rng) {
  CooBuilder coo(rows, cols);
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      if (rng.bernoulli(density)) {
        coo.add(r, c, static_cast<Value>(rng.normal()));
      }
    }
  }
  return coo;
}

TEST(Convert, CooToCsrPreservesEntries) {
  CooBuilder coo(2, 3);
  coo.add(1, 2, 4.0F);
  coo.add(0, 0, 1.0F);
  coo.add(1, 0, 3.0F);
  const auto csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 3u);
  EXPECT_EQ(csr.at(0, 0), 1.0F);
  EXPECT_EQ(csr.at(1, 0), 3.0F);
  EXPECT_EQ(csr.at(1, 2), 4.0F);
  EXPECT_EQ(csr.at(0, 1), 0.0F);
}

TEST(Convert, CooToCsrSumsDuplicates) {
  CooBuilder coo(1, 1);
  coo.add(0, 0, 1.5F);
  coo.add(0, 0, 2.5F);
  const auto csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 1u);
  EXPECT_EQ(csr.at(0, 0), 4.0F);
}

TEST(Convert, CooToCscMatchesCooToCsr) {
  util::Rng rng(5);
  const auto coo = random_coo(8, 13, 0.3, rng);
  const auto csr = coo_to_csr(coo);
  const auto csc = coo_to_csc(coo);
  for (Index r = 0; r < 8; ++r) {
    for (Index c = 0; c < 13; ++c) {
      EXPECT_EQ(csr.at(r, c), csc.at(r, c)) << r << "," << c;
    }
  }
}

TEST(Convert, EmptyMatrixRoundTrips) {
  CooBuilder coo(4, 5);
  const auto csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 0u);
  const auto csc = csr_to_csc(csr);
  EXPECT_EQ(csc.nnz(), 0u);
  EXPECT_EQ(csc.rows(), 4u);
  EXPECT_EQ(csc.cols(), 5u);
  const auto back = csc_to_csr(csc);
  EXPECT_EQ(back.rows(), 4u);
  EXPECT_EQ(back.nnz(), 0u);
}

TEST(Convert, TransposeSwapsDimsAndEntries) {
  CooBuilder coo(2, 3);
  coo.add(0, 2, 7.0F);
  coo.add(1, 0, -2.0F);
  const auto csr = coo_to_csr(coo);
  const auto t = transpose(csr);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t.at(2, 0), 7.0F);
  EXPECT_EQ(t.at(0, 1), -2.0F);
}

TEST(Convert, DenseMatchesPointLookups) {
  util::Rng rng(6);
  const auto csr = coo_to_csr(random_coo(5, 7, 0.4, rng));
  const auto dense = to_dense(csr);
  for (Index r = 0; r < 5; ++r) {
    for (Index c = 0; c < 7; ++c) {
      EXPECT_DOUBLE_EQ(dense[r * 7 + c],
                       static_cast<double>(csr.at(r, c)));
    }
  }
}

TEST(Convert, DenseRefusesHugeMatrices) {
  const CsrMatrix wide(1, 1u << 30, {0, 0}, {}, {});
  EXPECT_THROW(to_dense(wide), std::length_error);
}

class ConvertRoundTrip
    : public ::testing::TestWithParam<
          std::tuple<Index, Index, double, std::uint64_t>> {};

TEST_P(ConvertRoundTrip, CsrCscRoundTripIsIdentity) {
  const auto [rows, cols, density, seed] = GetParam();
  util::Rng rng(seed);
  const auto original = coo_to_csr(random_coo(rows, cols, density, rng));
  const auto round_tripped = csc_to_csr(csr_to_csc(original));
  ASSERT_EQ(round_tripped.rows(), original.rows());
  ASSERT_EQ(round_tripped.cols(), original.cols());
  ASSERT_EQ(round_tripped.nnz(), original.nnz());
  EXPECT_EQ(round_tripped.row_offsets().size(),
            original.row_offsets().size());
  for (Index r = 0; r < rows; ++r) {
    const auto a = original.row(r);
    const auto b = round_tripped.row(r);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t k = 0; k < a.nnz(); ++k) {
      EXPECT_EQ(a.indices[k], b.indices[k]);
      EXPECT_EQ(a.values[k], b.values[k]);
    }
  }
}

TEST_P(ConvertRoundTrip, DoubleTransposeIsIdentity) {
  const auto [rows, cols, density, seed] = GetParam();
  util::Rng rng(seed + 1000);
  const auto original = coo_to_csr(random_coo(rows, cols, density, rng));
  const auto twice = transpose(transpose(original));
  ASSERT_EQ(twice.rows(), original.rows());
  ASSERT_EQ(twice.cols(), original.cols());
  for (Index r = 0; r < rows; ++r) {
    const auto a = original.row(r);
    const auto b = twice.row(r);
    ASSERT_EQ(a.nnz(), b.nnz());
    for (std::size_t k = 0; k < a.nnz(); ++k) {
      EXPECT_EQ(a.indices[k], b.indices[k]);
      EXPECT_EQ(a.values[k], b.values[k]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvertRoundTrip,
    ::testing::Values(std::make_tuple(1u, 1u, 1.0, 1ULL),
                      std::make_tuple(16u, 16u, 0.2, 2ULL),
                      std::make_tuple(1u, 64u, 0.5, 3ULL),
                      std::make_tuple(64u, 1u, 0.5, 4ULL),
                      std::make_tuple(31u, 17u, 0.05, 5ULL),
                      std::make_tuple(10u, 10u, 0.0, 6ULL)));

}  // namespace
}  // namespace tpa::sparse
