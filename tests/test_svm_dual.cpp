// SVM / SDCA extension: duality gap closure, box feasibility, margin
// behaviour, and async-window execution.
#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "core/svm_dual.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace tpa::core {
namespace {

data::Dataset sign_labelled_corpus(data::Index examples,
                                   data::Index features) {
  data::WebspamLikeConfig config;
  config.num_examples = examples;
  config.num_features = features;
  config.noise_sigma = 0.02;
  auto corpus = data::make_webspam_like(config);
  std::vector<float> signs(corpus.labels().begin(), corpus.labels().end());
  for (auto& y : signs) y = y >= 0.0F ? 1.0F : -1.0F;
  return data::Dataset("svm_corpus", corpus.by_row(), std::move(signs));
}

const data::Dataset& corpus() {
  static const data::Dataset d = sign_labelled_corpus(512, 256);
  return d;
}

TEST(SvmProblem, RejectsBadInputs) {
  EXPECT_THROW(SvmProblem(corpus(), 0.0), std::invalid_argument);
  data::DenseGaussianConfig config;
  config.num_examples = 8;
  config.num_features = 4;
  const auto real_labels = data::make_dense_gaussian(config);
  EXPECT_THROW(SvmProblem(real_labels, 0.1), std::invalid_argument);
}

TEST(SvmProblem, GapIsNonNegativeFromTheStart) {
  const SvmProblem problem(corpus(), 1e-2);
  const std::vector<float> alpha(problem.num_examples(), 0.0F);
  const std::vector<float> v(problem.num_features(), 0.0F);
  // At alpha = 0, v = 0: P = 1 (all hinge losses active), D = 0.
  EXPECT_NEAR(problem.duality_gap(alpha, v), 1.0, 1e-6);
}

TEST(SvmDualSolver, GapShrinksTowardsZero) {
  const SvmProblem problem(corpus(), 1e-2);
  SvmDualSolver solver(problem, 1);
  const double initial = solver.duality_gap();
  for (int epoch = 0; epoch < 60; ++epoch) solver.run_epoch();
  EXPECT_GE(solver.duality_gap(), -1e-6);
  EXPECT_LT(solver.duality_gap(), initial * 0.02);
}

TEST(SvmDualSolver, AlphaStaysInBox) {
  const SvmProblem problem(corpus(), 1e-3);
  SvmDualSolver solver(problem, 2);
  for (int epoch = 0; epoch < 20; ++epoch) {
    solver.run_epoch();
    EXPECT_TRUE(solver.alpha_in_box());
  }
}

TEST(SvmDualSolver, WeightsStayConsistentWithAlpha) {
  const SvmProblem problem(corpus(), 1e-2);
  SvmDualSolver solver(problem, 3);
  for (int epoch = 0; epoch < 10; ++epoch) solver.run_epoch();
  // v == 1/(lambda N) * sum_n alpha_n y_n x_n up to float rounding.
  const auto n = static_cast<double>(problem.num_examples());
  std::vector<float> scaled(problem.num_examples());
  for (data::Index i = 0; i < problem.num_examples(); ++i) {
    scaled[i] = static_cast<float>(solver.alpha()[i] *
                                   corpus().labels()[i] /
                                   (problem.lambda() * n));
  }
  const auto expected =
      linalg::csr_matvec_transposed(corpus().by_row(), scaled);
  for (std::size_t m = 0; m < expected.size(); ++m) {
    EXPECT_NEAR(solver.weights()[m], expected[m], 1e-3);
  }
}

TEST(SvmDualSolver, LearnsToClassifyTheTrainingSet) {
  const SvmProblem problem(corpus(), 1e-3);
  SvmDualSolver solver(problem, 4);
  for (int epoch = 0; epoch < 40; ++epoch) solver.run_epoch();
  const auto predictions = predict(corpus(), solver.weights());
  EXPECT_GT(sign_accuracy(predictions, corpus().labels()), 0.9);
}

TEST(SvmDualSolver, AsyncWindowMatchesSequentialQuality) {
  const SvmProblem problem(corpus(), 1e-2);
  SvmDualSolver sequential(problem, 5, 1);
  SvmDualSolver async(problem, 5, 48);  // TPA-style execution
  for (int epoch = 0; epoch < 40; ++epoch) {
    sequential.run_epoch();
    async.run_epoch();
  }
  EXPECT_TRUE(async.alpha_in_box(1e-4));
  EXPECT_NEAR(async.duality_gap(), sequential.duality_gap(), 5e-3);
}

TEST(SvmDualSolver, StrongerRegularisationShrinksWeights) {
  const SvmProblem weak(corpus(), 1e-3);
  const SvmProblem strong(corpus(), 1.0);
  SvmDualSolver weak_solver(weak, 6);
  SvmDualSolver strong_solver(strong, 6);
  for (int epoch = 0; epoch < 20; ++epoch) {
    weak_solver.run_epoch();
    strong_solver.run_epoch();
  }
  EXPECT_LT(linalg::squared_norm(std::span<const float>(
                strong_solver.weights())),
            linalg::squared_norm(std::span<const float>(
                weak_solver.weights())));
}

TEST(SvmDualSolver, EpochReportsWork) {
  const SvmProblem problem(corpus(), 1e-2);
  SvmDualSolver solver(problem, 7);
  const auto report = solver.run_epoch();
  EXPECT_EQ(report.coordinate_updates, problem.num_examples());
  EXPECT_GT(report.sim_seconds, 0.0);
}

}  // namespace
}  // namespace tpa::core
