// Solver behaviour: sequential SCD, the asynchronous CPU solvers (atomic
// preserves optimality, wild violates it), real-threaded variants, the
// factory, and parameterized convergence sweeps across formulations.
#include <gtest/gtest.h>

#include <cmath>

#include "core/async_scd.hpp"
#include "core/convergence.hpp"
#include "core/seq_scd.hpp"
#include "core/solver_factory.hpp"
#include "core/threaded_scd.hpp"
#include "data/generators.hpp"

namespace tpa::core {
namespace {

const data::Dataset& webspam_small() {
  static const data::Dataset dataset = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 4096;
    config.num_features = 8192;
    return data::make_webspam_like(config);
  }();
  return dataset;
}

TEST(SeqScd, ReportsWorkPerEpoch) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  SeqScdSolver solver(problem, Formulation::kPrimal, 1);
  const auto report = solver.run_epoch();
  EXPECT_EQ(report.coordinate_updates, problem.num_features());
  EXPECT_GT(report.sim_seconds, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(SeqScd, DeterministicAcrossIdenticalRuns) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  SeqScdSolver a(problem, Formulation::kDual, 42);
  SeqScdSolver b(problem, Formulation::kDual, 42);
  for (int epoch = 0; epoch < 3; ++epoch) {
    a.run_epoch();
    b.run_epoch();
  }
  EXPECT_EQ(a.state().weights, b.state().weights);
}

TEST(SeqScd, SeedChangesVisitOrderButNotOptimum) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  SeqScdSolver a(problem, Formulation::kDual, 1);
  SeqScdSolver b(problem, Formulation::kDual, 2);
  a.run_epoch();
  b.run_epoch();
  EXPECT_NE(a.state().weights, b.state().weights);
  for (int epoch = 0; epoch < 30; ++epoch) {
    a.run_epoch();
    b.run_epoch();
  }
  EXPECT_NEAR(a.duality_gap(problem), b.duality_gap(problem), 1e-5);
}

TEST(AScd, MatchesSequentialConvergencePerEpoch) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  SeqScdSolver seq(problem, Formulation::kDual, 7);
  AScdSolver ascd(problem, Formulation::kDual, 16, 7);
  for (int epoch = 0; epoch < 6; ++epoch) {
    seq.run_epoch();
    ascd.run_epoch();
  }
  const double seq_gap = seq.duality_gap(problem);
  const double ascd_gap = ascd.duality_gap(problem);
  // "Exactly the same convergence properties as a function of epochs"
  // (paper Sect. III.D) — same order of magnitude at every stage.
  EXPECT_LT(ascd_gap, seq_gap * 10.0);
  EXPECT_GT(ascd_gap, seq_gap / 10.0);
  EXPECT_EQ(ascd.total_lost_updates(), 0u);
}

TEST(AScd, SimulatedTimeIsFasterThanSequential) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  SeqScdSolver seq(problem, Formulation::kDual, 7);
  AScdSolver ascd(problem, Formulation::kDual, 16, 7);
  const double seq_time = seq.run_epoch().sim_seconds;
  const double ascd_time = ascd.run_epoch().sim_seconds;
  EXPECT_NEAR(seq_time / ascd_time, 2.0, 0.2);  // paper's 2x at 16 threads
}

TEST(PasscodeWild, LosesUpdatesAndViolatesOptimality) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  PasscodeWildSolver wild(problem, Formulation::kDual, 16, 7);
  ConvergenceTrace trace;
  for (int epoch = 0; epoch < 12; ++epoch) wild.run_epoch();
  EXPECT_GT(wild.total_lost_updates(), 0u);
  // The shared vector drifts away from A^T alpha: optimality (eqs. 5/6)
  // cannot hold, so the duality gap floors well above the atomic solvers'.
  EXPECT_GT(wild.state().shared_inconsistency(problem), 1e-4);
  SeqScdSolver seq(problem, Formulation::kDual, 7);
  for (int epoch = 0; epoch < 12; ++epoch) seq.run_epoch();
  EXPECT_GT(wild.duality_gap(problem), 100.0 * seq.duality_gap(problem));
}

TEST(PasscodeWild, IsChargedFasterThanAtomic) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  AScdSolver ascd(problem, Formulation::kDual, 16, 7);
  PasscodeWildSolver wild(problem, Formulation::kDual, 16, 7);
  EXPECT_NEAR(ascd.run_epoch().sim_seconds /
                  wild.run_epoch().sim_seconds,
              2.0, 0.2);  // 4x wild vs 2x atomic
}

TEST(AsyncScd, RejectsNonPositiveThreads) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  EXPECT_THROW(AScdSolver(problem, Formulation::kDual, 0, 1),
               std::invalid_argument);
}

TEST(ThreadedScd, AtomicVariantConverges) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  ThreadedScdSolver solver(problem, Formulation::kDual, 4,
                           CommitPolicy::kAtomicAdd, 7);
  for (int epoch = 0; epoch < 8; ++epoch) solver.run_epoch();
  EXPECT_LT(solver.duality_gap(problem), 1e-4);
}

TEST(ThreadedScd, SingleThreadMatchesSequentialClosely) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  ThreadedScdSolver threaded(problem, Formulation::kPrimal, 1,
                             CommitPolicy::kAtomicAdd, 7);
  SeqScdSolver seq(problem, Formulation::kPrimal, 7);
  for (int epoch = 0; epoch < 5; ++epoch) {
    threaded.run_epoch();
    seq.run_epoch();
  }
  // Same permutations (same seed), no concurrency: identical trajectories
  // up to atomic-add rounding.
  EXPECT_NEAR(threaded.duality_gap(problem), seq.duality_gap(problem),
              1e-6);
}

TEST(SolverFactory, BuildsEveryKind) {
  const RidgeProblem problem(webspam_small(), 1e-3);
  for (const auto kind :
       {SolverKind::kSequential, SolverKind::kAsyncAtomic,
        SolverKind::kAsyncWild, SolverKind::kAsyncReplicated,
        SolverKind::kThreadedAtomic, SolverKind::kThreadedWild,
        SolverKind::kThreadedReplicated, SolverKind::kTpaM4000,
        SolverKind::kTpaTitanX}) {
    SolverConfig config;
    config.kind = kind;
    config.threads = 4;
    const auto solver = make_solver(problem, config);
    ASSERT_NE(solver, nullptr);
    EXPECT_FALSE(solver->name().empty());
    EXPECT_EQ(solver->formulation(), Formulation::kPrimal);
  }
}

TEST(SolverFactory, ParseRoundTripsNames) {
  for (const auto kind :
       {SolverKind::kSequential, SolverKind::kAsyncAtomic,
        SolverKind::kAsyncWild, SolverKind::kAsyncReplicated,
        SolverKind::kThreadedAtomic, SolverKind::kThreadedWild,
        SolverKind::kThreadedReplicated, SolverKind::kTpaM4000,
        SolverKind::kTpaTitanX}) {
    EXPECT_EQ(parse_solver_kind(solver_kind_name(kind)), kind);
  }
  EXPECT_THROW(parse_solver_kind("nope"), std::invalid_argument);
}

class SolverConvergenceSweep
    : public ::testing::TestWithParam<std::tuple<Formulation, SolverKind>> {
};

// gap_every amortises the per-evaluation matrix pass: the trace holds only
// the evaluated epochs, but the final epoch is always evaluated, so the
// final gap of a subsampled run equals the every-epoch run exactly (the
// training trajectory never depends on when the gap is measured).
TEST(Convergence, GapEverySubsamplesTraceButFinalGapMatches) {
  const RidgeProblem problem(webspam_small(), 1e-3);

  SeqScdSolver every(problem, Formulation::kDual, 7);
  RunOptions every_options;
  every_options.max_epochs = 12;
  const auto every_trace = run_solver(every, problem, every_options);
  ASSERT_EQ(every_trace.points().size(), 12u);

  SeqScdSolver sub(problem, Formulation::kDual, 7);
  RunOptions sub_options;
  sub_options.max_epochs = 12;
  sub_options.gap_every = 5;
  EXPECT_EQ(effective_gap_interval(sub_options), 5);
  const auto sub_trace = run_solver(sub, problem, sub_options);

  // Evaluated epochs: 5, 10 and the always-evaluated final epoch 12.
  ASSERT_EQ(sub_trace.points().size(), 3u);
  EXPECT_EQ(sub_trace.points()[0].epoch, 5);
  EXPECT_EQ(sub_trace.points()[1].epoch, 10);
  EXPECT_EQ(sub_trace.points()[2].epoch, 12);
  EXPECT_DOUBLE_EQ(sub_trace.final_gap(), every_trace.final_gap());

  // Intermediate evaluations agree with the every-epoch trace too.
  EXPECT_DOUBLE_EQ(sub_trace.points()[0].gap, every_trace.points()[4].gap);
  EXPECT_DOUBLE_EQ(sub_trace.points()[1].gap, every_trace.points()[9].gap);
}

// Pooled gap evaluation (gap_threads > 1) changes only how the gap sum is
// chunked, never the training trajectory; values stay within the DESIGN.md
// §9 reduction tolerance of the serial evaluation.
TEST(Convergence, GapThreadsMatchesSerialEvaluation) {
  const RidgeProblem problem(webspam_small(), 1e-3);

  SeqScdSolver serial(problem, Formulation::kDual, 7);
  RunOptions serial_options;
  serial_options.max_epochs = 6;
  const auto serial_trace = run_solver(serial, problem, serial_options);

  SeqScdSolver pooled(problem, Formulation::kDual, 7);
  RunOptions pooled_options;
  pooled_options.max_epochs = 6;
  pooled_options.gap_threads = 4;
  const auto pooled_trace = run_solver(pooled, problem, pooled_options);

  ASSERT_EQ(pooled_trace.points().size(), serial_trace.points().size());
  for (std::size_t i = 0; i < serial_trace.points().size(); ++i) {
    EXPECT_NEAR(pooled_trace.points()[i].gap, serial_trace.points()[i].gap,
                1e-9 * (1.0 + std::abs(serial_trace.points()[i].gap)));
  }
}

TEST_P(SolverConvergenceSweep, ReachesSmallGap) {
  const auto [formulation, kind] = GetParam();
  const RidgeProblem problem(webspam_small(), 1e-3);
  SolverConfig config;
  config.kind = kind;
  config.formulation = formulation;
  config.threads = 8;
  const auto solver = make_solver(problem, config);
  RunOptions options;
  options.max_epochs = 60;
  options.target_gap = 1e-5;
  const auto trace = run_solver(*solver, problem, options);
  EXPECT_LE(trace.final_gap(), 1e-5)
      << solver->name() << " on " << formulation_name(formulation);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolverConvergenceSweep,
    ::testing::Combine(::testing::Values(Formulation::kPrimal,
                                         Formulation::kDual),
                       ::testing::Values(SolverKind::kSequential,
                                         SolverKind::kAsyncAtomic,
                                         SolverKind::kTpaM4000,
                                         SolverKind::kTpaTitanX)),
    [](const auto& info) {
      std::string name = formulation_name(std::get<0>(info.param));
      name += "_";
      for (const char* p = solver_kind_name(std::get<1>(info.param));
           *p != '\0'; ++p) {
        name += *p == '-' ? '_' : *p;
      }
      return name;
    });

}  // namespace
}  // namespace tpa::core
