// The GPU substrate: device specs, block-level execution semantics, memory
// accounting, PCIe and epoch timing models.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gpusim/block_context.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_memory.hpp"
#include "gpusim/timing_model.hpp"

namespace tpa::gpusim {
namespace {

TEST(DeviceSpec, PresetsMatchPublishedSpecs) {
  const auto m4000 = DeviceSpec::quadro_m4000();
  EXPECT_EQ(m4000.num_sms, 13);
  EXPECT_EQ(m4000.mem_capacity_bytes, 8ULL << 30);
  const auto titan = DeviceSpec::titan_x();
  EXPECT_EQ(titan.num_sms, 24);
  EXPECT_EQ(titan.mem_capacity_bytes, 12ULL << 30);
  EXPECT_GT(titan.fp32_tflops, m4000.fp32_tflops);
  EXPECT_GT(titan.mem_bandwidth_gbps, m4000.mem_bandwidth_gbps);
}

TEST(DeviceSpec, ResidencyAndStalenessScaleWithSms) {
  const auto titan = DeviceSpec::titan_x();
  EXPECT_EQ(titan.resident_blocks(), 24 * 16);
  EXPECT_EQ(titan.async_staleness(), 48);
  EXPECT_LT(titan.async_staleness(), titan.resident_blocks());
}

TEST(DeviceSpec, FitsChecksCapacity) {
  const auto titan = DeviceSpec::titan_x();
  EXPECT_TRUE(titan.fits(1ULL << 30));
  EXPECT_TRUE(titan.fits(titan.mem_capacity_bytes));
  EXPECT_FALSE(titan.fits(titan.mem_capacity_bytes + 1));
  // The paper's motivating case: 40 GB criteo does not fit, 8 GB webspam
  // does (just) on the M4000.
  EXPECT_FALSE(titan.fits(40ULL << 30));
  EXPECT_TRUE(DeviceSpec::quadro_m4000().fits(
      static_cast<std::size_t>(7.3 * (1ULL << 30))));
}

TEST(PcieLink, PinnedBeatsPageableAndScalesWithBytes) {
  const PcieLink link;
  EXPECT_LT(link.transfer_seconds(1 << 20, true),
            link.transfer_seconds(1 << 20, false));
  EXPECT_LT(link.transfer_seconds(1 << 20, true),
            link.transfer_seconds(1 << 21, true));
  // Latency floor: even zero bytes cost the link latency.
  EXPECT_GE(link.transfer_seconds(0, true), link.latency_s);
}

TEST(BlockContext, RejectsNonPowerOfTwoThreads) {
  EXPECT_THROW(BlockContext(0), std::invalid_argument);
  EXPECT_THROW(BlockContext(-4), std::invalid_argument);
  EXPECT_THROW(BlockContext(96), std::invalid_argument);
  EXPECT_NO_THROW(BlockContext(1));
  EXPECT_NO_THROW(BlockContext(128));
}

TEST(BlockContext, ReduceMatchesExactSumOnIntegers) {
  BlockContext block(8);
  // Integer-valued floats add exactly in any order.
  const double sum = block.strided_reduce(
      100, [](std::size_t i) { return static_cast<float>(i); });
  EXPECT_EQ(sum, 99.0 * 100.0 / 2.0);
}

TEST(BlockContext, ReduceCloseToDoubleReference) {
  BlockContext block(128);
  std::vector<float> terms(10000);
  for (std::size_t i = 0; i < terms.size(); ++i) {
    terms[i] = std::sin(static_cast<double>(i)) * 0.01F;
  }
  double reference = 0.0;
  for (const auto t : terms) reference += t;
  const double gpu_sum = block.strided_reduce(
      terms.size(), [&](std::size_t i) { return terms[i]; });
  EXPECT_NEAR(gpu_sum, reference, 1e-3);
  // ...but the float tree order generally differs from sequential float
  // accumulation — that difference is what the simulator preserves.
}

TEST(BlockContext, ReduceUsesGpuTreeOrder) {
  // With 2 threads and 3 terms: t0 sums idx 0,2; t1 sums idx 1; then
  // cache[0] += cache[1].  Choose values where that order is observable in
  // float: (a+c)+b differs from a+b+c when magnitudes differ wildly.
  BlockContext block(2);
  const float values[3] = {1e8F, 1.0F, -1e8F};
  const double gpu_sum = block.strided_reduce(
      3, [&](std::size_t i) { return values[i]; });
  // Tree order: (1e8 + -1e8) + 1 = 1.  Sequential float order:
  // (1e8 + 1) + -1e8 = 0 (the 1 is absorbed).
  EXPECT_EQ(gpu_sum, 1.0);
  float sequential = 0.0F;
  for (const auto v : values) sequential += v;
  EXPECT_EQ(sequential, 0.0F);
}

TEST(BlockContext, ReduceOfNothingIsZero) {
  BlockContext block(32);
  EXPECT_EQ(block.strided_reduce(0, [](std::size_t) { return 1.0F; }), 0.0);
}

TEST(BlockContext, StridedForEachVisitsEveryIndexOnce) {
  BlockContext block(4);
  std::vector<int> hits(19, 0);
  block.strided_for_each(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto h : hits) EXPECT_EQ(h, 1);
}

TEST(DeviceMemory, TracksAllocationsAndThrowsWhenFull) {
  DeviceMemory memory(DeviceSpec::titan_x());
  EXPECT_EQ(memory.allocated(), 0u);
  memory.allocate(1ULL << 30);
  EXPECT_EQ(memory.allocated(), 1ULL << 30);
  EXPECT_EQ(memory.available(), memory.capacity() - (1ULL << 30));
  EXPECT_THROW(memory.allocate(memory.capacity()), OutOfDeviceMemory);
  memory.release(1ULL << 30);
  EXPECT_EQ(memory.allocated(), 0u);
}

TEST(DeviceMemory, ReleaseClampsAtZero) {
  DeviceMemory memory(DeviceSpec::quadro_m4000());
  memory.allocate(100);
  memory.release(1000);
  EXPECT_EQ(memory.allocated(), 0u);
}

TEST(DeviceMemory, ErrorMessageNamesDevice) {
  DeviceMemory memory(DeviceSpec::titan_x());
  try {
    memory.allocate(memory.capacity() + 1);
    FAIL() << "expected OutOfDeviceMemory";
  } catch (const OutOfDeviceMemory& e) {
    EXPECT_NE(std::string(e.what()).find("Titan X"), std::string::npos);
  }
}

TEST(TimingModel, LinearInNnz) {
  const GpuTimingModel model(DeviceSpec::titan_x());
  EpochWorkload small{1'000'000, 1000, 100'000};
  EpochWorkload big = small;
  big.nnz *= 10;
  EXPECT_GT(model.epoch_seconds(big), 5.0 * model.epoch_seconds(small));
}

TEST(TimingModel, SharedVectorInL2IsFaster) {
  const GpuTimingModel model(DeviceSpec::quadro_m4000());
  EpochWorkload fits{500'000'000, 100'000, 250'000};   // 1 MB shared: in L2
  EpochWorkload spills = fits;
  spills.shared_dim = 2'000'000;                       // 8 MB: DRAM
  EXPECT_LT(model.epoch_seconds(fits), model.epoch_seconds(spills));
}

TEST(TimingModel, BlockOverheadGrowsWithCoordinateCount) {
  const GpuTimingModel model(DeviceSpec::titan_x());
  EpochWorkload few{100'000'000, 100'000, 1'000'000};
  EpochWorkload many = few;
  many.num_coordinates = 50'000'000;  // criteo-style tiny rows
  EXPECT_GT(model.epoch_seconds(many), model.epoch_seconds(few));
}

TEST(TimingModel, TitanXBeatsM4000OnSameWorkload) {
  const EpochWorkload w{900'000'000, 262'938, 680'715};
  const GpuTimingModel titan(DeviceSpec::titan_x());
  const GpuTimingModel m4000(DeviceSpec::quadro_m4000());
  EXPECT_LT(titan.epoch_seconds(w), m4000.epoch_seconds(w));
}

TEST(TimingModel, ByteAndFlopAccounting) {
  const GpuTimingModel model(DeviceSpec::titan_x());
  const EpochWorkload w{100, 10, 50};
  EXPECT_EQ(model.matrix_bytes(w), 1600u);
  EXPECT_EQ(model.shared_vector_bytes(w), 1200u);
  EXPECT_EQ(model.epoch_bytes(w), 2800u);
  EXPECT_EQ(model.epoch_flops(w), 400u);
}

}  // namespace
}  // namespace tpa::gpusim
