// Heterogeneous placement layer (DESIGN.md §14): fleet specs, the round
// cost model with comm/compute overlap, the seeded annealer, and the wiring
// into both cluster drivers — including the bit-exactness guarantees
// (uniform fleet == legacy equal split; same placement seed == same run;
// checkpoint/resume preserves both).
#include "cluster/placement/annealer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/async_solver.hpp"
#include "cluster/dist_solver.hpp"
#include "cluster/placement/cost_model.hpp"
#include "cluster/placement/fleet.hpp"
#include "data/generators.hpp"

namespace tpa::cluster::placement {
namespace {

data::Dataset corpus() {
  data::WebspamLikeConfig config;
  config.num_examples = 240;
  config.num_features = 96;
  config.avg_nnz_per_row = 12.0;
  return data::make_webspam_like(config);
}

core::TimingWorkload paper_workload(const data::Dataset& dataset) {
  return core::TimingWorkload::for_dataset(dataset, core::Formulation::kDual);
}

PlacementCostModel imbalanced_model(const data::Dataset& dataset,
                                    CostOptions options = {}) {
  return PlacementCostModel(parse_fleet_spec("2xtitanx,2xcpu:4"),
                            dataset.num_examples(), paper_workload(dataset),
                            NetworkModel::pcie_peer(), options);
}

// ---- fleet specs ----------------------------------------------------------

TEST(FleetSpec, ParsesMixedFleet) {
  const auto fleet = parse_fleet_spec("4xtitanx,4xcpu:4");
  ASSERT_EQ(fleet.size(), 8u);
  for (int k = 0; k < 4; ++k) {
    EXPECT_TRUE(fleet[k].is_gpu());
    EXPECT_EQ(fleet[k].solver_kind(), core::SolverKind::kTpaTitanX);
  }
  for (int k = 4; k < 8; ++k) {
    EXPECT_FALSE(fleet[k].is_gpu());
    EXPECT_EQ(fleet[k].threads, 4);
    EXPECT_EQ(fleet[k].solver_kind(), core::SolverKind::kAsyncReplicated);
  }
  EXPECT_TRUE(fleet_has_gpu(fleet));
  EXPECT_EQ(fleet_summary(fleet), "4xtitanx + 4xcpu:4 (8 workers)");
}

TEST(FleetSpec, SingleThreadCpuRunsSequential) {
  const auto fleet = parse_fleet_spec("2xcpu");
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet[0].threads, 1);
  EXPECT_EQ(fleet[0].solver_kind(), core::SolverKind::kSequential);
  EXPECT_FALSE(fleet_has_gpu(fleet));
}

TEST(FleetSpec, ParsesM4000) {
  const auto fleet = parse_fleet_spec("1xm4000");
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet[0].solver_kind(), core::SolverKind::kTpaM4000);
}

TEST(FleetSpec, RejectsMalformedSpecs) {
  for (const char* bad : {"", "4x", "xcpu", "0xcpu", "-1xcpu", "4xcpu:0",
                          "4xcpu:-2", "4xwidget", "4titanx", "4xcpu:"}) {
    EXPECT_THROW(parse_fleet_spec(bad), std::invalid_argument) << bad;
  }
}

TEST(FleetSpec, SolverConfigKeepsBaseSeedAndMergeInterval) {
  core::SolverConfig base;
  base.seed = 4242;
  base.merge_every = 32;
  const auto cpu = DeviceSpec::cpu_pool(8).solver_config(base);
  EXPECT_EQ(cpu.kind, core::SolverKind::kAsyncReplicated);
  EXPECT_EQ(cpu.threads, 8);
  EXPECT_EQ(cpu.seed, 4242u);
  EXPECT_EQ(cpu.merge_every, 32);
  const auto gpu = DeviceSpec::titan_x().solver_config(base);
  EXPECT_EQ(gpu.kind, core::SolverKind::kTpaTitanX);
  EXPECT_EQ(gpu.seed, 4242u);
}

TEST(FleetSpec, GpuIsFasterThanCpuPoolOnPaperScaleWork) {
  const auto dataset = corpus();
  const auto w = paper_workload(dataset);
  EXPECT_LT(DeviceSpec::titan_x().epoch_seconds(w),
            DeviceSpec::cpu_pool(4).epoch_seconds(w));
}

// ---- uniform sizes --------------------------------------------------------

TEST(UniformSizes, MatchesTheRoundRobinDeal) {
  for (const auto& [n, workers] :
       {std::pair<Index, int>{10, 3}, {7, 7}, {64, 8}, {5, 2}, {1, 1}}) {
    const auto sizes = uniform_partition_sizes(n, workers);
    util::Rng rng(3);
    const auto partition = Partition::random(n, workers, rng);
    ASSERT_EQ(sizes.size(), partition.owned.size());
    Index total = 0;
    for (std::size_t k = 0; k < sizes.size(); ++k) {
      EXPECT_EQ(sizes[k], partition.owned[k].size()) << "worker " << k;
      total += sizes[k];
    }
    EXPECT_EQ(total, n);
  }
}

// ---- overlapped reduce ----------------------------------------------------

TEST(OverlappedReduce, SingleArrivalHasNoCollectiveCost) {
  const auto net = NetworkModel::pcie_peer();
  EXPECT_DOUBLE_EQ(overlapped_reduce_seconds({0.5}, 1 << 20, net), 0.5);
}

TEST(OverlappedReduce, EqualArrivalsFallBackToTheTree) {
  const auto net = NetworkModel::pcie_peer();
  const std::size_t bytes = 1 << 20;
  const std::vector<double> arrivals(8, 1.0);
  EXPECT_DOUBLE_EQ(overlapped_reduce_seconds(arrivals, bytes, net),
                   1.0 + net.reduce_seconds(bytes, 8));
}

TEST(OverlappedReduce, NeverSlowerThanWaitingForTheTree) {
  const auto net = NetworkModel::ethernet_10g();
  const std::size_t bytes = 4 << 20;
  const std::vector<double> arrivals{0.0, 0.01, 0.02, 0.5, 1.0, 5.0};
  const double overlapped = overlapped_reduce_seconds(arrivals, bytes, net);
  EXPECT_LE(overlapped, 5.0 + net.reduce_seconds(bytes, arrivals.size()));
}

TEST(OverlappedReduce, StaggeredArrivalsHideTransferTime) {
  // Deltas spaced wider than one p2p transfer: every ingest but the last is
  // hidden behind the next arrival, so the master finishes one transfer
  // after the last arrival — strictly better than the post-barrier tree.
  const auto net = NetworkModel::ethernet_10g();
  const std::size_t bytes = 16 << 20;
  const double step = net.point_to_point_seconds(bytes) * 2.0;
  std::vector<double> arrivals;
  for (int k = 0; k < 6; ++k) arrivals.push_back(step * k);
  const double overlapped = overlapped_reduce_seconds(arrivals, bytes, net);
  EXPECT_NEAR(overlapped, arrivals.back() + net.point_to_point_seconds(bytes),
              1e-12);
  EXPECT_LT(overlapped, arrivals.back() + net.reduce_seconds(bytes, 6));
}

// ---- cost model -----------------------------------------------------------

TEST(PlacementCostModel, ValidatesInputs) {
  const auto dataset = corpus();
  const auto w = paper_workload(dataset);
  const auto fleet = parse_fleet_spec("2xcpu");
  EXPECT_THROW(PlacementCostModel({}, 10, w, NetworkModel::pcie_peer(), {}),
               std::invalid_argument);
  EXPECT_THROW(PlacementCostModel(fleet, 1, w, NetworkModel::pcie_peer(), {}),
               std::invalid_argument);
  CostOptions bad_passes;
  bad_passes.local_passes = 0;
  EXPECT_THROW(
      PlacementCostModel(fleet, 10, w, NetworkModel::pcie_peer(), bad_passes),
      std::invalid_argument);
  NetworkModel bad_net = NetworkModel::pcie_peer();
  bad_net.bandwidth_gbps = 0.0;
  EXPECT_THROW(PlacementCostModel(fleet, 10, w, bad_net, {}),
               std::invalid_argument);
}

TEST(PlacementCostModel, ComputeIsTheSlowestWorker) {
  const auto dataset = corpus();
  const auto model = imbalanced_model(dataset);
  const auto uniform =
      uniform_partition_sizes(model.partition_dim(), model.num_workers());
  const auto per_worker = model.worker_compute_seconds(uniform);
  ASSERT_EQ(per_worker.size(), 4u);
  const auto prediction = model.price(uniform);
  double slowest = 0.0;
  for (const double t : per_worker) slowest = std::max(slowest, t);
  EXPECT_DOUBLE_EQ(prediction.compute_seconds, slowest);
  // CPU pools are the stragglers under the equal split.
  EXPECT_GT(per_worker[2], per_worker[0]);
  EXPECT_DOUBLE_EQ(model.round_seconds(uniform), prediction.total());
}

TEST(PlacementCostModel, FullDimensionReproducesTheGlobalWorkload) {
  const auto dataset = corpus();
  const auto model = imbalanced_model(dataset);
  const auto w = model.worker_workload(model.partition_dim());
  EXPECT_EQ(w.nnz, model.workload().nnz);
  EXPECT_EQ(w.num_coordinates, model.workload().num_coordinates);
  EXPECT_EQ(w.shared_dim, model.workload().shared_dim);
}

TEST(PlacementCostModel, OverlapNeverRaisesThePrice) {
  const auto dataset = corpus();
  CostOptions overlap;
  overlap.comm_overlap = true;
  const auto plain = imbalanced_model(dataset);
  const auto overlapped = imbalanced_model(dataset, overlap);
  const auto uniform =
      uniform_partition_sizes(plain.partition_dim(), plain.num_workers());
  EXPECT_LE(overlapped.round_seconds(uniform) * (1.0 - 1e-12),
            plain.round_seconds(uniform));
}

// ---- annealer -------------------------------------------------------------

TEST(Annealer, ParsesPlacementModes) {
  EXPECT_EQ(parse_placement_mode("uniform"), PlacementMode::kUniform);
  EXPECT_EQ(parse_placement_mode("optimize"), PlacementMode::kOptimize);
  EXPECT_THROW(parse_placement_mode("anneal"), std::invalid_argument);
}

TEST(Annealer, UniformModeSkipsTheSearch) {
  const auto dataset = corpus();
  const auto model = imbalanced_model(dataset);
  const auto plan = plan_placement(model, PlacementMode::kUniform, {});
  EXPECT_FALSE(plan.optimized);
  EXPECT_EQ(plan.sizes, plan.uniform_sizes);
  EXPECT_EQ(plan.sa_iterations, 0);
  EXPECT_TRUE(plan.trajectory.empty());
  EXPECT_DOUBLE_EQ(plan.predicted.total(), plan.uniform_predicted.total());
}

TEST(Annealer, OptimizedNeverLosesToUniform) {
  const auto dataset = corpus();
  const auto model = imbalanced_model(dataset);
  const auto plan = plan_placement(model, PlacementMode::kOptimize, {});
  EXPECT_LE(plan.predicted.total(), plan.uniform_predicted.total());
  Index total = 0;
  for (const auto size : plan.sizes) {
    EXPECT_GE(size, 1u);
    total += size;
  }
  EXPECT_EQ(total, model.partition_dim());
}

TEST(Annealer, BeatsUniformOnAnImbalancedFleet) {
  const auto dataset = corpus();
  CostOptions options;
  options.comm_overlap = true;
  const auto model = imbalanced_model(dataset, options);
  const auto plan = plan_placement(model, PlacementMode::kOptimize, {});
  EXPECT_TRUE(plan.optimized);
  EXPECT_GT(plan.predicted_speedup(), 1.3);
  // The GPUs end up owning more coordinates than the CPU pools.
  EXPECT_GT(plan.sizes[0] + plan.sizes[1], plan.sizes[2] + plan.sizes[3]);
}

TEST(Annealer, SameSeedSamePlacement) {
  const auto dataset = corpus();
  const auto model = imbalanced_model(dataset);
  AnnealConfig config;
  config.seed = 123;
  const auto a = optimize_placement(model, config);
  const auto b = optimize_placement(model, config);
  EXPECT_EQ(a.sizes, b.sizes);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].accepted, b.trajectory[i].accepted);
    EXPECT_DOUBLE_EQ(a.trajectory[i].candidate_seconds,
                     b.trajectory[i].candidate_seconds);
    EXPECT_DOUBLE_EQ(a.trajectory[i].best_seconds,
                     b.trajectory[i].best_seconds);
  }
}

TEST(Annealer, SingleWorkerShortCircuitsToUniform) {
  const auto dataset = corpus();
  PlacementCostModel model(parse_fleet_spec("1xtitanx"),
                           dataset.num_examples(), paper_workload(dataset),
                           NetworkModel::pcie_peer(), {});
  const auto plan = plan_placement(model, PlacementMode::kOptimize, {});
  EXPECT_FALSE(plan.optimized);
  ASSERT_EQ(plan.sizes.size(), 1u);
  EXPECT_EQ(plan.sizes[0], dataset.num_examples());
}

// ---- driver integration ---------------------------------------------------

DistConfig dist_config(const FleetSpec& fleet, PlacementMode mode,
                       bool overlap = false) {
  DistConfig config;
  config.formulation = core::Formulation::kDual;
  config.num_workers = fleet.empty() ? 4 : static_cast<int>(fleet.size());
  config.network = NetworkModel::pcie_peer();
  config.seed = 11;
  config.fleet = fleet;
  config.placement = mode;
  config.comm_overlap = overlap;
  return config;
}

TEST(DistPlacement, UniformFleetReproducesLegacyRunBitExactly) {
  const auto dataset = corpus();
  auto legacy = dist_config({}, PlacementMode::kUniform);
  legacy.local_solver.kind = core::SolverKind::kTpaTitanX;
  DistributedSolver baseline(dataset, legacy);

  const auto with_fleet =
      dist_config(parse_fleet_spec("4xtitanx"), PlacementMode::kUniform);
  DistributedSolver fleet_solver(dataset, with_fleet);
  ASSERT_NE(fleet_solver.placement_result(), nullptr);
  EXPECT_FALSE(fleet_solver.placement_result()->optimized);

  for (int epoch = 0; epoch < 4; ++epoch) {
    baseline.run_epoch();
    fleet_solver.run_epoch();
  }
  EXPECT_EQ(baseline.global_weights(), fleet_solver.global_weights());
  EXPECT_EQ(baseline.global_shared(), fleet_solver.global_shared());
}

TEST(DistPlacement, SamePlacementSeedSameRun) {
  const auto dataset = corpus();
  const auto fleet = parse_fleet_spec("2xtitanx,2xcpu:4");
  const auto config = dist_config(fleet, PlacementMode::kOptimize, true);
  DistributedSolver a(dataset, config);
  DistributedSolver b(dataset, config);
  ASSERT_NE(a.placement_result(), nullptr);
  ASSERT_NE(b.placement_result(), nullptr);
  EXPECT_EQ(a.placement_result()->sizes, b.placement_result()->sizes);
  for (int epoch = 0; epoch < 4; ++epoch) {
    a.run_epoch();
    b.run_epoch();
  }
  EXPECT_EQ(a.global_weights(), b.global_weights());
  EXPECT_EQ(a.global_shared(), b.global_shared());
}

TEST(DistPlacement, CheckpointResumePreservesThePlacedRun) {
  const auto dataset = corpus();
  const auto fleet = parse_fleet_spec("2xtitanx,2xcpu:4");
  const auto config = dist_config(fleet, PlacementMode::kOptimize, true);

  DistributedSolver straight(dataset, config);
  for (int epoch = 0; epoch < 6; ++epoch) straight.run_epoch();

  DistributedSolver first_leg(dataset, config);
  for (int epoch = 0; epoch < 3; ++epoch) first_leg.run_epoch();
  const auto saved = first_leg.checkpoint();

  DistributedSolver resumed(dataset, config);
  resumed.restore(saved);
  EXPECT_EQ(resumed.partition().sizes(), straight.partition().sizes());
  for (int epoch = 0; epoch < 3; ++epoch) resumed.run_epoch();

  EXPECT_EQ(straight.global_weights(), resumed.global_weights());
  EXPECT_EQ(straight.global_shared(), resumed.global_shared());
}

TEST(DistPlacement, OverlapOnlyChangesTheClockNotTheMath) {
  // Uniform mode pins the partition, so the two arms run identical math and
  // differ only in how the round's network time is priced.  (In optimize
  // mode the overlap flag feeds the annealer's objective, so the arms may
  // legitimately choose different placements.)
  const auto dataset = corpus();
  const auto fleet = parse_fleet_spec("2xtitanx,2xcpu:4");
  DistributedSolver plain(
      dataset, dist_config(fleet, PlacementMode::kUniform, false));
  DistributedSolver overlapped(
      dataset, dist_config(fleet, PlacementMode::kUniform, true));
  double plain_total = 0.0;
  double overlapped_total = 0.0;
  for (int epoch = 0; epoch < 3; ++epoch) {
    plain.run_epoch();
    overlapped.run_epoch();
    plain_total += plain.last_breakdown().total();
    overlapped_total += overlapped.last_breakdown().total();
  }
  EXPECT_EQ(plain.global_weights(), overlapped.global_weights());
  EXPECT_EQ(plain.global_shared(), overlapped.global_shared());
  EXPECT_LE(overlapped_total, plain_total * (1.0 + 1e-12));
}

TEST(DistPlacement, OverlapSavingsAreBoundedByTheTreeLatency) {
  // On a homogeneous fleet the arrivals are only as staggered as the random
  // deal's nnz variance, so streaming ingest can shave at most the tree's
  // pure-latency levels off the reduce — never the bandwidth term.
  const auto dataset = corpus();
  const auto fleet = parse_fleet_spec("4xtitanx");
  DistributedSolver plain(dataset,
                          dist_config(fleet, PlacementMode::kUniform, false));
  DistributedSolver overlapped(
      dataset, dist_config(fleet, PlacementMode::kUniform, true));
  plain.run_epoch();
  overlapped.run_epoch();
  const double saving = plain.last_breakdown().network -
                        overlapped.last_breakdown().network;
  EXPECT_GE(saving, 0.0);
  EXPECT_LE(saving, NetworkModel::pcie_peer().reduce_seconds(0, 4) + 1e-15);
  EXPECT_EQ(plain.global_weights(), overlapped.global_weights());
}

TEST(DistPlacement, FleetSizeMustMatchWorkerCount) {
  const auto dataset = corpus();
  auto config = dist_config(parse_fleet_spec("2xtitanx"),
                            PlacementMode::kUniform);
  config.num_workers = 4;
  EXPECT_THROW(DistributedSolver(dataset, config), std::invalid_argument);
}

TEST(AsyncPlacement, FleetRunsAndPlansDeterministically) {
  const auto dataset = corpus();
  AsyncConfig config;
  config.formulation = core::Formulation::kDual;
  config.num_workers = 4;
  config.network = NetworkModel::pcie_peer();
  config.seed = 21;
  config.fleet = parse_fleet_spec("2xtitanx,2xcpu:4");
  config.placement = PlacementMode::kOptimize;
  config.placement_seed = 7;
  AsyncSolver a(dataset, config);
  AsyncSolver b(dataset, config);
  ASSERT_NE(a.placement_result(), nullptr);
  EXPECT_EQ(a.placement_result()->sizes, b.placement_result()->sizes);
  for (int epoch = 0; epoch < 3; ++epoch) {
    a.run_epoch();
    b.run_epoch();
  }
  EXPECT_EQ(a.global_weights(), b.global_weights());
  EXPECT_EQ(a.global_shared(), b.global_shared());
}

TEST(AsyncPlacement, UniformFleetReproducesLegacyRunBitExactly) {
  const auto dataset = corpus();
  AsyncConfig legacy;
  legacy.formulation = core::Formulation::kDual;
  legacy.num_workers = 4;
  legacy.network = NetworkModel::pcie_peer();
  legacy.seed = 21;
  legacy.local_solver.kind = core::SolverKind::kTpaTitanX;
  AsyncSolver baseline(dataset, legacy);

  AsyncConfig with_fleet = legacy;
  with_fleet.local_solver = {};
  with_fleet.fleet = parse_fleet_spec("4xtitanx");
  with_fleet.placement = PlacementMode::kUniform;
  AsyncSolver fleet_solver(dataset, with_fleet);

  for (int epoch = 0; epoch < 3; ++epoch) {
    baseline.run_epoch();
    fleet_solver.run_epoch();
  }
  EXPECT_EQ(baseline.global_weights(), fleet_solver.global_weights());
  EXPECT_EQ(baseline.global_shared(), fleet_solver.global_shared());
}

}  // namespace
}  // namespace tpa::cluster::placement
