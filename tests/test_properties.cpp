// Randomized cross-module property sweeps: invariants that must hold for
// any seed, regularisation strength, window, or commit policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/async_scd.hpp"
#include "core/round_engine.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"
#include "util/permutation.hpp"

namespace tpa::core {
namespace {

// ---------------------------------------------------------------------------
// AsyncEngine conservation laws on random scatter patterns.
// ---------------------------------------------------------------------------

class EngineConservation
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(EngineConservation, AtomicCommitsConserveTotalMass) {
  const auto [window, seed] = GetParam();
  util::Rng rng(seed);
  // Random sparse scatter patterns over a 64-entry shared vector.
  constexpr std::size_t kCoords = 200;
  std::vector<std::vector<sparse::Index>> patterns(kCoords);
  std::vector<std::vector<float>> values(kCoords);
  std::vector<double> deltas(kCoords);
  double expected_mass = 0.0;
  for (std::size_t j = 0; j < kCoords; ++j) {
    const auto count = 1 + rng.uniform_index(5);
    while (patterns[j].size() < count) {
      const auto idx = static_cast<sparse::Index>(rng.uniform_index(64));
      if (std::find(patterns[j].begin(), patterns[j].end(), idx) ==
          patterns[j].end()) {
        patterns[j].push_back(idx);
      }
    }
    std::sort(patterns[j].begin(), patterns[j].end());
    values[j].assign(patterns[j].size(), 1.0F);
    deltas[j] = rng.uniform(-1.0, 1.0);
    expected_mass += deltas[j] * static_cast<double>(count);
  }

  AsyncEngine engine(window, CommitPolicy::kAtomicAdd);
  std::vector<float> shared(64, 0.0F);
  auto order = util::identity_permutation(kCoords);
  const auto stats = engine.run_epoch(
      order,
      [&](sparse::Index j, std::span<const float>) { return deltas[j]; },
      [&](sparse::Index j) {
        return sparse::SparseVectorView{patterns[j], values[j]};
      },
      [](sparse::Index, double) {}, shared);

  // Conservation: with atomic adds and constant deltas, the total mass in
  // the shared vector equals the sum of all contributions, regardless of
  // the asynchrony window.
  double mass = 0.0;
  for (const auto v : shared) mass += v;
  EXPECT_NEAR(mass, expected_mass, 1e-3);
  EXPECT_EQ(stats.lost_entries, 0u);
  EXPECT_EQ(stats.updates, kCoords);
}

TEST_P(EngineConservation, WildNeverGainsMass) {
  const auto [window, seed] = GetParam();
  util::Rng rng(seed + 77);
  constexpr std::size_t kCoords = 150;
  std::vector<std::vector<sparse::Index>> patterns(kCoords);
  std::vector<std::vector<float>> values(kCoords);
  double expected_mass = 0.0;
  for (std::size_t j = 0; j < kCoords; ++j) {
    const auto count = 1 + rng.uniform_index(4);
    while (patterns[j].size() < count) {
      const auto idx = static_cast<sparse::Index>(rng.uniform_index(32));
      if (std::find(patterns[j].begin(), patterns[j].end(), idx) ==
          patterns[j].end()) {
        patterns[j].push_back(idx);
      }
    }
    std::sort(patterns[j].begin(), patterns[j].end());
    values[j].assign(patterns[j].size(), 1.0F);
    expected_mass += static_cast<double>(count);
  }

  AsyncEngine engine(window, CommitPolicy::kLastWriterWins);
  std::vector<float> shared(32, 0.0F);
  auto order = util::identity_permutation(kCoords);
  const auto stats = engine.run_epoch(
      order, [](sparse::Index, std::span<const float>) { return 1.0; },
      [&](sparse::Index j) {
        return sparse::SparseVectorView{patterns[j], values[j]};
      },
      [](sparse::Index, double) {}, shared);

  // With all-positive unit contributions, lost updates can only *reduce*
  // the accumulated mass, by exactly one unit per lost entry.
  double mass = 0.0;
  for (const auto v : shared) mass += v;
  EXPECT_NEAR(mass, expected_mass - static_cast<double>(stats.lost_entries),
              1e-3);
  if (window > 1) {
    EXPECT_GT(stats.lost_entries, 0u);  // dense collisions on 32 entries
  } else {
    EXPECT_EQ(stats.lost_entries, 0u);  // sequential commits never race
  }
}

INSTANTIATE_TEST_SUITE_P(
    Windows, EngineConservation,
    ::testing::Combine(::testing::Values<std::size_t>(1u, 4u, 16u, 64u),
                       ::testing::Values<std::uint64_t>(1ULL, 2ULL, 3ULL)));

// ---------------------------------------------------------------------------
// Solver-level invariants across regularisation strengths.
// ---------------------------------------------------------------------------

class LambdaSweep : public ::testing::TestWithParam<double> {};

TEST_P(LambdaSweep, PrimalAndDualAgreeAtTheirOptima) {
  const double lambda = GetParam();
  data::WebspamLikeConfig config;
  config.num_examples = 256;
  config.num_features = 128;
  const auto dataset = data::make_webspam_like(config);
  const RidgeProblem problem(dataset, lambda);

  SeqScdSolver primal(problem, Formulation::kPrimal, 1);
  SeqScdSolver dual(problem, Formulation::kDual, 1);
  for (int epoch = 0; epoch < 150; ++epoch) {
    primal.run_epoch();
    dual.run_epoch();
  }
  // Strong duality: P(beta*) == D(alpha*).
  const double p_star = problem.primal_objective(primal.state().weights,
                                                 primal.state().shared);
  const auto beta_from_dual =
      problem.primal_from_dual_shared(dual.state().shared);
  const auto w_from_dual =
      linalg::csr_matvec(dataset.by_row(), beta_from_dual);
  const double p_via_dual =
      problem.primal_objective(beta_from_dual, w_from_dual);
  EXPECT_NEAR(p_star, p_via_dual, 1e-3 + 1e-2 * std::abs(p_star));
}

TEST_P(LambdaSweep, StrongerRegularisationShrinksTheModel) {
  data::WebspamLikeConfig config;
  config.num_examples = 256;
  config.num_features = 128;
  const auto dataset = data::make_webspam_like(config);
  const double lambda = GetParam();
  const RidgeProblem weak(dataset, lambda);
  const RidgeProblem strong(dataset, lambda * 100.0);
  SeqScdSolver strong_solver(strong, Formulation::kPrimal, 2);
  SeqScdSolver weak_solver(weak, Formulation::kPrimal, 2);
  for (int epoch = 0; epoch < 60; ++epoch) {
    strong_solver.run_epoch();
    weak_solver.run_epoch();
  }
  EXPECT_LT(linalg::squared_norm(
                std::span<const float>(strong_solver.state().weights)),
            linalg::squared_norm(
                std::span<const float>(weak_solver.state().weights)));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, LambdaSweep,
                         ::testing::Values(1e-4, 1e-3, 1e-2));

// ---------------------------------------------------------------------------
// Failure injection: solvers must reject impossible inputs rather than
// silently compute nonsense.
// ---------------------------------------------------------------------------

TEST(FailureInjection, EmptyDatasetIsRejectedEverywhere) {
  sparse::CsrMatrix empty_matrix(0, 0, {0}, {}, {});
  const data::Dataset empty("empty", std::move(empty_matrix), {});
  EXPECT_THROW(RidgeProblem(empty, 0.1), std::invalid_argument);
}

TEST(FailureInjection, NanLabelsSurfaceInTheGapNotACrash) {
  data::DenseGaussianConfig config;
  config.num_examples = 16;
  config.num_features = 8;
  auto dataset = data::make_dense_gaussian(config);
  std::vector<float> labels(dataset.labels().begin(),
                            dataset.labels().end());
  labels[3] = std::numeric_limits<float>::quiet_NaN();
  const data::Dataset poisoned("poisoned", dataset.by_row(),
                               std::move(labels));
  const RidgeProblem problem(poisoned, 0.1);
  SeqScdSolver solver(problem, Formulation::kPrimal, 1);
  solver.run_epoch();  // must not crash
  EXPECT_TRUE(std::isnan(solver.duality_gap(problem)));
}

}  // namespace
}  // namespace tpa::core
