// Dense / sparse-dense vector kernels against straightforward references.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace tpa::linalg {
namespace {

TEST(VectorOps, DotFloatAccumulatesInDouble) {
  const std::vector<float> x{1.0F, 2.0F, 3.0F};
  const std::vector<float> y{4.0F, -5.0F, 6.0F};
  EXPECT_DOUBLE_EQ(dot(std::span<const float>(x), y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, DotDouble) {
  const std::vector<double> x{0.5, 0.25};
  const std::vector<double> y{2.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(std::span<const double>(x), y), 2.0);
}

TEST(VectorOps, EmptyDotIsZero) {
  EXPECT_EQ(dot(std::span<const float>{}, std::span<const float>{}), 0.0);
}

TEST(VectorOps, SquaredNorm) {
  const std::vector<float> x{3.0F, 4.0F};
  EXPECT_DOUBLE_EQ(squared_norm(std::span<const float>(x)), 25.0);
}

TEST(VectorOps, AxpyFloat) {
  const std::vector<float> x{1.0F, 2.0F};
  std::vector<float> y{10.0F, 20.0F};
  axpy(2.0, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0F);
  EXPECT_FLOAT_EQ(y[1], 24.0F);
}

TEST(VectorOps, AxpyDouble) {
  const std::vector<double> x{1.0, -1.0};
  std::vector<double> y{0.0, 0.0};
  axpy(-3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], -3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(VectorOps, Scale) {
  std::vector<float> x{2.0F, -4.0F};
  scale(x, 0.5);
  EXPECT_FLOAT_EQ(x[0], 1.0F);
  EXPECT_FLOAT_EQ(x[1], -2.0F);
}

sparse::SparseVectorView make_view(const std::vector<sparse::Index>& idx,
                                   const std::vector<float>& val) {
  return sparse::SparseVectorView{idx, val};
}

TEST(SparseOps, SparseDot) {
  const std::vector<sparse::Index> idx{0, 2};
  const std::vector<float> val{2.0F, 3.0F};
  const std::vector<float> dense{1.0F, 9.0F, -1.0F};
  EXPECT_DOUBLE_EQ(sparse_dot(make_view(idx, val), dense), 2.0 - 3.0);
}

TEST(SparseOps, SparseResidualDot) {
  const std::vector<sparse::Index> idx{1};
  const std::vector<float> val{4.0F};
  const std::vector<float> target{0.0F, 10.0F};
  const std::vector<float> dense{0.0F, 7.0F};
  EXPECT_DOUBLE_EQ(sparse_residual_dot(make_view(idx, val), target, dense),
                   4.0 * 3.0);
}

TEST(SparseOps, SparseAxpyScattersOnlyTouchedEntries) {
  const std::vector<sparse::Index> idx{0, 3};
  const std::vector<float> val{1.0F, -2.0F};
  std::vector<float> dense{1.0F, 1.0F, 1.0F, 1.0F};
  sparse_axpy(0.5, make_view(idx, val), dense);
  EXPECT_FLOAT_EQ(dense[0], 1.5F);
  EXPECT_FLOAT_EQ(dense[1], 1.0F);
  EXPECT_FLOAT_EQ(dense[2], 1.0F);
  EXPECT_FLOAT_EQ(dense[3], 0.0F);
}

// Scalar-vs-vectorized backend equivalence, per the DESIGN.md §9 contract:
// element-wise kernels (axpy, sparse_axpy) are bit-identical because both
// backends evaluate the same per-element expression; reductions may
// reassociate, so they agree only to the last ULPs of the double
// accumulator.  Sizes straddle the unroll widths (8/16) so main loops and
// scalar tails are both exercised.
class KernelEquivalence : public ::testing::TestWithParam<std::size_t> {
 protected:
  // n * eps of the magnitude sum bounds the reassociation error; the 64x
  // headroom keeps the bound meaningful rather than flaky.
  static double reduction_tol(double abs_sum, std::size_t n) {
    return 64.0 * static_cast<double>(n + 1) *
           std::numeric_limits<double>::epsilon() * (abs_sum + 1.0);
  }
};

TEST_P(KernelEquivalence, DenseKernelsMatchScalarReference) {
  const std::size_t n = GetParam();
  util::Rng rng(0xC0FFEE + n);
  std::vector<float> xf(n);
  std::vector<float> yf(n);
  std::vector<double> xd(n);
  std::vector<double> yd(n);
  double abs_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    xf[i] = static_cast<float>(rng.normal());
    yf[i] = static_cast<float>(rng.normal());
    xd[i] = rng.normal();
    yd[i] = rng.normal();
    abs_sum += std::abs(static_cast<double>(xf[i]) * yf[i]);
  }

  EXPECT_NEAR(vec::dot(std::span<const float>(xf), yf),
              scalar::dot(std::span<const float>(xf), yf),
              reduction_tol(abs_sum, n));
  EXPECT_NEAR(vec::dot(std::span<const double>(xd), yd),
              scalar::dot(std::span<const double>(xd), yd),
              reduction_tol(abs_sum, n));

  // axpy is element-wise: exact equality, not tolerance.
  std::vector<float> outf_scalar = yf;
  std::vector<float> outf_vec = yf;
  scalar::axpy(0.37, xf, outf_scalar);
  vec::axpy(0.37, xf, outf_vec);
  EXPECT_EQ(outf_scalar, outf_vec);

  std::vector<double> outd_scalar = yd;
  std::vector<double> outd_vec = yd;
  scalar::axpy(-1.93, xd, outd_scalar);
  vec::axpy(-1.93, xd, outd_vec);
  EXPECT_EQ(outd_scalar, outd_vec);
}

TEST_P(KernelEquivalence, SparseKernelsMatchScalarReference) {
  const std::size_t nnz = GetParam();
  const std::size_t dim = 4 * nnz + 8;
  util::Rng rng(0xBEEF + nnz);
  std::vector<sparse::Index> idx(nnz);
  std::vector<float> val(nnz);
  std::vector<float> dense(dim);
  std::vector<float> target(dim);
  for (auto& v : dense) v = static_cast<float>(rng.normal());
  for (auto& v : target) v = static_cast<float>(rng.normal());
  sparse::Index at = 0;
  double abs_sum = 0.0;
  for (std::size_t k = 0; k < nnz; ++k) {
    at += 1 + static_cast<sparse::Index>(rng.uniform() * 3.0);
    idx[k] = at;
    val[k] = static_cast<float>(rng.normal());
    abs_sum += std::abs(static_cast<double>(val[k]));
  }
  const auto view = make_view(idx, val);

  EXPECT_NEAR(vec::sparse_dot(view, dense), scalar::sparse_dot(view, dense),
              reduction_tol(4.0 * abs_sum, nnz));
  EXPECT_NEAR(vec::sparse_residual_dot(view, target, dense),
              scalar::sparse_residual_dot(view, target, dense),
              reduction_tol(8.0 * abs_sum, nnz));

  // sparse_axpy scatters with the identical per-element expression in both
  // backends: exact equality.
  std::vector<float> dense_scalar = dense;
  std::vector<float> dense_vec = dense;
  scalar::sparse_axpy(0.61, view, dense_scalar);
  vec::sparse_axpy(0.61, view, dense_vec);
  EXPECT_EQ(dense_scalar, dense_vec);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KernelEquivalence,
                         ::testing::Values(0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u,
                                           17u, 31u, 64u, 100u, 515u));

// Bucketed padding repeats a coordinate's last index with value zero.  The
// kernels must treat those entries as exact no-ops: zero contribution to the
// reductions, a +-0.0 scatter into an already-touched slot.
TEST(KernelBackends, PaddedDuplicateIndicesAreExactNoOps) {
  const std::vector<sparse::Index> real_idx{1, 4, 9};
  const std::vector<float> real_val{0.5F, -2.0F, 3.25F};
  std::vector<sparse::Index> padded_idx = real_idx;
  std::vector<float> padded_val = real_val;
  while (padded_idx.size() % 8 != 0) {
    padded_idx.push_back(real_idx.back());
    padded_val.push_back(0.0F);
  }
  const auto real = make_view(real_idx, real_val);
  const auto padded = make_view(padded_idx, padded_val);
  std::vector<float> dense(12);
  std::vector<float> target(12);
  for (std::size_t i = 0; i < dense.size(); ++i) {
    dense[i] = 0.25F * static_cast<float>(i) - 1.0F;
    target[i] = 1.5F - 0.125F * static_cast<float>(i);
  }

  // Explicit pointer types disambiguate the float overloads from the Half
  // ones added alongside them.
  using DotFn = double (*)(const SparseVectorView&, std::span<const float>);
  using ResFn = double (*)(const SparseVectorView&, std::span<const float>,
                           std::span<const float>);
  using AxpyFn = void (*)(double, const SparseVectorView&, std::span<float>);
  for (const bool use_vec : {false, true}) {
    const DotFn dot_fn = use_vec ? static_cast<DotFn>(vec::sparse_dot)
                                 : static_cast<DotFn>(scalar::sparse_dot);
    const ResFn res_fn =
        use_vec ? static_cast<ResFn>(vec::sparse_residual_dot)
                : static_cast<ResFn>(scalar::sparse_residual_dot);
    EXPECT_EQ(dot_fn(padded, dense), dot_fn(real, dense));
    EXPECT_EQ(res_fn(padded, target, dense), res_fn(real, target, dense));
    std::vector<float> from_real = dense;
    std::vector<float> from_padded = dense;
    const AxpyFn axpy_fn = use_vec
                               ? static_cast<AxpyFn>(vec::sparse_axpy)
                               : static_cast<AxpyFn>(scalar::sparse_axpy);
    axpy_fn(-0.75, real, from_real);
    axpy_fn(-0.75, padded, from_padded);
    EXPECT_EQ(from_real, from_padded);
  }
}

TEST(KernelBackends, EnvironmentDefaultAndOverride) {
  const auto saved = kernel_backend();
  set_kernel_backend(KernelBackend::kScalar);
  EXPECT_EQ(kernel_backend(), KernelBackend::kScalar);
  set_kernel_backend(KernelBackend::kVectorized);
  EXPECT_EQ(kernel_backend(), KernelBackend::kVectorized);
  set_kernel_backend(saved);
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kVectorized), "vectorized");
}

TEST(VectorOps, MaxAbsDiffAndDistance) {
  const std::vector<float> x{1.0F, 5.0F};
  const std::vector<float> y{2.0F, 2.0F};
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 3.0);
  EXPECT_DOUBLE_EQ(distance(x, y), std::sqrt(1.0 + 9.0));
}

class MatvecSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatvecSweep, MatvecMatchesDenseReference) {
  util::Rng rng(GetParam());
  sparse::CooBuilder coo(9, 14);
  for (sparse::Index r = 0; r < 9; ++r) {
    for (sparse::Index c = 0; c < 14; ++c) {
      if (rng.bernoulli(0.3)) {
        coo.add(r, c, static_cast<float>(rng.normal()));
      }
    }
  }
  const auto csr = sparse::coo_to_csr(coo);
  std::vector<float> x(14);
  for (auto& v : x) v = static_cast<float>(rng.normal());

  const auto y = csr_matvec(csr, x);
  ASSERT_EQ(y.size(), 9u);
  for (sparse::Index r = 0; r < 9; ++r) {
    double expected = 0.0;
    for (sparse::Index c = 0; c < 14; ++c) {
      expected += static_cast<double>(csr.at(r, c)) * x[c];
    }
    EXPECT_NEAR(y[r], expected, 1e-4);
  }

  std::vector<float> z(9);
  for (auto& v : z) v = static_cast<float>(rng.normal());
  const auto yt = csr_matvec_transposed(csr, z);
  ASSERT_EQ(yt.size(), 14u);
  for (sparse::Index c = 0; c < 14; ++c) {
    double expected = 0.0;
    for (sparse::Index r = 0; r < 9; ++r) {
      expected += static_cast<double>(csr.at(r, c)) * z[r];
    }
    EXPECT_NEAR(yt[c], expected, 1e-4);
  }

  // The in-place overloads must reproduce the allocating ones exactly —
  // they are the same loops writing into a caller-provided span.
  std::vector<float> y_inplace(9, -7.0F);
  csr_matvec(csr, x, y_inplace);
  EXPECT_EQ(y_inplace, y);
  std::vector<float> yt_inplace(14, -7.0F);
  csr_matvec_transposed(csr, z, yt_inplace);
  EXPECT_EQ(yt_inplace, yt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatvecSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace tpa::linalg
