// Dense / sparse-dense vector kernels against straightforward references.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "sparse/convert.hpp"
#include "util/rng.hpp"

namespace tpa::linalg {
namespace {

TEST(VectorOps, DotFloatAccumulatesInDouble) {
  const std::vector<float> x{1.0F, 2.0F, 3.0F};
  const std::vector<float> y{4.0F, -5.0F, 6.0F};
  EXPECT_DOUBLE_EQ(dot(std::span<const float>(x), y), 4.0 - 10.0 + 18.0);
}

TEST(VectorOps, DotDouble) {
  const std::vector<double> x{0.5, 0.25};
  const std::vector<double> y{2.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(std::span<const double>(x), y), 2.0);
}

TEST(VectorOps, EmptyDotIsZero) {
  EXPECT_EQ(dot(std::span<const float>{}, std::span<const float>{}), 0.0);
}

TEST(VectorOps, SquaredNorm) {
  const std::vector<float> x{3.0F, 4.0F};
  EXPECT_DOUBLE_EQ(squared_norm(std::span<const float>(x)), 25.0);
}

TEST(VectorOps, AxpyFloat) {
  const std::vector<float> x{1.0F, 2.0F};
  std::vector<float> y{10.0F, 20.0F};
  axpy(2.0, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0F);
  EXPECT_FLOAT_EQ(y[1], 24.0F);
}

TEST(VectorOps, AxpyDouble) {
  const std::vector<double> x{1.0, -1.0};
  std::vector<double> y{0.0, 0.0};
  axpy(-3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], -3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(VectorOps, Scale) {
  std::vector<float> x{2.0F, -4.0F};
  scale(x, 0.5);
  EXPECT_FLOAT_EQ(x[0], 1.0F);
  EXPECT_FLOAT_EQ(x[1], -2.0F);
}

sparse::SparseVectorView make_view(const std::vector<sparse::Index>& idx,
                                   const std::vector<float>& val) {
  return sparse::SparseVectorView{idx, val};
}

TEST(SparseOps, SparseDot) {
  const std::vector<sparse::Index> idx{0, 2};
  const std::vector<float> val{2.0F, 3.0F};
  const std::vector<float> dense{1.0F, 9.0F, -1.0F};
  EXPECT_DOUBLE_EQ(sparse_dot(make_view(idx, val), dense), 2.0 - 3.0);
}

TEST(SparseOps, SparseResidualDot) {
  const std::vector<sparse::Index> idx{1};
  const std::vector<float> val{4.0F};
  const std::vector<float> target{0.0F, 10.0F};
  const std::vector<float> dense{0.0F, 7.0F};
  EXPECT_DOUBLE_EQ(sparse_residual_dot(make_view(idx, val), target, dense),
                   4.0 * 3.0);
}

TEST(SparseOps, SparseAxpyScattersOnlyTouchedEntries) {
  const std::vector<sparse::Index> idx{0, 3};
  const std::vector<float> val{1.0F, -2.0F};
  std::vector<float> dense{1.0F, 1.0F, 1.0F, 1.0F};
  sparse_axpy(0.5, make_view(idx, val), dense);
  EXPECT_FLOAT_EQ(dense[0], 1.5F);
  EXPECT_FLOAT_EQ(dense[1], 1.0F);
  EXPECT_FLOAT_EQ(dense[2], 1.0F);
  EXPECT_FLOAT_EQ(dense[3], 0.0F);
}

TEST(VectorOps, MaxAbsDiffAndDistance) {
  const std::vector<float> x{1.0F, 5.0F};
  const std::vector<float> y{2.0F, 2.0F};
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 3.0);
  EXPECT_DOUBLE_EQ(distance(x, y), std::sqrt(1.0 + 9.0));
}

class MatvecSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatvecSweep, MatvecMatchesDenseReference) {
  util::Rng rng(GetParam());
  sparse::CooBuilder coo(9, 14);
  for (sparse::Index r = 0; r < 9; ++r) {
    for (sparse::Index c = 0; c < 14; ++c) {
      if (rng.bernoulli(0.3)) {
        coo.add(r, c, static_cast<float>(rng.normal()));
      }
    }
  }
  const auto csr = sparse::coo_to_csr(coo);
  std::vector<float> x(14);
  for (auto& v : x) v = static_cast<float>(rng.normal());

  const auto y = csr_matvec(csr, x);
  ASSERT_EQ(y.size(), 9u);
  for (sparse::Index r = 0; r < 9; ++r) {
    double expected = 0.0;
    for (sparse::Index c = 0; c < 14; ++c) {
      expected += static_cast<double>(csr.at(r, c)) * x[c];
    }
    EXPECT_NEAR(y[r], expected, 1e-4);
  }

  std::vector<float> z(9);
  for (auto& v : z) v = static_cast<float>(rng.normal());
  const auto yt = csr_matvec_transposed(csr, z);
  ASSERT_EQ(yt.size(), 14u);
  for (sparse::Index c = 0; c < 14; ++c) {
    double expected = 0.0;
    for (sparse::Index r = 0; r < 9; ++r) {
      expected += static_cast<double>(csr.at(r, c)) * z[r];
    }
    EXPECT_NEAR(yt[c], expected, 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatvecSweep,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 4ULL));

}  // namespace
}  // namespace tpa::linalg
