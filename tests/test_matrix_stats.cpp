#include "sparse/matrix_stats.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "sparse/io_binary.hpp"
#include "sparse/io_svmlight.hpp"

namespace tpa::sparse {
namespace {

CsrMatrix sample() {
  // [ 1 0 2 0 ]
  // [ 0 0 0 0 ]
  // [ 3 4 5 0 ]
  return CsrMatrix(3, 4, {0, 2, 2, 5}, {0, 2, 0, 1, 2},
                   {1.0F, 2.0F, 3.0F, 4.0F, 5.0F});
}

TEST(MatrixStats, CountsAndDensity) {
  const auto stats = compute_stats(sample());
  EXPECT_EQ(stats.rows, 3u);
  EXPECT_EQ(stats.cols, 4u);
  EXPECT_EQ(stats.nnz, 5u);
  EXPECT_DOUBLE_EQ(stats.density, 5.0 / 12.0);
  EXPECT_EQ(stats.empty_rows, 1u);
  EXPECT_EQ(stats.populated_cols, 3u);
}

TEST(MatrixStats, RowNnzDistribution) {
  const auto stats = compute_stats(sample());
  EXPECT_EQ(stats.row_nnz.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.row_nnz.mean(), 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.row_nnz.min(), 0.0);
  EXPECT_DOUBLE_EQ(stats.row_nnz.max(), 3.0);
}

TEST(MatrixStats, FootprintsUsePaperLayout) {
  const auto stats = compute_stats(sample());
  // 8 bytes per stored entry + one offset array.
  EXPECT_EQ(stats.csr_bytes, 5 * 8 + 4 * sizeof(Offset));
  EXPECT_EQ(stats.csc_bytes, 5 * 8 + 5 * sizeof(Offset));
}

TEST(MatrixStats, SummaryMentionsShape) {
  const auto text = compute_stats(sample()).summary();
  EXPECT_NE(text.find("3 x 4"), std::string::npos);
  EXPECT_NE(text.find("nnz=5"), std::string::npos);
  std::ostringstream out;
  out << compute_stats(sample());
  EXPECT_EQ(out.str(), text);
}

TEST(MatrixStats, EmptyMatrix) {
  const auto stats = compute_stats(CsrMatrix(0, 0, {0}, {}, {}));
  EXPECT_EQ(stats.nnz, 0u);
  EXPECT_EQ(stats.density, 0.0);
}

TEST(FileIo, SvmlightFileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "tpa_stats_test.svm").string();
  const auto matrix = sample();
  const std::vector<float> labels{1.0F, -1.0F, 1.0F};
  write_svmlight_file(path, matrix, labels);
  const auto loaded = read_svmlight_file(path, matrix.cols());
  EXPECT_EQ(loaded.matrix.nnz(), matrix.nnz());
  EXPECT_EQ(loaded.labels.size(), labels.size());
  std::filesystem::remove(path);
}

TEST(FileIo, BinaryFileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "tpa_stats_test.bin").string();
  LabeledMatrix data{sample(), {1.0F, 2.0F, 3.0F}};
  write_binary_file(path, data);
  const auto loaded = read_binary_file(path);
  EXPECT_EQ(loaded.matrix.nnz(), data.matrix.nnz());
  EXPECT_EQ(loaded.labels, data.labels);
  std::filesystem::remove(path);
}

TEST(FileIo, MissingFilesThrow) {
  EXPECT_THROW(read_svmlight_file("/no/such/file.svm"), std::runtime_error);
  EXPECT_THROW(read_binary_file("/no/such/file.bin"), std::runtime_error);
}

}  // namespace
}  // namespace tpa::sparse
