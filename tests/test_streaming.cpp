// Out-of-core streaming solver: bit-exactness against the in-memory
// solvers, prefetch invariance, streamed gap identity, and mid-shard
// checkpoint/resume.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "core/ridge_problem.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "store/checkpoint.hpp"
#include "store/format.hpp"
#include "store/prefetch.hpp"
#include "store/run.hpp"
#include "store/shard_reader.hpp"
#include "store/streaming_dataset.hpp"
#include "store/streaming_solver.hpp"

namespace tpa::store {
namespace {

sparse::LabeledMatrix make_data(sparse::Index examples = 384) {
  data::WebspamLikeConfig config;
  config.num_examples = examples;
  config.num_features = 2 * examples;
  config.seed = 99;
  const auto dataset = data::make_webspam_like(config);
  return sparse::LabeledMatrix{
      dataset.by_row(),
      std::vector<float>(dataset.labels().begin(), dataset.labels().end())};
}

StreamingConfig base_config() {
  StreamingConfig config;
  config.lambda = 1e-3;
  config.seed = 7;
  return config;
}

std::vector<float> to_vec(std::span<const float> s) {
  return std::vector<float>(s.begin(), s.end());
}

class StreamingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::path(::testing::TempDir()) /
           (std::string("tpa_streaming_") + info->name());
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

TEST_F(StreamingTest, StoreRunIsBitExactWithInMemoryShards) {
  const auto data = make_data();
  write_store(dir_.string(), "ds", data, 5);
  StoreStreamingDataset disk(ShardReader::open(
      (dir_ / "ds.manifest").string(), ReadMode::kMmap));
  MemoryShardedDataset memory("ds", data, 5);
  ASSERT_EQ(disk.num_shards(), memory.num_shards());

  StreamingScdSolver a(disk, base_config());
  StreamingScdSolver b(memory, base_config());
  for (int epoch = 0; epoch < 4; ++epoch) {
    a.run_epoch();
    b.run_epoch();
    // Bit-exact, not approximately equal: identical sweep code consumed
    // identical bytes in an identical order.
    EXPECT_EQ(to_vec(a.alpha()), to_vec(b.alpha()));
    EXPECT_EQ(to_vec(a.shared()), to_vec(b.shared()));
    EXPECT_EQ(a.duality_gap(), b.duality_gap());
  }
}

TEST_F(StreamingTest, PrefetchModeAndWindowNeverChangeTheTrajectory) {
  const auto data = make_data(256);
  MemoryShardedDataset source("ds", data, 4);

  auto run = [&](bool async, std::size_t resident) {
    auto config = base_config();
    config.async_prefetch = async;
    config.resident_shards = resident;
    StreamingScdSolver solver(source, config);
    for (int epoch = 0; epoch < 3; ++epoch) solver.run_epoch();
    return to_vec(solver.alpha());
  };
  const auto reference = run(true, 2);
  EXPECT_EQ(run(false, 2), reference);  // sync == async
  EXPECT_EQ(run(true, 1), reference);   // single buffer
  EXPECT_EQ(run(true, 4), reference);   // whole pass resident
}

TEST_F(StreamingTest, StreamedGapEqualsSerialInMemoryEvaluation) {
  const auto data = make_data(256);
  MemoryShardedDataset source("ds", data, 3);
  StreamingScdSolver solver(source, base_config());
  solver.run_epoch();
  solver.run_epoch();

  sparse::LabeledMatrix copy = data;
  const data::Dataset dataset("ds", std::move(copy.matrix),
                              std::move(copy.labels));
  const core::RidgeProblem problem(dataset, base_config().lambda);
  // EXPECT_EQ on doubles: the streamed pass reproduces the serial
  // accumulation order exactly, so the values are identical bits.
  EXPECT_EQ(solver.duality_gap(),
            problem.dual_duality_gap(solver.alpha(), solver.shared()));
}

TEST_F(StreamingTest, ThreadedSweepsAreDeterministicAndSourceInvariant) {
  const auto data = make_data(256);
  write_store(dir_.string(), "ds", data, 4);
  StoreStreamingDataset disk(
      ShardReader::open((dir_ / "ds.manifest").string()));
  MemoryShardedDataset memory("ds", data, 4);

  auto config = base_config();
  config.threads = 3;
  auto run = [&](const StreamingDataset& source) {
    StreamingScdSolver solver(source, config);
    for (int epoch = 0; epoch < 3; ++epoch) solver.run_epoch();
    return to_vec(solver.alpha());
  };
  const auto first = run(disk);
  EXPECT_EQ(run(disk), first);    // re-run: deterministic
  EXPECT_EQ(run(memory), first);  // byte source is irrelevant
}

TEST_F(StreamingTest, MidShardResumeReproducesTheUninterruptedRun) {
  const auto data = make_data(320);
  write_store(dir_.string(), "ds", data, 5);
  StoreStreamingDataset source(
      ShardReader::open((dir_ / "ds.manifest").string()));

  // Uninterrupted: 4 full epochs.
  StreamingScdSolver full(source, base_config());
  for (int epoch = 0; epoch < 4; ++epoch) full.run_epoch();

  // Interrupted after 2 epochs + 3 shards, state round-tripped through the
  // checkpoint file format, resumed in a fresh solver.
  StreamingScdSolver half(source, base_config());
  half.run_epoch();
  half.run_epoch();
  EXPECT_EQ(half.run_shards(3), 3u);
  EXPECT_TRUE(half.mid_epoch());
  EXPECT_EQ(half.shards_done(), 3u);
  const auto ckpt_path = (dir_ / "run.tpsc").string();
  write_checkpoint_file(ckpt_path, make_checkpoint(half));

  const auto restored = read_checkpoint_file(ckpt_path);
  EXPECT_EQ(restored.epoch, 2u);
  EXPECT_EQ(restored.shards_done, 3u);
  EXPECT_EQ(restored.rows, source.rows());
  StreamingScdSolver resumed(source, base_config());
  resumed.resume(static_cast<int>(restored.epoch), restored.shards_done,
                 restored.alpha, restored.shared);
  resumed.run_epoch();  // finishes epoch 3
  EXPECT_EQ(resumed.epochs_completed(), 3);
  resumed.run_epoch();
  EXPECT_EQ(to_vec(resumed.alpha()), to_vec(full.alpha()));
  EXPECT_EQ(to_vec(resumed.shared()), to_vec(full.shared()));
  EXPECT_EQ(resumed.duality_gap(), full.duality_gap());
}

TEST_F(StreamingTest, CheckpointFileRejectsCorruption) {
  StreamingCheckpoint checkpoint;
  checkpoint.epoch = 3;
  checkpoint.seed = 7;
  checkpoint.threads = 1;
  checkpoint.rows = 4;
  checkpoint.cols = 2;
  checkpoint.shards = 2;
  checkpoint.lambda = 1e-3;
  checkpoint.alpha = {1.0F, 2.0F, 3.0F, 4.0F};
  checkpoint.shared = {5.0F, 6.0F};
  const auto path = (dir_ / "ckpt.tpsc").string();
  write_checkpoint_file(path, checkpoint);
  EXPECT_EQ(read_checkpoint_file(path).alpha, checkpoint.alpha);

  auto bytes = [&] {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }();
  bytes[bytes.size() / 2] ^= 0x10;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW(read_checkpoint_file(path), std::runtime_error);
}

TEST_F(StreamingTest, GapThrowsMidEpochAndResumeRejectsUsedSolver) {
  const auto data = make_data(256);
  MemoryShardedDataset source("ds", data, 4);
  StreamingScdSolver solver(source, base_config());
  solver.run_shards(2);
  EXPECT_THROW(solver.duality_gap(), std::logic_error);
  EXPECT_THROW(solver.resume(0, 0, to_vec(solver.alpha()),
                             to_vec(solver.shared())),
               std::logic_error);
}

TEST_F(StreamingTest, PrefetchStatsAccountForEveryLoad) {
  const auto data = make_data(256);
  MemoryShardedDataset source("ds", data, 4);

  auto sync = base_config();
  sync.async_prefetch = false;
  StreamingScdSolver control(source, sync);
  control.run_epoch();
  const auto& control_stats = control.prefetch_stats();
  EXPECT_EQ(control_stats.loads, source.num_shards());
  // Synchronous loading cannot overlap: every load is a stall.
  EXPECT_EQ(control_stats.stalls, control_stats.loads);
  EXPECT_EQ(control_stats.overlap_fraction(), 0.0);

  StreamingScdSolver async_solver(source, base_config());
  async_solver.run_epoch();
  const auto& stats = async_solver.prefetch_stats();
  EXPECT_EQ(stats.loads, source.num_shards());
  EXPECT_LE(stats.stalls, stats.loads);
  EXPECT_GE(stats.overlap_fraction(), 0.0);
  EXPECT_LE(stats.overlap_fraction(), 1.0);
}

TEST_F(StreamingTest, RunStreamingMatchesRunSolverSemantics) {
  const auto data = make_data(256);
  MemoryShardedDataset source("ds", data, 4);
  StreamingScdSolver solver(source, base_config());

  core::RunOptions options;
  options.max_epochs = 5;
  options.target_gap = 0.0;
  options.gap_every = 2;
  const auto trace = run_streaming(solver, options);
  ASSERT_EQ(trace.points().size(), 3u);  // epochs 2, 4 and the final 5
  EXPECT_EQ(trace.points().back().epoch, 5);
  EXPECT_EQ(trace.final_gap(), solver.duality_gap());

  // Target-gap early stop: a loose target stops after the first check.
  StreamingScdSolver early(source, base_config());
  core::RunOptions loose = options;
  loose.gap_every = 1;
  loose.target_gap = 1e6;
  const auto early_trace = run_streaming(early, loose);
  EXPECT_EQ(early_trace.points().back().epoch, 1);
}

TEST_F(StreamingTest, RunStreamingShardCheckpointsResumeAcrossProcesses) {
  const auto data = make_data(256);
  write_store(dir_.string(), "ds", data, 4);
  StoreStreamingDataset source(
      ShardReader::open((dir_ / "ds.manifest").string()));

  core::RunOptions options;
  options.max_epochs = 4;
  options.target_gap = 0.0;
  StreamingScdSolver full(source, base_config());
  const auto full_trace = run_streaming(full, options);

  // First process: 2 epochs with shard-granular checkpoints.
  const auto ckpt_path = (dir_ / "run.tpsc").string();
  CheckpointOptions checkpointing;
  checkpointing.path = ckpt_path;
  checkpointing.every_shards = 3;
  StreamingScdSolver first(source, base_config());
  core::RunOptions half = options;
  half.max_epochs = 2;
  run_streaming(first, half, checkpointing);

  // Second process: restore and continue to epoch 4.
  const auto restored = read_checkpoint_file(ckpt_path);
  StreamingScdSolver second(source, base_config());
  second.resume(static_cast<int>(restored.epoch), restored.shards_done,
                restored.alpha, restored.shared);
  run_streaming(second, options);
  EXPECT_EQ(to_vec(second.alpha()), to_vec(full.alpha()));
  EXPECT_EQ(to_vec(second.shared()), to_vec(full.shared()));
  EXPECT_EQ(full_trace.final_gap(), second.duality_gap());
}

TEST_F(StreamingTest, PipelineSurfacesLoadErrorsOnTheSolverThread) {
  const auto data = make_data(128);
  write_store(dir_.string(), "ds", data, 4);
  // Corrupt shard 2 after the manifest was written.
  const auto shard_path = dir_ / "ds.shard00002.tpa1";
  std::filesystem::resize_file(
      shard_path, std::filesystem::file_size(shard_path) - 4);
  StoreStreamingDataset source(
      ShardReader::open((dir_ / "ds.manifest").string()));

  PrefetchPipeline pipeline(source, 2, /*async=*/true);
  pipeline.begin_pass({0, 1, 2, 3});
  EXPECT_NO_THROW(pipeline.acquire(0));
  EXPECT_NO_THROW(pipeline.acquire(1));
  EXPECT_THROW(pipeline.acquire(2), std::runtime_error);
  pipeline.end_pass();
}

}  // namespace
}  // namespace tpa::store
