// Elastic-net extension: soft-thresholding, ridge-limit equivalence, lasso
// sparsity, KKT optimality, and monotone descent.
#include <gtest/gtest.h>

#include <cmath>

#include "core/elastic_net.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace tpa::core {
namespace {

const data::Dataset& dataset() {
  static const data::Dataset d = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 512;
    config.num_features = 256;
    config.model_density = 0.1;  // sparse ground truth for selection tests
    return data::make_webspam_like(config);
  }();
  return d;
}

TEST(ElasticNet, RejectsBadParameters) {
  EXPECT_THROW(ElasticNetProblem(dataset(), 0.0, 0.5),
               std::invalid_argument);
  EXPECT_THROW(ElasticNetProblem(dataset(), 0.1, -0.1),
               std::invalid_argument);
  EXPECT_THROW(ElasticNetProblem(dataset(), 0.1, 1.5),
               std::invalid_argument);
}

TEST(ElasticNet, SoftThresholdOperator) {
  EXPECT_EQ(ElasticNetProblem::soft_threshold(3.0, 1.0), 2.0);
  EXPECT_EQ(ElasticNetProblem::soft_threshold(-3.0, 1.0), -2.0);
  EXPECT_EQ(ElasticNetProblem::soft_threshold(0.5, 1.0), 0.0);
  EXPECT_EQ(ElasticNetProblem::soft_threshold(-0.5, 1.0), 0.0);
  EXPECT_EQ(ElasticNetProblem::soft_threshold(1.0, 1.0), 0.0);
}

TEST(ElasticNet, ZeroL1RatioMatchesRidgeTrajectory) {
  const double lambda = 0.01;
  const ElasticNetProblem en_problem(dataset(), lambda, 0.0);
  const RidgeProblem ridge_problem(dataset(), lambda);
  ElasticNetSolver en(en_problem, 5);
  SeqScdSolver ridge(ridge_problem, Formulation::kPrimal, 5);
  for (int epoch = 0; epoch < 5; ++epoch) {
    en.run_epoch();
    ridge.run_epoch();
  }
  // Same seed => same permutations; at eta = 0 the updates are identical.
  for (std::size_t m = 0; m < en.beta().size(); ++m) {
    EXPECT_NEAR(en.beta()[m], ridge.state().weights[m], 1e-5);
  }
}

TEST(ElasticNet, ObjectiveDecreasesMonotonically) {
  const ElasticNetProblem problem(dataset(), 0.01, 0.5);
  ElasticNetSolver solver(problem, 1);
  double previous = solver.objective();
  for (int epoch = 0; epoch < 10; ++epoch) {
    solver.run_epoch();
    const double current = solver.objective();
    EXPECT_LE(current, previous + 1e-9);
    previous = current;
  }
}

TEST(ElasticNet, KktViolationVanishesAtConvergence) {
  const ElasticNetProblem problem(dataset(), 0.01, 0.5);
  ElasticNetSolver solver(problem, 2);
  for (int epoch = 0; epoch < 60; ++epoch) solver.run_epoch();
  EXPECT_LT(solver.kkt_violation(), 1e-4);
}

TEST(ElasticNet, LassoProducesSparsityRidgeDoesNot) {
  const ElasticNetProblem lasso(dataset(), 0.02, 1.0);
  const ElasticNetProblem ridge(dataset(), 0.02, 0.0);
  ElasticNetSolver lasso_solver(lasso, 3);
  ElasticNetSolver ridge_solver(ridge, 3);
  for (int epoch = 0; epoch < 30; ++epoch) {
    lasso_solver.run_epoch();
    ridge_solver.run_epoch();
  }
  EXPECT_GT(lasso_solver.zero_coefficients(),
            dataset().num_features() / 4);
  EXPECT_GT(lasso_solver.zero_coefficients(),
            2 * ridge_solver.zero_coefficients());
}

TEST(ElasticNet, SparsityGrowsWithL1Ratio) {
  std::size_t previous_zeros = 0;
  for (const double eta : {0.2, 0.6, 1.0}) {
    const ElasticNetProblem problem(dataset(), 0.02, eta);
    ElasticNetSolver solver(problem, 4);
    for (int epoch = 0; epoch < 30; ++epoch) solver.run_epoch();
    EXPECT_GE(solver.zero_coefficients() + 8, previous_zeros)
        << "eta " << eta;
    previous_zeros = solver.zero_coefficients();
  }
}

TEST(ElasticNet, AsyncWindowStillConverges) {
  // Async execution needs a realistically sized problem relative to the
  // concurrency window (cf. gpusim::DeviceSpec::async_staleness).
  data::WebspamLikeConfig config;
  config.num_examples = 2048;
  config.num_features = 4096;
  const auto big = data::make_webspam_like(config);
  const ElasticNetProblem problem(big, 0.01, 0.5);
  ElasticNetSolver sequential(problem, 6, 1);
  ElasticNetSolver async(problem, 6, 48);  // TPA-style execution
  for (int epoch = 0; epoch < 40; ++epoch) {
    sequential.run_epoch();
    async.run_epoch();
  }
  EXPECT_LT(async.kkt_violation(), 1e-3);
  EXPECT_NEAR(async.objective(), sequential.objective(), 1e-3);
}

TEST(ElasticNet, SharedVectorTracksBeta) {
  const ElasticNetProblem problem(dataset(), 0.01, 0.7);
  ElasticNetSolver solver(problem, 7);
  for (int epoch = 0; epoch < 5; ++epoch) solver.run_epoch();
  // w must remain A·beta up to float rounding (atomic commits).
  const auto expected =
      linalg::csr_matvec(dataset().by_row(), solver.beta());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(solver.shared()[i], expected[i], 1e-3);
  }
}

TEST(ElasticNetPath, LambdaMaxZeroesEveryCoefficient) {
  const double lambda_max = elastic_net_lambda_max(dataset(), 1.0);
  EXPECT_GT(lambda_max, 0.0);
  const ElasticNetProblem problem(dataset(), lambda_max * 1.0001, 1.0);
  ElasticNetSolver solver(problem, 1);
  for (int epoch = 0; epoch < 10; ++epoch) solver.run_epoch();
  EXPECT_EQ(solver.zero_coefficients(), dataset().num_features());
}

TEST(ElasticNetPath, SupportGrowsDownThePath) {
  PathOptions options;
  options.l1_ratio = 1.0;
  options.num_lambdas = 8;
  options.lambda_min_ratio = 1e-2;
  const auto path = elastic_net_path(dataset(), options);
  ASSERT_EQ(path.size(), 8u);
  // The first point sits at lambda_max: empty (or near-empty) model; the
  // support can only grow (weakly) as lambda decreases on this data.
  EXPECT_LE(path.front().nonzeros, 2u);
  EXPECT_GT(path.back().nonzeros, path.front().nonzeros);
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_LT(path[i].lambda, path[i - 1].lambda);
  }
}

TEST(ElasticNetPath, WarmStartMatchesColdSolve) {
  PathOptions options;
  options.l1_ratio = 0.8;
  options.num_lambdas = 6;
  options.lambda_min_ratio = 0.05;
  options.epochs_per_lambda = 30;
  const auto path = elastic_net_path(dataset(), options);
  // Cold-solving the final lambda must land on the same objective the
  // warm-started path reached (the path is a speed trick, not a different
  // estimator).
  const ElasticNetProblem problem(dataset(), path.back().lambda, 0.8);
  ElasticNetSolver cold(problem, 99);
  for (int epoch = 0; epoch < 200; ++epoch) cold.run_epoch();
  EXPECT_NEAR(path.back().objective, cold.objective(),
              1e-4 + 1e-3 * std::abs(cold.objective()));
}

TEST(ElasticNetPath, RejectsBadParameters) {
  EXPECT_THROW(elastic_net_lambda_max(dataset(), 0.0),
               std::invalid_argument);
  PathOptions bad;
  bad.l1_ratio = 0.0;
  EXPECT_THROW(elastic_net_path(dataset(), bad), std::invalid_argument);
  PathOptions bad_grid;
  bad_grid.num_lambdas = 1;
  EXPECT_THROW(elastic_net_path(dataset(), bad_grid),
               std::invalid_argument);
}

}  // namespace
}  // namespace tpa::core
