// svmlight text IO and checksummed binary IO.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/io_binary.hpp"
#include "sparse/io_svmlight.hpp"

namespace tpa::sparse {
namespace {

LabeledMatrix sample_data() {
  // 3 examples, 4 features.
  CsrMatrix matrix(3, 4, {0, 2, 3, 5}, {0, 2, 1, 0, 3},
                   {1.5F, -2.0F, 0.25F, 3.0F, 4.0F});
  return LabeledMatrix{std::move(matrix), {1.0F, -1.0F, 1.0F}};
}

TEST(SvmlightIo, WriteProducesOneBasedIndices) {
  const auto data = sample_data();
  std::ostringstream out;
  write_svmlight(out, data.matrix, data.labels);
  const auto text = out.str();
  EXPECT_NE(text.find("1 1:1.5 3:-2"), std::string::npos);
  EXPECT_NE(text.find("-1 2:0.25"), std::string::npos);
}

TEST(SvmlightIo, RoundTripPreservesEverything) {
  const auto data = sample_data();
  std::stringstream stream;
  write_svmlight(stream, data.matrix, data.labels);
  const auto loaded = read_svmlight(stream, data.matrix.cols());
  ASSERT_EQ(loaded.matrix.rows(), data.matrix.rows());
  ASSERT_EQ(loaded.matrix.cols(), data.matrix.cols());
  ASSERT_EQ(loaded.matrix.nnz(), data.matrix.nnz());
  for (Index r = 0; r < data.matrix.rows(); ++r) {
    EXPECT_EQ(loaded.labels[r], data.labels[r]);
    for (Index c = 0; c < data.matrix.cols(); ++c) {
      EXPECT_EQ(loaded.matrix.at(r, c), data.matrix.at(r, c));
    }
  }
}

TEST(SvmlightIo, InfersFeatureCountFromMaxIndex) {
  std::istringstream in("1 3:2.0\n-1 7:1.0\n");
  const auto loaded = read_svmlight(in);
  EXPECT_EQ(loaded.matrix.cols(), 7u);
  EXPECT_EQ(loaded.matrix.at(1, 6), 1.0F);
}

TEST(SvmlightIo, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n1 1:1.0\n# trailing\n");
  const auto loaded = read_svmlight(in);
  EXPECT_EQ(loaded.matrix.rows(), 1u);
}

TEST(SvmlightIo, AllowsEmptyRows) {
  std::istringstream in("1\n-1 2:5.0\n");
  const auto loaded = read_svmlight(in);
  ASSERT_EQ(loaded.matrix.rows(), 2u);
  EXPECT_EQ(loaded.matrix.row_nnz(0), 0u);
  EXPECT_EQ(loaded.matrix.row_nnz(1), 1u);
}

TEST(SvmlightIo, RejectsZeroBasedIndex) {
  std::istringstream in("1 0:1.0\n");
  EXPECT_THROW(read_svmlight(in), std::runtime_error);
}

TEST(SvmlightIo, RejectsNonIncreasingIndices) {
  std::istringstream in("1 3:1.0 2:1.0\n");
  EXPECT_THROW(read_svmlight(in), std::runtime_error);
}

TEST(SvmlightIo, RejectsMalformedPair) {
  std::istringstream in("1 nonsense\n");
  EXPECT_THROW(read_svmlight(in), std::runtime_error);
}

TEST(SvmlightIo, RejectsIndexBeyondForcedFeatureCount) {
  std::istringstream in("1 9:1.0\n");
  EXPECT_THROW(read_svmlight(in, 4), std::runtime_error);
}

TEST(SvmlightIo, WriteRejectsLabelMismatch) {
  const auto data = sample_data();
  std::ostringstream out;
  const std::vector<float> wrong(2, 0.0F);
  EXPECT_THROW(write_svmlight(out, data.matrix, wrong),
               std::invalid_argument);
}

TEST(BinaryIo, RoundTripPreservesEverything) {
  const auto data = sample_data();
  std::stringstream stream(std::ios::in | std::ios::out |
                           std::ios::binary);
  write_binary(stream, data);
  const auto loaded = read_binary(stream);
  ASSERT_EQ(loaded.matrix.rows(), data.matrix.rows());
  ASSERT_EQ(loaded.matrix.cols(), data.matrix.cols());
  ASSERT_EQ(loaded.labels.size(), data.labels.size());
  for (Index r = 0; r < data.matrix.rows(); ++r) {
    EXPECT_EQ(loaded.labels[r], data.labels[r]);
    for (Index c = 0; c < data.matrix.cols(); ++c) {
      EXPECT_EQ(loaded.matrix.at(r, c), data.matrix.at(r, c));
    }
  }
}

TEST(BinaryIo, DetectsBadMagic) {
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  stream << "NOPE-this-is-not-the-format";
  EXPECT_THROW(read_binary(stream), std::runtime_error);
}

TEST(BinaryIo, DetectsTruncation) {
  const auto data = sample_data();
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(stream, data);
  const auto full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2),
                              std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary(truncated), std::runtime_error);
}

TEST(BinaryIo, DetectsCorruption) {
  const auto data = sample_data();
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(stream, data);
  auto bytes = stream.str();
  bytes[bytes.size() / 2] ^= 0x5A;  // flip bits mid-payload
  std::stringstream corrupted(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_binary(corrupted), std::runtime_error);
}

TEST(BinaryIo, Fnv1aIsStableAndSensitive) {
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_EQ(fnv1a(a, 5), fnv1a(a, 5));
  EXPECT_NE(fnv1a(a, 5), fnv1a(b, 5));
  EXPECT_NE(fnv1a(a, 5), fnv1a(a, 4));
}

TEST(BinaryIo, EmptyMatrixRoundTrips) {
  LabeledMatrix data{CsrMatrix(0, 5, {0}, {}, {}), {}};
  std::stringstream stream(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(stream, data);
  const auto loaded = read_binary(stream);
  EXPECT_EQ(loaded.matrix.rows(), 0u);
  EXPECT_EQ(loaded.matrix.cols(), 5u);
  EXPECT_TRUE(loaded.labels.empty());
}

}  // namespace
}  // namespace tpa::sparse
