// The bounded-staleness asynchronous driver: no-barrier convergence, the
// shared == A·weights invariant under every interleaving, the staleness
// window (damp and reject policies), crash/backoff/evict state machines,
// elastic join/leave membership, and bit-exact checkpoint/resume with
// faults and membership replaying deterministically.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <tuple>

#include "cluster/async_solver.hpp"
#include "cluster/dist_solver.hpp"
#include "data/generators.hpp"
#include "linalg/vector_ops.hpp"

namespace tpa::cluster {
namespace {

using core::ClusterEventKind;
using core::Formulation;

const data::Dataset& corpus() {
  static const data::Dataset dataset = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 512;
    config.num_features = 1024;
    return data::make_webspam_like(config);
  }();
  return dataset;
}

AsyncConfig base_config(Formulation f, int workers) {
  AsyncConfig config;
  config.formulation = f;
  config.num_workers = workers;
  config.local_solver.kind = core::SolverKind::kSequential;
  config.lambda = 1e-3;
  return config;
}

FaultEvent crash_at(int round, int worker) {
  FaultEvent event;
  event.epoch = round;
  event.worker = worker;
  event.kind = FaultKind::kCrash;
  return event;
}

FaultEvent permanent_stall(int worker, double factor) {
  FaultEvent event;
  event.epoch = 1;
  event.worker = worker;
  event.kind = FaultKind::kStall;
  event.stall_factor = factor;
  event.permanent = true;
  return event;
}

std::size_t count(const std::vector<core::ClusterEvent>& events,
                  ClusterEventKind kind) {
  std::size_t n = 0;
  for (const auto& event : events) n += event.kind == kind;
  return n;
}

/// max |shared - A x assembled|: the invariant every applied delta must
/// preserve exactly, no matter how stale or damped.
double invariant_error(const AsyncSolver& solver, Formulation f) {
  const auto weights = solver.global_weights();
  const auto& by_row = corpus().by_row();
  const auto expected = f == Formulation::kPrimal
                            ? linalg::csr_matvec(by_row, weights)
                            : linalg::csr_matvec_transposed(by_row, weights);
  return linalg::max_abs_diff(solver.global_shared(), expected);
}

double run_rounds(AsyncSolver& solver, int rounds) {
  double sim = 0.0;
  for (int r = 0; r < rounds; ++r) sim += solver.run_epoch().sim_seconds;
  return sim;
}

// --- No-barrier convergence -------------------------------------------------

TEST(AsyncSolver, ConvergesWithoutFaults) {
  auto config = base_config(Formulation::kDual, 4);
  AsyncSolver solver(corpus(), config);
  solver.run_epoch();
  const double first_gap = solver.duality_gap();
  run_rounds(solver, 11);
  EXPECT_LT(solver.duality_gap(), 0.25 * first_gap);
  // Fault-free: every round absorbs exactly one applied push per member.
  EXPECT_EQ(solver.version(), 12u * 4u);
  EXPECT_EQ(solver.last_contributors(), 4);
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 0.25);
}

TEST(AsyncSolver, CompressedPushesConvergeAndHalveWireBytes) {
  auto config = base_config(Formulation::kDual, 4);
  config.compress_deltas = true;
  AsyncSolver solver(corpus(), config);
  solver.run_epoch();
  const double first_gap = solver.duality_gap();
  run_rounds(solver, 11);
  EXPECT_LT(solver.duality_gap(), 0.25 * first_gap);
  // Push leg is quantized; the metric baselines against the raw fp64 image.
  EXPECT_GT(solver.delta_bytes_on_wire(), 0u);
  EXPECT_GE(solver.delta_bytes_dense(), 2 * solver.delta_bytes_on_wire());
}

TEST(AsyncFaults, CorruptCompressedPushIsRejectedByTheChecksum) {
  auto config = base_config(Formulation::kDual, 4);
  config.compress_deltas = true;
  FaultEvent corrupt;
  corrupt.epoch = 2;
  corrupt.worker = 1;
  corrupt.kind = FaultKind::kCorruptDelta;
  config.faults.scripted.push_back(corrupt);
  AsyncSolver solver(corpus(), config);
  run_rounds(solver, 4);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kDeltaCorrupted), 1u);
  // The corrupted push is discarded whole, so the invariant only carries
  // the fp16 quantization error of the applied deltas.
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 5e-3);
}

TEST(AsyncSolver, SteadyStateStalenessStaysInsideAutoWindow) {
  auto config = base_config(Formulation::kDual, 4);
  AsyncSolver solver(corpus(), config);
  EXPECT_EQ(solver.effective_staleness_window(), 6);  // 2(K-1)
  run_rounds(solver, 10);
  // Healthy pipelined cycles lag by about K-1 versions — never damped.
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kStaleDamped), 0u);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kStaleRejected), 0u);
}

class AsyncInvariantSweep
    : public ::testing::TestWithParam<
          std::tuple<Formulation, AggregationMode>> {};

TEST_P(AsyncInvariantSweep, InvariantHoldsEveryRound) {
  const auto [f, mode] = GetParam();
  auto config = base_config(f, 4);
  config.aggregation = mode;
  // Stress the interleavings: a straggler forces stale deltas through the
  // damping path while the healthy workers lap it.
  config.faults.scripted.push_back(permanent_stall(0, 4.0));
  config.staleness_window = 2;
  AsyncSolver solver(corpus(), config);
  double first_gap = 0.0;
  for (int round = 1; round <= 8; ++round) {
    solver.run_epoch();
    if (round == 1) first_gap = solver.duality_gap();
    // Looser than the fault-free bound: every damped push rounds the full
    // shared vector through float32 once more.
    EXPECT_LT(invariant_error(solver, f), 5e-3) << "round " << round;
  }
  EXPECT_LT(solver.duality_gap(), first_gap);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AsyncInvariantSweep,
    ::testing::Combine(::testing::Values(Formulation::kPrimal,
                                         Formulation::kDual),
                       ::testing::Values(AggregationMode::kAveraging,
                                         AggregationMode::kAdaptive)),
    [](const auto& info) {
      return std::string(formulation_name(std::get<0>(info.param))) + "_" +
             aggregation_name(std::get<1>(info.param));
    });

// --- Staleness window -------------------------------------------------------

TEST(AsyncStaleness, StragglerDeltasAreDampedBeyondTheWindow) {
  auto config = base_config(Formulation::kDual, 4);
  config.faults.scripted.push_back(permanent_stall(0, 6.0));
  config.staleness_window = 1;
  AsyncSolver solver(corpus(), config);
  run_rounds(solver, 8);
  // The straggler's cycles span many applied versions; with τ = 1 every one
  // of its pushes lands damped, yet all pushes still apply.
  EXPECT_GT(count(solver.events(), ClusterEventKind::kStaleDamped), 0u);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kStaleRejected), 0u);
  EXPECT_EQ(solver.version(), 8u * 4u);
}

TEST(AsyncStaleness, RejectPolicyDiscardsInsteadOfDamping) {
  auto config = base_config(Formulation::kDual, 4);
  config.faults.scripted.push_back(permanent_stall(0, 6.0));
  config.staleness_window = 1;
  config.staleness_policy = StalenessPolicy::kReject;
  AsyncSolver solver(corpus(), config);
  solver.run_epoch();
  const double first_gap = solver.duality_gap();
  run_rounds(solver, 7);
  const auto rejected =
      count(solver.events(), ClusterEventKind::kStaleRejected);
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kStaleDamped), 0u);
  // Rejected pushes never tick the version clock.
  EXPECT_EQ(solver.version(), 8u * 4u - rejected);
  EXPECT_LT(solver.duality_gap(), first_gap);
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3);
}

// --- Crash / backoff / evict ------------------------------------------------

TEST(AsyncFaults, CrashBacksOffRestartsAndRecovers) {
  auto config = base_config(Formulation::kDual, 4);
  config.faults.scripted.push_back(crash_at(3, 1));
  AsyncSolver solver(corpus(), config);
  solver.run_epoch();
  const double first_gap = solver.duality_gap();
  run_rounds(solver, 9);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kCrash), 1u);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kRestart), 1u);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kEvict), 0u);
  EXPECT_EQ(solver.worker_status(1), AsyncWorkerStatus::kComputing);
  EXPECT_EQ(solver.live_workers(), 4);
  EXPECT_LT(solver.duality_gap(), first_gap);
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3);
}

TEST(AsyncFaults, RepeatedCrashesEvictAndFreezeThePartition) {
  auto config = base_config(Formulation::kDual, 4);
  config.max_restarts = 1;
  for (int round = 1; round <= 6; ++round) {
    config.faults.scripted.push_back(crash_at(round, 1));
  }
  AsyncSolver solver(corpus(), config);
  run_rounds(solver, 10);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kEvict), 1u);
  EXPECT_EQ(solver.worker_status(1), AsyncWorkerStatus::kDetached);
  EXPECT_EQ(solver.live_workers(), 3);
  // γ rescaled to the survivors.
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 1.0 / 3.0);
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3);
}

// --- Elastic membership -----------------------------------------------------

TEST(AsyncElastic, LeaveRescalesGammaAndFreezesTheSlot) {
  auto config = base_config(Formulation::kDual, 4);
  config.membership.push_back({3, 2, MembershipEvent::Kind::kLeave});
  AsyncSolver solver(corpus(), config);
  run_rounds(solver, 2);
  const auto frozen_before = solver.global_weights();
  run_rounds(solver, 4);
  EXPECT_EQ(count(solver.events(), ClusterEventKind::kLeave), 1u);
  EXPECT_EQ(solver.worker_status(2), AsyncWorkerStatus::kDetached);
  EXPECT_EQ(solver.live_workers(), 3);
  EXPECT_DOUBLE_EQ(solver.last_gamma(), 1.0 / 3.0);
  EXPECT_EQ(solver.effective_staleness_window(), 4);  // 2(live-1)
  // The leaver's committed coordinates stay frozen in the global model.
  const auto frozen_after = solver.global_weights();
  bool moved = false;
  for (std::size_t j = 0; j < frozen_after.size(); ++j) {
    moved = moved || frozen_after[j] != frozen_before[j];
  }
  EXPECT_TRUE(moved);  // the live partitions kept optimising...
  EXPECT_LT(invariant_error(solver, Formulation::kDual), 2e-3);
}

TEST(AsyncElastic, JoinRevivesAnEvictedSlotAndBeatsTheFrozenArm) {
  auto config = base_config(Formulation::kDual, 4);
  config.max_restarts = 1;
  for (int round = 1; round <= 4; ++round) {
    config.faults.scripted.push_back(crash_at(round, 1));
  }

  auto frozen_config = config;  // eviction with no recovery
  AsyncSolver frozen(corpus(), frozen_config);
  run_rounds(frozen, 16);
  EXPECT_EQ(frozen.worker_status(1), AsyncWorkerStatus::kDetached);

  config.membership.push_back({8, 1, MembershipEvent::Kind::kJoin});
  AsyncSolver elastic(corpus(), config);
  run_rounds(elastic, 16);
  EXPECT_EQ(count(elastic.events(), ClusterEventKind::kEvict), 1u);
  EXPECT_EQ(count(elastic.events(), ClusterEventKind::kJoin), 1u);
  EXPECT_EQ(elastic.worker_status(1), AsyncWorkerStatus::kComputing);
  EXPECT_EQ(elastic.live_workers(), 4);
  // The revived slot resumes optimising its frozen coordinates: the elastic
  // arm reaches a strictly better model than the permanently degraded one.
  EXPECT_LT(elastic.duality_gap(), frozen.duality_gap());
  EXPECT_LT(invariant_error(elastic, Formulation::kDual), 2e-3);
}

// --- Straggler immunity -----------------------------------------------------

TEST(AsyncTiming, AdaptiveAsyncReachesTheGapFasterUnderAStraggler) {
  // Adaptive arms, moderate (2x) straggler: its pushes arrive at roughly
  // the auto staleness window, so they land undamped, while the sync master
  // burns its grace deadline every round.  (Under extreme slowdowns the
  // sync deadline effectively excludes the straggler and stays competitive
  // — see the ablation_async bench for the full picture.)
  const auto stall = permanent_stall(0, 2.0);
  const double target = 1e-4;
  constexpr int kMaxRounds = 400;
  // A larger corpus than the fixture's: the win margin scales with how much
  // work each round amortises (on tiny shards the two arms are within
  // noise of each other).
  data::WebspamLikeConfig big;
  big.num_examples = 2048;
  big.num_features = 4096;
  const auto dataset = data::make_webspam_like(big);

  auto async_config = base_config(Formulation::kDual, 4);
  async_config.aggregation = AggregationMode::kAdaptive;
  async_config.faults.scripted.push_back(stall);
  AsyncSolver async_solver(dataset, async_config);
  double async_seconds = 0.0;
  for (int round = 0; round < kMaxRounds; ++round) {
    async_seconds += async_solver.run_epoch().sim_seconds;
    if (async_solver.duality_gap() <= target) break;
  }
  ASSERT_LE(async_solver.duality_gap(), target);

  DistConfig sync_config;
  sync_config.formulation = Formulation::kDual;
  sync_config.num_workers = 4;
  sync_config.aggregation = AggregationMode::kAdaptive;
  sync_config.local_solver.kind = core::SolverKind::kSequential;
  sync_config.lambda = 1e-3;
  sync_config.faults.scripted.push_back(stall);
  DistributedSolver sync_solver(dataset, sync_config);
  double sync_seconds = 0.0;
  for (int round = 0; round < kMaxRounds; ++round) {
    sync_seconds += sync_solver.run_epoch().sim_seconds;
    if (sync_solver.duality_gap() <= target) break;
  }
  ASSERT_LE(sync_solver.duality_gap(), target);

  // The sync master waits out its straggler deadline every round; the async
  // master absorbs pushes from whoever is fast.
  EXPECT_LT(async_seconds, sync_seconds);
}

// --- Checkpoint / resume ----------------------------------------------------

TEST(AsyncCheckpoint, ResumeReplaysBitExactly) {
  auto config = base_config(Formulation::kDual, 4);
  AsyncSolver original(corpus(), config);
  run_rounds(original, 4);
  const auto saved = original.checkpoint();  // rendezvous
  const auto state = original.checkpoint_state();
  EXPECT_EQ(saved.epoch, 4u);
  run_rounds(original, 4);

  AsyncSolver resumed(corpus(), config);
  resumed.restore(saved, state);
  EXPECT_EQ(resumed.current_epoch(), 4);
  EXPECT_EQ(resumed.version(), state.version);
  run_rounds(resumed, 4);

  EXPECT_EQ(original.version(), resumed.version());
  EXPECT_EQ(original.global_shared(), resumed.global_shared());
  EXPECT_EQ(original.global_weights(), resumed.global_weights());
}

TEST(AsyncCheckpoint, ResumeReplaysFaultsAndMembership) {
  auto config = base_config(Formulation::kDual, 4);
  config.faults.scripted.push_back(crash_at(6, 2));
  config.membership.push_back({7, 3, MembershipEvent::Kind::kLeave});
  config.membership.push_back({9, 3, MembershipEvent::Kind::kJoin});

  AsyncSolver original(corpus(), config);
  run_rounds(original, 4);
  const auto saved = original.checkpoint();
  const auto state = original.checkpoint_state();
  run_rounds(original, 6);

  AsyncSolver resumed(corpus(), config);
  resumed.restore(saved, state);
  run_rounds(resumed, 6);

  // The continuation sees the identical fault schedule and membership
  // script — crash at 6, leave at 7, join at 9 — and the identical numbers.
  EXPECT_EQ(count(resumed.events(), ClusterEventKind::kCrash), 1u);
  EXPECT_EQ(count(resumed.events(), ClusterEventKind::kLeave), 1u);
  EXPECT_EQ(count(resumed.events(), ClusterEventKind::kJoin), 1u);
  EXPECT_EQ(original.version(), resumed.version());
  EXPECT_EQ(original.global_shared(), resumed.global_shared());
  EXPECT_EQ(original.global_weights(), resumed.global_weights());
}

TEST(AsyncCheckpoint, SidecarFileRoundtrips) {
  AsyncCheckpointState state;
  state.round = 7;
  state.version = 23;
  state.seed = 99;
  state.workers.push_back({12, 0, 0, 0.0});
  state.workers.push_back({10, 1, 2, 3.5});
  const auto path =
      (std::filesystem::temp_directory_path() / "tpa_async_state.bin")
          .string();
  write_async_state_file(path, state);
  const auto loaded = read_async_state_file(path);
  EXPECT_EQ(loaded.round, state.round);
  EXPECT_EQ(loaded.version, state.version);
  EXPECT_EQ(loaded.seed, state.seed);
  ASSERT_EQ(loaded.workers.size(), 2u);
  EXPECT_EQ(loaded.workers[1].draws_consumed, 10u);
  EXPECT_EQ(loaded.workers[1].status, 1u);
  EXPECT_EQ(loaded.workers[1].crash_count, 2u);
  EXPECT_DOUBLE_EQ(loaded.workers[1].restart_at, 3.5);

  // A flipped payload byte must not slip past the checksum.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  EXPECT_THROW(read_async_state_file(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(AsyncCheckpoint, RestoreValidatesItsInputs) {
  auto config = base_config(Formulation::kDual, 4);
  AsyncSolver original(corpus(), config);
  run_rounds(original, 2);
  const auto saved = original.checkpoint();
  const auto state = original.checkpoint_state();

  {  // restoring over rounds already run
    AsyncSolver solver(corpus(), config);
    solver.run_epoch();
    EXPECT_THROW(solver.restore(saved, state), std::logic_error);
  }
  {  // seed mismatch: partition and fault schedule would not replay
    auto other = config;
    other.seed = config.seed + 1;
    AsyncSolver solver(corpus(), other);
    EXPECT_THROW(solver.restore(saved, state), std::invalid_argument);
  }
  {  // model/sidecar pair from different rounds
    auto stale = state;
    stale.round += 1;
    AsyncSolver solver(corpus(), config);
    EXPECT_THROW(solver.restore(saved, stale), std::invalid_argument);
  }
  {  // sidecar worker count from a different cluster shape
    auto wrong = state;
    wrong.workers.pop_back();
    AsyncSolver solver(corpus(), config);
    EXPECT_THROW(solver.restore(saved, wrong), std::invalid_argument);
  }
}

// --- Config validation and names --------------------------------------------

TEST(AsyncConfigValidation, RejectsBadWindowsAndMembership) {
  auto config = base_config(Formulation::kDual, 4);
  config.staleness_window = -1;
  EXPECT_THROW(AsyncSolver(corpus(), config), std::invalid_argument);

  config = base_config(Formulation::kDual, 4);
  config.membership.push_back({0, 1, MembershipEvent::Kind::kLeave});
  EXPECT_THROW(AsyncSolver(corpus(), config), std::invalid_argument);

  config = base_config(Formulation::kDual, 4);
  config.membership.push_back({2, 4, MembershipEvent::Kind::kJoin});
  EXPECT_THROW(AsyncSolver(corpus(), config), std::invalid_argument);

  config = base_config(Formulation::kDual, 0);
  EXPECT_THROW(AsyncSolver(corpus(), config), std::invalid_argument);
}

TEST(AsyncNames, PolicyAndStatusNamesRoundtrip) {
  EXPECT_STREQ(staleness_policy_name(StalenessPolicy::kDamp), "damp");
  EXPECT_STREQ(staleness_policy_name(StalenessPolicy::kReject), "reject");
  EXPECT_EQ(parse_staleness_policy("damp"), StalenessPolicy::kDamp);
  EXPECT_EQ(parse_staleness_policy("reject"), StalenessPolicy::kReject);
  EXPECT_THROW(parse_staleness_policy("barrier"), std::invalid_argument);
  EXPECT_STREQ(async_worker_status_name(AsyncWorkerStatus::kComputing),
               "computing");
  EXPECT_STREQ(async_worker_status_name(AsyncWorkerStatus::kBackoff),
               "backoff");
  EXPECT_STREQ(async_worker_status_name(AsyncWorkerStatus::kDetached),
               "detached");
}

}  // namespace
}  // namespace tpa::cluster
