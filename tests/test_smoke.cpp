// End-to-end smoke test: the whole stack — generator, problem, solvers,
// simulated GPU, distributed engine — converges on a small problem.
#include <gtest/gtest.h>

#include "cluster/dist_solver.hpp"
#include "core/convergence.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"

namespace tpa {
namespace {

TEST(Smoke, SequentialScdClosesDualityGap) {
  data::DenseGaussianConfig config;
  config.num_examples = 80;
  config.num_features = 40;
  const auto dataset = data::make_dense_gaussian(config);
  const core::RidgeProblem problem(dataset, 0.01);
  core::SeqScdSolver solver(problem, core::Formulation::kPrimal, 1);
  core::RunOptions options;
  options.max_epochs = 200;
  options.target_gap = 1e-6;
  const auto trace = core::run_solver(solver, problem, options);
  EXPECT_LE(trace.final_gap(), 1e-6);
}

TEST(Smoke, DistributedGpuClusterConverges) {
  // Per-worker shards must be large relative to the GPU's asynchrony window
  // for TPA-SCD to behave like the paper's (wholly realistic) setting; see
  // gpusim::DeviceSpec::async_staleness.
  data::WebspamLikeConfig config;
  config.num_examples = 2048;
  config.num_features = 4096;
  const auto dataset = data::make_webspam_like(config);

  cluster::DistConfig dist;
  dist.formulation = core::Formulation::kDual;
  dist.num_workers = 4;
  dist.aggregation = cluster::AggregationMode::kAdaptive;
  dist.local_solver.kind = core::SolverKind::kTpaTitanX;
  dist.lambda = 1e-3;
  cluster::DistributedSolver solver(dataset, dist);

  core::RunOptions options;
  options.max_epochs = 60;
  options.target_gap = 1e-4;
  const auto trace = cluster::run_distributed(solver, options);
  EXPECT_LE(trace.final_gap(), 1e-4);
}

}  // namespace
}  // namespace tpa
