// The shared-vector recomputation remedy of Tran et al. [13] (paper Section
// III.B): periodically restoring w == A·weights rescues PASSCoDe-Wild's
// drift at the cost of one matrix pass.
#include <gtest/gtest.h>

#include "core/async_scd.hpp"
#include "data/generators.hpp"

namespace tpa::core {
namespace {

const data::Dataset& corpus() {
  static const data::Dataset d = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 1024;
    config.num_features = 2048;
    return data::make_webspam_like(config);
  }();
  return d;
}

TEST(Recompute, RestoresConsistencyForWild) {
  const RidgeProblem problem(corpus(), 1e-3);
  PasscodeWildSolver drifting(problem, Formulation::kDual, 16, 9);
  PasscodeWildSolver remedied(problem, Formulation::kDual, 16, 9);
  remedied.set_recompute_interval(1);
  for (int epoch = 0; epoch < 10; ++epoch) {
    drifting.run_epoch();
    remedied.run_epoch();
  }
  EXPECT_GT(drifting.state().shared_inconsistency(problem), 1e-4);
  EXPECT_LT(remedied.state().shared_inconsistency(problem), 1e-5);
}

TEST(Recompute, CannotRescueWildOptimality) {
  // A deliberately documented *negative* result: PASSCoDe-Wild's bias lives
  // in the weights (each lost shared-vector add means a later weight update
  // over-corrected), so recomputing w = A·weights re-injects the overshoot
  // into the residuals instead of fixing it — the gap gets worse, not
  // better.  This is why the paper states flatly that Wild "will converge
  // to a solution that violates the optimality conditions": the [13]
  // remedy applies to drifted-but-unbiased atomic solvers, not to Wild.
  const RidgeProblem problem(corpus(), 1e-3);
  PasscodeWildSolver drifting(problem, Formulation::kDual, 16, 9);
  PasscodeWildSolver remedied(problem, Formulation::kDual, 16, 9);
  remedied.set_recompute_interval(1);
  for (int epoch = 0; epoch < 16; ++epoch) {
    drifting.run_epoch();
    remedied.run_epoch();
  }
  EXPECT_GE(remedied.duality_gap(problem), drifting.duality_gap(problem));
  // The drifting run still settles at its (finite) nonzero floor.
  EXPECT_LT(drifting.duality_gap(problem), 1.0);
}

TEST(Recompute, ChargesExtraSimulatedTime) {
  const RidgeProblem problem(corpus(), 1e-3);
  PasscodeWildSolver plain(problem, Formulation::kDual, 16, 9);
  PasscodeWildSolver remedied(problem, Formulation::kDual, 16, 9);
  remedied.set_recompute_interval(1);
  EXPECT_GT(remedied.run_epoch().sim_seconds,
            plain.run_epoch().sim_seconds);
}

TEST(Recompute, IntervalGatesTheRemedy) {
  const RidgeProblem problem(corpus(), 1e-3);
  PasscodeWildSolver solver(problem, Formulation::kDual, 16, 9);
  solver.set_recompute_interval(3);
  EXPECT_EQ(solver.recompute_interval(), 3);
  double drift_after_two = 0.0;
  solver.run_epoch();
  solver.run_epoch();
  drift_after_two = solver.state().shared_inconsistency(problem);
  solver.run_epoch();  // third epoch triggers the recomputation
  EXPECT_LT(solver.state().shared_inconsistency(problem), drift_after_two);
}

TEST(Recompute, HarmlessForAtomicSolvers) {
  const RidgeProblem problem(corpus(), 1e-3);
  AScdSolver solver(problem, Formulation::kDual, 16, 9);
  solver.set_recompute_interval(1);
  for (int epoch = 0; epoch < 5; ++epoch) solver.run_epoch();
  EXPECT_LT(solver.duality_gap(problem), 1e-3);
}

}  // namespace
}  // namespace tpa::core
