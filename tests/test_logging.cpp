#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace tpa::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kWarn); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, ParseKnownNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST_F(LoggingTest, ParseUnknownFallsBackToInfo) {
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level(""), LogLevel::kInfo);
}

TEST_F(LoggingTest, MacroCompilesAndRespectsLevel) {
  set_log_level(LogLevel::kOff);
  // With logging off, the message expression must still be side-effect-safe.
  int evaluations = 0;
  TPA_LOG_INFO << "count " << ++evaluations;
  EXPECT_EQ(evaluations, 0) << "message should not be evaluated when off";

  set_log_level(LogLevel::kDebug);
  TPA_LOG_DEBUG << "debug message " << ++evaluations;
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace tpa::util
