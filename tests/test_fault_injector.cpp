// The deterministic fault injector: scripted scenarios, rate-based draws,
// severity resolution, and the purity guarantees (order independence,
// replayability) the resume path depends on.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/fault_injector.hpp"

namespace tpa::cluster {
namespace {

TEST(FaultInjector, DefaultInjectsNothing) {
  const FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int epoch = 1; epoch <= 20; ++epoch) {
    for (int worker = 0; worker < 8; ++worker) {
      EXPECT_EQ(injector.query(epoch, worker).kind, FaultKind::kNone);
    }
  }
}

TEST(FaultInjector, ScriptedEventHitsExactlyItsCell) {
  FaultConfig config;
  FaultEvent crash;
  crash.epoch = 3;
  crash.worker = 2;
  crash.kind = FaultKind::kCrash;
  config.scripted.push_back(crash);
  const FaultInjector injector(config);
  EXPECT_TRUE(injector.enabled());
  EXPECT_EQ(injector.query(3, 2).kind, FaultKind::kCrash);
  // Neighbouring cells in both dimensions stay healthy.
  EXPECT_EQ(injector.query(2, 2).kind, FaultKind::kNone);
  EXPECT_EQ(injector.query(4, 2).kind, FaultKind::kNone);
  EXPECT_EQ(injector.query(3, 1).kind, FaultKind::kNone);
  EXPECT_EQ(injector.query(3, 3).kind, FaultKind::kNone);
}

TEST(FaultInjector, PermanentStallCoversEveryLaterEpoch) {
  FaultConfig config;
  FaultEvent stall;
  stall.epoch = 2;
  stall.worker = 1;
  stall.kind = FaultKind::kStall;
  stall.stall_factor = 8.0;
  stall.permanent = true;
  config.scripted.push_back(stall);
  const FaultInjector injector(config);
  EXPECT_EQ(injector.query(1, 1).kind, FaultKind::kNone);
  for (const int epoch : {2, 3, 10, 1000}) {
    const auto hit = injector.query(epoch, 1);
    EXPECT_EQ(hit.kind, FaultKind::kStall) << epoch;
    EXPECT_DOUBLE_EQ(hit.stall_factor, 8.0);
  }
  EXPECT_EQ(injector.query(50, 0).kind, FaultKind::kNone);
}

TEST(FaultInjector, PermanenceIsAStallOnlyNotion) {
  // A "permanent crash" makes no sense (the worker is already dead); the
  // flag must not turn a scripted crash into an every-epoch event.
  FaultConfig config;
  FaultEvent crash;
  crash.epoch = 2;
  crash.worker = 0;
  crash.kind = FaultKind::kCrash;
  crash.permanent = true;
  config.scripted.push_back(crash);
  const FaultInjector injector(config);
  EXPECT_EQ(injector.query(2, 0).kind, FaultKind::kCrash);
  EXPECT_EQ(injector.query(3, 0).kind, FaultKind::kNone);
}

TEST(FaultInjector, QueriesArePureAndOrderIndependent) {
  FaultConfig config;
  config.crash_rate = 0.2;
  config.stall_rate = 0.2;
  config.drop_rate = 0.2;
  config.seed = 1234;
  const FaultInjector injector(config);

  // Forward sweep, recorded...
  std::vector<FaultKind> forward;
  for (int epoch = 1; epoch <= 30; ++epoch) {
    for (int worker = 0; worker < 6; ++worker) {
      forward.push_back(injector.query(epoch, worker).kind);
    }
  }
  // ...must match a reversed sweep on a separately constructed injector:
  // no hidden stream state, so a resumed run replays the exact schedule.
  const FaultInjector replay(config);
  std::size_t i = forward.size();
  for (int epoch = 30; epoch >= 1; --epoch) {
    for (int worker = 5; worker >= 0; --worker) {
      EXPECT_EQ(replay.query(epoch, worker).kind, forward[--i])
          << "epoch " << epoch << " worker " << worker;
    }
  }
}

TEST(FaultInjector, SeedSelectsTheSchedule) {
  FaultConfig a;
  a.crash_rate = 0.5;
  a.seed = 1;
  FaultConfig b = a;
  b.seed = 2;
  const FaultInjector first(a);
  const FaultInjector second(b);
  int differing = 0;
  for (int epoch = 1; epoch <= 40; ++epoch) {
    for (int worker = 0; worker < 4; ++worker) {
      differing +=
          first.query(epoch, worker).kind != second.query(epoch, worker).kind;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjector, RateOneAlwaysFiresRateZeroNever) {
  FaultConfig always;
  always.crash_rate = 1.0;
  const FaultInjector guaranteed(always);
  FaultConfig never;  // all rates default to 0
  never.seed = always.seed;
  const FaultInjector healthy(never);
  EXPECT_FALSE(healthy.enabled());
  for (int epoch = 1; epoch <= 10; ++epoch) {
    for (int worker = 0; worker < 4; ++worker) {
      EXPECT_EQ(guaranteed.query(epoch, worker).kind, FaultKind::kCrash);
      EXPECT_EQ(healthy.query(epoch, worker).kind, FaultKind::kNone);
    }
  }
}

TEST(FaultInjector, EmpiricalRateTracksConfiguredRate) {
  FaultConfig config;
  config.drop_rate = 0.3;
  config.seed = 77;
  const FaultInjector injector(config);
  int hits = 0;
  const int cells = 200 * 8;
  for (int epoch = 1; epoch <= 200; ++epoch) {
    for (int worker = 0; worker < 8; ++worker) {
      hits += injector.query(epoch, worker).kind == FaultKind::kDropDelta;
    }
  }
  const double rate = static_cast<double>(hits) / cells;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(FaultInjector, CollisionsResolveToTheMostSevereKind) {
  // crash > stall > corrupt > drop: with several rates at 1 every cell
  // multi-hits, and the winner must always be the most severe.
  FaultConfig config;
  config.crash_rate = 1.0;
  config.stall_rate = 1.0;
  config.drop_rate = 1.0;
  config.corrupt_rate = 1.0;
  EXPECT_EQ(FaultInjector(config).query(5, 0).kind, FaultKind::kCrash);
  config.crash_rate = 0.0;
  EXPECT_EQ(FaultInjector(config).query(5, 0).kind, FaultKind::kStall);
  config.stall_rate = 0.0;
  EXPECT_EQ(FaultInjector(config).query(5, 0).kind,
            FaultKind::kCorruptDelta);
  config.corrupt_rate = 0.0;
  EXPECT_EQ(FaultInjector(config).query(5, 0).kind, FaultKind::kDropDelta);
}

TEST(FaultInjector, ScriptedEventPreemptsRateDraws) {
  // A scripted hit decides the cell outright; rate coins are not consulted.
  FaultConfig config;
  config.crash_rate = 1.0;
  FaultEvent drop;
  drop.epoch = 1;
  drop.worker = 0;
  drop.kind = FaultKind::kDropDelta;
  config.scripted.push_back(drop);
  const FaultInjector injector(config);
  EXPECT_EQ(injector.query(1, 0).kind, FaultKind::kDropDelta);
  EXPECT_EQ(injector.query(1, 1).kind, FaultKind::kCrash);  // rate applies
}

TEST(FaultInjector, RateDrawnStallsCarryTheConfiguredFactor) {
  FaultConfig config;
  config.stall_rate = 1.0;
  config.stall_factor = 6.5;
  const auto hit = FaultInjector(config).query(3, 1);
  ASSERT_EQ(hit.kind, FaultKind::kStall);
  EXPECT_DOUBLE_EQ(hit.stall_factor, 6.5);
}

TEST(FaultInjector, KindNamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kNone), "none");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCrash), "crash");
  EXPECT_STREQ(fault_kind_name(FaultKind::kStall), "stall");
  EXPECT_STREQ(fault_kind_name(FaultKind::kDropDelta), "drop");
  EXPECT_STREQ(fault_kind_name(FaultKind::kCorruptDelta), "corrupt");
}

}  // namespace
}  // namespace tpa::cluster
