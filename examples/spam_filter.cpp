// Spam filtering — the paper's webspam scenario end to end.
//
// Trains ridge regression on a webspam-like corpus (sign labels: spam /
// not-spam), using GPU-accelerated TPA-SCD in the dual form with a 75/25
// train/test split, then evaluates held-out accuracy.  Demonstrates:
//   * train/test splitting (the paper samples webspam 75/25),
//   * solving the dual and mapping back to primal weights via eq. (5),
//   * early stopping on the duality gap,
//   * comparing wall-clock-simulated time across solver choices.
//
//   ./spam_filter [--examples N] [--features M] [--lambda L] [--solver
//   seq|ascd|wild|tpa-m4000|tpa-titanx]
#include <cstdio>

#include "core/convergence.hpp"
#include "core/metrics.hpp"
#include "core/solver_factory.hpp"
#include "data/generators.hpp"
#include "data/split.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("spam_filter",
                         "webspam-style classification with dual TPA-SCD");
  parser.add_option("examples", "corpus size before the split", "8192");
  parser.add_option("features", "number of n-gram features", "16384");
  parser.add_option("lambda", "regularisation strength", "1e-3");
  parser.add_option("epochs", "maximum training epochs", "30");
  parser.add_option("target-gap", "stop once the duality gap reaches this",
                    "1e-6");
  parser.add_option("solver", "seq|ascd|wild|tpa-m4000|tpa-titanx",
                    "tpa-titanx");
  if (!parser.parse(argc, argv)) return 1;

  // Build the corpus with +-1 labels: a planted linear model decides
  // spamminess and we train ridge regression on the signs, as one would on
  // the real webspam corpus.
  data::WebspamLikeConfig config;
  config.num_examples =
      static_cast<data::Index>(parser.get_int("examples", 8192));
  config.num_features =
      static_cast<data::Index>(parser.get_int("features", 16384));
  auto corpus = data::make_webspam_like(config);
  {
    // Threshold the real-valued planted labels into spam / not-spam.
    std::vector<float> signs(corpus.labels().begin(), corpus.labels().end());
    for (auto& y : signs) y = y >= 0.0F ? 1.0F : -1.0F;
    const auto scale = corpus.paper_scale();
    corpus = data::Dataset("webspam_signs", corpus.by_row(), // copy matrix
                           std::move(signs));
    if (scale.has_value()) corpus.set_paper_scale(*scale);
  }

  util::Rng rng(17);
  const auto split = data::train_test_split(corpus, 0.75, rng);
  std::printf("train: %s\ntest:  %u examples\n",
              sparse::compute_stats(split.train.by_row()).summary().c_str(),
              split.test.num_examples());

  const core::RidgeProblem problem(split.train,
                                   parser.get_double("lambda", 1e-3));
  core::SolverConfig solver_config;
  solver_config.kind =
      core::parse_solver_kind(parser.get_string("solver", "tpa-titanx"));
  solver_config.formulation = core::Formulation::kDual;
  auto solver = core::make_solver(problem, solver_config);
  std::printf("solver: %s\n", solver->name().c_str());

  core::RunOptions options;
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 30));
  options.target_gap = parser.get_double("target-gap", 1e-6);
  const auto trace = core::run_solver(*solver, problem, options);
  std::printf("trained %d epochs, duality gap %.3e, simulated time %.3f s "
              "(at paper scale)\n",
              trace.points().back().epoch, trace.final_gap(),
              trace.points().back().sim_seconds);

  // A dual model maps to primal weights via eq. (5): beta = (1/lambda)ATa,
  // and ATa is exactly the dual shared vector the solver maintains.
  const auto beta =
      problem.primal_from_dual_shared(solver->state().shared);
  const auto train_pred = core::predict(split.train, beta);
  const auto test_pred = core::predict(split.test, beta);
  std::printf("train accuracy: %.2f%%\n",
              100.0 * core::sign_accuracy(train_pred, split.train.labels()));
  std::printf("test accuracy:  %.2f%%\n",
              100.0 * core::sign_accuracy(test_pred, split.test.labels()));
  return 0;
}
