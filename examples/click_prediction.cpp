// Click-through-rate prediction — the paper's criteo scenario (Section V.B).
//
// The one-day criteo sample is 200M examples x 75M one-hot features and
// occupies ~40 GB: it does not fit in any single GPU, so training *must* be
// distributed.  This example builds the scaled criteo-like dataset, checks
// the capacity argument against the real device specs, then trains
// distributed TPA-SCD with adaptive aggregation across 4 simulated Titan X
// GPUs and reports classification accuracy.
//
//   ./click_prediction [--examples N] [--fields F] [--buckets B]
//                      [--workers K] [--epochs E]
#include <cstdio>

#include "cluster/dist_solver.hpp"
#include "core/metrics.hpp"
#include "data/generators.hpp"
#include "gpusim/device.hpp"
#include "sparse/matrix_stats.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("click_prediction",
                         "criteo-style CTR training on a simulated GPU "
                         "cluster");
  parser.add_option("examples", "number of click events", "32768");
  parser.add_option("fields", "categorical fields per event", "24");
  parser.add_option("buckets", "hash buckets per field", "512");
  parser.add_option("workers", "GPU workers", "4");
  parser.add_option("lambda", "regularisation strength", "1e-3");
  parser.add_option("epochs", "training epochs", "40");
  if (!parser.parse(argc, argv)) return 1;

  data::CriteoLikeConfig config;
  config.num_examples =
      static_cast<data::Index>(parser.get_int("examples", 32768));
  config.num_fields = static_cast<data::Index>(parser.get_int("fields", 24));
  config.buckets_per_field =
      static_cast<data::Index>(parser.get_int("buckets", 512));
  const auto dataset = data::make_criteo_like(config);
  std::printf("dataset: %s\n",
              sparse::compute_stats(dataset.by_row()).summary().c_str());

  // The capacity argument that motivates Section V of the paper.
  const auto& scale = *dataset.paper_scale();
  const double paper_gib =
      static_cast<double>(scale.nnz) * 8.0 / (1024.0 * 1024 * 1024);
  const auto titan = gpusim::DeviceSpec::titan_x();
  const int workers = static_cast<int>(parser.get_int("workers", 4));
  std::printf(
      "paper-scale criteo sample: %.1f GiB; single %s holds %.0f GiB -> %s; "
      "split across %d workers -> %s\n",
      paper_gib, titan.name.c_str(),
      static_cast<double>(titan.mem_capacity_bytes) / (1024.0 * 1024 * 1024),
      titan.fits(static_cast<std::size_t>(paper_gib * (1ULL << 30))) ? "fits"
                                                                     : "does NOT fit",
      workers,
      titan.fits(static_cast<std::size_t>(paper_gib * (1ULL << 30)) /
                 static_cast<std::size_t>(workers))
          ? "fits"
          : "does NOT fit");

  cluster::DistConfig dist;
  dist.formulation = core::Formulation::kDual;  // partition by example
  dist.num_workers = workers;
  dist.aggregation = cluster::AggregationMode::kAdaptive;
  dist.local_solver.kind = core::SolverKind::kTpaTitanX;
  dist.local_solver.charge_paper_scale_memory = true;
  dist.network = cluster::NetworkModel::pcie_peer();
  dist.lambda = parser.get_double("lambda", 1e-3);
  cluster::DistributedSolver solver(dataset, dist);
  std::printf("setup (shard upload over PCIe, paper scale): %.3f s\n",
              solver.setup_sim_seconds());

  const int epochs = static_cast<int>(parser.get_int("epochs", 40));
  double sim_time = solver.setup_sim_seconds();
  std::printf("epoch  gap        gamma   sim time (s)\n");
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    const auto report = solver.run_epoch();
    sim_time += report.sim_seconds;
    if (epoch % 5 == 0 || epoch == 1) {
      std::printf("%5d  %.3e  %.3f  %.3f\n", epoch, solver.duality_gap(),
                  solver.last_gamma(), sim_time);
    }
  }
  const auto& breakdown = solver.last_breakdown();
  std::printf(
      "last epoch breakdown: gpu %.4f s, host %.4f s, pcie %.4f s, "
      "network %.4f s\n",
      breakdown.compute_solver, breakdown.compute_host, breakdown.pcie,
      breakdown.network);

  // Evaluate: assemble the dual model, map to primal weights, score signs.
  const core::RidgeProblem problem(dataset, dist.lambda);
  const auto beta =
      problem.primal_from_dual_shared(solver.global_shared());
  const auto predictions = core::predict(dataset, beta);
  std::printf("click prediction accuracy: %.2f%%\n",
              100.0 * core::sign_accuracy(predictions, dataset.labels()));
  return 0;
}
