// Multi-GPU scaling study — an interactive version of the paper's Figs. 8/9.
//
// Sweeps worker counts on a chosen GPU + interconnect combination, printing
// time-to-gap and the compute/communication split per configuration, so a
// user can answer "how many GPUs should I buy, and will my network keep
// up?" for their own workload shape.
//
//   ./multi_gpu_scaling [--device m4000|titanx] [--network 10g|100g|pcie]
//                       [--examples N] [--features M] [--max-workers K]
#include <cstdio>
#include <string>

#include "cluster/dist_solver.hpp"
#include "data/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("multi_gpu_scaling",
                         "sweep GPU worker counts and interconnects");
  parser.add_option("device", "m4000 | titanx", "m4000");
  parser.add_option("network", "10g | 100g | pcie", "10g");
  parser.add_option("examples", "number of training examples", "8192");
  parser.add_option("features", "number of features", "16384");
  parser.add_option("lambda", "regularisation strength", "1e-3");
  parser.add_option("max-workers", "largest worker count to sweep", "8");
  parser.add_option("eps", "target duality gap", "1e-5");
  parser.add_option("epochs", "epoch cap per run", "200");
  if (!parser.parse(argc, argv)) return 1;

  const std::string device = parser.get_string("device", "m4000");
  const std::string network = parser.get_string("network", "10g");
  const auto solver_kind = device == "titanx" ? core::SolverKind::kTpaTitanX
                                              : core::SolverKind::kTpaM4000;
  cluster::NetworkModel net = cluster::NetworkModel::ethernet_10g();
  if (network == "100g") net = cluster::NetworkModel::ethernet_100g();
  if (network == "pcie") net = cluster::NetworkModel::pcie_peer();

  data::WebspamLikeConfig config;
  config.num_examples =
      static_cast<data::Index>(parser.get_int("examples", 8192));
  config.num_features =
      static_cast<data::Index>(parser.get_int("features", 16384));
  const auto dataset = data::make_webspam_like(config);

  const double eps = parser.get_double("eps", 1e-5);
  const int max_workers = static_cast<int>(parser.get_int("max-workers", 8));
  const int epoch_cap = static_cast<int>(parser.get_int("epochs", 200));

  std::printf("device=%s network=%s target gap=%.1e (simulated times at "
              "paper scale)\n\n",
              device.c_str(), net.name.c_str(), eps);
  std::printf("%7s  %7s  %10s  %9s  %9s  %9s  %9s  %6s\n", "workers",
              "epochs", "time-to-eps", "gpu", "host", "pcie", "network",
              "comm%");
  for (int workers = 1; workers <= max_workers; workers *= 2) {
    cluster::DistConfig dist;
    dist.formulation = core::Formulation::kDual;
    dist.num_workers = workers;
    dist.aggregation = cluster::AggregationMode::kAdaptive;
    dist.local_solver.kind = solver_kind;
    dist.network = net;
    dist.lambda = parser.get_double("lambda", 1e-3);
    cluster::DistributedSolver solver(dataset, dist);

    cluster::EpochBreakdown total{};
    double time_to_eps = -1.0;
    double sim_time = solver.setup_sim_seconds();
    int epochs_used = 0;
    for (int epoch = 1; epoch <= epoch_cap; ++epoch) {
      const auto report = solver.run_epoch();
      sim_time += report.sim_seconds;
      const auto& b = solver.last_breakdown();
      total.compute_solver += b.compute_solver;
      total.compute_host += b.compute_host;
      total.pcie += b.pcie;
      total.network += b.network;
      epochs_used = epoch;
      if (solver.duality_gap() <= eps) {
        time_to_eps = sim_time;
        break;
      }
    }
    const double comm = total.pcie + total.network;
    char time_text[32];
    if (time_to_eps >= 0) {
      std::snprintf(time_text, sizeof(time_text), "%.3fs", time_to_eps);
    } else {
      std::snprintf(time_text, sizeof(time_text), "not hit");
    }
    std::printf("%7d  %7d  %10s  %9.3f  %9.4f  %9.4f  %9.4f  %5.1f%%\n",
                workers, epochs_used, time_text, total.compute_solver,
                total.compute_host, total.pcie, total.network,
                100.0 * comm / total.total());
  }
  std::printf("\nNote: the dataset is a webspam-scale stand-in; simulated "
              "times are evaluated at the real dataset's dimensions "
              "(DESIGN.md section 5).\n");
  return 0;
}
