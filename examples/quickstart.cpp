// Quickstart: train ridge regression with sequential SCD in both
// formulations and watch the duality gap close.
//
//   ./quickstart [--examples N] [--features M] [--lambda L] [--epochs E]
#include <cstdio>

#include "core/convergence.hpp"
#include "core/metrics.hpp"
#include "core/seq_scd.hpp"
#include "data/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("quickstart",
                         "ridge regression via stochastic coordinate descent");
  parser.add_option("examples", "number of training examples", "2048");
  parser.add_option("features", "number of features", "1024");
  parser.add_option("lambda", "regularisation strength", "1e-3");
  parser.add_option("epochs", "training epochs", "30");
  if (!parser.parse(argc, argv)) return 1;

  // 1. Get a dataset.  Generators stand in for the paper's webspam corpus;
  //    sparse::read_svmlight_file loads real data in LIBSVM format.
  data::WebspamLikeConfig config;
  config.num_examples =
      static_cast<data::Index>(parser.get_int("examples", 2048));
  config.num_features =
      static_cast<data::Index>(parser.get_int("features", 1024));
  const auto dataset = data::make_webspam_like(config);
  std::printf("dataset: %u examples, %u features, %llu nonzeros\n",
              dataset.num_examples(), dataset.num_features(),
              static_cast<unsigned long long>(dataset.nnz()));

  // 2. Define the problem.
  const core::RidgeProblem problem(dataset,
                                   parser.get_double("lambda", 1e-3));

  // 3. Train with Algorithm 1 in both formulations; the duality gap is the
  //    scale-free progress measure (it converges to zero for both).
  core::RunOptions options;
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 30));
  options.record_interval = 5;

  for (const auto f : {core::Formulation::kPrimal, core::Formulation::kDual}) {
    core::SeqScdSolver solver(problem, f, /*seed=*/1);
    std::printf("\n%s form:\n  epoch   duality-gap\n", formulation_name(f));
    const auto trace = core::run_solver(solver, problem, options);
    for (const auto& point : trace.points()) {
      std::printf("  %5d   %.3e\n", point.epoch, point.gap);
    }

    // 4. Use the model: primal weights predict directly; a dual model maps
    //    through eq. (5), β = (1/λ)·Aᵀα.
    const auto beta =
        f == core::Formulation::kPrimal
            ? solver.state().weights
            : problem.primal_from_dual_shared(solver.state().shared);
    const auto predictions = core::predict(dataset, beta);
    std::printf("  train RMSE %.4f, R^2 %.4f\n",
                core::rmse(predictions, dataset.labels()),
                core::r_squared(predictions, dataset.labels()));
  }
  return 0;
}
