// Feature selection and classification — the paper's named extensions.
//
// Sections I-II of the paper note that the same stochastic coordinate
// machinery solves "regression with elastic net regularization as well as
// support vector machines".  This example exercises both extensions on one
// corpus:
//   1. an elastic-net path over the L1 ratio, showing how sparsity grows
//      and which features survive selection, and
//   2. an SVM trained by SDCA on sign labels, with its duality gap closing
//      just like the ridge pipeline's.
// Both run on the same AsyncEngine as TPA-SCD, so passing --gpu executes
// them with the Titan X's asynchrony window.
//
//   ./feature_selection [--examples N] [--features M] [--lambda L] [--gpu]
#include <cstdio>

#include "core/elastic_net.hpp"
#include "core/metrics.hpp"
#include "core/svm_dual.hpp"
#include "data/generators.hpp"
#include "gpusim/device.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("feature_selection",
                         "elastic-net path + SVM training (paper Sect. II "
                         "extensions)");
  parser.add_option("examples", "number of training examples", "4096");
  parser.add_option("features", "number of features", "8192");
  parser.add_option("lambda", "regularisation strength", "0.01");
  parser.add_option("epochs", "epochs per solve", "40");
  parser.add_flag("gpu", "run with the Titan X asynchrony window");
  if (!parser.parse(argc, argv)) return 1;

  data::WebspamLikeConfig config;
  config.num_examples =
      static_cast<data::Index>(parser.get_int("examples", 4096));
  config.num_features =
      static_cast<data::Index>(parser.get_int("features", 8192));
  config.model_density = 0.05;  // few truly informative features
  const auto dataset = data::make_webspam_like(config);

  const double lambda = parser.get_double("lambda", 0.01);
  const int epochs = static_cast<int>(parser.get_int("epochs", 40));
  const std::size_t window =
      parser.get_bool("gpu")
          ? static_cast<std::size_t>(
                gpusim::DeviceSpec::titan_x().async_staleness())
          : 1;
  std::printf("dataset %u x %u, lambda %.3g, %s execution\n",
              dataset.num_examples(), dataset.num_features(), lambda,
              window == 1 ? "sequential" : "GPU-window");

  // --- 1. Elastic-net regularisation path over the L1 ratio. ---
  std::printf("\nelastic-net path:\n  l1-ratio  non-zeros  objective   "
              "kkt-violation\n");
  for (const double eta : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const core::ElasticNetProblem problem(dataset, lambda, eta);
    core::ElasticNetSolver solver(problem, /*seed=*/3, window);
    for (int epoch = 0; epoch < epochs; ++epoch) solver.run_epoch();
    std::printf("  %8.2f  %9zu  %.6f  %.3e\n", eta,
                dataset.num_features() - solver.zero_coefficients(),
                solver.objective(), solver.kkt_violation());
  }
  std::printf("  (eta = 0 is ridge: every coefficient active; eta = 1 is "
              "the lasso: only informative features survive)\n");

  // --- 1b. A glmnet-style lambda path with warm starts (ref. [4] of the
  //     paper): the whole model family for barely more than one solve. ---
  core::PathOptions path_options;
  path_options.l1_ratio = 1.0;
  path_options.num_lambdas = 8;
  path_options.lambda_min_ratio = 1e-2;
  const auto path = core::elastic_net_path(dataset, path_options);
  std::printf("\nlasso lambda path (warm-started):\n  lambda      non-zeros\n");
  for (const auto& point : path) {
    std::printf("  %.4e  %zu\n", point.lambda, point.nonzeros);
  }

  // --- 2. SVM via SDCA on sign labels. ---
  std::vector<float> signs(dataset.labels().begin(), dataset.labels().end());
  for (auto& y : signs) y = y >= 0.0F ? 1.0F : -1.0F;
  const data::Dataset classes("svm_corpus", dataset.by_row(),
                              std::move(signs));
  const core::SvmProblem svm(classes, 1e-3);
  core::SvmDualSolver sdca(svm, /*seed=*/4, window);
  std::printf("\nSVM (SDCA, hinge loss):\n  epoch  duality-gap  accuracy\n");
  for (int epoch = 1; epoch <= epochs; ++epoch) {
    sdca.run_epoch();
    if (epoch % 10 == 0 || epoch == 1) {
      const auto predictions = core::predict(classes, sdca.weights());
      std::printf("  %5d  %.3e    %.2f%%\n", epoch, sdca.duality_gap(),
                  100.0 * core::sign_accuracy(predictions, classes.labels()));
    }
  }
  return 0;
}
