// Ablation: Algorithm 4's computed γ* versus the alternatives the paper
// cites — plain averaging (γ = 1/K, [24]) and a hand-tuned fixed γ ([25]).
//
// For each strategy the bench reports epochs and simulated time to a target
// duality gap at K = 8.  The point of adaptive aggregation is that it meets
// or beats the *best* fixed γ without any tuning — and the best fixed γ is
// dataset-dependent, which is exactly what a user cannot know in advance.
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("ablation_aggregation",
                         "adaptive gamma vs fixed-gamma aggregation, K = 8");
  bench::add_common_options(parser);
  parser.add_option("workers", "number of workers", "8");
  parser.add_option("eps", "target duality gap", "1e-5");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 500));
  const int workers = static_cast<int>(parser.get_int("workers", 8));
  const double eps = parser.get_double("eps", 1e-5);

  const auto dataset = bench::make_webspam(options);

  struct Strategy {
    std::string label;
    cluster::AggregationMode mode;
    double gamma;
  };
  std::vector<Strategy> strategies{
      {"averaging (1/K)", cluster::AggregationMode::kAveraging, 0.0},
      {"fixed 0.25", cluster::AggregationMode::kFixed, 0.25},
      {"fixed 0.5", cluster::AggregationMode::kFixed, 0.5},
      {"fixed 1.0 (adding)", cluster::AggregationMode::kFixed, 1.0},
      {"adaptive (Alg. 4)", cluster::AggregationMode::kAdaptive, 0.0},
  };

  for (const auto f : {core::Formulation::kPrimal, core::Formulation::kDual}) {
    std::cout << "\n== " << formulation_name(f) << " form, K=" << workers
              << ", target gap " << util::Table::format_number(eps)
              << " ==\n";
    util::Table table({"strategy", "epochs", "sim time (s)", "final gap"});
    double adaptive_time = 0.0;
    double best_fixed_time = 0.0;
    for (const auto& strategy : strategies) {
      cluster::DistConfig config;
      config.formulation = f;
      config.num_workers = workers;
      config.aggregation = strategy.mode;
      config.fixed_gamma = strategy.gamma;
      config.local_solver.kind = core::SolverKind::kSequential;
      config.lambda = options.lambda;
      config.seed = options.seed;
      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run_options;
      run_options.max_epochs = options.max_epochs;
      run_options.record_interval = 1;
      run_options.target_gap = eps;
      const auto trace = cluster::run_distributed(solver, run_options);
      const auto epochs = trace.epochs_to_gap(eps);
      const auto [seconds, reached] = bench::time_to_gap(trace, eps);
      table.begin_row();
      table.add_cell(strategy.label);
      table.add_cell(epochs.has_value() ? std::to_string(*epochs)
                                        : "not reached");
      table.add_cell(reached ? util::Table::format_number(seconds)
                             : "not reached");
      table.add_number(trace.final_gap());
      if (strategy.mode == cluster::AggregationMode::kAdaptive && reached) {
        adaptive_time = seconds;
      }
      if (strategy.mode == cluster::AggregationMode::kFixed && reached &&
          (best_fixed_time == 0.0 || seconds < best_fixed_time)) {
        best_fixed_time = seconds;
      }
    }
    bench::emit(table, options);
    if (adaptive_time > 0.0 && best_fixed_time > 0.0) {
      bench::shape_check(
          std::string(formulation_name(f)) +
              " adaptive time / best hand-tuned fixed gamma time",
          adaptive_time / best_fixed_time, "~1 without any tuning");
    }
  }
  return 0;
}
