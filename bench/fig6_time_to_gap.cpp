// Reproduces Fig. 6: simulated time to reach a target duality gap
// ε ∈ {3e-3, 3e-4, 3e-5} as a function of the number of workers, with
// averaging vs adaptive aggregation; primal (6a) and dual (6b) forms;
// sequential SCD local solvers on a 10 GbE cluster; webspam stand-in.
//
// Paper shape: adaptive aggregation lets training time stay roughly
// constant as workers are added (the K-fold per-worker work reduction
// cancels the K-fold convergence slow-down); for the dual at large ε,
// adaptive can be somewhat slower (crossover, cf. Fig. 4b).
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

namespace {

constexpr int kWorkerCounts[] = {1, 2, 3, 4, 5, 6, 7, 8};
constexpr double kEps[] = {3e-3, 3e-4, 3e-5};

}  // namespace

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig6_time_to_gap",
                         "Fig. 6 — time to target gap vs number of workers");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 500));

  const auto dataset = bench::make_webspam(options);

  for (const auto formulation :
       {core::Formulation::kPrimal, core::Formulation::kDual}) {
    std::cout << "\n== Fig. 6" << (formulation == core::Formulation::kPrimal
                                       ? "a: primal form"
                                       : "b: dual form")
              << ": sim time (s) to reach gap <= eps ==\n";
    util::Table table({"workers", "avg eps=3e-3", "avg eps=3e-4",
                       "avg eps=3e-5", "ada eps=3e-3", "ada eps=3e-4",
                       "ada eps=3e-5"});
    // time[mode][eps] at K=1 and K=8 for the flat-scaling shape check.
    double t_first[2][3] = {};
    double t_last[2][3] = {};
    for (const int workers : kWorkerCounts) {
      table.begin_row();
      table.add_integer(workers);
      int mode_idx = 0;
      for (const auto mode : {cluster::AggregationMode::kAveraging,
                              cluster::AggregationMode::kAdaptive}) {
        cluster::DistConfig config;
        config.formulation = formulation;
        config.num_workers = workers;
        config.aggregation = mode;
        config.local_solver.kind = core::SolverKind::kSequential;
        config.lambda = options.lambda;
        config.seed = options.seed;
        cluster::DistributedSolver solver(dataset, config);
        core::RunOptions run_options;
        run_options.max_epochs = options.max_epochs;
        run_options.record_interval = 1;
        run_options.target_gap = kEps[2];
        const auto trace = cluster::run_distributed(solver, run_options);
        for (int e = 0; e < 3; ++e) {
          const auto [seconds, reached] = bench::time_to_gap(trace, kEps[e]);
          table.add_cell(reached ? util::Table::format_number(seconds)
                                 : "not reached");
          if (reached) {
            if (workers == kWorkerCounts[0]) t_first[mode_idx][e] = seconds;
            t_last[mode_idx][e] = seconds;
          }
        }
        ++mode_idx;
      }
    }
    bench::emit(table, options);

    if (t_first[1][2] > 0 && t_last[1][2] > 0) {
      bench::shape_check(
          std::string(formulation_name(formulation)) +
              " adaptive time(K=8)/time(K=1) at eps=3e-5",
          t_last[1][2] / t_first[1][2],
          "~1 (scale out without losing training time)");
    }
  }
  return 0;
}
