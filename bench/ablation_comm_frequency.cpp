// Ablation: the computation/communication trade-off of Section IV.A.
//
// The paper, citing Dünner et al. [23], observes that the distributed
// slow-down "can be somewhat alleviated if one was able to communicate
// shared vector updates more frequently and thus perform fewer coordinate
// updates on the workers between communication stages", with an
// infrastructure-dependent optimum.  This bench sweeps H — the number of
// local passes each worker performs per communication round — on a slow
// (10 GbE) and a fast (PCIe) interconnect, reporting simulated time to a
// target gap.  On the fast network small H wins (fresher shared vectors);
// on the slow network larger H amortises the per-round latency.
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("ablation_comm_frequency",
                         "local passes per round vs interconnect "
                         "(Sect. IV.A / [23] trade-off)");
  bench::add_common_options(parser);
  parser.add_option("workers", "number of workers", "8");
  parser.add_option("eps", "target duality gap", "1e-4");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 400));
  const int workers = static_cast<int>(parser.get_int("workers", 8));
  const double eps = parser.get_double("eps", 1e-4);

  const auto dataset = bench::make_webspam(options);

  const cluster::NetworkModel networks[] = {
      cluster::NetworkModel::ethernet_10g(),
      cluster::NetworkModel::pcie_peer(),
  };

  for (const auto& network : networks) {
    std::cout << "\n== " << network.name << ", dual form, K=" << workers
              << ", target gap " << util::Table::format_number(eps)
              << " ==\n";
    util::Table table({"local passes H", "rounds", "sim time (s)",
                       "comm share", "final gap"});
    for (const int passes : {1, 2, 4, 8}) {
      cluster::DistConfig config;
      config.formulation = core::Formulation::kDual;
      config.num_workers = workers;
      config.local_epochs_per_round = passes;
      // GPU local solvers make compute cheap, so the per-round network cost
      // is actually visible in the balance.
      config.local_solver.kind = core::SolverKind::kTpaM4000;
      config.network = network;
      config.lambda = options.lambda;
      config.seed = options.seed;
      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run_options;
      run_options.max_epochs = options.max_epochs / passes;
      run_options.record_interval = 1;
      run_options.target_gap = eps;
      core::ConvergenceTrace trace;
      cluster::EpochBreakdown total{};
      double sim_total = solver.setup_sim_seconds();
      for (int round = 1; round <= run_options.max_epochs; ++round) {
        const auto report = solver.run_epoch();
        sim_total += report.sim_seconds;
        const auto& b = solver.last_breakdown();
        total.compute_solver += b.compute_solver;
        total.compute_host += b.compute_host;
        total.pcie += b.pcie;
        total.network += b.network;
        core::TracePoint point;
        point.epoch = round;
        point.gap = solver.duality_gap();
        point.sim_seconds = sim_total;
        trace.add(point);
        if (point.gap <= eps) break;
      }
      const auto rounds = trace.epochs_to_gap(eps);
      const auto [seconds, reached] = bench::time_to_gap(trace, eps);
      table.begin_row();
      table.add_integer(passes);
      table.add_cell(rounds.has_value() ? std::to_string(*rounds)
                                        : "not reached");
      table.add_cell(reached ? util::Table::format_number(seconds)
                             : "not reached");
      table.add_cell(util::Table::format_number(
                         100.0 * (total.pcie + total.network) /
                         total.total()) +
                     "%");
      table.add_number(trace.final_gap());
    }
    bench::emit(table, options);
  }
  std::cout << "\nnote: larger H amortises the per-round communication (see the "
               "comm-share column) but each extra local pass works against "
               "a staler shared vector and so barely reduces the rounds "
               "needed — on these interconnects H = 1 (Algorithm 3 as "
               "written) is the right operating point, which is the "
               "infrastructure-dependent trade-off of [23].\n";
  return 0;
}
