// Reproduces Fig. 1: convergence in duality gap of the primal ridge
// regression solvers — sequential SCD, A-SCD (16 threads), PASSCoDe-Wild
// (16 threads), TPA-SCD on the M4000 and on the Titan X — as a function of
// epochs (Fig. 1a) and of time (Fig. 1b).  webspam stand-in, λ = 1e-3.
//
// Paper shapes to reproduce:
//  * per epoch, every atomic method tracks sequential SCD; PASSCoDe-Wild
//    stalls at a nonzero gap floor (violated optimality conditions);
//  * per time, A-SCD ≈ 2x, Wild ≈ 4x, TPA-SCD(M4000) ≈ 14x and
//    TPA-SCD(Titan X) ≈ 25x faster than sequential.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig1_primal_convergence",
                         "Fig. 1 — primal SCD solver comparison (webspam)");
  bench::add_common_options(parser);
  parser.add_option("record", "record gap every R epochs", "10");
  parser.add_option("eps", "gap level for the speed-up column", "1e-4");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 200));
  const auto record = static_cast<int>(parser.get_int("record", 10));
  const double eps = parser.get_double("eps", 1e-4);

  const auto dataset = bench::make_webspam(options);
  const core::RidgeProblem problem(dataset, options.lambda);

  const core::SolverKind kinds[] = {
      core::SolverKind::kSequential, core::SolverKind::kAsyncAtomic,
      core::SolverKind::kAsyncWild, core::SolverKind::kTpaM4000,
      core::SolverKind::kTpaTitanX};
  const auto runs = bench::run_solver_suite(
      problem, core::Formulation::kPrimal, kinds, options, record);

  std::cout << "\n== Fig. 1a: duality gap vs epochs (primal, lambda="
            << options.lambda << ") ==\n";
  bench::print_gap_vs_epochs(runs, options);

  std::cout << "\n== Fig. 1b: duality gap vs simulated time ==\n";
  bench::print_time_summary(runs, eps, options);

  bench::shape_check("A-SCD/seq primal speed-up",
                     bench::speedup_vs_first(runs, 1, eps), "~2x");
  bench::shape_check("M4000/seq primal speed-up",
                     bench::speedup_vs_first(runs, 3, eps), "~14x");
  bench::shape_check("TitanX/seq primal speed-up",
                     bench::speedup_vs_first(runs, 4, eps), "~25x");
  bench::shape_check("PASSCoDe-Wild gap floor (does not reach 0)",
                     runs[2].trace.final_gap(), "> 1e-4 floor");
  return 0;
}
