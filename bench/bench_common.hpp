// Shared infrastructure for the figure-reproduction harnesses.
//
// Every fig*_ binary accepts a common set of CLI options (dataset scale,
// epochs, λ, --csv), builds the scaled webspam- or criteo-like dataset, and
// prints (a) the dataset summary, (b) the figure's series as an aligned
// table, and (c) a shape-check line comparing the measured headline ratio
// with the paper's.  Simulated times are evaluated at paper-scale dataset
// statistics; see DESIGN.md §5.
#pragma once

#include <iostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/convergence.hpp"
#include "core/solver_factory.hpp"
#include "data/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace tpa::bench {

struct BenchOptions {
  data::Index examples = 6144;
  data::Index features = 12288;
  double lambda = 1e-3;
  int max_epochs = 50;
  std::uint64_t seed = 42;
  bool csv = false;
};

/// Registers the common options on `parser`.
void add_common_options(util::ArgParser& parser);

/// Extracts the common options after parse().
BenchOptions read_common_options(const util::ArgParser& parser);

/// Builds the webspam-like dataset at the requested scale and prints its
/// summary to stderr.
data::Dataset make_webspam(const BenchOptions& options);

/// Prints `table` as text (or CSV when options.csv).
void emit(const util::Table& table, const BenchOptions& options);

/// Prints a one-line qualitative comparison with the paper, e.g.
///   shape-check: TitanX/seq dual speed-up = 33.8x (paper: ~35x)
void shape_check(const std::string& description, double measured,
                 const std::string& paper_value);

/// First recorded gap <= eps => that point's sim time; otherwise the last
/// sim time (lower bound marker).  Returns (seconds, reached).
std::pair<double, bool> time_to_gap(const core::ConvergenceTrace& trace,
                                    double eps);

struct SolverRun {
  std::string name;
  core::ConvergenceTrace trace;
  double sim_seconds_per_epoch = 0.0;
};

/// Runs each solver kind on `problem` and records its convergence trace.
/// All runs share max_epochs / record cadence so the per-epoch tables align.
std::vector<SolverRun> run_solver_suite(
    const core::RidgeProblem& problem, core::Formulation formulation,
    std::span<const core::SolverKind> kinds, const BenchOptions& options,
    int record_interval = 1);

/// Duality gap vs epochs, one column per solver (Figs. 1a / 2a).
void print_gap_vs_epochs(const std::vector<SolverRun>& runs,
                         const BenchOptions& options);

/// Per-solver summary: sim s/epoch, final gap, simulated time to `eps`, and
/// speed-up relative to the first run (Figs. 1b / 2b).
void print_time_summary(const std::vector<SolverRun>& runs, double eps,
                        const BenchOptions& options);

/// Simulated-time speed-up of runs[idx] over runs[0] at gap `eps`
/// (0 when either run never reaches eps).
double speedup_vs_first(const std::vector<SolverRun>& runs, std::size_t idx,
                        double eps);

}  // namespace tpa::bench
