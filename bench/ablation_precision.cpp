// Ablation: the bandwidth-lean hot path (DESIGN.md §16).
//
// Two independent byte diets attack the two hottest channels of distributed
// TPA-SCD: fp16 *storage* for the shared vector (the per-nnz gather/scatter
// traffic of every local sweep, arithmetic still fp32-widened with fp64
// accumulation) and fp16-quantized *delta exchange* (the worker → master
// reduce leg, one fp32 scale per 256 entries, FNV checksum over the encoded
// image).  This bench sweeps the 2x2 grid
//
//   fp32/dense        the historical path (baseline)
//   fp32/compressed   quantized deltas only
//   fp16/dense        half-storage shared vectors only
//   fp16/compressed   both diets (the bandwidth-lean arm)
//
// on a GPU cluster over 10 GbE — the configuration Section V.A calls
// communication-limited — plus a heterogeneous-fleet arm that reruns the
// placement cost-model drift audit with compression on (the cost model
// prices the deterministic dense-quantized wire size, so predicted vs
// measured must still agree).
//
// Emits BENCH_precision.json; with --check asserts (a) every arm reaches
// --eps (storage precision must not cost convergence at this tolerance),
// (b) the bandwidth-lean arm's simulated time-to-gap speedup over the
// baseline clears --min-speedup, (c) delta bytes-on-wire shrink by at least
// --min-reduction vs the raw fp64 exchange, and (d) per-term cost-model
// drift on the compressed fleet stays under --max-drift.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"

#include "cluster/delta_codec.hpp"
#include "cluster/dist_solver.hpp"
#include "cluster/placement/drift.hpp"
#include "cluster/placement/fleet.hpp"
#include "linalg/half.hpp"
#include "linalg/kernels.hpp"
#include "obs/build_info.hpp"

namespace {

using namespace tpa;

struct Arm {
  const char* name;
  linalg::SharedPrecision precision;
  bool compress;
};

struct ArmResult {
  double time_to_gap = 0.0;
  bool reached = false;
  double final_gap = 0.0;
  int epochs = 0;
  double wire_mb = 0.0;   // delta bytes actually put on the wire
  double dense_mb = 0.0;  // the raw fp64 exchange would have cost this
  double reduction = 0.0; // dense / wire (1.0 on uncompressed arms)
};

}  // namespace

int main(int argc, char** argv) {
  try {
    util::ArgParser parser("ablation_precision",
                           "fp16 shared storage x compressed delta exchange "
                           "on a communication-limited GPU cluster");
    bench::add_common_options(parser);
    parser.add_option("workers", "GPU workers", "8");
    parser.add_option("merge-every",
                      "replica merge interval (>0: batched write-back — the "
                      "pipeline whose storage width fp16 halves)",
                      "1");
    parser.add_option("eps", "target duality gap", "3e-3");
    parser.add_option("fleet",
                      "heterogeneous fleet for the drift arm "
                      "(see --help in tpascd_train)",
                      "4xtitanx,4xcpu:4");
    parser.add_option("placement-seed", "annealer seed for the drift arm",
                      "7");
    parser.add_option("out-dir", "directory for BENCH_precision.json", ".");
    parser.add_option("min-speedup",
                      "--check fails below this bandwidth-lean time-to-gap "
                      "speedup",
                      "1.3");
    parser.add_option("min-reduction",
                      "--check fails below this delta bytes-on-wire "
                      "reduction",
                      "2.0");
    parser.add_option("max-drift",
                      "--check fails above this per-term cost-model drift "
                      "on the compressed fleet",
                      "0.15");
    parser.add_flag("check", "exit non-zero if a precision gate fails");
    if (!parser.parse(argc, argv)) return 1;

    auto options = bench::read_common_options(parser);
    options.max_epochs = static_cast<int>(parser.get_int("epochs", 200));
    const double eps = parser.get_double("eps", 3e-3);
    const int workers = static_cast<int>(parser.get_int("workers", 8));

    const auto dataset = bench::make_webspam(options);
    const auto saved_precision = linalg::shared_precision();

    const Arm arms[] = {
        {"fp32/dense", linalg::SharedPrecision::kFp32, false},
        {"fp32/compressed", linalg::SharedPrecision::kFp32, true},
        {"fp16/dense", linalg::SharedPrecision::kFp16, false},
        {"fp16/compressed", linalg::SharedPrecision::kFp16, true},
    };

    util::Table table({"arm", "time-to-gap (s)", "epochs", "final gap",
                       "delta wire (MB)", "reduction"});
    std::vector<ArmResult> results;
    for (const auto& arm : arms) {
      linalg::set_shared_precision(arm.precision);
      cluster::DistConfig config;
      config.formulation = core::Formulation::kDual;
      config.num_workers = workers;
      config.local_solver.kind = core::SolverKind::kTpaM4000;
      // All four arms run the replicated write-back pipeline: fp16 storage
      // only exists there (float atomics have no 16-bit form), and sharing
      // the algorithm isolates the precision/compression effect.
      config.local_solver.merge_every =
          static_cast<int>(parser.get_int("merge-every", 1));
      config.network = cluster::NetworkModel::ethernet_10g();
      config.lambda = options.lambda;
      config.seed = options.seed;
      config.compress_deltas = arm.compress;

      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run_options;
      run_options.max_epochs = options.max_epochs;
      run_options.record_interval = 1;
      run_options.target_gap = eps;
      const auto trace = cluster::run_distributed(solver, run_options);

      ArmResult result;
      const auto [seconds, reached] = bench::time_to_gap(trace, eps);
      result.time_to_gap = seconds;
      result.reached = reached;
      result.final_gap =
          trace.points().empty() ? 0.0 : trace.points().back().gap;
      result.epochs = static_cast<int>(trace.points().size());
      result.wire_mb =
          static_cast<double>(solver.delta_bytes_on_wire()) / 1e6;
      result.dense_mb =
          static_cast<double>(solver.delta_bytes_dense()) / 1e6;
      result.reduction = solver.delta_bytes_on_wire() > 0
                             ? result.dense_mb / result.wire_mb
                             : 0.0;
      results.push_back(result);

      table.begin_row();
      table.add_cell(arm.name);
      table.add_cell(result.reached
                         ? util::Table::format_number(result.time_to_gap)
                         : "not reached");
      table.add_integer(result.epochs);
      table.add_cell(util::Table::format_number(result.final_gap));
      table.add_cell(util::Table::format_number(result.wire_mb));
      table.add_cell(util::Table::format_number(result.reduction) + "x");
    }
    linalg::set_shared_precision(saved_precision);
    bench::emit(table, options);

    const auto& baseline = results[0];
    const auto& lean = results[3];  // fp16/compressed is the headline arm
    const double speedup =
        (baseline.reached && lean.reached && lean.time_to_gap > 0)
            ? baseline.time_to_gap / lean.time_to_gap
            : 0.0;
    bench::shape_check("bandwidth-lean (fp16/compressed) time-to-gap speedup",
                       speedup, ">=1.3x (both hot channels halved)");
    bench::shape_check("delta bytes-on-wire reduction vs raw fp64",
                       lean.reduction, ">=2x (fp16 payload + fp32 scales)");

    // Drift arm: the annealed heterogeneous placement, compressed.  The cost
    // model prices the deterministic dense-quantized wire size, so the
    // predicted round decomposition must still match the engine's measured
    // attribution term by term.
    const auto fleet = cluster::placement::parse_fleet_spec(
        parser.get_string("fleet", "4xtitanx,4xcpu:4"));
    double fleet_drift = 0.0;
    {
      cluster::DistConfig config;
      config.formulation = core::Formulation::kDual;
      config.num_workers = static_cast<int>(fleet.size());
      config.aggregation = cluster::AggregationMode::kAveraging;
      config.network = cluster::NetworkModel::ethernet_10g();
      config.lambda = options.lambda;
      config.seed = options.seed;
      config.fleet = fleet;
      config.placement = cluster::placement::PlacementMode::kOptimize;
      config.placement_seed =
          static_cast<std::uint64_t>(parser.get_int("placement-seed", 7));
      config.compress_deltas = true;

      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run_options;
      run_options.max_epochs = options.max_epochs;
      run_options.record_interval = 1;
      run_options.target_gap = eps;
      cluster::run_distributed(solver, run_options);
      if (const auto* plan = solver.placement_result()) {
        const auto drift = cluster::placement::audit_placement_drift(
            plan->predicted, solver.attribution_totals(),
            solver.attribution_rounds());
        fleet_drift = drift.max_rel_error;
        std::printf("\n[compressed fleet] ");
        cluster::placement::print_drift_report(std::cout, drift);
      }
    }

    const auto info = obs::build_info();
    const bench::BenchMeta meta = {
        {"git_sha", info.git_sha},
        {"compiler", info.compiler},
        {"build_type", info.build_type},
        {"kernel_backend",
         linalg::kernel_backend_name(linalg::kernel_backend())},
        {"kernel_native", linalg::kernel_native_build() ? "true" : "false"},
        {"half_hardware", linalg::half_hardware_build() ? "true" : "false"},
        {"network", "10GbE"},
        {"fleet", cluster::placement::fleet_summary(fleet)},
    };
    std::vector<bench::BenchResult> records;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      records.push_back(
          {std::string("time_to_gap/") + arms[i].name, r.time_to_gap,
           "sim_seconds",
           {{"reached", r.reached ? 1.0 : 0.0},
            {"epochs", static_cast<double>(r.epochs)},
            {"final_gap", r.final_gap},
            {"delta_wire_mb", r.wire_mb},
            {"delta_dense_mb", r.dense_mb},
            {"wire_reduction", r.reduction}}});
    }
    records.push_back({"speedup/time_to_gap", speedup, "x", {{"eps", eps}}});
    records.push_back(
        {"reduction/delta_bytes", lean.reduction, "x", {}});
    records.push_back(
        {"drift/compressed_fleet", fleet_drift, "rel_error", {}});
    const auto out_dir = parser.get_string("out-dir", ".");
    bench::write_json_file(out_dir + "/BENCH_precision.json", "precision",
                           records, meta);
    std::printf("wrote %s/BENCH_precision.json\n", out_dir.c_str());

    if (parser.get_bool("check")) {
      const double min_speedup = parser.get_double("min-speedup", 1.3);
      const double min_reduction = parser.get_double("min-reduction", 2.0);
      const double max_drift = parser.get_double("max-drift", 0.15);
      bool ok = true;
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].reached) {
          std::printf("CHECK FAILED: [%s] never reached eps %.1e "
                      "(final gap %.3e) — storage precision is costing "
                      "convergence\n",
                      arms[i].name, eps, results[i].final_gap);
          ok = false;
        }
      }
      if (speedup < min_speedup) {
        std::printf("CHECK FAILED: bandwidth-lean speedup %.2fx < %.2fx\n",
                    speedup, min_speedup);
        ok = false;
      }
      for (const std::size_t i : {std::size_t{1}, std::size_t{3}}) {
        if (results[i].reduction < min_reduction) {
          std::printf("CHECK FAILED: [%s] wire reduction %.2fx < %.2fx\n",
                      arms[i].name, results[i].reduction, min_reduction);
          ok = false;
        }
      }
      if (fleet_drift > max_drift) {
        std::printf("CHECK FAILED: compressed-fleet cost-model drift %.3f > "
                    "%.3f — the wire-size pricing has diverged from the "
                    "round engine\n",
                    fleet_drift, max_drift);
        ok = false;
      }
      if (!ok) return 2;
      std::printf("precision checks passed (speedup %.2fx >= %.2fx, "
                  "reduction %.2fx >= %.2fx, fleet drift %.3f <= %.3f)\n",
                  speedup, min_speedup, lean.reduction, min_reduction,
                  fleet_drift, max_drift);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
