// Reproduces Fig. 10: training on the 40 GB one-day criteo sample (200 M
// examples, 75 M features, all matrix values 1.0) with K = 4 workers, dual
// form.  Three schemes:
//   * distributed SCD, single-threaded sequential local solvers;
//   * distributed PASSCoDe-Wild, 16 threads per worker;
//   * distributed TPA-SCD on Titan X GPUs with adaptive aggregation.
//
// Paper shapes: TPA-SCD reaches small duality gaps ≈40x faster than
// single-threaded SCD and ≈20x faster than PASSCoDe-Wild; the Wild variant
// converges to a nonzero gap floor (violated optimality conditions).
//
// The capacity story of Section V is also checked: at paper scale the
// sample does NOT fit in one Titan X's 12 GB, but a quarter of it does —
// the TPA workers charge paper-scale bytes against simulated device memory.
#include "bench_common.hpp"

#include <filesystem>

#include "cluster/dist_solver.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_memory.hpp"
#include "sparse/matrix_stats.hpp"
#include "store/format.hpp"
#include "store/shard_reader.hpp"
#include "store/streaming_dataset.hpp"
#include "store/streaming_solver.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig10_criteo_large",
                         "Fig. 10 — large-scale criteo sample, K = 4 workers");
  bench::add_common_options(parser);
  parser.add_option("fields", "one-hot categorical fields per example", "24");
  parser.add_option("buckets", "hash buckets per field", "512");
  parser.add_option("record", "record gap every R epochs", "2");
  parser.add_option("eps", "gap level for the speed-up checks", "1e-4");
  parser.add_option("store-dir", "directory for the out-of-core arm's store",
                    "fig10_criteo_store");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 120));
  const auto record = static_cast<int>(parser.get_int("record", 2));
  const double eps = parser.get_double("eps", 1e-4);

  data::CriteoLikeConfig config;
  config.num_examples = static_cast<data::Index>(
      parser.get_int("examples", 32768));
  config.num_fields =
      static_cast<data::Index>(parser.get_int("fields", 24));
  config.buckets_per_field =
      static_cast<data::Index>(parser.get_int("buckets", 512));
  config.seed = options.seed;
  const auto dataset = data::make_criteo_like(config);
  std::cerr << "# dataset " << dataset.name() << ": "
            << sparse::compute_stats(dataset.by_row()).summary() << "\n";

  // --- The Section V capacity argument at paper scale. ---
  const auto& scale = *dataset.paper_scale();
  const auto paper_bytes = static_cast<std::size_t>(scale.nnz) * 8;
  const auto titan = gpusim::DeviceSpec::titan_x();
  std::cout << "paper-scale sample: "
            << static_cast<double>(paper_bytes) / (1024.0 * 1024 * 1024)
            << " GiB; fits one " << titan.name << " ("
            << static_cast<double>(titan.mem_capacity_bytes) /
                   (1024.0 * 1024 * 1024)
            << " GiB)? " << (titan.fits(paper_bytes) ? "yes" : "no")
            << "; fits across 4? "
            << (titan.fits(paper_bytes / 4) ? "yes" : "no") << "\n";

  struct Scheme {
    const char* name;
    core::SolverKind kind;
    cluster::AggregationMode aggregation;
  };
  const Scheme schemes[] = {
      {"SCD (1 thread)", core::SolverKind::kSequential,
       cluster::AggregationMode::kAveraging},
      {"PASSCoDe (16 threads)", core::SolverKind::kAsyncWild,
       cluster::AggregationMode::kAveraging},
      {"TPA-SCD (Titan X)", core::SolverKind::kTpaTitanX,
       cluster::AggregationMode::kAdaptive},
  };

  std::vector<core::ConvergenceTrace> traces;
  for (const auto& scheme : schemes) {
    cluster::DistConfig dist;
    dist.formulation = core::Formulation::kDual;
    dist.num_workers = 4;
    dist.aggregation = scheme.aggregation;
    dist.local_solver.kind = scheme.kind;
    dist.local_solver.charge_paper_scale_memory = true;
    dist.network = cluster::NetworkModel::pcie_peer();
    dist.lambda = options.lambda;
    dist.seed = options.seed;
    cluster::DistributedSolver solver(dataset, dist);
    core::RunOptions run_options;
    run_options.max_epochs = options.max_epochs;
    run_options.record_interval = record;
    traces.push_back(cluster::run_distributed(solver, run_options));
    std::cerr << "# " << scheme.name << ": final gap "
              << util::Table::format_number(traces.back().final_gap())
              << "\n";
  }

  std::cout << "\n== Fig. 10: duality gap vs simulated time (s), dual form, "
               "K=4 ==\n";
  util::Table table({"epoch", "SCD time", "SCD gap", "Wild time", "Wild gap",
                     "TPA time", "TPA gap"});
  for (std::size_t row = 0; row < traces[0].points().size(); ++row) {
    table.begin_row();
    table.add_integer(traces[0].points()[row].epoch);
    for (const auto& trace : traces) {
      if (row < trace.points().size()) {
        table.add_number(trace.points()[row].sim_seconds);
        table.add_number(trace.points()[row].gap);
      } else {
        table.add_cell("-");
        table.add_cell("-");
      }
    }
  }
  bench::emit(table, options);

  const auto t_seq = traces[0].sim_time_to_gap(eps);
  const auto t_tpa = traces[2].sim_time_to_gap(eps);
  if (t_seq.has_value() && t_tpa.has_value() && *t_tpa > 0) {
    bench::shape_check("TPA-SCD speed-up over distributed 1-thread SCD",
                       *t_seq / *t_tpa, "~40x");
  }
  // PASSCoDe-Wild's floor usually sits above eps, so compare at the gap the
  // Wild run *can* reach; the paper compares where both curves exist.
  const double wild_floor = traces[1].final_gap();
  const auto t_wild = traces[1].sim_time_to_gap(wild_floor * 1.5);
  const auto t_tpa_at_floor = traces[2].sim_time_to_gap(wild_floor * 1.5);
  if (t_wild.has_value() && t_tpa_at_floor.has_value() &&
      *t_tpa_at_floor > 0) {
    bench::shape_check("TPA-SCD speed-up over PASSCoDe-Wild (at Wild's floor)",
                       *t_wild / *t_tpa_at_floor, "~20x");
  }
  bench::shape_check("PASSCoDe-Wild gap floor", wild_floor,
                     "nonzero (optimality violated)");

  // --- Out-of-core arm (Section V): the paper-scale sample is 40 GB, so
  // real training streams shards through a resident window.  Convert the
  // bench sample to an on-disk store and run the streaming dual solver to
  // report what the prefetch pipeline hides. ---
  const auto store_dir = parser.get_string("store-dir", "fig10_criteo_store");
  std::filesystem::create_directories(store_dir);
  sparse::LabeledMatrix data{
      dataset.by_row(),
      std::vector<float>(dataset.labels().begin(), dataset.labels().end())};
  store::write_store(store_dir, "criteo", data, 8);
  store::StoreStreamingDataset streamed(store::ShardReader::open(
      store_dir + "/criteo.manifest", store::ReadMode::kMmap));
  store::StreamingConfig streaming_config;
  streaming_config.lambda = options.lambda;
  streaming_config.seed = options.seed;
  store::StreamingScdSolver streaming(streamed, streaming_config);
  for (int epoch = 0; epoch < 4; ++epoch) streaming.run_epoch();
  const auto prefetch = streaming.prefetch_stats();
  const double streamed_gap = streaming.duality_gap();
  std::cout << "out-of-core (8 shards, double-buffered): gap "
            << util::Table::format_number(streamed_gap) << " after 4 epochs; "
            << "store.prefetch_stalls " << prefetch.stalls << "/"
            << prefetch.loads << " loads, I/O-overlap "
            << util::Table::format_number(100.0 *
                                          prefetch.overlap_fraction())
            << "%\n";
  return 0;
}
