// Reproduces Fig. 3: convergence in duality gap of distributed SCD
// (Algorithm 3, averaging aggregation, sequential SCD as the local solver)
// for K = 1, 2, 4, 8 workers; primal form partitions by feature (3a), dual
// by example (3b); webspam stand-in, λ = 1e-3.
//
// Paper shape: both forms converge to the optimum, with an approximately
// linear slow-down in epochs as K grows (each worker optimises against an
// epoch-old shared vector).
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

namespace {

constexpr int kWorkerCounts[] = {1, 2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig3_dist_epochs",
                         "Fig. 3 — distributed SCD epochs-to-gap vs workers");
  bench::add_common_options(parser);
  parser.add_option("record", "record gap every R epochs", "5");
  parser.add_option("eps", "gap level for the slow-down shape check", "1e-4");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 300));
  const auto record = static_cast<int>(parser.get_int("record", 5));
  const double eps = parser.get_double("eps", 1e-4);

  const auto dataset = bench::make_webspam(options);

  for (const auto formulation :
       {core::Formulation::kPrimal, core::Formulation::kDual}) {
    std::vector<core::ConvergenceTrace> traces;
    std::vector<std::string> columns{"epoch"};
    for (const int workers : kWorkerCounts) {
      cluster::DistConfig config;
      config.formulation = formulation;
      config.num_workers = workers;
      config.aggregation = cluster::AggregationMode::kAveraging;
      config.local_solver.kind = core::SolverKind::kSequential;
      config.lambda = options.lambda;
      config.seed = options.seed;
      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run_options;
      run_options.max_epochs = options.max_epochs;
      run_options.record_interval = record;
      run_options.target_gap = eps / 100.0;  // run a little past eps
      traces.push_back(cluster::run_distributed(solver, run_options));
      columns.push_back(std::to_string(workers) +
                        (workers == 1 ? " worker" : " workers"));
      std::cerr << "# " << formulation_name(formulation) << " K=" << workers
                << " final gap "
                << util::Table::format_number(traces.back().final_gap())
                << "\n";
    }

    std::cout << "\n== Fig. 3" << (formulation == core::Formulation::kPrimal
                                       ? "a: primal form (by feature)"
                                       : "b: dual form (by example)")
              << ", gap vs epochs ==\n";
    util::Table table(columns);
    std::size_t max_rows = 0;
    for (const auto& trace : traces) {
      max_rows = std::max(max_rows, trace.points().size());
    }
    for (std::size_t row = 0; row < max_rows; ++row) {
      table.begin_row();
      // All runs record on the same cadence; early-stopped runs just have
      // fewer rows, so the epoch label comes from the cadence itself.
      table.add_integer(static_cast<std::int64_t>(row + 1) * record);
      for (const auto& trace : traces) {
        if (row < trace.points().size()) {
          table.add_number(trace.points()[row].gap);
        } else {
          table.add_cell("-");
        }
      }
    }
    bench::emit(table, options);

    const auto e1 = traces[0].epochs_to_gap(eps);
    const auto e8 = traces[3].epochs_to_gap(eps);
    if (e1.has_value() && e8.has_value() && *e1 > 0) {
      bench::shape_check(
          std::string(formulation_name(formulation)) +
              " epochs(K=8)/epochs(K=1) at gap<=" +
              util::Table::format_number(eps),
          static_cast<double>(*e8) / *e1, "~linear slow-down (<= ~8-15x)");
    }
  }
  return 0;
}
