// Reproduces Fig. 8: scaling out the dual form of ridge regression across
// two simulated GPU clusters: (a) Quadro M4000s connected by 10 GbE, and
// (b) GTX Titan Xs communicating over PCIe; distributed TPA-SCD vs the same
// distributed algorithm with sequential-SCD local solvers; averaging
// aggregation (the paper applies no adaptive aggregation here so that all
// gains are attributable to the GPU local solver); webspam stand-in.
//
// Paper shapes: time-to-gap stays roughly flat in K for both local solvers;
// TPA-SCD is ≈10x faster than SCD on the M4000 cluster and ≈30x on the
// Titan X cluster.
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

namespace {

constexpr int kWorkerCounts[] = {1, 2, 3, 4, 5, 6, 7, 8};
constexpr double kEps[] = {3e-3, 3e-4, 3e-5};

struct ClusterSetup {
  const char* title;
  tpa::core::SolverKind gpu_solver;
  tpa::cluster::NetworkModel network;
  const char* paper_ratio;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig8_gpu_cluster_scaling",
                         "Fig. 8 — distributed TPA-SCD vs SCD on GPU clusters");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 300));

  const auto dataset = bench::make_webspam(options);

  const ClusterSetup setups[] = {
      {"a: NVIDIA Quadro M4000 cluster (10GbE)",
       core::SolverKind::kTpaM4000, cluster::NetworkModel::ethernet_10g(),
       "~10x"},
      {"b: GeForce GTX Titan X cluster (PCIe)",
       core::SolverKind::kTpaTitanX, cluster::NetworkModel::pcie_peer(),
       "~30x"},
  };

  for (const auto& setup : setups) {
    std::cout << "\n== Fig. 8" << setup.title
              << ": sim time (s) to reach gap <= eps, dual form ==\n";
    util::Table table({"workers", "SCD eps=3e-3", "SCD eps=3e-4",
                       "SCD eps=3e-5", "TPA eps=3e-3", "TPA eps=3e-4",
                       "TPA eps=3e-5"});
    double scd_time = 0.0;
    double tpa_time = 0.0;
    for (const int workers : kWorkerCounts) {
      table.begin_row();
      table.add_integer(workers);
      for (const auto kind :
           {core::SolverKind::kSequential, setup.gpu_solver}) {
        cluster::DistConfig config;
        config.formulation = core::Formulation::kDual;
        config.num_workers = workers;
        config.aggregation = cluster::AggregationMode::kAveraging;
        config.local_solver.kind = kind;
        config.network = setup.network;
        config.lambda = options.lambda;
        config.seed = options.seed;
        cluster::DistributedSolver solver(dataset, config);
        core::RunOptions run_options;
        run_options.max_epochs = options.max_epochs;
        run_options.record_interval = 1;
        run_options.target_gap = kEps[2];
        const auto trace = cluster::run_distributed(solver, run_options);
        for (const double eps : kEps) {
          const auto [seconds, reached] = bench::time_to_gap(trace, eps);
          table.add_cell(reached ? util::Table::format_number(seconds)
                                 : "not reached");
          if (workers == 4 && eps == kEps[2] && reached) {
            (kind == core::SolverKind::kSequential ? scd_time : tpa_time) =
                seconds;
          }
        }
      }
    }
    bench::emit(table, options);
    if (scd_time > 0 && tpa_time > 0) {
      bench::shape_check(std::string("TPA-SCD speed-up over SCD (K=4, ") +
                             setup.network.name + ", eps=3e-5)",
                         scd_time / tpa_time, setup.paper_ratio);
    }
  }
  return 0;
}
