// Thread-scaling bench: epoch wall time versus thread count for the real-
// threaded solvers — the atomic write-back baseline (always dispatched to
// the pool, as the pre-replication code did) against the replicated solver
// (plain stores into per-thread replicas, cost-model dispatch) — on a small
// and a large synthetic problem, with the sequential epoch as the yardstick.
// Emits BENCH_threads.json via bench_json with build provenance.
//
// Two replicated rows per thread count:
//   replicated/tN            — the auto configuration (convergence-safe
//                              merge interval, core::replica_auto_interval);
//                              pays a merge every ~coords/64 updates.
//   replicated_writeback/tN  — one merge per epoch: isolates the cost of
//                              the write-back mechanism itself (plain
//                              stores + a single delta-merge), the quantity
//                              the contention-free design exists to fix.
//                              Runs under-relaxed (replica_damping), so it
//                              is stable, just slower-converging.
//
// With --check it asserts the replicated_writeback epoch at --check-threads
// on the large problem is within --slack of the sequential epoch — the
// regression gate CI runs (the contended atomic path fails this by
// multiples; see the committed numbers).
//
//   thread_scaling --out-dir . --check --slack 1.05
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/cost_model.hpp"
#include "core/ridge_problem.hpp"
#include "core/seq_scd.hpp"
#include "core/threaded_scd.hpp"
#include "data/generators.hpp"
#include "linalg/kernels.hpp"
#include "obs/build_info.hpp"
#include "util/cli.hpp"

namespace {

using namespace tpa;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Best-of-`trials` wall time of fn(), in seconds (rejects scheduler noise).
template <typename Fn>
double best_of(int trials, const Fn& fn) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const double start = now_seconds();
    fn();
    best = std::min(best, now_seconds() - start);
  }
  return best;
}

constexpr int kThreadCounts[] = {1, 2, 4, 8};

struct ProblemTimes {
  double seq = 0.0;
  double writeback_at_check = 0.0;  // replicated_writeback at --check-threads
};

ProblemTimes bench_problem(const std::string& label,
                           const data::Dataset& dataset, int trials,
                           int check_threads,
                           std::vector<bench::BenchResult>& results) {
  const core::RidgeProblem problem(dataset, 1e-3);
  constexpr auto kForm = core::Formulation::kDual;
  ProblemTimes times;

  {
    core::SeqScdSolver solver(problem, kForm, 7);
    times.seq = best_of(trials, [&] { solver.run_epoch(); });
    results.push_back({label + "/seq_epoch", times.seq, "seconds", {}});
    std::printf("%-6s seq            %9.5fs\n", label.c_str(), times.seq);
  }

  for (const int t : kThreadCounts) {
    // Atomic baseline: fetch_add write-back, unconditionally dispatched to
    // the pool — exactly the pre-replication threaded path.
    core::ThreadedScdSolver atomic_solver(problem, kForm, t,
                                          core::CommitPolicy::kAtomicAdd, 7);
    const double atomic_s = best_of(trials, [&] { atomic_solver.run_epoch(); });
    results.push_back({label + "/atomic/t" + std::to_string(t), atomic_s,
                       "seconds",
                       {{"threads", static_cast<double>(t)},
                        {"speedup_vs_seq", times.seq / atomic_s}}});

    // Replicated, auto configuration: plain stores into private replicas,
    // merged on the convergence-safe automatic interval; serial-vs-pooled
    // execution picked by the cost model for this host (results are
    // identical either way).
    const auto coords = problem.num_coordinates(kForm);
    core::ThreadedScdSolver rep_solver(problem, kForm, t,
                                       core::CommitPolicy::kReplicated, 7);
    const double rep_s = best_of(trials, [&] { rep_solver.run_epoch(); });
    const int interval = core::replica_auto_interval(
        dataset.nnz(), coords, problem.shared_dim(kForm), t);
    results.push_back({label + "/replicated/t" + std::to_string(t), rep_s,
                       "seconds",
                       {{"threads", static_cast<double>(t)},
                        {"speedup_vs_seq", times.seq / rep_s},
                        {"speedup_vs_atomic", atomic_s / rep_s},
                        {"merge_interval", static_cast<double>(interval)},
                        {"damping",
                         core::replica_damping(coords, t, interval)}}});

    // Write-back mechanism cost: one merge per epoch (merge_every = the
    // whole per-thread slice).  Under-relaxed by replica_damping, so the
    // configuration is stable; the wall time isolates plain-store scatter +
    // a single delta-merge against the atomic fetch_add baseline.
    const int slice_len =
        static_cast<int>((coords + static_cast<unsigned>(t) - 1) /
                         static_cast<unsigned>(t));
    core::ThreadedScdSolver wb_solver(problem, kForm, t,
                                      core::CommitPolicy::kReplicated, 7);
    wb_solver.set_merge_every(slice_len);
    const double wb_s = best_of(trials, [&] { wb_solver.run_epoch(); });
    results.push_back(
        {label + "/replicated_writeback/t" + std::to_string(t), wb_s,
         "seconds",
         {{"threads", static_cast<double>(t)},
          {"speedup_vs_seq", times.seq / wb_s},
          {"speedup_vs_atomic", atomic_s / wb_s},
          {"merge_interval", static_cast<double>(slice_len)},
          {"damping", core::replica_damping(coords, t, slice_len)}}});
    if (t == check_threads) times.writeback_at_check = wb_s;
    std::printf(
        "%-6s t=%d   atomic %9.5fs   replicated %9.5fs (%.2fx vs atomic)   "
        "writeback %9.5fs (%.2fx vs atomic, %.2fx vs seq)\n",
        label.c_str(), t, atomic_s, rep_s, atomic_s / rep_s, wb_s,
        atomic_s / wb_s, times.seq / wb_s);
  }
  return times;
}

int run(int argc, char** argv) {
  util::ArgParser parser("thread_scaling",
                         "epoch time vs threads: atomic vs replicated");
  parser.add_option("out-dir", "directory for BENCH_threads.json", ".");
  parser.add_option("trials", "timing trials per measurement", "3");
  parser.add_option("small-examples", "small synthetic example count", "2048");
  parser.add_option("small-features", "small synthetic feature count", "4096");
  parser.add_option("large-examples", "large synthetic example count",
                    "32768");
  parser.add_option("large-features", "large synthetic feature count",
                    "65536");
  parser.add_option("check-threads", "thread count the --check gate uses",
                    "4");
  parser.add_option("slack",
                    "--check fails if replicated_writeback > seq * slack on "
                    "the large problem",
                    "1.05");
  parser.add_flag("check", "exit non-zero if the replicated epoch regresses");
  if (!parser.parse(argc, argv)) return 1;

  const auto out_dir = parser.get_string("out-dir", ".");
  const int trials = static_cast<int>(parser.get_int("trials", 3));
  const int check_threads =
      static_cast<int>(parser.get_int("check-threads", 4));
  const double slack = parser.get_double("slack", 1.05);

  const auto info = obs::build_info();
  const bench::BenchMeta meta = {
      {"git_sha", info.git_sha},
      {"compiler", info.compiler},
      {"build_type", info.build_type},
      {"kernel_backend",
       linalg::kernel_backend_name(linalg::kernel_backend())},
      {"kernel_native", linalg::kernel_native_build() ? "true" : "false"},
      {"hardware_concurrency",
       std::to_string(std::thread::hardware_concurrency())},
  };

  std::vector<bench::BenchResult> results;

  data::WebspamLikeConfig small;
  small.num_examples =
      static_cast<data::Index>(parser.get_int("small-examples", 2048));
  small.num_features =
      static_cast<data::Index>(parser.get_int("small-features", 4096));
  const auto small_dataset = data::make_webspam_like(small);
  std::printf("small: %u x %u, nnz %zu\n", small_dataset.num_examples(),
              small_dataset.num_features(),
              static_cast<std::size_t>(small_dataset.nnz()));
  bench_problem("small", small_dataset, trials, check_threads, results);

  data::WebspamLikeConfig large;
  large.num_examples =
      static_cast<data::Index>(parser.get_int("large-examples", 32768));
  large.num_features =
      static_cast<data::Index>(parser.get_int("large-features", 65536));
  const auto large_dataset = data::make_webspam_like(large);
  std::printf("large: %u x %u, nnz %zu\n", large_dataset.num_examples(),
              large_dataset.num_features(),
              static_cast<std::size_t>(large_dataset.nnz()));
  const auto large_times =
      bench_problem("large", large_dataset, trials, check_threads, results);

  bench::write_json_file(out_dir + "/BENCH_threads.json", "threads", results,
                         meta);
  std::printf("wrote %s/BENCH_threads.json\n", out_dir.c_str());

  if (parser.get_bool("check")) {
    if (large_times.writeback_at_check > large_times.seq * slack) {
      std::printf(
          "CHECK FAILED: replicated_writeback epoch (%d threads) %.5fs > "
          "seq %.5fs * slack %.2f on the large problem\n",
          check_threads, large_times.writeback_at_check, large_times.seq,
          slack);
      return 2;
    }
    std::printf("thread-scaling check passed (slack %.2f)\n", slack);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
