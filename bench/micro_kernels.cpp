// Google-benchmark microbenchmarks for the hot kernels underlying every
// solver: sparse inner products, scatter updates, the coordinate update
// itself, the simulated block reduction, and one full epoch of each engine.
// These are *wall-clock* measurements on the host machine (unlike the
// figure harnesses, which report simulated device time); they support the
// DESIGN.md §5 calibration of seconds-per-nonzero.
#include <benchmark/benchmark.h>

#include "core/convergence.hpp"
#include "core/replica_set.hpp"
#include "core/round_engine.hpp"
#include "core/seq_scd.hpp"
#include "core/threaded_scd.hpp"
#include "data/generators.hpp"
#include "gpusim/block_context.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "serve/scorer.hpp"
#include "util/permutation.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tpa;

const data::Dataset& bench_dataset() {
  static const data::Dataset dataset = [] {
    data::WebspamLikeConfig config;
    config.num_examples = 4096;
    config.num_features = 8192;
    return data::make_webspam_like(config);
  }();
  return dataset;
}

// Backend argument for the kernel benchmarks: 0 = scalar reference,
// 1 = vectorized multi-accumulator.
linalg::KernelBackend backend_arg(const benchmark::State& state) {
  return state.range(0) == 0 ? linalg::KernelBackend::kScalar
                             : linalg::KernelBackend::kVectorized;
}

void BM_SparseDot(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  const auto backend = backend_arg(state);
  std::vector<float> dense(dataset.num_features(), 1.5F);
  sparse::Index row = 0;
  std::uint64_t entries = 0;
  for (auto _ : state) {
    const auto view = dataset.by_row().row(row);
    benchmark::DoNotOptimize(backend == linalg::KernelBackend::kScalar
                                 ? linalg::scalar::sparse_dot(view, dense)
                                 : linalg::vec::sparse_dot(view, dense));
    entries += view.nnz();
    row = (row + 1) % dataset.num_examples();
  }
  state.counters["nnz/s"] = benchmark::Counter(
      static_cast<double>(entries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SparseDot)->Arg(0)->Arg(1)->ArgName("vec");

// Same kernel over the bucketed padded views: aligned starts, no remainder
// iterations.  Compare against BM_SparseDot/vec:1 to see the layout's
// contribution alone.
void BM_SparseDotBucketed(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  std::vector<float> dense(dataset.num_features(), 1.5F);
  sparse::Index row = 0;
  std::uint64_t entries = 0;
  for (auto _ : state) {
    const auto view = dataset.bucketed_rows().padded(row);
    benchmark::DoNotOptimize(linalg::vec::sparse_dot(view, dense));
    entries += view.nnz();
    row = (row + 1) % dataset.num_examples();
  }
  state.counters["nnz/s"] = benchmark::Counter(
      static_cast<double>(entries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SparseDotBucketed);

void BM_SparseAxpy(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  const auto backend = backend_arg(state);
  std::vector<float> dense(dataset.num_features(), 0.0F);
  sparse::Index row = 0;
  std::uint64_t entries = 0;
  for (auto _ : state) {
    const auto view = dataset.by_row().row(row);
    if (backend == linalg::KernelBackend::kScalar) {
      linalg::scalar::sparse_axpy(0.001, view, dense);
    } else {
      linalg::vec::sparse_axpy(0.001, view, dense);
    }
    entries += view.nnz();
    row = (row + 1) % dataset.num_examples();
  }
  state.counters["nnz/s"] = benchmark::Counter(
      static_cast<double>(entries), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SparseAxpy)->Arg(0)->Arg(1)->ArgName("vec");

void BM_CoordinateDelta(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  const core::RidgeProblem problem(dataset, 1e-3);
  std::vector<float> shared(dataset.num_features(), 0.1F);
  sparse::Index row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.coordinate_delta(
        core::Formulation::kDual, row, shared, 0.0));
    row = (row + 1) % dataset.num_examples();
  }
}
BENCHMARK(BM_CoordinateDelta);

void BM_BlockReduce(benchmark::State& state) {
  gpusim::BlockContext block(static_cast<int>(state.range(0)));
  const std::size_t count = 4096;
  std::vector<float> terms(count);
  for (std::size_t i = 0; i < count; ++i) {
    terms[i] = static_cast<float>(i % 17) * 0.25F;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(block.strided_reduce(
        count, [&](std::size_t i) { return terms[i]; }));
  }
}
BENCHMARK(BM_BlockReduce)->Arg(32)->Arg(128)->Arg(512);

void BM_CsrMatvec(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  std::vector<float> x(dataset.num_features(), 0.5F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::csr_matvec(dataset.by_row(), x));
  }
  state.counters["nnz/s"] = benchmark::Counter(
      static_cast<double>(dataset.nnz()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CsrMatvec);

// ThreadPool::parallel_for scheduling: grain 1 reproduces the legacy
// task-per-index dispatch (one queue push + mutex round-trip per element);
// grain 0 is the chunked default (ceil(count/workers) elements per task).
// The body is a cheap FMA so the measurement is dominated by scheduling
// overhead — the quantity the chunked satellite exists to remove.
void BM_ParallelForScheduling(benchmark::State& state) {
  util::ThreadPool pool(8);
  const std::size_t count = 1 << 14;
  const auto grain = static_cast<std::size_t>(state.range(0));
  std::vector<float> out(count, 0.0F);
  for (auto _ : state) {
    pool.parallel_for(
        count,
        [&out](std::size_t i) {
          out[i] = out[i] * 0.5F + static_cast<float>(i);
        },
        grain);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["elems/s"] = benchmark::Counter(
      static_cast<double>(count) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelForScheduling)
    ->Arg(1)      // before: task per index
    ->Arg(64)     // explicit medium grain
    ->Arg(0)      // after: one chunk per worker
    ->ArgName("grain");

// Round-trip latency of one tiny parallel_for round, repeated back to back —
// the dispatch pattern the replicated solver's merge intervals produce.  The
// argument is the pool's spin budget: 0 parks on the condition variable
// immediately (futex sleep/wake per round); the spin-then-park budget keeps
// workers hot between rounds.
void BM_PoolWakeup(benchmark::State& state) {
  util::ThreadPool pool(4, static_cast<std::size_t>(state.range(0)));
  std::vector<float> out(256, 0.0F);
  for (auto _ : state) {
    pool.parallel_for(
        out.size(),
        [&out](std::size_t i) { out[i] += 1.0F; },
        out.size() / pool.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rounds/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PoolWakeup)
    ->Arg(0)      // park immediately
    ->Arg(2048)   // spin-then-park (the multi-core default budget)
    ->ArgName("spin");

// ReplicaSet::merge_into: fused diff-add of every replica against the
// pre-round base plus the replica reseed.  The argument is the replica
// count; per-merge cost should scale as (replicas + 1) dense passes.
void BM_ReplicaMerge(benchmark::State& state) {
  const std::size_t dim = 1 << 16;
  const auto count = static_cast<std::size_t>(state.range(0));
  core::ReplicaSet replicas;
  replicas.configure(dim, count);
  std::vector<float> global(dim, 0.5F);
  replicas.reset_from(global);
  for (auto _ : state) {
    replicas.merge_into(global);
    benchmark::DoNotOptimize(global.data());
  }
  state.counters["entries/s"] = benchmark::Counter(
      static_cast<double>(dim * count) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ReplicaMerge)->Arg(1)->Arg(4)->Arg(8)->ArgName("replicas");

// The serving scorer's whole-matrix path: chunked parallel_for over rows.
void BM_ScoreMatrix(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  std::vector<float> beta(dataset.num_features(), 0.25F);
  serve::ServableModel model;
  model.beta = std::move(beta);
  util::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        serve::score_matrix(pool, dataset.by_row(), model));
  }
  state.counters["rows/s"] = benchmark::Counter(
      static_cast<double>(dataset.num_examples()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ScoreMatrix)->Arg(1)->Arg(4)->Arg(8)->ArgName("threads");

void BM_SeqScdEpoch(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  const core::RidgeProblem problem(dataset, 1e-3);
  core::SeqScdSolver solver(problem, core::Formulation::kDual, 7);
  const auto saved = linalg::kernel_backend();
  linalg::set_kernel_backend(backend_arg(state));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.run_epoch());
  }
  linalg::set_kernel_backend(saved);
  // Wall seconds per nonzero: the measured counterpart of the CpuCostModel
  // constant (DESIGN.md §5).
  state.counters["ns/nnz"] = benchmark::Counter(
      1e9 * static_cast<double>(state.iterations()) *
          static_cast<double>(dataset.nnz()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_SeqScdEpoch)->Arg(0)->Arg(1)->ArgName("vec");

// One epoch of the pool-backed threaded solver: the persistent workers are
// reused across iterations, so this measures steady-state scheduling, not
// thread spawn.
void BM_ThreadedScdEpoch(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  const core::RidgeProblem problem(dataset, 1e-3);
  core::ThreadedScdSolver solver(problem, core::Formulation::kDual,
                                 static_cast<int>(state.range(0)),
                                 core::CommitPolicy::kAtomicAdd, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.run_epoch());
  }
  state.counters["ns/nnz"] = benchmark::Counter(
      1e9 * static_cast<double>(state.iterations()) *
          static_cast<double>(dataset.nnz()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ThreadedScdEpoch)->Arg(1)->Arg(4)->ArgName("threads");

// Full duality-gap evaluation (one matrix pass + objectives), serial vs
// pooled — the quantity `gap_every` amortises and `gap_threads` parallelises.
void BM_DualityGap(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  const core::RidgeProblem problem(dataset, 1e-3);
  std::vector<float> alpha(problem.num_coordinates(core::Formulation::kDual),
                           0.01F);
  std::vector<float> wbar(problem.shared_dim(core::Formulation::kDual), 0.0F);
  linalg::csr_matvec_transposed(dataset.by_row(), alpha, wbar);
  const auto threads = static_cast<std::size_t>(state.range(0));
  util::ThreadPool pool(threads);
  util::ThreadPool* gap_pool = threads > 1 ? &pool : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.dual_duality_gap(alpha, wbar, gap_pool));
  }
  state.counters["nnz/s"] = benchmark::Counter(
      static_cast<double>(dataset.nnz()) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DualityGap)->Arg(1)->Arg(4)->ArgName("threads");

void BM_AsyncEngineEpoch(benchmark::State& state) {
  const auto& dataset = bench_dataset();
  const core::RidgeProblem problem(dataset, 1e-3);
  const auto f = core::Formulation::kDual;
  core::AsyncEngine engine(static_cast<std::size_t>(state.range(0)),
                           core::CommitPolicy::kAtomicAdd);
  std::vector<float> weights(problem.num_coordinates(f), 0.0F);
  std::vector<float> shared(problem.shared_dim(f), 0.0F);
  util::Rng rng(3);
  auto order = util::random_permutation(problem.num_coordinates(f), rng);
  for (auto _ : state) {
    engine.run_epoch(
        order,
        [&](sparse::Index j, std::span<const float> s) {
          return problem.coordinate_delta(f, j, s, weights[j]);
        },
        [&](sparse::Index j) { return problem.coordinate_vector(f, j); },
        [&](sparse::Index j, double delta) {
          weights[j] = static_cast<float>(weights[j] + delta);
        },
        shared);
  }
}
BENCHMARK(BM_AsyncEngineEpoch)->Arg(1)->Arg(16)->Arg(48);

}  // namespace

BENCHMARK_MAIN();
