// Ablation: what do worker failures cost the synchronous cluster?
//
// The design choice under test (DESIGN.md §8): the master enforces a
// straggler deadline and aggregates whatever deltas survive, rescaling γ to
// the contributing count, instead of stalling the synchronous Reduce on the
// slowest or dead worker.  This bench runs a fixed epoch budget under a
// spectrum of fault scenarios — single crash, crash storms, a permanent
// straggler, lossy and corrupting transports — and reports the final gap
// next to the fault-free baseline, plus the event log that produced it.
#include "bench_common.hpp"

#include <cmath>

#include "cluster/dist_solver.hpp"

namespace {

using namespace tpa;

struct Scenario {
  std::string name;
  cluster::FaultConfig faults;
};

cluster::FaultEvent crash_at(int epoch, int worker) {
  cluster::FaultEvent event;
  event.epoch = epoch;
  event.worker = worker;
  event.kind = cluster::FaultKind::kCrash;
  return event;
}

cluster::FaultEvent permanent_stall(int worker, double factor) {
  cluster::FaultEvent event;
  event.epoch = 1;
  event.worker = worker;
  event.kind = cluster::FaultKind::kStall;
  event.stall_factor = factor;
  event.permanent = true;
  return event;
}

std::vector<Scenario> make_scenarios() {
  std::vector<Scenario> scenarios;
  scenarios.push_back({"fault-free", {}});

  Scenario crash{"crash w1@e3", {}};
  crash.faults.scripted.push_back(crash_at(3, 1));
  scenarios.push_back(std::move(crash));

  Scenario straggler{"straggler 4x", {}};
  straggler.faults.scripted.push_back(permanent_stall(2, 4.0));
  scenarios.push_back(std::move(straggler));

  Scenario combined{"crash+straggler", {}};
  combined.faults.scripted.push_back(crash_at(3, 1));
  combined.faults.scripted.push_back(permanent_stall(2, 4.0));
  scenarios.push_back(std::move(combined));

  Scenario storm{"crash rate 5%", {}};
  storm.faults.crash_rate = 0.05;
  scenarios.push_back(std::move(storm));

  Scenario lossy{"drop rate 10%", {}};
  lossy.faults.drop_rate = 0.10;
  scenarios.push_back(std::move(lossy));

  Scenario noisy{"corrupt rate 10%", {}};
  noisy.faults.corrupt_rate = 0.10;
  scenarios.push_back(std::move(noisy));
  return scenarios;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("ablation_faults",
                         "duality gap vs injected cluster faults");
  bench::add_common_options(parser);
  parser.add_option("workers", "simulated workers", "4");
  parser.add_option("fault-seed", "seed for rate-based fault draws", "24245");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 15));
  const int workers = static_cast<int>(parser.get_int("workers", 4));
  const auto fault_seed =
      static_cast<std::uint64_t>(parser.get_int("fault-seed", 24245));

  const auto dataset = bench::make_webspam(options);

  double baseline_gap = 0.0;
  for (const auto f : {core::Formulation::kPrimal, core::Formulation::kDual}) {
    std::cout << "\n== gap after " << options.max_epochs << " epochs, K = "
              << workers << " (" << formulation_name(f)
              << ", adaptive) ==\n";
    util::Table table({"scenario", "final gap", "vs clean", "crash", "evict",
                       "miss", "late", "drop+corrupt", "verdict"});
    for (const auto& scenario : make_scenarios()) {
      cluster::DistConfig config;
      config.formulation = f;
      config.num_workers = workers;
      config.aggregation = cluster::AggregationMode::kAdaptive;
      config.local_solver.kind = core::SolverKind::kSequential;
      config.lambda = options.lambda;
      config.faults = scenario.faults;
      config.faults.seed = fault_seed;
      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run;
      run.max_epochs = options.max_epochs;
      run.target_gap = 0.0;
      const auto trace = cluster::run_distributed(solver, run);
      const double gap = trace.final_gap();
      if (scenario.name == "fault-free") baseline_gap = gap;

      table.begin_row();
      table.add_cell(scenario.name);
      table.add_number(gap);
      table.add_number(baseline_gap > 0.0 ? gap / baseline_gap : 1.0);
      table.add_integer(static_cast<long long>(
          trace.count_events(core::ClusterEventKind::kCrash)));
      table.add_integer(static_cast<long long>(
          trace.count_events(core::ClusterEventKind::kEvict)));
      table.add_integer(static_cast<long long>(
          trace.count_events(core::ClusterEventKind::kDeadlineMiss)));
      table.add_integer(static_cast<long long>(
          trace.count_events(core::ClusterEventKind::kLateDelta)));
      table.add_integer(static_cast<long long>(
          trace.count_events(core::ClusterEventKind::kDeltaDropped) +
          trace.count_events(core::ClusterEventKind::kDeltaCorrupted)));
      table.add_cell(!std::isfinite(gap) || gap > 1.0 ? "DIVERGED"
                     : gap > 10.0 * baseline_gap      ? "degraded"
                                                      : "tolerated");
    }
    bench::emit(table, options);
  }
  std::cout << "\nnote: degraded aggregation rescales gamma to the "
               "surviving delta count, so losing deltas costs descent "
               "progress, never consistency; a 4x straggler against the "
               "1.5x grace deadline lands its stale delta every few rounds "
               "(PASSCoDe-style) instead of stalling every Reduce.\n";
  return 0;
}
