// Minimal JSON emitter for benchmark results.  Benchmarks accumulate
// BenchResult records (one primary value plus optional named extras) and
// write them as a single machine-readable document; the committed
// BENCH_kernels.json / BENCH_epoch.json artefacts and the CI perf-smoke job
// both consume this format.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tpa::bench {

struct BenchResult {
  std::string name;   // e.g. "sparse_dot/vectorized"
  double value = 0.0; // primary metric
  std::string unit;   // e.g. "ns_per_op"
  // Secondary metrics, emitted as additional numeric fields.
  std::vector<std::pair<std::string, double>> extra;
};

/// Serialises `results` as {"suite": ..., "results": [...]}.  Doubles are
/// printed with enough digits to round-trip.
std::string to_json(const std::string& suite,
                    std::span<const BenchResult> results);

/// Writes to_json(...) to `path`; throws std::runtime_error on I/O failure.
void write_json_file(const std::string& path, const std::string& suite,
                     std::span<const BenchResult> results);

}  // namespace tpa::bench
