// Minimal JSON emitter for benchmark results.  Benchmarks accumulate
// BenchResult records (one primary value plus optional named extras) and
// write them as a single machine-readable document; the committed
// BENCH_kernels.json / BENCH_epoch.json artefacts and the CI perf-smoke job
// both consume this format.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

namespace tpa::bench {

struct BenchResult {
  std::string name;   // e.g. "sparse_dot/vectorized"
  double value = 0.0; // primary metric
  std::string unit;   // e.g. "ns_per_op"
  // Secondary metrics, emitted as additional numeric fields.
  std::vector<std::pair<std::string, double>> extra;
};

/// String-valued metadata emitted alongside the results (build provenance:
/// git SHA, compiler, kernel backend, ...), so a committed artefact is
/// attributable to the configuration that produced it.
using BenchMeta = std::vector<std::pair<std::string, std::string>>;

/// Serialises `results` as {"suite": ..., "meta": {...}, "results": [...]}.
/// Doubles are printed with enough digits to round-trip; the "meta" object
/// is omitted when `meta` is empty.
std::string to_json(const std::string& suite,
                    std::span<const BenchResult> results,
                    const BenchMeta& meta = {});

/// Writes to_json(...) to `path`; throws std::runtime_error on I/O failure.
void write_json_file(const std::string& path, const std::string& suite,
                     std::span<const BenchResult> results,
                     const BenchMeta& meta = {});

}  // namespace tpa::bench
