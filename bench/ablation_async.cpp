// Ablation: when does dropping the barrier pay?
//
// The design choice under test (DESIGN.md §13): the asynchronous driver
// lets each worker push its delta the moment its cycle lands, bounded by a
// staleness window, instead of joining the synchronous Reduce.  This bench
// races the two drivers to a target duality gap under three regimes —
// fault-free, a moderate (2x) permanent straggler, a severe (4x) one — and
// then runs an eviction scenario the synchronous arm cannot survive: the
// crashed worker exhausts its restart budget and freezes its partition,
// while the elastic asynchronous arm admits a replacement mid-run.
//
// Expected shape (honest, measured): synchronous BSP wins the clean
// compute-bound race (the no-barrier tax: per-delta line search is myopic
// next to sync's summed pre-cancelled direction), async wins under the
// moderate straggler (pushes land inside the staleness window while sync
// burns its grace deadline every round), the severe straggler is a wash
// (sync's deadline + late-delta path is itself an asynchrony valve), and
// only the elastic arm reaches the target at all after an eviction.
#include "bench_common.hpp"

#include <cmath>

#include "cluster/async_solver.hpp"
#include "cluster/dist_solver.hpp"

namespace {

using namespace tpa;

cluster::FaultEvent crash_at(int epoch, int worker) {
  cluster::FaultEvent event;
  event.epoch = epoch;
  event.worker = worker;
  event.kind = cluster::FaultKind::kCrash;
  return event;
}

cluster::FaultEvent permanent_stall(int worker, double factor) {
  cluster::FaultEvent event;
  event.epoch = 1;
  event.worker = worker;
  event.kind = cluster::FaultKind::kStall;
  event.stall_factor = factor;
  event.permanent = true;
  return event;
}

struct Scenario {
  std::string name;
  cluster::FaultConfig faults;
};

struct ArmResult {
  double seconds = 0.0;
  bool reached = false;
  int rounds = 0;
  double final_gap = 0.0;
  long long damped = 0;
  long long misses = 0;
};

ArmResult summarize(const core::ConvergenceTrace& trace, double eps,
                    int rounds) {
  ArmResult result;
  const auto [seconds, reached] = bench::time_to_gap(trace, eps);
  result.seconds = seconds;
  result.reached = reached;
  result.rounds = rounds;
  result.final_gap = trace.final_gap();
  result.damped =
      static_cast<long long>(trace.count_events(core::ClusterEventKind::kStaleDamped)) +
      static_cast<long long>(trace.count_events(core::ClusterEventKind::kStaleRejected));
  result.misses = static_cast<long long>(
      trace.count_events(core::ClusterEventKind::kDeadlineMiss));
  return result;
}

void add_row(util::Table& table, const std::string& scenario,
             const std::string& arm, const char* mode, const ArmResult& r) {
  table.begin_row();
  table.add_cell(scenario);
  table.add_cell(arm);
  table.add_cell(mode);
  table.add_cell(r.reached ? "yes" : "NO");
  table.add_number(r.seconds);
  table.add_integer(r.rounds);
  table.add_number(r.final_gap);
  table.add_integer(r.damped);
  table.add_integer(r.misses);
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("ablation_async",
                         "sync barrier vs bounded-staleness async, "
                         "time-to-gap under stragglers and evictions");
  bench::add_common_options(parser);
  parser.add_option("workers", "simulated workers", "4");
  parser.add_option("target-gap", "duality gap both arms race to", "1e-4");
  parser.add_option("max-rounds", "round budget per arm", "200");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  const int workers = static_cast<int>(parser.get_int("workers", 4));
  const double target = parser.get_double("target-gap", 1e-4);
  const int max_rounds = static_cast<int>(parser.get_int("max-rounds", 200));

  const auto dataset = bench::make_webspam(options);

  core::RunOptions run;
  run.max_epochs = max_rounds;
  run.target_gap = target;
  run.gap_every = 1;

  const std::vector<Scenario> scenarios = {
      {"fault-free", {}},
      {"straggler 2x", [] {
         cluster::FaultConfig f;
         f.scripted.push_back(permanent_stall(0, 2.0));
         return f;
       }()},
      {"straggler 4x", [] {
         cluster::FaultConfig f;
         f.scripted.push_back(permanent_stall(0, 4.0));
         return f;
       }()},
  };
  const std::vector<
      std::pair<const char*, cluster::AggregationMode>>
      modes = {{"averaging", cluster::AggregationMode::kAveraging},
               {"adaptive", cluster::AggregationMode::kAdaptive}};

  std::cout << "\n== simulated time to gap <= " << target << ", K = "
            << workers << " (dual) ==\n";
  util::Table table({"scenario", "arm", "gamma", "reached", "sim s", "rounds",
                     "final gap", "stale", "miss"});
  for (const auto& scenario : scenarios) {
    for (const auto& [mode_name, mode] : modes) {
      {
        cluster::DistConfig config;
        config.formulation = core::Formulation::kDual;
        config.num_workers = workers;
        config.aggregation = mode;
        config.local_solver.kind = core::SolverKind::kSequential;
        config.lambda = options.lambda;
        config.faults = scenario.faults;
        cluster::DistributedSolver solver(dataset, config);
        const auto trace = cluster::run_distributed(solver, run);
        add_row(table, scenario.name, "sync", mode_name,
                summarize(trace, target, solver.current_epoch()));
      }
      {
        cluster::AsyncConfig config;
        config.formulation = core::Formulation::kDual;
        config.num_workers = workers;
        config.aggregation = mode;
        config.local_solver.kind = core::SolverKind::kSequential;
        config.lambda = options.lambda;
        config.faults = scenario.faults;
        cluster::AsyncSolver solver(dataset, config);
        const auto trace = cluster::run_async(solver, run);
        add_row(table, scenario.name, "async", mode_name,
                summarize(trace, target, solver.current_epoch()));
      }
    }
  }
  bench::emit(table, options);

  // Eviction drill: worker 1 crashes every time it comes back from backoff
  // until it exhausts its restart budget.  The synchronous arm freezes that
  // partition forever; the elastic asynchronous arm admits a replacement at
  // round 8.  (Crashes are scripted across rounds 1-4 because a worker in
  // backoff skips the round — a crash scripted there never fires.)
  std::cout << "\n== eviction drill: crash w1 until evicted, max_restarts = 1 "
               "==\n";
  util::Table drill({"arm", "reached", "sim s", "rounds", "final gap",
                     "evictions", "joins"});
  const auto drill_row = [&](const char* name,
                             const core::ConvergenceTrace& trace, int rounds,
                             double target_gap) {
    const auto [seconds, reached] = bench::time_to_gap(trace, target_gap);
    drill.begin_row();
    drill.add_cell(name);
    drill.add_cell(reached ? "yes" : "NO");
    drill.add_number(seconds);
    drill.add_integer(rounds);
    drill.add_number(trace.final_gap());
    drill.add_integer(static_cast<long long>(
        trace.count_events(core::ClusterEventKind::kEvict)));
    drill.add_integer(static_cast<long long>(
        trace.count_events(core::ClusterEventKind::kJoin)));
  };
  {
    cluster::DistConfig config;
    config.formulation = core::Formulation::kDual;
    config.num_workers = workers;
    config.aggregation = cluster::AggregationMode::kAveraging;
    config.local_solver.kind = core::SolverKind::kSequential;
    config.lambda = options.lambda;
    config.max_restarts = 1;
    for (int epoch = 1; epoch <= 4; ++epoch) {
      config.faults.scripted.push_back(crash_at(epoch, 1));
    }
    cluster::DistributedSolver solver(dataset, config);
    const auto trace = cluster::run_distributed(solver, run);
    drill_row("sync (frozen)", trace, solver.current_epoch(), target);
  }
  {
    cluster::AsyncConfig config;
    config.formulation = core::Formulation::kDual;
    config.num_workers = workers;
    config.aggregation = cluster::AggregationMode::kAveraging;
    config.local_solver.kind = core::SolverKind::kSequential;
    config.lambda = options.lambda;
    config.max_restarts = 1;
    for (int round = 1; round <= 4; ++round) {
      config.faults.scripted.push_back(crash_at(round, 1));
    }
    cluster::MembershipEvent join;
    join.kind = cluster::MembershipEvent::Kind::kJoin;
    join.round = 8;
    join.worker = 1;
    config.membership.push_back(join);
    cluster::AsyncSolver solver(dataset, config);
    const auto trace = cluster::run_async(solver, run);
    drill_row("async (elastic)", trace, solver.current_epoch(), target);
  }
  bench::emit(drill, options);

  std::cout << "\nnote: the clean-run gap between sync and async is the "
               "no-barrier tax — each async delta is line-searched against "
               "the master state alone, while the barrier lets sync cancel "
               "opposing coordinate moves before picking one step.  The "
               "moderate straggler flips the ordering: its pushes land near "
               "the staleness-window boundary undamped, while the sync "
               "master eats the grace deadline every round.  A severe "
               "straggler re-levels the race (sync's deadline-miss path is "
               "itself a pressure valve), and only the elastic arm survives "
               "an eviction with the full model still reachable.\n";
  return 0;
}
