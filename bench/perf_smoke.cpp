// Perf smoke harness: times the kernel layer (scalar reference vs the
// multi-accumulator vectorized backend) and the system-level hot paths
// (sequential epoch per backend, pooled threaded epoch, serial vs pooled
// duality gap, gap_every amortisation), then emits the measurements as
// BENCH_kernels.json and BENCH_epoch.json via the bench_json emitter.
//
// With --check it also *asserts* that the vectorized backend is not slower
// than the scalar reference beyond a slack factor, so CI catches a kernel
// regression without depending on the absolute speed of the runner.
//
//   perf_smoke --out-dir . --check --slack 1.15
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/convergence.hpp"
#include "obs/build_info.hpp"
#include "core/ridge_problem.hpp"
#include "core/seq_scd.hpp"
#include "core/threaded_scd.hpp"
#include "data/generators.hpp"
#include "linalg/kernels.hpp"
#include "linalg/vector_ops.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace tpa;

volatile double g_sink = 0.0;  // defeats dead-code elimination

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// Best-of-`trials` wall time of fn(), in seconds.  Best-of (rather than
/// mean) rejects scheduler noise, which dominates on shared CI runners.
template <typename Fn>
double best_of(int trials, const Fn& fn) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const double start = now_seconds();
    fn();
    best = std::min(best, now_seconds() - start);
  }
  return best;
}

struct KernelTimes {
  double scalar_ns_per_nnz = 0.0;
  double vec_ns_per_nnz = 0.0;
  double speedup() const { return scalar_ns_per_nnz / vec_ns_per_nnz; }
};

/// Times one full sweep of `fn(view)` over every bucketed row view with both
/// backends.  Both backends see identical (aligned, padded) views, so the
/// comparison isolates the kernel body.
template <typename ScalarFn, typename VecFn>
KernelTimes time_kernel(const data::Dataset& dataset, int trials,
                        const ScalarFn& scalar_fn, const VecFn& vec_fn) {
  const auto& rows = dataset.bucketed_rows();
  const double padded_nnz = static_cast<double>(rows.padded_nnz());
  KernelTimes times;
  times.scalar_ns_per_nnz = 1e9 / padded_nnz *
                            best_of(trials, [&] {
                              for (sparse::Index r = 0; r < rows.count(); ++r) {
                                scalar_fn(rows.padded(r));
                              }
                            });
  times.vec_ns_per_nnz = 1e9 / padded_nnz *
                         best_of(trials, [&] {
                           for (sparse::Index r = 0; r < rows.count(); ++r) {
                             vec_fn(rows.padded(r));
                           }
                         });
  return times;
}

void add_kernel_result(std::vector<bench::BenchResult>& results,
                       const std::string& name, const KernelTimes& times) {
  results.push_back({name + "/scalar", times.scalar_ns_per_nnz, "ns_per_nnz",
                     {}});
  results.push_back({name + "/vectorized", times.vec_ns_per_nnz, "ns_per_nnz",
                     {{"speedup_vs_scalar", times.speedup()}}});
  std::printf("%-24s scalar %7.3f ns/nnz   vectorized %7.3f ns/nnz   %.2fx\n",
              name.c_str(), times.scalar_ns_per_nnz, times.vec_ns_per_nnz,
              times.speedup());
}

int run(int argc, char** argv) {
  util::ArgParser parser("perf_smoke",
                         "kernel + epoch perf smoke test with JSON output");
  parser.add_option("out-dir", "directory for BENCH_*.json", ".");
  parser.add_option("examples", "generated example count", "4096");
  parser.add_option("features", "generated feature count", "8192");
  parser.add_option("trials", "timing trials per measurement", "5");
  parser.add_option("epochs", "epochs for the gap_every comparison", "10");
  parser.add_option("threads", "threads for pooled measurements", "4");
  parser.add_option("slack",
                    "--check fails if vectorized > scalar * slack", "1.15");
  parser.add_flag("check", "exit non-zero on a kernel perf regression");
  if (!parser.parse(argc, argv)) return 1;

  const auto out_dir = parser.get_string("out-dir", ".");
  // Build provenance for the committed artefacts: a BENCH_*.json number is
  // only comparable to another taken on the same backend/ISA configuration.
  const auto info = obs::build_info();
  const bench::BenchMeta meta = {
      {"git_sha", info.git_sha},
      {"compiler", info.compiler},
      {"build_type", info.build_type},
      {"kernel_backend",
       linalg::kernel_backend_name(linalg::kernel_backend())},
      {"kernel_native", linalg::kernel_native_build() ? "true" : "false"},
  };
  const int trials = static_cast<int>(parser.get_int("trials", 5));
  const int threads = static_cast<int>(parser.get_int("threads", 4));
  const double slack = parser.get_double("slack", 1.15);

  data::WebspamLikeConfig config;
  config.num_examples =
      static_cast<data::Index>(parser.get_int("examples", 4096));
  config.num_features =
      static_cast<data::Index>(parser.get_int("features", 8192));
  const auto dataset = data::make_webspam_like(config);
  std::printf("dataset: %u x %u, nnz %zu (padded %zu)\n",
              dataset.num_examples(), dataset.num_features(),
              static_cast<std::size_t>(dataset.nnz()),
              dataset.bucketed_rows().padded_nnz());

  // ---- kernel suite -------------------------------------------------------
  std::vector<bench::BenchResult> kernels;
  std::vector<float> dense(dataset.num_features(), 1.5F);
  std::vector<float> target(dataset.num_features(), 0.5F);
  std::vector<float> out(dataset.num_features(), 0.0F);

  const auto dot_times = time_kernel(
      dataset, trials,
      [&](const sparse::SparseVectorView& v) {
        g_sink = linalg::scalar::sparse_dot(v, dense);
      },
      [&](const sparse::SparseVectorView& v) {
        g_sink = linalg::vec::sparse_dot(v, dense);
      });
  add_kernel_result(kernels, "sparse_dot", dot_times);

  const auto residual_times = time_kernel(
      dataset, trials,
      [&](const sparse::SparseVectorView& v) {
        g_sink = linalg::scalar::sparse_residual_dot(v, target, dense);
      },
      [&](const sparse::SparseVectorView& v) {
        g_sink = linalg::vec::sparse_residual_dot(v, target, dense);
      });
  add_kernel_result(kernels, "sparse_residual_dot", residual_times);

  const auto axpy_times = time_kernel(
      dataset, trials,
      [&](const sparse::SparseVectorView& v) {
        linalg::scalar::sparse_axpy(1e-6, v, out);
      },
      [&](const sparse::SparseVectorView& v) {
        linalg::vec::sparse_axpy(1e-6, v, out);
      });
  add_kernel_result(kernels, "sparse_axpy", axpy_times);

  // Dense reduction / update over the feature dimension.
  {
    const double n = static_cast<double>(dense.size());
    const int reps = 512;
    KernelTimes times;
    times.scalar_ns_per_nnz = 1e9 / (n * reps) * best_of(trials, [&] {
      for (int i = 0; i < reps; ++i) g_sink = linalg::scalar::dot(dense, target);
    });
    times.vec_ns_per_nnz = 1e9 / (n * reps) * best_of(trials, [&] {
      for (int i = 0; i < reps; ++i) g_sink = linalg::vec::dot(dense, target);
    });
    add_kernel_result(kernels, "dense_dot", times);

    KernelTimes axpy;
    axpy.scalar_ns_per_nnz = 1e9 / (n * reps) * best_of(trials, [&] {
      for (int i = 0; i < reps; ++i) linalg::scalar::axpy(1e-6, dense, out);
    });
    axpy.vec_ns_per_nnz = 1e9 / (n * reps) * best_of(trials, [&] {
      for (int i = 0; i < reps; ++i) linalg::vec::axpy(1e-6, dense, out);
    });
    add_kernel_result(kernels, "dense_axpy", axpy);
  }

  bench::write_json_file(out_dir + "/BENCH_kernels.json", "kernels", kernels,
                         meta);

  // ---- epoch suite --------------------------------------------------------
  std::vector<bench::BenchResult> epochs;
  const core::RidgeProblem problem(dataset, 1e-3);
  const auto saved_backend = linalg::kernel_backend();

  {
    core::SeqScdSolver solver(problem, core::Formulation::kDual, 7);
    linalg::set_kernel_backend(linalg::KernelBackend::kScalar);
    const double scalar_s = best_of(trials, [&] { solver.run_epoch(); });
    linalg::set_kernel_backend(linalg::KernelBackend::kVectorized);
    const double vec_s = best_of(trials, [&] { solver.run_epoch(); });
    linalg::set_kernel_backend(saved_backend);
    epochs.push_back({"seq_epoch/scalar", scalar_s, "seconds", {}});
    epochs.push_back({"seq_epoch/vectorized", vec_s, "seconds",
                      {{"speedup_vs_scalar", scalar_s / vec_s}}});
    std::printf("seq_epoch                scalar %.4fs   vectorized %.4fs   "
                "%.2fx\n", scalar_s, vec_s, scalar_s / vec_s);
  }

  {
    core::ThreadedScdSolver solver(problem, core::Formulation::kDual, threads,
                                   core::CommitPolicy::kAtomicAdd, 7);
    const double pooled_s = best_of(trials, [&] { solver.run_epoch(); });
    epochs.push_back({"threaded_epoch/pooled", pooled_s, "seconds",
                      {{"threads", static_cast<double>(threads)}}});
    std::printf("threaded_epoch (pooled)  %.4fs with %d threads\n", pooled_s,
                threads);

    // Replicated write-back: private per-thread replicas with periodic
    // merges, executed serially or on the pool as the cost model decides.
    core::ThreadedScdSolver replicated(problem, core::Formulation::kDual,
                                       threads, core::CommitPolicy::kReplicated,
                                       7);
    const double rep_s = best_of(trials, [&] { replicated.run_epoch(); });
    epochs.push_back({"threaded_epoch/replicated", rep_s, "seconds",
                      {{"threads", static_cast<double>(threads)},
                       {"speedup_vs_atomic", pooled_s / rep_s}}});
    std::printf("threaded_epoch (replic.) %.4fs with %d threads (%.2fx vs "
                "atomic)\n", rep_s, threads, pooled_s / rep_s);
  }

  {
    std::vector<float> alpha(problem.num_coordinates(core::Formulation::kDual),
                             0.01F);
    std::vector<float> wbar(problem.shared_dim(core::Formulation::kDual),
                            0.0F);
    linalg::csr_matvec_transposed(dataset.by_row(), alpha, wbar);
    const double serial_s = best_of(trials, [&] {
      g_sink = problem.dual_duality_gap(alpha, wbar);
    });
    util::ThreadPool pool(static_cast<std::size_t>(threads));
    const double pooled_s = best_of(trials, [&] {
      g_sink = problem.dual_duality_gap(alpha, wbar, &pool);
    });
    epochs.push_back({"duality_gap/serial", serial_s, "seconds", {}});
    epochs.push_back({"duality_gap/pooled", pooled_s, "seconds",
                      {{"threads", static_cast<double>(threads)},
                       {"speedup_vs_serial", serial_s / pooled_s}}});
    std::printf("duality_gap              serial %.5fs   pooled %.5fs\n",
                serial_s, pooled_s);
  }

  {
    const int run_epochs = static_cast<int>(parser.get_int("epochs", 10));
    core::RunOptions every;
    every.max_epochs = run_epochs;
    every.target_gap = 0.0;
    core::RunOptions amortised = every;
    amortised.gap_every = 5;
    const double every_s = best_of(1, [&] {
      core::SeqScdSolver solver(problem, core::Formulation::kDual, 7);
      core::run_solver(solver, problem, every);
    });
    const double amortised_s = best_of(1, [&] {
      core::SeqScdSolver solver(problem, core::Formulation::kDual, 7);
      core::run_solver(solver, problem, amortised);
    });
    epochs.push_back({"run/gap_every_1", every_s, "seconds",
                      {{"epochs", static_cast<double>(run_epochs)}}});
    epochs.push_back({"run/gap_every_5", amortised_s, "seconds",
                      {{"epochs", static_cast<double>(run_epochs)},
                       {"speedup_vs_every_epoch", every_s / amortised_s}}});
    std::printf("run (%d epochs)          gap_every=1 %.4fs   gap_every=5 "
                "%.4fs   %.2fx\n", run_epochs, every_s, amortised_s,
                every_s / amortised_s);
  }

  bench::write_json_file(out_dir + "/BENCH_epoch.json", "epoch", epochs,
                         meta);
  std::printf("wrote %s/BENCH_kernels.json and %s/BENCH_epoch.json\n",
              out_dir.c_str(), out_dir.c_str());

  if (parser.get_bool("check")) {
    // The vectorized backend must not lose to the reference beyond `slack`
    // on any reduction kernel, nor on the end-to-end sequential epoch.
    struct Check {
      const char* name;
      double scalar, vec;
    };
    const std::vector<Check> checks = {
        {"sparse_dot", dot_times.scalar_ns_per_nnz, dot_times.vec_ns_per_nnz},
        {"sparse_residual_dot", residual_times.scalar_ns_per_nnz,
         residual_times.vec_ns_per_nnz},
        {"sparse_axpy", axpy_times.scalar_ns_per_nnz,
         axpy_times.vec_ns_per_nnz},
    };
    bool ok = true;
    for (const auto& c : checks) {
      if (c.vec > c.scalar * slack) {
        std::printf("CHECK FAILED: %s vectorized %.3f ns/nnz > scalar %.3f "
                    "* slack %.2f\n", c.name, c.vec, c.scalar, slack);
        ok = false;
      }
    }
    if (!ok) return 2;
    std::printf("perf checks passed (slack %.2f)\n", slack);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
