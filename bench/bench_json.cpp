#include "bench_json.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace tpa::bench {
namespace {

std::string number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

std::string to_json(const std::string& suite,
                    std::span<const BenchResult> results,
                    const BenchMeta& meta) {
  std::string out = "{\n  \"suite\": ";
  append_escaped(out, suite);
  if (!meta.empty()) {
    out += ",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta.size(); ++i) {
      out += i == 0 ? "" : ", ";
      append_escaped(out, meta[i].first);
      out += ": ";
      append_escaped(out, meta[i].second);
    }
    out += "}";
  }
  out += ",\n  \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": ";
    append_escaped(out, r.name);
    out += ", \"value\": " + number(r.value);
    out += ", \"unit\": ";
    append_escaped(out, r.unit);
    for (const auto& [key, value] : r.extra) {
      out += ", ";
      append_escaped(out, key);
      out += ": " + number(value);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

void write_json_file(const std::string& path, const std::string& suite,
                     std::span<const BenchResult> results,
                     const BenchMeta& meta) {
  std::ofstream file(path, std::ios::binary);
  if (!file) {
    throw std::runtime_error("bench_json: cannot open " + path);
  }
  file << to_json(suite, results, meta);
  if (!file) {
    throw std::runtime_error("bench_json: write failed for " + path);
  }
}

}  // namespace tpa::bench
