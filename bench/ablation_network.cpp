// Ablation: interconnect sensitivity of distributed TPA-SCD.
//
// Section V.A of the paper observes the communication share growing with
// worker count on 10 GbE (~17% at K = 8) and remarks that "the use of a
// 100Gbit ethernet network interface would improve the scaling behavior
// further".  This bench quantifies that remark: the Fig. 9 breakdown
// repeated across 10 GbE, 100 GbE and PCIe-peer interconnects.
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("ablation_network",
                         "communication share vs interconnect (dual, "
                         "M4000 workers)");
  bench::add_common_options(parser);
  parser.add_option("eps", "target duality gap", "1e-5");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 300));
  const double eps = parser.get_double("eps", 1e-5);

  const auto dataset = bench::make_webspam(options);

  const cluster::NetworkModel networks[] = {
      cluster::NetworkModel::ethernet_10g(),
      cluster::NetworkModel::ethernet_100g(),
      cluster::NetworkModel::pcie_peer(),
  };

  std::cout << "\n== time to gap <= " << util::Table::format_number(eps)
            << " and communication share vs interconnect ==\n";
  util::Table table({"network", "workers", "total (s)", "network (s)",
                     "comm share"});
  double share_10g = 0.0;
  double share_100g = 0.0;
  for (const auto& network : networks) {
    for (const int workers : {2, 4, 8}) {
      cluster::DistConfig config;
      config.formulation = core::Formulation::kDual;
      config.num_workers = workers;
      config.local_solver.kind = core::SolverKind::kTpaM4000;
      config.network = network;
      config.lambda = options.lambda;
      config.seed = options.seed;
      cluster::DistributedSolver solver(dataset, config);

      cluster::EpochBreakdown total{};
      for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
        solver.run_epoch();
        const auto& b = solver.last_breakdown();
        total.compute_solver += b.compute_solver;
        total.compute_host += b.compute_host;
        total.pcie += b.pcie;
        total.network += b.network;
        if (solver.duality_gap() <= eps) break;
      }
      const double share = (total.pcie + total.network) / total.total();
      table.begin_row();
      table.add_cell(network.name);
      table.add_integer(workers);
      table.add_number(total.total());
      table.add_number(total.network);
      table.add_cell(util::Table::format_number(share * 100.0) + "%");
      if (workers == 8 && network.name == "10GbE") share_10g = share;
      if (workers == 8 && network.name == "100GbE") share_100g = share;
    }
  }
  bench::emit(table, options);

  if (share_10g > 0.0 && share_100g > 0.0) {
    bench::shape_check("comm share reduction 10GbE -> 100GbE at K=8",
                       share_10g / share_100g,
                       "> 1 (faster network improves scaling, Sect. V.A)");
  }
  return 0;
}
