// Reproduces Fig. 4: the effect of adaptive aggregation (Algorithm 4) on
// distributed SCD with K = 8 workers; webspam stand-in, λ = 1e-3.
//
// Paper shapes: for the primal form, adaptive aggregation converges up to
// ~2x faster in epochs at small duality gaps; for the dual, adaptive can be
// *slower* at large gaps (it optimises D, not the gap) with a crossover,
// then a ~1.2x advantage at small gaps.
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser(
      "fig4_adaptive_vs_averaging",
      "Fig. 4 — adaptive vs averaging aggregation, K = 8 workers");
  bench::add_common_options(parser);
  parser.add_option("workers", "number of workers", "8");
  parser.add_option("record", "record gap every R epochs", "5");
  parser.add_option("eps", "gap level for the epoch-speed-up check", "1e-5");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 400));
  const int workers = static_cast<int>(parser.get_int("workers", 8));
  const auto record = static_cast<int>(parser.get_int("record", 5));
  const double eps = parser.get_double("eps", 1e-5);

  const auto dataset = bench::make_webspam(options);

  for (const auto formulation :
       {core::Formulation::kPrimal, core::Formulation::kDual}) {
    std::vector<core::ConvergenceTrace> traces;
    for (const auto mode : {cluster::AggregationMode::kAveraging,
                            cluster::AggregationMode::kAdaptive}) {
      cluster::DistConfig config;
      config.formulation = formulation;
      config.num_workers = workers;
      config.aggregation = mode;
      config.local_solver.kind = core::SolverKind::kSequential;
      config.lambda = options.lambda;
      config.seed = options.seed;
      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run_options;
      run_options.max_epochs = options.max_epochs;
      run_options.record_interval = record;
      run_options.target_gap = eps / 10.0;
      traces.push_back(cluster::run_distributed(solver, run_options));
    }

    std::cout << "\n== Fig. 4" << (formulation == core::Formulation::kPrimal
                                       ? "a: primal form"
                                       : "b: dual form")
              << " (K=" << workers << "), gap vs epochs ==\n";
    util::Table table({"epoch", "averaging", "adaptive"});
    const std::size_t rows =
        std::max(traces[0].points().size(), traces[1].points().size());
    for (std::size_t row = 0; row < rows; ++row) {
      table.begin_row();
      const auto& anchor = row < traces[0].points().size()
                               ? traces[0].points()[row]
                               : traces[1].points()[row];
      table.add_integer(anchor.epoch);
      for (const auto& trace : traces) {
        if (row < trace.points().size()) {
          table.add_number(trace.points()[row].gap);
        } else {
          table.add_cell("-");
        }
      }
    }
    bench::emit(table, options);

    const auto avg = traces[0].epochs_to_gap(eps);
    const auto ada = traces[1].epochs_to_gap(eps);
    if (avg.has_value() && ada.has_value() && *ada > 0) {
      bench::shape_check(
          std::string(formulation_name(formulation)) +
              " adaptive epoch-speed-up at gap<=" +
              util::Table::format_number(eps),
          static_cast<double>(*avg) / *ada,
          formulation == core::Formulation::kPrimal ? "approaching 2x"
                                                    : "~1.2x, after crossover");
    }
  }
  return 0;
}
