// Reproduces Fig. 2: convergence in duality gap of the dual ridge
// regression solvers, as a function of epochs (2a) and time (2b); webspam
// stand-in, λ = 1e-3.
//
// Paper shapes: the dual converges in a handful of epochs (vs hundreds for
// the primal); PASSCoDe-Wild again has a gap floor; time speed-ups are
// ≈ 10x for TPA-SCD on the M4000 and ≈ 35x on the Titan X (note the
// reversal vs the primal case on the M4000 — its L2 holds the primal's
// shared vector but not the dual's).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig2_dual_convergence",
                         "Fig. 2 — dual SCD solver comparison (webspam)");
  bench::add_common_options(parser);
  parser.add_option("record", "record gap every R epochs", "1");
  parser.add_option("eps", "gap level for the speed-up column", "1e-5");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 15));
  const auto record = static_cast<int>(parser.get_int("record", 1));
  const double eps = parser.get_double("eps", 1e-5);

  const auto dataset = bench::make_webspam(options);
  const core::RidgeProblem problem(dataset, options.lambda);

  const core::SolverKind kinds[] = {
      core::SolverKind::kSequential, core::SolverKind::kAsyncAtomic,
      core::SolverKind::kAsyncWild, core::SolverKind::kTpaM4000,
      core::SolverKind::kTpaTitanX};
  const auto runs = bench::run_solver_suite(
      problem, core::Formulation::kDual, kinds, options, record);

  std::cout << "\n== Fig. 2a: duality gap vs epochs (dual, lambda="
            << options.lambda << ") ==\n";
  bench::print_gap_vs_epochs(runs, options);

  std::cout << "\n== Fig. 2b: duality gap vs simulated time ==\n";
  bench::print_time_summary(runs, eps, options);

  bench::shape_check("A-SCD/seq dual speed-up",
                     bench::speedup_vs_first(runs, 1, eps), "~2x");
  bench::shape_check("M4000/seq dual speed-up",
                     bench::speedup_vs_first(runs, 3, eps), "~10x");
  bench::shape_check("TitanX/seq dual speed-up",
                     bench::speedup_vs_first(runs, 4, eps), "~35x");
  bench::shape_check("PASSCoDe-Wild gap floor (does not reach 0)",
                     runs[2].trace.final_gap(), "> 1e-4 floor");
  return 0;
}
