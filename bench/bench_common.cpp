#include "bench_common.hpp"

#include "sparse/matrix_stats.hpp"

namespace tpa::bench {

void add_common_options(util::ArgParser& parser) {
  parser.add_option("examples", "number of training examples", "6144");
  parser.add_option("features", "number of features", "12288");
  parser.add_option("lambda", "ridge regularisation strength", "1e-3");
  parser.add_option("epochs", "maximum epochs per run", "50");
  parser.add_option("seed", "RNG seed", "42");
  parser.add_flag("csv", "emit CSV instead of an aligned table");
}

BenchOptions read_common_options(const util::ArgParser& parser) {
  BenchOptions options;
  options.examples =
      static_cast<data::Index>(parser.get_int("examples", 6144));
  options.features =
      static_cast<data::Index>(parser.get_int("features", 12288));
  options.lambda = parser.get_double("lambda", 1e-3);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 50));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed", 42));
  options.csv = parser.get_bool("csv");
  return options;
}

data::Dataset make_webspam(const BenchOptions& options) {
  data::WebspamLikeConfig config;
  config.num_examples = options.examples;
  config.num_features = options.features;
  config.seed = options.seed;
  auto dataset = data::make_webspam_like(config);
  const auto stats = sparse::compute_stats(dataset.by_row());
  std::cerr << "# dataset " << dataset.name() << ": " << stats.summary()
            << "\n";
  if (dataset.paper_scale().has_value()) {
    const auto& scale = *dataset.paper_scale();
    std::cerr << "# paper-scale stand-in: " << scale.name << " ("
              << scale.examples << " x " << scale.features
              << ", nnz=" << scale.nnz << ") — simulated times use these\n";
  }
  return dataset;
}

void emit(const util::Table& table, const BenchOptions& options) {
  if (options.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

void shape_check(const std::string& description, double measured,
                 const std::string& paper_value) {
  std::cout << "shape-check: " << description << " = "
            << util::Table::format_number(measured)
            << " (paper: " << paper_value << ")\n";
}

std::pair<double, bool> time_to_gap(const core::ConvergenceTrace& trace,
                                    double eps) {
  if (const auto t = trace.sim_time_to_gap(eps); t.has_value()) {
    return {*t, true};
  }
  return {trace.points().empty() ? 0.0 : trace.points().back().sim_seconds,
          false};
}

std::vector<SolverRun> run_solver_suite(
    const core::RidgeProblem& problem, core::Formulation formulation,
    std::span<const core::SolverKind> kinds, const BenchOptions& options,
    int record_interval) {
  std::vector<SolverRun> runs;
  runs.reserve(kinds.size());
  core::RunOptions run_options;
  run_options.max_epochs = options.max_epochs;
  run_options.record_interval = record_interval;
  for (const auto kind : kinds) {
    core::SolverConfig config;
    config.kind = kind;
    config.formulation = formulation;
    config.seed = options.seed;
    auto solver = core::make_solver(problem, config);
    SolverRun run;
    run.name = solver->name();
    run.trace = core::run_solver(*solver, problem, run_options);
    if (!run.trace.points().empty()) {
      run.sim_seconds_per_epoch =
          (run.trace.points().back().sim_seconds -
           solver->setup_sim_seconds()) /
          run.trace.points().back().epoch;
    }
    std::cerr << "# ran " << run.name << ": final gap "
              << util::Table::format_number(run.trace.final_gap()) << "\n";
    runs.push_back(std::move(run));
  }
  return runs;
}

void print_gap_vs_epochs(const std::vector<SolverRun>& runs,
                         const BenchOptions& options) {
  std::vector<std::string> columns{"epoch"};
  for (const auto& run : runs) columns.push_back(run.name);
  util::Table table(std::move(columns));
  if (runs.empty()) return;
  const auto& anchor = runs.front().trace.points();
  for (std::size_t row = 0; row < anchor.size(); ++row) {
    table.begin_row();
    table.add_integer(anchor[row].epoch);
    for (const auto& run : runs) {
      const auto& points = run.trace.points();
      if (row < points.size()) {
        table.add_number(points[row].gap);
      } else {
        table.add_cell("-");
      }
    }
  }
  emit(table, options);
}

void print_time_summary(const std::vector<SolverRun>& runs, double eps,
                        const BenchOptions& options) {
  util::Table table({"solver", "sim s/epoch", "final gap",
                     "sim time to gap<=" + util::Table::format_number(eps),
                     "speed-up vs " + (runs.empty() ? "?" : runs[0].name)});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    table.begin_row();
    table.add_cell(run.name);
    table.add_number(run.sim_seconds_per_epoch);
    table.add_number(run.trace.final_gap());
    const auto [seconds, reached] = time_to_gap(run.trace, eps);
    table.add_cell(reached ? util::Table::format_number(seconds)
                           : "not reached");
    const double speedup = speedup_vs_first(runs, i, eps);
    table.add_cell(speedup > 0.0
                       ? util::Table::format_number(speedup) + "x"
                       : "-");
  }
  emit(table, options);
}

double speedup_vs_first(const std::vector<SolverRun>& runs, std::size_t idx,
                        double eps) {
  if (runs.empty() || idx >= runs.size()) return 0.0;
  const auto base = runs[0].trace.sim_time_to_gap(eps);
  const auto mine = runs[idx].trace.sim_time_to_gap(eps);
  if (!base.has_value() || !mine.has_value() || *mine <= 0.0) return 0.0;
  return *base / *mine;
}

}  // namespace tpa::bench
