// Reproduces Fig. 5: evolution of the optimal aggregation parameter γ*ₜ
// over epochs for K = 1, 2, 4, 8 workers (adaptive aggregation, Algorithm
// 4); webspam stand-in, λ = 1e-3.
//
// Paper shape: γ starts relatively low, increases, and converges to a value
// significantly *larger* than the 1/K that plain averaging would use.
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

namespace {

constexpr int kWorkerCounts[] = {1, 2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig5_gamma_evolution",
                         "Fig. 5 — optimal aggregation parameter vs epochs");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 60));

  const auto dataset = bench::make_webspam(options);

  for (const auto formulation :
       {core::Formulation::kPrimal, core::Formulation::kDual}) {
    std::vector<core::ConvergenceTrace> traces;
    std::vector<std::string> columns{"epoch"};
    for (const int workers : kWorkerCounts) {
      cluster::DistConfig config;
      config.formulation = formulation;
      config.num_workers = workers;
      config.aggregation = cluster::AggregationMode::kAdaptive;
      config.local_solver.kind = core::SolverKind::kSequential;
      config.lambda = options.lambda;
      config.seed = options.seed;
      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run_options;
      run_options.max_epochs = options.max_epochs;
      run_options.record_interval = 1;
      traces.push_back(cluster::run_distributed(solver, run_options));
      columns.push_back("K=" + std::to_string(workers));
    }

    std::cout << "\n== Fig. 5" << (formulation == core::Formulation::kPrimal
                                       ? "a: primal form"
                                       : "b: dual form")
              << ", aggregation parameter gamma vs epochs ==\n";
    util::Table table(columns);
    for (std::size_t row = 0; row < traces.front().points().size(); ++row) {
      table.begin_row();
      table.add_integer(traces.front().points()[row].epoch);
      for (const auto& trace : traces) {
        if (row < trace.points().size()) {
          table.add_number(trace.points()[row].gamma);
        } else {
          table.add_cell("-");
        }
      }
    }
    bench::emit(table, options);

    // "The value to which it converges is significantly larger than 1/K":
    // compare the median of the last few recorded gammas with 1/K.
    for (std::size_t i = 0; i < traces.size(); ++i) {
      const auto& points = traces[i].points();
      if (points.size() < 5) continue;
      double late_gamma = 0.0;
      for (std::size_t r = points.size() - 5; r < points.size(); ++r) {
        late_gamma += points[r].gamma;
      }
      late_gamma /= 5.0;
      bench::shape_check(
          std::string(formulation_name(formulation)) + " late gamma * K (K=" +
              std::to_string(kWorkerCounts[i]) + ")",
          late_gamma * kWorkerCounts[i], "> 1 (gamma converges above 1/K)");
    }
  }
  return 0;
}
