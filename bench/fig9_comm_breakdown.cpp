// Reproduces Fig. 9: computation-vs-communication breakdown of distributed
// TPA-SCD on the M4000/10GbE cluster solving the dual form to duality gap
// 1e-5, for K = 1, 2, 4, 8 workers; webspam stand-in, λ = 1e-3.
//
// Each epoch's simulated time splits into the four stacked components of
// the figure: GPU compute, host compute, PCIe transfers, and network
// reduce/broadcast.  Paper shapes: GPU compute dominates everywhere; the
// communication share grows with K but is only ≈17% at K = 8.
#include "bench_common.hpp"

#include "cluster/dist_solver.hpp"

namespace {

constexpr int kWorkerCounts[] = {1, 2, 4, 8};

}  // namespace

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig9_comm_breakdown",
                         "Fig. 9 — compute vs communication on the M4000 "
                         "cluster (dual form)");
  bench::add_common_options(parser);
  parser.add_option("eps", "target duality gap", "1e-5");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 300));
  const double eps = parser.get_double("eps", 1e-5);

  const auto dataset = bench::make_webspam(options);

  std::cout << "\n== Fig. 9: sim time (s) to gap <= "
            << util::Table::format_number(eps)
            << ", split into the four stacked components ==\n";
  util::Table table({"workers", "comp GPU", "comp host", "comm PCIe",
                     "comm network", "total", "comm share"});
  double comm_share_at_8 = 0.0;
  for (const int workers : kWorkerCounts) {
    cluster::DistConfig config;
    config.formulation = core::Formulation::kDual;
    config.num_workers = workers;
    config.aggregation = cluster::AggregationMode::kAveraging;
    config.local_solver.kind = core::SolverKind::kTpaM4000;
    config.network = cluster::NetworkModel::ethernet_10g();
    config.lambda = options.lambda;
    config.seed = options.seed;
    cluster::DistributedSolver solver(dataset, config);

    cluster::EpochBreakdown total{};
    for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
      solver.run_epoch();
      const auto& breakdown = solver.last_breakdown();
      total.compute_solver += breakdown.compute_solver;
      total.compute_host += breakdown.compute_host;
      total.pcie += breakdown.pcie;
      total.network += breakdown.network;
      if (solver.duality_gap() <= eps) break;
    }
    const double comm = total.pcie + total.network;
    const double share = comm / total.total();
    table.begin_row();
    table.add_integer(workers);
    table.add_number(total.compute_solver);
    table.add_number(total.compute_host);
    table.add_number(total.pcie);
    table.add_number(total.network);
    table.add_number(total.total());
    table.add_cell(util::Table::format_number(share * 100.0) + "%");
    if (workers == 8) comm_share_at_8 = share;
  }
  bench::emit(table, options);

  bench::shape_check("communication share of total time at K=8",
                     comm_share_at_8 * 100.0, "~17%");
  return 0;
}
