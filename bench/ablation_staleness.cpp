// Ablation: how much block-level asynchrony can TPA-SCD tolerate?
//
// The design choice under test (DESIGN.md §3): TPA-SCD lets hundreds of
// thread blocks update coordinates concurrently against mutually-stale
// shared-vector reads, relying on data sparsity and atomic write-back for
// convergence.  This bench sweeps the asynchrony window from 1 (sequential)
// through the device's effective staleness to far beyond it, reporting the
// duality gap after a fixed epoch budget — showing both why the paper's
// design works at realistic scale and where it breaks.
#include "bench_common.hpp"

#include <cmath>

#include "core/tpa_scd.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("ablation_staleness",
                         "duality gap vs TPA-SCD asynchrony window");
  bench::add_common_options(parser);
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 10));

  const auto dataset = bench::make_webspam(options);
  const core::RidgeProblem problem(dataset, options.lambda);

  const int windows[] = {1, 8, 16, 48, 128, 384, 1024};
  for (const auto f : {core::Formulation::kPrimal, core::Formulation::kDual}) {
    std::cout << "\n== gap after " << options.max_epochs << " epochs vs "
              << "asynchrony window (" << formulation_name(f) << ") ==\n";
    util::Table table({"window", "final gap", "verdict"});
    for (const int window : windows) {
      core::TpaScdOptions tpa_options;
      tpa_options.async_window_override = window;
      core::TpaScdSolver solver(problem, f, options.seed, tpa_options);
      for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
        solver.run_epoch();
      }
      const double gap = solver.duality_gap(problem);
      table.begin_row();
      table.add_integer(window);
      table.add_number(gap);
      table.add_cell(!std::isfinite(gap) || gap > 1.0 ? "DIVERGED"
                     : gap > 1e-2                     ? "degraded"
                                                      : "converges");
    }
    bench::emit(table, options);
  }
  std::cout << "\nnote: the Titan X's effective window is 48 "
               "(DeviceSpec::async_staleness); the paper's near-sequential "
               "per-epoch convergence (Figs. 1a/2a) holds while the window "
               "stays small relative to the coordinate count.\n";
  return 0;
}
