// Fig. 10 companion: out-of-core streaming on a criteo-class workload.
//
// The paper's Section V capacity argument is that the 40 GB one-day sample
// cannot sit in one device's memory — training must stream shards through
// a fixed resident budget.  This bench reproduces that regime end-to-end
// on a generated webspam-like matrix (wide feature space, so the shared
// vector w̄ dominates the cache and sweeps are genuinely memory-bound):
//
//   1. converts the dataset to an on-disk shard store,
//   2. trains with a hard resident budget (resident_shards decoded shards,
//      far below the full matrix),
//   3. compares three arms — synchronous loads (no overlap control),
//      double-buffered prefetch, and a deeper window — against an
//      in-memory run for bit-exactness,
//   4. reports prefetch loads / stalls / overlap fraction and writes the
//      machine-readable BENCH_streaming.json artefact.
//
// Expected shapes: streamed α identical to in-memory α (bit-exact by
// construction), sync overlap exactly 0, double-buffered prefetch hiding
// >= 50% of shard load time behind the sweeps.
#include "bench_common.hpp"
#include "bench_json.hpp"

#include <cmath>
#include <filesystem>

#include "data/dataset.hpp"
#include "obs/metrics_registry.hpp"
#include "sparse/matrix_stats.hpp"
#include "store/format.hpp"
#include "store/prefetch.hpp"
#include "store/shard_reader.hpp"
#include "store/streaming_dataset.hpp"
#include "store/streaming_solver.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace tpa;

  util::ArgParser parser("fig10_streaming",
                         "out-of-core shard streaming with double-buffered "
                         "prefetch (Fig. 10 / Section V capacity regime)");
  bench::add_common_options(parser);
  parser.add_option("shards", "shard count for the store", "8");
  parser.add_option("resident",
                    "decoded shards resident at once (2 = double buffer)",
                    "2");
  parser.add_option("store-dir", "directory for the on-disk store",
                    "fig10_streaming_store");
  parser.add_option("json-out", "machine-readable results artefact",
                    "BENCH_streaming.json");
  if (!parser.parse(argc, argv)) return 1;
  auto options = bench::read_common_options(parser);
  // Defaults put each shard's feature footprint well past the last-level
  // cache: sweeps are memory-bound, which is exactly when prefetch has
  // something to hide behind.
  options.examples = static_cast<data::Index>(
      parser.get_int("examples", 131072));
  options.features = static_cast<data::Index>(
      parser.get_int("features", 1 << 23));
  options.max_epochs = static_cast<int>(parser.get_int("epochs", 3));
  const auto shards =
      static_cast<std::uint64_t>(parser.get_int("shards", 8));
  const auto resident =
      static_cast<std::size_t>(parser.get_int("resident", 2));
  const auto store_dir = parser.get_string("store-dir",
                                           "fig10_streaming_store");

  // Wide feature space with near-uniform popularity and independent draws:
  // w̄ far exceeds the cache and every sweep access is a genuine memory
  // miss — the regime where shard compute can actually hide shard I/O
  // (clustered webspam-style features would make the sweep artificially
  // cache-friendly and understate what prefetch buys at Criteo scale).
  data::WebspamLikeConfig generator;
  generator.num_examples = options.examples;
  generator.num_features = options.features;
  generator.seed = options.seed;
  generator.zipf_exponent = 0.2;
  generator.feature_run_length = 1.0;
  const auto dataset = data::make_webspam_like(generator);
  std::cerr << "# dataset " << dataset.name() << ": "
            << sparse::compute_stats(dataset.by_row()).summary() << "\n";
  sparse::LabeledMatrix data{
      dataset.by_row(),
      std::vector<float>(dataset.labels().begin(), dataset.labels().end())};

  // --- 1. Convert to the on-disk store. ---
  std::filesystem::create_directories(store_dir);
  const util::WallTimer convert_timer;
  const auto manifest = store::write_store(store_dir, "fig10", data, shards);
  std::cerr << "# store: " << manifest.shards.size() << " shards, "
            << manifest.nnz << " nnz, converted in "
            << convert_timer.seconds() << " s\n";
  store::StoreStreamingDataset disk(store::ShardReader::open(
      store_dir + "/fig10.manifest", store::ReadMode::kMmap));

  // --- 2. The hard resident budget. ---
  const std::size_t full_bytes = dataset.resident_bytes();
  std::size_t max_shard_bytes = 0;
  for (std::size_t s = 0; s < disk.num_shards(); ++s) {
    max_shard_bytes = std::max(
        max_shard_bytes, store::decode_shard(disk, s).dataset.resident_bytes());
  }
  const std::size_t budget_bytes = resident * max_shard_bytes;
  const double budget_fraction =
      static_cast<double>(budget_bytes) / static_cast<double>(full_bytes);
  std::cout << "resident budget: " << resident << " x "
            << static_cast<double>(max_shard_bytes) / (1024.0 * 1024)
            << " MiB shards = "
            << static_cast<double>(budget_bytes) / (1024.0 * 1024)
            << " MiB vs " << static_cast<double>(full_bytes) / (1024.0 * 1024)
            << " MiB fully resident ("
            << 100.0 * budget_fraction << "%)\n";

  // --- 3. The arms.  Stats are snapshotted before the gap evaluation so
  // loads/stalls describe exactly epochs * shards training sweeps. ---
  struct Arm {
    const char* name;
    const store::StreamingDataset* source;
    bool async;
    std::size_t resident;
    double wall_seconds = 0.0;
    double gap = 0.0;
    store::PrefetchStats stats;
    std::vector<float> alpha;
  };
  store::MemoryShardedDataset memory(dataset.name(), data, shards);
  auto make_arm = [](const char* name, const store::StreamingDataset* source,
                     bool async, std::size_t window) {
    Arm arm;
    arm.name = name;
    arm.source = source;
    arm.async = async;
    arm.resident = window;
    return arm;
  };
  std::vector<Arm> arms{
      make_arm("sync loads (control)", &disk, false, resident),
      make_arm("double-buffered prefetch", &disk, true, resident),
      make_arm("deeper window", &disk, true, resident + 1),
      make_arm("in-memory shards", &memory, true, resident),
  };

  auto& bytes_counter = obs::metrics().counter("store.bytes_read");
  const auto bytes_before = bytes_counter.value();
  for (auto& arm : arms) {
    store::StreamingConfig config;
    config.lambda = options.lambda;
    config.seed = options.seed;
    config.async_prefetch = arm.async;
    config.resident_shards = arm.resident;
    store::StreamingScdSolver solver(*arm.source, config);
    const util::WallTimer timer;
    for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
      solver.run_epoch();
    }
    arm.wall_seconds = timer.seconds();
    arm.stats = solver.prefetch_stats();
    arm.gap = solver.duality_gap();
    arm.alpha.assign(solver.alpha().begin(), solver.alpha().end());
    std::cerr << "# " << arm.name << ": " << arm.wall_seconds << " s, gap "
              << util::Table::format_number(arm.gap) << "\n";
  }
  const auto bytes_read = bytes_counter.value() - bytes_before;

  std::cout << "\n== Fig. 10 streaming: " << options.max_epochs
            << " epochs, " << manifest.shards.size() << " shards, resident "
            << resident << " ==\n";
  util::Table table({"arm", "wall s", "s/epoch", "loads", "stalls", "load s",
                     "wait s", "overlap"});
  for (const auto& arm : arms) {
    table.begin_row();
    table.add_cell(arm.name);
    table.add_number(arm.wall_seconds);
    table.add_number(arm.wall_seconds / options.max_epochs);
    table.add_integer(static_cast<long long>(arm.stats.loads));
    table.add_integer(static_cast<long long>(arm.stats.stalls));
    table.add_number(arm.stats.load_seconds);
    table.add_number(arm.stats.wait_seconds);
    table.add_cell(util::Table::format_number(
                       100.0 * arm.stats.overlap_fraction()) + "%");
  }
  bench::emit(table, options);

  // --- 4. Shape checks. ---
  double max_alpha_diff = 0.0;
  for (std::size_t i = 0; i < arms[1].alpha.size(); ++i) {
    max_alpha_diff = std::max(
        max_alpha_diff,
        static_cast<double>(std::fabs(arms[1].alpha[i] - arms[3].alpha[i])));
  }
  bench::shape_check("streamed vs in-memory max |Δα|", max_alpha_diff,
                     "0 (bit-exact by construction)");
  bench::shape_check("sync-load overlap fraction",
                     arms[0].stats.overlap_fraction(), "0 (nothing hidden)");
  bench::shape_check("double-buffered overlap fraction",
                     arms[1].stats.overlap_fraction(), ">= 0.5");
  bench::shape_check("resident budget vs fully in-memory", budget_fraction,
                     "< 1 (out-of-core regime)");

  const auto json_out = parser.get_string("json-out", "BENCH_streaming.json");
  if (!json_out.empty()) {
    std::vector<bench::BenchResult> results;
    for (const auto& arm : arms) {
      bench::BenchResult result;
      result.name = std::string("streaming/") + arm.name;
      result.value = arm.stats.overlap_fraction();
      result.unit = "overlap_fraction";
      result.extra = {
          {"wall_seconds", arm.wall_seconds},
          {"loads", static_cast<double>(arm.stats.loads)},
          {"stalls", static_cast<double>(arm.stats.stalls)},
          {"load_seconds", arm.stats.load_seconds},
          {"wait_seconds", arm.stats.wait_seconds},
          {"final_gap", arm.gap},
      };
      results.push_back(std::move(result));
    }
    bench::BenchResult exactness;
    exactness.name = "streaming/max_alpha_diff";
    exactness.value = max_alpha_diff;
    exactness.unit = "abs_diff";
    results.push_back(std::move(exactness));
    bench::BenchResult budget;
    budget.name = "streaming/resident_budget";
    budget.value = budget_fraction;
    budget.unit = "fraction_of_full";
    budget.extra = {
        {"budget_bytes", static_cast<double>(budget_bytes)},
        {"full_bytes", static_cast<double>(full_bytes)},
        {"bytes_read", static_cast<double>(bytes_read)},
    };
    results.push_back(std::move(budget));
    bench::write_json_file(
        json_out, "fig10_streaming", results,
        {{"shards", std::to_string(manifest.shards.size())},
         {"resident", std::to_string(resident)},
         {"examples", std::to_string(options.examples)},
         {"features", std::to_string(options.features)},
         {"epochs", std::to_string(options.max_epochs)}});
    std::cerr << "# results written to " << json_out << "\n";
  }
  return 0;
}
