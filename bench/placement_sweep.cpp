// Placement sweep: uniform vs annealer-optimized coordinate placement on an
// imbalanced heterogeneous fleet (default: 4 Titan Xs + 4 four-thread CPU
// pools over PCIe).  Under the uniform split every round waits on the CPU
// workers; the optimizer shifts coordinates onto the GPUs until the
// predicted round time (max compute + reduce/broadcast, with comm/compute
// overlap) is minimised.  Three arms isolate the gains:
//
//   uniform            equal split, no overlap (the legacy behaviour)
//   optimized          annealer sizes, no overlap
//   optimized+overlap  annealer sizes, master ingests deltas as they arrive
//
// Each arm also runs the cost-model drift auditor: the plan's predicted
// per-term round decomposition vs the engine's measured round attribution
// (DESIGN.md §15).  Emits BENCH_placement.json (same meta block as
// perf_smoke) and with --check asserts (a) the optimized round is never
// slower than uniform, (b) the simulated time-to-gap speedup clears
// --min-speedup, and (c) per-term drift stays under --max-drift (CI gate).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"

#include "cluster/dist_solver.hpp"
#include "cluster/placement/drift.hpp"
#include "cluster/placement/fleet.hpp"
#include "linalg/kernels.hpp"
#include "obs/build_info.hpp"

namespace {

using namespace tpa;

cluster::NetworkModel parse_network(const std::string& name) {
  if (name == "10gbe") return cluster::NetworkModel::ethernet_10g();
  if (name == "100gbe") return cluster::NetworkModel::ethernet_100g();
  if (name == "pcie") return cluster::NetworkModel::pcie_peer();
  throw std::invalid_argument("unknown network preset: " + name +
                              " (expected 10gbe, 100gbe or pcie)");
}

struct Arm {
  const char* name;
  cluster::placement::PlacementMode mode;
  bool overlap;
};

struct ArmResult {
  double time_to_gap = 0.0;
  bool reached = false;
  double round_seconds = 0.0;     // simulated, from the last breakdown
  double predicted_round = 0.0;   // cost-model price of the chosen sizes
  double final_gap = 0.0;
  int epochs = 0;
  double max_drift = 0.0;  // worst per-term predicted-vs-measured error
};

}  // namespace

int main(int argc, char** argv) {
  try {
    util::ArgParser parser("placement_sweep",
                           "uniform vs optimized placement on a mixed fleet");
    bench::add_common_options(parser);
    parser.add_option("fleet", "fleet spec (see --help in tpascd_train)",
                      "4xtitanx,4xcpu:4");
    parser.add_option("network", "10gbe | 100gbe | pcie", "pcie");
    parser.add_option("eps", "target duality gap", "3e-3");
    parser.add_option("placement-seed", "annealer seed", "7");
    parser.add_option("out-dir", "directory for BENCH_placement.json", ".");
    parser.add_option("min-speedup",
                      "--check fails below this time-to-gap speedup", "1.3");
    parser.add_option("max-drift",
                      "--check fails above this per-term cost-model drift",
                      "0.15");
    parser.add_flag("check", "exit non-zero if the optimizer loses to uniform");
    if (!parser.parse(argc, argv)) return 1;

    auto options = bench::read_common_options(parser);
    options.max_epochs = static_cast<int>(parser.get_int("epochs", 200));
    const double eps = parser.get_double("eps", 3e-3);
    const auto fleet =
        cluster::placement::parse_fleet_spec(
            parser.get_string("fleet", "4xtitanx,4xcpu:4"));
    const auto network = parse_network(parser.get_string("network", "pcie"));
    const auto placement_seed =
        static_cast<std::uint64_t>(parser.get_int("placement-seed", 7));

    const auto dataset = bench::make_webspam(options);
    std::printf("fleet: %s, network %s, eps %.1e\n",
                cluster::placement::fleet_summary(fleet).c_str(),
                network.name.c_str(), eps);

    const Arm arms[] = {
        {"uniform", cluster::placement::PlacementMode::kUniform, false},
        {"optimized", cluster::placement::PlacementMode::kOptimize, false},
        {"optimized+overlap", cluster::placement::PlacementMode::kOptimize,
         true},
    };

    util::Table table({"arm", "round (ms)", "predicted (ms)",
                       "time-to-gap (s)", "final gap", "max drift"});
    std::vector<ArmResult> results;
    std::vector<cluster::placement::DriftReport> drift_reports;
    for (const auto& arm : arms) {
      cluster::DistConfig config;
      config.formulation = core::Formulation::kDual;
      config.num_workers = static_cast<int>(fleet.size());
      config.aggregation = cluster::AggregationMode::kAveraging;
      config.network = network;
      config.lambda = options.lambda;
      config.seed = options.seed;
      config.fleet = fleet;
      config.placement = arm.mode;
      config.placement_seed = placement_seed;
      config.comm_overlap = arm.overlap;

      cluster::DistributedSolver solver(dataset, config);
      core::RunOptions run_options;
      run_options.max_epochs = options.max_epochs;
      run_options.record_interval = 1;
      run_options.target_gap = eps;
      const auto trace = cluster::run_distributed(solver, run_options);

      ArmResult result;
      const auto [seconds, reached] = bench::time_to_gap(trace, eps);
      result.time_to_gap = seconds;
      result.reached = reached;
      result.round_seconds = solver.last_breakdown().total();
      cluster::placement::DriftReport drift;
      if (const auto* plan = solver.placement_result()) {
        result.predicted_round = plan->predicted.total();
        drift = cluster::placement::audit_placement_drift(
            plan->predicted, solver.attribution_totals(),
            solver.attribution_rounds());
        result.max_drift = drift.max_rel_error;
      }
      drift_reports.push_back(std::move(drift));
      result.final_gap =
          trace.points().empty() ? 0.0 : trace.points().back().gap;
      result.epochs = static_cast<int>(trace.points().size());
      results.push_back(result);

      table.begin_row();
      table.add_cell(arm.name);
      table.add_cell(util::Table::format_number(result.round_seconds * 1e3));
      table.add_cell(util::Table::format_number(result.predicted_round * 1e3));
      table.add_cell(reached ? util::Table::format_number(seconds)
                             : "not reached");
      table.add_cell(util::Table::format_number(result.final_gap));
      table.add_cell(util::Table::format_number(result.max_drift));
    }
    bench::emit(table, options);
    for (std::size_t i = 0; i < drift_reports.size(); ++i) {
      std::printf("\n[%s] ", arms[i].name);
      cluster::placement::print_drift_report(std::cout, drift_reports[i]);
    }
    // The headline arm's drift lands in the metrics registry.
    cluster::placement::record_drift_obs(drift_reports.back());

    const auto& uniform = results[0];
    const auto& best = results[2];  // optimized+overlap is the headline arm
    const double round_speedup =
        best.round_seconds > 0 ? uniform.round_seconds / best.round_seconds
                               : 0.0;
    const double gap_speedup =
        (uniform.reached && best.reached && best.time_to_gap > 0)
            ? uniform.time_to_gap / best.time_to_gap
            : 0.0;
    bench::shape_check("optimized placement round-time speedup over uniform",
                       round_speedup, ">=1.3x");
    bench::shape_check("optimized placement time-to-gap speedup over uniform",
                       gap_speedup, ">=1.3x");

    const auto info = obs::build_info();
    const bench::BenchMeta meta = {
        {"git_sha", info.git_sha},
        {"compiler", info.compiler},
        {"build_type", info.build_type},
        {"kernel_backend",
         linalg::kernel_backend_name(linalg::kernel_backend())},
        {"kernel_native", linalg::kernel_native_build() ? "true" : "false"},
        {"fleet", cluster::placement::fleet_summary(fleet)},
        {"network", network.name},
    };
    std::vector<bench::BenchResult> records;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      records.push_back(
          {std::string("time_to_gap/") + arms[i].name, r.time_to_gap,
           "sim_seconds",
           {{"reached", r.reached ? 1.0 : 0.0},
            {"round_seconds", r.round_seconds},
            {"predicted_round_seconds", r.predicted_round},
            {"final_gap", r.final_gap},
            {"epochs", static_cast<double>(r.epochs)},
            {"max_drift", r.max_drift}}});
    }
    records.push_back({"speedup/round_time", round_speedup, "x", {}});
    records.push_back({"speedup/time_to_gap", gap_speedup, "x",
                       {{"eps", eps},
                        {"placement_seed",
                         static_cast<double>(placement_seed)}}});
    const auto out_dir = parser.get_string("out-dir", ".");
    bench::write_json_file(out_dir + "/BENCH_placement.json", "placement",
                           records, meta);
    std::printf("wrote %s/BENCH_placement.json\n", out_dir.c_str());

    if (parser.get_bool("check")) {
      const double min_speedup = parser.get_double("min-speedup", 1.3);
      bool ok = true;
      if (!uniform.reached || !best.reached) {
        std::printf("CHECK FAILED: an arm never reached eps %.1e\n", eps);
        ok = false;
      }
      if (best.round_seconds > uniform.round_seconds * (1 + 1e-9)) {
        std::printf("CHECK FAILED: optimized round %.4f ms > uniform %.4f ms\n",
                    best.round_seconds * 1e3, uniform.round_seconds * 1e3);
        ok = false;
      }
      if (gap_speedup < min_speedup) {
        std::printf("CHECK FAILED: time-to-gap speedup %.2fx < %.2fx\n",
                    gap_speedup, min_speedup);
        ok = false;
      }
      const double max_drift = parser.get_double("max-drift", 0.15);
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].max_drift > max_drift) {
          std::printf(
              "CHECK FAILED: [%s] cost-model drift %.3f > %.3f — the "
              "placement model has diverged from the round engine\n",
              arms[i].name, results[i].max_drift, max_drift);
          ok = false;
        }
      }
      if (!ok) return 2;
      std::printf(
          "placement checks passed (speedup %.2fx >= %.2fx, drift <= %.3f)\n",
          gap_speedup, min_speedup, max_drift);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
