// Serving load generator: requests/sec and tail latency vs. batch size and
// worker-thread count.
//
// Builds a webspam-like traffic matrix and a synthetic dense-weight model,
// then sweeps (threads × max-batch-size): for each cell a producer replays
// rows through the batching front end as fast as admission control allows
// (yield-and-retry on shed), and the row reports end-to-end wall time,
// accepted-request throughput, mean realised batch size, shed count, and the
// p50/p95/p99 enqueue-to-completion latency from the serving histogram.
//
//   serve_throughput --examples 4096 --requests 50000 --csv
#include <cstdio>
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "data/generators.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace tpa;

struct LoadResult {
  double wall_seconds = 0.0;
  std::uint64_t shed = 0;
  serve::StatsSnapshot stats;
};

// Keeps the compiler from optimising away the fetched predictions.
double benchmark_sink = 0.0;

LoadResult run_load(const sparse::CsrMatrix& matrix,
                    const core::SavedModel& model, std::size_t threads,
                    std::size_t max_batch, std::size_t requests,
                    std::chrono::microseconds max_wait) {
  serve::ServerConfig config;
  config.threads = threads;
  config.batcher.max_batch_size = max_batch;
  config.batcher.max_wait = max_wait;
  serve::Server server(config);
  server.publish(model);

  LoadResult result;
  std::vector<std::future<float>> predictions;
  predictions.reserve(requests);
  util::WallTimer timer;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto row =
        matrix.row(static_cast<sparse::Index>(i % matrix.rows()));
    for (;;) {
      auto submitted = server.submit(row);
      if (submitted.accepted()) {
        predictions.push_back(std::move(submitted.prediction));
        break;
      }
      ++result.shed;
      std::this_thread::yield();
    }
  }
  server.drain();
  result.wall_seconds = timer.seconds();
  for (auto& prediction : predictions) {
    benchmark_sink += prediction.get();
  }
  result.stats = server.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser parser("serve_throughput",
                         "sweep serving throughput/latency vs batch size "
                         "and thread count");
  parser.add_option("examples", "traffic matrix rows", "4096");
  parser.add_option("features", "traffic matrix columns", "8192");
  parser.add_option("requests", "requests per sweep cell", "50000");
  parser.add_option("wait-us", "max batching wait (microseconds)", "200");
  parser.add_option("seed", "RNG seed", "42");
  parser.add_flag("csv", "emit CSV instead of the aligned table");
  if (!parser.parse(argc, argv)) return 1;
  util::set_log_level(util::LogLevel::kWarn);

  data::WebspamLikeConfig config;
  config.num_examples =
      static_cast<data::Index>(parser.get_int("examples", 4096));
  config.num_features =
      static_cast<data::Index>(parser.get_int("features", 8192));
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed", 42));
  const auto dataset = data::make_webspam_like(config);

  core::SavedModel model;
  model.formulation = core::Formulation::kPrimal;
  model.lambda = 1e-3;
  model.weights.resize(static_cast<std::size_t>(dataset.num_features()));
  for (std::size_t m = 0; m < model.weights.size(); ++m) {
    model.weights[m] = 0.01F * static_cast<float>(m % 101) - 0.5F;
  }

  const auto requests =
      static_cast<std::size_t>(parser.get_int("requests", 50000));
  const std::chrono::microseconds max_wait(parser.get_int("wait-us", 200));

  util::Table table({"threads", "max_batch", "req/s", "mean_batch",
                     "p50_us", "p95_us", "p99_us", "shed"});
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}, std::size_t{8}}) {
    for (const std::size_t max_batch :
         {std::size_t{1}, std::size_t{16}, std::size_t{64},
          std::size_t{256}}) {
      const auto result = run_load(dataset.by_row(), model, threads,
                                   max_batch, requests, max_wait);
      table.begin_row();
      table.add_integer(static_cast<std::int64_t>(threads));
      table.add_integer(static_cast<std::int64_t>(max_batch));
      table.add_number(static_cast<double>(requests) / result.wall_seconds);
      table.add_number(result.stats.mean_batch_size);
      table.add_number(result.stats.p50_us);
      table.add_number(result.stats.p95_us);
      table.add_number(result.stats.p99_us);
      table.add_integer(static_cast<std::int64_t>(result.shed));
    }
  }
  if (parser.get_bool("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::fprintf(stderr, "sink %.3f\n", benchmark_sink);
  return 0;
}
