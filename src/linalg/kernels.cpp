#include "linalg/kernels.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "obs/trace.hpp"

// Explicit SIMD paths for the gather-bound sparse kernels: the compiler will
// happily vectorise the dense multi-accumulator loops on its own but never
// emits hardware gathers for the indexed ones.  Available when the kernels TU
// is built for an AVX2+FMA host (see TPA_KERNEL_NATIVE in CMakeLists.txt);
// everything falls back to the portable unrolled loops otherwise.
//
// The gathers deliberately stay 256-bit: a 512-bit variant measured faster in
// kernel-only microbenchmarks but slowed the surrounding scalar epoch code by
// ~5% (zmm licence/transition effects), and ymm gathers avoid that entirely
// while keeping the path usable on every AVX2 machine.
#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define TPA_KERNELS_GATHER 1
#else
#define TPA_KERNELS_GATHER 0
#endif

namespace tpa::linalg {
namespace {

KernelBackend backend_from_env() {
  const char* env = std::getenv("TPA_KERNELS");
  if (env != nullptr &&
      (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "ref") == 0)) {
    return KernelBackend::kScalar;
  }
  return KernelBackend::kVectorized;
}

std::atomic<KernelBackend>& backend_slot() noexcept {
  static std::atomic<KernelBackend> backend = [] {
    const KernelBackend initial = backend_from_env();
    // Tag the trace so an exported timeline records which kernel backend
    // produced it (otherData.kernel_backend in the Chrome trace).
    obs::set_trace_metadata("kernel_backend", kernel_backend_name(initial));
    return std::atomic<KernelBackend>{initial};
  }();
  return backend;
}

#if TPA_KERNELS_GATHER
// Deterministic pairwise sum of the four double lanes of an accumulator
// vector — the fixed combine order the reduction contract promises.
double reduce_lanes(__m256d acc) {
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}
#endif

}  // namespace

KernelBackend kernel_backend() noexcept {
  return backend_slot().load(std::memory_order_relaxed);
}

void set_kernel_backend(KernelBackend backend) noexcept {
  backend_slot().store(backend, std::memory_order_relaxed);
  obs::set_trace_metadata("kernel_backend", kernel_backend_name(backend));
  // A switch mid-run is worth a mark on the timeline: spans before and after
  // it ran on different kernels.
  obs::trace_instant(backend == KernelBackend::kScalar
                         ? "kernel_backend:scalar"
                         : "kernel_backend:vectorized");
}

const char* kernel_backend_name(KernelBackend backend) noexcept {
  return backend == KernelBackend::kScalar ? "scalar" : "vectorized";
}

bool kernel_native_build() noexcept {
#if defined(TPA_KERNEL_NATIVE_BUILD)
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Scalar reference: strict left-to-right single-accumulator loops, identical
// to the original vector_ops.cpp bodies.
// ---------------------------------------------------------------------------

namespace scalar {

double dot(std::span<const float> x, std::span<const float> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = static_cast<float>(y[i] + alpha * x[i]);
  }
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double sparse_dot(const SparseVectorView& a, std::span<const float> dense) {
  double acc = 0.0;
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    acc += static_cast<double>(a.values[k]) *
           static_cast<double>(dense[a.indices[k]]);
  }
  return acc;
}

double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const float> dense) {
  double acc = 0.0;
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    const auto i = a.indices[k];
    acc += static_cast<double>(a.values[k]) *
           (static_cast<double>(target[i]) - static_cast<double>(dense[i]));
  }
  return acc;
}

void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<float> dense) {
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    const auto i = a.indices[k];
    dense[i] = static_cast<float>(dense[i] + alpha * a.values[k]);
  }
}

void add_diff(std::span<float> w, std::span<const float> replica,
              std::span<const float> base) {
  assert(replica.size() >= w.size() && base.size() >= w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(w[i] + (static_cast<double>(replica[i]) -
                                      static_cast<double>(base[i])));
  }
}

double sparse_dot(const SparseVectorView& a, std::span<const Half> dense) {
  double acc = 0.0;
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    acc += static_cast<double>(a.values[k]) *
           static_cast<double>(half_to_float(dense[a.indices[k]]));
  }
  return acc;
}

double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const Half> dense) {
  double acc = 0.0;
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    const auto i = a.indices[k];
    acc += static_cast<double>(a.values[k]) *
           (static_cast<double>(target[i]) -
            static_cast<double>(half_to_float(dense[i])));
  }
  return acc;
}

void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<Half> dense) {
  // Read-widen, add in double, narrow-store with RNE.  Like the float
  // scatter this must stay an in-order RMW per element: padded views repeat
  // their last index, so batching would scatter a stale read over the real
  // update.
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    const auto i = a.indices[k];
    dense[i] = float_to_half(static_cast<float>(
        static_cast<double>(half_to_float(dense[i])) + alpha * a.values[k]));
  }
}

void add_diff(std::span<float> w, std::span<const Half> replica,
              std::span<const Half> base) {
  assert(replica.size() >= w.size() && base.size() >= w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(
        w[i] + (static_cast<double>(half_to_float(replica[i])) -
                static_cast<double>(half_to_float(base[i]))));
  }
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Vectorized: multi-accumulator unrolled loops.  Reductions keep 4 (dense: 8)
// independent double accumulators — the combine order is fixed (pairwise), so
// results are deterministic, just not identical to left-to-right.
// Element-wise kernels apply the exact scalar per-element expression.
// ---------------------------------------------------------------------------

namespace vec {

double dot(std::span<const float> x, std::span<const float> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double a4 = 0.0, a5 = 0.0, a6 = 0.0, a7 = 0.0;
  std::size_t i = 0;
  for (const std::size_t n8 = n & ~std::size_t{7}; i < n8; i += 8) {
    a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    a1 += static_cast<double>(x[i + 1]) * static_cast<double>(y[i + 1]);
    a2 += static_cast<double>(x[i + 2]) * static_cast<double>(y[i + 2]);
    a3 += static_cast<double>(x[i + 3]) * static_cast<double>(y[i + 3]);
    a4 += static_cast<double>(x[i + 4]) * static_cast<double>(y[i + 4]);
    a5 += static_cast<double>(x[i + 5]) * static_cast<double>(y[i + 5]);
    a6 += static_cast<double>(x[i + 6]) * static_cast<double>(y[i + 6]);
    a7 += static_cast<double>(x[i + 7]) * static_cast<double>(y[i + 7]);
  }
  for (; i < n; ++i) {
    a0 += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return ((a0 + a1) + (a2 + a3)) + ((a4 + a5) + (a6 + a7));
}

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t i = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; i < n4; i += 4) {
    a0 += x[i] * y[i];
    a1 += x[i + 1] * y[i + 1];
    a2 += x[i + 2] * y[i + 2];
    a3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) a0 += x[i] * y[i];
  return (a0 + a1) + (a2 + a3);
}

void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; i < n4; i += 4) {
    y[i] = static_cast<float>(y[i] + alpha * x[i]);
    y[i + 1] = static_cast<float>(y[i + 1] + alpha * x[i + 1]);
    y[i + 2] = static_cast<float>(y[i + 2] + alpha * x[i + 2]);
    y[i + 3] = static_cast<float>(y[i + 3] + alpha * x[i + 3]);
  }
  for (; i < n; ++i) y[i] = static_cast<float>(y[i] + alpha * x[i]);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  std::size_t i = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; i < n4; i += 4) {
    y[i] += alpha * x[i];
    y[i + 1] += alpha * x[i + 1];
    y[i + 2] += alpha * x[i + 2];
    y[i + 3] += alpha * x[i + 3];
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

double sparse_dot(const SparseVectorView& a, std::span<const float> dense) {
  const std::size_t n = a.nnz();
  const sparse::Index* idx = a.indices.data();
  const sparse::Value* val = a.values.data();
#if TPA_KERNELS_GATHER
  // Eight hardware-gathered lanes per step (one vgatherdps ymm), widened to
  // two 4-lane double accumulators.  Duplicate indices (bucketed padding)
  // are harmless for a gather; their values are 0 and contribute exact
  // zeros.  fmadd is bit-identical to mul+add here — the product of two
  // float-derived doubles is exact in double, so the fused single rounding
  // equals the two-step result.  The combine order is fixed, so the result
  // is deterministic.
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t k = 0;
  for (const std::size_t n8 = n & ~std::size_t{7}; k < n8; k += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    const __m256 gathered = _mm256_i32gather_ps(dense.data(), vidx, 4);
    const __m256 vval = _mm256_loadu_ps(val + k);
    acc_lo = _mm256_fmadd_pd(
        _mm256_cvtps_pd(_mm256_castps256_ps128(vval)),
        _mm256_cvtps_pd(_mm256_castps256_ps128(gathered)), acc_lo);
    acc_hi = _mm256_fmadd_pd(
        _mm256_cvtps_pd(_mm256_extractf128_ps(vval, 1)),
        _mm256_cvtps_pd(_mm256_extractf128_ps(gathered, 1)), acc_hi);
  }
  double tail = 0.0;
  for (; k < n; ++k) {
    tail += static_cast<double>(val[k]) * static_cast<double>(dense[idx[k]]);
  }
  return (reduce_lanes(acc_lo) + reduce_lanes(acc_hi)) + tail;
#else
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; k < n4; k += 4) {
    a0 += static_cast<double>(val[k]) * static_cast<double>(dense[idx[k]]);
    a1 += static_cast<double>(val[k + 1]) *
          static_cast<double>(dense[idx[k + 1]]);
    a2 += static_cast<double>(val[k + 2]) *
          static_cast<double>(dense[idx[k + 2]]);
    a3 += static_cast<double>(val[k + 3]) *
          static_cast<double>(dense[idx[k + 3]]);
  }
  for (; k < n; ++k) {
    a0 += static_cast<double>(val[k]) * static_cast<double>(dense[idx[k]]);
  }
  return (a0 + a1) + (a2 + a3);
#endif
}

double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const float> dense) {
  const std::size_t n = a.nnz();
  const sparse::Index* idx = a.indices.data();
  const sparse::Value* val = a.values.data();
#if TPA_KERNELS_GATHER
  // ⟨a, target − dense⟩: two 8-lane gathers per step, subtracted in double
  // exactly as the scalar expression does.
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  std::size_t k = 0;
  for (const std::size_t n8 = n & ~std::size_t{7}; k < n8; k += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    const __m256 t = _mm256_i32gather_ps(target.data(), vidx, 4);
    const __m256 d = _mm256_i32gather_ps(dense.data(), vidx, 4);
    const __m256 vval = _mm256_loadu_ps(val + k);
    const __m256d diff_lo =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(t)),
                      _mm256_cvtps_pd(_mm256_castps256_ps128(d)));
    const __m256d diff_hi =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(t, 1)),
                      _mm256_cvtps_pd(_mm256_extractf128_ps(d, 1)));
    acc_lo = _mm256_fmadd_pd(
        _mm256_cvtps_pd(_mm256_castps256_ps128(vval)), diff_lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(
        _mm256_cvtps_pd(_mm256_extractf128_ps(vval, 1)), diff_hi, acc_hi);
  }
  double tail = 0.0;
  for (; k < n; ++k) {
    const auto i = idx[k];
    tail += static_cast<double>(val[k]) *
            (static_cast<double>(target[i]) - static_cast<double>(dense[i]));
  }
  return (reduce_lanes(acc_lo) + reduce_lanes(acc_hi)) + tail;
#else
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; k < n4; k += 4) {
    const auto i0 = idx[k], i1 = idx[k + 1], i2 = idx[k + 2], i3 = idx[k + 3];
    a0 += static_cast<double>(val[k]) *
          (static_cast<double>(target[i0]) - static_cast<double>(dense[i0]));
    a1 += static_cast<double>(val[k + 1]) *
          (static_cast<double>(target[i1]) - static_cast<double>(dense[i1]));
    a2 += static_cast<double>(val[k + 2]) *
          (static_cast<double>(target[i2]) - static_cast<double>(dense[i2]));
    a3 += static_cast<double>(val[k + 3]) *
          (static_cast<double>(target[i3]) - static_cast<double>(dense[i3]));
  }
  for (; k < n; ++k) {
    const auto i = idx[k];
    a0 += static_cast<double>(val[k]) *
          (static_cast<double>(target[i]) - static_cast<double>(dense[i]));
  }
  return (a0 + a1) + (a2 + a3);
#endif
}

void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<float> dense) {
  // Scatter stays an in-order read-modify-write per element: padded views
  // from the bucketed layout repeat their last index (with value 0), so
  // batching the four loads ahead of the stores would let a padded duplicate
  // clobber the real update with a stale read.  Each element's expression is
  // exactly the scalar reference's; the 4-way unroll only amortises loop
  // control, and the hardware overlaps the independent iterations itself.
  // The scatter stays an in-order read-modify-write per element, even on
  // AVX-512: a gather-update-scatter batch was measured slower here than the
  // plain RMW loop (hardware scatters cost ~an order of magnitude more than
  // the stores they replace), and batching is anyway illegal when indices
  // repeat — padded views from the bucketed layout repeat their last index
  // (with value 0), so a duplicate's lane would scatter a stale read over
  // the real update.  Each element's expression is exactly the scalar
  // reference's; the 4-way unroll only amortises loop control, and the
  // hardware overlaps the independent iterations itself.
  const std::size_t n = a.nnz();
  const sparse::Index* idx = a.indices.data();
  const sparse::Value* val = a.values.data();
  float* out = dense.data();
  std::size_t k = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; k < n4; k += 4) {
    const auto i0 = idx[k], i1 = idx[k + 1], i2 = idx[k + 2], i3 = idx[k + 3];
    out[i0] = static_cast<float>(out[i0] + alpha * val[k]);
    out[i1] = static_cast<float>(out[i1] + alpha * val[k + 1]);
    out[i2] = static_cast<float>(out[i2] + alpha * val[k + 2]);
    out[i3] = static_cast<float>(out[i3] + alpha * val[k + 3]);
  }
  for (; k < n; ++k) {
    const auto i = idx[k];
    out[i] = static_cast<float>(out[i] + alpha * val[k]);
  }
}

void add_diff(std::span<float> w, std::span<const float> replica,
              std::span<const float> base) {
  // Element-wise, so the expression matches the scalar reference exactly;
  // the 4-way unroll only amortises loop control and lets the compiler pack
  // the convert/subtract/add chain into SIMD lanes.
  assert(replica.size() >= w.size() && base.size() >= w.size());
  const std::size_t n = w.size();
  float* out = w.data();
  const float* r = replica.data();
  const float* b = base.data();
  std::size_t i = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; i < n4; i += 4) {
    out[i] = static_cast<float>(out[i] + (static_cast<double>(r[i]) -
                                          static_cast<double>(b[i])));
    out[i + 1] = static_cast<float>(
        out[i + 1] +
        (static_cast<double>(r[i + 1]) - static_cast<double>(b[i + 1])));
    out[i + 2] = static_cast<float>(
        out[i + 2] +
        (static_cast<double>(r[i + 2]) - static_cast<double>(b[i + 2])));
    out[i + 3] = static_cast<float>(
        out[i + 3] +
        (static_cast<double>(r[i + 3]) - static_cast<double>(b[i + 3])));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(out[i] + (static_cast<double>(r[i]) -
                                          static_cast<double>(b[i])));
  }
}

double sparse_dot(const SparseVectorView& a, std::span<const Half> dense) {
  // No 16-bit gather exists, so the half path stays a multi-accumulator
  // conversion loop; widening is exact, so each term equals the scalar
  // reference's and only the combine order differs.
  const std::size_t n = a.nnz();
  const sparse::Index* idx = a.indices.data();
  const sparse::Value* val = a.values.data();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; k < n4; k += 4) {
    a0 += static_cast<double>(val[k]) *
          static_cast<double>(half_to_float(dense[idx[k]]));
    a1 += static_cast<double>(val[k + 1]) *
          static_cast<double>(half_to_float(dense[idx[k + 1]]));
    a2 += static_cast<double>(val[k + 2]) *
          static_cast<double>(half_to_float(dense[idx[k + 2]]));
    a3 += static_cast<double>(val[k + 3]) *
          static_cast<double>(half_to_float(dense[idx[k + 3]]));
  }
  for (; k < n; ++k) {
    a0 += static_cast<double>(val[k]) *
          static_cast<double>(half_to_float(dense[idx[k]]));
  }
  return (a0 + a1) + (a2 + a3);
}

double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const Half> dense) {
  const std::size_t n = a.nnz();
  const sparse::Index* idx = a.indices.data();
  const sparse::Value* val = a.values.data();
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::size_t k = 0;
  for (const std::size_t n4 = n & ~std::size_t{3}; k < n4; k += 4) {
    const auto i0 = idx[k], i1 = idx[k + 1], i2 = idx[k + 2], i3 = idx[k + 3];
    a0 += static_cast<double>(val[k]) *
          (static_cast<double>(target[i0]) -
           static_cast<double>(half_to_float(dense[i0])));
    a1 += static_cast<double>(val[k + 1]) *
          (static_cast<double>(target[i1]) -
           static_cast<double>(half_to_float(dense[i1])));
    a2 += static_cast<double>(val[k + 2]) *
          (static_cast<double>(target[i2]) -
           static_cast<double>(half_to_float(dense[i2])));
    a3 += static_cast<double>(val[k + 3]) *
          (static_cast<double>(target[i3]) -
           static_cast<double>(half_to_float(dense[i3])));
  }
  for (; k < n; ++k) {
    const auto i = idx[k];
    a0 += static_cast<double>(val[k]) *
          (static_cast<double>(target[i]) -
           static_cast<double>(half_to_float(dense[i])));
  }
  return (a0 + a1) + (a2 + a3);
}

void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<Half> dense) {
  // In-order RMW per element for the same aliasing reason as the float
  // scatter: padded duplicate indices make any batching illegal.  The
  // expression matches the scalar half reference exactly.
  const std::size_t n = a.nnz();
  const sparse::Index* idx = a.indices.data();
  const sparse::Value* val = a.values.data();
  Half* out = dense.data();
  for (std::size_t k = 0; k < n; ++k) {
    const auto i = idx[k];
    out[i] = float_to_half(static_cast<float>(
        static_cast<double>(half_to_float(out[i])) + alpha * val[k]));
  }
}

void add_diff(std::span<float> w, std::span<const Half> replica,
              std::span<const Half> base) {
  assert(replica.size() >= w.size() && base.size() >= w.size());
  const std::size_t n = w.size();
  float* out = w.data();
  const Half* r = replica.data();
  const Half* b = base.data();
  std::size_t i = 0;
#if TPA_KERNELS_GATHER && defined(__F16C__)
  // Eight lanes per step: VCVTPH2PS widens both operands exactly, the
  // subtract/add chain runs in packed double, and the store narrows to
  // float — the same per-element expression as the scalar half reference,
  // evaluated in SIMD lanes.
  for (const std::size_t n8 = n & ~std::size_t{7}; i < n8; i += 8) {
    const __m256 rf = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(r + i)));
    const __m256 bf = _mm256_cvtph_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    const __m256 wf = _mm256_loadu_ps(out + i);
    const __m256d diff_lo =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(rf)),
                      _mm256_cvtps_pd(_mm256_castps256_ps128(bf)));
    const __m256d diff_hi =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(rf, 1)),
                      _mm256_cvtps_pd(_mm256_extractf128_ps(bf, 1)));
    const __m256d sum_lo = _mm256_add_pd(
        _mm256_cvtps_pd(_mm256_castps256_ps128(wf)), diff_lo);
    const __m256d sum_hi = _mm256_add_pd(
        _mm256_cvtps_pd(_mm256_extractf128_ps(wf, 1)), diff_hi);
    _mm256_storeu_ps(
        out + i,
        _mm256_set_m128(_mm256_cvtpd_ps(sum_hi), _mm256_cvtpd_ps(sum_lo)));
  }
#endif
  for (; i < n; ++i) {
    out[i] = static_cast<float>(
        out[i] + (static_cast<double>(half_to_float(r[i])) -
                  static_cast<double>(half_to_float(b[i]))));
  }
}

}  // namespace vec

}  // namespace tpa::linalg
