#include "linalg/half.hpp"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>

#include "linalg/kernels.hpp"
#include "obs/trace.hpp"

// Hardware half conversions when this TU is built for an F16C host (the
// kernels TU compile options in CMakeLists.txt apply here too).  VCVTPS2PH
// with the RNE immediate and VCVTPH2PS implement exactly the software
// semantics in half.hpp, so the dispatch below changes throughput only,
// never bits — test_half cross-checks the two paths on every build.
#if defined(__F16C__)
#include <immintrin.h>
#define TPA_HALF_F16C 1
#else
#define TPA_HALF_F16C 0
#endif

namespace tpa::linalg {
namespace {

SharedPrecision precision_from_env() {
  const char* env = std::getenv("TPA_PRECISION");
  if (env != nullptr &&
      (std::strcmp(env, "fp16") == 0 || std::strcmp(env, "half") == 0)) {
    return SharedPrecision::kFp16;
  }
  return SharedPrecision::kFp32;
}

std::atomic<SharedPrecision>& precision_slot() noexcept {
  static std::atomic<SharedPrecision> precision = [] {
    const SharedPrecision initial = precision_from_env();
    obs::set_trace_metadata("shared_precision",
                            shared_precision_name(initial));
    return std::atomic<SharedPrecision>{initial};
  }();
  return precision;
}

inline bool use_scalar() noexcept {
  return kernel_backend() == KernelBackend::kScalar;
}

void widen_scalar(std::span<const Half> src, std::span<float> out) {
  for (std::size_t i = 0; i < src.size(); ++i) out[i] = half_to_float(src[i]);
}

void narrow_scalar(std::span<const float> src, std::span<Half> out) {
  for (std::size_t i = 0; i < src.size(); ++i) out[i] = float_to_half(src[i]);
}

#if TPA_HALF_F16C

void widen_f16c(std::span<const Half> src, std::span<float> out) {
  const std::size_t n = src.size();
  const auto* in = reinterpret_cast<const std::uint16_t*>(src.data());
  std::size_t i = 0;
  for (const std::size_t n8 = n & ~std::size_t{7}; i < n8; i += 8) {
    const __m128i packed =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    _mm256_storeu_ps(out.data() + i, _mm256_cvtph_ps(packed));
  }
  for (; i < n; ++i) out[i] = half_to_float(src[i]);
}

void narrow_f16c(std::span<const float> src, std::span<Half> out) {
  const std::size_t n = src.size();
  auto* dst = reinterpret_cast<std::uint16_t*>(out.data());
  std::size_t i = 0;
  for (const std::size_t n8 = n & ~std::size_t{7}; i < n8; i += 8) {
    const __m256 values = _mm256_loadu_ps(src.data() + i);
    const __m128i packed =
        _mm256_cvtps_ph(values, _MM_FROUND_TO_NEAREST_INT);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), packed);
  }
  for (; i < n; ++i) out[i] = float_to_half(src[i]);
}

#endif  // TPA_HALF_F16C

}  // namespace

float half_to_float(Half h) noexcept {
  return std::bit_cast<float>(half_bits_to_float_bits(h.bits));
}

Half float_to_half(float x) noexcept {
  return Half{float_bits_to_half_bits(std::bit_cast<std::uint32_t>(x))};
}

void widen(std::span<const Half> src, std::span<float> out) {
  assert(out.size() >= src.size());
#if TPA_HALF_F16C
  if (!use_scalar()) {
    widen_f16c(src, out);
    return;
  }
#endif
  widen_scalar(src, out);
}

void narrow(std::span<const float> src, std::span<Half> out) {
  assert(out.size() >= src.size());
#if TPA_HALF_F16C
  if (!use_scalar()) {
    narrow_f16c(src, out);
    return;
  }
#endif
  narrow_scalar(src, out);
}

bool half_hardware_build() noexcept { return TPA_HALF_F16C != 0; }

SharedPrecision shared_precision() noexcept {
  return precision_slot().load(std::memory_order_relaxed);
}

void set_shared_precision(SharedPrecision precision) noexcept {
  precision_slot().store(precision, std::memory_order_relaxed);
  obs::set_trace_metadata("shared_precision",
                          shared_precision_name(precision));
  obs::trace_instant(precision == SharedPrecision::kFp16
                         ? "shared_precision:fp16"
                         : "shared_precision:fp32");
}

const char* shared_precision_name(SharedPrecision precision) noexcept {
  return precision == SharedPrecision::kFp16 ? "fp16" : "fp32";
}

}  // namespace tpa::linalg
