// IEEE 754 binary16 storage type and the shared-vector precision mode.
//
// The shared vector is the bandwidth hog of every solver in the paper: each
// coordinate update gathers and scatters it once, so its element width is
// the per-nnz byte budget of the hot loop.  This header provides the fp16
// *storage* format — values are always widened to fp32 before any
// arithmetic, and every reduction still accumulates in fp64 exactly like
// the float kernels (kernels.hpp), so only the stored representation loses
// precision, never the accumulation.
//
// Conversions are software bit manipulation implementing IEEE semantics:
// round-to-nearest-even, gradual underflow to binary16 subnormals,
// overflow saturating to ±inf (the rounding-correct result: everything at
// or above 65520 is nearer the next power of two than the largest finite
// half), and NaN payload truncation with the quiet bit forced — the same
// results the F16C VCVTPS2PH/VCVTPH2PS instructions produce, which the
// vectorized span conversions in half.cpp use when the kernels TU is built
// for an F16C host (TPA_KERNEL_NATIVE).  DESIGN.md §16 documents where
// fp16 storage is safe and where fp64 stays load-bearing.
#pragma once

#include <cstdint>
#include <span>

namespace tpa::linalg {

/// Opaque binary16 value.  A struct (not a bare uint16_t alias) so span
/// overloads on Half are a distinct overload set from integer spans.
struct Half {
  std::uint16_t bits = 0;
};

static_assert(sizeof(Half) == 2, "Half must be exactly two bytes");

/// float bits -> binary16 bits, round-to-nearest-even.
constexpr std::uint16_t float_bits_to_half_bits(std::uint32_t f) noexcept {
  const auto sign = static_cast<std::uint16_t>((f >> 16) & 0x8000U);
  const std::uint32_t abs = f & 0x7FFFFFFFU;
  if (abs >= 0x7F800000U) {
    if (abs > 0x7F800000U) {
      // NaN: truncate the payload to the top 10 mantissa bits and force the
      // quiet bit, so a signalling NaN cannot survive narrowing (matching
      // VCVTPS2PH).
      const auto payload = static_cast<std::uint16_t>((abs >> 13) & 0x3FFU);
      return static_cast<std::uint16_t>(sign | 0x7C00U | 0x200U | payload);
    }
    return static_cast<std::uint16_t>(sign | 0x7C00U);  // ±inf
  }
  if (abs >= 0x38800000U) {  // |x| >= 2^-14: normal half (or overflow)
    // Rebias the exponent ((e−127)+15 in place) and round the mantissa from
    // 23 to 10 bits.  A mantissa carry ripples into the exponent field,
    // which is exactly RNE's behaviour at binade boundaries — including the
    // top one, where values >= 65520 carry past the largest finite half
    // into the inf encoding (saturate-to-inf overflow policy).
    std::uint32_t half = (abs >> 13) - (112U << 10);
    const std::uint32_t rest = abs & 0x1FFFU;
    if (rest > 0x1000U || (rest == 0x1000U && (half & 1U) != 0)) ++half;
    if (half >= 0x7C00U) half = 0x7C00U;
    return static_cast<std::uint16_t>(sign | half);
  }
  if (abs < 0x33000000U) return sign;  // |x| < 2^-25 underflows to ±0
  // Subnormal half: round value·2^24 to an integer mantissa.  2^-25 exactly
  // ties to 0 (even); anything above it rounds to at least one ulp (2^-24).
  const std::uint32_t e = abs >> 23;  // biased float exponent, >= 102 here
  const std::uint32_t mant = (abs & 0x7FFFFFU) | 0x800000U;
  const std::uint32_t shift = 126U - e;  // in [14, 24]
  std::uint32_t half = mant >> shift;
  const std::uint32_t rest = mant & ((1U << shift) - 1U);
  const std::uint32_t halfway = 1U << (shift - 1U);
  if (rest > halfway || (rest == halfway && (half & 1U) != 0)) ++half;
  return static_cast<std::uint16_t>(sign | half);
}

/// binary16 bits -> float bits (exact: every half value is a float).
constexpr std::uint32_t half_bits_to_float_bits(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000U) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1FU;
  std::uint32_t mant = h & 0x3FFU;
  if (exp == 0x1FU) {  // inf / NaN: payload widens into the top float bits
    return sign | 0x7F800000U | (mant << 13);
  }
  if (exp == 0) {
    if (mant == 0) return sign;  // ±0
    // Subnormal: renormalise by shifting the mantissa up to its implicit
    // bit, decrementing the exponent per shift.
    std::uint32_t e = 113;  // biased float exponent of 2^-14
    while ((mant & 0x400U) == 0) {
      mant <<= 1;
      --e;
    }
    return sign | (e << 23) | ((mant & 0x3FFU) << 13);
  }
  return sign | ((exp + 112U) << 23) | (mant << 13);
}

float half_to_float(Half h) noexcept;
Half float_to_half(float x) noexcept;

/// out[i] = float(src[i]) — exact widening.  Dispatches on kernel_backend():
/// the vectorized backend uses VCVTPH2PS eight lanes at a time on an F16C
/// build; results are bit-identical either way (widening is exact).
void widen(std::span<const Half> src, std::span<float> out);

/// out[i] = half(src[i]) — RNE narrowing.  Vectorized backend uses
/// VCVTPS2PH on an F16C build; software and hardware agree bit-for-bit
/// (test_half cross-checks them).
void narrow(std::span<const float> src, std::span<Half> out);

/// True when the kernels TU was compiled with F16C available, i.e. the
/// vectorized widen/narrow paths use hardware conversions.
bool half_hardware_build() noexcept;

/// Storage precision of the shared vector in the replicated hot paths.
/// kFp32 is the historical (and default) representation; kFp16 stores
/// replicas as binary16, halving the bytes each sweep touches, while all
/// arithmetic still runs fp32-widened with fp64 accumulation.
enum class SharedPrecision {
  kFp32,
  kFp16,
};

/// Currently selected shared-vector storage precision.  Initialised once
/// from the TPA_PRECISION environment variable ("fp16"/"half" selects
/// kFp16); defaults to kFp32.
SharedPrecision shared_precision() noexcept;

/// Overrides the precision at runtime (CLI --precision, tests, benches).
void set_shared_precision(SharedPrecision precision) noexcept;

const char* shared_precision_name(SharedPrecision precision) noexcept;

/// Bytes per stored shared-vector element under `precision`.
constexpr std::size_t shared_value_bytes(SharedPrecision precision) noexcept {
  return precision == SharedPrecision::kFp16 ? sizeof(Half) : sizeof(float);
}

}  // namespace tpa::linalg
