// Dense and sparse-dense vector kernels.
//
// The hot loops of every solver are the two passes over a sparse coordinate
// vector against the dense shared vector: the partial inner product
// ⟨y − w, a⟩ and the scatter w += a·Δ (the paper's "update shared vector"
// step).  Storage is float, accumulation is double, matching the paper's
// 32-bit data with numerically-safe objective evaluation.
//
// Every entry point below dispatches to the kernel layer (kernels.hpp):
// the multi-accumulator vectorized implementation by default, the original
// scalar reference under TPA_KERNELS=scalar / set_kernel_backend().
#pragma once

#include <span>
#include <vector>

#include "linalg/kernels.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace tpa::util {
class ThreadPool;
}

namespace tpa::linalg {

using sparse::SparseVectorView;

/// ⟨x, y⟩ accumulated in double.
double dot(std::span<const float> x, std::span<const float> y);
double dot(std::span<const double> x, std::span<const double> y);

/// ||x||² accumulated in double.
double squared_norm(std::span<const float> x);
double squared_norm(std::span<const double> x);

/// y += alpha * x (element-wise, sizes must match).
void axpy(double alpha, std::span<const float> x, std::span<float> y);
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<float> x, double alpha);

/// Σₖ a.values[k] * dense[a.indices[k]]  — sparse·dense inner product.
double sparse_dot(const SparseVectorView& a, std::span<const float> dense);

/// Σₖ a.values[k] * (target[a.indices[k]] - dense[a.indices[k]]) — fused
/// residual inner product ⟨target − dense, a⟩ used by the coordinate update.
double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const float> dense);

/// dense[a.indices[k]] += alpha * a.values[k] — sparse scatter-add.
void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<float> dense);

/// w[i] += replica[i] − base[i], element-wise in double — the replica-merge
/// primitive: folds one replica's delta against its snapshot `base` into the
/// global vector.  replica/base may be longer than w (padded storage).
void add_diff(std::span<float> w, std::span<const float> replica,
              std::span<const float> base);

/// fp16-storage overloads of the shared-vector kernels (DESIGN.md §16):
/// elements widen to fp32 exactly before arithmetic, accumulation stays
/// fp64, and stores narrow with round-to-nearest-even.
double sparse_dot(const SparseVectorView& a, std::span<const Half> dense);
double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const Half> dense);
void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<Half> dense);
void add_diff(std::span<float> w, std::span<const Half> replica,
              std::span<const Half> base);

/// max_i |x_i - y_i|.
double max_abs_diff(std::span<const float> x, std::span<const float> y);

/// Euclidean distance ||x - y||.
double distance(std::span<const float> x, std::span<const float> y);

/// y = A·x for CSR A (double accumulation, float output).
std::vector<float> csr_matvec(const sparse::CsrMatrix& a,
                              std::span<const float> x);

/// y = Aᵀ·x for CSR A.
std::vector<float> csr_matvec_transposed(const sparse::CsrMatrix& a,
                                         std::span<const float> x);

/// In-place y = A·x into a caller-provided span (y.size() == a.rows()); no
/// allocation.  Rows are independent, so a non-null `pool` splits them into
/// contiguous chunks — results are identical to the serial path.
void csr_matvec(const sparse::CsrMatrix& a, std::span<const float> x,
                std::span<float> y, util::ThreadPool* pool = nullptr);

/// In-place y = Aᵀ·x (y.size() == a.cols()).  The scatter form is inherently
/// serial; prefer csc_matvec_transposed when a column-oriented copy exists.
void csr_matvec_transposed(const sparse::CsrMatrix& a,
                           std::span<const float> x, std::span<float> y);

/// In-place y = Aᵀ·x using the CSC orientation: y[c] = ⟨col_c, x⟩.  Columns
/// are independent, so a non-null `pool` parallelises race-free with results
/// identical to the serial path.
void csc_matvec_transposed(const sparse::CscMatrix& a,
                           std::span<const float> x, std::span<float> y,
                           util::ThreadPool* pool = nullptr);

}  // namespace tpa::linalg
