#include "linalg/vector_ops.hpp"

#include <cassert>
#include <cmath>

namespace tpa::linalg {

double dot(std::span<const float> x, std::span<const float> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<double>(x[i]) * static_cast<double>(y[i]);
  }
  return acc;
}

double dot(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double squared_norm(std::span<const float> x) { return dot(x, x); }
double squared_norm(std::span<const double> x) { return dot(x, x); }

void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = static_cast<float>(y[i] + alpha * x[i]);
  }
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> x, double alpha) {
  for (auto& v : x) v = static_cast<float>(v * alpha);
}

double sparse_dot(const SparseVectorView& a, std::span<const float> dense) {
  double acc = 0.0;
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    acc += static_cast<double>(a.values[k]) *
           static_cast<double>(dense[a.indices[k]]);
  }
  return acc;
}

double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const float> dense) {
  double acc = 0.0;
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    const auto i = a.indices[k];
    acc += static_cast<double>(a.values[k]) *
           (static_cast<double>(target[i]) - static_cast<double>(dense[i]));
  }
  return acc;
}

void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<float> dense) {
  for (std::size_t k = 0; k < a.nnz(); ++k) {
    const auto i = a.indices[k];
    dense[i] = static_cast<float>(dense[i] + alpha * a.values[k]);
  }
}

double max_abs_diff(std::span<const float> x, std::span<const float> y) {
  assert(x.size() == y.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(x[i]) - y[i]));
  }
  return worst;
}

double distance(std::span<const float> x, std::span<const float> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(x[i]) - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::vector<float> csr_matvec(const sparse::CsrMatrix& a,
                              std::span<const float> x) {
  assert(x.size() == a.cols());
  std::vector<float> y(a.rows(), 0.0F);
  for (sparse::Index r = 0; r < a.rows(); ++r) {
    y[r] = static_cast<float>(sparse_dot(a.row(r), x));
  }
  return y;
}

std::vector<float> csr_matvec_transposed(const sparse::CsrMatrix& a,
                                         std::span<const float> x) {
  assert(x.size() == a.rows());
  std::vector<float> y(a.cols(), 0.0F);
  for (sparse::Index r = 0; r < a.rows(); ++r) {
    sparse_axpy(x[r], a.row(r), y);
  }
  return y;
}

}  // namespace tpa::linalg
