#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace tpa::linalg {
namespace {

inline bool use_scalar() noexcept {
  return kernel_backend() == KernelBackend::kScalar;
}

}  // namespace

double dot(std::span<const float> x, std::span<const float> y) {
  return use_scalar() ? scalar::dot(x, y) : vec::dot(x, y);
}

double dot(std::span<const double> x, std::span<const double> y) {
  return use_scalar() ? scalar::dot(x, y) : vec::dot(x, y);
}

double squared_norm(std::span<const float> x) { return dot(x, x); }
double squared_norm(std::span<const double> x) { return dot(x, x); }

void axpy(double alpha, std::span<const float> x, std::span<float> y) {
  // Always the scalar reference: the float axpy is a pure streaming RMW the
  // compiler already vectorises from the plain loop, and the unrolled body
  // measured no faster (BENCH_kernels.json: 1.00x).  Both bodies apply the
  // identical per-element expression, so this is a perf choice only.
  scalar::axpy(alpha, x, y);
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (use_scalar()) {
    scalar::axpy(alpha, x, y);
  } else {
    vec::axpy(alpha, x, y);
  }
}

void scale(std::span<float> x, double alpha) {
  for (auto& v : x) v = static_cast<float>(v * alpha);
}

double sparse_dot(const SparseVectorView& a, std::span<const float> dense) {
  return use_scalar() ? scalar::sparse_dot(a, dense)
                      : vec::sparse_dot(a, dense);
}

double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const float> dense) {
  return use_scalar() ? scalar::sparse_residual_dot(a, target, dense)
                      : vec::sparse_residual_dot(a, target, dense);
}

void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<float> dense) {
  // Always the scalar reference: the scatter is an in-order RMW in both
  // backends (no batching is legal under padded duplicate indices), so the
  // unrolled variant only amortises loop control and measured within noise
  // of scalar (BENCH_kernels.json: ≤1.03x).  Same per-element expression
  // either way — a perf choice, not a numerics one.
  scalar::sparse_axpy(alpha, a, dense);
}

void add_diff(std::span<float> w, std::span<const float> replica,
              std::span<const float> base) {
  if (use_scalar()) {
    scalar::add_diff(w, replica, base);
  } else {
    vec::add_diff(w, replica, base);
  }
}

double sparse_dot(const SparseVectorView& a, std::span<const Half> dense) {
  return use_scalar() ? scalar::sparse_dot(a, dense)
                      : vec::sparse_dot(a, dense);
}

double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const Half> dense) {
  return use_scalar() ? scalar::sparse_residual_dot(a, target, dense)
                      : vec::sparse_residual_dot(a, target, dense);
}

void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<Half> dense) {
  // In-order RMW in both backends (same reasoning as the float scatter);
  // dispatch kept so a backend switch stays observable in one place.
  if (use_scalar()) {
    scalar::sparse_axpy(alpha, a, dense);
  } else {
    vec::sparse_axpy(alpha, a, dense);
  }
}

void add_diff(std::span<float> w, std::span<const Half> replica,
              std::span<const Half> base) {
  if (use_scalar()) {
    scalar::add_diff(w, replica, base);
  } else {
    vec::add_diff(w, replica, base);
  }
}

double max_abs_diff(std::span<const float> x, std::span<const float> y) {
  assert(x.size() == y.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    worst = std::max(worst, std::abs(static_cast<double>(x[i]) - y[i]));
  }
  return worst;
}

double distance(std::span<const float> x, std::span<const float> y) {
  assert(x.size() == y.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = static_cast<double>(x[i]) - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

std::vector<float> csr_matvec(const sparse::CsrMatrix& a,
                              std::span<const float> x) {
  std::vector<float> y(a.rows(), 0.0F);
  csr_matvec(a, x, y);
  return y;
}

std::vector<float> csr_matvec_transposed(const sparse::CsrMatrix& a,
                                         std::span<const float> x) {
  std::vector<float> y(a.cols(), 0.0F);
  csr_matvec_transposed(a, x, y);
  return y;
}

void csr_matvec(const sparse::CsrMatrix& a, std::span<const float> x,
                std::span<float> y, util::ThreadPool* pool) {
  assert(x.size() == a.cols());
  if (y.size() != a.rows()) {
    throw std::invalid_argument("csr_matvec: output span size != rows");
  }
  const auto run_rows = [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) {
      y[r] = static_cast<float>(
          sparse_dot(a.row(static_cast<sparse::Index>(r)), x));
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(y.size(), run_rows);
  } else {
    run_rows(0, y.size());
  }
}

void csr_matvec_transposed(const sparse::CsrMatrix& a,
                           std::span<const float> x, std::span<float> y) {
  assert(x.size() == a.rows());
  if (y.size() != a.cols()) {
    throw std::invalid_argument(
        "csr_matvec_transposed: output span size != cols");
  }
  std::fill(y.begin(), y.end(), 0.0F);
  for (sparse::Index r = 0; r < a.rows(); ++r) {
    sparse_axpy(x[r], a.row(r), y);
  }
}

void csc_matvec_transposed(const sparse::CscMatrix& a,
                           std::span<const float> x, std::span<float> y,
                           util::ThreadPool* pool) {
  assert(x.size() == a.rows());
  if (y.size() != a.cols()) {
    throw std::invalid_argument(
        "csc_matvec_transposed: output span size != cols");
  }
  const auto run_cols = [&](std::size_t begin, std::size_t end) {
    for (std::size_t c = begin; c < end; ++c) {
      y[c] = static_cast<float>(
          sparse_dot(a.col(static_cast<sparse::Index>(c)), x));
    }
  };
  if (pool != nullptr && pool->size() > 1) {
    pool->parallel_for_chunks(y.size(), run_cols);
  } else {
    run_cols(0, y.size());
  }
}

}  // namespace tpa::linalg
