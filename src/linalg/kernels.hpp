// The kernel layer: two interchangeable implementations of every hot-loop
// primitive, selected at runtime.
//
//   linalg::scalar — the original straight-line loops with one accumulator.
//     This is the numerical *reference*: strict left-to-right accumulation,
//     bit-identical to the pre-kernel-layer code.  It stays selectable so
//     any result can be reproduced exactly and regressions can be bisected
//     to "kernel" vs "algorithm".
//
//   linalg::vec — 4/8-way multi-accumulator versions of the same kernels.
//     A single running sum serializes on the FP add latency (4-5 cycles on
//     current x86); four independent double accumulators break that chain so
//     the loop retires one fused load-convert-multiply-add per cycle and the
//     compiler is free to turn the unrolled bodies into packed SIMD.
//     Element-wise kernels (axpy, sparse_axpy) perform exactly the same
//     per-element operations as the scalar reference — only reductions
//     reassociate, so only reductions may differ, and then only in the last
//     ULPs of the double accumulator (see DESIGN.md §9 for the tolerance
//     contract).
//
// The public entry points in vector_ops.hpp dispatch on kernel_backend();
// the default is kVectorized, overridable with TPA_KERNELS=scalar in the
// environment or set_kernel_backend() in code.
#pragma once

#include <span>

#include "linalg/half.hpp"
#include "sparse/csr.hpp"

namespace tpa::linalg {

using sparse::SparseVectorView;

enum class KernelBackend {
  kScalar,      // reference single-accumulator loops
  kVectorized,  // multi-accumulator / SIMD-friendly loops
};

/// Currently selected backend.  Initialised once from the TPA_KERNELS
/// environment variable ("scalar" or "vectorized"/"vec"); defaults to
/// kVectorized.
KernelBackend kernel_backend() noexcept;

/// Overrides the backend at runtime (tests, benchmarks, bisection).
void set_kernel_backend(KernelBackend backend) noexcept;

const char* kernel_backend_name(KernelBackend backend) noexcept;

/// True when the kernels TU was compiled for the build host's ISA
/// (TPA_KERNEL_NATIVE in CMakeLists.txt), i.e. the vectorized backend may be
/// using packed SIMD / hardware gathers.  Exported into bench and run-report
/// metadata so perf numbers are attributable to a build configuration.
bool kernel_native_build() noexcept;

namespace scalar {

double dot(std::span<const float> x, std::span<const float> y);
double dot(std::span<const double> x, std::span<const double> y);
void axpy(double alpha, std::span<const float> x, std::span<float> y);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
double sparse_dot(const SparseVectorView& a, std::span<const float> dense);
double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const float> dense);
void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<float> dense);
void add_diff(std::span<float> w, std::span<const float> replica,
              std::span<const float> base);

// fp16-storage variants: every element is widened to fp32 exactly before
// arithmetic, accumulation stays fp64, and stores narrow with RNE — only
// the stored representation differs from the float kernels above.
double sparse_dot(const SparseVectorView& a, std::span<const Half> dense);
double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const Half> dense);
void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<Half> dense);
void add_diff(std::span<float> w, std::span<const Half> replica,
              std::span<const Half> base);

}  // namespace scalar

namespace vec {

double dot(std::span<const float> x, std::span<const float> y);
double dot(std::span<const double> x, std::span<const double> y);
void axpy(double alpha, std::span<const float> x, std::span<float> y);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
double sparse_dot(const SparseVectorView& a, std::span<const float> dense);
double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const float> dense);
void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<float> dense);
void add_diff(std::span<float> w, std::span<const float> replica,
              std::span<const float> base);

// fp16-storage variants; element-wise expressions match the scalar
// reference exactly (half<->float conversion is exact widening / RNE
// narrowing in both backends), only reductions reassociate.
double sparse_dot(const SparseVectorView& a, std::span<const Half> dense);
double sparse_residual_dot(const SparseVectorView& a,
                           std::span<const float> target,
                           std::span<const Half> dense);
void sparse_axpy(double alpha, const SparseVectorView& a,
                 std::span<Half> dense);
void add_diff(std::span<float> w, std::span<const Half> replica,
              std::span<const Half> base);

}  // namespace vec

}  // namespace tpa::linalg
