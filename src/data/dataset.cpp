#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "sparse/convert.hpp"
#include "util/thread_pool.hpp"

namespace tpa::data {
namespace {

// Below this the pool's spawn cost exceeds the precompute it would split.
constexpr sparse::Offset kParallelSetupNnz = 1u << 16;

}  // namespace

Dataset::Dataset(std::string name, sparse::CsrMatrix by_row,
                 std::vector<float> labels)
    : name_(std::move(name)),
      by_row_(std::move(by_row)),
      labels_(std::move(labels)) {
  if (labels_.size() != by_row_.rows()) {
    throw std::invalid_argument("Dataset: labels count must equal rows");
  }
  by_col_ = sparse::csr_to_csc(by_row_);
  bucketed_rows_ = sparse::BucketedLayout::from_rows(by_row_);
  bucketed_cols_ = sparse::BucketedLayout::from_cols(by_col_);
  if (by_row_.nnz() >= kParallelSetupNnz) {
    util::ThreadPool pool(std::min<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()), 8));
    row_norms_ = by_row_.row_squared_norms(&pool);
    col_norms_ = by_col_.col_squared_norms(&pool);
  } else {
    row_norms_ = by_row_.row_squared_norms();
    col_norms_ = by_col_.col_squared_norms();
  }
}

std::size_t Dataset::memory_bytes() const noexcept {
  return by_row_.memory_bytes() + labels_.size() * sizeof(float);
}

}  // namespace tpa::data
