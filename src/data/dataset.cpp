#include "data/dataset.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

#include "sparse/convert.hpp"
#include "util/thread_pool.hpp"

namespace tpa::data {
namespace {

// Below this the pool's spawn cost exceeds the precompute it would split.
constexpr sparse::Offset kParallelSetupNnz = 1u << 16;

}  // namespace

Dataset::Dataset(std::string name, sparse::CsrMatrix by_row,
                 std::vector<float> labels, DatasetLayout layout)
    : name_(std::move(name)),
      by_row_(std::move(by_row)),
      labels_(std::move(labels)),
      layout_(layout) {
  if (labels_.size() != by_row_.rows()) {
    throw std::invalid_argument("Dataset: labels count must equal rows");
  }
  bucketed_rows_ = sparse::BucketedLayout::from_rows(by_row_);
  if (layout_ == DatasetLayout::kFull) {
    by_col_ = sparse::csr_to_csc(by_row_);
    bucketed_cols_ = sparse::BucketedLayout::from_cols(by_col_);
  }
  if (by_row_.nnz() >= kParallelSetupNnz) {
    util::ThreadPool pool(std::min<std::size_t>(
        std::max(1u, std::thread::hardware_concurrency()), 8));
    row_norms_ = by_row_.row_squared_norms(&pool);
    if (layout_ == DatasetLayout::kFull) {
      col_norms_ = by_col_.col_squared_norms(&pool);
    }
  } else {
    row_norms_ = by_row_.row_squared_norms();
    if (layout_ == DatasetLayout::kFull) {
      col_norms_ = by_col_.col_squared_norms();
    }
  }
}

std::size_t Dataset::memory_bytes() const noexcept {
  return by_row_.memory_bytes() + labels_.size() * sizeof(float);
}

std::size_t Dataset::resident_bytes() const noexcept {
  return by_row_.memory_bytes() + by_col_.memory_bytes() +
         bucketed_rows_.memory_bytes() + bucketed_cols_.memory_bytes() +
         labels_.size() * sizeof(float) +
         (row_norms_.size() + col_norms_.size()) * sizeof(double);
}

}  // namespace tpa::data
