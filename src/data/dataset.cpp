#include "data/dataset.hpp"

#include <stdexcept>

#include "sparse/convert.hpp"

namespace tpa::data {

Dataset::Dataset(std::string name, sparse::CsrMatrix by_row,
                 std::vector<float> labels)
    : name_(std::move(name)),
      by_row_(std::move(by_row)),
      labels_(std::move(labels)) {
  if (labels_.size() != by_row_.rows()) {
    throw std::invalid_argument("Dataset: labels count must equal rows");
  }
  by_col_ = sparse::csr_to_csc(by_row_);
  row_norms_ = by_row_.row_squared_norms();
  col_norms_ = by_col_.col_squared_norms();
}

std::size_t Dataset::memory_bytes() const noexcept {
  return by_row_.memory_bytes() + labels_.size() * sizeof(float);
}

}  // namespace tpa::data
