#include "data/split.hpp"

#include <algorithm>

#include "util/permutation.hpp"

namespace tpa::data {

Dataset take_rows(const Dataset& dataset, std::span<const Index> rows,
                  const std::string& name_suffix) {
  const auto& source = dataset.by_row();
  std::vector<sparse::Offset> offsets;
  offsets.reserve(rows.size() + 1);
  offsets.push_back(0);
  sparse::Offset nnz = 0;
  for (const auto r : rows) {
    nnz += source.row_nnz(r);
    offsets.push_back(nnz);
  }
  std::vector<Index> indices;
  std::vector<sparse::Value> values;
  std::vector<float> labels;
  indices.reserve(nnz);
  values.reserve(nnz);
  labels.reserve(rows.size());
  for (const auto r : rows) {
    const auto view = source.row(r);
    indices.insert(indices.end(), view.indices.begin(), view.indices.end());
    values.insert(values.end(), view.values.begin(), view.values.end());
    labels.push_back(dataset.labels()[r]);
  }
  sparse::CsrMatrix matrix(static_cast<Index>(rows.size()), source.cols(),
                           std::move(offsets), std::move(indices),
                           std::move(values));
  Dataset result(dataset.name() + name_suffix, std::move(matrix),
                 std::move(labels));
  if (dataset.paper_scale().has_value()) {
    result.set_paper_scale(*dataset.paper_scale());
  }
  return result;
}

TrainTestSplit train_test_split(const Dataset& dataset, double train_fraction,
                                util::Rng& rng) {
  train_fraction = std::clamp(train_fraction, 0.0, 1.0);
  std::vector<Index> train_rows;
  std::vector<Index> test_rows;
  for (Index r = 0; r < dataset.num_examples(); ++r) {
    if (rng.bernoulli(train_fraction)) {
      train_rows.push_back(r);
    } else {
      test_rows.push_back(r);
    }
  }
  return TrainTestSplit{take_rows(dataset, train_rows, "_train"),
                        take_rows(dataset, test_rows, "_test")};
}

Dataset sample_rows(const Dataset& dataset, Index count, util::Rng& rng) {
  count = std::min(count, dataset.num_examples());
  auto order = util::random_permutation(dataset.num_examples(), rng);
  std::vector<Index> rows(order.begin(), order.begin() + count);
  std::sort(rows.begin(), rows.end());
  return take_rows(dataset, rows, "_sample");
}

}  // namespace tpa::data
