// Train/test splitting and row subsampling.  The paper's webspam experiment
// uses a 75/25 uniform train/test split of the full corpus; these utilities
// reproduce that preprocessing step on any Dataset.
#pragma once

#include <utility>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace tpa::data {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Splits examples uniformly at random: each row goes to train with
/// probability `train_fraction` (clamped to [0,1]).  Column count is
/// preserved so models transfer between the halves.
TrainTestSplit train_test_split(const Dataset& dataset, double train_fraction,
                                util::Rng& rng);

/// Uniform random subsample of `count` rows without replacement (count is
/// clamped to the dataset size).
Dataset sample_rows(const Dataset& dataset, Index count, util::Rng& rng);

/// Extracts the given rows (indices into `dataset`, any order, no
/// duplicates required) into a new Dataset with the same columns.
Dataset take_rows(const Dataset& dataset, std::span<const Index> rows,
                  const std::string& name_suffix);

}  // namespace tpa::data
