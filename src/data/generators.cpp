#include "data/generators.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "sparse/convert.hpp"

namespace tpa::data {
namespace {

/// Draws `count` distinct feature indices from a Zipf popularity law over
/// [0, num_features), in contiguous runs of geometric mean length
/// `run_length` (n-gram-style co-occurrence).  The per-row loop rejects
/// duplicates, which stays cheap because count ≪ num_features in all
/// configurations we generate.
void draw_distinct_zipf_runs(Index num_features, std::size_t count, double s,
                             double run_length, util::Rng& rng,
                             std::vector<Index>& out) {
  out.clear();
  const double continue_p =
      run_length > 1.0 ? 1.0 - 1.0 / run_length : 0.0;
  while (out.size() < count) {
    auto candidate = static_cast<Index>(rng.zipf(num_features, s));
    do {
      if (std::find(out.begin(), out.end(), candidate) == out.end()) {
        out.push_back(candidate);
      }
      candidate = (candidate + 1) % num_features;
    } while (out.size() < count && rng.bernoulli(continue_p));
  }
  std::sort(out.begin(), out.end());
}

std::vector<float> sparse_planted_beta(Index num_features, double density,
                                       util::Rng& rng) {
  std::vector<float> beta(num_features, 0.0F);
  for (auto& b : beta) {
    if (rng.bernoulli(density)) {
      b = static_cast<float>(rng.normal());
    }
  }
  return beta;
}

}  // namespace

std::vector<float> planted_labels(const sparse::CsrMatrix& matrix,
                                  std::span<const float> beta,
                                  double noise_sigma, util::Rng& rng) {
  auto labels = linalg::csr_matvec(matrix, beta);
  // Normalise the signal to unit variance before adding noise so that
  // noise_sigma has the same meaning across generators.
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const auto y : labels) {
    sum += y;
    sum_sq += static_cast<double>(y) * y;
  }
  const double n = std::max<double>(1.0, static_cast<double>(labels.size()));
  const double var = std::max(1e-12, sum_sq / n - (sum / n) * (sum / n));
  const double inv_std = 1.0 / std::sqrt(var);
  for (auto& y : labels) {
    y = static_cast<float>(y * inv_std + rng.normal(0.0, noise_sigma));
  }
  return labels;
}

Dataset make_webspam_like(const WebspamLikeConfig& config) {
  util::Rng rng(config.seed);
  sparse::CooBuilder coo(config.num_examples, config.num_features);
  coo.reserve(static_cast<std::size_t>(config.num_examples *
                                       config.avg_nnz_per_row));

  // Inverse-document-frequency weights, as in the tf-idf features of the
  // real webspam corpus: a feature expected in almost every document gets a
  // near-zero weight.  Besides realism, this is what keeps *asynchronous*
  // coordinate updates stable — concurrent updates mostly collide on popular
  // features, and idf makes those collisions low-energy.
  std::vector<double> idf(config.num_features, 1.0);
  {
    double harmonic = 0.0;
    for (Index k = 0; k < config.num_features; ++k) {
      harmonic += std::pow(static_cast<double>(k) + 1.0,
                           -config.zipf_exponent);
    }
    const auto n = static_cast<double>(config.num_examples);
    for (Index k = 0; k < config.num_features; ++k) {
      const double p_k = std::pow(static_cast<double>(k) + 1.0,
                                  -config.zipf_exponent) /
                         harmonic;
      const double expected_df =
          n * (1.0 - std::pow(1.0 - p_k, config.avg_nnz_per_row));
      idf[k] = std::pow(std::log(1.0 + n / (1.0 + expected_df)),
                        config.idf_power);
    }
  }

  std::vector<Index> row_features;
  std::vector<sparse::Value> row_values;
  for (Index r = 0; r < config.num_examples; ++r) {
    // Row length follows a clamped geometric-ish law around the mean, which
    // matches the long-but-bounded row-size distribution of n-gram data.
    const double jitter = rng.exponential(1.0);
    auto count = static_cast<std::size_t>(
        std::max(1.0, config.avg_nnz_per_row * (0.5 + 0.5 * jitter)));
    count = std::min<std::size_t>(count, config.num_features / 2);
    draw_distinct_zipf_runs(config.num_features, count, config.zipf_exponent,
                            config.feature_run_length, rng, row_features);
    row_values.clear();
    double norm_sq = 0.0;
    for (std::size_t k = 0; k < row_features.size(); ++k) {
      // tf-idf-like positive magnitudes: lognormal "tf" times the feature's
      // idf weight.
      const auto v = static_cast<sparse::Value>(
          std::exp(rng.normal(0.0, config.value_log_sigma)) *
          idf[row_features[k]]);
      row_values.push_back(v);
      norm_sq += static_cast<double>(v) * v;
    }
    const double scale = config.normalize_rows && norm_sq > 0.0
                             ? 1.0 / std::sqrt(norm_sq)
                             : 1.0;
    for (std::size_t k = 0; k < row_features.size(); ++k) {
      coo.add(r, row_features[k],
              static_cast<sparse::Value>(row_values[k] * scale));
    }
  }
  auto matrix = sparse::coo_to_csr(coo);

  auto beta = sparse_planted_beta(config.num_features, config.model_density,
                                  rng);
  auto labels = planted_labels(matrix, beta, config.noise_sigma, rng);

  Dataset dataset("webspam_like", std::move(matrix), std::move(labels));
  dataset.set_paper_scale(PaperScale{
      "webspam", 262'938ULL, 680'715ULL,
      // 7.3 GB in 8-byte-per-entry CSC (paper, Section III.D) ≈ 0.98e9 nnz.
      980'000'000ULL});
  return dataset;
}

Dataset make_criteo_like(const CriteoLikeConfig& config) {
  util::Rng rng(config.seed);
  const Index num_features = config.num_fields * config.buckets_per_field;
  sparse::CooBuilder coo(config.num_examples, num_features);
  coo.reserve(static_cast<std::size_t>(config.num_examples) *
              config.num_fields);

  for (Index r = 0; r < config.num_examples; ++r) {
    for (Index field = 0; field < config.num_fields; ++field) {
      const auto bucket = static_cast<Index>(
          rng.zipf(config.buckets_per_field, config.zipf_exponent));
      // One-hot: exactly one active bucket per field, value always 1.0
      // (criteo sample property, paper footnote 2).
      coo.add(r, field * config.buckets_per_field + bucket, 1.0F);
    }
  }
  auto matrix = sparse::coo_to_csr(coo);

  auto beta = sparse_planted_beta(num_features, 0.5, rng);
  auto labels = planted_labels(matrix, beta, config.noise_sigma, rng);
  // Click prediction labels are ±1; ridge regression on the sign retains the
  // least-squares structure the paper trains.
  for (auto& y : labels) y = y >= 0.0F ? 1.0F : -1.0F;

  Dataset dataset("criteo_like", std::move(matrix), std::move(labels));
  dataset.set_paper_scale(PaperScale{
      "criteo_1day", 200'000'000ULL, 75'000'000ULL,
      // 40 GB CSR at 8 bytes/entry plus offsets ≈ 4.9e9 nnz.
      4'900'000'000ULL});
  return dataset;
}

Dataset make_dense_gaussian(const DenseGaussianConfig& config) {
  util::Rng rng(config.seed);
  sparse::CooBuilder coo(config.num_examples, config.num_features);
  for (Index r = 0; r < config.num_examples; ++r) {
    for (Index c = 0; c < config.num_features; ++c) {
      if (rng.bernoulli(config.density)) {
        coo.add(r, c, static_cast<sparse::Value>(rng.normal()));
      }
    }
  }
  auto matrix = sparse::coo_to_csr(coo);

  std::vector<float> beta(config.num_features);
  for (auto& b : beta) b = static_cast<float>(rng.normal());
  auto labels = planted_labels(matrix, beta, config.noise_sigma, rng);
  return Dataset("dense_gaussian", std::move(matrix), std::move(labels));
}

}  // namespace tpa::data
