// A training dataset as the solvers consume it: the same matrix in both
// compressed orientations (rows for dual / by-example access, columns for
// primal / by-feature access), the label vector, and cached squared norms.
//
// A Dataset also carries optional *paper-scale* statistics: the N, M and nnz
// of the real dataset a generator stands in for (webspam, criteo).  The
// timing models evaluate simulated runtimes at paper scale while convergence
// runs on the scaled matrix — see DESIGN.md §5.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sparse/bucketed.hpp"
#include "sparse/csc.hpp"
#include "sparse/csr.hpp"

namespace tpa::data {

using sparse::Index;
using sparse::Offset;

/// Statistics of the full-size dataset that a scaled generator emulates.
struct PaperScale {
  std::string name;           // e.g. "webspam"
  std::uint64_t examples = 0;
  std::uint64_t features = 0;
  std::uint64_t nnz = 0;
};

/// Which derived orientations a Dataset materialises.  kFull builds both
/// orientations (every solver works).  kRowsOnly skips the column-oriented
/// copy, its bucketed layout and the column norms — the layout the
/// out-of-core store uses for its resident shards, where only dual
/// (by-example) access exists and the column copy would inflate the
/// per-shard memory budget ~2x.  Primal-formulation paths (by_col,
/// bucketed_cols, col_squared_norms) must not be used on a rows-only
/// dataset: they return empty views.
enum class DatasetLayout { kFull, kRowsOnly };

class Dataset {
 public:
  Dataset() = default;

  /// Builds from a row-oriented matrix and labels (one per row); the
  /// column-oriented copy is derived unless `layout` is kRowsOnly.  Throws
  /// std::invalid_argument on a label count mismatch.
  Dataset(std::string name, sparse::CsrMatrix by_row,
          std::vector<float> labels,
          DatasetLayout layout = DatasetLayout::kFull);

  const std::string& name() const noexcept { return name_; }

  Index num_examples() const noexcept { return by_row_.rows(); }
  Index num_features() const noexcept { return by_row_.cols(); }
  Offset nnz() const noexcept { return by_row_.nnz(); }

  const sparse::CsrMatrix& by_row() const noexcept { return by_row_; }
  const sparse::CscMatrix& by_col() const noexcept { return by_col_; }
  std::span<const float> labels() const noexcept { return labels_; }

  /// Bucketed (aligned, padded, nnz-class-grouped) copies of the two
  /// orientations — the layout the solver hot paths consume (DESIGN.md §9).
  const sparse::BucketedLayout& bucketed_rows() const noexcept {
    return bucketed_rows_;
  }
  const sparse::BucketedLayout& bucketed_cols() const noexcept {
    return bucketed_cols_;
  }

  /// ||ā_n||² for every example row (dual updates).
  std::span<const double> row_squared_norms() const noexcept {
    return row_norms_;
  }
  /// ||a_m||² for every feature column (primal updates).
  std::span<const double> col_squared_norms() const noexcept {
    return col_norms_;
  }

  const std::optional<PaperScale>& paper_scale() const noexcept {
    return paper_scale_;
  }
  void set_paper_scale(PaperScale scale) { paper_scale_ = std::move(scale); }

  DatasetLayout layout() const noexcept { return layout_; }

  /// Combined CSR+labels bytes (the footprint a GPU worker would hold).
  std::size_t memory_bytes() const noexcept;

  /// Bytes this Dataset actually holds resident: both orientations, the
  /// bucketed layouts, labels and norms.  The out-of-core budget accounting
  /// charges shards at this figure, not at raw CSR size.
  std::size_t resident_bytes() const noexcept;

 private:
  std::string name_;
  sparse::CsrMatrix by_row_;
  sparse::CscMatrix by_col_;
  sparse::BucketedLayout bucketed_rows_;
  sparse::BucketedLayout bucketed_cols_;
  std::vector<float> labels_;
  std::vector<double> row_norms_;
  std::vector<double> col_norms_;
  std::optional<PaperScale> paper_scale_;
  DatasetLayout layout_ = DatasetLayout::kFull;
};

}  // namespace tpa::data
