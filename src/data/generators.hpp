// Synthetic dataset generators.
//
// The paper evaluates on webspam (262,938 examples × 680,715 features,
// ~7.3 GB) and a 1-day criteo sample (200 M × 75 M, values all 1.0).  Neither
// is redistributable here, so these generators synthesise matrices with the
// structural properties that drive the paper's results:
//  * heavy-tailed feature popularity (Zipf column frequencies) — controls
//    cross-worker coordinate correlation and hence distributed slow-down;
//  * row sparsity matched in relative terms (nnz/row ≪ features);
//  * a planted linear model with additive noise, so ridge regression has a
//    meaningful optimum and the duality gap decays as the paper's figures
//    show;
//  * for criteo_like: one-hot categorical structure with all values = 1.0
//    (footnote 2 of the paper).
// Each generator attaches the real dataset's PaperScale so timing models can
// report simulated runtimes at full size.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace tpa::data {

/// Configuration for the webspam-like generator.  Defaults give a matrix
/// that solves in seconds on one CPU core while exhibiting the paper's
/// convergence phenomenology.
struct WebspamLikeConfig {
  Index num_examples = 4096;
  Index num_features = 2048;
  double avg_nnz_per_row = 48.0;   // relative sparsity ≈ real webspam
  double zipf_exponent = 1.1;      // feature popularity tail
  /// Mean length of the contiguous feature runs a row draws.  Real webspam
  /// features are character/word n-grams, so features co-occur in strongly
  /// correlated bursts; this coupling is what makes the *primal* (per-
  /// feature) coordinate method need an order of magnitude more epochs than
  /// the dual, as in the paper's Figs. 1a vs 2a.  1.0 = independent draws.
  double feature_run_length = 12.0;
  double value_log_sigma = 0.6;    // lognormal spread of tf-idf-ish values
  /// Strength of the inverse-document-frequency down-weighting of popular
  /// features, as an exponent on the idf factor: 0 = raw counts, 1 = full
  /// tf-idf.  Larger values decorrelate columns (faster primal convergence,
  /// more asynchrony headroom); smaller values strengthen the coupling that
  /// makes the paper's primal need 40x more epochs than its dual.
  double idf_power = 1.0;
  double model_density = 0.25;     // fraction of features in the true model
  double noise_sigma = 0.05;       // label noise relative to unit signal
  /// Scale every example to unit L2 norm, as the LIBSVM distribution of
  /// webspam is.  This is what makes the dual diagonally dominant (λN ≫
  /// ||ā_n||²) and hence much faster-converging than the primal, exactly the
  /// asymmetry between the paper's Figs. 1 and 2.
  bool normalize_rows = true;
  std::uint64_t seed = 42;
};

Dataset make_webspam_like(const WebspamLikeConfig& config);

/// Configuration for the criteo-like generator: `num_fields` categorical
/// fields, each one-hot encoded into its own bucket range; every row has
/// exactly one active feature per field and all matrix values are 1.0.
struct CriteoLikeConfig {
  Index num_examples = 8192;
  Index num_fields = 24;
  Index buckets_per_field = 256;
  double zipf_exponent = 1.1;      // bucket popularity within a field
  double noise_sigma = 0.1;
  std::uint64_t seed = 7;
};

Dataset make_criteo_like(const CriteoLikeConfig& config);

/// Small dense(ish) Gaussian regression problem for unit tests: every entry
/// present with probability `density`, values N(0,1), labels from a planted
/// model plus noise.
struct DenseGaussianConfig {
  Index num_examples = 64;
  Index num_features = 32;
  double density = 1.0;
  double noise_sigma = 0.01;
  std::uint64_t seed = 1;
};

Dataset make_dense_gaussian(const DenseGaussianConfig& config);

/// Labels y = A·beta + noise (double accumulation, float storage).
std::vector<float> planted_labels(const sparse::CsrMatrix& matrix,
                                  std::span<const float> beta,
                                  double noise_sigma, util::Rng& rng);

}  // namespace tpa::data
