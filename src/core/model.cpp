#include "core/model.hpp"

#include "linalg/vector_ops.hpp"

namespace tpa::core {

ModelState ModelState::zeros(const RidgeProblem& problem, Formulation f) {
  ModelState state;
  state.formulation = f;
  state.weights.assign(problem.num_coordinates(f), 0.0F);
  state.shared.assign(problem.shared_dim(f), 0.0F);
  return state;
}

void ModelState::recompute_shared(const RidgeProblem& problem) {
  const auto& by_row = problem.dataset().by_row();
  shared = formulation == Formulation::kPrimal
               ? linalg::csr_matvec(by_row, weights)
               : linalg::csr_matvec_transposed(by_row, weights);
}

double ModelState::shared_inconsistency(const RidgeProblem& problem) const {
  ModelState reference = *this;
  reference.recompute_shared(problem);
  return linalg::max_abs_diff(shared, reference.shared);
}

}  // namespace tpa::core
