// Per-thread replicas of the shared vector (SySCD-style).
//
// The atomic write-back in the threaded/async solvers serialises the hot
// loop on the shared vector's cache lines: every fetch_add bounces the line
// between cores.  ReplicaSet removes that contention by giving each worker
// a private, cache-line-aligned copy of the shared vector — the inner loop
// reads and writes its own replica with plain loads/stores, exactly like the
// sequential solver — and folding the replicas' deltas back into the global
// vector at a configurable interval (the merge).  Staleness is bounded by
// the merge interval; DESIGN.md §11 documents the model.
//
// Layout: one backing AlignedVector holds [base | replica 0 | ... |
// replica n-1], each slot starting on a fresh 64-byte line (stride rounded
// up to 16 floats), so no two replicas — and no replica and the base — ever
// share a cache line (false sharing would reintroduce the very contention
// replication removes).
//
// Merge semantics (deterministic): for each replica r in index order,
//   w[i] = float(w[i] + (double(r[i]) − double(base[i])))     (linalg::add_diff)
// then base and every replica are reseeded from the merged w (memcpy).
// Because each coordinate's delta is folded in double and replicas own
// disjoint coordinate slices between merges, a single-replica merge is
// special-cased to a verbatim copy — float w + (r − w) is not exactly r in
// general, and the copy makes the merge_every=1 single-thread path bit-exact
// against the sequential solver.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/half.hpp"
#include "util/aligned.hpp"

namespace tpa::core {

class ReplicaSet {
 public:
  ReplicaSet() = default;

  /// Allocates `count` replicas of a `dim`-entry vector plus the base
  /// snapshot slot, stored at `precision` (fp32 by default; fp16 halves the
  /// bytes every replica sweep touches, DESIGN.md §16).  Idempotent for an
  /// unchanged (dim, count, precision); reallocation otherwise.  Contents
  /// are unspecified until reset_from().
  void configure(std::size_t dim, int count,
                 linalg::SharedPrecision precision =
                     linalg::SharedPrecision::kFp32);

  int count() const noexcept { return count_; }
  std::size_t dim() const noexcept { return dim_; }
  /// Elements between consecutive slots — dim rounded up to a full cache
  /// line of the storage type.
  std::size_t stride() const noexcept { return stride_; }
  linalg::SharedPrecision precision() const noexcept { return precision_; }

  /// Worker r's private copy of the shared vector (fp32 storage only).
  std::span<float> replica(int r) noexcept {
    return {storage_.data() + stride_ * static_cast<std::size_t>(r + 1), dim_};
  }
  std::span<const float> replica(int r) const noexcept {
    return {storage_.data() + stride_ * static_cast<std::size_t>(r + 1), dim_};
  }
  /// Snapshot of the global vector at the last merge/reseed (fp32 storage).
  std::span<const float> base() const noexcept {
    return {storage_.data(), dim_};
  }

  /// fp16-storage accessors (valid only after configure(..., kFp16)).
  std::span<linalg::Half> replica_half(int r) noexcept {
    return {half_storage_.data() + stride_ * static_cast<std::size_t>(r + 1),
            dim_};
  }
  std::span<const linalg::Half> replica_half(int r) const noexcept {
    return {half_storage_.data() + stride_ * static_cast<std::size_t>(r + 1),
            dim_};
  }
  std::span<const linalg::Half> base_half() const noexcept {
    return {half_storage_.data(), dim_};
  }

  /// Reseeds base and every replica from `global` (global.size() == dim).
  /// Under fp16 storage the global is narrowed once (RNE) and the same
  /// half image is copied into every slot.
  void reset_from(std::span<const float> global);

  /// Folds every replica's delta against base into `global` in replica
  /// order, then reseeds base and replicas from the merged result.  Records
  /// a "replica/merge" trace span and bumps the solver.merges counter.
  void merge_into(std::span<float> global);

 private:
  util::AlignedVector<float> storage_;  // [base | replica 0 | replica 1 | ...]
  util::AlignedVector<linalg::Half> half_storage_;  // same layout, fp16 mode
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;
  int count_ = 0;
  linalg::SharedPrecision precision_ = linalg::SharedPrecision::kFp32;
};

}  // namespace tpa::core
