// Mutable solver state: the coordinate weights and the shared vector.
//
// Keeping the shared vector consistent with the weights (w = Aβ, w̄ = Aᵀα) is
// the crux of asynchronous SCD — PASSCoDe-Wild's defect is precisely that it
// lets the two drift apart.  `shared_inconsistency` measures that drift and
// is used both by tests and by the Fig. 10 reproduction.
#pragma once

#include <span>
#include <vector>

#include "core/ridge_problem.hpp"

namespace tpa::core {

struct ModelState {
  Formulation formulation = Formulation::kPrimal;
  std::vector<float> weights;  // β ∈ R^M (primal) or α ∈ R^N (dual)
  std::vector<float> shared;   // w ∈ R^N (primal) or w̄ ∈ R^M (dual)

  /// All-zero state of the right dimensions for `problem` / `f`.
  static ModelState zeros(const RidgeProblem& problem, Formulation f);

  /// Recomputes the shared vector exactly from the weights (the paper's
  /// occasional "re-computation" remedy for asynchronous drift).
  void recompute_shared(const RidgeProblem& problem);

  /// ||shared − recomputed||_∞: zero for a consistent state.
  double shared_inconsistency(const RidgeProblem& problem) const;
};

}  // namespace tpa::core
