// CPU cost model and the paper-scale timing workload.
//
// Simulated runtimes let the bench harness reproduce the *time axis* of the
// paper's figures without the authors' hardware.  The CPU model charges a
// constant per stored matrix entry visited (SCD's epoch cost is one fused
// multiply-add plus an irregular load per nonzero, twice), calibrated so a
// paper-scale webspam epoch costs ≈2.5 s, consistent with Fig. 1b.  The
// multi-threaded speed-up factors are the paper's own measurements (Sect.
// III.D): ≈2x for atomic A-SCD (no hardware float atomics on the test Xeon)
// and ≈4x for PASSCoDe-Wild at 16 threads, interpolated logarithmically for
// other thread counts.
#pragma once

#include <cstdint>

#include "core/formulation.hpp"
#include "data/dataset.hpp"

namespace tpa::core {

/// Per-epoch work figures used by the timing models.  When the dataset
/// carries PaperScale statistics, the workload is evaluated at paper scale
/// (so simulated times match the real dataset the generator stands in for);
/// otherwise the actual matrix dimensions are used.  DESIGN.md §5.
struct TimingWorkload {
  std::uint64_t nnz = 0;
  std::uint64_t num_coordinates = 0;
  std::uint64_t shared_dim = 0;

  static TimingWorkload for_dataset(const data::Dataset& dataset,
                                    Formulation f);
};

struct CpuCostModel {
  /// Cost per stored entry when the shared vector is cache-resident.
  double seconds_per_nnz = 2.8e-9;
  /// Cost per stored entry when the shared vector vastly exceeds the CPU's
  /// last-level cache, as for criteo's 75M-feature dual (w̄ is 300 MB):
  /// every shared-vector access is then a DRAM-latency-bound miss with
  /// limited memory-level parallelism.  This latency wall is exactly what
  /// the GPU's parallelism hides, and it is why the paper's criteo speed-up
  /// (40x) exceeds its webspam ceiling (35x).
  double seconds_per_nnz_uncached = 25e-9;
  std::size_t llc_bytes = 25ULL << 20;  // Xeon-class last-level cache
  double atomic_speedup_at_16 = 2.0;
  double wild_speedup_at_16 = 4.0;

  /// Speed-up of the replicated (SySCD-style) implementation at 16 threads:
  /// plain stores into private replicas scale near-linearly, paying only the
  /// periodic merge, unlike the atomic (2x) and wild (4x) ceilings.
  double replicated_speedup_at_16 = 13.0;

  /// Sequential SCD epoch time (picks the cached or uncached per-entry cost
  /// from the workload's shared-vector size).
  double epoch_seconds_sequential(const TimingWorkload& w) const noexcept;

  /// Speed-up of the atomic asynchronous implementation at `threads`.
  double atomic_speedup(int threads) const noexcept;
  /// Speed-up of the wild asynchronous implementation at `threads`.
  double wild_speedup(int threads) const noexcept;
  /// Speed-up of the replicated implementation at `threads` (linear
  /// interpolation to the 16-thread figure — replication removes the
  /// write-back serialisation that makes the other two curves logarithmic).
  double replicated_speedup(int threads) const noexcept;

  /// Host-side vector arithmetic (deltas, scalar reductions) per element.
  double seconds_per_vector_element = 1.0e-9;
};

/// Wall-clock dispatch model for the *host* thread pool: decides when pooled
/// execution of a parallelisable pass beats running it serially on the
/// calling thread.  Unlike CpuCostModel — which prices the paper's hardware
/// for the simulated time axis — this model prices this machine: the
/// measured wake/join overhead of a pool round trip against the pass's
/// entry count, and the host's real core count.  Requesting N pool workers
/// buys at most hardware_concurrency-way progress, so on a single-core host
/// the crossover is infinite and every pass runs serially — the structural
/// fix for pooled paths losing to serial on small problems.
struct PoolDispatchModel {
  /// Fixed cost of one parallel_for_chunks round trip (wake + join).
  double dispatch_seconds = 20e-6;
  /// Marginal cost per enqueued chunk (queue push + claim).
  double per_chunk_seconds = 2e-6;
  /// Serial streaming throughput of the sparse passes on the host.
  double seconds_per_entry = 2.0e-9;
  /// Hardware threads to assume; 0 = std::thread::hardware_concurrency().
  /// Tests and benches override this to force either path.
  int hardware_threads = 0;

  /// Concurrency actually attainable for `requested` pool workers.
  int effective_threads(int requested) const noexcept;

  /// True when dispatching `work_entries` entries across `threads` pool
  /// workers is predicted to beat the serial pass.
  bool use_pool(std::uint64_t work_entries, int threads) const noexcept;

  /// The worker count a driver should actually use: `requested` when the
  /// pool is predicted to win on this problem, else 1 (serial).
  int dispatch_threads(std::uint64_t work_entries,
                       int requested) const noexcept;
};

/// Process-wide dispatch model consulted by run_solver, ThreadedScdSolver
/// and RidgeProblem's pooled passes.  Settable for tests and calibration.
const PoolDispatchModel& pool_dispatch() noexcept;
void set_pool_dispatch(const PoolDispatchModel& model) noexcept;

/// Cost-optimal updates per thread between replica merges: the largest
/// staleness that keeps merge traffic — (3·threads+2) dense passes over
/// `shared_dim` per merge — under ~10% of the update traffic between merges
/// (2·nnz/num_coordinates entries per update).  Clamped to [1, 2^20].  This
/// is a pure throughput figure; it ignores convergence.  The solvers use
/// replica_auto_interval, which also caps staleness.
int replica_merge_interval(std::uint64_t nnz, std::uint64_t num_coordinates,
                           std::uint64_t shared_dim, int threads) noexcept;

/// Largest merge interval whose *concurrent staleness* — the
/// (threads−1)·interval updates by other workers that a worker cannot see —
/// stays within the empirically safe budget of ~1/64 of the coordinates.
/// Beyond roughly 3% the bulk-synchronous merge over-applies correlated
/// deltas and SCD diverges (DESIGN.md §11); 1/64 keeps a 2x margin.
int replica_safe_interval(std::uint64_t num_coordinates, int threads) noexcept;

/// Updates per worker between merges when RunOptions::merge_every is 0
/// (auto): the cost-optimal interval, capped at the convergence-safe one.
/// Callers additionally clamp to their slice length.
int replica_auto_interval(std::uint64_t nnz, std::uint64_t num_coordinates,
                          std::uint64_t shared_dim, int threads) noexcept;

/// Under-relaxation factor θ ∈ (0, 1] applied to every update delta in the
/// replicated paths.  θ = 1 whenever the concurrent staleness
/// (threads−1)·interval is within the safe budget — so auto-interval runs,
/// single-worker runs, and merge_every=1 equivalence gates are untouched —
/// and scales as budget/staleness beyond it, keeping the aggregate parallel
/// step mass at the stable level instead of letting a user-forced large
/// interval diverge.  The price of a large interval is then slower progress
/// per epoch, never a blow-up.
double replica_damping(std::uint64_t num_coordinates, int threads,
                       int interval) noexcept;

/// Bounded-staleness window τ for the asynchronous cluster (DESIGN.md §13):
/// the replica merge-interval math one level up.  A delta pushed by one of
/// `live_workers` no-barrier workers is computed against a pull that is, in
/// steady state, K−1 master versions old (every peer pushes once per cycle),
/// exactly the staleness a bulk-synchronous round imposes.  The auto window
/// is twice that — the same 2x margin replica_safe_interval keeps — so
/// healthy async runs are never damped and only genuine laggards (stalled or
/// recovering workers) trip the rule.  Clamped to >= 1.
int cluster_staleness_window(int live_workers) noexcept;

/// Under-relaxation θ ∈ (0, 1] for a delta that is `staleness` master
/// versions old under window τ = `window`: θ = 1 within the window and
/// τ/staleness beyond it — replica_damping's budget/concurrent rule with the
/// version clock as the staleness measure.  The total step mass a laggard
/// can inject is then capped at the window, never a blow-up, matching the
/// PASSCoDe guarantee that coordinate descent tolerates *bounded* delay.
double cluster_staleness_damping(std::uint64_t staleness,
                                 int window) noexcept;

}  // namespace tpa::core
