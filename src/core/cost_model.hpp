// CPU cost model and the paper-scale timing workload.
//
// Simulated runtimes let the bench harness reproduce the *time axis* of the
// paper's figures without the authors' hardware.  The CPU model charges a
// constant per stored matrix entry visited (SCD's epoch cost is one fused
// multiply-add plus an irregular load per nonzero, twice), calibrated so a
// paper-scale webspam epoch costs ≈2.5 s, consistent with Fig. 1b.  The
// multi-threaded speed-up factors are the paper's own measurements (Sect.
// III.D): ≈2x for atomic A-SCD (no hardware float atomics on the test Xeon)
// and ≈4x for PASSCoDe-Wild at 16 threads, interpolated logarithmically for
// other thread counts.
#pragma once

#include <cstdint>

#include "core/formulation.hpp"
#include "data/dataset.hpp"

namespace tpa::core {

/// Per-epoch work figures used by the timing models.  When the dataset
/// carries PaperScale statistics, the workload is evaluated at paper scale
/// (so simulated times match the real dataset the generator stands in for);
/// otherwise the actual matrix dimensions are used.  DESIGN.md §5.
struct TimingWorkload {
  std::uint64_t nnz = 0;
  std::uint64_t num_coordinates = 0;
  std::uint64_t shared_dim = 0;

  static TimingWorkload for_dataset(const data::Dataset& dataset,
                                    Formulation f);
};

struct CpuCostModel {
  /// Cost per stored entry when the shared vector is cache-resident.
  double seconds_per_nnz = 2.8e-9;
  /// Cost per stored entry when the shared vector vastly exceeds the CPU's
  /// last-level cache, as for criteo's 75M-feature dual (w̄ is 300 MB):
  /// every shared-vector access is then a DRAM-latency-bound miss with
  /// limited memory-level parallelism.  This latency wall is exactly what
  /// the GPU's parallelism hides, and it is why the paper's criteo speed-up
  /// (40x) exceeds its webspam ceiling (35x).
  double seconds_per_nnz_uncached = 25e-9;
  std::size_t llc_bytes = 25ULL << 20;  // Xeon-class last-level cache
  double atomic_speedup_at_16 = 2.0;
  double wild_speedup_at_16 = 4.0;

  /// Sequential SCD epoch time (picks the cached or uncached per-entry cost
  /// from the workload's shared-vector size).
  double epoch_seconds_sequential(const TimingWorkload& w) const noexcept;

  /// Speed-up of the atomic asynchronous implementation at `threads`.
  double atomic_speedup(int threads) const noexcept;
  /// Speed-up of the wild asynchronous implementation at `threads`.
  double wild_speedup(int threads) const noexcept;

  /// Host-side vector arithmetic (deltas, scalar reductions) per element.
  double seconds_per_vector_element = 1.0e-9;
};

}  // namespace tpa::core
