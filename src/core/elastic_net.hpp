// Elastic-net regression by stochastic coordinate descent.
//
// The paper (Sections I-II) focuses on ridge regression "for the sake of
// simplicity" but notes that the same stochastic coordinate machinery solves
// "regression with elastic net regularization as well as support vector
// machines".  This module provides that first extension: the primal
// objective
//
//   P(β) = 1/(2N)·||Aβ − y||² + λ·( (1−η)/2·||β||² + η·||β||₁ )
//
// with mixing parameter η ∈ [0, 1] (η = 0 is ridge, η = 1 is the lasso),
// solved by the soft-threshold closed-form coordinate update of Friedman et
// al. [4] — the same reference as the paper's Algorithm 1.  The solver runs
// through the same AsyncEngine as the ridge solvers, so the sequential,
// multi-threaded-atomic and GPU (TPA-style) execution models all apply.
#pragma once

#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "core/round_engine.hpp"
#include "core/solver.hpp"
#include "data/dataset.hpp"
#include "util/permutation.hpp"

namespace tpa::core {

class ElasticNetProblem {
 public:
  /// λ > 0 is the overall regularisation strength; l1_ratio = η ∈ [0, 1]
  /// splits it between the L1 and L2 terms.  Throws std::invalid_argument
  /// outside those ranges.
  ElasticNetProblem(const data::Dataset& dataset, double lambda,
                    double l1_ratio);

  const data::Dataset& dataset() const noexcept { return *dataset_; }
  double lambda() const noexcept { return lambda_; }
  double l1_ratio() const noexcept { return l1_ratio_; }
  Index num_features() const noexcept { return dataset_->num_features(); }
  Index num_examples() const noexcept { return dataset_->num_examples(); }

  /// P(β) with w = Aβ supplied by the caller.
  double objective(std::span<const float> beta,
                   std::span<const float> w) const;

  /// The closed-form coordinate minimiser: returns the *new* value of βₘ
  /// given the shared vector w = Aβ (soft-thresholding).
  double coordinate_minimiser(Index m, std::span<const float> w,
                              double beta_m) const;

  /// Max KKT violation over all coordinates — the convergence measure
  /// (0 at the optimum): for βₘ ≠ 0 the subgradient must vanish; for
  /// βₘ = 0 the plain gradient must lie within [−λη, λη].
  double kkt_violation(std::span<const float> beta,
                       std::span<const float> w) const;

  /// Soft-threshold operator  sign(z)·max(|z| − t, 0)  (exposed for tests).
  static double soft_threshold(double z, double threshold);

 private:
  const data::Dataset* dataset_;
  double lambda_;
  double l1_ratio_;
};

/// Coordinate-descent solver for the elastic net, running on the shared
/// asynchronous engine: window = 1 is exactly sequential SCD; wider windows
/// model multi-threaded or GPU execution (always with atomic commits — the
/// wild variant is not offered because its bias breaks the KKT guarantee).
class ElasticNetSolver {
 public:
  ElasticNetSolver(const ElasticNetProblem& problem, std::uint64_t seed,
                   std::size_t async_window = 1, CpuCostModel cost = {});

  const std::vector<float>& beta() const noexcept { return beta_; }
  const std::vector<float>& shared() const noexcept { return shared_; }

  /// Warm start from a previous solution (the regularisation-path idiom of
  /// Friedman et al. [4]): sets β and recomputes w = Aβ exactly.  Throws
  /// std::invalid_argument on a size mismatch.
  void warm_start(std::span<const float> beta);

  EpochReport run_epoch();

  double objective() const { return problem_->objective(beta_, shared_); }
  double kkt_violation() const {
    return problem_->kkt_violation(beta_, shared_);
  }
  /// Number of exactly-zero coefficients (the lasso's selling point).
  std::size_t zero_coefficients() const;

 private:
  const ElasticNetProblem* problem_;
  std::vector<float> beta_;
  std::vector<float> shared_;
  util::EpochPermutation permutation_;
  AsyncEngine engine_;
  CpuCostModel cost_model_;
  TimingWorkload workload_;
};

/// One solution along a regularisation path.
struct PathPoint {
  double lambda = 0.0;
  std::size_t nonzeros = 0;
  double objective = 0.0;
  std::vector<float> beta;
};

struct PathOptions {
  double l1_ratio = 1.0;          // must be > 0 (a pure L2 path is flat)
  int num_lambdas = 20;           // geometric grid size
  double lambda_min_ratio = 1e-3; // lambda_min = ratio * lambda_max
  int epochs_per_lambda = 20;
  std::uint64_t seed = 1;
};

/// The smallest λ at which every coefficient is exactly zero:
/// λ_max = max_m |⟨y, a_m⟩| / (N·η).
double elastic_net_lambda_max(const data::Dataset& dataset, double l1_ratio);

/// Computes a glmnet-style regularisation path [4]: a geometric λ grid from
/// λ_max down to λ_min, each solve warm-started from the previous solution
/// — the standard way coordinate descent traces a whole family of models
/// for barely more than the cost of one.  Throws std::invalid_argument for
/// l1_ratio <= 0.
std::vector<PathPoint> elastic_net_path(const data::Dataset& dataset,
                                        const PathOptions& options);

}  // namespace tpa::core
