#include "core/svm_dual.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"
#include "util/timer.hpp"

namespace tpa::core {

SvmProblem::SvmProblem(const data::Dataset& dataset, double lambda)
    : dataset_(&dataset), lambda_(lambda) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("SvmProblem: lambda must be positive");
  }
  if (dataset.num_examples() == 0) {
    throw std::invalid_argument("SvmProblem: dataset must be non-empty");
  }
  for (const auto y : dataset.labels()) {
    if (y != 1.0F && y != -1.0F) {
      throw std::invalid_argument("SvmProblem: labels must be +-1");
    }
  }
}

double SvmProblem::primal_objective(std::span<const float> v) const {
  const auto n = static_cast<double>(num_examples());
  double hinge_sum = 0.0;
  for (Index i = 0; i < num_examples(); ++i) {
    const double margin =
        dataset_->labels()[i] *
        linalg::sparse_dot(dataset_->by_row().row(i), v);
    hinge_sum += std::max(0.0, 1.0 - margin);
  }
  return 0.5 * lambda_ * linalg::squared_norm(v) + hinge_sum / n;
}

double SvmProblem::dual_objective(std::span<const float> alpha,
                                  std::span<const float> v) const {
  const auto n = static_cast<double>(num_examples());
  double alpha_sum = 0.0;
  for (const auto a : alpha) alpha_sum += a;
  return alpha_sum / n - 0.5 * lambda_ * linalg::squared_norm(v);
}

double SvmProblem::duality_gap(std::span<const float> alpha,
                               std::span<const float> v) const {
  return primal_objective(v) - dual_objective(alpha, v);
}

double SvmProblem::coordinate_delta(Index n, std::span<const float> v,
                                    double alpha_n) const {
  const auto examples = static_cast<double>(num_examples());
  const double norm_sq = dataset_->row_squared_norms()[n];
  if (norm_sq == 0.0) return 0.0;  // empty example carries no constraint
  const double margin =
      dataset_->labels()[n] *
      linalg::sparse_dot(dataset_->by_row().row(n), v);
  const double candidate =
      alpha_n + (1.0 - margin) * lambda_ * examples / norm_sq;
  return std::clamp(candidate, 0.0, 1.0) - alpha_n;
}

double SvmProblem::shared_scale(Index n) const {
  return dataset_->labels()[n] /
         (lambda_ * static_cast<double>(num_examples()));
}

SvmDualSolver::SvmDualSolver(const SvmProblem& problem, std::uint64_t seed,
                             std::size_t async_window, CpuCostModel cost)
    : problem_(&problem),
      alpha_(problem.num_examples(), 0.0F),
      shared_(problem.num_features(), 0.0F),
      permutation_(problem.num_examples(), util::Rng(seed)),
      engine_(async_window, CommitPolicy::kAtomicAdd),
      cost_model_(cost),
      workload_(TimingWorkload::for_dataset(problem.dataset(),
                                            Formulation::kDual)) {}

EpochReport SvmDualSolver::run_epoch() {
  const util::WallTimer timer;
  const auto order = permutation_.next();
  // The engine's delta is the *shared-vector* coefficient
  // Δαₙ·yₙ/(λN), so that commit can scatter the raw example row; the
  // weight callback divides the scale back out to update αₙ itself.
  engine_.run_epoch(
      order,
      [this](sparse::Index n, std::span<const float> shared) {
        const double dalpha =
            problem_->coordinate_delta(n, shared, alpha_[n]);
        return dalpha * problem_->shared_scale(n);
      },
      [this](sparse::Index n) { return problem_->dataset().by_row().row(n); },
      [this](sparse::Index n, double scaled_delta) {
        alpha_[n] = static_cast<float>(
            alpha_[n] + scaled_delta / problem_->shared_scale(n));
      },
      shared_);

  EpochReport report;
  report.coordinate_updates = order.size();
  report.sim_seconds = cost_model_.epoch_seconds_sequential(workload_);
  report.wall_seconds = timer.seconds();
  return report;
}

bool SvmDualSolver::alpha_in_box(double tolerance) const {
  for (const auto a : alpha_) {
    if (a < -tolerance || a > 1.0 + tolerance) return false;
  }
  return true;
}

}  // namespace tpa::core
