#include "core/async_scd.hpp"

#include <stdexcept>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tpa::core {

AsyncScdSolver::AsyncScdSolver(const RidgeProblem& problem, Formulation f,
                               int threads, CommitPolicy policy,
                               std::uint64_t seed, CpuCostModel cost_model)
    : problem_(&problem),
      formulation_(f),
      threads_(threads),
      policy_(policy),
      state_(ModelState::zeros(problem, f)),
      permutation_(problem.num_coordinates(f), util::Rng(seed)),
      engine_(static_cast<std::size_t>(threads), policy),
      cost_model_(cost_model),
      workload_(TimingWorkload::for_dataset(problem.dataset(), f)) {
  if (threads <= 0) {
    throw std::invalid_argument("AsyncScdSolver: threads must be positive");
  }
  const char* base = policy == CommitPolicy::kAtomicAdd ? "A-SCD"
                     : policy == CommitPolicy::kLastWriterWins
                         ? "PASSCoDe-Wild"
                         : "Replicated-SCD";
  name_ = std::string(base) + " (" + std::to_string(threads) + " threads)";
}

EpochReport AsyncScdSolver::run_epoch() {
  const util::WallTimer timer;
  const auto order = [this] {
    obs::TraceSpan shuffle("async_scd/shuffle");
    return permutation_.next();
  }();
  const auto stats = [&] {
    obs::TraceSpan sweep("async_scd/sweep");
    const auto compute = [this](sparse::Index j,
                                std::span<const float> shared) {
      return problem_->coordinate_delta(formulation_, j, shared,
                                        state_.weights[j]);
    };
    const auto compute_half = [this](sparse::Index j,
                                     std::span<const linalg::Half> shared) {
      return problem_->coordinate_delta(formulation_, j, shared,
                                        state_.weights[j]);
    };
    const auto vec_of = [this](sparse::Index j) {
      return problem_->coordinate_vector(formulation_, j);
    };
    const auto apply_weight = [this](sparse::Index j, double delta) {
      state_.weights[j] = static_cast<float>(state_.weights[j] + delta);
    };
    if (policy_ == CommitPolicy::kReplicated) {
      const auto coords = problem_->num_coordinates(formulation_);
      const int interval =
          merge_every_ > 0
              ? merge_every_
              : replica_auto_interval(problem_->dataset().nnz(), coords,
                                      state_.shared.size(), threads_);
      return engine_.run_epoch_replicated(
          order, compute, compute_half, vec_of, apply_weight, state_.shared,
          replicas_, interval, replica_damping(coords, threads_, interval));
    }
    return engine_.run_epoch(order, compute, vec_of, apply_weight,
                             state_.shared);
  }();
  lost_updates_ += stats.lost_entries;
  ++epochs_run_;

  EpochReport report;
  report.coordinate_updates = order.size();
  const double speedup = policy_ == CommitPolicy::kAtomicAdd
                             ? cost_model_.atomic_speedup(threads_)
                         : policy_ == CommitPolicy::kLastWriterWins
                             ? cost_model_.wild_speedup(threads_)
                             : cost_model_.replicated_speedup(threads_);
  report.sim_seconds =
      cost_model_.epoch_seconds_sequential(workload_) / speedup;

  if (recompute_interval_ > 0 && epochs_run_ % recompute_interval_ == 0) {
    // Drift remedy [13]: one exact matrix pass restores w == A·weights;
    // charged at the sequential per-entry rate (it is a plain SpMV).
    obs::TraceSpan recompute("async_scd/recompute");
    state_.recompute_shared(*problem_);
    report.sim_seconds += cost_model_.epoch_seconds_sequential(workload_) /
                          cost_model_.wild_speedup(threads_);
  }
  report.wall_seconds = timer.seconds();
  return report;
}

}  // namespace tpa::core
