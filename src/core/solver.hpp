// Solver interface: every local solver (sequential SCD, the asynchronous CPU
// variants, TPA-SCD on a simulated GPU) exposes epoch-at-a-time execution on
// a ModelState.  The distributed engine drives solvers through this
// interface, overwriting the shared vector between epochs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/model.hpp"
#include "core/ridge_problem.hpp"

namespace tpa::core {

struct EpochReport {
  std::uint64_t coordinate_updates = 0;
  double sim_seconds = 0.0;   // from the hardware timing model
  double wall_seconds = 0.0;  // actually measured on this machine
};

class Solver {
 public:
  virtual ~Solver() = default;

  virtual const std::string& name() const = 0;
  virtual Formulation formulation() const = 0;

  virtual const ModelState& state() const = 0;
  virtual ModelState& mutable_state() = 0;

  /// One pass over all coordinates in a fresh random order.
  virtual EpochReport run_epoch() = 0;

  /// One-time simulated setup cost (e.g. copying the dataset into GPU
  /// memory); zero for CPU solvers.
  virtual double setup_sim_seconds() const { return 0.0; }

  /// Replica-merge interval for solvers with a replicated shared vector:
  /// updates per lane between merges; 0 restores the solver's automatic
  /// choice (core::replica_merge_interval).  No-op for solvers without a
  /// replicated path.
  virtual void set_merge_every(int merge_every) { (void)merge_every; }

  /// Advances the solver's per-epoch randomness (the coordinate
  /// permutation stream) past `epochs` epochs without doing any work.  The
  /// distributed engine calls this for workers that sit an epoch out
  /// (backoff, eviction, in-flight straggler) and when resuming from a
  /// checkpoint, so that every worker's stream position is always exactly
  /// `epochs_elapsed x passes` — the precondition for bit-exact resume.
  virtual void skip_epoch_randomness(int epochs) { (void)epochs; }

  /// Convenience: duality gap of the current state.  A non-null pool
  /// parallelises the evaluation (see RidgeProblem::duality_gap).
  double duality_gap(const RidgeProblem& problem,
                     util::ThreadPool* pool = nullptr) const {
    return problem.duality_gap(formulation(), state().weights,
                               state().shared, pool);
  }
};

}  // namespace tpa::core
