#include "core/threaded_scd.hpp"

#include <stdexcept>
#include <thread>
#include <vector>

#include "util/timer.hpp"

namespace tpa::core {

ThreadedScdSolver::ThreadedScdSolver(const RidgeProblem& problem,
                                     Formulation f, int threads,
                                     CommitPolicy policy, std::uint64_t seed,
                                     CpuCostModel cost_model)
    : problem_(&problem),
      formulation_(f),
      threads_(threads),
      policy_(policy),
      state_(ModelState::zeros(problem, f)),
      permutation_(problem.num_coordinates(f), util::Rng(seed)),
      cost_model_(cost_model),
      workload_(TimingWorkload::for_dataset(problem.dataset(), f)) {
  if (threads <= 0) {
    throw std::invalid_argument("ThreadedScdSolver: threads must be positive");
  }
  const char* base = policy == CommitPolicy::kAtomicAdd
                         ? "A-SCD/threads"
                         : "PASSCoDe-Wild/threads";
  name_ = std::string(base) + " (" + std::to_string(threads) + ")";
}

void ThreadedScdSolver::worker_pass(std::span<const std::uint32_t> coords) {
  auto shared = std::span<float>(state_.shared);
  for (const auto j : coords) {
    // The read phase sees whatever mixture of committed updates is currently
    // in memory — genuine asynchrony.
    const double delta = problem_->coordinate_delta(formulation_, j, shared,
                                                    state_.weights[j]);
    state_.weights[j] = static_cast<float>(state_.weights[j] + delta);
    const auto vec = problem_->coordinate_vector(formulation_, j);
    if (policy_ == CommitPolicy::kAtomicAdd) {
      for (std::size_t k = 0; k < vec.nnz(); ++k) {
        std::atomic_ref<float> cell(shared[vec.indices[k]]);
        cell.fetch_add(static_cast<float>(delta * vec.values[k]),
                       std::memory_order_relaxed);
      }
    } else {
      for (std::size_t k = 0; k < vec.nnz(); ++k) {
        // Deliberately non-atomic: racing writes may be lost ("wild").
        shared[vec.indices[k]] +=
            static_cast<float>(delta * vec.values[k]);
      }
    }
  }
}

EpochReport ThreadedScdSolver::run_epoch() {
  const util::WallTimer timer;
  const auto order = permutation_.next();

  // Static partition of the shuffled coordinates across the threads, as the
  // OpenMP parallel-for in the paper's implementation does.
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads_));
  const std::size_t chunk =
      (order.size() + static_cast<std::size_t>(threads_) - 1) /
      static_cast<std::size_t>(threads_);
  for (int t = 0; t < threads_; ++t) {
    const std::size_t begin = static_cast<std::size_t>(t) * chunk;
    if (begin >= order.size()) break;
    const std::size_t end = std::min(order.size(), begin + chunk);
    pool.emplace_back(
        [this, slice = order.subspan(begin, end - begin)] {
          worker_pass(slice);
        });
  }
  for (auto& worker : pool) worker.join();

  EpochReport report;
  report.coordinate_updates = order.size();
  const double speedup = policy_ == CommitPolicy::kAtomicAdd
                             ? cost_model_.atomic_speedup(threads_)
                             : cost_model_.wild_speedup(threads_);
  report.sim_seconds =
      cost_model_.epoch_seconds_sequential(workload_) / speedup;
  report.wall_seconds = timer.seconds();
  return report;
}

}  // namespace tpa::core
