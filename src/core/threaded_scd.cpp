#include "core/threaded_scd.hpp"

#include <algorithm>
#include <stdexcept>

#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tpa::core {
namespace {

// The body of the sequential solver's sweep, against one worker's private
// replica: plain loads and in-order plain stores, no atomics.  Coordinate
// slices are disjoint, so weights[j] has exactly one writer.  The exact
// coordinate step is under-relaxed by `damping` (1.0 within the safe
// staleness budget, where the multiply is exact and this is the sequential
// body verbatim); weights and replica scale together, preserving the
// shared-vector invariant at any θ.
void replica_pass(const RidgeProblem& problem, Formulation f,
                  std::span<const std::uint32_t> coords,
                  std::span<float> weights, std::span<float> replica,
                  double damping) {
  for (const auto j : coords) {
    const double step =
        damping * problem.coordinate_delta(f, j, replica, weights[j]);
    weights[j] = static_cast<float>(weights[j] + step);
    linalg::sparse_axpy(step, problem.coordinate_vector(f, j), replica);
  }
}

// fp16-storage variant: identical structure against a half-stored replica —
// gathers widen exactly, scatters narrow with RNE (DESIGN.md §16).
void replica_pass(const RidgeProblem& problem, Formulation f,
                  std::span<const std::uint32_t> coords,
                  std::span<float> weights, std::span<linalg::Half> replica,
                  double damping) {
  for (const auto j : coords) {
    const double step =
        damping * problem.coordinate_delta(
                      f, j, std::span<const linalg::Half>(replica),
                      weights[j]);
    weights[j] = static_cast<float>(weights[j] + step);
    linalg::sparse_axpy(step, problem.coordinate_vector(f, j), replica);
  }
}

}  // namespace

void replicated_sweep(const RidgeProblem& problem, Formulation f,
                      std::span<const std::uint32_t> order,
                      std::span<float> weights, std::span<float> shared,
                      ReplicaSet& replicas, util::ThreadPool& pool,
                      int threads, int merge_every) {
  // Replica storage follows the process-wide precision mode: fp16 halves
  // the bytes every round touches while weights, merges and objectives stay
  // in full precision.
  const linalg::SharedPrecision precision = linalg::shared_precision();
  replicas.configure(shared.size(), threads, precision);
  // Reseed every call: the caller may overwrite `shared` between sweeps.
  replicas.reset_from(shared);

  const int interval =
      merge_every > 0
          ? merge_every
          : replica_auto_interval(problem.dataset().nnz(),
                                  problem.num_coordinates(f), shared.size(),
                                  threads);
  const std::size_t n = order.size();
  const std::size_t tcount = static_cast<std::size_t>(threads);
  const std::size_t slice = (n + tcount - 1) / tcount;
  // Staleness — and therefore the damping θ — is set by the updates a round
  // actually performs, which a slice shorter than the interval caps.
  const int effective_interval = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(interval), std::max<std::size_t>(1, slice)));
  const double damping =
      replica_damping(problem.num_coordinates(f), threads, effective_interval);
  // Replicated execution is schedule-independent (each worker reads and
  // writes only its own replica between barriers), so running the slices
  // inline on the calling thread is bit-identical to pooled execution —
  // the cost model just picks whichever is predicted faster on this host.
  const bool pooled =
      pool.size() > 1 &&
      pool_dispatch().use_pool(2 * problem.dataset().nnz(), threads);

  for (std::size_t offset = 0; offset < slice;
       offset += static_cast<std::size_t>(interval)) {
    // Round: every worker advances through up to `interval` coordinates of
    // its slice against its replica, then all replicas merge at the barrier.
    const auto run_round = [&](std::size_t t) {
      const std::size_t slice_end = std::min((t + 1) * slice, n);
      const std::size_t begin = std::min(t * slice + offset, slice_end);
      const std::size_t end =
          std::min(begin + static_cast<std::size_t>(interval), slice_end);
      if (begin >= end) return;
      obs::TraceSpan chunk("threaded_scd/round", obs::kCurrentThread,
                           static_cast<std::int64_t>(end - begin));
      if (precision == linalg::SharedPrecision::kFp16) {
        replica_pass(problem, f, order.subspan(begin, end - begin), weights,
                     replicas.replica_half(static_cast<int>(t)), damping);
      } else {
        replica_pass(problem, f, order.subspan(begin, end - begin), weights,
                     replicas.replica(static_cast<int>(t)), damping);
      }
    };
    if (pooled) {
      pool.parallel_for(tcount, run_round, /*grain=*/1);
    } else {
      for (std::size_t t = 0; t < tcount; ++t) run_round(t);
    }
    replicas.merge_into(shared);
  }
}

ThreadedScdSolver::ThreadedScdSolver(const RidgeProblem& problem,
                                     Formulation f, int threads,
                                     CommitPolicy policy, std::uint64_t seed,
                                     CpuCostModel cost_model)
    : problem_(&problem),
      formulation_(f),
      threads_(threads),
      policy_(policy),
      state_(ModelState::zeros(problem, f)),
      permutation_(problem.num_coordinates(f), util::Rng(seed)),
      cost_model_(cost_model),
      workload_(TimingWorkload::for_dataset(problem.dataset(), f)),
      pool_(static_cast<std::size_t>(std::max(1, threads))) {
  if (threads <= 0) {
    throw std::invalid_argument("ThreadedScdSolver: threads must be positive");
  }
  const char* base = policy == CommitPolicy::kAtomicAdd ? "A-SCD/threads"
                     : policy == CommitPolicy::kLastWriterWins
                         ? "PASSCoDe-Wild/threads"
                         : "Replicated-SCD/threads";
  name_ = std::string(base) + " (" + std::to_string(threads) + ")";
}

void ThreadedScdSolver::worker_pass(std::span<const std::uint32_t> coords) {
  auto shared = std::span<float>(state_.shared);
  for (const auto j : coords) {
    // The read phase sees whatever mixture of committed updates is currently
    // in memory — genuine asynchrony.
    const double delta = problem_->coordinate_delta(formulation_, j, shared,
                                                    state_.weights[j]);
    state_.weights[j] = static_cast<float>(state_.weights[j] + delta);
    const auto vec = problem_->coordinate_vector(formulation_, j);
    if (policy_ == CommitPolicy::kAtomicAdd) {
      for (std::size_t k = 0; k < vec.nnz(); ++k) {
        std::atomic_ref<float> cell(shared[vec.indices[k]]);
        cell.fetch_add(static_cast<float>(delta * vec.values[k]),
                       std::memory_order_relaxed);
      }
    } else {
      for (std::size_t k = 0; k < vec.nnz(); ++k) {
        // Deliberately non-atomic: racing writes may be lost ("wild").
        shared[vec.indices[k]] +=
            static_cast<float>(delta * vec.values[k]);
      }
    }
  }
}

EpochReport ThreadedScdSolver::run_epoch_replicated(
    std::span<const std::uint32_t> order) {
  replicated_sweep(*problem_, formulation_, order, state_.weights,
                   state_.shared, replicas_, pool_, threads_, merge_every_);
  const std::size_t n = order.size();

  EpochReport report;
  report.coordinate_updates = n;
  report.sim_seconds = cost_model_.epoch_seconds_sequential(workload_) /
                       cost_model_.replicated_speedup(threads_);
  return report;
}

EpochReport ThreadedScdSolver::run_epoch() {
  const util::WallTimer timer;
  const auto order = [this] {
    obs::TraceSpan shuffle("threaded_scd/shuffle");
    return permutation_.next();
  }();

  if (policy_ == CommitPolicy::kReplicated) {
    obs::TraceSpan sweep("threaded_scd/sweep");
    EpochReport report = run_epoch_replicated(order);
    report.wall_seconds = timer.seconds();
    return report;
  }

  // Static partition of the shuffled coordinates across the persistent pool,
  // as the OpenMP parallel-for in the paper's implementation does.  The
  // default grain is ceil(order / threads) — the same per-thread slices the
  // old spawn-per-epoch code built — and workers race on the shared vector
  // inside worker_pass exactly as before (atomic_ref vs wild commits).
  obs::TraceSpan sweep("threaded_scd/sweep");
  pool_.parallel_for_chunks(
      order.size(), [this, order](std::size_t begin, std::size_t end) {
        // One span per pool-thread slice, on that thread's own track.
        obs::TraceSpan chunk("threaded_scd/chunk",
                             obs::kCurrentThread,
                             static_cast<std::int64_t>(end - begin));
        worker_pass(order.subspan(begin, end - begin));
      });

  EpochReport report;
  report.coordinate_updates = order.size();
  const double speedup = policy_ == CommitPolicy::kAtomicAdd
                             ? cost_model_.atomic_speedup(threads_)
                             : cost_model_.wild_speedup(threads_);
  report.sim_seconds =
      cost_model_.epoch_seconds_sequential(workload_) / speedup;
  report.wall_seconds = timer.seconds();
  return report;
}

}  // namespace tpa::core
