#include "core/threaded_scd.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tpa::core {

ThreadedScdSolver::ThreadedScdSolver(const RidgeProblem& problem,
                                     Formulation f, int threads,
                                     CommitPolicy policy, std::uint64_t seed,
                                     CpuCostModel cost_model)
    : problem_(&problem),
      formulation_(f),
      threads_(threads),
      policy_(policy),
      state_(ModelState::zeros(problem, f)),
      permutation_(problem.num_coordinates(f), util::Rng(seed)),
      cost_model_(cost_model),
      workload_(TimingWorkload::for_dataset(problem.dataset(), f)),
      pool_(static_cast<std::size_t>(std::max(1, threads))) {
  if (threads <= 0) {
    throw std::invalid_argument("ThreadedScdSolver: threads must be positive");
  }
  const char* base = policy == CommitPolicy::kAtomicAdd
                         ? "A-SCD/threads"
                         : "PASSCoDe-Wild/threads";
  name_ = std::string(base) + " (" + std::to_string(threads) + ")";
}

void ThreadedScdSolver::worker_pass(std::span<const std::uint32_t> coords) {
  auto shared = std::span<float>(state_.shared);
  for (const auto j : coords) {
    // The read phase sees whatever mixture of committed updates is currently
    // in memory — genuine asynchrony.
    const double delta = problem_->coordinate_delta(formulation_, j, shared,
                                                    state_.weights[j]);
    state_.weights[j] = static_cast<float>(state_.weights[j] + delta);
    const auto vec = problem_->coordinate_vector(formulation_, j);
    if (policy_ == CommitPolicy::kAtomicAdd) {
      for (std::size_t k = 0; k < vec.nnz(); ++k) {
        std::atomic_ref<float> cell(shared[vec.indices[k]]);
        cell.fetch_add(static_cast<float>(delta * vec.values[k]),
                       std::memory_order_relaxed);
      }
    } else {
      for (std::size_t k = 0; k < vec.nnz(); ++k) {
        // Deliberately non-atomic: racing writes may be lost ("wild").
        shared[vec.indices[k]] +=
            static_cast<float>(delta * vec.values[k]);
      }
    }
  }
}

EpochReport ThreadedScdSolver::run_epoch() {
  const util::WallTimer timer;
  const auto order = [this] {
    obs::TraceSpan shuffle("threaded_scd/shuffle");
    return permutation_.next();
  }();

  // Static partition of the shuffled coordinates across the persistent pool,
  // as the OpenMP parallel-for in the paper's implementation does.  The
  // default grain is ceil(order / threads) — the same per-thread slices the
  // old spawn-per-epoch code built — and workers race on the shared vector
  // inside worker_pass exactly as before (atomic_ref vs wild commits).
  obs::TraceSpan sweep("threaded_scd/sweep");
  pool_.parallel_for_chunks(
      order.size(), [this, order](std::size_t begin, std::size_t end) {
        // One span per pool-thread slice, on that thread's own track.
        obs::TraceSpan chunk("threaded_scd/chunk",
                             obs::kCurrentThread,
                             static_cast<std::int64_t>(end - begin));
        worker_pass(order.subspan(begin, end - begin));
      });

  EpochReport report;
  report.coordinate_updates = order.size();
  const double speedup = policy_ == CommitPolicy::kAtomicAdd
                             ? cost_model_.atomic_speedup(threads_)
                             : cost_model_.wild_speedup(threads_);
  report.sim_seconds =
      cost_model_.epoch_seconds_sequential(workload_) / speedup;
  report.wall_seconds = timer.seconds();
  return report;
}

}  // namespace tpa::core
