#include "core/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace tpa::core {
namespace {

/// Interpolates a speed-up measured at 16 threads to other thread counts on
/// a log2 scale: 1 thread -> 1x, 16 threads -> `at_16`, beyond 16 flat (the
/// paper's Xeon runs at most 16 hardware threads).
double interpolate_speedup(double at_16, int threads) {
  if (threads <= 1) return 1.0;
  const double capped = std::min(threads, 16);
  return 1.0 + (at_16 - 1.0) * std::log2(capped) / 4.0;
}

}  // namespace

TimingWorkload TimingWorkload::for_dataset(const data::Dataset& dataset,
                                           Formulation f) {
  TimingWorkload w;
  if (const auto& scale = dataset.paper_scale(); scale.has_value()) {
    w.nnz = scale->nnz;
    w.num_coordinates =
        f == Formulation::kPrimal ? scale->features : scale->examples;
    w.shared_dim =
        f == Formulation::kPrimal ? scale->examples : scale->features;
  } else {
    w.nnz = dataset.nnz();
    w.num_coordinates = f == Formulation::kPrimal ? dataset.num_features()
                                                  : dataset.num_examples();
    w.shared_dim = f == Formulation::kPrimal ? dataset.num_examples()
                                             : dataset.num_features();
  }
  return w;
}

double CpuCostModel::epoch_seconds_sequential(const TimingWorkload& w) const
    noexcept {
  const bool shared_fits_cache =
      w.shared_dim * sizeof(float) <= llc_bytes;
  const double per_nnz =
      shared_fits_cache ? seconds_per_nnz : seconds_per_nnz_uncached;
  return static_cast<double>(w.nnz) * per_nnz;
}

double CpuCostModel::atomic_speedup(int threads) const noexcept {
  return interpolate_speedup(atomic_speedup_at_16, threads);
}

double CpuCostModel::wild_speedup(int threads) const noexcept {
  return interpolate_speedup(wild_speedup_at_16, threads);
}

}  // namespace tpa::core
