#include "core/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

namespace tpa::core {
namespace {

/// Interpolates a speed-up measured at 16 threads to other thread counts on
/// a log2 scale: 1 thread is exactly 1.0x by definition, 16 threads hits
/// `at_16`, and counts beyond 16 clamp to the 16-thread figure — never
/// extrapolated, because the paper's Xeon has no measurements past 16
/// hardware threads.  Non-positive thread counts read as 1.
double interpolate_speedup(double at_16, int threads) {
  if (threads <= 1) return 1.0;
  const double capped = static_cast<double>(std::min(threads, 16));
  return 1.0 + (at_16 - 1.0) * std::log2(capped) / 4.0;
}

}  // namespace

TimingWorkload TimingWorkload::for_dataset(const data::Dataset& dataset,
                                           Formulation f) {
  TimingWorkload w;
  if (const auto& scale = dataset.paper_scale(); scale.has_value()) {
    w.nnz = scale->nnz;
    w.num_coordinates =
        f == Formulation::kPrimal ? scale->features : scale->examples;
    w.shared_dim =
        f == Formulation::kPrimal ? scale->examples : scale->features;
  } else {
    w.nnz = dataset.nnz();
    w.num_coordinates = f == Formulation::kPrimal ? dataset.num_features()
                                                  : dataset.num_examples();
    w.shared_dim = f == Formulation::kPrimal ? dataset.num_examples()
                                             : dataset.num_features();
  }
  return w;
}

double CpuCostModel::epoch_seconds_sequential(const TimingWorkload& w) const
    noexcept {
  const bool shared_fits_cache =
      w.shared_dim * sizeof(float) <= llc_bytes;
  const double per_nnz =
      shared_fits_cache ? seconds_per_nnz : seconds_per_nnz_uncached;
  return static_cast<double>(w.nnz) * per_nnz;
}

double CpuCostModel::atomic_speedup(int threads) const noexcept {
  return interpolate_speedup(atomic_speedup_at_16, threads);
}

double CpuCostModel::wild_speedup(int threads) const noexcept {
  return interpolate_speedup(wild_speedup_at_16, threads);
}

double CpuCostModel::replicated_speedup(int threads) const noexcept {
  if (threads <= 1) return 1.0;
  const double capped = std::min(threads, 16);
  return 1.0 + (replicated_speedup_at_16 - 1.0) * (capped - 1.0) / 15.0;
}

int PoolDispatchModel::effective_threads(int requested) const noexcept {
  const int hw = hardware_threads > 0
                     ? hardware_threads
                     : static_cast<int>(std::max(
                           1u, std::thread::hardware_concurrency()));
  return std::max(1, std::min(requested, hw));
}

bool PoolDispatchModel::use_pool(std::uint64_t work_entries,
                                 int threads) const noexcept {
  const int effective = effective_threads(threads);
  if (effective <= 1) return false;
  const double serial =
      static_cast<double>(work_entries) * seconds_per_entry;
  const double pooled = serial / effective + dispatch_seconds +
                        per_chunk_seconds * effective;
  return pooled < serial;
}

int PoolDispatchModel::dispatch_threads(std::uint64_t work_entries,
                                        int requested) const noexcept {
  return use_pool(work_entries, requested) ? requested : 1;
}

namespace {
PoolDispatchModel g_pool_dispatch{};
}  // namespace

const PoolDispatchModel& pool_dispatch() noexcept { return g_pool_dispatch; }

void set_pool_dispatch(const PoolDispatchModel& model) noexcept {
  g_pool_dispatch = model;
}

int replica_merge_interval(std::uint64_t nnz, std::uint64_t num_coordinates,
                           std::uint64_t shared_dim, int threads) noexcept {
  const int t = std::max(1, threads);
  const double nnz_per_coord =
      static_cast<double>(nnz) /
      static_cast<double>(std::max<std::uint64_t>(1, num_coordinates));
  // Merge cost: t diff-accumulate passes + (t+1) reseed copies, each a
  // dense pass over shared_dim (~(3t+2)·dim entries).  Update traffic
  // between merges: t threads × interval updates × 2·nnz_per_coord entries.
  // Budget the former at 10% of the latter.
  const double merge_entries =
      static_cast<double>(3 * t + 2) * static_cast<double>(shared_dim);
  const double per_round_entries =
      static_cast<double>(t) * 2.0 * std::max(1.0, nnz_per_coord);
  const double interval = merge_entries / (0.1 * per_round_entries);
  return static_cast<int>(
      std::clamp(std::ceil(interval), 1.0, double{1 << 20}));
}

namespace {

// Concurrent-staleness budget: up to this many invisible updates by *other*
// workers between merges keep bulk-synchronous SCD stable.  Measured on the
// webspam-like generator (whose zipf head makes columns strongly
// correlated): divergence sets in near 3% of the coordinates, independent
// of problem size; 1/64 (≈1.6%) leaves a 2x margin.
std::uint64_t staleness_budget(std::uint64_t num_coordinates) noexcept {
  return std::max<std::uint64_t>(1, num_coordinates / 64);
}

}  // namespace

int replica_safe_interval(std::uint64_t num_coordinates,
                          int threads) noexcept {
  const int t = std::max(1, threads);
  if (t == 1) return 1 << 20;  // one worker: no concurrent staleness at all
  const std::uint64_t interval =
      staleness_budget(num_coordinates) / static_cast<std::uint64_t>(t - 1);
  return static_cast<int>(std::clamp<std::uint64_t>(interval, 1, 1 << 20));
}

int replica_auto_interval(std::uint64_t nnz, std::uint64_t num_coordinates,
                          std::uint64_t shared_dim, int threads) noexcept {
  return std::min(
      replica_merge_interval(nnz, num_coordinates, shared_dim, threads),
      replica_safe_interval(num_coordinates, threads));
}

double replica_damping(std::uint64_t num_coordinates, int threads,
                       int interval) noexcept {
  const int t = std::max(1, threads);
  const std::uint64_t concurrent =
      static_cast<std::uint64_t>(t - 1) *
      static_cast<std::uint64_t>(std::max(1, interval));
  const std::uint64_t budget = staleness_budget(num_coordinates);
  if (concurrent <= budget) return 1.0;
  return static_cast<double>(budget) / static_cast<double>(concurrent);
}

int cluster_staleness_window(int live_workers) noexcept {
  return std::max(1, 2 * (std::max(1, live_workers) - 1));
}

double cluster_staleness_damping(std::uint64_t staleness,
                                 int window) noexcept {
  const auto budget = static_cast<std::uint64_t>(std::max(1, window));
  if (staleness <= budget) return 1.0;
  return static_cast<double>(budget) / static_cast<double>(staleness);
}

}  // namespace tpa::core
