#include "core/seq_scd.hpp"

#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tpa::core {

void scd_sweep(const RidgeProblem& problem, Formulation f,
               std::span<const std::uint32_t> order, std::span<float> weights,
               std::span<float> shared) {
  for (const auto j : order) {
    const double delta = problem.coordinate_delta(f, j, shared, weights[j]);
    weights[j] = static_cast<float>(weights[j] + delta);
    linalg::sparse_axpy(delta, problem.coordinate_vector(f, j), shared);
  }
}

SeqScdSolver::SeqScdSolver(const RidgeProblem& problem, Formulation f,
                           std::uint64_t seed, CpuCostModel cost_model)
    : problem_(&problem),
      formulation_(f),
      name_("SCD (1 thread)"),
      state_(ModelState::zeros(problem, f)),
      permutation_(problem.num_coordinates(f), util::Rng(seed)),
      cost_model_(cost_model),
      workload_(TimingWorkload::for_dataset(problem.dataset(), f)) {}

EpochReport SeqScdSolver::run_epoch() {
  const util::WallTimer timer;
  const auto order = [this] {
    obs::TraceSpan shuffle("seq_scd/shuffle");
    return permutation_.next();
  }();
  {
    obs::TraceSpan sweep("seq_scd/sweep");
    scd_sweep(*problem_, formulation_, order, state_.weights, state_.shared);
  }
  EpochReport report;
  report.coordinate_updates = order.size();
  report.sim_seconds = cost_model_.epoch_seconds_sequential(workload_);
  report.wall_seconds = timer.seconds();
  return report;
}

}  // namespace tpa::core
