#include "core/convergence.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "core/cost_model.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace tpa::core {

const char* cluster_event_name(ClusterEventKind kind) {
  static_assert(kClusterEventKindCount == 12,
                "added a ClusterEventKind? name it below, bump the count in "
                "convergence.hpp, and extend the exhaustive naming test");
  switch (kind) {
    case ClusterEventKind::kCrash:
      return "crash";
    case ClusterEventKind::kRestart:
      return "restart";
    case ClusterEventKind::kEvict:
      return "evict";
    case ClusterEventKind::kDeadlineMiss:
      return "deadline-miss";
    case ClusterEventKind::kLateDelta:
      return "late-delta";
    case ClusterEventKind::kDeltaDropped:
      return "delta-dropped";
    case ClusterEventKind::kDeltaCorrupted:
      return "delta-corrupted";
    case ClusterEventKind::kCheckpoint:
      return "checkpoint";
    case ClusterEventKind::kJoin:
      return "join";
    case ClusterEventKind::kLeave:
      return "leave";
    case ClusterEventKind::kStaleDamped:
      return "stale-damped";
    case ClusterEventKind::kStaleRejected:
      return "stale-rejected";
  }
  return "?";
}

std::size_t ConvergenceTrace::count_events(ClusterEventKind kind) const {
  std::size_t count = 0;
  for (const auto& event : events_) {
    if (event.kind == kind) ++count;
  }
  return count;
}

double ConvergenceTrace::final_gap() const {
  return points_.empty() ? 0.0 : points_.back().gap;
}

std::optional<double> ConvergenceTrace::sim_time_to_gap(double eps) const {
  for (const auto& point : points_) {
    if (point.gap <= eps) return point.sim_seconds;
  }
  return std::nullopt;
}

std::optional<int> ConvergenceTrace::epochs_to_gap(double eps) const {
  for (const auto& point : points_) {
    if (point.gap <= eps) return point.epoch;
  }
  return std::nullopt;
}

void ConvergenceTrace::write_csv(std::ostream& out) const {
  out << "epoch,gap,sim_seconds,wall_seconds,gamma,contributors\n";
  for (const auto& p : points_) {
    out << p.epoch << ',' << obs::json_number(p.gap) << ','
        << obs::json_number(p.sim_seconds) << ','
        << obs::json_number(p.wall_seconds) << ',' << obs::json_number(p.gamma)
        << ',' << p.contributors << '\n';
  }
}

void ConvergenceTrace::write_jsonl(std::ostream& out) const {
  for (const auto& p : points_) {
    out << obs::JsonObject()
               .field_str("type", "point")
               .field_int("epoch", p.epoch)
               .field_num("gap", p.gap)
               .field_num("sim_seconds", p.sim_seconds)
               .field_num("wall_seconds", p.wall_seconds)
               .field_num("gamma", p.gamma)
               .field_int("contributors", p.contributors)
               .str()
        << '\n';
  }
  for (const auto& e : events_) {
    out << obs::JsonObject()
               .field_str("type", "event")
               .field_int("epoch", e.epoch)
               .field_int("worker", e.worker)
               .field_str("kind", cluster_event_name(e.kind))
               .str()
        << '\n';
  }
}

namespace {

std::ofstream open_for_write(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("ConvergenceTrace: cannot open " + path +
                             " for writing");
  }
  return out;
}

}  // namespace

void ConvergenceTrace::write_csv_file(const std::string& path) const {
  auto out = open_for_write(path);
  write_csv(out);
}

void ConvergenceTrace::write_jsonl_file(const std::string& path) const {
  auto out = open_for_write(path);
  write_jsonl(out);
}

int effective_gap_interval(const RunOptions& options) {
  const int interval =
      options.gap_every > 0 ? options.gap_every : options.record_interval;
  return std::max(1, interval);
}

ConvergenceTrace run_solver(Solver& solver, const RidgeProblem& problem,
                            const RunOptions& options) {
  ConvergenceTrace trace;
  double sim_total =
      options.include_setup_time ? solver.setup_sim_seconds() : 0.0;
  double wall_total = 0.0;
  const int interval = effective_gap_interval(options);
  if (options.merge_every != 0) solver.set_merge_every(options.merge_every);
  // A gap evaluation streams the matrix once (one entry-visit per stored
  // nonzero) plus the dense vector terms; only build a pool when the cost
  // model predicts the requested workers actually beat the serial pass on
  // this host — otherwise the pooled gap regresses on small problems.
  const int gap_threads = pool_dispatch().dispatch_threads(
      problem.dataset().nnz(), options.gap_threads);
  std::unique_ptr<util::ThreadPool> gap_pool;
  if (gap_threads > 1) {
    gap_pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(gap_threads));
  }
  auto& epoch_counter = obs::metrics().counter("train.epochs");
  auto& gap_counter = obs::metrics().counter("train.gap_evals");
  for (int epoch = 1; epoch <= options.max_epochs; ++epoch) {
    const auto report = [&] {
      obs::TraceSpan span("train/epoch", obs::kCurrentThread, epoch);
      return solver.run_epoch();
    }();
    epoch_counter.add();
    sim_total += report.sim_seconds;
    wall_total += report.wall_seconds;
    if (epoch % interval == 0 || epoch == options.max_epochs) {
      TracePoint point;
      point.epoch = epoch;
      {
        obs::TraceSpan span("train/gap_eval", obs::kCurrentThread, epoch);
        point.gap = solver.duality_gap(problem, gap_pool.get());
      }
      gap_counter.add();
      point.sim_seconds = sim_total;
      point.wall_seconds = wall_total;
      trace.add(point);
      if (options.target_gap > 0.0 && point.gap <= options.target_gap) break;
    }
  }
  return trace;
}

}  // namespace tpa::core
