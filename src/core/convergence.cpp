#include "core/convergence.hpp"

#include <algorithm>
#include <memory>

#include "util/thread_pool.hpp"

namespace tpa::core {

const char* cluster_event_name(ClusterEventKind kind) {
  switch (kind) {
    case ClusterEventKind::kCrash:
      return "crash";
    case ClusterEventKind::kRestart:
      return "restart";
    case ClusterEventKind::kEvict:
      return "evict";
    case ClusterEventKind::kDeadlineMiss:
      return "deadline-miss";
    case ClusterEventKind::kLateDelta:
      return "late-delta";
    case ClusterEventKind::kDeltaDropped:
      return "delta-dropped";
    case ClusterEventKind::kDeltaCorrupted:
      return "delta-corrupted";
    case ClusterEventKind::kCheckpoint:
      return "checkpoint";
  }
  return "?";
}

std::size_t ConvergenceTrace::count_events(ClusterEventKind kind) const {
  std::size_t count = 0;
  for (const auto& event : events_) {
    if (event.kind == kind) ++count;
  }
  return count;
}

double ConvergenceTrace::final_gap() const {
  return points_.empty() ? 0.0 : points_.back().gap;
}

std::optional<double> ConvergenceTrace::sim_time_to_gap(double eps) const {
  for (const auto& point : points_) {
    if (point.gap <= eps) return point.sim_seconds;
  }
  return std::nullopt;
}

std::optional<int> ConvergenceTrace::epochs_to_gap(double eps) const {
  for (const auto& point : points_) {
    if (point.gap <= eps) return point.epoch;
  }
  return std::nullopt;
}

int effective_gap_interval(const RunOptions& options) {
  const int interval =
      options.gap_every > 0 ? options.gap_every : options.record_interval;
  return std::max(1, interval);
}

ConvergenceTrace run_solver(Solver& solver, const RidgeProblem& problem,
                            const RunOptions& options) {
  ConvergenceTrace trace;
  double sim_total =
      options.include_setup_time ? solver.setup_sim_seconds() : 0.0;
  double wall_total = 0.0;
  const int interval = effective_gap_interval(options);
  std::unique_ptr<util::ThreadPool> gap_pool;
  if (options.gap_threads > 1) {
    gap_pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(options.gap_threads));
  }
  for (int epoch = 1; epoch <= options.max_epochs; ++epoch) {
    const auto report = solver.run_epoch();
    sim_total += report.sim_seconds;
    wall_total += report.wall_seconds;
    if (epoch % interval == 0 || epoch == options.max_epochs) {
      TracePoint point;
      point.epoch = epoch;
      point.gap = solver.duality_gap(problem, gap_pool.get());
      point.sim_seconds = sim_total;
      point.wall_seconds = wall_total;
      trace.add(point);
      if (options.target_gap > 0.0 && point.gap <= options.target_gap) break;
    }
  }
  return trace;
}

}  // namespace tpa::core
