#include "core/solver_factory.hpp"

#include <stdexcept>

#include "core/async_scd.hpp"
#include "core/seq_scd.hpp"
#include "core/threaded_scd.hpp"
#include "core/tpa_scd.hpp"

namespace tpa::core {

std::unique_ptr<Solver> make_solver(const RidgeProblem& problem,
                                    const SolverConfig& config) {
  auto with_merge = [&config](std::unique_ptr<Solver> solver) {
    if (config.merge_every != 0) solver->set_merge_every(config.merge_every);
    return solver;
  };
  switch (config.kind) {
    case SolverKind::kSequential:
      return std::make_unique<SeqScdSolver>(problem, config.formulation,
                                            config.seed, config.cpu_cost);
    case SolverKind::kAsyncAtomic:
      return std::make_unique<AScdSolver>(problem, config.formulation,
                                          config.threads, config.seed,
                                          config.cpu_cost);
    case SolverKind::kAsyncWild:
      return std::make_unique<PasscodeWildSolver>(
          problem, config.formulation, config.threads, config.seed,
          config.cpu_cost);
    case SolverKind::kAsyncReplicated:
      return with_merge(std::make_unique<ReplicatedScdSolver>(
          problem, config.formulation, config.threads, config.seed,
          config.cpu_cost));
    case SolverKind::kThreadedAtomic:
      return std::make_unique<ThreadedScdSolver>(
          problem, config.formulation, config.threads,
          CommitPolicy::kAtomicAdd, config.seed, config.cpu_cost);
    case SolverKind::kThreadedWild:
      return std::make_unique<ThreadedScdSolver>(
          problem, config.formulation, config.threads,
          CommitPolicy::kLastWriterWins, config.seed, config.cpu_cost);
    case SolverKind::kThreadedReplicated:
      return with_merge(std::make_unique<ThreadedScdSolver>(
          problem, config.formulation, config.threads,
          CommitPolicy::kReplicated, config.seed, config.cpu_cost));
    case SolverKind::kTpaM4000: {
      TpaScdOptions options;
      options.device = gpusim::DeviceSpec::quadro_m4000();
      options.charge_paper_scale_memory = config.charge_paper_scale_memory;
      return with_merge(std::make_unique<TpaScdSolver>(
          problem, config.formulation, config.seed, options));
    }
    case SolverKind::kTpaTitanX: {
      TpaScdOptions options;
      options.device = gpusim::DeviceSpec::titan_x();
      options.charge_paper_scale_memory = config.charge_paper_scale_memory;
      return with_merge(std::make_unique<TpaScdSolver>(
          problem, config.formulation, config.seed, options));
    }
  }
  throw std::invalid_argument("make_solver: unknown solver kind");
}

SolverKind parse_solver_kind(const std::string& name) {
  if (name == "seq") return SolverKind::kSequential;
  if (name == "ascd") return SolverKind::kAsyncAtomic;
  if (name == "wild") return SolverKind::kAsyncWild;
  if (name == "rep") return SolverKind::kAsyncReplicated;
  if (name == "ascd-threads") return SolverKind::kThreadedAtomic;
  if (name == "wild-threads") return SolverKind::kThreadedWild;
  if (name == "rep-threads") return SolverKind::kThreadedReplicated;
  if (name == "tpa-m4000") return SolverKind::kTpaM4000;
  if (name == "tpa-titanx") return SolverKind::kTpaTitanX;
  throw std::invalid_argument("unknown solver kind: " + name);
}

const char* solver_kind_name(SolverKind kind) {
  switch (kind) {
    case SolverKind::kSequential:
      return "seq";
    case SolverKind::kAsyncAtomic:
      return "ascd";
    case SolverKind::kAsyncWild:
      return "wild";
    case SolverKind::kAsyncReplicated:
      return "rep";
    case SolverKind::kThreadedAtomic:
      return "ascd-threads";
    case SolverKind::kThreadedWild:
      return "wild-threads";
    case SolverKind::kThreadedReplicated:
      return "rep-threads";
    case SolverKind::kTpaM4000:
      return "tpa-m4000";
    case SolverKind::kTpaTitanX:
      return "tpa-titanx";
  }
  return "unknown";
}

}  // namespace tpa::core
