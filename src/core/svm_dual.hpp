// Support vector machine by stochastic dual coordinate ascent (SDCA).
//
// The paper's second named generalisation (Sections I-II): the machinery of
// dual SCD with a shared vector applies verbatim to the L2-regularised
// hinge-loss SVM.  Following Shalev-Shwartz & Zhang [9] (the paper's own
// reference for the dual update), with labels yₙ ∈ {±1}:
//
//   primal:  P(v) = λ/2·||v||² + 1/N·Σₙ max(0, 1 − yₙ⟨v, x̄ₙ⟩)
//   dual:    D(α) = 1/N·Σₙ αₙ − λ/2·||v(α)||²,   0 ≤ αₙ ≤ 1,
//   with the shared vector  v(α) = 1/(λN)·Σₙ αₙ yₙ x̄ₙ.
//
// One coordinate step maximises D in αₙ exactly and clips to the box:
//   αₙ ← clip₍₀,₁₎( αₙ + (1 − yₙ⟨v, x̄ₙ⟩)·λN / ||x̄ₙ||² ).
// P(v) − D(α) ≥ 0 is the duality gap, identically to the ridge pipeline.
//
// The solver runs on the shared AsyncEngine: window = 1 is sequential SDCA;
// wider windows give the multi-threaded / TPA-SCD execution models.
#pragma once

#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "core/round_engine.hpp"
#include "core/solver.hpp"
#include "data/dataset.hpp"
#include "util/permutation.hpp"

namespace tpa::core {

class SvmProblem {
 public:
  /// Labels must be ±1; λ > 0.  Throws std::invalid_argument otherwise.
  SvmProblem(const data::Dataset& dataset, double lambda);

  const data::Dataset& dataset() const noexcept { return *dataset_; }
  double lambda() const noexcept { return lambda_; }
  Index num_examples() const noexcept { return dataset_->num_examples(); }
  Index num_features() const noexcept { return dataset_->num_features(); }

  /// P(v) for the primal weight vector v.
  double primal_objective(std::span<const float> v) const;
  /// D(α) with v = v(α) supplied by the caller.
  double dual_objective(std::span<const float> alpha,
                        std::span<const float> v) const;
  /// P(v) − D(α): non-negative, zero only at the optimum.
  double duality_gap(std::span<const float> alpha,
                     std::span<const float> v) const;

  /// The clipped exact coordinate step: returns Δαₙ given the current
  /// shared vector v and αₙ.
  double coordinate_delta(Index n, std::span<const float> v,
                          double alpha_n) const;

  /// Scale of example n's contribution to v per unit of αₙ:  yₙ/(λN).
  double shared_scale(Index n) const;

 private:
  const data::Dataset* dataset_;
  double lambda_;
};

class SvmDualSolver {
 public:
  SvmDualSolver(const SvmProblem& problem, std::uint64_t seed,
                std::size_t async_window = 1, CpuCostModel cost = {});

  const std::vector<float>& alpha() const noexcept { return alpha_; }
  /// The primal weight vector v(α) the solver maintains incrementally.
  const std::vector<float>& weights() const noexcept { return shared_; }

  EpochReport run_epoch();

  double duality_gap() const {
    return problem_->duality_gap(alpha_, shared_);
  }

  /// True iff every dual variable satisfies the box constraint.
  bool alpha_in_box(double tolerance = 1e-6) const;

 private:
  const SvmProblem* problem_;
  std::vector<float> alpha_;
  std::vector<float> shared_;
  util::EpochPermutation permutation_;
  AsyncEngine engine_;
  CpuCostModel cost_model_;
  TimingWorkload workload_;
};

}  // namespace tpa::core
