// Asynchronous multi-threaded CPU solvers, modelled deterministically:
//   * AScdSolver — A-SCD of Tran et al. [13]: atomic shared-vector adds, so
//     every update lands; convergence per epoch matches sequential SCD, and
//     the time model charges the paper's ≈2x speed-up at 16 threads.
//   * PasscodeWildSolver — PASSCoDe-Wild of Hsieh et al. [14]: non-atomic
//     writes lose racing updates, the shared vector drifts from the weights,
//     and the duality gap converges to a nonzero floor; ≈4x speed-up.
// Both run on the AsyncEngine with `threads` concurrent lanes (see
// round_engine.hpp for why this deterministic model is used on this
// machine); threaded_scd.hpp provides real std::thread execution.
#pragma once

#include "core/cost_model.hpp"
#include "core/round_engine.hpp"
#include "core/solver.hpp"
#include "util/permutation.hpp"

namespace tpa::core {

class AsyncScdSolver : public Solver {
 public:
  AsyncScdSolver(const RidgeProblem& problem, Formulation f, int threads,
                 CommitPolicy policy, std::uint64_t seed,
                 CpuCostModel cost_model = {});

  const std::string& name() const override { return name_; }
  Formulation formulation() const override { return formulation_; }
  const ModelState& state() const override { return state_; }
  ModelState& mutable_state() override { return state_; }

  EpochReport run_epoch() override;
  void skip_epoch_randomness(int epochs) override {
    permutation_.skip(epochs);
  }

  /// Replicated path only: updates per lane between merges (0 = automatic,
  /// core::replica_merge_interval).  Ignored by the atomic/wild policies.
  void set_merge_every(int merge_every) override {
    merge_every_ = merge_every;
  }

  /// Cumulative shared-vector adds lost to races (zero for atomic commits).
  std::uint64_t total_lost_updates() const noexcept { return lost_updates_; }

  /// Enables the remedy of Tran et al. [13] for asynchronous drift: every
  /// `epochs` epochs the shared vector is recomputed exactly from the model
  /// weights (paper Section III.B).  The recomputation costs one matrix
  /// pass, charged to simulated time.  0 (default) disables it.
  void set_recompute_interval(int epochs) { recompute_interval_ = epochs; }
  int recompute_interval() const noexcept { return recompute_interval_; }

 private:
  const RidgeProblem* problem_;
  Formulation formulation_;
  int threads_;
  CommitPolicy policy_;
  std::string name_;
  ModelState state_;
  util::EpochPermutation permutation_;
  AsyncEngine engine_;
  ReplicaSet replicas_;  // storage persists across epochs (kReplicated only)
  CpuCostModel cost_model_;
  TimingWorkload workload_;
  std::uint64_t lost_updates_ = 0;
  int recompute_interval_ = 0;
  int merge_every_ = 0;  // 0 = automatic interval
  int epochs_run_ = 0;
};

/// A-SCD: atomic adds (paper [13]).
class AScdSolver final : public AsyncScdSolver {
 public:
  AScdSolver(const RidgeProblem& problem, Formulation f, int threads,
             std::uint64_t seed, CpuCostModel cost_model = {})
      : AsyncScdSolver(problem, f, threads, CommitPolicy::kAtomicAdd, seed,
                       cost_model) {}
};

/// PASSCoDe-Wild: racing non-atomic writes (paper [14]).
class PasscodeWildSolver final : public AsyncScdSolver {
 public:
  PasscodeWildSolver(const RidgeProblem& problem, Formulation f, int threads,
                     std::uint64_t seed, CpuCostModel cost_model = {})
      : AsyncScdSolver(problem, f, threads, CommitPolicy::kLastWriterWins,
                       seed, cost_model) {}
};

/// Replicated SCD (SySCD-style): per-lane replicas with periodic merge —
/// contention-free plain stores, staleness bounded by the merge interval
/// (replica_set.hpp, DESIGN.md §11).
class ReplicatedScdSolver final : public AsyncScdSolver {
 public:
  ReplicatedScdSolver(const RidgeProblem& problem, Formulation f, int threads,
                      std::uint64_t seed, CpuCostModel cost_model = {})
      : AsyncScdSolver(problem, f, threads, CommitPolicy::kReplicated, seed,
                       cost_model) {}
};

}  // namespace tpa::core
