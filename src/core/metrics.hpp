// Prediction-quality metrics for the example applications: RMSE and R² for
// regression, sign accuracy for ±1 classification labels (the criteo-style
// click task).
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace tpa::data {
class Dataset;
}

namespace tpa::core {

/// Predictions ŷ = A·β on `dataset` for a primal weight vector.
std::vector<float> predict(const data::Dataset& dataset,
                           std::span<const float> beta);

/// Root mean squared error between predictions and labels.
double rmse(std::span<const float> predictions,
            std::span<const float> labels);

/// Coefficient of determination R² (1 = perfect, 0 = mean-only baseline).
double r_squared(std::span<const float> predictions,
                 std::span<const float> labels);

/// Fraction of examples whose predicted sign matches the label's sign.
double sign_accuracy(std::span<const float> predictions,
                     std::span<const float> labels);

}  // namespace tpa::core
