#include "core/replica_set.hpp"

#include <cassert>
#include <cstring>

#include "linalg/vector_ops.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace tpa::core {
namespace {

constexpr std::size_t kFloatsPerLine =
    util::kCacheLineBytes / sizeof(float);  // 16

std::size_t padded_stride(std::size_t dim) {
  return (dim + kFloatsPerLine - 1) / kFloatsPerLine * kFloatsPerLine;
}

}  // namespace

void ReplicaSet::configure(std::size_t dim, int count) {
  assert(count >= 1);
  const std::size_t stride = padded_stride(dim);
  if (dim == dim_ && count == count_) return;
  dim_ = dim;
  stride_ = stride;
  count_ = count;
  // Zero-fill the pad tail once; merges only ever touch [0, dim) per slot.
  storage_.assign(stride * static_cast<std::size_t>(count + 1), 0.0F);
}

void ReplicaSet::reset_from(std::span<const float> global) {
  assert(global.size() == dim_);
  float* slot = storage_.data();
  for (int r = 0; r <= count_; ++r, slot += stride_) {
    std::memcpy(slot, global.data(), dim_ * sizeof(float));
  }
}

void ReplicaSet::merge_into(std::span<float> global) {
  assert(global.size() == dim_);
  obs::TraceSpan span("replica/merge");
  static obs::Counter& merges = obs::metrics().counter("solver.merges");
  merges.add(1);
  if (count_ == 1) {
    // One replica owns every coordinate: the merged vector *is* the replica.
    // Copying it verbatim (rather than folding w + (r − w), which is not
    // exactly r in float) keeps the merge_every=1 single-thread path
    // bit-exact against the sequential solver.
    std::memcpy(global.data(), replica(0).data(), dim_ * sizeof(float));
  } else {
    for (int r = 0; r < count_; ++r) {
      linalg::add_diff(global, replica(r), base());
    }
  }
  reset_from(global);
}

}  // namespace tpa::core
