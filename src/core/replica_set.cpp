#include "core/replica_set.hpp"

#include <cassert>
#include <cstring>

#include "linalg/vector_ops.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace tpa::core {
namespace {

// Slots start on fresh 64-byte lines in both storage widths: 16 floats or
// 32 halves per line.
template <typename T>
std::size_t padded_stride(std::size_t dim) {
  constexpr std::size_t per_line = util::kCacheLineBytes / sizeof(T);
  return (dim + per_line - 1) / per_line * per_line;
}

}  // namespace

void ReplicaSet::configure(std::size_t dim, int count,
                           linalg::SharedPrecision precision) {
  assert(count >= 1);
  if (dim == dim_ && count == count_ && precision == precision_) return;
  dim_ = dim;
  count_ = count;
  precision_ = precision;
  const auto slots = static_cast<std::size_t>(count + 1);
  // Zero-fill the pad tail once; merges only ever touch [0, dim) per slot.
  if (precision == linalg::SharedPrecision::kFp16) {
    stride_ = padded_stride<linalg::Half>(dim);
    half_storage_.assign(stride_ * slots, linalg::Half{});
    storage_.assign(0, 0.0F);
  } else {
    stride_ = padded_stride<float>(dim);
    storage_.assign(stride_ * slots, 0.0F);
    half_storage_.assign(0, linalg::Half{});
  }
}

void ReplicaSet::reset_from(std::span<const float> global) {
  assert(global.size() == dim_);
  if (precision_ == linalg::SharedPrecision::kFp16) {
    // Narrow once into the base slot, then replicate the half image — every
    // slot starts from the identical RNE rounding of the global vector.
    linalg::Half* slot = half_storage_.data();
    linalg::narrow(global, {slot, dim_});
    const linalg::Half* base_image = slot;
    slot += stride_;
    for (int r = 0; r < count_; ++r, slot += stride_) {
      std::memcpy(slot, base_image, dim_ * sizeof(linalg::Half));
    }
    return;
  }
  float* slot = storage_.data();
  for (int r = 0; r <= count_; ++r, slot += stride_) {
    std::memcpy(slot, global.data(), dim_ * sizeof(float));
  }
}

void ReplicaSet::merge_into(std::span<float> global) {
  assert(global.size() == dim_);
  obs::TraceSpan span("replica/merge");
  static obs::Counter& merges = obs::metrics().counter("solver.merges");
  merges.add(1);
  if (precision_ == linalg::SharedPrecision::kFp16) {
    if (count_ == 1) {
      // Single replica: widening its half image verbatim (exact) keeps the
      // merge self-consistent with the fp32 special case below — the merged
      // vector *is* the replica, at its storage precision.
      linalg::widen(replica_half(0), global);
    } else {
      for (int r = 0; r < count_; ++r) {
        linalg::add_diff(global, replica_half(r), base_half());
      }
    }
    reset_from(global);
    return;
  }
  if (count_ == 1) {
    // One replica owns every coordinate: the merged vector *is* the replica.
    // Copying it verbatim (rather than folding w + (r − w), which is not
    // exactly r in float) keeps the merge_every=1 single-thread path
    // bit-exact against the sequential solver.
    std::memcpy(global.data(), replica(0).data(), dim_ * sizeof(float));
  } else {
    for (int r = 0; r < count_; ++r) {
      linalg::add_diff(global, replica(r), base());
    }
  }
  reset_from(global);
}

}  // namespace tpa::core
