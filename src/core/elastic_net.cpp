#include "core/elastic_net.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"
#include "util/timer.hpp"

namespace tpa::core {

ElasticNetProblem::ElasticNetProblem(const data::Dataset& dataset,
                                     double lambda, double l1_ratio)
    : dataset_(&dataset), lambda_(lambda), l1_ratio_(l1_ratio) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("ElasticNetProblem: lambda must be positive");
  }
  if (l1_ratio < 0.0 || l1_ratio > 1.0) {
    throw std::invalid_argument("ElasticNetProblem: l1_ratio must be in [0,1]");
  }
  if (dataset.num_examples() == 0 || dataset.num_features() == 0) {
    throw std::invalid_argument("ElasticNetProblem: dataset must be non-empty");
  }
}

double ElasticNetProblem::soft_threshold(double z, double threshold) {
  if (z > threshold) return z - threshold;
  if (z < -threshold) return z + threshold;
  return 0.0;
}

double ElasticNetProblem::objective(std::span<const float> beta,
                                    std::span<const float> w) const {
  const auto n = static_cast<double>(num_examples());
  const auto labels = dataset_->labels();
  double residual_sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double r = static_cast<double>(w[i]) - labels[i];
    residual_sq += r * r;
  }
  double l1 = 0.0;
  for (const auto b : beta) l1 += std::abs(static_cast<double>(b));
  const double l2_sq = linalg::squared_norm(beta);
  return residual_sq / (2.0 * n) +
         lambda_ * ((1.0 - l1_ratio_) / 2.0 * l2_sq + l1_ratio_ * l1);
}

double ElasticNetProblem::coordinate_minimiser(Index m,
                                               std::span<const float> w,
                                               double beta_m) const {
  const auto n = static_cast<double>(num_examples());
  const auto col = dataset_->by_col().col(m);
  const double norm_sq = dataset_->col_squared_norms()[m];
  // Partial residual correlation with column m, with βₘ's own contribution
  // added back:  z = (1/N)·⟨y − w + aₘβₘ, aₘ⟩.
  const double residual_dot =
      linalg::sparse_residual_dot(col, dataset_->labels(), w);
  const double z = residual_dot / n + norm_sq / n * beta_m;
  const double denominator = norm_sq / n + lambda_ * (1.0 - l1_ratio_);
  if (denominator <= 0.0) return 0.0;  // empty column, pure-L1 corner
  return soft_threshold(z, lambda_ * l1_ratio_) / denominator;
}

double ElasticNetProblem::kkt_violation(std::span<const float> beta,
                                        std::span<const float> w) const {
  const auto n = static_cast<double>(num_examples());
  const auto labels = dataset_->labels();
  double worst = 0.0;
  for (Index m = 0; m < num_features(); ++m) {
    const auto col = dataset_->by_col().col(m);
    const double grad =
        -linalg::sparse_residual_dot(col, labels, w) / n +
        lambda_ * (1.0 - l1_ratio_) * static_cast<double>(beta[m]);
    const double t = lambda_ * l1_ratio_;
    double violation = 0.0;
    if (beta[m] > 0.0F) {
      violation = std::abs(grad + t);
    } else if (beta[m] < 0.0F) {
      violation = std::abs(grad - t);
    } else {
      violation = std::max(0.0, std::abs(grad) - t);
    }
    worst = std::max(worst, violation);
  }
  return worst;
}

ElasticNetSolver::ElasticNetSolver(const ElasticNetProblem& problem,
                                   std::uint64_t seed,
                                   std::size_t async_window,
                                   CpuCostModel cost)
    : problem_(&problem),
      beta_(problem.num_features(), 0.0F),
      shared_(problem.num_examples(), 0.0F),
      permutation_(problem.num_features(), util::Rng(seed)),
      engine_(async_window, CommitPolicy::kAtomicAdd),
      cost_model_(cost),
      workload_(TimingWorkload::for_dataset(problem.dataset(),
                                            Formulation::kPrimal)) {}

EpochReport ElasticNetSolver::run_epoch() {
  const util::WallTimer timer;
  const auto order = permutation_.next();
  engine_.run_epoch(
      order,
      [this](sparse::Index m, std::span<const float> shared) {
        return problem_->coordinate_minimiser(m, shared, beta_[m]) -
               static_cast<double>(beta_[m]);
      },
      [this](sparse::Index m) { return problem_->dataset().by_col().col(m); },
      [this](sparse::Index m, double delta) {
        beta_[m] = static_cast<float>(beta_[m] + delta);
      },
      shared_);

  EpochReport report;
  report.coordinate_updates = order.size();
  report.sim_seconds = cost_model_.epoch_seconds_sequential(workload_);
  report.wall_seconds = timer.seconds();
  return report;
}

std::size_t ElasticNetSolver::zero_coefficients() const {
  std::size_t zeros = 0;
  for (const auto b : beta_) {
    if (b == 0.0F) ++zeros;
  }
  return zeros;
}

void ElasticNetSolver::warm_start(std::span<const float> beta) {
  if (beta.size() != beta_.size()) {
    throw std::invalid_argument("warm_start: beta size mismatch");
  }
  beta_.assign(beta.begin(), beta.end());
  shared_ = linalg::csr_matvec(problem_->dataset().by_row(), beta_);
}

double elastic_net_lambda_max(const data::Dataset& dataset,
                              double l1_ratio) {
  if (l1_ratio <= 0.0) {
    throw std::invalid_argument("lambda_max needs an L1 component");
  }
  const auto n = static_cast<double>(dataset.num_examples());
  const auto labels = dataset.labels();
  double worst = 0.0;
  for (Index m = 0; m < dataset.num_features(); ++m) {
    const double correlation =
        linalg::sparse_dot(dataset.by_col().col(m), labels);
    worst = std::max(worst, std::abs(correlation));
  }
  return worst / (n * l1_ratio);
}

std::vector<PathPoint> elastic_net_path(const data::Dataset& dataset,
                                        const PathOptions& options) {
  if (options.l1_ratio <= 0.0 || options.l1_ratio > 1.0) {
    throw std::invalid_argument("elastic_net_path: l1_ratio must be (0,1]");
  }
  if (options.num_lambdas < 2 || options.lambda_min_ratio <= 0.0 ||
      options.lambda_min_ratio >= 1.0) {
    throw std::invalid_argument("elastic_net_path: bad grid parameters");
  }
  const double lambda_max =
      elastic_net_lambda_max(dataset, options.l1_ratio);
  const double decay =
      std::pow(options.lambda_min_ratio,
               1.0 / static_cast<double>(options.num_lambdas - 1));

  std::vector<PathPoint> path;
  path.reserve(static_cast<std::size_t>(options.num_lambdas));
  std::vector<float> warm(dataset.num_features(), 0.0F);
  double lambda = lambda_max;
  for (int step = 0; step < options.num_lambdas; ++step) {
    const ElasticNetProblem problem(dataset, lambda, options.l1_ratio);
    ElasticNetSolver solver(problem, options.seed);
    solver.warm_start(warm);
    for (int epoch = 0; epoch < options.epochs_per_lambda; ++epoch) {
      solver.run_epoch();
    }
    warm = solver.beta();

    PathPoint point;
    point.lambda = lambda;
    point.nonzeros = dataset.num_features() - solver.zero_coefficients();
    point.objective = solver.objective();
    point.beta = solver.beta();
    path.push_back(std::move(point));
    lambda *= decay;
  }
  return path;
}

}  // namespace tpa::core
