// Real-thread asynchronous SCD: the paper's actual OpenMP-style CPU
// implementation, here on std::thread.  Threads race on the shared vector
// exactly as A-SCD / PASSCoDe-Wild do — with C++20 std::atomic_ref
// fetch_add for the atomic variant and plain unsynchronised read-modify-
// write for the wild variant.
//
// On genuinely parallel hardware this exhibits the paper's staleness and
// lost-update behaviour natively; on the single-core CI machine races are
// rare and results are near-sequential, which is why the deterministic
// AsyncEngine solvers are the default for experiments (DESIGN.md §2).
#pragma once

#include <atomic>

#include "core/cost_model.hpp"
#include "core/round_engine.hpp"
#include "core/solver.hpp"
#include "util/permutation.hpp"
#include "util/thread_pool.hpp"

namespace tpa::core {

class ThreadedScdSolver final : public Solver {
 public:
  ThreadedScdSolver(const RidgeProblem& problem, Formulation f, int threads,
                    CommitPolicy policy, std::uint64_t seed,
                    CpuCostModel cost_model = {});

  const std::string& name() const override { return name_; }
  Formulation formulation() const override { return formulation_; }
  const ModelState& state() const override { return state_; }
  ModelState& mutable_state() override { return state_; }

  EpochReport run_epoch() override;
  void skip_epoch_randomness(int epochs) override {
    permutation_.skip(epochs);
  }

 private:
  void worker_pass(std::span<const std::uint32_t> coords);

  const RidgeProblem* problem_;
  Formulation formulation_;
  int threads_;
  CommitPolicy policy_;
  std::string name_;
  ModelState state_;
  util::EpochPermutation permutation_;
  CpuCostModel cost_model_;
  TimingWorkload workload_;
  // Persistent workers reused across epochs: run_epoch schedules the same
  // static coordinate partition onto this pool instead of spawning (and
  // joining) `threads_` fresh std::threads every epoch.
  util::ThreadPool pool_;
};

}  // namespace tpa::core
