// Real-thread asynchronous SCD: the paper's actual OpenMP-style CPU
// implementation, here on std::thread.  Threads race on the shared vector
// exactly as A-SCD / PASSCoDe-Wild do — with C++20 std::atomic_ref
// fetch_add for the atomic variant and plain unsynchronised read-modify-
// write for the wild variant.
//
// The kReplicated policy removes the shared-vector contention entirely:
// each worker updates a private cache-line-aligned replica with plain
// stores (replica_set.hpp) and the replicas are folded into the global
// vector every merge_every updates per thread, at a pool barrier.  Because
// workers own disjoint coordinate slices and read only their replica, the
// result is independent of the physical schedule — pooled and inline
// execution are bit-identical, so run_epoch dispatches through
// core::pool_dispatch() and small problems skip the pool entirely
// (DESIGN.md §11).
//
// On genuinely parallel hardware the atomic/wild policies exhibit the
// paper's staleness and lost-update behaviour natively; on the single-core
// CI machine races are rare and results are near-sequential, which is why
// the deterministic AsyncEngine solvers are the default for experiments
// (DESIGN.md §2).
#pragma once

#include <atomic>

#include "core/cost_model.hpp"
#include "core/round_engine.hpp"
#include "core/solver.hpp"
#include "util/permutation.hpp"
#include "util/thread_pool.hpp"

namespace tpa::core {

/// One replicated-policy sweep of `order` against (weights, shared): each
/// pool worker advances a disjoint slice against a private replica, merged
/// every `merge_every` updates per thread (0 = replica_auto_interval, with
/// replica_damping past the safe staleness budget).  This is the body of
/// ThreadedScdSolver's kReplicated epoch as a free function — bit-identical
/// pooled or inline — so shard-local threaded sweeps (store/
/// streaming_solver) share it.  `replicas` is caller-owned scratch that
/// persists across calls; `weights` is indexed by `problem`-local ids.
void replicated_sweep(const RidgeProblem& problem, Formulation f,
                      std::span<const std::uint32_t> order,
                      std::span<float> weights, std::span<float> shared,
                      ReplicaSet& replicas, util::ThreadPool& pool,
                      int threads, int merge_every);

class ThreadedScdSolver final : public Solver {
 public:
  ThreadedScdSolver(const RidgeProblem& problem, Formulation f, int threads,
                    CommitPolicy policy, std::uint64_t seed,
                    CpuCostModel cost_model = {});

  const std::string& name() const override { return name_; }
  Formulation formulation() const override { return formulation_; }
  const ModelState& state() const override { return state_; }
  ModelState& mutable_state() override { return state_; }

  EpochReport run_epoch() override;
  void skip_epoch_randomness(int epochs) override {
    permutation_.skip(epochs);
  }

  /// Replicated policy only: updates per thread between merges (0 =
  /// automatic, core::replica_auto_interval).  Intervals beyond the safe
  /// staleness budget run under-relaxed (core::replica_damping) rather than
  /// diverging.  Ignored by atomic/wild.
  void set_merge_every(int merge_every) override {
    merge_every_ = merge_every;
  }

 private:
  void worker_pass(std::span<const std::uint32_t> coords);
  EpochReport run_epoch_replicated(std::span<const std::uint32_t> order);

  const RidgeProblem* problem_;
  Formulation formulation_;
  int threads_;
  CommitPolicy policy_;
  std::string name_;
  ModelState state_;
  util::EpochPermutation permutation_;
  CpuCostModel cost_model_;
  TimingWorkload workload_;
  ReplicaSet replicas_;  // storage persists across epochs (kReplicated only)
  int merge_every_ = 0;  // 0 = automatic interval
  // Persistent workers reused across epochs: run_epoch schedules the same
  // static coordinate partition onto this pool instead of spawning (and
  // joining) `threads_` fresh std::threads every epoch.
  util::ThreadPool pool_;
};

}  // namespace tpa::core
