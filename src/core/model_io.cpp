#include "core/model_io.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "sparse/io_binary.hpp"

namespace tpa::core {
namespace {

constexpr char kMagic[4] = {'T', 'P', 'A', 'M'};

struct Header {
  std::uint32_t formulation = 0;
  std::uint32_t epoch = 0;  // was reserved/zero before checkpointing
  std::uint64_t weights = 0;
  std::uint64_t shared = 0;
  double lambda = 0.0;
};

void write_raw(std::ostream& out, const void* data, std::size_t bytes,
               std::uint64_t& checksum) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("model write failed");
  checksum = sparse::fnv1a(data, bytes, checksum);
}

void read_raw(std::istream& in, void* data, std::size_t bytes,
              std::uint64_t& checksum) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("model read truncated");
  }
  checksum = sparse::fnv1a(data, bytes, checksum);
}

}  // namespace

void write_model(std::ostream& out, const SavedModel& model) {
  out.write(kMagic, sizeof(kMagic));
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  Header header;
  header.formulation =
      model.formulation == Formulation::kPrimal ? 0u : 1u;
  header.epoch = model.epoch;
  header.weights = model.weights.size();
  header.shared = model.shared.size();
  header.lambda = model.lambda;
  write_raw(out, &header, sizeof(header), checksum);
  write_raw(out, model.weights.data(),
            model.weights.size() * sizeof(float), checksum);
  write_raw(out, model.shared.data(), model.shared.size() * sizeof(float),
            checksum);
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) throw std::runtime_error("model write failed");
}

void write_model_file(const std::string& path, const SavedModel& model) {
  // Write-to-temp + rename so a crash mid-write never exposes a torn file:
  // rename(2) is atomic within a filesystem, and serve::Server::reload only
  // ever opens `path`, which always names a complete model.
  const std::string tmp = path + ".tmp";
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open " + tmp + " for writing");
    }
    write_model(out, model);
    out.flush();
    if (!out) throw std::runtime_error("model write failed: " + tmp);
    out.close();
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw std::runtime_error("cannot rename " + tmp + " to " + path);
    }
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

SavedModel read_model(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("model read: bad magic");
  }
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  Header header;
  read_raw(in, &header, sizeof(header), checksum);
  SavedModel model;
  model.formulation =
      header.formulation == 0 ? Formulation::kPrimal : Formulation::kDual;
  model.epoch = header.epoch;
  model.lambda = header.lambda;
  model.weights.resize(header.weights);
  model.shared.resize(header.shared);
  read_raw(in, model.weights.data(), model.weights.size() * sizeof(float),
           checksum);
  read_raw(in, model.shared.data(), model.shared.size() * sizeof(float),
           checksum);
  std::uint64_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (static_cast<std::size_t>(in.gcount()) != sizeof(stored) ||
      stored != checksum) {
    throw std::runtime_error("model read: checksum mismatch");
  }
  return model;
}

SavedModel read_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_model(in);
}

}  // namespace tpa::core
