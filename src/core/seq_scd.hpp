// Sequential stochastic coordinate descent (paper Algorithm 1).
//
// One epoch draws a fresh random permutation of the coordinates and, for each
// coordinate, applies the exact closed-form update (eq. 2 primal / eq. 4
// dual) followed by the sparse shared-vector update.  This is the reference
// implementation every other solver is measured against.
#pragma once

#include <cstdint>
#include <span>

#include "core/cost_model.hpp"
#include "core/solver.hpp"
#include "util/permutation.hpp"

namespace tpa::core {

/// One sequential sweep of the exact coordinate updates in `order` against
/// (weights, shared) — the body of SeqScdSolver's epoch as a free function,
/// so shard-local sweeps (store/streaming_solver) run the identical code
/// path.  `order` holds coordinate ids local to `problem`, and `weights` is
/// indexed by those same local ids (a streamed run passes the resident
/// shard's alpha sub-span).
void scd_sweep(const RidgeProblem& problem, Formulation f,
               std::span<const std::uint32_t> order, std::span<float> weights,
               std::span<float> shared);

class SeqScdSolver final : public Solver {
 public:
  SeqScdSolver(const RidgeProblem& problem, Formulation f,
               std::uint64_t seed, CpuCostModel cost_model = {});

  const std::string& name() const override { return name_; }
  Formulation formulation() const override { return formulation_; }
  const ModelState& state() const override { return state_; }
  ModelState& mutable_state() override { return state_; }

  EpochReport run_epoch() override;
  void skip_epoch_randomness(int epochs) override {
    permutation_.skip(epochs);
  }

 private:
  const RidgeProblem* problem_;
  Formulation formulation_;
  std::string name_;
  ModelState state_;
  util::EpochPermutation permutation_;
  CpuCostModel cost_model_;
  TimingWorkload workload_;
};

}  // namespace tpa::core
