// Convergence tracing: the (epoch, duality gap, time) series behind every
// figure of the paper, with time-to-target queries for the scaling plots
// (Figs. 6 and 8).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/solver.hpp"

namespace tpa::core {

struct TracePoint {
  int epoch = 0;             // epochs completed when recorded
  double gap = 0.0;          // duality gap
  double sim_seconds = 0.0;  // cumulative simulated time
  double wall_seconds = 0.0; // cumulative measured time
  double gamma = 0.0;        // aggregation parameter (distributed runs)
  int contributors = 0;      // workers whose delta landed (distributed runs)
};

/// What happened to a worker during a distributed run.  Recorded on the
/// trace so figure harnesses and tests can correlate gap excursions with the
/// fault schedule (kCheckpoint marks master-side checkpoint writes).
enum class ClusterEventKind {
  kCrash,           // worker lost its in-progress epoch
  kRestart,         // worker rejoined after crash backoff
  kEvict,           // worker permanently removed; coordinates frozen
  kDeadlineMiss,    // worker missed the straggler deadline this epoch
  kLateDelta,       // a straggler's stale delta was finally incorporated
  kDeltaDropped,    // worker's delta lost in transit (excluded this epoch)
  kDeltaCorrupted,  // worker's delta failed checksum (excluded this epoch)
  kCheckpoint,      // master wrote an epoch checkpoint
  kJoin,            // elastic member joined; cold-started from master state
  kLeave,           // elastic member left; partition frozen until a join
  kStaleDamped,     // async delta beyond the staleness window, under-relaxed
  kStaleRejected,   // async delta beyond the staleness window, discarded
};

/// Number of ClusterEventKind values.  Keep in sync with the enum above: the
/// exhaustive naming test iterates [0, kClusterEventKindCount) so a new kind
/// cannot ship without a cluster_event_name entry.
inline constexpr std::size_t kClusterEventKindCount =
    static_cast<std::size_t>(ClusterEventKind::kStaleRejected) + 1;

const char* cluster_event_name(ClusterEventKind kind);

struct ClusterEvent {
  int epoch = 0;
  int worker = -1;  // -1 for master-side events (checkpoints)
  ClusterEventKind kind = ClusterEventKind::kCrash;
};

class ConvergenceTrace {
 public:
  void add(TracePoint point) { points_.push_back(point); }
  void add_event(ClusterEvent event) { events_.push_back(event); }

  const std::vector<TracePoint>& points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }

  const std::vector<ClusterEvent>& events() const noexcept { return events_; }
  std::size_t count_events(ClusterEventKind kind) const;

  double final_gap() const;

  /// First cumulative simulated time at which gap <= eps, if reached.
  std::optional<double> sim_time_to_gap(double eps) const;
  /// First epoch count at which gap <= eps, if reached.
  std::optional<int> epochs_to_gap(double eps) const;

  /// CSV export for gap-vs-time figures: a fixed header row
  /// "epoch,gap,sim_seconds,wall_seconds,gamma,contributors" followed by one
  /// row per trace point (cluster events are not representable in CSV and
  /// are omitted — use JSONL when the fault schedule matters).
  void write_csv(std::ostream& out) const;
  /// JSONL export: one {"type":"point",...} object per trace point followed
  /// by one {"type":"event",...} object per cluster event.
  void write_jsonl(std::ostream& out) const;
  /// File-opening wrappers; throw std::runtime_error when `path` cannot be
  /// opened for writing.
  void write_csv_file(const std::string& path) const;
  void write_jsonl_file(const std::string& path) const;

 private:
  std::vector<TracePoint> points_;
  std::vector<ClusterEvent> events_;
};

struct RunOptions {
  int max_epochs = 100;
  /// Stop early once the gap reaches this value (0 disables).
  double target_gap = 0.0;
  /// Record the gap every `record_interval` epochs (gap evaluation costs one
  /// matrix pass; it is measurement, not training, and is excluded from the
  /// reported times, as in the paper).
  int record_interval = 1;
  /// Evaluate the gap only every `gap_every` epochs (0 falls back to
  /// `record_interval`).  Amortises the per-evaluation matrix pass over
  /// several training epochs; the final epoch is always evaluated, so the
  /// final gap matches an every-epoch run exactly.  With target_gap set,
  /// early stopping can trigger only at evaluated epochs — a run may
  /// therefore overshoot by up to gap_every − 1 epochs.
  int gap_every = 0;
  /// Workers used for each gap evaluation (1 = serial).  The parallel value
  /// is deterministic for any thread count but may differ from the serial
  /// one by reduction reassociation (DESIGN.md §9).  run_solver consults
  /// core::pool_dispatch() before building the pool: when the problem is too
  /// small for the requested workers to beat the serial pass (or the host
  /// lacks the cores), the evaluation runs serially — requesting threads is
  /// a ceiling, not a command.
  int gap_threads = 1;
  /// Replica-merge interval for solvers with a replicated shared vector
  /// (updates per worker between merges): 0 keeps the solver's automatic
  /// choice; forwarded via Solver::set_merge_every otherwise (no-op for
  /// non-replicated solvers).  DESIGN.md §11.
  int merge_every = 0;
  /// Include the solver's one-time setup (GPU upload) in cumulative time.
  bool include_setup_time = true;
};

/// The epoch stride between gap evaluations implied by `options`.
int effective_gap_interval(const RunOptions& options);

/// Drives `solver` for up to max_epochs, recording the duality gap.
ConvergenceTrace run_solver(Solver& solver, const RidgeProblem& problem,
                            const RunOptions& options);

}  // namespace tpa::core
