// Convergence tracing: the (epoch, duality gap, time) series behind every
// figure of the paper, with time-to-target queries for the scaling plots
// (Figs. 6 and 8).
#pragma once

#include <optional>
#include <vector>

#include "core/solver.hpp"

namespace tpa::core {

struct TracePoint {
  int epoch = 0;             // epochs completed when recorded
  double gap = 0.0;          // duality gap
  double sim_seconds = 0.0;  // cumulative simulated time
  double wall_seconds = 0.0; // cumulative measured time
  double gamma = 0.0;        // aggregation parameter (distributed runs)
};

class ConvergenceTrace {
 public:
  void add(TracePoint point) { points_.push_back(point); }

  const std::vector<TracePoint>& points() const noexcept { return points_; }
  bool empty() const noexcept { return points_.empty(); }

  double final_gap() const;

  /// First cumulative simulated time at which gap <= eps, if reached.
  std::optional<double> sim_time_to_gap(double eps) const;
  /// First epoch count at which gap <= eps, if reached.
  std::optional<int> epochs_to_gap(double eps) const;

 private:
  std::vector<TracePoint> points_;
};

struct RunOptions {
  int max_epochs = 100;
  /// Stop early once the gap reaches this value (0 disables).
  double target_gap = 0.0;
  /// Record the gap every `record_interval` epochs (gap evaluation costs one
  /// matrix pass; it is measurement, not training, and is excluded from the
  /// reported times, as in the paper).
  int record_interval = 1;
  /// Include the solver's one-time setup (GPU upload) in cumulative time.
  bool include_setup_time = true;
};

/// Drives `solver` for up to max_epochs, recording the duality gap.
ConvergenceTrace run_solver(Solver& solver, const RidgeProblem& problem,
                            const RunOptions& options);

}  // namespace tpa::core
