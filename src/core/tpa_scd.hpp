// TPA-SCD: twice-parallel asynchronous stochastic coordinate descent
// (paper Algorithm 2, the primary contribution).
//
// First level of parallelism: each coordinate update of an epoch is one GPU
// thread block; the blocks execute asynchronously on the device's streaming
// multiprocessors — modelled by the AsyncEngine with window equal to
// the device's resident-block count and atomic-add commits (the paper uses
// hardware float atomics, so no updates are lost).
//
// Second level: inside a block, `threads_per_block` threads compute the
// partial inner product in a strided loop, tree-reduce it through shared
// memory, thread 0 forms Δβ_m, and all threads scatter the shared-vector
// update — gpusim::BlockContext reproduces that execution, including its
// 32-bit float summation order.
//
// Runtime comes from gpusim::GpuTimingModel; the one-time dataset upload is
// charged through the PCIe model and device memory capacity is enforced
// (loading a matrix larger than device memory throws OutOfDeviceMemory,
// which is exactly the paper's motivation for the distributed Section V).
#pragma once

#include "core/round_engine.hpp"
#include "core/solver.hpp"
#include "gpusim/block_context.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_memory.hpp"
#include "gpusim/timing_model.hpp"
#include "util/permutation.hpp"

namespace tpa::core {

struct TpaScdOptions {
  gpusim::DeviceSpec device = gpusim::DeviceSpec::titan_x();
  gpusim::PcieLink pcie{};
  /// When true, the dataset's size is charged against device memory at
  /// *paper scale* (if PaperScale metadata is present), so that e.g. the
  /// criteo sample correctly refuses to fit on a single GPU.
  bool charge_paper_scale_memory = false;
  /// Overrides the device's asynchrony window (0 = use
  /// DeviceSpec::async_staleness()).  Used by the staleness ablation bench
  /// to study how far block-level asynchrony can be pushed before
  /// convergence degrades.
  int async_window_override = 0;
  /// 0 (default): every block commits its shared-vector update immediately
  /// with hardware float atomics — the paper's write-back.  > 0: blocks
  /// batch write-backs through the replica delta-merge primitive instead
  /// (per-lane replicas folded every merge_every updates per lane), the
  /// same code path the CPU replicated solvers use (replica_set.hpp).
  int merge_every = 0;
};

class TpaScdSolver final : public Solver {
 public:
  /// Builds the solver and "uploads" the dataset to the device: allocates
  /// against device memory (throws gpusim::OutOfDeviceMemory if it does not
  /// fit) and records the PCIe transfer as setup time.
  TpaScdSolver(const RidgeProblem& problem, Formulation f,
               std::uint64_t seed, TpaScdOptions options = {});

  const std::string& name() const override { return name_; }
  Formulation formulation() const override { return formulation_; }
  const ModelState& state() const override { return state_; }
  ModelState& mutable_state() override { return state_; }

  EpochReport run_epoch() override;
  double setup_sim_seconds() const override { return setup_sim_seconds_; }
  void skip_epoch_randomness(int epochs) override {
    permutation_.skip(epochs);
  }

  /// Switches between per-update atomic write-back (0, the default) and
  /// batched write-back through the replica merge (> 0); see
  /// TpaScdOptions::merge_every.
  void set_merge_every(int merge_every) override {
    options_.merge_every = merge_every;
  }

  const gpusim::DeviceSpec& device() const noexcept { return options_.device; }
  const gpusim::DeviceMemory& device_memory() const noexcept {
    return memory_;
  }

 private:
  const RidgeProblem* problem_;
  Formulation formulation_;
  TpaScdOptions options_;
  std::string name_;
  ModelState state_;
  util::EpochPermutation permutation_;
  AsyncEngine engine_;
  ReplicaSet replicas_;  // batched write-back only (merge_every > 0)
  gpusim::BlockContext block_;
  gpusim::GpuTimingModel timing_;
  gpusim::DeviceMemory memory_;
  gpusim::EpochWorkload workload_;
  double setup_sim_seconds_ = 0.0;
};

}  // namespace tpa::core
