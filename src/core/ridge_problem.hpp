// Ridge regression: objectives, closed-form coordinate updates, duality gap.
//
// Primal (paper eq. 1):   P(β) = 1/(2N)·||Aβ − y||² + λ/2·||β||²
// Dual   (paper eq. 3):   D(α) = −N/2·||α||² − 1/(2λ)·||Aᵀα||² + αᵀy
// Optimality maps (eqs. 5/6):  β* = (1/λ)Aᵀα*,  α* = (1/N)(y − Aβ*).
//
// The duality gap — |P − D| evaluated at the candidate pair induced by the
// current iterate — is the scale-free convergence metric used throughout the
// paper's evaluation.
#pragma once

#include <span>
#include <vector>

#include "core/formulation.hpp"
#include "data/dataset.hpp"
#include "linalg/half.hpp"

namespace tpa::util {
class ThreadPool;
}

namespace tpa::core {

using data::Index;
using sparse::SparseVectorView;

class RidgeProblem {
 public:
  /// Binds a dataset and regularisation strength λ > 0.  The dataset must
  /// outlive the problem.  Throws std::invalid_argument for λ <= 0 or an
  /// empty dataset.
  ///
  /// `global_examples` supports the distributed dual setting (Section IV):
  /// when the dataset is a by-example shard, the λN terms of the update rule
  /// and objective must use the *global* example count N, not the shard's.
  /// Zero (default) means "this dataset is the whole problem".
  explicit RidgeProblem(const data::Dataset& dataset, double lambda,
                        Index global_examples = 0);

  const data::Dataset& dataset() const noexcept { return *dataset_; }
  double lambda() const noexcept { return lambda_; }
  Index num_examples() const noexcept { return dataset_->num_examples(); }
  Index num_features() const noexcept { return dataset_->num_features(); }

  /// The N used in the update rules / objectives: the global example count
  /// for by-example shards, otherwise the dataset's own.
  Index effective_examples() const noexcept {
    return global_examples_ != 0 ? global_examples_ : num_examples();
  }

  /// Coordinates visited per epoch: M for the primal, N for the dual.
  Index num_coordinates(Formulation f) const noexcept;
  /// Dimension of the shared vector: N for the primal, M for the dual.
  Index shared_dim(Formulation f) const noexcept;

  /// The sparse vector of coordinate j: column a_m (primal) or row ā_n
  /// (dual).  Served from the dataset's bucketed layout: the view is padded
  /// to a multiple of 8 entries (padding repeats the last index with value
  /// 0, contributing exactly zero to every kernel) so the unrolled kernels
  /// never run a remainder loop.
  SparseVectorView coordinate_vector(Formulation f, Index j) const;

  /// The exact unpadded slice (true nnz) of coordinate j.
  SparseVectorView coordinate_vector_unpadded(Formulation f, Index j) const;
  /// ||a_m||² or ||ā_n||² (precomputed, double precision).
  double coordinate_squared_norm(Formulation f, Index j) const;

  /// Exact single-coordinate optimiser (paper eqs. 2 / 4): the closed-form
  /// Δ that minimises P (resp. maximises D) along coordinate j given the
  /// shared vector and the coordinate's current weight.
  double coordinate_delta(Formulation f, Index j,
                          std::span<const float> shared,
                          double weight_j) const;

  /// Same closed-form step against an fp16-stored shared vector (DESIGN.md
  /// §16): the gather widens each element to fp32 exactly, so the only
  /// difference from the float overload is the storage rounding already
  /// present in `shared`.
  double coordinate_delta(Formulation f, Index j,
                          std::span<const linalg::Half> shared,
                          double weight_j) const;

  /// P(β) with w = Aβ supplied by the caller.  A non-null `pool` evaluates
  /// the partial sums in fixed-size chunks across the pool; the chunked
  /// combine order is deterministic (independent of thread count), within
  /// reduction-reassociation tolerance of the serial value (DESIGN.md §9).
  double primal_objective(std::span<const float> beta,
                          std::span<const float> w,
                          util::ThreadPool* pool = nullptr) const;
  /// D(α) with w̄ = Aᵀα supplied by the caller.  Pool semantics as above.
  double dual_objective(std::span<const float> alpha,
                        std::span<const float> wbar,
                        util::ThreadPool* pool = nullptr) const;

  /// GP(β) = |P(β) − D((y − Aβ)/N)|; costs one pass over the matrix.  With a
  /// pool, the Aᵀα pass runs race-free over the column orientation and the
  /// objectives evaluate chunk-parallel, so the convergence check no longer
  /// gates training epochs on a serial matrix pass.
  double primal_duality_gap(std::span<const float> beta,
                            std::span<const float> w,
                            util::ThreadPool* pool = nullptr) const;
  /// GD(α) = |P(Aᵀα/λ) − D(α)|; costs one pass over the matrix.  Pool
  /// semantics as above (the Aβ pass parallelises over rows).
  double dual_duality_gap(std::span<const float> alpha,
                          std::span<const float> wbar,
                          util::ThreadPool* pool = nullptr) const;

  /// Dispatches to the gap matching `f` (weights/shared per formulation).
  double duality_gap(Formulation f, std::span<const float> weights,
                     std::span<const float> shared,
                     util::ThreadPool* pool = nullptr) const;

  /// β = (1/λ)·w̄  (eq. 5, given w̄ = Aᵀα).
  std::vector<float> primal_from_dual_shared(std::span<const float> wbar) const;
  /// α = (1/N)·(y − w)  (eq. 6, given w = Aβ).
  std::vector<float> dual_from_primal_shared(std::span<const float> w) const;

  /// ∂P/∂βₘ at (β, w = Aβ) — used by optimality tests.
  double primal_partial(Index m, std::span<const float> beta,
                        std::span<const float> w) const;
  /// ∂D/∂αₙ at (α, w̄ = Aᵀα).
  double dual_partial(Index n, std::span<const float> alpha,
                      std::span<const float> wbar) const;

 private:
  const data::Dataset* dataset_;
  double lambda_;
  Index global_examples_ = 0;
};

}  // namespace tpa::core
