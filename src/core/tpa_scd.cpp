#include "core/tpa_scd.hpp"

#include "core/cost_model.hpp"
#include "linalg/half.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace tpa::core {
namespace {

gpusim::EpochWorkload make_workload(const RidgeProblem& problem,
                                    Formulation f) {
  const auto timing = TimingWorkload::for_dataset(problem.dataset(), f);
  gpusim::EpochWorkload w;
  w.nnz = timing.nnz;
  w.num_coordinates = timing.num_coordinates;
  w.shared_dim = timing.shared_dim;
  return w;
}

}  // namespace

TpaScdSolver::TpaScdSolver(const RidgeProblem& problem, Formulation f,
                           std::uint64_t seed, TpaScdOptions options)
    : problem_(&problem),
      formulation_(f),
      options_(options),
      name_("TPA-SCD (" + options.device.name + ")"),
      state_(ModelState::zeros(problem, f)),
      permutation_(problem.num_coordinates(f), util::Rng(seed)),
      engine_(static_cast<std::size_t>(
                  options.async_window_override > 0
                      ? options.async_window_override
                      : options.device.async_staleness()),
              CommitPolicy::kAtomicAdd),
      block_(options.device.threads_per_block),
      timing_(options.device),
      memory_(options.device),
      workload_(make_workload(problem, f)) {
  // "The dataset ... is transferred into the GPU memory once at the
  // beginning of operation and does not move" (paper Section V.A).
  const auto& dataset = problem.dataset();
  std::size_t data_bytes = dataset.memory_bytes();
  if (options_.charge_paper_scale_memory &&
      dataset.paper_scale().has_value()) {
    // 8 bytes per stored entry (4 B value + 4 B index), as in Section III.D.
    data_bytes = static_cast<std::size_t>(dataset.paper_scale()->nnz) * 8;
  }
  const std::size_t vector_bytes =
      (state_.weights.size() + state_.shared.size()) * sizeof(float);
  memory_.allocate(data_bytes + vector_bytes);
  setup_sim_seconds_ =
      memory_.upload_seconds(data_bytes + vector_bytes, options_.pcie,
                             /*pinned=*/true);
}

EpochReport TpaScdSolver::run_epoch() {
  const util::WallTimer timer;
  const auto order = [this] {
    obs::TraceSpan shuffle("tpa_scd/shuffle");
    return permutation_.next();
  }();
  const auto labels = problem_->dataset().labels();
  const auto n = static_cast<double>(problem_->effective_examples());
  const double lambda = problem_->lambda();

  obs::TraceSpan sweep("tpa_scd/sweep");
  // The thread-block body of Algorithm 2: strided partial inner product
  // in 32-bit floats, shared-memory tree reduction, then thread 0's
  // closed-form delta.
  const AsyncEngine::ComputeFn compute =
      [&](sparse::Index j, std::span<const float> shared) {
        const auto vec = problem_->coordinate_vector(formulation_, j);
        const double norm_sq =
            problem_->coordinate_squared_norm(formulation_, j);
        if (formulation_ == Formulation::kPrimal) {
          const double dot = block_.strided_reduce(
              vec.nnz(), [&](std::size_t k) {
                const auto i = vec.indices[k];
                return (labels[i] - shared[i]) * vec.values[k];
              });
          return (dot - n * lambda * state_.weights[j]) /
                 (norm_sq + n * lambda);
        }
        const double dot = block_.strided_reduce(
            vec.nnz(), [&](std::size_t k) {
              return shared[vec.indices[k]] * vec.values[k];
            });
        return (lambda * labels[j] - dot -
                lambda * n * state_.weights[j]) /
               (lambda * n + norm_sq);
      };
  // The same block body against an fp16-stored replica: gathers widen each
  // element exactly, so only the storage rounding differs (DESIGN.md §16).
  const AsyncEngine::ComputeHalfFn compute_half =
      [&](sparse::Index j, std::span<const linalg::Half> shared) {
        const auto vec = problem_->coordinate_vector(formulation_, j);
        const double norm_sq =
            problem_->coordinate_squared_norm(formulation_, j);
        if (formulation_ == Formulation::kPrimal) {
          const double dot = block_.strided_reduce(
              vec.nnz(), [&](std::size_t k) {
                const auto i = vec.indices[k];
                return (labels[i] - linalg::half_to_float(shared[i])) *
                       vec.values[k];
              });
          return (dot - n * lambda * state_.weights[j]) /
                 (norm_sq + n * lambda);
        }
        const double dot = block_.strided_reduce(
            vec.nnz(), [&](std::size_t k) {
              return linalg::half_to_float(shared[vec.indices[k]]) *
                     vec.values[k];
            });
        return (lambda * labels[j] - dot -
                lambda * n * state_.weights[j]) /
               (lambda * n + norm_sq);
      };
  const AsyncEngine::VectorFn vec_of = [this](sparse::Index j) {
    return problem_->coordinate_vector(formulation_, j);
  };
  const AsyncEngine::WeightFn apply_weight = [this](sparse::Index j,
                                                    double delta) {
    state_.weights[j] = static_cast<float>(state_.weights[j] + delta);
  };
  if (options_.merge_every > 0) {
    // Batched write-back: resident blocks scatter into per-lane replicas and
    // the device folds them every merge_every updates per lane — the same
    // delta-merge primitive the CPU replicated solvers use.  With hundreds
    // of resident blocks the concurrent staleness is large even at
    // merge_every=1, so the damping factor matters here more than on the
    // CPU paths.
    const auto coords = problem_->num_coordinates(formulation_);
    engine_.run_epoch_replicated(
        order, compute, compute_half, vec_of, apply_weight, state_.shared,
        replicas_, options_.merge_every,
        replica_damping(coords, static_cast<int>(engine_.window()),
                        options_.merge_every));
  } else {
    engine_.run_epoch(order, compute, vec_of, apply_weight, state_.shared);
  }

  // The bandwidth model prices the shared-vector traffic at the storage
  // width the epoch actually ran with: the replicated pipeline honours the
  // process-wide precision mode; the atomic-commit path is always fp32
  // (float atomics have no 16-bit form).
  workload_.shared_value_bytes =
      options_.merge_every > 0
          ? static_cast<std::uint32_t>(
                linalg::shared_value_bytes(linalg::shared_precision()))
          : 4U;

  EpochReport report;
  report.coordinate_updates = order.size();
  report.sim_seconds = timing_.epoch_seconds(workload_);
  report.wall_seconds = timer.seconds();
  return report;
}

}  // namespace tpa::core
