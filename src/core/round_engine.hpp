// Deterministic model of asynchronous coordinate updates.
//
// All three asynchronous solvers in the paper — A-SCD (16 CPU threads with
// atomic adds), PASSCoDe-Wild (16 CPU threads, non-atomic), and TPA-SCD
// (hundreds of concurrent GPU thread blocks, atomic adds) — share one
// structure: W "lanes" (threads / thread blocks) are in flight at any
// moment; each picks a coordinate, *reads* the shared vector, computes its
// exact coordinate update against that possibly-stale read, and *writes*
// its sparse update back.  The two behaviours the paper measures are
//   (1) staleness: a lane's read misses the updates of lanes that are in
//       flight concurrently (on average ~W of them), and
//   (2) lost updates: without atomics, concurrent read-modify-write
//       sequences on the same shared-vector entry overwrite each other, so
//       the shared vector drifts from the model weights (PASSCoDe-Wild's
//       nonzero duality-gap floor).
//
// AsyncEngine models this as a delayed-commit pipeline: coordinates are
// processed in epoch order, but an update's shared-vector write only lands
// `window` steps after its read — exactly the staleness of a device that
// keeps `window` blocks resident and retires/launches them continuously.
// With window == 1 the engine is exactly sequential SCD.  Under
// CommitPolicy::kAtomicAdd every write lands (float atomics); under
// kLastWriterWins each update stores `snapshot + contribution` per entry,
// silently overwriting whatever landed in between — the non-atomic RMW race.
// Everything is deterministic given the epoch permutation; on a one-core CI
// machine this is *more* faithful to the paper's 16-thread / many-block
// behaviour than real threads would be (threaded_scd.hpp provides the real-
// thread path).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/replica_set.hpp"
#include "sparse/csr.hpp"

namespace tpa::core {

enum class CommitPolicy {
  kAtomicAdd,        // every lane's update lands (A-SCD, TPA-SCD)
  kLastWriterWins,   // racing read-modify-writes lose updates (Wild)
  kReplicated,       // plain stores into per-lane replicas, periodic merge
};

struct AsyncEngineStats {
  std::uint64_t updates = 0;            // coordinate updates processed
  std::uint64_t committed_entries = 0;  // shared-vector writes that landed
  std::uint64_t lost_entries = 0;       // writes that clobbered a racing add
};

class AsyncEngine {
 public:
  /// `window` concurrent lanes committing under `policy`.  Throws
  /// std::invalid_argument on zero window.
  AsyncEngine(std::size_t window, CommitPolicy policy);

  std::size_t window() const noexcept { return window_; }
  CommitPolicy policy() const noexcept { return policy_; }

  /// Computes the update delta for coordinate j from the currently visible
  /// shared vector.
  using ComputeFn =
      std::function<double(sparse::Index j, std::span<const float> shared)>;
  /// Same, against an fp16-stored replica (the reduced-precision pipeline;
  /// DESIGN.md §16).
  using ComputeHalfFn = std::function<double(
      sparse::Index j, std::span<const linalg::Half> shared)>;
  /// Returns coordinate j's sparse vector (the scatter pattern of its
  /// shared-vector update).
  using VectorFn = std::function<sparse::SparseVectorView(sparse::Index j)>;
  /// Applies the (always-correct) private weight update for coordinate j.
  using WeightFn = std::function<void(sparse::Index j, double delta)>;

  /// Runs one epoch over `order` (a permutation of the coordinates),
  /// mutating `shared` in place; all in-flight updates are drained before
  /// returning.  Requires policy kAtomicAdd or kLastWriterWins — the
  /// replicated pipeline lives in run_epoch_replicated.
  AsyncEngineStats run_epoch(std::span<const std::uint32_t> order,
                             const ComputeFn& compute, const VectorFn& vec_of,
                             const WeightFn& apply_weight,
                             std::span<float> shared);

  /// Replicated (SySCD-style) variant of the same pipeline: lane p % window
  /// computes against and scatters into its own replica with plain stores —
  /// no commit ring, no per-entry races — and all replicas are folded into
  /// `shared` every window × merge_every updates (and once more at epoch
  /// end).  Staleness is bounded by the merge interval instead of the
  /// in-flight window; with window == 1 and merge_every == 1 this is
  /// bit-exact sequential SCD.  `replicas` is caller-owned so its storage
  /// persists across epochs; it is (re)configured and reseeded from `shared`
  /// here.  merge_every must be positive.  `damping` ∈ (0, 1] under-relaxes
  /// every update delta (weights and shared together) — callers pass
  /// core::replica_damping so large merge intervals slow down instead of
  /// diverging; 1.0 (the exact coordinate step) within the safe budget.
  AsyncEngineStats run_epoch_replicated(std::span<const std::uint32_t> order,
                                        const ComputeFn& compute,
                                        const VectorFn& vec_of,
                                        const WeightFn& apply_weight,
                                        std::span<float> shared,
                                        ReplicaSet& replicas, int merge_every,
                                        double damping = 1.0);

  /// Precision-aware variant: when linalg::shared_precision() is kFp16 the
  /// replicas are stored as binary16 and each lane computes through
  /// `compute_half` (gathers widen exactly, scatters narrow with RNE),
  /// halving the bytes the pipeline touches per update; otherwise this is
  /// exactly the fp32 overload above.  `compute_half` must be valid — pass
  /// the same coordinate formula over a Half span.
  AsyncEngineStats run_epoch_replicated(
      std::span<const std::uint32_t> order, const ComputeFn& compute,
      const ComputeHalfFn& compute_half, const VectorFn& vec_of,
      const WeightFn& apply_weight, std::span<float> shared,
      ReplicaSet& replicas, int merge_every, double damping = 1.0);

 private:
  struct PendingUpdate {
    sparse::Index coord = 0;
    double delta = 0.0;
    // Per-entry shared-vector values observed at read time; used by the
    // last-writer-wins commit (the non-atomic RMW stores read + add).
    std::vector<float> snapshot;
  };

  void commit(const PendingUpdate& update, const VectorFn& vec_of,
              std::span<float> shared, AsyncEngineStats& stats) const;

  std::size_t window_;
  CommitPolicy policy_;
  std::vector<PendingUpdate> ring_;
};

}  // namespace tpa::core
