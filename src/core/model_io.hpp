// Model serialization: save / load trained weight vectors so the CLI tool
// (tools/tpascd_train) can train once and predict later.
//
// Format: magic "TPAM", little-endian header (formulation tag, weight and
// shared-vector lengths, lambda), raw float arrays, FNV-1a checksum.
#pragma once

#include <iosfwd>
#include <string>

#include "core/model.hpp"

namespace tpa::core {

struct SavedModel {
  Formulation formulation = Formulation::kPrimal;
  double lambda = 0.0;
  std::vector<float> weights;
  std::vector<float> shared;
};

/// Writes the model; throws std::runtime_error on IO failure.
void write_model(std::ostream& out, const SavedModel& model);
void write_model_file(const std::string& path, const SavedModel& model);

/// Reads a model; throws std::runtime_error on bad magic, truncation or
/// checksum mismatch.
SavedModel read_model(std::istream& in);
SavedModel read_model_file(const std::string& path);

}  // namespace tpa::core
