// Model serialization: save / load trained weight vectors so the CLI tool
// (tools/tpascd_train) can train once and predict later, plus the epoch
// checkpoints the distributed trainer resumes from.
//
// Format: magic "TPAM", little-endian header (formulation tag, epoch
// counter, weight and shared-vector lengths, lambda), raw float arrays,
// FNV-1a checksum.  The epoch field occupies what used to be a reserved
// header word, so pre-checkpoint files load as epoch 0.
#pragma once

#include <iosfwd>
#include <string>

#include "core/model.hpp"

namespace tpa::core {

struct SavedModel {
  Formulation formulation = Formulation::kPrimal;
  double lambda = 0.0;
  /// Outer epochs completed when this model was written (0 for a plain
  /// save); run_distributed resumes from epoch + 1.
  std::uint32_t epoch = 0;
  std::vector<float> weights;
  std::vector<float> shared;
};

/// Writes the model; throws std::runtime_error on IO failure.
void write_model(std::ostream& out, const SavedModel& model);

/// Atomic file save: writes to `<path>.tmp`, then rename(2)s over `path`,
/// so a crash mid-save (or mid-checkpoint) never leaves a torn file at
/// `path` — readers see either the old complete model or the new one.
/// Throws std::runtime_error on IO failure (the .tmp is removed).
void write_model_file(const std::string& path, const SavedModel& model);

/// Reads a model; throws std::runtime_error on bad magic, truncation or
/// checksum mismatch.
SavedModel read_model(std::istream& in);
SavedModel read_model_file(const std::string& path);

}  // namespace tpa::core
