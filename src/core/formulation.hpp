// Primal vs dual formulation of ridge regression (paper Section II).
//
// Both formulations are solved by the same family of coordinate methods; they
// differ in what a "coordinate" is (a feature column for the primal, an
// example row for the dual), in the dimension of the shared vector
// (w = Aβ ∈ R^N vs w̄ = Aᵀα ∈ R^M), and in the closed-form update rule
// (paper eq. 2 vs eq. 4).
#pragma once

#include <string>

namespace tpa::core {

enum class Formulation {
  kPrimal,  // minimise P(β); coordinates are features; shared vector w = Aβ
  kDual,    // maximise D(α); coordinates are examples; shared vector w̄ = Aᵀα
};

inline const char* formulation_name(Formulation f) {
  return f == Formulation::kPrimal ? "primal" : "dual";
}

}  // namespace tpa::core
