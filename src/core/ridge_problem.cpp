#include "core/ridge_problem.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/cost_model.hpp"
#include "linalg/vector_ops.hpp"
#include "util/thread_pool.hpp"

namespace tpa::core {
namespace {

// Fixed reduction grain for the pool-parallel objectives.  Partial sums are
// computed per grain-sized chunk and combined in chunk order, so the result
// is a pure function of the data and this constant — independent of how many
// workers the pool has (DESIGN.md §9).
constexpr std::size_t kGapGrain = 1u << 13;

// Sums fn(begin, end) over grain-sized chunks of [0, count), scheduling the
// chunks across `pool` and combining the partials in ascending chunk order.
template <typename ChunkFn>
double chunked_sum(util::ThreadPool& pool, std::size_t count,
                   const ChunkFn& fn) {
  const std::size_t chunks = (count + kGapGrain - 1) / kGapGrain;
  std::vector<double> partial(chunks, 0.0);
  pool.parallel_for_chunks(chunks, [&](std::size_t cb, std::size_t ce) {
    for (std::size_t c = cb; c < ce; ++c) {
      const std::size_t begin = c * kGapGrain;
      const std::size_t end = std::min(count, begin + kGapGrain);
      partial[c] = fn(begin, end);
    }
  });
  double total = 0.0;
  for (const double p : partial) total += p;
  return total;
}

// A pool with a single worker would add scheduling cost without splitting
// any work, and so would any pool the dispatch model predicts to lose on
// `work_entries` entries (too little work, or fewer hardware cores than
// workers); both degrade to the serial path.
util::ThreadPool* effective_pool(util::ThreadPool* pool,
                                 std::uint64_t work_entries) {
  if (pool == nullptr || pool->size() <= 1) return nullptr;
  return pool_dispatch().use_pool(work_entries,
                                  static_cast<int>(pool->size()))
             ? pool
             : nullptr;
}

}  // namespace

RidgeProblem::RidgeProblem(const data::Dataset& dataset, double lambda,
                           Index global_examples)
    : dataset_(&dataset),
      lambda_(lambda),
      global_examples_(global_examples) {
  if (lambda <= 0.0) {
    throw std::invalid_argument("RidgeProblem: lambda must be positive");
  }
  if (dataset.num_examples() == 0 || dataset.num_features() == 0) {
    throw std::invalid_argument("RidgeProblem: dataset must be non-empty");
  }
}

Index RidgeProblem::num_coordinates(Formulation f) const noexcept {
  return f == Formulation::kPrimal ? num_features() : num_examples();
}

Index RidgeProblem::shared_dim(Formulation f) const noexcept {
  return f == Formulation::kPrimal ? num_examples() : num_features();
}

SparseVectorView RidgeProblem::coordinate_vector(Formulation f,
                                                 Index j) const {
  return f == Formulation::kPrimal ? dataset_->bucketed_cols().padded(j)
                                   : dataset_->bucketed_rows().padded(j);
}

SparseVectorView RidgeProblem::coordinate_vector_unpadded(Formulation f,
                                                          Index j) const {
  return f == Formulation::kPrimal ? dataset_->bucketed_cols().unpadded(j)
                                   : dataset_->bucketed_rows().unpadded(j);
}

double RidgeProblem::coordinate_squared_norm(Formulation f, Index j) const {
  return f == Formulation::kPrimal ? dataset_->col_squared_norms()[j]
                                   : dataset_->row_squared_norms()[j];
}

double RidgeProblem::coordinate_delta(Formulation f, Index j,
                                      std::span<const float> shared,
                                      double weight_j) const {
  const auto n = static_cast<double>(effective_examples());
  const auto vec = coordinate_vector(f, j);
  const double norm_sq = coordinate_squared_norm(f, j);
  if (f == Formulation::kPrimal) {
    // Eq. (2): Δβ = (⟨y − w, a_m⟩ − Nλβ_m) / (||a_m||² + Nλ).
    const double residual_dot =
        linalg::sparse_residual_dot(vec, dataset_->labels(), shared);
    return (residual_dot - n * lambda_ * weight_j) / (norm_sq + n * lambda_);
  }
  // Eq. (4): Δα = (λyₙ − ⟨w̄, āₙ⟩ − λNαₙ) / (λN + ||āₙ||²).
  const double wbar_dot = linalg::sparse_dot(vec, shared);
  const double y_n = dataset_->labels()[j];
  return (lambda_ * y_n - wbar_dot - lambda_ * n * weight_j) /
         (lambda_ * n + norm_sq);
}

double RidgeProblem::coordinate_delta(Formulation f, Index j,
                                      std::span<const linalg::Half> shared,
                                      double weight_j) const {
  // Same closed-form steps as the float overload; the half kernels widen
  // each gathered element exactly, so the formulas are untouched.
  const auto n = static_cast<double>(effective_examples());
  const auto vec = coordinate_vector(f, j);
  const double norm_sq = coordinate_squared_norm(f, j);
  if (f == Formulation::kPrimal) {
    const double residual_dot =
        linalg::sparse_residual_dot(vec, dataset_->labels(), shared);
    return (residual_dot - n * lambda_ * weight_j) / (norm_sq + n * lambda_);
  }
  const double wbar_dot = linalg::sparse_dot(vec, shared);
  const double y_n = dataset_->labels()[j];
  return (lambda_ * y_n - wbar_dot - lambda_ * n * weight_j) /
         (lambda_ * n + norm_sq);
}

double RidgeProblem::primal_objective(std::span<const float> beta,
                                      std::span<const float> w,
                                      util::ThreadPool* pool) const {
  const auto n = static_cast<double>(effective_examples());
  const auto labels = dataset_->labels();
  if (util::ThreadPool* p = effective_pool(pool, w.size() + beta.size())) {
    const double residual_sq =
        chunked_sum(*p, w.size(), [&](std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            const double r = static_cast<double>(w[i]) - labels[i];
            acc += r * r;
          }
          return acc;
        });
    const double beta_sq =
        chunked_sum(*p, beta.size(), [&](std::size_t b, std::size_t e) {
          return linalg::dot(beta.subspan(b, e - b), beta.subspan(b, e - b));
        });
    return residual_sq / (2.0 * n) + 0.5 * lambda_ * beta_sq;
  }
  double residual_sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double r = static_cast<double>(w[i]) - labels[i];
    residual_sq += r * r;
  }
  return residual_sq / (2.0 * n) +
         0.5 * lambda_ * linalg::squared_norm(beta);
}

double RidgeProblem::dual_objective(std::span<const float> alpha,
                                    std::span<const float> wbar,
                                    util::ThreadPool* pool) const {
  const auto n = static_cast<double>(effective_examples());
  const auto labels = dataset_->labels();
  if (util::ThreadPool* p =
          effective_pool(pool, 2 * alpha.size() + wbar.size())) {
    const double alpha_sq =
        chunked_sum(*p, alpha.size(), [&](std::size_t b, std::size_t e) {
          return linalg::dot(alpha.subspan(b, e - b), alpha.subspan(b, e - b));
        });
    const double wbar_sq =
        chunked_sum(*p, wbar.size(), [&](std::size_t b, std::size_t e) {
          return linalg::dot(wbar.subspan(b, e - b), wbar.subspan(b, e - b));
        });
    const double alpha_y =
        chunked_sum(*p, alpha.size(), [&](std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            acc += static_cast<double>(alpha[i]) * labels[i];
          }
          return acc;
        });
    return -0.5 * n * alpha_sq - wbar_sq / (2.0 * lambda_) + alpha_y;
  }
  const double alpha_sq = linalg::squared_norm(alpha);
  const double wbar_sq = linalg::squared_norm(wbar);
  double alpha_y = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    alpha_y += static_cast<double>(alpha[i]) * labels[i];
  }
  return -0.5 * n * alpha_sq - wbar_sq / (2.0 * lambda_) + alpha_y;
}

double RidgeProblem::primal_duality_gap(std::span<const float> beta,
                                        std::span<const float> w,
                                        util::ThreadPool* pool) const {
  // Candidate dual point from eq. (6): α = (y − w)/N, then w̄ = Aᵀα.
  // Work is dominated by the matvec — one visit per stored nonzero.
  util::ThreadPool* p = effective_pool(pool, dataset_->nnz());
  const auto alpha = dual_from_primal_shared(w);
  std::vector<float> wbar(static_cast<std::size_t>(num_features()));
  if (p != nullptr) {
    // Aᵀα as per-column dots over the CSC orientation: race-free rows of
    // independent work, unlike the serial CSR scatter.
    linalg::csc_matvec_transposed(dataset_->by_col(), alpha, wbar, p);
  } else {
    linalg::csr_matvec_transposed(dataset_->by_row(), alpha, wbar);
  }
  return std::abs(primal_objective(beta, w, p) -
                  dual_objective(alpha, wbar, p));
}

double RidgeProblem::dual_duality_gap(std::span<const float> alpha,
                                      std::span<const float> wbar,
                                      util::ThreadPool* pool) const {
  // Candidate primal point from eq. (5): β = w̄/λ, then w = Aβ.
  util::ThreadPool* p = effective_pool(pool, dataset_->nnz());
  const auto beta = primal_from_dual_shared(wbar);
  std::vector<float> w(static_cast<std::size_t>(num_examples()));
  // Per-row dots: serial and pooled schedules produce identical values.
  linalg::csr_matvec(dataset_->by_row(), beta, w, p);
  return std::abs(primal_objective(beta, w, p) -
                  dual_objective(alpha, wbar, p));
}

double RidgeProblem::duality_gap(Formulation f,
                                 std::span<const float> weights,
                                 std::span<const float> shared,
                                 util::ThreadPool* pool) const {
  return f == Formulation::kPrimal ? primal_duality_gap(weights, shared, pool)
                                   : dual_duality_gap(weights, shared, pool);
}

std::vector<float> RidgeProblem::primal_from_dual_shared(
    std::span<const float> wbar) const {
  std::vector<float> beta(wbar.size());
  const double inv_lambda = 1.0 / lambda_;
  for (std::size_t i = 0; i < wbar.size(); ++i) {
    beta[i] = static_cast<float>(wbar[i] * inv_lambda);
  }
  return beta;
}

std::vector<float> RidgeProblem::dual_from_primal_shared(
    std::span<const float> w) const {
  const auto labels = dataset_->labels();
  std::vector<float> alpha(w.size());
  const double inv_n = 1.0 / static_cast<double>(effective_examples());
  for (std::size_t i = 0; i < w.size(); ++i) {
    alpha[i] = static_cast<float>((labels[i] - w[i]) * inv_n);
  }
  return alpha;
}

double RidgeProblem::primal_partial(Index m, std::span<const float> beta,
                                    std::span<const float> w) const {
  // ∂P/∂βₘ = (1/N)·⟨Aβ − y, a_m⟩ + λβₘ = −(1/N)·⟨y − w, a_m⟩ + λβₘ.
  const auto n = static_cast<double>(effective_examples());
  const double residual_dot = linalg::sparse_residual_dot(
      coordinate_vector(Formulation::kPrimal, m), dataset_->labels(), w);
  return -residual_dot / n + lambda_ * static_cast<double>(beta[m]);
}

double RidgeProblem::dual_partial(Index n, std::span<const float> alpha,
                                  std::span<const float> wbar) const {
  // ∂D/∂αₙ = −Nαₙ − (1/λ)·⟨Aᵀα, āₙ⟩ + yₙ.
  const auto examples = static_cast<double>(effective_examples());
  const double wbar_dot = linalg::sparse_dot(
      coordinate_vector(Formulation::kDual, n), wbar);
  return -examples * static_cast<double>(alpha[n]) - wbar_dot / lambda_ +
         static_cast<double>(dataset_->labels()[n]);
}

}  // namespace tpa::core
