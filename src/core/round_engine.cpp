#include "core/round_engine.hpp"

#include <stdexcept>

#include "linalg/vector_ops.hpp"

namespace tpa::core {

AsyncEngine::AsyncEngine(std::size_t window, CommitPolicy policy)
    : window_(window), policy_(policy) {
  if (window == 0) {
    throw std::invalid_argument("AsyncEngine: window must be positive");
  }
  ring_.resize(window);
}

void AsyncEngine::commit(const PendingUpdate& update, const VectorFn& vec_of,
                         std::span<float> shared,
                         AsyncEngineStats& stats) const {
  const auto vec = vec_of(update.coord);
  if (policy_ == CommitPolicy::kAtomicAdd) {
    linalg::sparse_axpy(update.delta, vec, shared);
    stats.committed_entries += vec.nnz();
    return;
  }
  // Non-atomic read-modify-write: the store is `value read at compute time
  // plus this update's contribution`, so any add that landed on the entry
  // since the read is silently erased.
  for (std::size_t k = 0; k < vec.nnz(); ++k) {
    const auto i = vec.indices[k];
    const float stored = static_cast<float>(
        update.snapshot[k] + update.delta * vec.values[k]);
    if (shared[i] != update.snapshot[k]) {
      ++stats.lost_entries;  // a racing lane's add gets overwritten
    } else {
      ++stats.committed_entries;
    }
    shared[i] = stored;
  }
}

AsyncEngineStats AsyncEngine::run_epoch(std::span<const std::uint32_t> order,
                                        const ComputeFn& compute,
                                        const VectorFn& vec_of,
                                        const WeightFn& apply_weight,
                                        std::span<float> shared) {
  if (policy_ == CommitPolicy::kReplicated) {
    throw std::logic_error(
        "AsyncEngine::run_epoch: kReplicated requires run_epoch_replicated");
  }
  AsyncEngineStats stats;
  const bool need_snapshot = policy_ == CommitPolicy::kLastWriterWins;

  for (std::size_t p = 0; p < order.size(); ++p) {
    // Retire the update that has been in flight for `window` steps; its
    // write lands now, so the current read (below) does not see it — that
    // is the staleness of `window` concurrently-resident lanes.
    const std::size_t slot = p % window_;
    if (p >= window_) {
      commit(ring_[slot], vec_of, shared, stats);
    }

    const auto j = order[p];
    const double delta = compute(j, shared);
    apply_weight(j, delta);  // weights are private to their coordinate
    ++stats.updates;

    auto& pending = ring_[slot];
    pending.coord = j;
    pending.delta = delta;
    if (need_snapshot) {
      const auto vec = vec_of(j);
      pending.snapshot.resize(vec.nnz());
      for (std::size_t k = 0; k < vec.nnz(); ++k) {
        pending.snapshot[k] = shared[vec.indices[k]];
      }
    }
  }

  // Drain: all still-in-flight updates land at epoch end (the device
  // finishes its grid before the host proceeds).
  const std::size_t in_flight = std::min(window_, order.size());
  for (std::size_t q = 0; q < in_flight; ++q) {
    const std::size_t p = order.size() - in_flight + q;
    commit(ring_[p % window_], vec_of, shared, stats);
  }
  return stats;
}

AsyncEngineStats AsyncEngine::run_epoch_replicated(
    std::span<const std::uint32_t> order, const ComputeFn& compute,
    const VectorFn& vec_of, const WeightFn& apply_weight,
    std::span<float> shared, ReplicaSet& replicas, int merge_every,
    double damping) {
  if (merge_every <= 0) {
    throw std::invalid_argument(
        "AsyncEngine::run_epoch_replicated: merge_every must be positive");
  }
  if (!(damping > 0.0) || damping > 1.0) {
    throw std::invalid_argument(
        "AsyncEngine::run_epoch_replicated: damping must be in (0, 1]");
  }
  AsyncEngineStats stats;
  replicas.configure(shared.size(), static_cast<int>(window_));
  // Reseed every epoch: callers (the distributed solver in particular) may
  // overwrite `shared` between epochs.
  replicas.reset_from(shared);

  // One merge interval = merge_every updates per lane.
  const std::uint64_t interval =
      static_cast<std::uint64_t>(window_) *
      static_cast<std::uint64_t>(merge_every);
  std::uint64_t since_merge = 0;
  for (std::size_t p = 0; p < order.size(); ++p) {
    const int lane = static_cast<int>(p % window_);
    auto rep = replicas.replica(lane);
    const auto j = order[p];
    // The lane reads its own replica: the last merge plus its own updates
    // since — other lanes' post-merge updates are invisible until the next
    // merge (staleness bounded by the interval).
    // Under-relax the exact coordinate step by θ (1.0 within the safe
    // staleness budget): weight and shared contributions scale together, so
    // the w = A^T·α invariant is preserved at any damping.
    const double step = damping * compute(j, rep);
    apply_weight(j, step);
    const auto vec = vec_of(j);
    // Plain in-order stores into private storage; nothing races, nothing is
    // lost, and the result is independent of any physical schedule.
    linalg::sparse_axpy(step, vec, rep);
    ++stats.updates;
    stats.committed_entries += vec.nnz();
    if (++since_merge >= interval) {
      replicas.merge_into(shared);
      since_merge = 0;
    }
  }
  if (since_merge > 0) replicas.merge_into(shared);
  return stats;
}

AsyncEngineStats AsyncEngine::run_epoch_replicated(
    std::span<const std::uint32_t> order, const ComputeFn& compute,
    const ComputeHalfFn& compute_half, const VectorFn& vec_of,
    const WeightFn& apply_weight, std::span<float> shared,
    ReplicaSet& replicas, int merge_every, double damping) {
  if (linalg::shared_precision() != linalg::SharedPrecision::kFp16 ||
      !compute_half) {
    return run_epoch_replicated(order, compute, vec_of, apply_weight, shared,
                                replicas, merge_every, damping);
  }
  if (merge_every <= 0) {
    throw std::invalid_argument(
        "AsyncEngine::run_epoch_replicated: merge_every must be positive");
  }
  if (!(damping > 0.0) || damping > 1.0) {
    throw std::invalid_argument(
        "AsyncEngine::run_epoch_replicated: damping must be in (0, 1]");
  }
  // The fp16 pipeline is the fp32 one with half-stored replicas: the lane's
  // gather widens exactly, the scatter narrows with RNE, and the merge folds
  // half deltas in double — storage precision is the only difference.
  AsyncEngineStats stats;
  replicas.configure(shared.size(), static_cast<int>(window_),
                     linalg::SharedPrecision::kFp16);
  replicas.reset_from(shared);

  const std::uint64_t interval =
      static_cast<std::uint64_t>(window_) *
      static_cast<std::uint64_t>(merge_every);
  std::uint64_t since_merge = 0;
  for (std::size_t p = 0; p < order.size(); ++p) {
    const int lane = static_cast<int>(p % window_);
    auto rep = replicas.replica_half(lane);
    const auto j = order[p];
    const double step = damping * compute_half(j, rep);
    apply_weight(j, step);
    const auto vec = vec_of(j);
    linalg::sparse_axpy(step, vec, rep);
    ++stats.updates;
    stats.committed_entries += vec.nnz();
    if (++since_merge >= interval) {
      replicas.merge_into(shared);
      since_merge = 0;
    }
  }
  if (since_merge > 0) replicas.merge_into(shared);
  return stats;
}

}  // namespace tpa::core
