// Construction of local solvers by kind — the single switch point used by
// the distributed engine, the benches and the examples.
#pragma once

#include <memory>
#include <string>

#include "core/cost_model.hpp"
#include "core/solver.hpp"

namespace tpa::core {

enum class SolverKind {
  kSequential,          // Algorithm 1, single thread
  kAsyncAtomic,         // A-SCD, deterministic round model
  kAsyncWild,           // PASSCoDe-Wild, deterministic round model
  kAsyncReplicated,     // replicated SCD, deterministic round model
  kThreadedAtomic,      // A-SCD on real std::threads
  kThreadedWild,        // PASSCoDe-Wild on real std::threads
  kThreadedReplicated,  // replicated SCD on real std::threads
  kTpaM4000,            // TPA-SCD on the simulated Quadro M4000
  kTpaTitanX,           // TPA-SCD on the simulated GTX Titan X
};

struct SolverConfig {
  SolverKind kind = SolverKind::kSequential;
  Formulation formulation = Formulation::kPrimal;
  int threads = 16;          // CPU async variants
  std::uint64_t seed = 1234;
  CpuCostModel cpu_cost{};
  bool charge_paper_scale_memory = false;  // TPA variants
  /// Replicated variants: updates per worker between merges (0 = automatic,
  /// core::replica_auto_interval); forwarded via Solver::set_merge_every.
  int merge_every = 0;
};

/// Builds the solver; throws std::invalid_argument for inconsistent config.
std::unique_ptr<Solver> make_solver(const RidgeProblem& problem,
                                    const SolverConfig& config);

/// Parses "seq" | "ascd" | "wild" | "rep" | "ascd-threads" | "wild-threads" |
/// "rep-threads" | "tpa-m4000" | "tpa-titanx"; throws std::invalid_argument
/// otherwise.
SolverKind parse_solver_kind(const std::string& name);

const char* solver_kind_name(SolverKind kind);

}  // namespace tpa::core
