#include "core/metrics.hpp"

#include <cassert>
#include <cmath>

#include "linalg/vector_ops.hpp"

namespace tpa::core {

std::vector<float> predict(const data::Dataset& dataset,
                           std::span<const float> beta) {
  return linalg::csr_matvec(dataset.by_row(), beta);
}

double rmse(std::span<const float> predictions,
            std::span<const float> labels) {
  assert(predictions.size() == labels.size());
  if (predictions.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const double d = static_cast<double>(predictions[i]) - labels[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predictions.size()));
}

double r_squared(std::span<const float> predictions,
                 std::span<const float> labels) {
  assert(predictions.size() == labels.size());
  if (predictions.empty()) return 0.0;
  double mean = 0.0;
  for (const auto y : labels) mean += y;
  mean /= static_cast<double>(labels.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const double res = static_cast<double>(labels[i]) - predictions[i];
    const double dev = static_cast<double>(labels[i]) - mean;
    ss_res += res * res;
    ss_tot += dev * dev;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double sign_accuracy(std::span<const float> predictions,
                     std::span<const float> labels) {
  assert(predictions.size() == labels.size());
  if (predictions.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    const bool pred_positive = predictions[i] >= 0.0F;
    const bool label_positive = labels[i] >= 0.0F;
    if (pred_positive == label_positive) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(predictions.size());
}

}  // namespace tpa::core
