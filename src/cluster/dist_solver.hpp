// Distributed synchronous SCD (paper Algorithms 3 and 4, Section V) with a
// fault layer.
//
// K simulated workers each own a shard of the data (by feature for the
// primal, by example for the dual) and a local solver — any core::Solver,
// from sequential SCD to TPA-SCD on a simulated GPU.  Every epoch:
//   1. the master's shared vector is broadcast to the workers;
//   2. each worker runs one local epoch against its own copy;
//   3. shared-vector deltas (plus, for adaptive aggregation, a few scalars)
//      are reduced to the master;
//   4. the master scales the summed update by γ (1/contributors for
//      averaging, the closed-form optimum of Algorithm 4 for adaptive) and
//      applies it;
//   5. workers rescale their local weight updates by the same γ, keeping the
//      global invariant  shared == A·(assembled weights)  exact.
// Per-epoch simulated time is broken down into local-solver compute, host
// vector arithmetic, PCIe transfers (GPU workers only) and network
// reduce/broadcast — exactly the four bars of the paper's Fig. 9.
//
// Failure handling (DESIGN.md §8): the paper's algorithms assume all K
// workers complete every epoch; here the master instead enforces a
// straggler deadline derived from the timing breakdown and aggregates only
// the deltas that arrive in time, rescaling γ to the contributing count.
// A straggler keeps computing and its stale delta is incorporated the round
// it finishes (the PASSCoDe observation: coordinate descent tolerates
// delayed updates, and the invariant above is linear so a late Δ preserves
// it exactly).  A crashed worker loses its in-progress epoch, backs off
// exponentially, and cold-restarts from the master's state; after
// `max_restarts` crashes it is evicted and its coordinates freeze.  All of
// it is driven by a deterministic, seeded FaultInjector so every failure
// scenario is reproducible — including across checkpoint/resume.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/aggregation.hpp"
#include "cluster/common.hpp"
#include "cluster/fault_injector.hpp"
#include "cluster/network_model.hpp"
#include "cluster/partition.hpp"
#include "cluster/placement/annealer.hpp"
#include "cluster/placement/fleet.hpp"
#include "core/convergence.hpp"
#include "core/model_io.hpp"
#include "core/solver_factory.hpp"
#include "obs/attribution.hpp"

namespace tpa::cluster {

struct DistConfig {
  core::Formulation formulation = core::Formulation::kDual;
  int num_workers = 4;
  AggregationMode aggregation = AggregationMode::kAveraging;
  /// γ used when aggregation == kFixed (Smith et al. [25] treat it as a
  /// free hyper-parameter; the ablation bench sweeps it against Algorithm
  /// 4's computed optimum).
  double fixed_gamma = 1.0;
  /// Local passes per communication round (H ≥ 1).  The paper (Sect. IV.A,
  /// citing [23]) notes an infrastructure-dependent trade-off between
  /// computation and communication: more local work per round amortises the
  /// network cost but each pass uses a staler shared vector, slowing
  /// convergence per update.  H = 1 is Algorithm 3 exactly.
  int local_epochs_per_round = 1;
  /// Local solver configuration; its formulation field is overridden by
  /// `formulation` above.
  core::SolverConfig local_solver{};
  NetworkModel network = NetworkModel::ethernet_10g();
  double lambda = 1e-3;
  std::uint64_t seed = 99;

  // ---- Fault layer ----
  /// Deterministic fault schedule; defaults to no faults.
  FaultConfig faults{};
  /// Straggler deadline multiplier: the master waits
  /// grace × (slowest healthy compute + network round) before aggregating
  /// without the laggards.  Must be > 1.
  double straggler_grace = 1.5;
  /// Crashes a worker survives before permanent eviction; backoff between
  /// restart attempts doubles each time (1, 2, 4, ... epochs).
  int max_restarts = 3;

  // ---- Heterogeneous placement (DESIGN.md §14) ----
  /// Per-worker device specs.  Empty = homogeneous cluster: every worker
  /// runs `local_solver` and the placement layer is bypassed entirely, so
  /// pre-placement runs reproduce bit-for-bit.  When set, the size must
  /// equal num_workers; worker k runs fleet[k]'s solver on a partition
  /// sized by the placement plan.
  placement::FleetSpec fleet{};
  /// kUniform reproduces the legacy equal split (bit-exact: same single
  /// permutation draw from `seed`); kOptimize runs the seeded annealer over
  /// partition sizes against the placement cost model.
  placement::PlacementMode placement = placement::PlacementMode::kUniform;
  /// Seed of the annealer's proposal stream (independent of `seed`, which
  /// keeps drawing the coordinate permutation).
  std::uint64_t placement_seed = 7;
  /// Overlap each worker's delta reduce with the remaining workers' compute
  /// in the event model: the master ingests deltas as they arrive, so only
  /// the post-overlap exposed network time is charged.  For homogeneous
  /// arrival times the binomial tree is never beaten and the round time is
  /// unchanged — overlap pays off exactly when placements are imbalanced.
  bool comm_overlap = false;

  // ---- Compressed delta exchange (DESIGN.md §16) ----
  /// Quantize worker → master deltas on the reduce leg: fp16 payload with
  /// one fp32 scale per 256-entry block, FNV-checksummed in encoded form
  /// (cluster/delta_codec.hpp).  The broadcast leg stays the dense fp32
  /// model — the workers must start each round from the master's exact
  /// state.  Off by default; the uncompressed path is bit-identical to the
  /// historical exchange.
  bool compress_deltas = false;
  /// Relative sparsification threshold forwarded to the codec: entries with
  /// |Δ_i| <= threshold · max|Δ| are dropped from the payload.  0 keeps the
  /// deterministic dense-quantized layout the placement cost model prices.
  double delta_threshold = 0.0;
};

struct EpochBreakdown {
  double compute_solver = 0.0;  // slowest worker's local epoch (GPU or CPU)
  double compute_host = 0.0;    // delta/rescale vector arithmetic on hosts
  double pcie = 0.0;            // shared vector on/off the GPU (GPU workers)
  double network = 0.0;         // tree reduce + broadcast

  double total() const noexcept {
    return compute_solver + compute_host + pcie + network;
  }
};

enum class WorkerStatus {
  kActive,    // participating normally
  kInFlight,  // missed the deadline; its stale epoch is still running
  kBackoff,   // crashed; sitting out its exponential backoff
  kEvicted,   // exceeded max_restarts; coordinates frozen for good
};

const char* worker_status_name(WorkerStatus status);

class DistributedSolver {
 public:
  /// Partitions `global` across the workers and builds their local solvers.
  /// The dataset must outlive the solver.  Throws std::invalid_argument on
  /// non-positive num_workers / local_epochs_per_round, num_workers larger
  /// than the partitionable dimension, or straggler_grace <= 1.
  DistributedSolver(const data::Dataset& global, const DistConfig& config);

  int num_workers() const noexcept { return config_.num_workers; }
  core::Formulation formulation() const noexcept {
    return config_.formulation;
  }
  const core::RidgeProblem& global_problem() const noexcept {
    return global_problem_;
  }

  /// One outer (communication) epoch; report times include all four
  /// breakdown components.
  core::EpochReport run_epoch();

  /// Duality gap of the assembled global model.  A non-null pool
  /// parallelises the evaluation (see core::RidgeProblem::duality_gap).
  double duality_gap(util::ThreadPool* pool = nullptr) const;

  /// Forwards a replica-merge interval to every worker's local solver
  /// (core::Solver::set_merge_every; no-op for non-replicated locals).
  void set_merge_every(int merge_every);

  /// γ used by the most recent epoch (1/contributors under averaging; 0 for
  /// an epoch in which no worker's delta landed).
  double last_gamma() const noexcept { return last_gamma_; }
  const EpochBreakdown& last_breakdown() const noexcept {
    return last_breakdown_;
  }

  /// Round attribution (DESIGN.md §15): the most recent round's breakdown,
  /// the cumulative breakdown, and the round count behind it.  Components sum
  /// to the corresponding sim_seconds by construction — compute_solver is
  /// split into the critical worker's nominal compute plus straggler wait.
  const obs::RoundAttribution& last_attribution() const noexcept {
    return last_attr_;
  }
  const obs::RoundAttribution& attribution_totals() const noexcept {
    return attr_totals_;
  }
  std::uint64_t attribution_rounds() const noexcept { return attr_rounds_; }

  /// One-time setup: slowest worker's dataset upload (GPU locals only).
  double setup_sim_seconds() const;

  /// The coordinate partition in force (placement-sized when a fleet is
  /// configured; the legacy equal split otherwise).
  const Partition& partition() const noexcept { return partition_; }

  /// The placement plan (chosen sizes, uniform baseline, predictions, SA
  /// trajectory); nullptr when no fleet is configured.
  const placement::PlacementResult* placement_result() const noexcept {
    return placement_result_ ? &*placement_result_ : nullptr;
  }

  /// Assembles the global weight vector (β or α) from the workers' local
  /// pieces via the partition.
  std::vector<float> global_weights() const;
  const std::vector<float>& global_shared() const noexcept {
    return shared_;
  }

  // ---- Fault-layer observability ----
  /// Outer epochs completed (monotone; restore() fast-forwards it).
  int current_epoch() const noexcept { return epoch_; }
  /// Workers whose delta landed in the most recent epoch.
  int last_contributors() const noexcept { return last_contributors_; }
  /// Straggler deadline applied in the most recent epoch (seconds).
  double last_deadline_seconds() const noexcept {
    return last_deadline_seconds_;
  }
  WorkerStatus worker_status(int worker) const;
  /// Every fault / recovery / eviction event since construction.
  const std::vector<core::ClusterEvent>& events() const noexcept {
    return events_;
  }

  /// Cumulative bytes of delta payload that crossed the wire (encoded form
  /// when compression is on; the raw fp64 vector otherwise) and the raw
  /// fp64 baseline for the same deltas — the ≥2x reduction the precision
  /// ablation gates on is wire/dense.
  std::uint64_t delta_bytes_on_wire() const noexcept {
    return delta_bytes_on_wire_;
  }
  std::uint64_t delta_bytes_dense() const noexcept {
    return delta_bytes_dense_;
  }

  // ---- Checkpoint / resume ----
  /// Snapshot of the committed global state (assembled weights + shared
  /// vector + epoch counter), suitable for core::write_model_file.
  core::SavedModel checkpoint() const;

  /// Restores a checkpoint into a freshly constructed solver (same dataset
  /// and config): scatters the weights back to the workers, fast-forwards
  /// every local solver's permutation stream to the checkpoint epoch (each
  /// worker consumes exactly local_epochs_per_round permutations per outer
  /// epoch, run or skipped, so the streams realign bit-exactly), and
  /// resumes at checkpoint.epoch + 1.  A resume is a cluster-wide cold
  /// restart: all workers come back healthy and any delta that was in
  /// flight when the checkpoint was written is dropped.  Throws
  /// std::invalid_argument on formulation/dimension mismatch and
  /// std::logic_error if epochs have already run.
  void restore(const core::SavedModel& saved);

  /// Writes checkpoint() atomically to `path` (run_cluster_loop hook).
  void write_checkpoint_file(const std::string& path) const;

 private:
  /// A delta that missed its round: buffered on the "network" until the
  /// straggler finishes, then incorporated with that round's γ.
  struct PendingDelta {
    std::vector<double> dshared;   // Δ(shared) vs the broadcast it started from
    std::vector<float> dweights;   // matching local weight deltas
    int rounds_needed = 1;
    int rounds_done = 0;
    int epoch_started = 0;  // the epoch whose flow/delta arrow this closes
    std::size_t wire_bytes = 0;  // payload size, charged when it lands
  };

  struct Worker {
    WorkerCore core;
    std::vector<float> weights_start;  // per-epoch scratch
    WorkerStatus status = WorkerStatus::kActive;
    int crash_count = 0;
    int backoff_remaining = 0;
    std::optional<PendingDelta> pending;
  };

  void record_event(int worker, core::ClusterEventKind kind);
  /// Crash bookkeeping: drops in-flight work, schedules the restart backoff
  /// or evicts after too many failures.
  void handle_crash(Worker& worker, int index);

  const data::Dataset* global_;
  DistConfig config_;
  core::RidgeProblem global_problem_;
  Partition partition_;
  std::optional<placement::PlacementResult> placement_result_;
  FaultInjector injector_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<float> shared_;  // the master's (global) shared vector
  EpochBreakdown last_breakdown_{};
  obs::RoundAttribution last_attr_{};
  obs::RoundAttribution attr_totals_{};
  std::uint64_t attr_rounds_ = 0;
  double attr_clock_seconds_ = 0.0;  // monotone sim clock for attr spans
  double last_gamma_ = 1.0;
  bool gpu_local_ = false;
  core::TimingWorkload global_workload_;  // paper-scale dims for host/net
  int epoch_ = 0;
  int last_contributors_ = 0;
  double last_deadline_seconds_ = 0.0;
  std::uint64_t delta_bytes_on_wire_ = 0;
  std::uint64_t delta_bytes_dense_ = 0;
  std::vector<core::ClusterEvent> events_;
};

/// Drives a DistributedSolver like core::run_solver, recording γ, the
/// contributor count and all fault events per epoch (CheckpointConfig and
/// the loop itself live in cluster/common.hpp, shared with run_async).
/// Resumes from the solver's current epoch (nonzero after restore()).
core::ConvergenceTrace run_distributed(DistributedSolver& solver,
                                       const core::RunOptions& options,
                                       const CheckpointConfig& ckpt = {});

}  // namespace tpa::cluster
