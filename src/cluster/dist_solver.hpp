// Distributed synchronous SCD (paper Algorithms 3 and 4, Section V).
//
// K simulated workers each own a shard of the data (by feature for the
// primal, by example for the dual) and a local solver — any core::Solver,
// from sequential SCD to TPA-SCD on a simulated GPU.  Every epoch:
//   1. the master's shared vector is broadcast to the workers;
//   2. each worker runs one local epoch against its own copy;
//   3. shared-vector deltas (plus, for adaptive aggregation, a few scalars)
//      are reduced to the master;
//   4. the master scales the summed update by γ (1/K for averaging, the
//      closed-form optimum of Algorithm 4 for adaptive) and applies it;
//   5. workers rescale their local weight updates by the same γ, keeping the
//      global invariant  shared == A·(assembled weights)  exact.
// Per-epoch simulated time is broken down into local-solver compute, host
// vector arithmetic, PCIe transfers (GPU workers only) and network
// reduce/broadcast — exactly the four bars of the paper's Fig. 9.
#pragma once

#include <memory>
#include <vector>

#include "cluster/aggregation.hpp"
#include "cluster/network_model.hpp"
#include "cluster/partition.hpp"
#include "core/convergence.hpp"
#include "core/solver_factory.hpp"

namespace tpa::cluster {

struct DistConfig {
  core::Formulation formulation = core::Formulation::kDual;
  int num_workers = 4;
  AggregationMode aggregation = AggregationMode::kAveraging;
  /// γ used when aggregation == kFixed (Smith et al. [25] treat it as a
  /// free hyper-parameter; the ablation bench sweeps it against Algorithm
  /// 4's computed optimum).
  double fixed_gamma = 1.0;
  /// Local passes per communication round (H ≥ 1).  The paper (Sect. IV.A,
  /// citing [23]) notes an infrastructure-dependent trade-off between
  /// computation and communication: more local work per round amortises the
  /// network cost but each pass uses a staler shared vector, slowing
  /// convergence per update.  H = 1 is Algorithm 3 exactly.
  int local_epochs_per_round = 1;
  /// Local solver configuration; its formulation field is overridden by
  /// `formulation` above.
  core::SolverConfig local_solver{};
  NetworkModel network = NetworkModel::ethernet_10g();
  double lambda = 1e-3;
  std::uint64_t seed = 99;
};

struct EpochBreakdown {
  double compute_solver = 0.0;  // slowest worker's local epoch (GPU or CPU)
  double compute_host = 0.0;    // delta/rescale vector arithmetic on hosts
  double pcie = 0.0;            // shared vector on/off the GPU (GPU workers)
  double network = 0.0;         // tree reduce + broadcast

  double total() const noexcept {
    return compute_solver + compute_host + pcie + network;
  }
};

class DistributedSolver {
 public:
  /// Partitions `global` across the workers and builds their local solvers.
  /// The dataset must outlive the solver.
  DistributedSolver(const data::Dataset& global, const DistConfig& config);

  int num_workers() const noexcept { return config_.num_workers; }
  core::Formulation formulation() const noexcept {
    return config_.formulation;
  }
  const core::RidgeProblem& global_problem() const noexcept {
    return global_problem_;
  }

  /// One outer (communication) epoch; report times include all four
  /// breakdown components.
  core::EpochReport run_epoch();

  /// Duality gap of the assembled global model.
  double duality_gap() const;

  /// γ used by the most recent epoch (1/K under averaging).
  double last_gamma() const noexcept { return last_gamma_; }
  const EpochBreakdown& last_breakdown() const noexcept {
    return last_breakdown_;
  }

  /// One-time setup: slowest worker's dataset upload (GPU locals only).
  double setup_sim_seconds() const;

  /// Assembles the global weight vector (β or α) from the workers' local
  /// pieces via the partition.
  std::vector<float> global_weights() const;
  const std::vector<float>& global_shared() const noexcept {
    return shared_;
  }

 private:
  struct Worker {
    data::Dataset shard;
    std::unique_ptr<core::RidgeProblem> problem;
    std::unique_ptr<core::Solver> solver;
    std::vector<float> weights_start;  // per-epoch scratch
  };

  const data::Dataset* global_;
  DistConfig config_;
  core::RidgeProblem global_problem_;
  Partition partition_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<float> shared_;  // the master's (global) shared vector
  EpochBreakdown last_breakdown_{};
  double last_gamma_ = 1.0;
  bool gpu_local_ = false;
  core::TimingWorkload global_workload_;  // paper-scale dims for host/net
};

/// Drives a DistributedSolver like core::run_solver, recording γ per epoch.
core::ConvergenceTrace run_distributed(DistributedSolver& solver,
                                       const core::RunOptions& options);

}  // namespace tpa::cluster
