// Compressed delta exchange for the cluster drivers (DESIGN.md §16).
//
// Worker → master shared-vector deltas dominate the bytes the distributed
// solvers put on the wire.  The codec here halves (and more) that traffic by
// quantizing the delta to an fp16 payload with one fp32 scale per block of
// entries: scale_b = max|Δ_i| over the block, payload_i = half(Δ_i / scale_b),
// so every stored ratio sits in [-1, 1] where binary16 carries ~11 bits of
// relative precision.  An optional sparsification pass drops entries with
// |Δ_i| <= threshold · max|Δ| before quantizing, trading exactness for an
// index list that pays off once most of the delta is numerically dead.
//
// Integrity: the FNV-1a checksum the uncompressed exchange computes over the
// raw fp64 delta is preserved — it is taken over the *encoded* image (header,
// index list, fp16 payload bits, fp32 scale bits), so a single bit flipped in
// transit anywhere in the compressed representation still fails verification
// on the master and the delta is discarded, never silently dequantized.
//
// Determinism: with threshold == 0 the layout is dense-quantized — no index
// list, the payload covers every coordinate — and the wire size is a pure
// function of the dimension (quantized_delta_wire_bytes).  That is the size
// the placement cost model prices, keeping the predicted-vs-simulated drift
// audit exact on compressed fleets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/half.hpp"

namespace tpa::cluster {

struct DeltaCodecConfig {
  /// Relative sparsification threshold: entries with |Δ_i| <= threshold ·
  /// max|Δ| are dropped (decoded as exact zeros).  0 keeps every entry and
  /// selects the deterministic dense-quantized layout.
  double threshold = 0.0;
  /// Entries per fp32 scale block.  256 costs 2 bits/entry of scale
  /// overhead — ~1% over the bare fp16 payload.
  std::uint32_t block = 256;
};

/// One encoded delta, as it travels worker → master.
struct CompressedDelta {
  std::uint32_t dim = 0;    // coordinates of the decoded vector
  std::uint32_t block = 256;
  bool dense = true;        // no index list; payload covers every coordinate
  std::vector<std::uint32_t> indices;  // sparse layout only, ascending
  std::vector<linalg::Half> payload;   // quantized survivors (Δ_i / scale)
  std::vector<float> scales;           // one per `block` payload entries
  std::uint64_t checksum = 0;          // FNV-1a over the encoded image

  /// Bytes this delta occupies on the wire: header + index list + fp16
  /// payload + fp32 scales.
  std::size_t wire_bytes() const noexcept;
};

/// Wire size of the dense-quantized layout (threshold == 0) — a pure
/// function of the dimension, priced by the placement cost model.
std::size_t quantized_delta_wire_bytes(std::size_t dim,
                                       std::uint32_t block = 256) noexcept;

/// Wire size of the uncompressed exchange: the raw fp64 delta vector plus
/// its trailing checksum.  The baseline of the bytes-on-wire metric.
std::size_t dense_delta_wire_bytes(std::size_t dim) noexcept;

/// Encodes `delta`.  Throws std::invalid_argument on block == 0 or a
/// negative threshold.  The returned checksum already covers the encoding.
CompressedDelta encode_delta(std::span<const double> delta,
                             const DeltaCodecConfig& config = {});

/// FNV-1a over the encoded image; what the master recomputes on receipt.
std::uint64_t compressed_delta_checksum(const CompressedDelta& delta);

/// Dequantizes into `out` (overwrites; dropped entries decode to 0).
/// Throws std::invalid_argument if out.size() != delta.dim or the encoding
/// is structurally inconsistent.
void decode_delta(const CompressedDelta& delta, std::span<double> out);
std::vector<double> decode_delta(const CompressedDelta& delta);

/// Simulated transit corruption: flips one bit of the quantized payload
/// (falling back to an index, then a scale, for empty payloads) — the
/// compressed analogue of corrupt_in_transit on raw deltas.  The checksum
/// field is left as sent, so verification must fail.
void corrupt_compressed_in_transit(CompressedDelta& delta);

}  // namespace tpa::cluster
