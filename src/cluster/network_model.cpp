#include "cluster/network_model.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace tpa::cluster {

void NetworkModel::validate() const {
  if (!(bandwidth_gbps > 0.0)) {
    throw std::invalid_argument(
        "NetworkModel '" + name + "': bandwidth must be positive, got " +
        std::to_string(bandwidth_gbps) + " GB/s");
  }
  if (latency_s < 0.0) {
    throw std::invalid_argument(
        "NetworkModel '" + name + "': latency must be non-negative, got " +
        std::to_string(latency_s) + " s");
  }
}

NetworkModel NetworkModel::ethernet_10g() {
  return NetworkModel{"10GbE", 50e-6, 1.05};
}

NetworkModel NetworkModel::ethernet_100g() {
  return NetworkModel{"100GbE", 30e-6, 10.5};
}

NetworkModel NetworkModel::pcie_peer() {
  return NetworkModel{"PCIe gen3 x16", 10e-6, 11.0};
}

double NetworkModel::point_to_point_seconds(std::size_t bytes) const
    noexcept {
  return latency_s + static_cast<double>(bytes) / (bandwidth_gbps * 1e9);
}

double NetworkModel::reduce_seconds(std::size_t bytes, int workers) const
    noexcept {
  if (workers <= 1) return 0.0;
  // Pipelined binomial tree (Open MPI's large-message algorithms): latency
  // grows with tree depth, bandwidth cost is paid once.
  const double levels = std::ceil(std::log2(static_cast<double>(workers)));
  return levels * latency_s +
         static_cast<double>(bytes) / (bandwidth_gbps * 1e9);
}

double NetworkModel::broadcast_seconds(std::size_t bytes, int workers) const
    noexcept {
  return reduce_seconds(bytes, workers);  // same binomial-tree shape
}

double NetworkModel::allreduce_seconds(std::size_t bytes, int workers) const
    noexcept {
  return reduce_seconds(bytes, workers) + broadcast_seconds(bytes, workers);
}

}  // namespace tpa::cluster
