// Cost-model drift auditor (DESIGN.md §15): compares the PlacementCostModel's
// predicted per-term round decomposition against the measured round
// attribution of the engine it claims to price, term by term.
//
// The cost model and the round engine deliberately share their pricing
// formulas, so on a fault-free run the drift is float-rounding noise; the
// auditor exists to keep it that way.  Any future change that edits one side
// without the other — a new network term, a different host-pass count —
// shows up as per-term relative error, and the placement_sweep CI gate
// refuses it.  Straggler wait and stale overhead are measured-only terms
// (the cost model prices a fault-free round), so the comparison covers
// compute/host/pcie/network plus their fault-free-comparable total.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/placement/cost_model.hpp"
#include "obs/attribution.hpp"

namespace tpa::cluster::placement {

struct DriftTerm {
  std::string name;
  double predicted_seconds = 0.0;
  double measured_seconds = 0.0;
  /// |predicted − measured| with a bounded denominator: max(measured term,
  /// 1% of the measured comparable total), so a near-zero term (pcie on a
  /// CPU fleet) cannot blow the ratio up over rounding noise.
  double rel_error = 0.0;
};

struct DriftReport {
  std::vector<DriftTerm> terms;  // compute, host, pcie, network, total
  double max_rel_error = 0.0;
  std::uint64_t rounds = 0;
};

/// Audits `predicted` (one round) against the engine's cumulative measured
/// attribution over `rounds` rounds (per-round means are compared).
/// Returns an empty report when rounds == 0.
DriftReport audit_placement_drift(const RoundPrediction& predicted,
                                  const obs::RoundAttribution& measured_totals,
                                  std::uint64_t rounds);

/// Records the report as placement.drift.* gauges: per-term
/// predicted/measured seconds and relative error, plus the max.
void record_drift_obs(const DriftReport& report);

/// Human-readable per-term table, e.g. for placement_sweep / tpascd_train.
void print_drift_report(std::ostream& out, const DriftReport& report);

}  // namespace tpa::cluster::placement
