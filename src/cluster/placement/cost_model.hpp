// Unified round-pricing model for heterogeneous placements (DESIGN.md §14).
//
// A placement is a vector of partition sizes, one per worker slot.  The cost
// model prices one synchronous round of the distributed solver under that
// placement using exactly the formulas the simulated round engine charges:
// per-device local-epoch times (CpuCostModel / GpuTimingModel via
// DeviceSpec::epoch_seconds), host vector arithmetic, PCIe staging when any
// slot is a GPU, and NetworkModel tree reduce/broadcast — optionally with
// the comm/compute-overlap pricing, where the master ingests each worker's
// delta as it arrives instead of waiting for the slowest worker before
// starting the reduce.  Because the objective matches the engine, the
// annealer optimizes the real simulated round time, and `tpascd_train`
// can report predicted vs. simulated side by side.
#pragma once

#include <span>
#include <vector>

#include "cluster/network_model.hpp"
#include "cluster/placement/fleet.hpp"
#include "core/cost_model.hpp"
#include "data/dataset.hpp"

namespace tpa::cluster::placement {

using data::Index;

/// The partition sizes Partition::random's round-robin deal produces:
/// sizes[k] = |{i < n : i mod K == k}| (first n mod K workers get the ceil).
std::vector<Index> uniform_partition_sizes(Index num_coordinates,
                                           int workers);

/// Master finish time for ingesting all worker deltas when the reduce
/// overlaps compute: `arrivals[k]` is the simulated time worker k's delta
/// hits the wire.  The result is min(tree reduce after the last arrival,
/// serialized point-to-point ingest folded over the sorted arrivals) — the
/// master can either wait and run the binomial tree, or stream deltas in as
/// they land; the event model takes whichever finishes first.  Returns the
/// last arrival unchanged for K <= 1 (nothing to reduce).
double overlapped_reduce_seconds(std::vector<double> arrivals,
                                 std::size_t bytes, const NetworkModel& net);

/// One simulated round, broken down the same way EpochBreakdown is.
struct RoundPrediction {
  double compute_seconds = 0.0;  // slowest worker's local passes
  double host_seconds = 0.0;     // master/worker vector arithmetic
  double pcie_seconds = 0.0;     // pinned staging (GPU fleets only)
  double network_seconds = 0.0;  // exposed (post-overlap) reduce + broadcast

  double total() const noexcept {
    return compute_seconds + host_seconds + pcie_seconds + network_seconds;
  }
};

struct CostOptions {
  int local_passes = 1;       // DistConfig::local_epochs_per_round
  bool comm_overlap = false;  // price the overlapped reduce
  /// Host-side vector arithmetic cost (SolverConfig::cpu_cost's figure).
  double seconds_per_vector_element = 1.0e-9;
  /// Reduce-leg payload bytes per worker delta; 0 prices the legacy dense
  /// fp32 shared vector.  The drivers set the deterministic dense-quantized
  /// wire size (cluster/delta_codec.hpp) when compressed delta exchange is
  /// on, so predictions track compressed rounds and the drift audit stays
  /// exact.  The broadcast leg is always the dense model.
  std::size_t delta_wire_bytes = 0;
};

class PlacementCostModel {
 public:
  /// `partition_dim` is the actual partitionable dimension — candidate size
  /// vectors tile it, so the planned sizes feed Partition::random_weighted
  /// directly.  `global` is the full dataset's (possibly paper-scale)
  /// timing workload; per-worker workloads are scaled by each slot's
  /// fraction of `partition_dim`, mirroring inherit_paper_scale on the real
  /// shards.
  PlacementCostModel(FleetSpec fleet, Index partition_dim,
                     core::TimingWorkload global, NetworkModel network,
                     CostOptions options);

  int num_workers() const noexcept {
    return static_cast<int>(fleet_.size());
  }
  Index partition_dim() const noexcept { return partition_dim_; }
  const FleetSpec& fleet() const noexcept { return fleet_; }
  const core::TimingWorkload& workload() const noexcept { return global_; }
  const CostOptions& options() const noexcept { return options_; }

  /// Worker k's workload when it owns `size` of the partitioned dimension.
  core::TimingWorkload worker_workload(Index size) const noexcept;

  /// Per-worker local compute times (local_passes epochs each) for the
  /// candidate sizes.  sizes.size() must equal the fleet size.
  std::vector<double> worker_compute_seconds(
      std::span<const Index> sizes) const;

  /// Full round price for the candidate sizes.
  RoundPrediction price(std::span<const Index> sizes) const;

  /// Shorthand for price(sizes).total() — the annealer's objective.
  double round_seconds(std::span<const Index> sizes) const;

 private:
  FleetSpec fleet_;
  Index partition_dim_ = 0;
  core::TimingWorkload global_;
  NetworkModel network_;
  CostOptions options_;
  bool has_gpu_ = false;
};

}  // namespace tpa::cluster::placement
