#include "cluster/placement/fleet.hpp"

#include <sstream>
#include <stdexcept>

#include "gpusim/timing_model.hpp"

namespace tpa::cluster::placement {
namespace {

DeviceSpec parse_device(const std::string& token) {
  if (token == "titanx") return DeviceSpec::titan_x();
  if (token == "m4000") return DeviceSpec::m4000();
  if (token == "cpu") return DeviceSpec::cpu_pool(1);
  if (token.rfind("cpu:", 0) == 0) {
    const auto threads_str = token.substr(4);
    std::size_t consumed = 0;
    int threads = 0;
    try {
      threads = std::stoi(threads_str, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != threads_str.size() || threads <= 0) {
      throw std::invalid_argument(
          "fleet spec: cpu pool needs a positive thread count, got 'cpu:" +
          threads_str + "'");
    }
    return DeviceSpec::cpu_pool(threads);
  }
  throw std::invalid_argument(
      "fleet spec: unknown device '" + token +
      "' (expected cpu[:threads] | m4000 | titanx)");
}

}  // namespace

core::SolverKind DeviceSpec::solver_kind() const noexcept {
  if (kind == Kind::kGpu) return gpu_solver;
  return threads > 1 ? core::SolverKind::kAsyncReplicated
                     : core::SolverKind::kSequential;
}

core::SolverConfig DeviceSpec::solver_config(
    const core::SolverConfig& base) const {
  core::SolverConfig config = base;
  config.kind = solver_kind();
  config.threads = threads;
  config.cpu_cost = cpu;
  return config;
}

double DeviceSpec::epoch_seconds(const core::TimingWorkload& w) const {
  if (kind == Kind::kGpu) {
    gpusim::EpochWorkload gw;
    gw.nnz = w.nnz;
    gw.num_coordinates = w.num_coordinates;
    gw.shared_dim = w.shared_dim;
    return gpusim::GpuTimingModel(gpu).epoch_seconds(gw);
  }
  const double sequential = cpu.epoch_seconds_sequential(w);
  return threads > 1 ? sequential / cpu.replicated_speedup(threads)
                     : sequential;
}

DeviceSpec DeviceSpec::cpu_pool(int threads) {
  DeviceSpec spec;
  spec.kind = Kind::kCpuPool;
  spec.threads = threads;
  spec.label = threads > 1 ? "cpu:" + std::to_string(threads) : "cpu";
  return spec;
}

DeviceSpec DeviceSpec::titan_x() {
  DeviceSpec spec;
  spec.kind = Kind::kGpu;
  spec.label = "titanx";
  spec.gpu_solver = core::SolverKind::kTpaTitanX;
  spec.gpu = gpusim::DeviceSpec::titan_x();
  return spec;
}

DeviceSpec DeviceSpec::m4000() {
  DeviceSpec spec;
  spec.kind = Kind::kGpu;
  spec.label = "m4000";
  spec.gpu_solver = core::SolverKind::kTpaM4000;
  spec.gpu = gpusim::DeviceSpec::quadro_m4000();
  return spec;
}

FleetSpec parse_fleet_spec(const std::string& spec) {
  FleetSpec fleet;
  std::stringstream stream(spec);
  std::string group;
  while (std::getline(stream, group, ',')) {
    if (group.empty()) continue;
    const auto x = group.find('x');
    if (x == std::string::npos || x == 0) {
      throw std::invalid_argument(
          "fleet spec: expected <count>x<device>, got '" + group + "'");
    }
    const auto count_str = group.substr(0, x);
    std::size_t consumed = 0;
    int count = 0;
    try {
      count = std::stoi(count_str, &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    if (consumed != count_str.size() || count <= 0) {
      throw std::invalid_argument(
          "fleet spec: count must be a positive integer in '" + group + "'");
    }
    const auto device = parse_device(group.substr(x + 1));
    fleet.insert(fleet.end(), static_cast<std::size_t>(count), device);
  }
  if (fleet.empty()) {
    throw std::invalid_argument("fleet spec: no devices in '" + spec + "'");
  }
  return fleet;
}

std::string fleet_summary(const FleetSpec& fleet) {
  // Re-run-length-encode consecutive identical labels.
  std::string out;
  std::size_t i = 0;
  while (i < fleet.size()) {
    std::size_t j = i;
    while (j < fleet.size() && fleet[j].label == fleet[i].label) ++j;
    if (!out.empty()) out += " + ";
    out += std::to_string(j - i) + "x" + fleet[i].label;
    i = j;
  }
  out += " (" + std::to_string(fleet.size()) + " workers)";
  return out;
}

bool fleet_has_gpu(const FleetSpec& fleet) {
  for (const auto& device : fleet) {
    if (device.is_gpu()) return true;
  }
  return false;
}

}  // namespace tpa::cluster::placement
