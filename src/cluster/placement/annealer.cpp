#include "cluster/placement/annealer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace tpa::cluster::placement {
namespace {

// SA trajectory instants land on their own virtual track so they don't
// clutter the master's round timeline.
constexpr std::int32_t kPlacementTrack = 1900;

}  // namespace

PlacementMode parse_placement_mode(const std::string& text) {
  if (text == "uniform") return PlacementMode::kUniform;
  if (text == "optimize") return PlacementMode::kOptimize;
  throw std::invalid_argument("unknown placement mode '" + text +
                              "' (expected uniform|optimize)");
}

const char* placement_mode_name(PlacementMode mode) {
  return mode == PlacementMode::kOptimize ? "optimize" : "uniform";
}

PlacementResult optimize_placement(const PlacementCostModel& model,
                                   const AnnealConfig& config) {
  if (config.iterations < 0) {
    throw std::invalid_argument(
        "optimize_placement: iterations must be >= 0");
  }
  if (config.initial_fraction <= 0.0 ||
      config.final_fraction <= 0.0 ||
      config.final_fraction > config.initial_fraction) {
    throw std::invalid_argument(
        "optimize_placement: need 0 < final_fraction <= initial_fraction");
  }

  const auto workers = static_cast<std::size_t>(model.num_workers());
  const Index dim = model.partition_dim();
  PlacementResult result;
  result.mode = PlacementMode::kOptimize;
  result.seed = config.seed;
  result.uniform_sizes =
      uniform_partition_sizes(dim, static_cast<int>(workers));
  result.uniform_predicted = model.price(result.uniform_sizes);
  const double uniform_cost = result.uniform_predicted.total();

  // A single worker (or a dimension too small to rebalance) has nothing to
  // optimize: the uniform split is the only placement.
  if (workers <= 1 || dim <= static_cast<Index>(workers)) {
    result.sizes = result.uniform_sizes;
    result.predicted = result.uniform_predicted;
    return result;
  }

  util::Rng rng(config.seed);
  std::vector<Index> current = result.uniform_sizes;
  double current_cost = uniform_cost;
  std::vector<Index> best = current;
  double best_cost = current_cost;

  const double t0 = config.initial_fraction * uniform_cost;
  const double t_final = config.final_fraction * uniform_cost;
  const double cool =
      config.iterations > 1
          ? std::pow(t_final / t0, 1.0 / (config.iterations - 1))
          : 1.0;

  result.trajectory.reserve(static_cast<std::size_t>(config.iterations));
  double temperature = t0;
  std::vector<Index> candidate;
  for (int iter = 0; iter < config.iterations; ++iter) {
    // Proposal: move a block of coordinates from one worker to another.
    const auto from = static_cast<std::size_t>(rng.uniform_index(workers));
    auto to = static_cast<std::size_t>(rng.uniform_index(workers - 1));
    if (to >= from) ++to;
    candidate = current;
    const Index movable = candidate[from] - 1;  // every worker keeps >= 1
    if (movable > 0) {
      // Block size up to 1/4 of the donor: large enough to escape the
      // uniform basin early, small enough to fine-tune once cooled.
      const Index cap = std::max<Index>(1, candidate[from] / 4);
      const Index amount = static_cast<Index>(
          1 + rng.uniform_index(std::min<Index>(movable, cap)));
      candidate[from] -= amount;
      candidate[to] += amount;
    }

    const double candidate_cost = model.round_seconds(candidate);
    const double delta = candidate_cost - current_cost;
    const bool accept =
        delta <= 0.0 ||
        (temperature > 0.0 && rng.uniform() < std::exp(-delta / temperature));
    if (accept) {
      current = candidate;
      current_cost = candidate_cost;
      ++result.sa_accepted;
      if (current_cost < best_cost) {
        best = current;
        best_cost = current_cost;
      }
    }

    TrajectoryPoint point;
    point.iteration = iter;
    point.candidate_seconds = candidate_cost;
    point.current_seconds = current_cost;
    point.best_seconds = best_cost;
    point.accepted = accept;
    result.trajectory.push_back(point);

    temperature *= cool;
  }
  result.sa_iterations = config.iterations;

  // The annealer must never lose to the baseline: take its best state only
  // when strictly cheaper than uniform.
  if (best_cost < uniform_cost) {
    result.sizes = std::move(best);
    result.predicted = model.price(result.sizes);
    result.optimized = result.sizes != result.uniform_sizes;
  } else {
    result.sizes = result.uniform_sizes;
    result.predicted = result.uniform_predicted;
  }
  return result;
}

PlacementResult plan_placement(const PlacementCostModel& model,
                               PlacementMode mode,
                               const AnnealConfig& config) {
  if (mode == PlacementMode::kOptimize) {
    return optimize_placement(model, config);
  }
  const Index dim = model.partition_dim();
  PlacementResult result;
  result.mode = PlacementMode::kUniform;
  result.seed = config.seed;
  result.uniform_sizes = uniform_partition_sizes(dim, model.num_workers());
  result.uniform_predicted = model.price(result.uniform_sizes);
  result.sizes = result.uniform_sizes;
  result.predicted = result.uniform_predicted;
  return result;
}

void record_placement_obs(const PlacementResult& result) {
  auto& metrics = obs::metrics();
  metrics.gauge("placement.predicted_round_seconds")
      .set(result.predicted.total());
  metrics.gauge("placement.uniform_round_seconds")
      .set(result.uniform_predicted.total());
  metrics.gauge("placement.predicted_speedup")
      .set(result.predicted_speedup());
  metrics.gauge("placement.optimized").set(result.optimized ? 1.0 : 0.0);
  metrics.counter("placement.sa_iterations")
      .add(static_cast<std::uint64_t>(result.sa_iterations));
  metrics.counter("placement.sa_accepted")
      .add(static_cast<std::uint64_t>(result.sa_accepted));

  if (!obs::trace_enabled()) return;
  obs::set_track_name(kPlacementTrack, "placement/sa");
  for (const auto& point : result.trajectory) {
    // One instant per step; the arg carries the best-so-far cost in
    // nanoseconds so the trajectory is plottable straight off the trace.
    obs::trace_instant(point.accepted ? "sa/accept" : "sa/reject",
                       kPlacementTrack,
                       static_cast<std::int64_t>(point.best_seconds * 1e9));
  }
}

}  // namespace tpa::cluster::placement
