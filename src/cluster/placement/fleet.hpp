// Heterogeneous fleet description for the placement optimizer (DESIGN.md
// §14).
//
// The paper's distributed hardware is wildly asymmetric — four Xeon boxes
// over 10 GbE in one experiment, four Titan X GPUs over PCIe in another —
// yet the cluster drivers historically handed every worker an equal
// partition.  A FleetSpec names what each worker slot actually is: a CPU
// thread pool priced by core::CpuCostModel (replicated SCD locally, PR 5),
// or a simulated GPU priced by gpusim::GpuTimingModel.  The placement layer
// uses the per-device epoch_seconds() to size partitions so every device
// finishes its local epoch at roughly the same time.
#pragma once

#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/solver_factory.hpp"
#include "gpusim/device.hpp"

namespace tpa::cluster::placement {

/// One worker slot of a heterogeneous fleet.  (Distinct from
/// gpusim::DeviceSpec, which describes only the GPU silicon; this wraps
/// either that or a CPU pool behind one timing interface.)
struct DeviceSpec {
  enum class Kind { kCpuPool, kGpu };

  Kind kind = Kind::kCpuPool;
  std::string label;  // "cpu:4", "m4000", "titanx" — the --fleet token

  // CPU pool: `threads` lanes of replicated SCD (threads == 1 runs the
  // sequential solver) priced by `cpu`.
  int threads = 1;
  core::CpuCostModel cpu{};

  // GPU: the solver kind selects the gpusim device inside make_solver; the
  // matching silicon spec feeds the placement cost model.
  core::SolverKind gpu_solver = core::SolverKind::kTpaTitanX;
  gpusim::DeviceSpec gpu{};

  bool is_gpu() const noexcept { return kind == Kind::kGpu; }

  /// Local-solver kind this device runs (seq / rep / tpa-*).
  core::SolverKind solver_kind() const noexcept;

  /// Per-slot SolverConfig: `base` supplies the shared fields (seed base,
  /// merge_every, ...); kind, threads and cpu_cost come from the device.
  core::SolverConfig solver_config(const core::SolverConfig& base) const;

  /// Simulated seconds for ONE local epoch over `w` on this device — the
  /// same formula the device's solver charges (CpuCostModel sequential time
  /// over the replicated speed-up, or GpuTimingModel::epoch_seconds), so the
  /// optimizer's objective matches the simulated round engine.
  double epoch_seconds(const core::TimingWorkload& w) const;

  static DeviceSpec cpu_pool(int threads);
  static DeviceSpec titan_x();
  static DeviceSpec m4000();
};

/// A fleet is one DeviceSpec per worker slot; empty = homogeneous cluster
/// configured the pre-placement way (DistConfig::local_solver everywhere).
using FleetSpec = std::vector<DeviceSpec>;

/// Parses a --fleet string: comma-separated `<count>x<device>` groups where
/// device is `cpu[:threads]` | `m4000` | `titanx`, e.g. "4xtitanx,4xcpu:4"
/// = four Titan X workers plus four 4-thread CPU pool workers (16 cores).
/// Throws std::invalid_argument on malformed specs, unknown devices,
/// non-positive counts/threads, or an empty fleet.
FleetSpec parse_fleet_spec(const std::string& spec);

/// Human-readable one-liner, e.g. "4xtitanx + 4xcpu:4 (8 workers)".
std::string fleet_summary(const FleetSpec& fleet);

/// True if any slot is a GPU (the round engine charges PCIe transfers).
bool fleet_has_gpu(const FleetSpec& fleet);

}  // namespace tpa::cluster::placement
