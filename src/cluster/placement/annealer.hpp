// Seeded simulated-annealing search over partition sizes (DESIGN.md §14).
//
// State = one partition size per worker slot (each >= 1, summing to the
// partitioned dimension); the coordinate-block→worker assignment follows
// from the sizes through Partition::random_weighted's seeded deal, so the
// search space is exactly the sizes.  The chain starts from the uniform
// split (the always-reported baseline), proposes moving a block of
// coordinates from one worker to another, accepts by the Metropolis rule
// under a geometric cooling schedule, and returns the best state ever
// visited — but only when it is strictly cheaper than uniform, so
// `optimize` can never do worse than the status quo.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/placement/cost_model.hpp"

namespace tpa::cluster::placement {

enum class PlacementMode { kUniform, kOptimize };

/// Parses "uniform" | "optimize"; throws std::invalid_argument otherwise.
PlacementMode parse_placement_mode(const std::string& text);
const char* placement_mode_name(PlacementMode mode);

struct AnnealConfig {
  int iterations = 600;
  /// Initial temperature as a fraction of the uniform round cost; the
  /// schedule cools geometrically to `final_fraction` of that.
  double initial_fraction = 0.25;
  double final_fraction = 1e-4;
  std::uint64_t seed = 7;
};

/// One accepted-or-rejected SA step, for the exported trajectory.
struct TrajectoryPoint {
  int iteration = 0;
  double candidate_seconds = 0.0;
  double current_seconds = 0.0;
  double best_seconds = 0.0;
  bool accepted = false;
};

struct PlacementResult {
  PlacementMode mode = PlacementMode::kUniform;
  std::uint64_t seed = 0;
  /// The chosen partition sizes (== uniform_sizes unless the annealer found
  /// a strictly cheaper placement).
  std::vector<Index> sizes;
  std::vector<Index> uniform_sizes;
  RoundPrediction predicted;          // for `sizes`
  RoundPrediction uniform_predicted;  // the baseline, always reported
  /// True iff sizes != uniform_sizes (the annealer won).
  bool optimized = false;
  int sa_iterations = 0;
  int sa_accepted = 0;
  std::vector<TrajectoryPoint> trajectory;

  double predicted_speedup() const noexcept {
    const double mine = predicted.total();
    return mine > 0.0 ? uniform_predicted.total() / mine : 1.0;
  }
};

/// Runs the annealer against `model`'s objective.  Deterministic in
/// (model, config): the proposal stream comes from a util::Rng seeded with
/// config.seed only.
PlacementResult optimize_placement(const PlacementCostModel& model,
                                   const AnnealConfig& config);

/// Entry point the drivers use: uniform mode skips the search and returns
/// the baseline as the choice; optimize mode runs the annealer.
PlacementResult plan_placement(const PlacementCostModel& model,
                               PlacementMode mode,
                               const AnnealConfig& config);

/// Records the planning outcome on the obs layer: placement.* gauges
/// (predicted/uniform round seconds, speedup, accepted moves) and one trace
/// instant per trajectory point on the master track, so --metrics-out /
/// --trace-out runs carry the SA trajectory.
void record_placement_obs(const PlacementResult& result);

}  // namespace tpa::cluster::placement
