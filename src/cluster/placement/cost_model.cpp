#include "cluster/placement/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "gpusim/device.hpp"

namespace tpa::cluster::placement {

std::vector<Index> uniform_partition_sizes(Index num_coordinates,
                                           int workers) {
  if (workers <= 0) {
    throw std::invalid_argument(
        "uniform_partition_sizes: workers must be positive");
  }
  std::vector<Index> sizes(static_cast<std::size_t>(workers));
  const auto k = static_cast<Index>(workers);
  const Index base = num_coordinates / k;
  const Index remainder = num_coordinates % k;
  for (Index i = 0; i < k; ++i) {
    sizes[i] = base + (i < remainder ? 1 : 0);
  }
  return sizes;
}

double overlapped_reduce_seconds(std::vector<double> arrivals,
                                 std::size_t bytes,
                                 const NetworkModel& net) {
  if (arrivals.empty()) return 0.0;
  std::sort(arrivals.begin(), arrivals.end());
  const double last = arrivals.back();
  if (arrivals.size() <= 1) return last;

  // Option A: wait for the last delta, then run the binomial tree.
  const double tree_done =
      last + net.reduce_seconds(bytes, static_cast<int>(arrivals.size()));

  // Option B: stream deltas into the master as they land — each ingest is a
  // point-to-point transfer, serialized on the master's link, overlapping
  // with the still-computing workers.
  double busy = 0.0;
  for (const double arrival : arrivals) {
    busy = std::max(busy, arrival) + net.point_to_point_seconds(bytes);
  }
  return std::min(tree_done, busy);
}

PlacementCostModel::PlacementCostModel(FleetSpec fleet, Index partition_dim,
                                       core::TimingWorkload global,
                                       NetworkModel network,
                                       CostOptions options)
    : fleet_(std::move(fleet)),
      partition_dim_(partition_dim),
      global_(global),
      network_(network),
      options_(options) {
  if (fleet_.empty()) {
    throw std::invalid_argument("PlacementCostModel: empty fleet");
  }
  if (partition_dim_ < static_cast<Index>(fleet_.size())) {
    throw std::invalid_argument(
        "PlacementCostModel: partition_dim must cover every worker");
  }
  if (options_.local_passes < 1) {
    throw std::invalid_argument(
        "PlacementCostModel: local_passes must be >= 1");
  }
  network_.validate();
  has_gpu_ = fleet_has_gpu(fleet_);
}

core::TimingWorkload PlacementCostModel::worker_workload(Index size) const
    noexcept {
  // Mirror inherit_paper_scale: the partitioned dimension and nnz shrink by
  // the worker's fraction of the actual partitionable dimension; the shared
  // vector stays global.
  core::TimingWorkload w = global_;
  const double fraction =
      static_cast<double>(size) / static_cast<double>(partition_dim_);
  w.nnz = static_cast<std::uint64_t>(static_cast<double>(global_.nnz) *
                                     fraction);
  w.num_coordinates = static_cast<std::uint64_t>(
      static_cast<double>(global_.num_coordinates) * fraction);
  return w;
}

std::vector<double> PlacementCostModel::worker_compute_seconds(
    std::span<const Index> sizes) const {
  if (sizes.size() != fleet_.size()) {
    throw std::invalid_argument(
        "PlacementCostModel: sizes/fleet length mismatch");
  }
  std::vector<double> seconds(sizes.size(), 0.0);
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    seconds[k] = static_cast<double>(options_.local_passes) *
                 fleet_[k].epoch_seconds(worker_workload(sizes[k]));
  }
  return seconds;
}

RoundPrediction PlacementCostModel::price(
    std::span<const Index> sizes) const {
  const auto compute = worker_compute_seconds(sizes);
  const int workers = num_workers();
  const std::size_t shared_bytes =
      static_cast<std::size_t>(global_.shared_dim) * sizeof(float);

  RoundPrediction prediction;
  prediction.compute_seconds =
      *std::max_element(compute.begin(), compute.end());

  // Host arithmetic mirrors the round engine: delta formation and γ-rescale
  // are 3 passes over the shared vector plus 3 passes over the largest local
  // weight vector (workers run in parallel; the slowest gates the round).
  const Index max_size = *std::max_element(sizes.begin(), sizes.end());
  const double max_coords =
      static_cast<double>(worker_workload(max_size).num_coordinates);
  prediction.host_seconds =
      options_.seconds_per_vector_element *
      (3.0 * static_cast<double>(global_.shared_dim) + 3.0 * max_coords);

  if (has_gpu_) {
    gpusim::PcieLink pcie;
    prediction.pcie_seconds =
        2.0 * pcie.transfer_seconds(shared_bytes, /*pinned=*/true);
  }

  const std::size_t delta_bytes =
      options_.delta_wire_bytes > 0 ? options_.delta_wire_bytes
                                    : shared_bytes;
  const double tree_reduce = network_.reduce_seconds(delta_bytes, workers);
  const double broadcast = network_.broadcast_seconds(shared_bytes, workers);
  if (options_.comm_overlap && workers > 1) {
    const double reduce_done =
        overlapped_reduce_seconds(compute, delta_bytes, network_);
    const double exposed =
        std::max(0.0, reduce_done - prediction.compute_seconds);
    prediction.network_seconds = exposed + broadcast;
  } else {
    prediction.network_seconds = tree_reduce + broadcast;
  }
  return prediction;
}

double PlacementCostModel::round_seconds(std::span<const Index> sizes) const {
  return price(sizes).total();
}

}  // namespace tpa::cluster::placement
