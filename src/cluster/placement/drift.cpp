#include "cluster/placement/drift.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "obs/metrics_registry.hpp"
#include "util/table.hpp"

namespace tpa::cluster::placement {

DriftReport audit_placement_drift(const RoundPrediction& predicted,
                                  const obs::RoundAttribution& measured_totals,
                                  std::uint64_t rounds) {
  DriftReport report;
  report.rounds = rounds;
  if (rounds == 0) return report;
  const double inv = 1.0 / static_cast<double>(rounds);

  // Per-round measured means for the terms the cost model prices; straggler
  // wait and stale overhead are fault-time, outside the model's scope.
  const double measured[4] = {
      measured_totals.compute_seconds * inv,
      measured_totals.host_seconds * inv,
      measured_totals.pcie_seconds * inv,
      measured_totals.network_seconds * inv,
  };
  const double predicted_terms[4] = {
      predicted.compute_seconds,
      predicted.host_seconds,
      predicted.pcie_seconds,
      predicted.network_seconds,
  };
  const double measured_total =
      measured[0] + measured[1] + measured[2] + measured[3];
  const double floor = 0.01 * measured_total;

  const char* names[4] = {"compute", "host", "pcie", "network"};
  for (int i = 0; i < 4; ++i) {
    DriftTerm term;
    term.name = names[i];
    term.predicted_seconds = predicted_terms[i];
    term.measured_seconds = measured[i];
    const double denom = std::max(measured[i], floor);
    term.rel_error = denom > 0.0
                         ? std::abs(predicted_terms[i] - measured[i]) / denom
                         : 0.0;
    report.max_rel_error = std::max(report.max_rel_error, term.rel_error);
    report.terms.push_back(std::move(term));
  }

  DriftTerm total;
  total.name = "total";
  total.predicted_seconds = predicted.total();
  total.measured_seconds = measured_total;
  total.rel_error =
      measured_total > 0.0
          ? std::abs(total.predicted_seconds - measured_total) / measured_total
          : 0.0;
  report.max_rel_error = std::max(report.max_rel_error, total.rel_error);
  report.terms.push_back(std::move(total));
  return report;
}

void record_drift_obs(const DriftReport& report) {
  auto& registry = obs::metrics();
  for (const auto& term : report.terms) {
    registry.gauge("placement.drift.predicted." + term.name + "_seconds")
        .set(term.predicted_seconds);
    registry.gauge("placement.drift.measured." + term.name + "_seconds")
        .set(term.measured_seconds);
    registry.gauge("placement.drift." + term.name + "_rel_error")
        .set(term.rel_error);
  }
  registry.gauge("placement.drift.max_rel_error").set(report.max_rel_error);
  registry.gauge("placement.drift.rounds")
      .set(static_cast<double>(report.rounds));
}

void print_drift_report(std::ostream& out, const DriftReport& report) {
  out << "cost-model drift (" << report.rounds << " rounds measured)\n";
  util::Table table({"term", "predicted s/round", "measured s/round",
                     "rel error"});
  for (const auto& term : report.terms) {
    table.begin_row();
    table.add_cell(term.name);
    table.add_number(term.predicted_seconds);
    table.add_number(term.measured_seconds);
    table.add_number(term.rel_error);
  }
  table.print(out);
}

}  // namespace tpa::cluster::placement
