// Aggregation of worker updates (paper Section IV.B).
//
// Averaging applies γ = 1/K to the summed updates (Algorithm 3).  Adaptive
// aggregation (Algorithm 4, the paper's second contribution) computes the
// exact line-search optimum of the objective along the aggregated update
// direction from a handful of scalars that workers can reduce alongside the
// shared-vector deltas.
//
// Derivations (verified by property test against grid search):
//   primal:  γ* = (⟨y − w, Δw⟩ − Nλ⟨β, Δβ⟩) / (‖Δw‖² + Nλ‖Δβ‖²)
//   dual:    γ̄* = (⟨Δα, y⟩ − N⟨Δα, α⟩ − (1/λ)⟨Δw̄, w̄⟩)
//                 / ((1/λ)‖Δw̄‖² + N‖Δα‖²)
// Note two typos in the paper's printed formulas: eq. (7) omits the ⟨y, Δw⟩
// term (correct only if its w denotes the residual Aβ − y), and the dual
// denominator prints N‖α‖² where the derivative gives N‖Δα‖².
#pragma once

namespace tpa::cluster {

enum class AggregationMode {
  kAveraging,  // γ = 1/K
  kAdaptive,   // exact per-epoch line search
  kFixed,      // user-chosen constant γ (the [25]-style free parameter)
};

inline const char* aggregation_name(AggregationMode mode) {
  switch (mode) {
    case AggregationMode::kAveraging:
      return "averaging";
    case AggregationMode::kAdaptive:
      return "adaptive";
    case AggregationMode::kFixed:
      return "fixed";
  }
  return "?";
}

/// Scalars reduced on the master for the primal γ*.  The β terms are sums of
/// per-worker local contributions (workers own disjoint coordinates, so
/// ⟨β, Δβ⟩ = Σₖ⟨βₖ, Δβₖ⟩ and ‖Δβ‖² = Σₖ‖Δβₖ‖²).
struct PrimalGammaTerms {
  double y_minus_w_dot_dw = 0.0;  // ⟨y − w, Δw⟩
  double beta_dot_dbeta = 0.0;    // ⟨β, Δβ⟩
  double dw_sq = 0.0;             // ‖Δw‖²
  double dbeta_sq = 0.0;          // ‖Δβ‖²
};

/// Scalars reduced for the dual γ̄*.
struct DualGammaTerms {
  double dalpha_dot_y = 0.0;      // ⟨Δα, y⟩
  double dalpha_dot_alpha = 0.0;  // ⟨Δα, α⟩
  double dalpha_sq = 0.0;         // ‖Δα‖²
  double wbar_dot_dwbar = 0.0;    // ⟨w̄, Δw̄⟩
  double dwbar_sq = 0.0;          // ‖Δw̄‖²
};

/// Closed-form optimum; returns `fallback` when the update direction is
/// (numerically) zero.
double optimal_gamma_primal(const PrimalGammaTerms& terms, double examples,
                            double lambda, double fallback);

double optimal_gamma_dual(const DualGammaTerms& terms, double examples,
                          double lambda, double fallback);

}  // namespace tpa::cluster
