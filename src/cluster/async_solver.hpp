// Asynchronous bounded-staleness distributed SCD with elastic membership
// (DESIGN.md §13).
//
// The synchronous driver (dist_solver.hpp) is paper Algorithm 3: a global
// barrier every round, so one slow worker stalls all K.  Following
// Hybrid-DCA's double asynchrony and PASSCoDe's delay tolerance (PAPERS.md),
// this driver removes the barrier: each worker runs pull → local epochs →
// push cycles against the master at its own pace, and the master applies
// every delta the moment it arrives.  Determinism is preserved by running
// the cluster through a simulated event timeline: per-cycle durations come
// from the deterministic timing models (local solver sim time, NetworkModel
// point-to-point transfers, PCIe for GPU locals), so the interleaving of
// pushes — and therefore the numerics — is a pure function of (config,
// seeds), replayable bit-for-bit.
//
// Staleness control: the master keeps a version clock (one tick per applied
// delta) and stamps every pull.  A delta whose pull is `s` versions old is
// applied at full strength while s ≤ τ and beyond that is either damped by
// θ = τ/s or rejected outright — core::cluster_staleness_damping, the
// replica-set merge-interval math lifted to cluster scope.  γ is rescaled to
// the live member count, so the global invariant shared == A·weights is
// preserved exactly by linearity, no matter how stale or sparse the pushes.
//
// Elastic membership: scripted leave/join events detach and revive worker
// slots mid-run.  A leaver's partition freezes (its committed weights stay
// in the master's assembled model); a joiner adopts the frozen partition and
// cold-starts from the master's current vector.  Crash faults reuse the
// PR 2 machinery — exponential backoff, eviction past max_restarts — with
// eviction flowing into the same detached state a scripted leave produces,
// so a later join can revive an evicted slot (the elastic recovery the sync
// driver cannot express).
//
// Checkpoint/resume: checkpoint() is a rendezvous — in-flight cycles are
// discarded (their permutation draws stay consumed, so streams remain
// aligned) and the simulated clock is re-zeroed — and the solver's control
// state (round, version clock, per-worker stream positions and statuses) is
// persisted in a checksummed sidecar next to the .tpam model.  restore()
// rebuilds exactly the post-rendezvous state, so a resumed run replays the
// original bit-for-bit, faults and membership included.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/aggregation.hpp"
#include "cluster/common.hpp"
#include "cluster/fault_injector.hpp"
#include "cluster/network_model.hpp"
#include "cluster/partition.hpp"
#include "cluster/placement/annealer.hpp"
#include "cluster/placement/fleet.hpp"
#include "core/convergence.hpp"
#include "core/model_io.hpp"
#include "core/solver_factory.hpp"
#include "obs/attribution.hpp"

namespace tpa::cluster {

/// What the master does with a delta staler than the window τ.
enum class StalenessPolicy {
  kDamp,    // apply with θ = τ/staleness (under-relaxation)
  kReject,  // discard; the worker re-pulls and recomputes
};

const char* staleness_policy_name(StalenessPolicy policy);
StalenessPolicy parse_staleness_policy(const std::string& name);

/// Scripted elastic membership change, applied at the start of its round.
struct MembershipEvent {
  enum class Kind { kLeave, kJoin };
  int round = 0;   // 1-based outer round at whose start the event fires
  int worker = 0;  // partition slot
  Kind kind = Kind::kLeave;
};

struct AsyncConfig {
  core::Formulation formulation = core::Formulation::kDual;
  int num_workers = 4;
  AggregationMode aggregation = AggregationMode::kAveraging;
  double fixed_gamma = 1.0;
  /// Local passes per pull→push cycle (H of the sync driver).
  int local_epochs_per_round = 1;
  /// Local solver configuration; formulation is overridden, seeds are
  /// per-slot like the sync driver, so the same (config, seed) pair drives
  /// both arms of an ablation over identical local streams.
  core::SolverConfig local_solver{};
  NetworkModel network = NetworkModel::ethernet_10g();
  double lambda = 1e-3;
  std::uint64_t seed = 99;

  FaultConfig faults{};
  /// Crashes a worker survives before eviction (backoff doubles per crash).
  int max_restarts = 3;

  /// Bounded-staleness window τ in master versions; 0 picks
  /// core::cluster_staleness_window(live) adaptively each push, so healthy
  /// steady-state runs (staleness ≈ live − 1) are never damped.
  int staleness_window = 0;
  StalenessPolicy staleness_policy = StalenessPolicy::kDamp;

  /// Scripted join/leave schedule (--elastic drills).  Events must name
  /// rounds >= 1 and valid slots; a join revives a detached (left or
  /// evicted) slot, a leave detaches an attached one; mismatches are
  /// ignored so schedules compose with fault-driven evictions.
  std::vector<MembershipEvent> membership;

  // ---- Heterogeneous placement (DESIGN.md §14) ----
  /// Same semantics as DistConfig: empty = homogeneous (bit-exact with
  /// pre-placement runs); otherwise one DeviceSpec per slot and the
  /// partition is sized by the placement plan.  The async driver has no
  /// reduce to overlap (pushes are already barrier-free point-to-point),
  /// so there is no comm_overlap switch here.
  placement::FleetSpec fleet{};
  placement::PlacementMode placement = placement::PlacementMode::kUniform;
  std::uint64_t placement_seed = 7;

  // ---- Compressed delta exchange (DESIGN.md §16) ----
  /// Same semantics as DistConfig: the worker → master push leg carries the
  /// quantized fp16 + per-block fp32-scale encoding; the model pull leg
  /// stays the dense fp32 vector.  Off by default (bit-identical exchange).
  bool compress_deltas = false;
  /// Relative sparsification threshold for the codec; 0 keeps the
  /// deterministic dense-quantized layout.
  double delta_threshold = 0.0;
};

enum class AsyncWorkerStatus {
  kComputing,  // attached; cycling or waiting for the next round
  kBackoff,    // attached; crashed, waiting out its exponential backoff
  kDetached,   // left or evicted; partition frozen until a join
};

const char* async_worker_status_name(AsyncWorkerStatus status);

/// Control-plane snapshot persisted alongside the .tpam model so a resumed
/// async run replays bit-identically (written post-rendezvous: no cycle is
/// in flight and the simulated clock is zero).
struct AsyncCheckpointState {
  struct WorkerState {
    std::uint64_t draws_consumed = 0;  // local epochs taken off the stream
    std::uint32_t status = 0;          // AsyncWorkerStatus
    std::uint32_t crash_count = 0;
    double restart_at = 0.0;  // absolute restart time (kBackoff only)
  };
  std::uint64_t round = 0;
  std::uint64_t version = 0;
  std::uint64_t seed = 0;  // validated against the config on restore
  std::vector<WorkerState> workers;
};

/// Checksummed binary sidecar IO ("TPAA" magic).  Readers throw
/// std::runtime_error on truncation, bad magic or checksum mismatch.
void write_async_state_file(const std::string& path,
                            const AsyncCheckpointState& state);
AsyncCheckpointState read_async_state_file(const std::string& path);

/// Path of the control-plane sidecar written next to a model checkpoint.
std::string async_state_path(const std::string& model_path);

class AsyncSolver {
 public:
  /// Partitions `global` across the worker slots and builds their local
  /// solvers (shared plumbing with DistributedSolver: same Partition::random
  /// draw from `seed`, same per-slot solver seeding).  The dataset must
  /// outlive the solver.  Throws std::invalid_argument on invalid worker /
  /// epoch / staleness / membership configuration.
  AsyncSolver(const data::Dataset& global, const AsyncConfig& config);

  int num_workers() const noexcept { return config_.num_workers; }
  core::Formulation formulation() const noexcept {
    return config_.formulation;
  }
  const core::RidgeProblem& global_problem() const noexcept {
    return global_problem_;
  }

  /// One outer round: applies this round's membership events, then advances
  /// the event timeline until the master has absorbed one push attempt per
  /// live member (attached workers keep cycling without any barrier —
  /// cycles regularly straddle round boundaries; the round is purely the
  /// observation/checkpoint cadence).  Returns the simulated time the round
  /// advanced the cluster clock.
  core::EpochReport run_epoch();

  double duality_gap(util::ThreadPool* pool = nullptr) const;
  void set_merge_every(int merge_every);
  double setup_sim_seconds() const;

  std::vector<float> global_weights() const;
  const std::vector<float>& global_shared() const noexcept { return shared_; }

  /// The coordinate partition in force (placement-sized when a fleet is
  /// configured; the legacy equal split otherwise).
  const Partition& partition() const noexcept { return partition_; }

  /// The placement plan; nullptr when no fleet is configured.
  const placement::PlacementResult* placement_result() const noexcept {
    return placement_result_ ? &*placement_result_ : nullptr;
  }

  // ---- Async observability ----
  int current_epoch() const noexcept { return round_; }
  /// Master version clock: applied deltas since construction/restore.
  std::uint64_t version() const noexcept { return version_; }
  /// Attached members (computing or in backoff); γ's averaging denominator.
  int live_workers() const;
  AsyncWorkerStatus worker_status(int worker) const;
  /// γ of the most recently applied delta (before staleness damping).
  double last_gamma() const noexcept { return last_gamma_; }
  /// Live member count as of the last round (trace "contributors" column).
  int last_contributors() const noexcept { return last_contributors_; }
  /// Staleness window in force for the most recent push (resolves the
  /// auto window against the live count).
  int effective_staleness_window() const;
  const std::vector<core::ClusterEvent>& events() const noexcept {
    return events_;
  }

  /// Cumulative delta payload bytes pushed to the master (encoded form when
  /// compression is on; raw fp64 otherwise) and the raw fp64 baseline.
  std::uint64_t delta_bytes_on_wire() const noexcept {
    return delta_bytes_on_wire_;
  }
  std::uint64_t delta_bytes_dense() const noexcept {
    return delta_bytes_dense_;
  }

  /// Round attribution (DESIGN.md §15): master-critical-path segment
  /// accounting over the event timeline — every inter-event segment is
  /// charged to the cost terms of the event that ended it, so the components
  /// sum to the round's simulated time exactly (telescoping).
  const obs::RoundAttribution& last_attribution() const noexcept {
    return last_attr_;
  }
  const obs::RoundAttribution& attribution_totals() const noexcept {
    return attr_totals_;
  }
  std::uint64_t attribution_rounds() const noexcept { return attr_rounds_; }

  // ---- Checkpoint / resume ----
  /// Rendezvous + snapshot: discards in-flight cycles (rolling their local
  /// weights back; their permutation draws stay consumed), re-zeroes the
  /// simulated clock, and returns the committed global state with
  /// epoch = the round counter.  Mutating by design: a checkpointed run's
  /// continuation is exactly what a restore of this checkpoint replays, so
  /// resumed and straight-through runs agree only when both checkpoint on
  /// the same cadence (the roundtrip test and the async_drill CI job do).
  core::SavedModel checkpoint();
  /// Control-plane counterpart of checkpoint(); call after it.
  AsyncCheckpointState checkpoint_state() const;
  /// checkpoint() + model file + sidecar (run_cluster_loop hook).
  void write_checkpoint_file(const std::string& path);

  /// Restores a checkpoint pair into a freshly constructed solver (same
  /// dataset and config): scatters weights, fast-forwards every local
  /// permutation stream by its recorded draw count, and resumes the version
  /// clock, round counter and worker statuses exactly.  Throws
  /// std::invalid_argument on mismatched formulation / dimensions / lambda /
  /// seed / worker count and std::logic_error if rounds have already run.
  void restore(const core::SavedModel& saved,
               const AsyncCheckpointState& state);
  /// Reads `path` and its sidecar, then restore()s.
  void restore_files(const std::string& path);

 private:
  struct Worker {
    WorkerCore core;
    AsyncWorkerStatus status = AsyncWorkerStatus::kComputing;
    int crash_count = 0;
    std::uint64_t draws_consumed = 0;  // local epochs off the perm stream
    double compute_seconds = 0.0;      // calibrated nominal per local epoch
    bool gpu = false;                  // this slot stages over PCIe
    double host_coords = 0.0;          // paper-scale owned coordinates

    // Pending event: cycle completion (busy) or crash-backoff restart.
    bool busy = false;
    bool restart_pending = false;
    double event_at = 0.0;
    std::uint64_t push_flow_id = 0;  // flow/push arrow of the cycle in flight

    // In-flight cycle context, captured at schedule time.
    FaultEvent fault{};
    std::uint64_t pulled_version = 0;
    std::vector<float> pulled_shared;
    std::vector<float> weights_start;

    // One fault draw per (round, worker): a crash is consumed the first
    // time it fires in a round so the restart path cannot re-crash on the
    // same draw and spiral to eviction within one round.
    int fault_round = -1;
    FaultEvent round_fault{};
    bool crashed_this_round = false;
  };

  /// One cycle's deterministic cost, by term.  nominal() reproduces the
  /// legacy nominal_cycle_seconds sum bit-for-bit (same addition order);
  /// stall is the fault-injected compute inflation.
  struct CycleCost {
    double network = 0.0;
    double host = 0.0;
    double pcie = 0.0;
    double compute = 0.0;
    double stall = 0.0;

    double nominal() const noexcept {
      return network + host + pcie + compute;
    }
    double total() const noexcept { return nominal() + stall; }
  };

  void record_event(int worker, core::ClusterEventKind kind);
  void apply_membership(int round);
  void handle_crash(Worker& worker, int index);
  /// Starts a pull→compute→push cycle (or consumes a crash) for an idle
  /// computing worker; arms its completion/restart event.
  void schedule_cycle(int index);
  /// Absorbs a completed cycle on the master: transit faults, staleness
  /// rule, γ scaling, invariant-preserving apply.  `segment_seconds` is the
  /// master-critical-path segment this event consumed; it is attributed to
  /// the cycle's cost terms (or to stale overhead) in round_attr_.
  void complete_cycle(int index, double segment_seconds);
  void discard_in_flight(Worker& worker);
  CycleCost cycle_cost(const Worker& worker) const;
  double cycle_seconds(const Worker& worker) const;
  double nominal_cycle_seconds(const Worker& worker) const;

  const data::Dataset* global_;
  AsyncConfig config_;
  core::RidgeProblem global_problem_;
  Partition partition_;
  std::optional<placement::PlacementResult> placement_result_;
  FaultInjector injector_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<float> shared_;  // the master's (global) shared vector
  core::TimingWorkload global_workload_;
  bool gpu_local_ = false;

  double now_ = 0.0;        // simulated cluster clock
  int round_ = 0;           // outer rounds completed
  std::uint64_t version_ = 0;
  std::uint64_t pushes_this_round_ = 0;
  std::uint64_t applied_updates_ = 0;  // coordinate updates, current round
  double last_gamma_ = 0.0;
  int last_contributors_ = 0;
  obs::RoundAttribution round_attr_{};  // accumulating, current round
  obs::RoundAttribution last_attr_{};
  obs::RoundAttribution attr_totals_{};
  std::uint64_t attr_rounds_ = 0;
  // Monotone sim clock for the attribution spans: unlike now_, it is never
  // re-zeroed by the checkpoint rendezvous, so rounds tile left-to-right.
  double attr_clock_seconds_ = 0.0;
  std::uint64_t flow_seq_ = 0;  // pull/push flow-arrow ids
  std::uint64_t delta_bytes_on_wire_ = 0;
  std::uint64_t delta_bytes_dense_ = 0;
  std::vector<core::ClusterEvent> events_;
};

/// Drives an AsyncSolver through the shared cluster run loop (gap cadence,
/// checkpoint cadence + sidecar, fault events on the trace).
core::ConvergenceTrace run_async(AsyncSolver& solver,
                                 const core::RunOptions& options,
                                 const CheckpointConfig& ckpt = {});

}  // namespace tpa::cluster
