#include "cluster/common.hpp"

#include <cstring>
#include <stdexcept>

#include "sparse/io_binary.hpp"

namespace tpa::cluster {

bool is_gpu_solver_kind(core::SolverKind kind) {
  return kind == core::SolverKind::kTpaM4000 ||
         kind == core::SolverKind::kTpaTitanX;
}

void corrupt_in_transit(std::vector<double>& delta) {
  if (delta.empty()) return;
  std::uint64_t bits = 0;
  std::memcpy(&bits, delta.data(), sizeof(bits));
  bits ^= 0x1ULL;
  std::memcpy(delta.data(), &bits, sizeof(bits));
}

std::uint64_t delta_checksum(const std::vector<double>& delta) {
  return sparse::fnv1a(delta.data(), delta.size() * sizeof(double));
}

void init_worker_core(WorkerCore& core, const data::Dataset& global,
                      const Partition& partition, int slot,
                      core::Formulation formulation, double lambda,
                      const core::SolverConfig& local_solver) {
  core.shard = make_shard(global, formulation, partition.owned[slot]);
  core.problem = std::make_unique<core::RidgeProblem>(
      core.shard, lambda, global.num_examples());
  core::SolverConfig local = local_solver;
  local.formulation = formulation;
  local.seed = local_solver.seed + static_cast<std::uint64_t>(slot);
  core.solver = core::make_solver(*core.problem, local);
}

void validate_cluster_config(const char* who, int num_workers,
                             data::Index partitionable_dim,
                             core::Formulation formulation,
                             int local_epochs_per_round, int max_restarts) {
  const std::string name(who);
  if (num_workers <= 0) {
    throw std::invalid_argument(name + ": num_workers must be positive, got " +
                                std::to_string(num_workers));
  }
  if (static_cast<data::Index>(num_workers) > partitionable_dim) {
    throw std::invalid_argument(
        name + ": num_workers (" + std::to_string(num_workers) +
        ") exceeds the partitionable dimension (" +
        std::to_string(partitionable_dim) + " " +
        (formulation == core::Formulation::kPrimal ? "features" : "examples") +
        " for the " + std::string(formulation_name(formulation)) +
        " form); some workers would own no coordinates");
  }
  if (local_epochs_per_round <= 0) {
    throw std::invalid_argument(
        name + ": local_epochs_per_round must be >= 1, got " +
        std::to_string(local_epochs_per_round));
  }
  if (max_restarts < 0) {
    throw std::invalid_argument(name + ": max_restarts must be non-negative");
  }
}

void accumulate_gamma_terms(core::Formulation formulation,
                            std::span<const float> labels,
                            std::span<const float> start,
                            std::span<const float> end,
                            PrimalGammaTerms& pterms, DualGammaTerms& dterms) {
  for (std::size_t j = 0; j < end.size(); ++j) {
    const double from = start[j];
    const double delta = static_cast<double>(end[j]) - from;
    if (formulation == core::Formulation::kPrimal) {
      pterms.beta_dot_dbeta += from * delta;
      pterms.dbeta_sq += delta * delta;
    } else {
      dterms.dalpha_dot_y += delta * labels[j];
      dterms.dalpha_dot_alpha += from * delta;
      dterms.dalpha_sq += delta * delta;
    }
  }
}

void record_cluster_event(std::vector<core::ClusterEvent>& events, int epoch,
                          int worker, core::ClusterEventKind kind,
                          std::int32_t master_track) {
  core::ClusterEvent event;
  event.epoch = epoch;
  event.worker = worker;
  event.kind = kind;
  events.push_back(event);
  obs::metrics()
      .counter(std::string("cluster.event.") + core::cluster_event_name(kind))
      .add();
  obs::trace_instant(core::cluster_event_name(kind),
                     worker_track(master_track, worker), epoch);
}

}  // namespace tpa::cluster
