#include "cluster/delta_codec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "sparse/io_binary.hpp"

namespace tpa::cluster {
namespace {

// dim + block + layout flag as they'd be framed on the wire, plus the
// trailing 8-byte checksum — matches the sidecar framing elsewhere.
constexpr std::size_t kWireHeaderBytes = 3 * sizeof(std::uint32_t);
constexpr std::size_t kWireChecksumBytes = sizeof(std::uint64_t);

void validate_structure(const CompressedDelta& delta) {
  if (delta.block == 0) {
    throw std::invalid_argument("CompressedDelta: block must be positive");
  }
  if (!delta.dense && delta.indices.size() != delta.payload.size()) {
    throw std::invalid_argument(
        "CompressedDelta: sparse layout needs one index per payload entry");
  }
  if (delta.dense && delta.payload.size() != delta.dim) {
    throw std::invalid_argument(
        "CompressedDelta: dense layout must cover every coordinate");
  }
  const std::size_t blocks =
      (delta.payload.size() + delta.block - 1) / delta.block;
  if (delta.scales.size() != blocks) {
    throw std::invalid_argument(
        "CompressedDelta: scale count does not match payload blocks");
  }
}

}  // namespace

std::size_t CompressedDelta::wire_bytes() const noexcept {
  return kWireHeaderBytes + indices.size() * sizeof(std::uint32_t) +
         payload.size() * sizeof(std::uint16_t) +
         scales.size() * sizeof(float) + kWireChecksumBytes;
}

std::size_t quantized_delta_wire_bytes(std::size_t dim,
                                       std::uint32_t block) noexcept {
  const std::size_t blocks = block > 0 ? (dim + block - 1) / block : 0;
  return kWireHeaderBytes + dim * sizeof(std::uint16_t) +
         blocks * sizeof(float) + kWireChecksumBytes;
}

std::size_t dense_delta_wire_bytes(std::size_t dim) noexcept {
  return dim * sizeof(double) + kWireChecksumBytes;
}

std::uint64_t compressed_delta_checksum(const CompressedDelta& delta) {
  sparse::Fnv1a checksum;
  checksum.update(&delta.dim, sizeof(delta.dim));
  checksum.update(&delta.block, sizeof(delta.block));
  const std::uint32_t dense = delta.dense ? 1 : 0;
  checksum.update(&dense, sizeof(dense));
  if (!delta.indices.empty()) {
    checksum.update(delta.indices.data(),
                    delta.indices.size() * sizeof(std::uint32_t));
  }
  if (!delta.payload.empty()) {
    checksum.update(delta.payload.data(),
                    delta.payload.size() * sizeof(linalg::Half));
  }
  if (!delta.scales.empty()) {
    checksum.update(delta.scales.data(),
                    delta.scales.size() * sizeof(float));
  }
  return checksum.digest();
}

CompressedDelta encode_delta(std::span<const double> delta,
                             const DeltaCodecConfig& config) {
  if (config.block == 0) {
    throw std::invalid_argument("encode_delta: block must be positive");
  }
  if (config.threshold < 0.0) {
    throw std::invalid_argument("encode_delta: threshold must be >= 0");
  }
  CompressedDelta out;
  out.dim = static_cast<std::uint32_t>(delta.size());
  out.block = config.block;
  out.dense = config.threshold == 0.0;

  // Survivor selection.  Dense layout keeps everything (the wire size must
  // stay a pure function of the dimension); sparse layout drops entries
  // below the relative threshold.
  std::vector<double> survivors;
  if (out.dense) {
    survivors.assign(delta.begin(), delta.end());
  } else {
    double max_abs = 0.0;
    for (const double v : delta) max_abs = std::max(max_abs, std::abs(v));
    const double cut = config.threshold * max_abs;
    out.indices.reserve(delta.size() / 4);
    for (std::size_t i = 0; i < delta.size(); ++i) {
      if (std::abs(delta[i]) > cut) {
        out.indices.push_back(static_cast<std::uint32_t>(i));
        survivors.push_back(delta[i]);
      }
    }
  }

  // Per-block max-abs scaling keeps every stored ratio in [-1, 1]; the scale
  // is rounded to fp32 first so encode and decode agree on the exact factor.
  out.payload.resize(survivors.size());
  const std::size_t blocks =
      (survivors.size() + config.block - 1) / config.block;
  out.scales.resize(blocks, 0.0F);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * config.block;
    const std::size_t end =
        std::min(begin + config.block, survivors.size());
    double max_abs = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      max_abs = std::max(max_abs, std::abs(survivors[i]));
    }
    const auto scale = static_cast<float>(max_abs);
    out.scales[b] = scale;
    for (std::size_t i = begin; i < end; ++i) {
      out.payload[i] =
          scale > 0.0F
              ? linalg::float_to_half(static_cast<float>(
                    survivors[i] / static_cast<double>(scale)))
              : linalg::Half{};
    }
  }
  out.checksum = compressed_delta_checksum(out);
  return out;
}

void decode_delta(const CompressedDelta& delta, std::span<double> out) {
  validate_structure(delta);
  if (out.size() != delta.dim) {
    throw std::invalid_argument(
        "decode_delta: output size does not match the encoded dimension");
  }
  if (!delta.dense) {
    std::fill(out.begin(), out.end(), 0.0);
  }
  for (std::size_t i = 0; i < delta.payload.size(); ++i) {
    const double scale =
        static_cast<double>(delta.scales[i / delta.block]);
    const double value =
        static_cast<double>(linalg::half_to_float(delta.payload[i])) * scale;
    out[delta.dense ? i : delta.indices[i]] = value;
  }
}

std::vector<double> decode_delta(const CompressedDelta& delta) {
  std::vector<double> out(delta.dim, 0.0);
  decode_delta(delta, out);
  return out;
}

void corrupt_compressed_in_transit(CompressedDelta& delta) {
  // Flip one low payload bit — the least detectable change a transit fault
  // can make to the quantized image.  FNV-1a over the encoding still
  // diverges on any single-bit flip.
  if (!delta.payload.empty()) {
    delta.payload.front().bits ^= 1U;
  } else if (!delta.indices.empty()) {
    delta.indices.front() ^= 1U;
  } else if (!delta.scales.empty()) {
    auto bits = std::bit_cast<std::uint32_t>(delta.scales.front());
    delta.scales.front() = std::bit_cast<float>(bits ^ 1U);
  } else {
    // Everything was sparsified away: the only bits left on the wire are the
    // header, so the flip lands there.
    delta.dim ^= 1U;
  }
}

}  // namespace tpa::cluster
