// Plumbing shared by the synchronous (dist_solver) and asynchronous
// (async_solver) cluster drivers: worker construction, transit
// checksum/corruption simulation, adaptive-γ term accumulation, trace
// tracks, event recording, and the common run loop (gap cadence,
// checkpoint cadence, event forwarding).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/aggregation.hpp"
#include "cluster/partition.hpp"
#include "core/convergence.hpp"
#include "core/cost_model.hpp"
#include "core/solver_factory.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace tpa::cluster {

// Virtual trace tracks: the simulation runs on one OS thread, but the
// exported timeline should still read as a cluster — one track for the
// master's aggregation phases and one per simulated worker.  The sync and
// async solvers use disjoint bases so a process that runs both (the
// ablation bench) exports distinguishable timelines.
inline constexpr std::int32_t kMasterTrack = 1000;       // dist/*
inline constexpr std::int32_t kAsyncMasterTrack = 2000;  // async/*

constexpr std::int32_t worker_track(std::int32_t master_track, int worker) {
  return worker < 0 ? master_track : master_track + 1 + worker;
}

/// Virtual track for the simulated-time attribution spans (attr/round and
/// its component tiles) of the driver rooted at `master_track`.  Offset 500
/// keeps it clear of any realistic worker count while staying between the
/// sync (1000) and async (2000) bases.
inline constexpr std::int32_t kAttrTrackOffset = 500;

constexpr std::int32_t attribution_track(std::int32_t master_track) {
  return master_track + kAttrTrackOffset;
}

// Flow ids for the causal delta/model arrows.  The id only has to be unique
// per begin/end pair within one trace: pack (track base, epoch, worker) so
// sync and async drivers — and different epochs — can never collide.  Bit 39
// distinguishes the master→worker model-broadcast flows from the
// worker→master delta flows of the same (epoch, worker).
constexpr std::uint64_t delta_flow_id(std::int32_t master_track, int epoch,
                                      int worker) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(master_track))
          << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(epoch) &
                                     0x7FFFFFu)
          << 16) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(worker) &
                                    0xFFFFu);
}

constexpr std::uint64_t model_flow_id(std::int32_t master_track, int epoch,
                                      int worker) {
  return delta_flow_id(master_track, epoch, worker) |
         (std::uint64_t{1} << 39);
}

bool is_gpu_solver_kind(core::SolverKind kind);

/// Simulated transit corruption: flip one mantissa bit of the first entry.
/// Any single-bit change defeats FNV-1a, which is the point — the master
/// must notice without trusting the payload.
void corrupt_in_transit(std::vector<double>& delta);

std::uint64_t delta_checksum(const std::vector<double>& delta);

/// The data-plane third of a simulated worker: its shard, the local view of
/// the ridge problem (carrying the *global* example count so the λN terms
/// match the global objective, Section IV.A), and the local solver seeded
/// per-slot.  The control-plane state differs between the sync and async
/// drivers and lives in their own Worker structs.
struct WorkerCore {
  data::Dataset shard;
  std::unique_ptr<core::RidgeProblem> problem;
  std::unique_ptr<core::Solver> solver;
};

/// Fills `core` in place (the problem holds a reference to the shard, so
/// the WorkerCore must already sit at its final address — returning by
/// value would relocate the shard out from under it).
void init_worker_core(WorkerCore& core, const data::Dataset& global,
                      const Partition& partition, int slot,
                      core::Formulation formulation, double lambda,
                      const core::SolverConfig& local_solver);

/// Shared constructor-time validation; `who` names the throwing class.
void validate_cluster_config(const char* who, int num_workers,
                             data::Index partitionable_dim,
                             core::Formulation formulation,
                             int local_epochs_per_round, int max_restarts);

/// Accumulates the per-worker scalars of the adaptive line search
/// (Algorithm 4) for a local weight move start → end; ownership is disjoint
/// across workers so the terms sum.
void accumulate_gamma_terms(core::Formulation formulation,
                            std::span<const float> labels,
                            std::span<const float> start,
                            std::span<const float> end,
                            PrimalGammaTerms& pterms, DualGammaTerms& dterms);

/// Records a cluster event as (a) a trace-level ClusterEvent, (b) a
/// cluster.event.* counter so the --metrics-out report matches
/// ConvergenceTrace::count_events exactly, and (c) a trace instant on the
/// affected worker's track.
void record_cluster_event(std::vector<core::ClusterEvent>& events, int epoch,
                          int worker, core::ClusterEventKind kind,
                          std::int32_t master_track);

/// Periodic checkpointing for the cluster run loops: every `every_epochs`
/// outer epochs (and after the final one) the solver's checkpoint is written
/// atomically to `path`.
struct CheckpointConfig {
  std::string path;
  int every_epochs = 0;  // 0 disables

  bool enabled() const noexcept { return every_epochs > 0 && !path.empty(); }
};

/// The run loop shared by run_distributed and run_async: drives the solver
/// like core::run_solver, recording γ, the contributor count and all fault
/// events per epoch, checkpointing on the configured cadence (plus a final
/// checkpoint so a later --resume continues from exactly where the run
/// stopped), and evaluating the duality gap on the gap_every stride with a
/// cost-model-dispatched pool.  Resumes from the solver's current epoch
/// (nonzero after restore()).
template <typename SolverT>
core::ConvergenceTrace run_cluster_loop(SolverT& solver,
                                        const core::RunOptions& options,
                                        const CheckpointConfig& ckpt,
                                        std::int32_t master_track) {
  core::ConvergenceTrace trace;
  double sim_total =
      options.include_setup_time ? solver.setup_sim_seconds() : 0.0;
  double wall_total = 0.0;
  const int start_epoch = solver.current_epoch();
  std::size_t seen_events = solver.events().size();
  int last_checkpointed = start_epoch;
  const int interval = core::effective_gap_interval(options);
  if (options.merge_every != 0) {
    solver.set_merge_every(options.merge_every);
  }
  const auto write_checkpoint = [&](int epoch) {
    obs::TraceSpan span("train/checkpoint", master_track, epoch);
    solver.write_checkpoint_file(ckpt.path);
    trace.add_event({epoch, -1, core::ClusterEventKind::kCheckpoint});
    obs::metrics().counter("cluster.event.checkpoint").add();
    obs::trace_instant("checkpoint", master_track, epoch);
  };
  // Same crossover as run_solver: only pay for a pool when the global gap
  // evaluation is predicted to beat the serial pass on this host.
  const int gap_threads = core::pool_dispatch().dispatch_threads(
      solver.global_problem().dataset().nnz(), options.gap_threads);
  std::unique_ptr<util::ThreadPool> gap_pool;
  if (gap_threads > 1) {
    gap_pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(gap_threads));
  }
  for (int epoch = start_epoch + 1; epoch <= options.max_epochs; ++epoch) {
    const auto report = solver.run_epoch();
    sim_total += report.sim_seconds;
    wall_total += report.wall_seconds;
    const auto& events = solver.events();
    for (; seen_events < events.size(); ++seen_events) {
      trace.add_event(events[seen_events]);
    }
    if (ckpt.enabled() && epoch % ckpt.every_epochs == 0) {
      write_checkpoint(epoch);
      last_checkpointed = epoch;
    }
    if (epoch % interval == 0 || epoch == options.max_epochs) {
      core::TracePoint point;
      point.epoch = epoch;
      {
        obs::TraceSpan span("train/gap_eval", master_track, epoch);
        point.gap = solver.duality_gap(gap_pool.get());
      }
      obs::metrics().counter("train.gap_evals").add();
      point.sim_seconds = sim_total;
      point.wall_seconds = wall_total;
      point.gamma = solver.last_gamma();
      point.contributors = solver.last_contributors();
      trace.add(point);
      if (options.target_gap > 0.0 && point.gap <= options.target_gap) break;
    }
  }
  if (ckpt.enabled() && solver.current_epoch() > last_checkpointed) {
    write_checkpoint(solver.current_epoch());
  }
  return trace;
}

}  // namespace tpa::cluster
