// Deterministic fault injection for the simulated cluster.
//
// The distributed solver (Algorithms 3/4) is synchronous: one dead or slow
// worker stalls the Reduce forever.  To test the failure handling that a
// production deployment needs, the injector decides — per (epoch, worker) —
// whether that worker crashes, straggles, or delivers a dropped/corrupted
// delta this round.  Two sources combine:
//   * scripted events: exact (epoch, worker, kind) triples for reproducible
//     scenario tests ("worker 2 crashes at epoch 3");
//   * rate-based events: independent per-(epoch, worker) Bernoulli draws,
//     for the ablation sweeps.
// Decisions are pure functions of (seed, epoch, worker): the injector keeps
// no mutable stream state, so queries are order-independent and a resumed
// run replays the exact fault schedule of the original.
#pragma once

#include <cstdint>
#include <vector>

namespace tpa::cluster {

enum class FaultKind {
  kNone,
  kCrash,         // worker dies mid-epoch; its local epoch is lost
  kStall,         // worker runs `stall_factor` times slower this epoch
  kDropDelta,     // worker's reduced delta is lost in transit
  kCorruptDelta,  // worker's delta arrives bit-flipped (checksum catches it)
};

const char* fault_kind_name(FaultKind kind);

/// One scripted fault.  `permanent` (stalls only) applies the stall to every
/// epoch >= `epoch` — a persistently slow machine rather than a hiccup.
struct FaultEvent {
  int epoch = 0;   // 1-based outer epoch
  int worker = 0;  // worker index
  FaultKind kind = FaultKind::kNone;
  double stall_factor = 4.0;
  bool permanent = false;
};

struct FaultConfig {
  std::vector<FaultEvent> scripted;
  /// Independent per-(epoch, worker) probabilities; all default to "never".
  double crash_rate = 0.0;
  double stall_rate = 0.0;
  double drop_rate = 0.0;
  double corrupt_rate = 0.0;
  /// Slow-down applied by rate-drawn stalls.
  double stall_factor = 4.0;
  std::uint64_t seed = 0x5eed;

  bool any_faults() const noexcept {
    return !scripted.empty() || crash_rate > 0.0 || stall_rate > 0.0 ||
           drop_rate > 0.0 || corrupt_rate > 0.0;
  }
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config);

  /// The fault hitting `worker` at `epoch` (kind == kNone when healthy).
  /// Scripted events win over rate draws; at most one fault per query, with
  /// the most severe kind (crash > stall > corrupt > drop) on a collision.
  /// Pure: same (seed, epoch, worker) always answers the same, in any order.
  FaultEvent query(int epoch, int worker) const;

  bool enabled() const noexcept { return config_.any_faults(); }
  const FaultConfig& config() const noexcept { return config_; }

 private:
  FaultConfig config_;
};

}  // namespace tpa::cluster
