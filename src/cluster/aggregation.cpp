#include "cluster/aggregation.hpp"

#include <cmath>

namespace tpa::cluster {
namespace {

constexpr double kDenominatorFloor = 1e-30;

}  // namespace

double optimal_gamma_primal(const PrimalGammaTerms& terms, double examples,
                            double lambda, double fallback) {
  const double denominator =
      terms.dw_sq + examples * lambda * terms.dbeta_sq;
  if (!(denominator > kDenominatorFloor)) return fallback;
  return (terms.y_minus_w_dot_dw -
          examples * lambda * terms.beta_dot_dbeta) /
         denominator;
}

double optimal_gamma_dual(const DualGammaTerms& terms, double examples,
                          double lambda, double fallback) {
  const double denominator =
      terms.dwbar_sq / lambda + examples * terms.dalpha_sq;
  if (!(denominator > kDenominatorFloor)) return fallback;
  return (terms.dalpha_dot_y - examples * terms.dalpha_dot_alpha -
          terms.wbar_dot_dwbar / lambda) /
         denominator;
}

}  // namespace tpa::cluster
